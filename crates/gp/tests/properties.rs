//! Property-based tests of the GP baseline's closure guarantees.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use alphaevolve_gp::{BinFunc, Expr, ExprSampler, GeneticOps, GpProbabilities, UnFunc};

fn sampler() -> ExprSampler {
    ExprSampler {
        n_features: 13,
        n_lags: 13,
        const_prob: 0.2,
    }
}

fn ops() -> GeneticOps {
    GeneticOps {
        sampler: sampler(),
        probs: GpProbabilities::default(),
        max_size: 48,
        new_subtree_depth: 4,
    }
}

proptest! {
    /// Closure: protected functions keep every tree total on finite inputs
    /// — no NaN, ever (gplearn's core guarantee).
    #[test]
    fn trees_never_nan_on_finite_inputs(seed in any::<u64>(), depth in 1usize..7, x in -1e6f64..1e6) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tree = sampler().tree(&mut rng, depth, true);
        let v = tree.eval(&|_, _| x);
        prop_assert!(!v.is_nan(), "{} -> NaN on {}", tree, x);
    }

    /// Unary/binary protections are themselves total.
    #[test]
    fn protected_functions_total(x in -1e9f64..1e9, y in -1e9f64..1e9) {
        for f in UnFunc::ALL {
            prop_assert!(!f.apply(x).is_nan(), "{:?}({})", f, x);
        }
        for f in BinFunc::ALL {
            prop_assert!(!f.apply(x, y).is_nan(), "{:?}({}, {})", f, x, y);
        }
    }

    /// Genetic operators respect the size cap and produce structurally
    /// valid trees (every node reachable, sizes consistent).
    #[test]
    fn operators_respect_size_cap(seed in any::<u64>(), depth_a in 2usize..7, depth_b in 2usize..7) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let o = ops();
        let a = sampler().tree(&mut rng, depth_a, true);
        let b = sampler().tree(&mut rng, depth_b, false);
        for child in [
            o.crossover(&mut rng, &a, &b),
            o.subtree_mutation(&mut rng, &a),
            o.hoist_mutation(&mut rng, &a),
            o.point_mutation(&mut rng, &a),
        ] {
            prop_assert!(child.size() <= o.max_size);
            // Pre-order indexing covers exactly `size` nodes.
            prop_assert!(child.node(child.size() - 1).is_some());
            prop_assert!(child.node(child.size()).is_none());
        }
    }

    /// Point mutation never changes tree shape, only node contents.
    #[test]
    fn point_mutation_shape_preserving(seed in any::<u64>(), depth in 2usize..7) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let o = ops();
        let a = sampler().tree(&mut rng, depth, true);
        let c = o.point_mutation(&mut rng, &a);
        prop_assert_eq!(a.size(), c.size());
        prop_assert_eq!(a.depth(), c.depth());
    }

    /// Display is injective enough to distinguish structurally different
    /// trees (no accidental collisions from formatting).
    #[test]
    fn distinct_feature_terminals_display_differently(r1 in 0u16..13, l1 in 0u16..13, r2 in 0u16..13, l2 in 0u16..13) {
        let a = Expr::Feature { row: r1, lag: l1 };
        let b = Expr::Feature { row: r2, lag: l2 };
        prop_assert_eq!(a == b, a.to_string() == b.to_string());
    }
}
