//! Genetic-algorithm baseline: gplearn-style formulaic alpha mining.
//!
//! The AlphaEvolve paper's main baseline (`alpha_G`) is "the searched alpha
//! by the genetic algorithm", following Lin et al.'s gplearn-based alpha
//! mining [14, 15]. Formulaic alphas are expression *trees* over scalar
//! terminals; the population evolves through subtree crossover and the
//! gplearn mutation suite with the paper's §5.2 probabilities:
//!
//! | operator          | probability |
//! |-------------------|-------------|
//! | crossover         | 0.40        |
//! | subtree mutation  | 0.01        |
//! | hoist mutation    | 0.00        |
//! | point mutation    | 0.01        |
//! | point replace     | 0.40 (per-node, within point mutation) |
//!
//! (the remaining probability mass reproduces the tournament winner
//! unchanged). "The input and the output are the same as those of
//! AlphaEvolve" — terminals address any `(feature, lag)` cell of the same
//! `f × w` input matrix, and fitness is the same validation-set IC, so the
//! two methods differ *only* in their search space, which is the paper's
//! point: arithmetic-only formulaic alphas are the smaller space.
//!
//! Functions are protected in gplearn style (safe division/log/sqrt/inverse)
//! so every formula evaluates to a finite value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod expr;
pub mod genetic;

pub use engine::{GpBudget, GpConfig, GpEngine, GpOutcome, GpStats};
pub use expr::{BinFunc, Expr, ExprSampler, UnFunc};
pub use genetic::{GeneticOps, GpProbabilities};
