//! Generational GP engine with tournament selection and IC fitness.
//!
//! The engine mirrors the AlphaEvolve driver's interface so experiments can
//! swap methods: same dataset, same validation-IC fitness, same long-short
//! portfolio returns feeding the same weak-correlation gate, and the same
//! kind of trajectory/stats output.

use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use alphaevolve_backtest::correlation::CorrelationGate;
use alphaevolve_backtest::metrics::{information_coefficient, sharpe_ratio};
use alphaevolve_backtest::portfolio::{long_short_returns, LongShortConfig};
use alphaevolve_backtest::CrossSections;
use alphaevolve_market::Dataset;

use crate::expr::{Expr, ExprSampler};
use crate::genetic::{GeneticOps, GpMethod, GpProbabilities};

/// GP search budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpBudget {
    /// Stop after this many generations.
    Generations(usize),
    /// Stop at a wall-clock deadline (checked between generations).
    WallTime(Duration),
}

/// Engine configuration. Defaults follow the paper: population 100,
/// tournament 10, gplearn probabilities.
#[derive(Debug, Clone)]
pub struct GpConfig {
    /// Population size.
    pub population_size: usize,
    /// Tournament size.
    pub tournament_size: usize,
    /// Genetic-operator probabilities.
    pub probs: GpProbabilities,
    /// Node-count cap per tree.
    pub max_size: usize,
    /// Initial tree depth range (ramped half-and-half).
    pub init_depth: (usize, usize),
    /// Probability a terminal is a constant.
    pub const_prob: f64,
    /// Budget.
    pub budget: GpBudget,
    /// RNG seed.
    pub seed: u64,
    /// Long-short books for gate/backtest returns.
    pub long_short: LongShortConfig,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig {
            population_size: 100,
            tournament_size: 10,
            probs: GpProbabilities::default(),
            max_size: 64,
            init_depth: (2, 6),
            const_prob: 0.15,
            budget: GpBudget::Generations(20),
            seed: 0,
            long_short: LongShortConfig {
                k_long: 10,
                k_short: 10,
            },
        }
    }
}

/// Counters over one GP run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GpStats {
    /// Trees evaluated (every offspring of every generation).
    pub evaluated: usize,
    /// Generations completed.
    pub generations: usize,
    /// Offspring rejected by the correlation gate.
    pub gate_rejected: usize,
    /// Offspring by method: [crossover, subtree, hoist, point, reproduction].
    pub by_method: [usize; 5],
}

/// Result of one GP run.
#[derive(Debug, Clone)]
pub struct GpOutcome {
    /// Best gate-passing formula (None if everything died).
    pub best: Option<BestFormula>,
    /// Counters.
    pub stats: GpStats,
    /// Best-IC-so-far per generation.
    pub trajectory: Vec<f64>,
    /// Wall-clock duration.
    pub elapsed: Duration,
}

/// The best formula found.
#[derive(Debug, Clone)]
pub struct BestFormula {
    /// The expression tree.
    pub expr: Expr,
    /// Validation IC.
    pub ic: f64,
    /// Validation long-short returns (for gating future rounds).
    pub val_returns: Vec<f64>,
}

struct ScoredTree {
    expr: Expr,
    fitness: f64, // NEG_INFINITY for gate-rejected/degenerate trees
}

/// The GP engine, bound to one dataset.
pub struct GpEngine<'a> {
    dataset: &'a Dataset,
    config: GpConfig,
    gate: Option<&'a CorrelationGate>,
    val_labels: CrossSections,
    test_labels: CrossSections,
}

/// Flat label panel over a day range. Twin of
/// `alphaevolve_core::labels_cross_sections` (this crate deliberately does
/// not depend on core) — keep the two constructions in sync.
fn labels(dataset: &Dataset, days: std::ops::Range<usize>) -> CrossSections {
    let start = days.start;
    CrossSections::from_fn(days.len(), dataset.n_stocks(), |d, s| {
        dataset.label(s, start + d)
    })
}

impl<'a> GpEngine<'a> {
    /// Binds an engine to a dataset.
    pub fn new(dataset: &'a Dataset, config: GpConfig) -> GpEngine<'a> {
        let val_labels = labels(dataset, dataset.valid_days());
        let test_labels = labels(dataset, dataset.test_days());
        GpEngine {
            dataset,
            config,
            gate: None,
            val_labels,
            test_labels,
        }
    }

    /// Attaches a weak-correlation gate.
    pub fn with_gate(mut self, gate: &'a CorrelationGate) -> GpEngine<'a> {
        self.gate = Some(gate);
        self
    }

    fn sampler(&self) -> ExprSampler {
        ExprSampler {
            n_features: self.dataset.n_features(),
            n_lags: self.dataset.window(),
            const_prob: self.config.const_prob,
        }
    }

    /// Cross-sections of predictions over `days` for one tree, as a flat
    /// day-major panel.
    fn predictions(&self, expr: &Expr, days: std::ops::Range<usize>) -> CrossSections {
        let k = self.dataset.n_stocks();
        let w = self.dataset.window();
        let panel = self.dataset.panel();
        let start = days.start;
        CrossSections::from_fn(days.len(), k, |d, stock| {
            let day = start + d;
            expr.eval(&|row, lag| panel.feature(stock, row)[day - 1 - lag.min(w - 1)])
        })
    }

    /// Scores one tree: validation IC and portfolio returns; applies the
    /// gate. Constant trees (no feature reads) score −∞.
    fn score(&self, expr: &Expr, stats: &mut GpStats) -> ScoredTree {
        stats.evaluated += 1;
        if !expr.uses_features() {
            return ScoredTree {
                expr: expr.clone(),
                fitness: f64::NEG_INFINITY,
            };
        }
        let preds = self.predictions(expr, self.dataset.valid_days());
        let ic = information_coefficient(&preds, &self.val_labels);
        if let Some(gate) = self.gate {
            let returns = long_short_returns(&preds, &self.val_labels, &self.config.long_short);
            if !gate.passes(&returns) {
                stats.gate_rejected += 1;
                return ScoredTree {
                    expr: expr.clone(),
                    fitness: f64::NEG_INFINITY,
                };
            }
        }
        ScoredTree {
            expr: expr.clone(),
            fitness: ic,
        }
    }

    fn tournament<'p>(&self, rng: &mut SmallRng, pop: &'p [ScoredTree]) -> &'p ScoredTree {
        let t = self.config.tournament_size.min(pop.len()).max(1);
        let mut best = &pop[rng.gen_range(0..pop.len())];
        for _ in 1..t {
            let c = &pop[rng.gen_range(0..pop.len())];
            if c.fitness > best.fitness {
                best = c;
            }
        }
        best
    }

    /// Runs the generational loop.
    pub fn run(&self) -> GpOutcome {
        let start = Instant::now();
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut stats = GpStats::default();
        let sampler = self.sampler();
        let ops = GeneticOps {
            sampler,
            probs: self.config.probs,
            max_size: self.config.max_size,
            new_subtree_depth: 4,
        };

        // Ramped half-and-half initialization.
        let (dmin, dmax) = self.config.init_depth;
        let mut population: Vec<ScoredTree> = (0..self.config.population_size)
            .map(|i| {
                let depth = dmin + i % (dmax - dmin + 1);
                let grow = i % 2 == 0;
                let tree = sampler.tree(&mut rng, depth, grow);
                self.score(&tree, &mut stats)
            })
            .collect();

        let mut best: Option<BestFormula> = None;
        let mut trajectory = Vec::new();
        let update_best =
            |pop: &[ScoredTree], this: &GpEngine<'_>, best: &mut Option<BestFormula>| {
                if let Some(top) = pop
                    .iter()
                    .filter(|t| t.fitness.is_finite())
                    .max_by(|a, b| a.fitness.partial_cmp(&b.fitness).unwrap())
                {
                    if best.as_ref().is_none_or(|b| top.fitness > b.ic) {
                        let preds = this.predictions(&top.expr, this.dataset.valid_days());
                        let returns =
                            long_short_returns(&preds, &this.val_labels, &this.config.long_short);
                        *best = Some(BestFormula {
                            expr: top.expr.clone(),
                            ic: top.fitness,
                            val_returns: returns,
                        });
                    }
                }
            };
        update_best(&population, self, &mut best);
        trajectory.push(best.as_ref().map_or(f64::NEG_INFINITY, |b| b.ic));

        let done = |stats: &GpStats, start: &Instant| match self.config.budget {
            GpBudget::Generations(g) => stats.generations >= g,
            GpBudget::WallTime(d) => start.elapsed() >= d,
        };

        while !done(&stats, &start) {
            let mut next = Vec::with_capacity(self.config.population_size);
            for _ in 0..self.config.population_size {
                let parent = self.tournament(&mut rng, &population);
                let method = ops.pick_method(&mut rng);
                stats.by_method[match method {
                    GpMethod::Crossover => 0,
                    GpMethod::Subtree => 1,
                    GpMethod::Hoist => 2,
                    GpMethod::Point => 3,
                    GpMethod::Reproduction => 4,
                }] += 1;
                let child = match method {
                    GpMethod::Crossover => {
                        let donor = self.tournament(&mut rng, &population);
                        ops.crossover(&mut rng, &parent.expr, &donor.expr)
                    }
                    GpMethod::Subtree => ops.subtree_mutation(&mut rng, &parent.expr),
                    GpMethod::Hoist => ops.hoist_mutation(&mut rng, &parent.expr),
                    GpMethod::Point => ops.point_mutation(&mut rng, &parent.expr),
                    GpMethod::Reproduction => parent.expr.clone(),
                };
                next.push(self.score(&child, &mut stats));
            }
            population = next;
            stats.generations += 1;
            update_best(&population, self, &mut best);
            trajectory.push(best.as_ref().map_or(f64::NEG_INFINITY, |b| b.ic));
        }

        GpOutcome {
            best,
            stats,
            trajectory,
            elapsed: start.elapsed(),
        }
    }

    /// Backtests a formula on validation and test splits (IC, Sharpe,
    /// returns) — the GP counterpart of the core evaluator's `backtest`.
    pub fn backtest(&self, expr: &Expr) -> (SplitScores, SplitScores) {
        let score = |days: std::ops::Range<usize>, labels: &CrossSections| {
            let preds = self.predictions(expr, days);
            let returns = long_short_returns(&preds, labels, &self.config.long_short);
            SplitScores {
                ic: information_coefficient(&preds, labels),
                sharpe: sharpe_ratio(&returns),
                returns,
            }
        };
        (
            score(self.dataset.valid_days(), &self.val_labels),
            score(self.dataset.test_days(), &self.test_labels),
        )
    }
}

/// IC/Sharpe/returns of one split.
#[derive(Debug, Clone)]
pub struct SplitScores {
    /// Mean daily cross-sectional IC.
    pub ic: f64,
    /// Annualized Sharpe ratio.
    pub sharpe: f64,
    /// Daily long-short returns.
    pub returns: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphaevolve_market::{features::FeatureSet, generator::MarketConfig, SplitSpec};

    fn dataset(seed: u64) -> Dataset {
        let md = MarketConfig {
            n_stocks: 20,
            n_days: 160,
            seed,
            ..Default::default()
        }
        .generate();
        Dataset::build(&md, &FeatureSet::paper(), SplitSpec::paper_ratios()).unwrap()
    }

    fn config(generations: usize) -> GpConfig {
        GpConfig {
            population_size: 40,
            budget: GpBudget::Generations(generations),
            seed: 3,
            long_short: LongShortConfig::scaled(20),
            ..Default::default()
        }
    }

    #[test]
    fn finds_a_formula_with_positive_fitness_trend() {
        let ds = dataset(31);
        let engine = GpEngine::new(&ds, config(8));
        let out = engine.run();
        let best = out.best.expect("GP must find a scoring formula");
        assert!(best.ic.is_finite());
        assert_eq!(out.stats.generations, 8);
        assert_eq!(out.trajectory.len(), 9);
        // Best-so-far trajectory is monotone.
        for w in out.trajectory.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // Evaluations = init population + generations * population.
        assert_eq!(out.stats.evaluated, 40 + 8 * 40);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset(32);
        let a = GpEngine::new(&ds, config(4)).run();
        let b = GpEngine::new(&ds, config(4)).run();
        assert_eq!(a.best.as_ref().map(|x| x.ic), b.best.as_ref().map(|x| x.ic));
        assert_eq!(a.stats.evaluated, b.stats.evaluated);
    }

    #[test]
    fn gate_rejection_fires_for_correlated_formulas() {
        let ds = dataset(33);
        let first = GpEngine::new(&ds, config(4)).run();
        let best = first.best.unwrap();
        let mut gate = CorrelationGate::paper();
        gate.accept(best.val_returns.clone());
        let second = GpEngine::new(&ds, config(4)).with_gate(&gate).run();
        assert!(second.stats.gate_rejected > 0);
        if let Some(b) = &second.best {
            let corr = alphaevolve_backtest::return_correlation(&b.val_returns, &best.val_returns);
            assert!(corr <= gate.cutoff() + 1e-9);
        }
    }

    #[test]
    fn backtest_shapes() {
        let ds = dataset(34);
        let engine = GpEngine::new(&ds, config(2));
        let out = engine.run();
        let (val, test) = engine.backtest(&out.best.unwrap().expr);
        assert_eq!(val.returns.len(), ds.valid_days().len());
        assert_eq!(test.returns.len(), ds.test_days().len());
        assert!(val.ic.is_finite() && test.sharpe.is_finite());
    }

    #[test]
    fn walltime_budget_stops() {
        let ds = dataset(35);
        let cfg = GpConfig {
            budget: GpBudget::WallTime(Duration::from_millis(200)),
            ..config(0)
        };
        let start = Instant::now();
        let _ = GpEngine::new(&ds, cfg).run();
        assert!(start.elapsed() < Duration::from_secs(30));
    }
}
