//! Expression trees for formulaic alphas.
//!
//! A formulaic alpha is an algebraic expression over scalar features. A
//! terminal `Feature { row, lag }` reads the input feature matrix cell
//! `X[row][w−1−lag]` — lag 0 is the most recent day of the window, exactly
//! the matrix AlphaEvolve sees. Functions use gplearn's *protected*
//! variants so every tree evaluates to a finite number (the genetic
//! algorithm's classic trick for closure; contrast with AlphaEvolve's
//! kill-on-NaN policy, which is exactly what the paper changes).

use rand::rngs::SmallRng;
use rand::Rng;

/// Unary functions (gplearn function set, protected).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnFunc {
    /// Arithmetic negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Protected square root: `sqrt(|x|)`.
    Sqrt,
    /// Protected natural log: `ln(|x|)`, 0 when `|x| < 1e-3`.
    Log,
    /// Protected inverse: `1/x`, 0 when `|x| < 1e-3`.
    Inv,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
}

impl UnFunc {
    /// Every unary function.
    pub const ALL: [UnFunc; 7] = [
        UnFunc::Neg,
        UnFunc::Abs,
        UnFunc::Sqrt,
        UnFunc::Log,
        UnFunc::Inv,
        UnFunc::Sin,
        UnFunc::Cos,
    ];

    /// Function name for display.
    pub fn name(self) -> &'static str {
        match self {
            UnFunc::Neg => "neg",
            UnFunc::Abs => "abs",
            UnFunc::Sqrt => "sqrt",
            UnFunc::Log => "log",
            UnFunc::Inv => "inv",
            UnFunc::Sin => "sin",
            UnFunc::Cos => "cos",
        }
    }

    /// Applies the (protected) function.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            UnFunc::Neg => -x,
            UnFunc::Abs => x.abs(),
            UnFunc::Sqrt => x.abs().sqrt(),
            UnFunc::Log => {
                if x.abs() < 1e-3 {
                    0.0
                } else {
                    x.abs().ln()
                }
            }
            UnFunc::Inv => {
                if x.abs() < 1e-3 {
                    0.0
                } else {
                    1.0 / x
                }
            }
            UnFunc::Sin => x.sin(),
            UnFunc::Cos => x.cos(),
        }
    }
}

/// Binary functions (gplearn function set, protected).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinFunc {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Protected division: `x/y`, 1 when `|y| < 1e-3`.
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl BinFunc {
    /// Every binary function.
    pub const ALL: [BinFunc; 6] = [
        BinFunc::Add,
        BinFunc::Sub,
        BinFunc::Mul,
        BinFunc::Div,
        BinFunc::Min,
        BinFunc::Max,
    ];

    /// Function name for display.
    pub fn name(self) -> &'static str {
        match self {
            BinFunc::Add => "add",
            BinFunc::Sub => "sub",
            BinFunc::Mul => "mul",
            BinFunc::Div => "div",
            BinFunc::Min => "min",
            BinFunc::Max => "max",
        }
    }

    /// Applies the (protected) function.
    pub fn apply(self, x: f64, y: f64) -> f64 {
        match self {
            BinFunc::Add => x + y,
            BinFunc::Sub => x - y,
            BinFunc::Mul => x * y,
            BinFunc::Div => {
                if y.abs() < 1e-3 {
                    1.0
                } else {
                    x / y
                }
            }
            BinFunc::Min => x.min(y),
            BinFunc::Max => x.max(y),
        }
    }
}

/// An expression-tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Read `X[row][w-1-lag]`.
    Feature {
        /// Feature row index.
        row: u16,
        /// Days back from the newest window column.
        lag: u16,
    },
    /// An ephemeral constant.
    Const(f64),
    /// Unary application.
    Unary(UnFunc, Box<Expr>),
    /// Binary application.
    Binary(BinFunc, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        match self {
            Expr::Feature { .. } | Expr::Const(_) => 1,
            Expr::Unary(_, a) => 1 + a.size(),
            Expr::Binary(_, a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Tree depth (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Expr::Feature { .. } | Expr::Const(_) => 1,
            Expr::Unary(_, a) => 1 + a.depth(),
            Expr::Binary(_, a, b) => 1 + a.depth().max(b.depth()),
        }
    }

    /// Evaluates against one sample's feature window accessor:
    /// `read(row, lag)` must return `X[row][w−1−lag]`.
    pub fn eval(&self, read: &impl Fn(usize, usize) -> f64) -> f64 {
        match self {
            Expr::Feature { row, lag } => read(*row as usize, *lag as usize),
            Expr::Const(c) => *c,
            Expr::Unary(f, a) => f.apply(a.eval(read)),
            Expr::Binary(f, a, b) => f.apply(a.eval(read), b.eval(read)),
        }
    }

    /// True when some terminal reads the feature matrix (a constant-only
    /// tree can never rank stocks).
    pub fn uses_features(&self) -> bool {
        match self {
            Expr::Feature { .. } => true,
            Expr::Const(_) => false,
            Expr::Unary(_, a) => a.uses_features(),
            Expr::Binary(_, a, b) => a.uses_features() || b.uses_features(),
        }
    }

    /// Immutable reference to the node at `index` (pre-order).
    pub fn node(&self, index: usize) -> Option<&Expr> {
        fn walk<'a>(e: &'a Expr, target: usize, counter: &mut usize) -> Option<&'a Expr> {
            if *counter == target {
                return Some(e);
            }
            *counter += 1;
            match e {
                Expr::Unary(_, a) => walk(a, target, counter),
                Expr::Binary(_, a, b) => {
                    walk(a, target, counter).or_else(|| walk(b, target, counter))
                }
                _ => None,
            }
        }
        walk(self, index, &mut 0)
    }

    /// Mutable reference to the node at `index` (pre-order).
    pub fn node_mut(&mut self, index: usize) -> Option<&mut Expr> {
        fn walk<'a>(e: &'a mut Expr, target: usize, counter: &mut usize) -> Option<&'a mut Expr> {
            if *counter == target {
                return Some(e);
            }
            *counter += 1;
            match e {
                Expr::Unary(_, a) => walk(a, target, counter),
                Expr::Binary(_, a, b) => {
                    if let r @ Some(_) = walk(a, target, counter) {
                        return r;
                    }
                    walk(b, target, counter)
                }
                _ => None,
            }
        }
        walk(self, index, &mut 0)
    }
}

impl std::fmt::Display for Expr {
    /// S-expression style, e.g. `div(sub(x11[0], x8[0]), add(x9[0], 0.001))`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Feature { row, lag } => write!(f, "x{row}[{lag}]"),
            Expr::Const(c) => write!(f, "{c:?}"),
            Expr::Unary(func, a) => write!(f, "{}({a})", func.name()),
            Expr::Binary(func, a, b) => write!(f, "{}({a}, {b})", func.name()),
        }
    }
}

/// Terminal/interior sampling used by generation and mutation.
#[derive(Debug, Clone, Copy)]
pub struct ExprSampler {
    /// Feature rows available.
    pub n_features: usize,
    /// Lags available (`0..n_lags`).
    pub n_lags: usize,
    /// Probability a sampled terminal is a constant.
    pub const_prob: f64,
}

impl ExprSampler {
    /// Samples a terminal node.
    pub fn terminal(&self, rng: &mut SmallRng) -> Expr {
        if rng.gen::<f64>() < self.const_prob {
            Expr::Const(rng.gen_range(-1.0..1.0))
        } else {
            Expr::Feature {
                row: rng.gen_range(0..self.n_features) as u16,
                lag: rng.gen_range(0..self.n_lags) as u16,
            }
        }
    }

    /// Grows a random tree: `grow = true` mixes terminals in early
    /// (gplearn's "grow"), otherwise every branch reaches `depth`
    /// ("full").
    pub fn tree(&self, rng: &mut SmallRng, depth: usize, grow: bool) -> Expr {
        if depth <= 1 || (grow && rng.gen::<f64>() < 0.3) {
            return self.terminal(rng);
        }
        if rng.gen::<f64>() < 0.25 {
            let f = UnFunc::ALL[rng.gen_range(0..UnFunc::ALL.len())];
            Expr::Unary(f, Box::new(self.tree(rng, depth - 1, grow)))
        } else {
            let f = BinFunc::ALL[rng.gen_range(0..BinFunc::ALL.len())];
            Expr::Binary(
                f,
                Box::new(self.tree(rng, depth - 1, grow)),
                Box::new(self.tree(rng, depth - 1, grow)),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn alpha101() -> Expr {
        // (close - open) / ((high - low) + 0.001) with paper rows.
        Expr::Binary(
            BinFunc::Div,
            Box::new(Expr::Binary(
                BinFunc::Sub,
                Box::new(Expr::Feature { row: 11, lag: 0 }),
                Box::new(Expr::Feature { row: 8, lag: 0 }),
            )),
            Box::new(Expr::Binary(
                BinFunc::Add,
                Box::new(Expr::Binary(
                    BinFunc::Sub,
                    Box::new(Expr::Feature { row: 9, lag: 0 }),
                    Box::new(Expr::Feature { row: 10, lag: 0 }),
                )),
                Box::new(Expr::Const(0.001)),
            )),
        )
    }

    #[test]
    fn eval_alpha101() {
        let e = alpha101();
        // close=1.0, open=0.9, high=1.1, low=0.85
        let read = |row: usize, _lag: usize| match row {
            11 => 1.0,
            8 => 0.9,
            9 => 1.1,
            10 => 0.85,
            _ => 0.0,
        };
        let v = e.eval(&read);
        assert!((v - (1.0 - 0.9) / (1.1 - 0.85 + 0.001)).abs() < 1e-12);
    }

    #[test]
    fn size_and_depth() {
        let e = alpha101();
        assert_eq!(e.size(), 9);
        assert_eq!(e.depth(), 4);
    }

    #[test]
    fn protected_ops_never_nan() {
        let mut rng = SmallRng::seed_from_u64(1);
        let sampler = ExprSampler {
            n_features: 13,
            n_lags: 13,
            const_prob: 0.2,
        };
        for _ in 0..300 {
            let e = sampler.tree(&mut rng, 6, true);
            // Evaluate on adversarial inputs including zeros and huge values.
            for &x in &[0.0, 1e-9, -1e12, 7.3] {
                let v = e.eval(&|_, _| x);
                assert!(!v.is_nan(), "{e} -> NaN on input {x}");
            }
        }
    }

    #[test]
    fn protected_div_and_log() {
        assert_eq!(BinFunc::Div.apply(5.0, 0.0), 1.0);
        assert_eq!(UnFunc::Log.apply(0.0), 0.0);
        assert_eq!(UnFunc::Inv.apply(0.0), 0.0);
        assert_eq!(UnFunc::Sqrt.apply(-4.0), 2.0);
    }

    #[test]
    fn node_indexing_is_preorder() {
        let e = alpha101();
        assert!(matches!(e.node(0), Some(Expr::Binary(BinFunc::Div, _, _))));
        assert!(matches!(e.node(1), Some(Expr::Binary(BinFunc::Sub, _, _))));
        assert!(matches!(e.node(2), Some(Expr::Feature { row: 11, .. })));
        assert!(matches!(e.node(8), Some(Expr::Const(_))));
        assert!(e.node(9).is_none());
    }

    #[test]
    fn node_mut_can_replace_subtree() {
        let mut e = alpha101();
        *e.node_mut(2).unwrap() = Expr::Const(42.0);
        assert!(matches!(e.node(2), Some(Expr::Const(c)) if *c == 42.0));
        assert_eq!(e.size(), 9);
    }

    #[test]
    fn uses_features_detects_constant_trees() {
        assert!(alpha101().uses_features());
        let c = Expr::Unary(UnFunc::Sin, Box::new(Expr::Const(1.0)));
        assert!(!c.uses_features());
    }

    #[test]
    fn full_trees_reach_requested_depth() {
        let mut rng = SmallRng::seed_from_u64(2);
        let sampler = ExprSampler {
            n_features: 13,
            n_lags: 13,
            const_prob: 0.1,
        };
        for _ in 0..50 {
            let e = sampler.tree(&mut rng, 4, false);
            assert_eq!(e.depth(), 4);
        }
    }

    #[test]
    fn display_round_readable() {
        let s = alpha101().to_string();
        assert_eq!(s, "div(sub(x11[0], x8[0]), add(sub(x9[0], x10[0]), 0.001))");
    }
}
