//! Genetic operators with the paper's §5.2 probabilities.
//!
//! gplearn's operator suite: subtree **crossover**, **subtree mutation**
//! (replace a subtree with a random one), **hoist mutation** (replace the
//! tree by one of its own subtrees — probability 0 in the paper, but
//! implemented and tested), **point mutation** (walk the tree and replace
//! individual nodes in place with same-arity substitutes at the *point
//! replace* rate), and reproduction for the remaining probability mass.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::expr::{BinFunc, Expr, ExprSampler, UnFunc};

/// Method probabilities (paper §5.2). The remainder up to 1.0 reproduces
/// the tournament winner unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpProbabilities {
    /// Subtree crossover with a second tournament winner.
    pub crossover: f64,
    /// Replace a random subtree with a freshly grown one.
    pub subtree_mutation: f64,
    /// Replace the tree with one of its own subtrees.
    pub hoist_mutation: f64,
    /// Per-offspring probability of running a point-mutation pass.
    pub point_mutation: f64,
    /// Per-node replacement rate inside a point-mutation pass.
    pub point_replace: f64,
}

impl Default for GpProbabilities {
    /// The paper's values: 0.4 / 0.01 / 0 / 0.01 / 0.4.
    fn default() -> Self {
        GpProbabilities {
            crossover: 0.4,
            subtree_mutation: 0.01,
            hoist_mutation: 0.0,
            point_mutation: 0.01,
            point_replace: 0.4,
        }
    }
}

/// Which method produced an offspring (for stats/tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpMethod {
    /// Subtree crossover.
    Crossover,
    /// Subtree mutation.
    Subtree,
    /// Hoist mutation.
    Hoist,
    /// Point mutation.
    Point,
    /// Unchanged copy.
    Reproduction,
}

/// Stateless genetic-operator toolbox.
#[derive(Debug, Clone, Copy)]
pub struct GeneticOps {
    /// Terminal/interior sampling space.
    pub sampler: ExprSampler,
    /// Method probabilities.
    pub probs: GpProbabilities,
    /// Node-count cap; offspring exceeding it fall back to reproduction.
    pub max_size: usize,
    /// Depth of freshly grown subtrees.
    pub new_subtree_depth: usize,
}

impl GeneticOps {
    /// Picks a method according to the configured probabilities.
    pub fn pick_method(&self, rng: &mut SmallRng) -> GpMethod {
        let p = self.probs;
        let mut x = rng.gen::<f64>();
        for (prob, method) in [
            (p.crossover, GpMethod::Crossover),
            (p.subtree_mutation, GpMethod::Subtree),
            (p.hoist_mutation, GpMethod::Hoist),
            (p.point_mutation, GpMethod::Point),
        ] {
            if x < prob {
                return method;
            }
            x -= prob;
        }
        GpMethod::Reproduction
    }

    /// Subtree crossover: a random subtree of `a` is replaced by a random
    /// subtree of `b`. Falls back to a clone of `a` when the child would
    /// exceed `max_size`.
    pub fn crossover(&self, rng: &mut SmallRng, a: &Expr, b: &Expr) -> Expr {
        let mut child = a.clone();
        let at = rng.gen_range(0..child.size());
        let donor_at = rng.gen_range(0..b.size());
        let donor = b.node(donor_at).expect("donor index in range").clone();
        *child.node_mut(at).expect("target index in range") = donor;
        if child.size() > self.max_size {
            a.clone()
        } else {
            child
        }
    }

    /// Subtree mutation: crossover with a freshly grown random donor.
    pub fn subtree_mutation(&self, rng: &mut SmallRng, a: &Expr) -> Expr {
        let donor = self.sampler.tree(rng, self.new_subtree_depth, true);
        let mut child = a.clone();
        let at = rng.gen_range(0..child.size());
        *child.node_mut(at).expect("target index in range") = donor;
        if child.size() > self.max_size {
            a.clone()
        } else {
            child
        }
    }

    /// Hoist mutation: the tree becomes one of its own subtrees (a
    /// bloat-control operator).
    pub fn hoist_mutation(&self, rng: &mut SmallRng, a: &Expr) -> Expr {
        let at = rng.gen_range(0..a.size());
        a.node(at).expect("index in range").clone()
    }

    /// Point mutation: every node is replaced with probability
    /// `point_replace` by a same-arity substitute (terminals by terminals,
    /// unary by unary, binary by binary), preserving children.
    pub fn point_mutation(&self, rng: &mut SmallRng, a: &Expr) -> Expr {
        let mut child = a.clone();
        let n = child.size();
        for i in 0..n {
            if rng.gen::<f64>() >= self.probs.point_replace {
                continue;
            }
            let node = child.node_mut(i).expect("index in range");
            match node {
                Expr::Feature { .. } | Expr::Const(_) => {
                    *node = self.sampler.terminal(rng);
                }
                Expr::Unary(f, _) => {
                    *f = UnFunc::ALL[rng.gen_range(0..UnFunc::ALL.len())];
                }
                Expr::Binary(f, _, _) => {
                    *f = BinFunc::ALL[rng.gen_range(0..BinFunc::ALL.len())];
                }
            }
        }
        child
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ops() -> GeneticOps {
        GeneticOps {
            sampler: ExprSampler {
                n_features: 13,
                n_lags: 13,
                const_prob: 0.15,
            },
            probs: GpProbabilities::default(),
            max_size: 48,
            new_subtree_depth: 4,
        }
    }

    fn random_tree(rng: &mut SmallRng) -> Expr {
        ops().sampler.tree(rng, 5, true)
    }

    #[test]
    fn crossover_respects_size_cap() {
        let o = ops();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..300 {
            let a = random_tree(&mut rng);
            let b = random_tree(&mut rng);
            let c = o.crossover(&mut rng, &a, &b);
            assert!(c.size() <= o.max_size);
        }
    }

    #[test]
    fn point_mutation_preserves_shape() {
        let o = ops();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..200 {
            let a = random_tree(&mut rng);
            let c = o.point_mutation(&mut rng, &a);
            assert_eq!(
                a.size(),
                c.size(),
                "point mutation must not change node count"
            );
            assert_eq!(a.depth(), c.depth());
        }
    }

    #[test]
    fn hoist_shrinks_or_keeps() {
        let o = ops();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let a = random_tree(&mut rng);
            let c = o.hoist_mutation(&mut rng, &a);
            assert!(c.size() <= a.size());
        }
    }

    #[test]
    fn method_distribution_matches_probabilities() {
        let o = ops();
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            let m = o.pick_method(&mut rng);
            counts[match m {
                GpMethod::Crossover => 0,
                GpMethod::Subtree => 1,
                GpMethod::Hoist => 2,
                GpMethod::Point => 3,
                GpMethod::Reproduction => 4,
            }] += 1;
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!(
            (frac(counts[0]) - 0.4).abs() < 0.01,
            "crossover {}",
            frac(counts[0])
        );
        assert!((frac(counts[1]) - 0.01).abs() < 0.005);
        assert_eq!(counts[2], 0, "hoist probability is 0 in the paper");
        assert!((frac(counts[3]) - 0.01).abs() < 0.005);
        assert!(
            (frac(counts[4]) - 0.58).abs() < 0.01,
            "reproduction {}",
            frac(counts[4])
        );
    }

    #[test]
    fn subtree_mutation_changes_tree_often() {
        let o = ops();
        let mut rng = SmallRng::seed_from_u64(5);
        let a = random_tree(&mut rng);
        let changed = (0..20)
            .filter(|_| o.subtree_mutation(&mut rng, &a) != a)
            .count();
        assert!(changed > 10);
    }
}
