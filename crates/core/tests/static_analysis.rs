//! Differential battery for the static-analysis subsystem: every verdict
//! the abstract interpreter hands the search loop is checked against the
//! dynamic engines it stands in for.
//!
//! The three contracts under test:
//!
//! 1. A program rejected as *constant* really does emit bitwise-uniform
//!    prediction cross-sections on every validation day (so its rank IC
//!    is degenerate and skipping evaluation loses nothing).
//! 2. A program rejected as *always NaN* really does produce no fitness
//!    from the evaluator.
//! 3. Programs the canonicalizer maps to the same form — register
//!    renamings, identity-op wrappings — share a fingerprint and produce
//!    bit-identical evaluations, so collapsing them onto one cache slot
//!    is sound.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use alphaevolve_core::fingerprint::fingerprint_analyzed;
use alphaevolve_core::{
    compile, init, AlphaConfig, AlphaProgram, ColumnarInterpreter, EvalOptions, Evaluator,
    FunctionId, GroupIndex, Instruction, Kind, Op, StaticVerdict,
};
use alphaevolve_market::{
    features::FeatureSet, generator::MarketConfig, Dataset, DayMajorPanel, SplitSpec,
};

fn tiny_evaluator() -> Evaluator {
    let market = MarketConfig {
        n_stocks: 8,
        n_days: 110,
        seed: 1234,
        ..Default::default()
    }
    .generate();
    let dataset = Dataset::build(&market, &FeatureSet::paper(), SplitSpec::paper_ratios()).unwrap();
    Evaluator::new(
        AlphaConfig::default(),
        EvalOptions::default(),
        Arc::new(dataset),
    )
}

/// A random program from a seed, using the full op set.
fn random_program(seed: u64, n_setup: usize, n_predict: usize, n_update: usize) -> AlphaProgram {
    let cfg = AlphaConfig::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    init::random_alpha(
        &cfg,
        &mut rng,
        n_setup.max(1),
        n_predict.max(1),
        n_update.max(1),
    )
}

/// A random *deterministic* program (no stochastic ops), so evaluations
/// of alpha-equivalent variants cannot diverge through the RNG stream.
fn random_deterministic_program(seed: u64, len: usize) -> AlphaProgram {
    let cfg = AlphaConfig::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    let full: Vec<Op> = Op::ALL
        .iter()
        .copied()
        .filter(|o| !o.is_stochastic())
        .collect();
    let setup: Vec<Op> = full.iter().copied().filter(|o| !o.is_relation()).collect();
    let mut prog = AlphaProgram::new();
    for f in FunctionId::ALL {
        let pool = if f == FunctionId::Setup {
            &setup
        } else {
            &full
        };
        for _ in 0..len.max(1) {
            prog.function_mut(f)
                .push(Instruction::random(&mut rng, pool, &cfg));
        }
    }
    prog
}

/// Drives the production interpreter over the full train + validation
/// schedule and returns one prediction row per validation day.
fn predict_rows(prog: &AlphaProgram, ev: &Evaluator) -> Vec<Vec<f64>> {
    let cfg = ev.config();
    let ds = ev.dataset();
    let groups = GroupIndex::from_universe(ds.universe());
    let panel = DayMajorPanel::from_panel(ds.panel());
    let compiled = compile(prog, cfg, ds.n_stocks());
    let mut col = ColumnarInterpreter::new(cfg, ds, &panel, &groups, ev.options().seed);
    col.run_setup(&compiled);
    for day in ds.train_days() {
        col.train_day(&compiled, day, true);
    }
    let mut rows = Vec::new();
    let mut row = vec![0.0; ds.n_stocks()];
    for day in ds.valid_days() {
        col.predict_day(&compiled, day, &mut row);
        rows.push(row.clone());
    }
    rows
}

fn row_is_bitwise_uniform(row: &[f64]) -> bool {
    row.windows(2).all(|w| w[0].to_bits() == w[1].to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness of the pre-evaluation verdicts against the dynamic
    /// engines, over random programs spanning the full op set. The
    /// verdict is computed exactly the way the search loop computes it
    /// (prune → canonicalize → abstract-interpret), and checked against
    /// the program the search loop would have evaluated.
    #[test]
    fn static_verdicts_are_dynamically_sound(
        seed in any::<u64>(),
        ns in 1usize..5,
        np in 1usize..8,
        nu in 1usize..6,
    ) {
        let ev = tiny_evaluator();
        let prog = random_program(seed, ns, np, nu);
        let analyzed = fingerprint_analyzed(&prog, ev.config());
        let effective = &analyzed.pruned.program;
        match analyzed.facts.verdict() {
            StaticVerdict::Accept => {}
            StaticVerdict::RejectConstant => {
                // Uniform claim: every validation-day cross-section is
                // bitwise flat, so the rank IC has zero variance.
                for (day, row) in predict_rows(effective, &ev).iter().enumerate() {
                    prop_assert!(
                        row_is_bitwise_uniform(row),
                        "rejected-as-constant program varied on day {day}: {row:?}"
                    );
                }
                // And a degenerate IC never yields a usable fitness.
                let eval = ev.evaluate_opt(effective, false);
                prop_assert!(
                    eval.fitness.is_none() || eval.fitness == Some(0.0),
                    "constant program got fitness {:?}",
                    eval.fitness
                );
            }
            StaticVerdict::RejectAlwaysNan => {
                for (day, row) in predict_rows(effective, &ev).iter().enumerate() {
                    prop_assert!(
                        row.iter().all(|x| x.is_nan()),
                        "rejected-as-NaN program produced non-NaN on day {day}: {row:?}"
                    );
                }
                let eval = ev.evaluate_opt(effective, false);
                prop_assert!(
                    eval.fitness.is_none(),
                    "always-NaN program got fitness {:?}",
                    eval.fitness
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Register renaming maps to the same canonical form: equal
    /// fingerprint, equal verdict, and (for deterministic programs,
    /// where the RNG stream cannot interfere) a bit-identical
    /// evaluation — so routing both through one cache slot is sound.
    #[test]
    fn renamed_programs_share_fingerprint_verdict_and_evaluation(
        seed in any::<u64>(),
        len in 1usize..7,
    ) {
        let cfg = AlphaConfig::default();
        let prog = random_deterministic_program(seed, len);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5A5A);
        let mut perm_s: Vec<u8> = (0..cfg.n_scalars as u8).collect();
        let mut perm_v: Vec<u8> = (0..cfg.n_vectors as u8).collect();
        let mut perm_m: Vec<u8> = (0..cfg.n_matrices as u8).collect();
        shuffle_tail(&mut perm_s, 2, &mut rng); // keep s0, s1
        shuffle_tail(&mut perm_v, 0, &mut rng);
        shuffle_tail(&mut perm_m, 1, &mut rng); // keep m0
        let renamed = apply_renaming(&prog, &perm_s, &perm_v, &perm_m);

        let a = fingerprint_analyzed(&prog, &cfg);
        let b = fingerprint_analyzed(&renamed, &cfg);
        prop_assert_eq!(a.fingerprint, b.fingerprint, "fingerprints diverged");
        prop_assert_eq!(a.facts.verdict(), b.facts.verdict(), "verdicts diverged");

        let ev = tiny_evaluator();
        let ea = ev.evaluate_opt(&prog, false);
        let eb = ev.evaluate_opt(&renamed, false);
        prop_assert_eq!(
            ea.fitness.map(f64::to_bits),
            eb.fitness.map(f64::to_bits),
            "fitness diverged under renaming"
        );
    }

    /// Wrapping the prediction in an algebraic identity (multiply by a
    /// setup-constant one, routed through an otherwise-unused register)
    /// canonicalizes away: same fingerprint, bit-identical evaluation.
    #[test]
    fn identity_wrapped_programs_share_fingerprint_and_evaluation(
        seed in any::<u64>(),
        len in 1usize..6,
    ) {
        let cfg = AlphaConfig::default();
        let prog = random_deterministic_program(seed, len);
        // Pick a scratch scalar the program never touches; skip the rare
        // draw where every register is in use.
        let free = (2..cfg.n_scalars as u8).rev().find(|&r| {
            FunctionId::ALL.iter().all(|&f| {
                prog.function(f).iter().all(|i| {
                    let kinds = i.op.input_kinds();
                    let reads = kinds.first().is_some_and(|&k| k == Kind::S && i.in1 == r)
                        || (kinds.len() > 1 && kinds[1] == Kind::S && i.in2 == r);
                    let writes = i.op != Op::NoOp
                        && i.op.output_kind() == Kind::S
                        && i.out == r;
                    !reads && !writes
                })
            })
        });
        let Some(free) = free else { return };

        let mut wrapped = prog.clone();
        wrapped
            .setup
            .push(Instruction::new(Op::SConst, 0, 0, free, [1.0, 0.0], [0; 2]));
        wrapped
            .predict
            .push(Instruction::new(Op::SMul, 1, free, 1, [0.0; 2], [0; 2]));

        let cfg_ref = &cfg;
        let a = fingerprint_analyzed(&prog, cfg_ref);
        let b = fingerprint_analyzed(&wrapped, cfg_ref);
        prop_assert_eq!(
            a.fingerprint, b.fingerprint,
            "multiply-by-one wrapper survived canonicalization"
        );

        let ev = tiny_evaluator();
        let ea = ev.evaluate_opt(&prog, false);
        let eb = ev.evaluate_opt(&wrapped, false);
        prop_assert_eq!(
            ea.fitness.map(f64::to_bits),
            eb.fitness.map(f64::to_bits),
            "fitness diverged under identity wrapping"
        );
    }
}

/// Proptest only samples the verdict space; these crafted programs pin
/// each rejecting verdict to a known trigger so the soundness branches
/// above are provably exercised.
#[test]
fn crafted_constant_program_is_rejected_and_uniform() {
    let ev = tiny_evaluator();
    let mut prog = AlphaProgram::new();
    prog.setup.push(Instruction::nop());
    // The input read is dead (s1 is overwritten by a constant), which is
    // exactly the shape a mutated-away alpha takes in the wild.
    prog.predict
        .push(Instruction::new(Op::MGet, 0, 0, 2, [0.0; 2], [1, 2]));
    prog.predict
        .push(Instruction::new(Op::SConst, 0, 0, 1, [0.5, 0.0], [0; 2]));
    prog.update.push(Instruction::nop());

    let analyzed = fingerprint_analyzed(&prog, ev.config());
    assert_eq!(analyzed.facts.verdict(), StaticVerdict::RejectConstant);
    assert!(analyzed.facts.constant && analyzed.facts.uniform);
    for row in predict_rows(&analyzed.pruned.program, &ev) {
        assert!(row.iter().all(|x| x.to_bits() == 0.5f64.to_bits()));
    }
    let eval = ev.evaluate_opt(&analyzed.pruned.program, false);
    assert!(eval.fitness.is_none() || eval.fitness == Some(0.0));
}

#[test]
fn crafted_nan_program_is_rejected_and_unfit() {
    let ev = tiny_evaluator();
    let mut prog = AlphaProgram::new();
    // s2 = 0.0; s1 = s2 / s2 == 0/0 == NaN on every stock, every day.
    prog.setup
        .push(Instruction::new(Op::SConst, 0, 0, 2, [0.0, 0.0], [0; 2]));
    prog.predict
        .push(Instruction::new(Op::MGet, 0, 0, 3, [0.0; 2], [1, 2]));
    prog.predict
        .push(Instruction::new(Op::SDiv, 2, 2, 1, [0.0; 2], [0; 2]));
    prog.update.push(Instruction::nop());

    let analyzed = fingerprint_analyzed(&prog, ev.config());
    assert_eq!(analyzed.facts.verdict(), StaticVerdict::RejectAlwaysNan);
    for row in predict_rows(&analyzed.pruned.program, &ev) {
        assert!(row.iter().all(|x| x.is_nan()));
    }
    assert!(ev
        .evaluate_opt(&analyzed.pruned.program, false)
        .fitness
        .is_none());
}

/// The paper's hand-built seed must never be statically rejected — the
/// search starts from it.
#[test]
fn domain_expert_seed_is_accepted() {
    let cfg = AlphaConfig::default();
    let prog = init::domain_expert(&cfg);
    let analyzed = fingerprint_analyzed(&prog, &cfg);
    assert_eq!(analyzed.facts.verdict(), StaticVerdict::Accept);
}

fn shuffle_tail(perm: &mut [u8], fixed: usize, rng: &mut SmallRng) {
    use rand::Rng;
    let n = perm.len();
    for i in (fixed + 1..n).rev() {
        let j = rng.gen_range(fixed..=i);
        perm.swap(i, j);
    }
}

fn apply_renaming(prog: &AlphaProgram, s: &[u8], v: &[u8], m: &[u8]) -> AlphaProgram {
    let map = |k: Kind, r: u8| -> u8 {
        match k {
            Kind::S => s[r as usize],
            Kind::V => v[r as usize],
            Kind::M => m[r as usize],
        }
    };
    let mut out = prog.clone();
    for f in FunctionId::ALL {
        for instr in out.function_mut(f) {
            let kinds = instr.op.input_kinds();
            if !kinds.is_empty() {
                instr.in1 = map(kinds[0], instr.in1);
            }
            if kinds.len() > 1 {
                instr.in2 = map(kinds[1], instr.in2);
            }
            if instr.op != Op::NoOp {
                instr.out = map(instr.op.output_kind(), instr.out);
            }
        }
    }
    out
}
