//! Accuracy battery for the polynomial transcendental kernels, plus
//! bitwise engine-parity over transcendental-dense programs.
//!
//! The kernels in `core::kernels` document a ≤ 2 ULP bound against the
//! correctly rounded result. The host libm is itself within ~1 ULP, so
//! these properties assert **≤ 4 ULP against the host libm** across the
//! full input domain — bit-pattern inputs cover NaN payloads, ±inf,
//! subnormals, and both zeros.
//!
//! The parity properties then check the actual contract the engines rely
//! on: columnar, batched, and lockstep `reference-oracle` execution of
//! programs *dense* in transcendental and rank ops produce identical bits.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use alphaevolve_core::kernels;
use alphaevolve_core::{
    compile, liveness, AlphaConfig, AlphaProgram, ColumnarInterpreter, EvalOptions, Evaluator,
    FunctionId, GroupIndex, Instruction, Op,
};
use alphaevolve_market::{
    features::FeatureSet, generator::MarketConfig, Dataset, DayMajorPanel, SplitSpec,
};

/// ULP distance through the monotone bit mapping; NaN≡NaN, NaN≢number.
fn ulps(a: f64, b: f64) -> u64 {
    if a.is_nan() && b.is_nan() {
        0
    } else if a.is_nan() || b.is_nan() {
        u64::MAX
    } else {
        kernels::rank_key(a).abs_diff(kernels::rank_key(b))
    }
}

const TOL: u64 = 4;

fn assert_close(name: &str, x: f64, got: f64, want: f64) {
    let d = ulps(got, want);
    assert!(
        d <= TOL,
        "{name}({x:e} = {:#x}): kernel {got:e} vs libm {want:e} ({d} ULP)",
        x.to_bits()
    );
}

/// Hand-picked edge inputs every kernel must survive: zeros, subnormals,
/// normal extremes, reduction boundaries, domain edges, non-finites.
fn edge_inputs() -> Vec<f64> {
    let mut v = vec![
        0.0,
        -0.0,
        f64::MIN_POSITIVE,
        -f64::MIN_POSITIVE,
        f64::from_bits(1),        // smallest subnormal
        f64::from_bits(0xF_FFFF), // larger subnormal
        f64::MAX,
        f64::MIN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        -f64::NAN,
        1.0,
        -1.0,
        0.5,
        -0.5,
        0.975, // asin's split-word branch boundary
        2.0_f64.powi(-27),
        2.0_f64.powi(-29),
        2.0_f64.powi(-57),
        709.782712893384,   // exp overflow edge
        -745.1332191019412, // exp underflow edge
        1.0e6,              // trig reduction fallback boundary
        -1.0e6,
        999_999.999_9,
        1.0e6 + 0.0001,
        0.6744, // tan kernel's big-|x| boundary
    ];
    for k in 1..20 {
        let m = k as f64 * std::f64::consts::FRAC_PI_2;
        v.push(m);
        v.push(-m);
        v.push(m + 1e-9);
        v.push(m.next_up());
        v.push(m.next_down());
    }
    v
}

#[test]
fn kernels_match_libm_on_edges() {
    for x in edge_inputs() {
        assert_close("exp", x, kernels::exp(x), x.exp());
        assert_close("ln", x, kernels::ln(x), x.ln());
        assert_close("sin", x, kernels::sin(x), x.sin());
        assert_close("cos", x, kernels::cos(x), x.cos());
        assert_close("tan", x, kernels::tan(x), x.tan());
        assert_close("asin", x, kernels::asin(x), x.asin());
        assert_close("acos", x, kernels::acos(x), x.acos());
        assert_close("atan", x, kernels::atan(x), x.atan());
    }
}

proptest! {
    /// Full-domain sweep: inputs are raw bit patterns, so every class of
    /// f64 (subnormals, NaN payloads, ±inf, both zeros) is generated.
    #[test]
    fn kernels_match_libm_full_domain(bits in any::<u64>()) {
        let x = f64::from_bits(bits);
        assert_close("exp", x, kernels::exp(x), x.exp());
        assert_close("ln", x, kernels::ln(x), x.ln());
        assert_close("sin", x, kernels::sin(x), x.sin());
        assert_close("cos", x, kernels::cos(x), x.cos());
        assert_close("tan", x, kernels::tan(x), x.tan());
        assert_close("asin", x, kernels::asin(x), x.asin());
        assert_close("acos", x, kernels::acos(x), x.acos());
        assert_close("atan", x, kernels::atan(x), x.atan());
    }

    /// Dense sweep of the region evaluation actually lives in, where the
    /// branch-free cores (not the libm fallbacks) do the work.
    #[test]
    fn kernels_match_libm_in_working_range(mantissa in any::<u64>(), scale in -20i32..20) {
        let x = (mantissa as f64 / u64::MAX as f64 - 0.5) * 2.0_f64.powi(scale);
        assert_close("exp", x, kernels::exp(x), x.exp());
        assert_close("ln", x, kernels::ln(x), x.ln());
        assert_close("sin", x, kernels::sin(x), x.sin());
        assert_close("cos", x, kernels::cos(x), x.cos());
        assert_close("tan", x, kernels::tan(x), x.tan());
        assert_close("asin", x, kernels::asin(x), x.asin());
        assert_close("acos", x, kernels::acos(x), x.acos());
        assert_close("atan", x, kernels::atan(x), x.atan());
    }

    /// The plane variants are bitwise the scalar kernels (the columnar
    /// engine uses the planes, the lockstep oracle the scalars — this is
    /// the parity contract at the kernel level).
    #[test]
    fn plane_kernels_match_scalar_bitwise(seed in any::<u64>(), scale in -8i32..24) {
        use rand::Rng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut src: Vec<f64> = (0..37)
            .map(|_| (rng.gen::<f64>() - 0.5) * 2.0_f64.powi(scale))
            .collect();
        // Salt the plane with the rare-path inputs the patch pass covers.
        src[5] = f64::NAN;
        src[11] = f64::INFINITY;
        src[17] = -3.9e12;
        src[23] = -0.0;
        src[29] = -src[29].abs(); // a guaranteed-negative ln input
        let mut dst = vec![0.0; src.len()];
        kernels::sin_plane(&src, &mut dst);
        for (&x, &d) in src.iter().zip(&dst) {
            prop_assert_eq!(d.to_bits(), kernels::sin(x).to_bits());
        }
        kernels::cos_plane(&src, &mut dst);
        for (&x, &d) in src.iter().zip(&dst) {
            prop_assert_eq!(d.to_bits(), kernels::cos(x).to_bits());
        }
        kernels::ln_plane(&src, &mut dst);
        for (&x, &d) in src.iter().zip(&dst) {
            prop_assert_eq!(d.to_bits(), kernels::ln(x).to_bits());
        }
        kernels::exp_plane(&src, &mut dst);
        for (&x, &d) in src.iter().zip(&dst) {
            prop_assert_eq!(d.to_bits(), kernels::exp(x).to_bits());
        }
    }
}

// ---------------------------------------------------------------------------
// Engine parity over transcendental-dense programs
// ---------------------------------------------------------------------------

/// A random program drawn from a pool dense in transcendental and rank
/// ops (plus just enough arithmetic/extraction to move data between
/// kinds), exercising exactly the kernels this PR rewrote.
fn transcendental_dense_program(seed: u64, ns: usize, np: usize, nu: usize) -> AlphaProgram {
    let cfg = AlphaConfig::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    let pool: Vec<Op> = vec![
        Op::SSin,
        Op::SCos,
        Op::STan,
        Op::SArcSin,
        Op::SArcCos,
        Op::SArcTan,
        Op::SExp,
        Op::SLn,
        Op::RelRank,
        Op::RelRankSector,
        Op::RelRankIndustry,
        Op::MatMul,
        Op::MTranspose,
        Op::MMean,
        Op::SAdd,
        Op::SMul,
    ];
    let setup_pool: Vec<Op> = pool.iter().copied().filter(|o| !o.is_relation()).collect();
    let mut prog = AlphaProgram::new();
    for (f, n) in [
        (FunctionId::Setup, ns),
        (FunctionId::Predict, np),
        (FunctionId::Update, nu),
    ] {
        let p = if f == FunctionId::Setup {
            &setup_pool
        } else {
            &pool
        };
        for _ in 0..n.max(1) {
            prog.function_mut(f)
                .push(Instruction::random(&mut rng, p, &cfg));
        }
    }
    prog
}

fn fixture() -> &'static (Dataset, GroupIndex, DayMajorPanel) {
    static FIXTURE: std::sync::OnceLock<(Dataset, GroupIndex, DayMajorPanel)> =
        std::sync::OnceLock::new();
    FIXTURE.get_or_init(|| {
        let market = MarketConfig {
            n_stocks: 11,
            n_days: 115,
            seed: 777,
            n_sectors: 3,
            ..Default::default()
        }
        .generate();
        let ds = Dataset::build(&market, &FeatureSet::paper(), SplitSpec::paper_ratios()).unwrap();
        let groups = GroupIndex::from_universe(ds.universe());
        let panel = DayMajorPanel::from_panel(ds.panel());
        (ds, groups, panel)
    })
}

#[cfg(feature = "reference-oracle")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Columnar vs lockstep over transcendental-dense programs: identical
    /// prediction bits on every day. This is the sharpest probe of the
    /// shared-kernel contract — any divergence between the plane kernels
    /// and the scalar kernels shows up here.
    #[test]
    fn transcendental_dense_columnar_matches_lockstep(
        seed in any::<u64>(),
        interp_seed in any::<u64>(),
        np in 2usize..14,
        nu in 1usize..8,
    ) {
        use alphaevolve_core::Interpreter;
        let cfg = AlphaConfig::default();
        let (ds, groups, panel) = fixture();
        let prog = transcendental_dense_program(seed, 3, np, nu);
        let compiled = compile(&prog, &cfg, ds.n_stocks());
        let mut lock = Interpreter::new(&cfg, ds, groups, interp_seed);
        let mut col = ColumnarInterpreter::new(&cfg, ds, panel, groups, interp_seed);
        lock.run_setup(&prog);
        col.run_setup(&compiled);
        let k = ds.n_stocks();
        let (mut a, mut b) = (vec![0.0; k], vec![0.0; k]);
        for day in ds.train_days().take(6) {
            lock.train_day(&prog, day, true);
            col.train_day(&compiled, day, true);
        }
        for day in ds.valid_days().take(6) {
            lock.predict_day(&prog, day, &mut a);
            col.predict_day(&compiled, day, &mut b);
            for (s, (x, y)) in a.iter().zip(&b).enumerate() {
                prop_assert_eq!(
                    x.to_bits(), y.to_bits(),
                    "stock {} day {}: lockstep {} vs columnar {}", s, day, x, y
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batched-tile vs sequential-columnar over tiles of transcendental-
    /// dense candidates: fitness and validation-return bits match per slot.
    /// With the lockstep property above this closes the three-way
    /// columnar = batched = reference-oracle loop.
    #[test]
    fn transcendental_dense_batched_matches_sequential(
        seed in any::<u64>(),
        batch in 2usize..6,
    ) {
        let market = MarketConfig {
            n_stocks: 11,
            n_days: 115,
            seed: 777,
            n_sectors: 3,
            ..Default::default()
        }
        .generate();
        let dataset =
            Dataset::build(&market, &FeatureSet::paper(), SplitSpec::paper_ratios()).unwrap();
        let ev = Evaluator::new(
            AlphaConfig::default(),
            EvalOptions::default(),
            Arc::new(dataset),
        );
        let progs: Vec<AlphaProgram> = (0..batch)
            .map(|i| transcendental_dense_program(seed.wrapping_add(i as u64), 2, 9, 4))
            .collect();
        let mut tile = ev.batch_arena(batch);
        for p in &progs {
            tile.push(p, !liveness(p).stateful);
        }
        ev.evaluate_batch_in(&mut tile);
        for (slot, p) in progs.iter().enumerate() {
            let mut arena = ev.arena();
            let seq = ev.evaluate_prepared_in(&mut arena, p, !liveness(p).stateful);
            prop_assert_eq!(
                tile.fitness(slot).map(f64::to_bits),
                seq.map(f64::to_bits),
                "slot {}: fitness bits diverged", slot
            );
            for (i, (a, b)) in tile
                .val_returns(slot)
                .iter()
                .zip(arena.val_returns())
                .enumerate()
            {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "slot {}: validation return {} diverged", slot, i
                );
            }
        }
    }
}
