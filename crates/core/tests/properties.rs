//! Property-based tests of the core invariants.
//!
//! The heavyweight ones drive the full interpreter, so case counts are
//! tuned per property; the cheap structural ones use proptest defaults.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use alphaevolve_core::fingerprint::{fingerprint, fingerprint_raw};
use alphaevolve_core::{
    canonicalize, compile, init, prune, AlphaConfig, AlphaProgram, ColumnarInterpreter,
    EvalOptions, Evaluator, FunctionId, GroupIndex, Instruction, MutationConfig, Mutator, Op,
};
use alphaevolve_market::{
    features::FeatureSet, generator::MarketConfig, Dataset, DayMajorPanel, SplitSpec,
};

fn tiny_evaluator() -> Evaluator {
    let market = MarketConfig {
        n_stocks: 8,
        n_days: 110,
        seed: 1234,
        ..Default::default()
    }
    .generate();
    let dataset = Dataset::build(&market, &FeatureSet::paper(), SplitSpec::paper_ratios()).unwrap();
    Evaluator::new(
        AlphaConfig::default(),
        EvalOptions::default(),
        Arc::new(dataset),
    )
}

/// A random program from a seed, using the full op set.
fn random_program(seed: u64, n_setup: usize, n_predict: usize, n_update: usize) -> AlphaProgram {
    let cfg = AlphaConfig::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    init::random_alpha(
        &cfg,
        &mut rng,
        n_setup.max(1),
        n_predict.max(1),
        n_update.max(1),
    )
}

/// A random *deterministic* program (no stochastic ops), so that pruning
/// cannot perturb the RNG stream.
fn random_deterministic_program(seed: u64, len: usize) -> AlphaProgram {
    let cfg = AlphaConfig::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    let full: Vec<Op> = Op::ALL
        .iter()
        .copied()
        .filter(|o| !o.is_stochastic())
        .collect();
    let setup: Vec<Op> = full.iter().copied().filter(|o| !o.is_relation()).collect();
    let mut prog = AlphaProgram::new();
    for f in FunctionId::ALL {
        let pool = if f == FunctionId::Setup {
            &setup
        } else {
            &full
        };
        for _ in 0..len.max(1) {
            prog.function_mut(f)
                .push(Instruction::random(&mut rng, pool, &cfg));
        }
    }
    prog
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The interpreter/evaluator never panics on arbitrary valid programs,
    /// and always returns a well-formed result (AutoML-Zero robustness:
    /// bad programs get killed, not crashed on).
    #[test]
    fn evaluator_total_on_arbitrary_programs(
        seed in any::<u64>(),
        ns in 1usize..6,
        np in 1usize..10,
        nu in 1usize..8,
    ) {
        let ev = tiny_evaluator();
        let prog = random_program(seed, ns, np, nu);
        prog.validate(ev.config()).expect("generated programs validate");
        let eval = ev.evaluate(&prog);
        match eval.fitness {
            Some(ic) => {
                prop_assert!(ic.is_finite());
                prop_assert_eq!(eval.val_returns.len(), ev.dataset().valid_days().len());
            }
            None => prop_assert!(eval.val_returns.is_empty()),
        }
    }
}

/// Shared fixture for the engine-equivalence properties (built once — the
/// properties only vary the program, not the market).
fn equivalence_fixture() -> &'static (Dataset, GroupIndex, DayMajorPanel) {
    static FIXTURE: std::sync::OnceLock<(Dataset, GroupIndex, DayMajorPanel)> =
        std::sync::OnceLock::new();
    FIXTURE.get_or_init(|| {
        let market = MarketConfig {
            n_stocks: 9,
            n_days: 115,
            seed: 4242,
            n_sectors: 3,
            ..Default::default()
        }
        .generate();
        let ds = Dataset::build(&market, &FeatureSet::paper(), SplitSpec::paper_ratios()).unwrap();
        let groups = GroupIndex::from_universe(ds.universe());
        let panel = DayMajorPanel::from_panel(ds.panel());
        (ds, groups, panel)
    })
}

/// Properties that drive the lockstep reference engine — compiled only
/// when the (default-on) `reference-oracle` feature provides it.
#[cfg(feature = "reference-oracle")]
mod lockstep_oracle {
    use super::*;
    use alphaevolve_core::Interpreter;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The columnar interpreter is a bitwise drop-in for the lockstep
        /// reference: over random programs spanning the full op set (relation
        /// ops, RNG ops, extraction, and the non-finite values that unguarded
        /// arithmetic produces), both engines emit identical prediction bits
        /// on every day of a train + predict schedule.
        #[test]
        fn columnar_interpreter_matches_lockstep_bitwise(
            seed in any::<u64>(),
            interp_seed in any::<u64>(),
            ns in 1usize..6,
            np in 1usize..12,
            nu in 1usize..8,
        ) {
            let cfg = AlphaConfig::default();
            let (ds, groups, panel) = equivalence_fixture();
            let prog = random_program(seed, ns, np, nu);
            let compiled = compile(&prog, &cfg, ds.n_stocks());
            let mut lock = Interpreter::new(&cfg, ds, groups, interp_seed);
            let mut col = ColumnarInterpreter::new(&cfg, ds, panel, groups, interp_seed);
            lock.run_setup(&prog);
            col.run_setup(&compiled);
            let k = ds.n_stocks();
            let (mut a, mut b) = (vec![0.0; k], vec![0.0; k]);
            for day in ds.train_days().take(4) {
                lock.train_day(&prog, day, true);
                col.train_day(&compiled, day, true);
            }
            for day in ds.valid_days().take(4) {
                lock.predict_day(&prog, day, &mut a);
                col.predict_day(&compiled, day, &mut b);
                for (s, (x, y)) in a.iter().zip(&b).enumerate() {
                    prop_assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "stock {} day {}: lockstep {} vs columnar {}",
                        s, day, x, y
                    );
                }
            }
        }
    }

    proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Evaluating through the production pipeline (compile + columnar
    /// execution inside the arena) agrees with driving the lockstep
    /// reference by hand over the same schedule.
    #[test]
    fn evaluator_pipeline_matches_lockstep_reference(
        seed in any::<u64>(),
        np in 1usize..10,
        nu in 1usize..6,
    ) {
        let ev = tiny_evaluator();
        let prog = random_program(seed, 3, np, nu);
        let eval = ev.evaluate_opt(&prog, false);
        // Reference: lockstep train + validation sweep.
        let ds = ev.dataset();
        let groups = GroupIndex::from_universe(ds.universe());
        let mut lock = Interpreter::new(ev.config(), ds, &groups, ev.options().seed);
        lock.run_setup(&prog);
        for day in ds.train_days() {
            lock.train_day(&prog, day, true);
        }
        let mut row = vec![0.0; ds.n_stocks()];
        let mut all_finite = true;
        for day in ds.valid_days() {
            lock.predict_day(&prog, day, &mut row);
            if !row.iter().all(|x| x.is_finite()) {
                all_finite = false;
                break;
            }
        }
        prop_assert_eq!(
            eval.fitness.is_some(),
            all_finite,
            "validity verdict diverged between engines"
        );
    }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness of §4.2 pruning: the effective program computes exactly
    /// the same predictions as the original (for deterministic programs).
    #[test]
    fn pruning_preserves_semantics(seed in any::<u64>(), len in 1usize..8) {
        let ev = tiny_evaluator();
        let prog = random_deterministic_program(seed, len);
        let pruned = prune(&prog);
        let a = ev.evaluate_opt(&prog, false);
        let b = ev.evaluate_opt(&pruned.program, false);
        prop_assert_eq!(a.fitness.is_some(), b.fitness.is_some());
        if let (Some(x), Some(y)) = (a.fitness, b.fitness) {
            prop_assert!((x - y).abs() < 1e-12, "pruning changed IC: {} vs {}", x, y);
            prop_assert_eq!(a.val_returns, b.val_returns);
        }
    }

    /// The stateless-skip fast path gives identical results to the full
    /// sweep for deterministic programs.
    #[test]
    fn stateless_skip_is_semantics_preserving(seed in any::<u64>(), len in 1usize..8) {
        let ev = tiny_evaluator();
        let prog = prune(&random_deterministic_program(seed, len)).program;
        let fast = ev.evaluate_opt(&prog, true);
        let slow = ev.evaluate_opt(&prog, false);
        prop_assert_eq!(fast.fitness.is_some(), slow.fitness.is_some());
        if let (Some(x), Some(y)) = (fast.fitness, slow.fitness) {
            prop_assert!((x - y).abs() < 1e-12, "skip changed IC: {} vs {}", x, y);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pruning is idempotent: pruning an effective program removes nothing.
    #[test]
    fn pruning_is_idempotent(seed in any::<u64>(), len in 1usize..10) {
        let prog = random_program(seed, len, len, len);
        let once = prune(&prog);
        let twice = prune(&once.program);
        prop_assert_eq!(&once.program, &twice.program);
        prop_assert_eq!(once.uses_input, twice.uses_input);
    }

    /// The allocation-free liveness analysis agrees with full pruning on
    /// both flags, for the original and for the pruned program (the hot
    /// path consults it on either).
    #[test]
    fn liveness_agrees_with_prune(seed in any::<u64>(), len in 1usize..10) {
        let prog = random_program(seed, len, len, len);
        let full = prune(&prog);
        let light = alphaevolve_core::liveness(&prog);
        prop_assert_eq!(light.uses_input, full.uses_input);
        prop_assert_eq!(light.stateful, full.stateful);
        let light_pruned = alphaevolve_core::liveness(&full.program);
        prop_assert_eq!(light_pruned.uses_input, full.uses_input);
        prop_assert_eq!(light_pruned.stateful, full.stateful);
    }

    /// Canonicalization is idempotent and fingerprint-stable.
    #[test]
    fn canonicalization_is_idempotent(seed in any::<u64>(), len in 1usize..10) {
        let cfg = AlphaConfig::default();
        let prog = prune(&random_program(seed, len, len, len)).program;
        let once = canonicalize(&prog, &cfg);
        let twice = canonicalize(&once, &cfg);
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(fingerprint_raw(&once), fingerprint_raw(&twice));
    }

    /// Dead code never changes the pipeline fingerprint.
    #[test]
    fn dead_code_invisible_to_fingerprint(seed in any::<u64>(), len in 1usize..8, at in 0usize..8) {
        let cfg = AlphaConfig::default();
        let prog = random_program(seed, len, len, len);
        let (fp_before, _) = fingerprint(&prog, &cfg);
        let mut padded = prog.clone();
        // A write to a scalar constant inserted somewhere in update. It is
        // usually dead, but it can also feed an existing read of s9 — or
        // shadow an earlier live write to s9 — either of which genuinely
        // changes the effective program. The sound criterion for "this
        // insert was invisible dead code" is that pruning yields the
        // identical effective program; exactly then the fingerprint must
        // not move.
        let dead = Instruction::new(Op::SConst, 0, 0, 9, [0.123, 0.0], [0; 2]);
        let pos = at.min(padded.update.len());
        padded.update.insert(pos, dead);
        let (fp_after, _) = fingerprint(&padded, &cfg);
        if prune(&padded).program == prune(&prog).program {
            prop_assert_eq!(fp_before, fp_after);
        }
    }

    /// Mutation closure: children always satisfy the §5.2 size limits and
    /// register bounds.
    #[test]
    fn mutation_children_always_valid(seed in any::<u64>(), steps in 1usize..60) {
        let cfg = AlphaConfig::default();
        let mutator = Mutator::new(cfg, MutationConfig::default());
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut prog = init::domain_expert(&cfg);
        for _ in 0..steps {
            prog = mutator.mutate(&mut rng, &prog);
        }
        prop_assert!(prog.validate(&cfg).is_ok());
    }

    /// Text serialization round-trips arbitrary programs bit-exactly.
    #[test]
    fn textio_round_trips(seed in any::<u64>(), len in 1usize..12) {
        let prog = random_program(seed, len, len, len);
        let text = alphaevolve_core::textio::to_text(&prog);
        let back = alphaevolve_core::textio::from_text(&text).expect("parse back");
        prop_assert_eq!(back, prog);
    }

    /// Register renaming never changes the canonical fingerprint: apply a
    /// random consistent permutation of the non-reserved registers.
    #[test]
    fn fingerprint_invariant_under_register_renaming(seed in any::<u64>(), len in 1usize..8) {
        let cfg = AlphaConfig::default();
        let prog = random_program(seed, len, len, len);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
        // Build per-bank permutations fixing the reserved registers.
        let mut perm_s: Vec<u8> = (0..cfg.n_scalars as u8).collect();
        let mut perm_v: Vec<u8> = (0..cfg.n_vectors as u8).collect();
        let mut perm_m: Vec<u8> = (0..cfg.n_matrices as u8).collect();
        shuffle_tail(&mut perm_s, 2, &mut rng); // keep s0, s1
        shuffle_tail(&mut perm_v, 0, &mut rng);
        shuffle_tail(&mut perm_m, 1, &mut rng); // keep m0
        let renamed = apply_renaming(&prog, &perm_s, &perm_v, &perm_m);
        prop_assert_eq!(fingerprint(&prog, &cfg).0, fingerprint(&renamed, &cfg).0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The text format is a lossless round trip: any valid program prints
    /// to text that parses back to the identical program and re-prints to
    /// the identical text (literal f64 bits included).
    #[test]
    fn textio_print_parse_reprint_is_identity(
        seed in any::<u64>(),
        ns in 1usize..8,
        np in 1usize..12,
        nu in 1usize..10,
    ) {
        use alphaevolve_core::textio::{from_text, to_text};
        let prog = random_program(seed, ns, np, nu);
        prog.validate(&AlphaConfig::default()).expect("generated programs validate");
        let text = to_text(&prog);
        let parsed = from_text(&text).expect("printed programs parse");
        prop_assert_eq!(&parsed, &prog);
        prop_assert_eq!(to_text(&parsed), text);
    }

    /// Truncating a program's text at any byte yields a clean `Err` (or,
    /// at a line boundary past all three `def`s, a valid shorter program)
    /// — never a panic, and never a silently mis-parsed full program.
    #[test]
    fn textio_truncated_input_errors_dont_panic(
        seed in any::<u64>(),
        cut_frac in 0.0f64..1.0,
    ) {
        use alphaevolve_core::textio::{from_text, to_text};
        let prog = random_program(seed, 2, 4, 3);
        let text = to_text(&prog);
        let cut = ((text.len() as f64 * cut_frac) as usize).min(text.len() - 1);
        // Cut on a char boundary (the format is ASCII, but stay robust).
        let mut cut = cut;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        let truncated = &text[..cut];
        match from_text(truncated) {
            // A cut strictly inside the text can only parse if everything
            // dropped was a complete suffix of instructions (plus at most
            // a dangling whitespace fragment): the parsed program must
            // re-print to a prefix of the cut text, with only whitespace
            // unaccounted for.
            Ok(p) => {
                let reprinted = to_text(&p);
                prop_assert!(
                    truncated.starts_with(&reprinted),
                    "parsed program is not a prefix: {reprinted:?} vs {truncated:?}"
                );
                prop_assert!(truncated[reprinted.len()..].trim().is_empty());
            }
            Err(e) => {
                // Errors carry a usable position and message.
                prop_assert!(e.line <= text.lines().count());
                prop_assert!(!e.msg.is_empty());
            }
        }
    }
}

fn shuffle_tail(perm: &mut [u8], fixed: usize, rng: &mut SmallRng) {
    use rand::Rng;
    let n = perm.len();
    for i in (fixed + 1..n).rev() {
        let j = rng.gen_range(fixed..=i);
        perm.swap(i, j);
    }
}

fn apply_renaming(prog: &AlphaProgram, s: &[u8], v: &[u8], m: &[u8]) -> AlphaProgram {
    use alphaevolve_core::Kind;
    let map = |k: Kind, r: u8| -> u8 {
        match k {
            Kind::S => s[r as usize],
            Kind::V => v[r as usize],
            Kind::M => m[r as usize],
        }
    };
    let mut out = prog.clone();
    for f in FunctionId::ALL {
        for instr in out.function_mut(f) {
            let kinds = instr.op.input_kinds();
            if !kinds.is_empty() {
                instr.in1 = map(kinds[0], instr.in1);
            }
            if kinds.len() > 1 {
                instr.in2 = map(kinds[1], instr.in2);
            }
            if instr.op != Op::NoOp {
                instr.out = map(instr.op.output_kind(), instr.out);
            }
        }
    }
    out
}
