//! Bitwise batched-vs-sequential evaluation battery.
//!
//! The batched tile path (`Evaluator::evaluate_batch_in`) promises strict
//! bit-identity with sequential `evaluate_prepared_in` for every slot:
//! fitness bits, validation-return bits, and per-stock RNG stream states.
//! These tests pin that contract over the seed programs, hand-built
//! clobber/invalid/stochastic candidates, tile reuse, partial tiles, and a
//! proptest sweep over random batch sizes × random candidate mixes.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use alphaevolve_core::{
    compile, init, liveness, writes_m0, AlphaConfig, AlphaProgram, EvalOptions, Evaluator,
    Instruction, Op,
};
use alphaevolve_market::{features::FeatureSet, generator::MarketConfig, Dataset, SplitSpec};

fn small_evaluator() -> Evaluator {
    let market = MarketConfig {
        n_stocks: 9,
        n_days: 115,
        seed: 4242,
        n_sectors: 3,
        ..Default::default()
    }
    .generate();
    let dataset = Dataset::build(&market, &FeatureSet::paper(), SplitSpec::paper_ratios()).unwrap();
    Evaluator::new(
        AlphaConfig::default(),
        EvalOptions::default(),
        Arc::new(dataset),
    )
}

/// A candidate whose predictions go NaN (`ln` of a negative number), so
/// the validation sweep aborts at its first day.
fn invalid_candidate() -> AlphaProgram {
    AlphaProgram {
        setup: vec![Instruction::new(Op::SConst, 0, 0, 3, [-1.0, 0.0], [0; 2])],
        predict: vec![
            Instruction::new(Op::MMean, 0, 0, 2, [0.0; 2], [0; 2]),
            Instruction::new(Op::SAbs, 2, 0, 2, [0.0; 2], [0; 2]),
            Instruction::new(Op::SMul, 2, 3, 2, [0.0; 2], [0; 2]),
            Instruction::new(Op::SAdd, 2, 3, 2, [0.0; 2], [0; 2]),
            Instruction::new(Op::SLn, 2, 0, 1, [0.0; 2], [0; 2]),
        ],
        update: vec![Instruction::nop()],
    }
}

/// A candidate that draws from the per-stock RNG streams every day — the
/// sharpest probe of the per-slot RNG-stream contract.
fn stochastic_candidate() -> AlphaProgram {
    AlphaProgram {
        setup: vec![Instruction::new(Op::SGauss, 0, 0, 4, [0.0, 1.0], [0; 2])],
        predict: vec![
            Instruction::new(Op::SUniform, 0, 0, 3, [-1.0, 1.0], [0; 2]),
            Instruction::new(Op::MMean, 0, 0, 2, [0.0; 2], [0; 2]),
            Instruction::new(Op::SMul, 2, 3, 2, [0.0; 2], [0; 2]),
            Instruction::new(Op::SAdd, 2, 4, 1, [0.0; 2], [0; 2]),
        ],
        update: vec![Instruction::new(Op::SGauss, 0, 0, 4, [0.0, 0.5], [0; 2])],
    }
}

/// A candidate whose predict *writes* `m0`, so its slot cannot alias the
/// tile's shared input plane and must run on a staged private copy. The
/// write is a dead stochastic op — it survives lowering (RNG parity) and
/// is exactly the clobber shape `writes_m0` exists to catch.
fn m0_clobbering_candidate() -> AlphaProgram {
    AlphaProgram {
        setup: vec![Instruction::nop()],
        predict: vec![
            Instruction::new(Op::MMean, 0, 0, 2, [0.0; 2], [0; 2]),
            Instruction::new(Op::MGauss, 0, 0, 0, [0.0, 1.0], [0; 2]),
            Instruction::new(Op::SAbs, 2, 0, 1, [0.0; 2], [0; 2]),
        ],
        update: vec![Instruction::nop()],
    }
}

fn random_program(seed: u64, ns: usize, np: usize, nu: usize) -> AlphaProgram {
    let cfg = AlphaConfig::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    init::random_alpha(&cfg, &mut rng, ns.max(1), np.max(1), nu.max(1))
}

/// Sequential reference for one candidate: (fitness, returns, rng states).
fn sequential(
    ev: &Evaluator,
    prog: &AlphaProgram,
    skip_training: bool,
) -> (Option<f64>, Vec<f64>, Vec<[u64; 4]>) {
    let mut arena = ev.arena();
    let fitness = ev.evaluate_prepared_in(&mut arena, prog, skip_training);
    let returns = arena.val_returns().to_vec();
    let mut states = Vec::new();
    arena.rng_states_into(&mut states);
    (fitness, returns, states)
}

/// Asserts every slot of a freshly-evaluated tile bitwise-matches its
/// sequential reference.
fn assert_tile_matches_sequential(ev: &Evaluator, progs: &[(&AlphaProgram, bool)], batch: usize) {
    let mut tile = ev.batch_arena(batch);
    for (prog, skip) in progs {
        tile.push(prog, *skip);
    }
    ev.evaluate_batch_in(&mut tile);
    let mut batch_states = Vec::new();
    for (slot, (prog, skip)) in progs.iter().enumerate() {
        let (seq_fitness, seq_returns, seq_states) = sequential(ev, prog, *skip);
        assert_eq!(
            tile.fitness(slot).map(f64::to_bits),
            seq_fitness.map(f64::to_bits),
            "slot {slot}: fitness bits diverged"
        );
        let batch_returns = tile.val_returns(slot);
        assert_eq!(
            batch_returns.len(),
            seq_returns.len(),
            "slot {slot}: return count diverged"
        );
        for (i, (a, b)) in batch_returns.iter().zip(&seq_returns).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "slot {slot}: validation return {i} diverged"
            );
        }
        tile.rng_states_into(slot, &mut batch_states);
        assert_eq!(
            batch_states, seq_states,
            "slot {slot}: RNG streams diverged"
        );
    }
}

#[test]
fn full_tile_of_seed_programs_matches_sequential() {
    let ev = small_evaluator();
    let cfg = *ev.config();
    let expert = init::domain_expert(&cfg);
    let nn = init::two_layer_nn(&cfg);
    let rev = init::industry_reversal(&cfg);
    let stoch = stochastic_candidate();
    let bad = invalid_candidate();
    let progs: Vec<(&AlphaProgram, bool)> = [&expert, &nn, &rev, &stoch, &bad]
        .into_iter()
        .map(|p| (p, !liveness(p).stateful))
        .collect();
    assert_tile_matches_sequential(&ev, &progs, progs.len());
}

#[test]
fn partially_filled_tile_matches_sequential() {
    let ev = small_evaluator();
    let cfg = *ev.config();
    let expert = init::domain_expert(&cfg);
    let stoch = stochastic_candidate();
    let progs = [(&expert, false), (&stoch, false)];
    // Capacity 6, only 2 slots filled.
    assert_tile_matches_sequential(&ev, &progs, 6);
}

#[test]
fn m0_clobbering_slot_is_staged_and_matches_sequential() {
    let ev = small_evaluator();
    let cfg = *ev.config();
    let clobber = m0_clobbering_candidate();
    assert!(
        writes_m0(&compile(&clobber, &cfg, ev.dataset().n_stocks())),
        "fixture must actually clobber m0"
    );
    let expert = init::domain_expert(&cfg);
    let nn = init::two_layer_nn(&cfg);
    // Clobbering slot sandwiched between shared-m0 readers: the staged
    // private copy must keep the readers' shared plane pristine.
    let progs = [(&expert, false), (&clobber, false), (&nn, false)];
    assert_tile_matches_sequential(&ev, &progs, 3);
}

#[test]
fn tile_reuse_matches_fresh_tiles() {
    // The same arena fed two different tiles back-to-back: the second
    // tile must score exactly like a fresh arena (slot resets and the
    // shared-input reset fully isolate tiles).
    let ev = small_evaluator();
    let cfg = *ev.config();
    let expert = init::domain_expert(&cfg);
    let nn = init::two_layer_nn(&cfg);
    let rev = init::industry_reversal(&cfg);
    let stoch = stochastic_candidate();
    let bad = invalid_candidate();

    let mut tile = ev.batch_arena(3);
    tile.push(&stoch, false);
    tile.push(&bad, false);
    tile.push(&nn, false);
    ev.evaluate_batch_in(&mut tile);
    tile.clear();

    // Second, smaller tile in the same arena.
    tile.push(&expert, false);
    tile.push(&rev, false);
    ev.evaluate_batch_in(&mut tile);
    for (slot, prog) in [&expert, &rev].into_iter().enumerate() {
        let (seq_fitness, seq_returns, _) = sequential(&ev, prog, false);
        assert_eq!(
            tile.fitness(slot).map(f64::to_bits),
            seq_fitness.map(f64::to_bits),
            "slot {slot} saw stale state from the previous tile"
        );
        assert_eq!(
            tile.val_returns(slot)
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            seq_returns.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        );
    }
}

#[test]
fn batch_arena_clamps_capacity_to_one() {
    let ev = small_evaluator();
    let tile = ev.batch_arena(0);
    assert_eq!(tile.capacity(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random batch sizes × random candidate mixes: every slot must be
    /// bitwise equal to its sequential evaluation. Seeds sweep the full
    /// op set, so the mix covers stateless, relational, and stochastic
    /// programs (and the occasional invalid one).
    #[test]
    fn random_tiles_match_sequential(
        seed in any::<u64>(),
        batch in 1usize..6,
        fill in 1usize..6,
        ns in 1usize..4,
        np in 1usize..8,
        nu in 1usize..6,
    ) {
        let ev = small_evaluator();
        let fill = fill.min(batch);
        let progs: Vec<AlphaProgram> = (0..fill)
            .map(|i| random_program(seed.wrapping_add(i as u64), ns, np, nu))
            .collect();
        let entries: Vec<(&AlphaProgram, bool)> = progs
            .iter()
            .map(|p| (p, !liveness(p).stateful))
            .collect();
        assert_tile_matches_sequential(&ev, &entries, batch);
    }
}
