//! The operator set.
//!
//! Three families, mirroring the paper:
//!
//! 1. **Basic math OPs for scalars, vectors, and matrices** — the
//!    AutoML-Zero operator vocabulary (§2: "basic mathematical operators
//!    for scalars, vectors, and matrices"). These include the trig /
//!    heaviside / min / max / norm / matmul / broadcast operators that show
//!    up in the paper's evolved alphas (Eqs. 2–22).
//! 2. **ExtractionOps** (§4.1) — `m_get` (GetScalarOp) and
//!    `m_get_row`/`m_get_col` (GetVectorOps) pull scalars and vectors out
//!    of a matrix, letting evolution build "formulaic-plus" alphas instead
//!    of opaque high-dimensional models.
//! 3. **RelationOps** (§4.1) — `rel_rank` (RankOp), `rel_rank_sector` /
//!    `rel_rank_industry` (RelationRankOp) and `rel_demean[_sector/_industry]`
//!    (RelationDemeanOp) combine a scalar operand *across tasks* at one
//!    timestep. They are the only cross-sectional operators and are executed
//!    by the lockstep interpreter ([`crate::interp`]), not by
//!    [`execute_local`].
//!
//! Division by zero, logs of negatives, `asin` outside its domain etc. are
//! *not* protected: they produce `inf`/`NaN`, and candidates whose
//! validation predictions are non-finite are killed by the evaluator —
//! AutoML-Zero semantics.

use rand::rngs::SmallRng;
use rand::Rng;

#[cfg(any(test, feature = "reference-oracle"))]
use crate::instruction::Instruction;
#[cfg(any(test, feature = "reference-oracle"))]
use crate::memory::MemoryBank;
#[cfg(any(test, feature = "reference-oracle"))]
use alphaevolve_market::rngutil::normal;

/// Operand kind: scalar, vector or matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Kind {
    /// Scalar register `sN`.
    S,
    /// Vector register `vN`.
    V,
    /// Matrix register `mN`.
    M,
}

impl Kind {
    /// Register prefix used in program text.
    pub fn prefix(self) -> char {
        match self {
            Kind::S => 's',
            Kind::V => 'v',
            Kind::M => 'm',
        }
    }
}

/// How an op uses its two literal slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LitUse {
    /// No literals.
    None,
    /// One constant value (`lit[0]`).
    Const,
    /// Uniform range (`lit[0]` = low, `lit[1]` = high).
    Range,
    /// Gaussian parameters (`lit[0]` = mean, `lit[1]` = std).
    MeanStd,
}

impl LitUse {
    /// Number of meaningful literal slots.
    pub fn count(self) -> usize {
        match self {
            LitUse::None => 0,
            LitUse::Const => 1,
            LitUse::Range | LitUse::MeanStd => 2,
        }
    }
}

/// How an op uses its two small-integer index slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IxUse {
    /// No indices.
    None,
    /// `(row, col)` element address, both in `[0, dim)`.
    RowCol,
    /// A single row index in `[0, dim)`.
    Row,
    /// A single column index in `[0, dim)`.
    Col,
    /// A vector element index in `[0, dim)`.
    VecIndex,
    /// An axis selector in `{0, 1}`.
    Axis,
}

impl IxUse {
    /// Number of meaningful index slots.
    pub fn count(self) -> usize {
        match self {
            IxUse::None => 0,
            IxUse::RowCol => 2,
            _ => 1,
        }
    }

    /// Exclusive upper bound for index slot `slot`.
    pub fn domain(self, slot: usize, dim: usize) -> usize {
        match (self, slot) {
            (IxUse::Axis, 0) => 2,
            (IxUse::None, _) => 1,
            _ => dim,
        }
    }
}

/// Which group a RelationOp operates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelGroup {
    /// All stocks.
    All,
    /// Stocks in the same sector (paper: F_I by sector).
    Sector,
    /// Stocks in the same industry.
    Industry,
}

macro_rules! define_ops {
    ($( $variant:ident => ($name:literal, [$($in:ident),*], $out:ident, $lit:ident, $ix:ident, $rel:expr) ),* $(,)?) => {
        /// Every operator in the search space.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[allow(missing_docs)]
        pub enum Op {
            $( $variant, )*
        }

        impl Op {
            /// All operators, in a fixed order (stable across runs; used
            /// for fingerprints and sampling).
            pub const ALL: &'static [Op] = &[ $( Op::$variant, )* ];

            /// Lower-case text name used by the program format.
            pub fn name(self) -> &'static str {
                match self {
                    $( Op::$variant => $name, )*
                }
            }

            /// Inverse of [`Op::name`].
            pub fn from_name(name: &str) -> Option<Op> {
                match name {
                    $( $name => Some(Op::$variant), )*
                    _ => None,
                }
            }

            /// Input operand kinds, in argument order.
            pub fn input_kinds(self) -> &'static [Kind] {
                match self {
                    $( Op::$variant => &[ $( Kind::$in, )* ], )*
                }
            }

            /// Output operand kind (no-op reports `S` but writes nothing).
            pub fn output_kind(self) -> Kind {
                match self {
                    $( Op::$variant => Kind::$out, )*
                }
            }

            /// Literal-slot usage.
            pub fn lit_use(self) -> LitUse {
                match self {
                    $( Op::$variant => LitUse::$lit, )*
                }
            }

            /// Index-slot usage.
            pub fn ix_use(self) -> IxUse {
                match self {
                    $( Op::$variant => IxUse::$ix, )*
                }
            }

            /// The relation group, for RelationOps only.
            pub fn relation_group(self) -> Option<RelGroup> {
                match self {
                    $( Op::$variant => $rel, )*
                }
            }
        }
    };
}

define_ops! {
    // ---- no-op ---------------------------------------------------------
    NoOp => ("noop", [], S, None, None, Option::<RelGroup>::None),

    // ---- scalar constants / init --------------------------------------
    SConst   => ("s_const",   [], S, Const,   None, None),
    SUniform => ("s_uniform", [], S, Range,   None, None),
    SGauss   => ("s_gauss",   [], S, MeanStd, None, None),

    // ---- scalar arithmetic ---------------------------------------------
    SAdd => ("s_add", [S, S], S, None, None, None),
    SSub => ("s_sub", [S, S], S, None, None, None),
    SMul => ("s_mul", [S, S], S, None, None, None),
    SDiv => ("s_div", [S, S], S, None, None, None),
    SMin => ("s_min", [S, S], S, None, None, None),
    SMax => ("s_max", [S, S], S, None, None, None),

    // ---- scalar unary ----------------------------------------------------
    SAbs       => ("s_abs",       [S], S, None, None, None),
    SInv       => ("s_inv",       [S], S, None, None, None),
    SSin       => ("s_sin",       [S], S, None, None, None),
    SCos       => ("s_cos",       [S], S, None, None, None),
    STan       => ("s_tan",       [S], S, None, None, None),
    SArcSin    => ("s_asin",      [S], S, None, None, None),
    SArcCos    => ("s_acos",      [S], S, None, None, None),
    SArcTan    => ("s_atan",      [S], S, None, None, None),
    SExp       => ("s_exp",       [S], S, None, None, None),
    SLn        => ("s_ln",        [S], S, None, None, None),
    SHeaviside => ("s_heaviside", [S], S, None, None, None),

    // ---- vector constants / init ---------------------------------------
    VConst   => ("v_const",   [], V, Const,   None, None),
    VUniform => ("v_uniform", [], V, Range,   None, None),
    VGauss   => ("v_gauss",   [], V, MeanStd, None, None),

    // ---- vector element-wise ---------------------------------------------
    VAdd => ("v_add", [V, V], V, None, None, None),
    VSub => ("v_sub", [V, V], V, None, None, None),
    VMul => ("v_mul", [V, V], V, None, None, None),
    VDiv => ("v_div", [V, V], V, None, None, None),
    VMin => ("v_min", [V, V], V, None, None, None),
    VMax => ("v_max", [V, V], V, None, None, None),
    VAbs       => ("v_abs",       [V], V, None, None, None),
    VHeaviside => ("v_heaviside", [V], V, None, None, None),

    // ---- scalar/vector ---------------------------------------------------
    SVScale    => ("sv_scale",    [S, V], V, None, None, None),
    VBroadcast => ("v_broadcast", [S],    V, None, None, None),

    // ---- vector reductions / shape --------------------------------------
    VNorm  => ("v_norm",  [V],    S, None, None,     None),
    VMean  => ("v_mean",  [V],    S, None, None,     None),
    VStd   => ("v_std",   [V],    S, None, None,     None),
    VSum   => ("v_sum",   [V],    S, None, None,     None),
    TsRank => ("ts_rank", [V],    S, None, None,     None),
    VDot   => ("v_dot",   [V, V], S, None, None,     None),
    VGet   => ("v_get",   [V],    S, None, VecIndex, None),
    VOuter => ("v_outer", [V, V], M, None, None,     None),
    MatVec => ("mat_vec", [M, V], V, None, None,     None),

    // ---- matrix constants / init ----------------------------------------
    MConst   => ("m_const",   [], M, Const,   None, None),
    MUniform => ("m_uniform", [], M, Range,   None, None),
    MGauss   => ("m_gauss",   [], M, MeanStd, None, None),

    // ---- matrix element-wise ---------------------------------------------
    MAdd => ("m_add", [M, M], M, None, None, None),
    MSub => ("m_sub", [M, M], M, None, None, None),
    MMul => ("m_mul", [M, M], M, None, None, None),
    MDiv => ("m_div", [M, M], M, None, None, None),
    MMin => ("m_min", [M, M], M, None, None, None),
    MMax => ("m_max", [M, M], M, None, None, None),
    MAbs       => ("m_abs",       [M], M, None, None, None),
    MHeaviside => ("m_heaviside", [M], M, None, None, None),

    // ---- matrix linear algebra -------------------------------------------
    MTranspose => ("m_transpose", [M],    M, None, None, None),
    MatMul     => ("mat_mul",     [M, M], M, None, None, None),
    SMScale    => ("sm_scale",    [S, M], M, None, None, None),
    MBroadcast => ("m_broadcast", [V],    M, None, Axis, None),

    // ---- matrix reductions -----------------------------------------------
    MNorm => ("m_norm", [M], S, None, None, None),
    MMean => ("m_mean", [M], S, None, None, None),
    MStd  => ("m_std",  [M], S, None, None, None),
    MNormAxis => ("m_norm_axis", [M], V, None, Axis, None),
    MMeanAxis => ("m_mean_axis", [M], V, None, Axis, None),
    MStdAxis  => ("m_std_axis",  [M], V, None, Axis, None),

    // ---- ExtractionOps (paper §4.1) ---------------------------------------
    MGet    => ("m_get",     [M], S, None, RowCol, None),
    MGetRow => ("m_get_row", [M], V, None, Row,    None),
    MGetCol => ("m_get_col", [M], V, None, Col,    None),

    // ---- RelationOps (paper §4.1) ------------------------------------------
    RelRank         => ("rel_rank",            [S], S, None, None, Some(RelGroup::All)),
    RelRankSector   => ("rel_rank_sector",     [S], S, None, None, Some(RelGroup::Sector)),
    RelRankIndustry => ("rel_rank_industry",   [S], S, None, None, Some(RelGroup::Industry)),
    RelDemean         => ("rel_demean",          [S], S, None, None, Some(RelGroup::All)),
    RelDemeanSector   => ("rel_demean_sector",   [S], S, None, None, Some(RelGroup::Sector)),
    RelDemeanIndustry => ("rel_demean_industry", [S], S, None, None, Some(RelGroup::Industry)),
}

impl Op {
    /// True for the cross-sectional RelationOps, which the lockstep
    /// interpreter executes across all stocks at once.
    pub fn is_relation(self) -> bool {
        self.relation_group().is_some()
    }

    /// True for the paper's ExtractionOps.
    pub fn is_extraction(self) -> bool {
        matches!(self, Op::MGet | Op::MGetRow | Op::MGetCol)
    }

    /// True for a ranking RelationOp (vs a demeaning one).
    pub fn is_rank(self) -> bool {
        matches!(self, Op::RelRank | Op::RelRankSector | Op::RelRankIndustry)
    }

    /// True when the op draws from the RNG at execution time.
    pub fn is_stochastic(self) -> bool {
        matches!(
            self,
            Op::SUniform | Op::SGauss | Op::VUniform | Op::VGauss | Op::MUniform | Op::MGauss
        )
    }
}

#[cfg(any(test, feature = "reference-oracle"))]
fn population_std(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n).sqrt()
}

/// Uniform draw with reordered/degenerate bounds handled; shared by the
/// lockstep and columnar kernels so both consume identical RNG streams.
pub(crate) fn uniform_in(rng: &mut SmallRng, lo: f64, hi: f64) -> f64 {
    let (a, b) = if lo <= hi { (lo, hi) } else { (hi, lo) };
    if a == b {
        a
    } else {
        rng.gen_range(a..b)
    }
}

/// Executes one non-relation instruction against a single stock's bank.
///
/// `scratch_v`/`scratch_m` must be at least `dim` / `dim²` long; they are
/// used whenever the output register could alias an input register.
///
/// Lockstep-reference kernel only — compiled out when the default
/// `reference-oracle` feature is disabled.
///
/// # Panics
/// Debug-panics on relation ops — those are handled by the interpreter.
#[cfg(any(test, feature = "reference-oracle"))]
pub fn execute_local(
    instr: &Instruction,
    mem: &mut MemoryBank,
    rng: &mut SmallRng,
    scratch_v: &mut [f64],
    scratch_m: &mut [f64],
) {
    debug_assert!(
        !instr.op.is_relation(),
        "relation ops need cross-sectional execution"
    );
    let dim = mem.dim();
    let n2 = dim * dim;
    let a = instr.in1 as usize;
    let b = instr.in2 as usize;
    let o = instr.out as usize;
    let [lit0, lit1] = instr.lit;
    let ix0 = instr.ix[0] as usize;
    let ix1 = instr.ix[1] as usize;

    match instr.op {
        Op::NoOp => {}

        // -- scalar ----------------------------------------------------
        Op::SConst => mem.s[o] = lit0,
        Op::SUniform => mem.s[o] = uniform_in(rng, lit0, lit1),
        Op::SGauss => mem.s[o] = normal(rng, lit0, lit1.abs()),
        Op::SAdd => mem.s[o] = mem.s[a] + mem.s[b],
        Op::SSub => mem.s[o] = mem.s[a] - mem.s[b],
        Op::SMul => mem.s[o] = mem.s[a] * mem.s[b],
        Op::SDiv => mem.s[o] = mem.s[a] / mem.s[b],
        Op::SMin => mem.s[o] = mem.s[a].min(mem.s[b]),
        Op::SMax => mem.s[o] = mem.s[a].max(mem.s[b]),
        Op::SAbs => mem.s[o] = mem.s[a].abs(),
        Op::SInv => mem.s[o] = 1.0 / mem.s[a],
        // Transcendentals go through the shared polynomial kernels so the
        // lockstep oracle stays bit-identical to the columnar engine.
        Op::SSin => mem.s[o] = crate::kernels::sin(mem.s[a]),
        Op::SCos => mem.s[o] = crate::kernels::cos(mem.s[a]),
        Op::STan => mem.s[o] = crate::kernels::tan(mem.s[a]),
        Op::SArcSin => mem.s[o] = crate::kernels::asin(mem.s[a]),
        Op::SArcCos => mem.s[o] = crate::kernels::acos(mem.s[a]),
        Op::SArcTan => mem.s[o] = crate::kernels::atan(mem.s[a]),
        Op::SExp => mem.s[o] = crate::kernels::exp(mem.s[a]),
        Op::SLn => mem.s[o] = crate::kernels::ln(mem.s[a]),
        Op::SHeaviside => mem.s[o] = if mem.s[a] > 0.0 { 1.0 } else { 0.0 },

        // -- vector ----------------------------------------------------
        Op::VConst => mem.vec_mut(o).fill(lit0),
        Op::VUniform => {
            for x in mem.vec_mut(o) {
                *x = uniform_in(rng, lit0, lit1);
            }
        }
        Op::VGauss => {
            for x in mem.vec_mut(o) {
                *x = normal(rng, lit0, lit1.abs());
            }
        }
        Op::VAdd | Op::VSub | Op::VMul | Op::VDiv | Op::VMin | Op::VMax => {
            let s = &mut scratch_v[..dim];
            {
                let va = mem.vec(a);
                let vb = mem.vec(b);
                for i in 0..dim {
                    s[i] = match instr.op {
                        Op::VAdd => va[i] + vb[i],
                        Op::VSub => va[i] - vb[i],
                        Op::VMul => va[i] * vb[i],
                        Op::VDiv => va[i] / vb[i],
                        Op::VMin => va[i].min(vb[i]),
                        _ => va[i].max(vb[i]),
                    };
                }
            }
            mem.vec_mut(o).copy_from_slice(s);
        }
        Op::VAbs => {
            let s = &mut scratch_v[..dim];
            for (i, x) in mem.vec(a).iter().enumerate() {
                s[i] = x.abs();
            }
            mem.vec_mut(o).copy_from_slice(s);
        }
        Op::VHeaviside => {
            let s = &mut scratch_v[..dim];
            for (i, x) in mem.vec(a).iter().enumerate() {
                s[i] = if *x > 0.0 { 1.0 } else { 0.0 };
            }
            mem.vec_mut(o).copy_from_slice(s);
        }
        Op::SVScale => {
            let c = mem.s[a];
            let s = &mut scratch_v[..dim];
            for (i, x) in mem.vec(b).iter().enumerate() {
                s[i] = c * x;
            }
            mem.vec_mut(o).copy_from_slice(s);
        }
        Op::VBroadcast => {
            let c = mem.s[a];
            mem.vec_mut(o).fill(c);
        }
        Op::VNorm => mem.s[o] = mem.vec(a).iter().map(|x| x * x).sum::<f64>().sqrt(),
        Op::VMean => mem.s[o] = mem.vec(a).iter().sum::<f64>() / dim as f64,
        Op::VStd => mem.s[o] = population_std(mem.vec(a)),
        Op::VSum => mem.s[o] = mem.vec(a).iter().sum::<f64>(),
        Op::TsRank => {
            // Rank of the newest element (last slot) within the vector,
            // normalized to [0, 1]; ties count half.
            let v = mem.vec(a);
            let last = v[dim - 1];
            let mut below = 0.0;
            for &x in &v[..dim - 1] {
                if x < last {
                    below += 1.0;
                } else if x == last {
                    below += 0.5;
                }
            }
            mem.s[o] = below / (dim - 1) as f64;
        }
        Op::VDot => {
            mem.s[o] = mem
                .vec(a)
                .iter()
                .zip(mem.vec(b))
                .map(|(x, y)| x * y)
                .sum::<f64>();
        }
        Op::VGet => mem.s[o] = mem.vec(a)[ix0],
        Op::VOuter => {
            let s = &mut scratch_m[..n2];
            {
                let va = mem.vec(a);
                let vb = mem.vec(b);
                for r in 0..dim {
                    for c in 0..dim {
                        s[r * dim + c] = va[r] * vb[c];
                    }
                }
            }
            mem.mat_mut(o).copy_from_slice(s);
        }
        Op::MatVec => {
            let s = &mut scratch_v[..dim];
            {
                let ma = mem.mat(a);
                let vb = mem.vec(b);
                for r in 0..dim {
                    s[r] = (0..dim).map(|c| ma[r * dim + c] * vb[c]).sum();
                }
            }
            mem.vec_mut(o).copy_from_slice(s);
        }

        // -- matrix ----------------------------------------------------
        Op::MConst => mem.mat_mut(o).fill(lit0),
        Op::MUniform => {
            for x in mem.mat_mut(o) {
                *x = uniform_in(rng, lit0, lit1);
            }
        }
        Op::MGauss => {
            for x in mem.mat_mut(o) {
                *x = normal(rng, lit0, lit1.abs());
            }
        }
        Op::MAdd | Op::MSub | Op::MMul | Op::MDiv | Op::MMin | Op::MMax => {
            let s = &mut scratch_m[..n2];
            {
                let ma = mem.mat(a);
                let mb = mem.mat(b);
                for i in 0..n2 {
                    s[i] = match instr.op {
                        Op::MAdd => ma[i] + mb[i],
                        Op::MSub => ma[i] - mb[i],
                        Op::MMul => ma[i] * mb[i],
                        Op::MDiv => ma[i] / mb[i],
                        Op::MMin => ma[i].min(mb[i]),
                        _ => ma[i].max(mb[i]),
                    };
                }
            }
            mem.mat_mut(o).copy_from_slice(s);
        }
        Op::MAbs => {
            let s = &mut scratch_m[..n2];
            for (i, x) in mem.mat(a).iter().enumerate() {
                s[i] = x.abs();
            }
            mem.mat_mut(o).copy_from_slice(s);
        }
        Op::MHeaviside => {
            let s = &mut scratch_m[..n2];
            for (i, x) in mem.mat(a).iter().enumerate() {
                s[i] = if *x > 0.0 { 1.0 } else { 0.0 };
            }
            mem.mat_mut(o).copy_from_slice(s);
        }
        Op::MTranspose => {
            let s = &mut scratch_m[..n2];
            {
                let ma = mem.mat(a);
                for r in 0..dim {
                    for c in 0..dim {
                        s[c * dim + r] = ma[r * dim + c];
                    }
                }
            }
            mem.mat_mut(o).copy_from_slice(s);
        }
        Op::MatMul => {
            let s = &mut scratch_m[..n2];
            {
                let ma = mem.mat(a);
                let mb = mem.mat(b);
                for r in 0..dim {
                    for c in 0..dim {
                        let mut acc = 0.0;
                        for k in 0..dim {
                            acc += ma[r * dim + k] * mb[k * dim + c];
                        }
                        s[r * dim + c] = acc;
                    }
                }
            }
            mem.mat_mut(o).copy_from_slice(s);
        }
        Op::SMScale => {
            let c = mem.s[a];
            let s = &mut scratch_m[..n2];
            for (i, x) in mem.mat(b).iter().enumerate() {
                s[i] = c * x;
            }
            mem.mat_mut(o).copy_from_slice(s);
        }
        Op::MBroadcast => {
            let s = &mut scratch_m[..n2];
            {
                let va = mem.vec(a);
                for r in 0..dim {
                    for c in 0..dim {
                        // axis 0: tile v across rows (row r is v);
                        // axis 1: tile v across columns (col c is v).
                        s[r * dim + c] = if ix0 == 0 { va[c] } else { va[r] };
                    }
                }
            }
            mem.mat_mut(o).copy_from_slice(s);
        }
        Op::MNorm => mem.s[o] = mem.mat(a).iter().map(|x| x * x).sum::<f64>().sqrt(),
        Op::MMean => mem.s[o] = mem.mat(a).iter().sum::<f64>() / n2 as f64,
        Op::MStd => mem.s[o] = population_std(mem.mat(a)),
        Op::MNormAxis | Op::MMeanAxis | Op::MStdAxis => {
            let s = &mut scratch_v[..dim];
            {
                let ma = mem.mat(a);
                for i in 0..dim {
                    // axis 0 reduces over rows (output indexed by column),
                    // axis 1 reduces over columns (output indexed by row) —
                    // NumPy convention.
                    let gather = |k: usize| {
                        if ix0 == 0 {
                            ma[k * dim + i]
                        } else {
                            ma[i * dim + k]
                        }
                    };
                    s[i] = match instr.op {
                        Op::MNormAxis => {
                            (0..dim).map(|k| gather(k) * gather(k)).sum::<f64>().sqrt()
                        }
                        Op::MMeanAxis => (0..dim).map(gather).sum::<f64>() / dim as f64,
                        _ => {
                            let mean = (0..dim).map(gather).sum::<f64>() / dim as f64;
                            ((0..dim)
                                .map(|k| (gather(k) - mean) * (gather(k) - mean))
                                .sum::<f64>()
                                / dim as f64)
                                .sqrt()
                        }
                    };
                }
            }
            mem.vec_mut(o).copy_from_slice(s);
        }
        Op::MGet => mem.s[o] = mem.mat(a)[ix0 * dim + ix1],
        Op::MGetRow => {
            let s = &mut scratch_v[..dim];
            s.copy_from_slice(&mem.mat(a)[ix0 * dim..(ix0 + 1) * dim]);
            mem.vec_mut(o).copy_from_slice(s);
        }
        Op::MGetCol => {
            let s = &mut scratch_v[..dim];
            {
                let ma = mem.mat(a);
                for r in 0..dim {
                    s[r] = ma[r * dim + ix0];
                }
            }
            mem.vec_mut(o).copy_from_slice(s);
        }

        // -- relation ops: handled by the interpreter -------------------
        Op::RelRank
        | Op::RelRankSector
        | Op::RelRankIndustry
        | Op::RelDemean
        | Op::RelDemeanSector
        | Op::RelDemeanIndustry => {
            debug_assert!(false, "relation op reached execute_local");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (MemoryBank, SmallRng, Vec<f64>, Vec<f64>) {
        let dim = 4;
        (
            MemoryBank::new(10, 16, 4, dim),
            SmallRng::seed_from_u64(0),
            vec![0.0; dim],
            vec![0.0; dim * dim],
        )
    }

    fn run(instr: Instruction, mem: &mut MemoryBank) {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut sv = vec![0.0; mem.dim()];
        let mut sm = vec![0.0; mem.dim() * mem.dim()];
        execute_local(&instr, mem, &mut rng, &mut sv, &mut sm);
    }

    fn instr(op: Op, in1: u8, in2: u8, out: u8) -> Instruction {
        Instruction {
            op,
            in1,
            in2,
            out,
            lit: [0.0; 2],
            ix: [0; 2],
        }
    }

    #[test]
    fn every_op_has_unique_name() {
        let mut names = std::collections::HashSet::new();
        for &op in Op::ALL {
            assert!(names.insert(op.name()), "duplicate name {}", op.name());
            assert_eq!(Op::from_name(op.name()), Some(op));
        }
        assert_eq!(Op::ALL.len(), 73);
    }

    #[test]
    fn relation_ops_flagged() {
        assert!(Op::RelRank.is_relation());
        assert!(Op::RelDemeanSector.is_relation());
        assert!(!Op::SAdd.is_relation());
        assert_eq!(Op::ALL.iter().filter(|o| o.is_relation()).count(), 6);
        assert_eq!(Op::ALL.iter().filter(|o| o.is_extraction()).count(), 3);
    }

    #[test]
    fn scalar_arithmetic() {
        let (mut mem, ..) = setup();
        mem.s[2] = 3.0;
        mem.s[3] = 4.0;
        run(instr(Op::SAdd, 2, 3, 4), &mut mem);
        assert_eq!(mem.s[4], 7.0);
        run(instr(Op::SDiv, 2, 3, 5), &mut mem);
        assert_eq!(mem.s[5], 0.75);
        run(instr(Op::SMin, 2, 3, 6), &mut mem);
        assert_eq!(mem.s[6], 3.0);
    }

    #[test]
    fn division_by_zero_is_unprotected() {
        let (mut mem, ..) = setup();
        mem.s[2] = 1.0;
        run(instr(Op::SDiv, 2, 3, 4), &mut mem); // s3 = 0
        assert!(mem.s[4].is_infinite());
        run(instr(Op::SLn, 3, 0, 5), &mut mem); // ln(0) = -inf
        assert!(mem.s[5].is_infinite());
    }

    #[test]
    fn heaviside_semantics() {
        let (mut mem, ..) = setup();
        mem.s[2] = 0.5;
        run(instr(Op::SHeaviside, 2, 0, 4), &mut mem);
        assert_eq!(mem.s[4], 1.0);
        mem.s[2] = 0.0;
        run(instr(Op::SHeaviside, 2, 0, 4), &mut mem);
        assert_eq!(mem.s[4], 0.0);
        mem.s[2] = -0.1;
        run(instr(Op::SHeaviside, 2, 0, 4), &mut mem);
        assert_eq!(mem.s[4], 0.0);
    }

    #[test]
    fn vector_ops_alias_safe() {
        let (mut mem, ..) = setup();
        mem.vec_mut(1).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        // v1 = v1 + v1 must double every element even though out aliases in.
        run(instr(Op::VAdd, 1, 1, 1), &mut mem);
        assert_eq!(mem.vec(1), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn matmul_identity() {
        let (mut mem, ..) = setup();
        let dim = 4;
        for i in 0..dim {
            mem.mat_mut(1)[i * dim + i] = 1.0;
        }
        for (i, x) in mem.mat_mut(2).iter_mut().enumerate() {
            *x = i as f64;
        }
        run(instr(Op::MatMul, 1, 2, 3), &mut mem);
        let expect: Vec<f64> = (0..16).map(|i| i as f64).collect();
        assert_eq!(mem.mat(3), &expect[..]);
    }

    #[test]
    fn matmul_alias_safe() {
        let (mut mem, ..) = setup();
        let dim = 4;
        for i in 0..dim {
            mem.mat_mut(1)[i * dim + i] = 2.0;
        }
        // m1 = m1 x m1 -> 4*I
        run(instr(Op::MatMul, 1, 1, 1), &mut mem);
        for r in 0..dim {
            for c in 0..dim {
                let expect = if r == c { 4.0 } else { 0.0 };
                assert_eq!(mem.mat(1)[r * dim + c], expect);
            }
        }
    }

    #[test]
    fn transpose_round_trip() {
        let (mut mem, ..) = setup();
        for (i, x) in mem.mat_mut(1).iter_mut().enumerate() {
            *x = i as f64;
        }
        let orig = mem.mat(1).to_vec();
        run(instr(Op::MTranspose, 1, 0, 1), &mut mem);
        run(instr(Op::MTranspose, 1, 0, 1), &mut mem);
        assert_eq!(mem.mat(1), &orig[..]);
    }

    #[test]
    fn extraction_ops() {
        let (mut mem, ..) = setup();
        let dim = 4;
        for (i, x) in mem.mat_mut(0).iter_mut().enumerate() {
            *x = i as f64;
        }
        let mut get = instr(Op::MGet, 0, 0, 3);
        get.ix = [2, 1];
        run(get, &mut mem);
        assert_eq!(mem.s[3], (2 * dim + 1) as f64);

        let mut row = instr(Op::MGetRow, 0, 0, 2);
        row.ix = [1, 0];
        run(row, &mut mem);
        assert_eq!(mem.vec(2), &[4.0, 5.0, 6.0, 7.0]);

        let mut col = instr(Op::MGetCol, 0, 0, 3);
        col.ix = [2, 0];
        run(col, &mut mem);
        assert_eq!(mem.vec(3), &[2.0, 6.0, 10.0, 14.0]);
    }

    #[test]
    fn axis_reductions_follow_numpy_convention() {
        let (mut mem, ..) = setup();
        let dim = 4;
        // m1[r][c] = r (constant along columns)
        for r in 0..dim {
            for c in 0..dim {
                mem.mat_mut(1)[r * dim + c] = r as f64;
            }
        }
        let mut mean0 = instr(Op::MMeanAxis, 1, 0, 2);
        mean0.ix = [0, 0]; // reduce over rows -> mean per column = 1.5
        run(mean0, &mut mem);
        assert_eq!(mem.vec(2), &[1.5, 1.5, 1.5, 1.5]);

        let mut mean1 = instr(Op::MMeanAxis, 1, 0, 3);
        mean1.ix = [1, 0]; // reduce over columns -> mean per row = r
        run(mean1, &mut mem);
        assert_eq!(mem.vec(3), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn broadcast_axes() {
        let (mut mem, ..) = setup();
        mem.vec_mut(1).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let mut b0 = instr(Op::MBroadcast, 1, 0, 1);
        b0.ix = [0, 0];
        run(b0, &mut mem);
        // Every row equals v.
        assert_eq!(&mem.mat(1)[0..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&mem.mat(1)[4..8], &[1.0, 2.0, 3.0, 4.0]);

        mem.vec_mut(1).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let mut b1 = instr(Op::MBroadcast, 1, 0, 2);
        b1.ix = [1, 0];
        run(b1, &mut mem);
        // Every column equals v: row r is constant v[r].
        assert_eq!(&mem.mat(2)[0..4], &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(&mem.mat(2)[4..8], &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn ts_rank_of_newest_element() {
        let (mut mem, ..) = setup();
        mem.vec_mut(1).copy_from_slice(&[5.0, 1.0, 3.0, 4.0]);
        run(instr(Op::TsRank, 1, 0, 2), &mut mem);
        // Elements below 4.0: {1.0, 3.0} -> 2/3.
        assert!((mem.s[2] - 2.0 / 3.0).abs() < 1e-12);
        mem.vec_mut(1).copy_from_slice(&[9.0, 9.0, 9.0, 9.0]);
        run(instr(Op::TsRank, 1, 0, 2), &mut mem);
        assert!(
            (mem.s[2] - 0.5).abs() < 1e-12,
            "all ties rank at the middle"
        );
    }

    #[test]
    fn stochastic_ops_respect_bounds() {
        let (mut mem, mut rng, mut sv, mut sm) = setup();
        let mut u = instr(Op::SUniform, 0, 0, 3);
        u.lit = [-0.5, 0.5];
        for _ in 0..100 {
            execute_local(&u, &mut mem, &mut rng, &mut sv, &mut sm);
            assert!(mem.s[3] >= -0.5 && mem.s[3] < 0.5);
        }
        // Swapped bounds are reordered, equal bounds degenerate.
        let mut v = instr(Op::SUniform, 0, 0, 3);
        v.lit = [0.5, -0.5];
        execute_local(&v, &mut mem, &mut rng, &mut sv, &mut sm);
        assert!(mem.s[3] >= -0.5 && mem.s[3] < 0.5);
        let mut w = instr(Op::SUniform, 0, 0, 3);
        w.lit = [0.25, 0.25];
        execute_local(&w, &mut mem, &mut rng, &mut sv, &mut sm);
        assert_eq!(mem.s[3], 0.25);
    }

    #[test]
    fn gauss_ops_deterministic_per_seed() {
        let dim = 4;
        let mut g = instr(Op::VGauss, 0, 0, 1);
        g.lit = [0.0, 1.0];
        let run_with_seed = |seed: u64| {
            let mut mem = MemoryBank::new(10, 16, 4, dim);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut sv = vec![0.0; dim];
            let mut sm = vec![0.0; dim * dim];
            execute_local(&g, &mut mem, &mut rng, &mut sv, &mut sm);
            mem.vec(1).to_vec()
        };
        assert_eq!(run_with_seed(7), run_with_seed(7));
        assert_ne!(run_with_seed(7), run_with_seed(8));
    }

    #[test]
    fn outer_product() {
        let (mut mem, ..) = setup();
        mem.vec_mut(1).copy_from_slice(&[1.0, 2.0, 0.0, 0.0]);
        mem.vec_mut(2).copy_from_slice(&[3.0, 4.0, 0.0, 0.0]);
        run(instr(Op::VOuter, 1, 2, 2), &mut mem);
        assert_eq!(mem.mat(2)[0], 3.0);
        assert_eq!(mem.mat(2)[1], 4.0);
        assert_eq!(mem.mat(2)[4], 6.0);
        assert_eq!(mem.mat(2)[5], 8.0);
    }

    #[test]
    fn mat_vec_product() {
        let (mut mem, ..) = setup();
        let dim = 4;
        for i in 0..dim {
            mem.mat_mut(1)[i * dim + i] = (i + 1) as f64;
        }
        mem.vec_mut(1).copy_from_slice(&[1.0, 1.0, 1.0, 1.0]);
        run(instr(Op::MatVec, 1, 1, 1), &mut mem);
        assert_eq!(mem.vec(1), &[1.0, 2.0, 3.0, 4.0]);
    }
}
