//! Alpha register storage, in two layouts.
//!
//! Registers persist across timesteps within an evaluation — that
//! persistence is what lets evolved alphas carry state like the paper's
//! `S3_{t-1}` recursions and what makes `Update()`-written registers act as
//! learned parameters at inference time. Special registers (paper §2):
//! `s0` = label, `s1` = prediction, `m0` = input feature matrix.
//!
//! Two layouts store the same registers:
//!
//! * [`MemoryBank`] — array-of-structs: each stock owns one bank holding
//!   its scalars, vectors and matrices contiguously. This is the layout of
//!   the lockstep reference interpreter
//!   ([`Interpreter`](crate::interp::Interpreter)), where an instruction is
//!   re-dispatched per stock.
//! * [`RegisterFile`] — struct-of-arrays ("columnar", stock-major): one
//!   buffer per operand kind in which every *register element* is a
//!   contiguous plane of `n_stocks` values (`s[reg]` is one
//!   `[f64; n_stocks]` slice; vector registers are `[reg][elem][stock]`
//!   planes, matrices `[reg][row][col][stock]`). This is the layout of the
//!   columnar interpreter
//!   ([`ColumnarInterpreter`](crate::interp::ColumnarInterpreter)): each
//!   instruction becomes one tight loop over the stock axis
//!   (auto-vectorizable, dispatch hoisted out), and the cross-sectional
//!   RelationOps read/write scalar planes directly with zero
//!   gather/scatter.
//!
//! The two layouts are bitwise interchangeable: per stock, every kernel
//! performs the same f64 operations in the same order (property-tested in
//! `crates/core/tests/properties.rs`).
//!
//! A `RegisterFile` also serves as a **batched tile**: constructed with
//! `B×` the per-candidate register counts, it holds B candidates'
//! register planes side by side (slot-major, with one extra matrix slot
//! for the tile-shared `m0` feature plane) so a single day-major sweep
//! can score B programs per feature-block load. The tile layout, offset
//! relocation, and per-slot RNG contract are documented on
//! [`BatchInterpreter`](crate::interp::BatchInterpreter) and
//! [`relocate_for_slot`](crate::compile::relocate_for_slot).

/// Scalar register holding the training label.
pub const LABEL: usize = 0;
/// Scalar register holding the prediction.
pub const PREDICTION: usize = 1;
/// Matrix register holding the input feature matrix `X ∈ R^{f×w}`.
pub const INPUT: usize = 0;

/// One stock's registers: `s` scalars, `v` vectors (length `dim`,
/// contiguous), `m` matrices (`dim × dim`, row-major, contiguous).
///
/// Lockstep-reference layout only — compiled out (together with the
/// reference `Interpreter`) when the default `reference-oracle` feature
/// is disabled.
#[derive(Debug, Clone, PartialEq)]
#[cfg(any(test, feature = "reference-oracle"))]
pub struct MemoryBank {
    /// Scalar registers.
    pub s: Vec<f64>,
    /// Vector registers, flattened `[reg][element]`.
    pub v: Vec<f64>,
    /// Matrix registers, flattened `[reg][row][col]`.
    pub m: Vec<f64>,
    dim: usize,
}

#[cfg(any(test, feature = "reference-oracle"))]
impl MemoryBank {
    /// All-zero bank for the given configuration.
    pub fn new(n_scalars: usize, n_vectors: usize, n_matrices: usize, dim: usize) -> MemoryBank {
        MemoryBank {
            s: vec![0.0; n_scalars],
            v: vec![0.0; n_vectors * dim],
            m: vec![0.0; n_matrices * dim * dim],
            dim,
        }
    }

    /// Vector/matrix element count per register.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Zeroes every register.
    pub fn reset(&mut self) {
        self.s.fill(0.0);
        self.v.fill(0.0);
        self.m.fill(0.0);
    }

    /// Read-only view of vector register `i`.
    #[inline]
    pub fn vec(&self, i: usize) -> &[f64] {
        &self.v[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable view of vector register `i`.
    #[inline]
    pub fn vec_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.v[i * self.dim..(i + 1) * self.dim]
    }

    /// Read-only view of matrix register `i` (row-major).
    #[inline]
    pub fn mat(&self, i: usize) -> &[f64] {
        let n = self.dim * self.dim;
        &self.m[i * n..(i + 1) * n]
    }

    /// Mutable view of matrix register `i`.
    #[inline]
    pub fn mat_mut(&mut self, i: usize) -> &mut [f64] {
        let n = self.dim * self.dim;
        &mut self.m[i * n..(i + 1) * n]
    }
}

/// Columnar (stock-major) register storage: every register element is one
/// contiguous plane of `n_stocks` values. See the module docs for the
/// layout contract.
///
/// Buffer offsets (`k` = `n_stocks`, `d` = `dim`):
///
/// * scalar register `r` → `s[r*k .. (r+1)*k]`
/// * vector register `r`, element `e` → `v[(r*d + e)*k ..][..k]`
/// * matrix register `r`, element `(i, j)` → `m[(r*d*d + i*d + j)*k ..][..k]`
#[derive(Debug, Clone, PartialEq)]
pub struct RegisterFile {
    /// Scalar planes, `[reg][stock]`.
    pub(crate) s: Vec<f64>,
    /// Vector planes, `[reg][elem][stock]`.
    pub(crate) v: Vec<f64>,
    /// Matrix planes, `[reg][row][col][stock]`.
    pub(crate) m: Vec<f64>,
    n_stocks: usize,
    dim: usize,
}

impl RegisterFile {
    /// All-zero register file for `n_stocks` stocks.
    pub fn new(
        n_scalars: usize,
        n_vectors: usize,
        n_matrices: usize,
        dim: usize,
        n_stocks: usize,
    ) -> RegisterFile {
        RegisterFile {
            s: vec![0.0; n_scalars * n_stocks],
            v: vec![0.0; n_vectors * dim * n_stocks],
            m: vec![0.0; n_matrices * dim * dim * n_stocks],
            n_stocks,
            dim,
        }
    }

    /// Vector/matrix element count per register.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stocks per plane.
    pub fn n_stocks(&self) -> usize {
        self.n_stocks
    }

    /// Zeroes every register.
    pub fn reset(&mut self) {
        self.s.fill(0.0);
        self.v.fill(0.0);
        self.m.fill(0.0);
    }

    /// Read-only plane of scalar register `r` (one value per stock).
    #[inline]
    pub fn s_plane(&self, r: usize) -> &[f64] {
        &self.s[r * self.n_stocks..(r + 1) * self.n_stocks]
    }

    /// Mutable plane of scalar register `r`.
    #[inline]
    pub fn s_plane_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.s[r * self.n_stocks..(r + 1) * self.n_stocks]
    }

    /// Read-only storage of vector register `r`: `dim` planes, stock-major.
    #[inline]
    pub fn v_reg(&self, r: usize) -> &[f64] {
        let n = self.dim * self.n_stocks;
        &self.v[r * n..(r + 1) * n]
    }

    /// Read-only storage of matrix register `r`: `dim²` planes, stock-major.
    #[inline]
    pub fn m_reg(&self, r: usize) -> &[f64] {
        let n = self.dim * self.dim * self.n_stocks;
        &self.m[r * n..(r + 1) * n]
    }

    /// The whole scalar buffer (`[reg][stock]` contiguous). Offsets follow
    /// the layout contract in the struct docs; used by the serving layer to
    /// snapshot/restore exactly the planes a compiled program touches.
    pub fn s_raw(&self) -> &[f64] {
        &self.s
    }

    /// Mutable access to the whole scalar buffer (see [`RegisterFile::s_raw`]).
    pub fn s_raw_mut(&mut self) -> &mut [f64] {
        &mut self.s
    }

    /// The whole vector buffer (`[reg][elem][stock]` contiguous).
    pub fn v_raw(&self) -> &[f64] {
        &self.v
    }

    /// Mutable access to the whole vector buffer.
    pub fn v_raw_mut(&mut self) -> &mut [f64] {
        &mut self.v
    }

    /// The whole matrix buffer (`[reg][row][col][stock]` contiguous).
    pub fn m_raw(&self) -> &[f64] {
        &self.m
    }

    /// Mutable access to the whole matrix buffer.
    pub fn m_raw_mut(&mut self) -> &mut [f64] {
        &mut self.m
    }

    /// One stock's scalar register `r` (tests / diagnostics).
    pub fn scalar(&self, r: usize, stock: usize) -> f64 {
        self.s[r * self.n_stocks + stock]
    }

    /// One stock's vector register `r` gathered into a `Vec` (tests only —
    /// this is a strided gather, not a hot-path access).
    pub fn vector_of(&self, r: usize, stock: usize) -> Vec<f64> {
        (0..self.dim)
            .map(|e| self.v[(r * self.dim + e) * self.n_stocks + stock])
            .collect()
    }

    /// One stock's matrix register `r` gathered row-major into a `Vec`
    /// (tests only).
    pub fn matrix_of(&self, r: usize, stock: usize) -> Vec<f64> {
        let d2 = self.dim * self.dim;
        (0..d2)
            .map(|e| self.m[(r * d2 + e) * self.n_stocks + stock])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banks_start_zeroed() {
        let b = MemoryBank::new(10, 16, 4, 13);
        assert_eq!(b.s.len(), 10);
        assert_eq!(b.v.len(), 16 * 13);
        assert_eq!(b.m.len(), 4 * 13 * 13);
        assert!(b.s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn register_views_are_disjoint_slices() {
        let mut b = MemoryBank::new(2, 3, 2, 4);
        b.vec_mut(1).fill(7.0);
        assert!(b.vec(0).iter().all(|&x| x == 0.0));
        assert!(b.vec(1).iter().all(|&x| x == 7.0));
        assert!(b.vec(2).iter().all(|&x| x == 0.0));
        b.mat_mut(0)[5] = 3.0;
        assert_eq!(b.mat(0)[5], 3.0);
        assert_eq!(b.mat(1)[5], 0.0);
    }

    #[test]
    fn register_file_planes_are_disjoint_and_stock_major() {
        let (k, d) = (5, 3);
        let mut r = RegisterFile::new(4, 2, 2, d, k);
        assert_eq!(r.s.len(), 4 * k);
        assert_eq!(r.v.len(), 2 * d * k);
        assert_eq!(r.m.len(), 2 * d * d * k);
        r.s_plane_mut(2).fill(7.0);
        assert!(r.s_plane(1).iter().all(|&x| x == 0.0));
        assert!(r.s_plane(3).iter().all(|&x| x == 0.0));
        assert_eq!(r.scalar(2, 4), 7.0);
        // Vector reg 1, elem 2, stock 3.
        r.v[(d + 2) * k + 3] = 9.0;
        assert_eq!(r.vector_of(1, 3), vec![0.0, 0.0, 9.0]);
        assert_eq!(r.vector_of(0, 3), vec![0.0; 3]);
        // Matrix reg 1, elem (2, 1), stock 0.
        r.m[(d * d + 2 * d + 1) * k] = 4.0;
        assert_eq!(r.matrix_of(1, 0)[2 * d + 1], 4.0);
        assert_eq!(r.matrix_of(0, 0), vec![0.0; d * d]);
    }

    #[test]
    fn register_file_reset_zeroes_all_planes() {
        let mut r = RegisterFile::new(3, 2, 1, 4, 6);
        r.s_plane_mut(1).fill(1.0);
        r.v[7] = 2.0;
        r.m[11] = 3.0;
        r.reset();
        assert!(r
            .s
            .iter()
            .chain(r.v.iter())
            .chain(r.m.iter())
            .all(|&x| x == 0.0));
    }

    #[test]
    fn reset_clears_everything() {
        let mut b = MemoryBank::new(2, 2, 1, 3);
        b.s[1] = 1.0;
        b.vec_mut(0)[2] = 2.0;
        b.mat_mut(0)[8] = 3.0;
        b.reset();
        assert!(b
            .s
            .iter()
            .chain(b.v.iter())
            .chain(b.m.iter())
            .all(|&x| x == 0.0));
    }
}
