//! Per-stock register banks.
//!
//! Each task (stock) owns one [`MemoryBank`] holding the scalar, vector and
//! matrix operands of an alpha. Banks persist across timesteps within an
//! evaluation — that persistence is what lets evolved alphas carry state
//! like the paper's `S3_{t-1}` recursions and what makes `Update()`-written
//! registers act as learned parameters at inference time.
//!
//! Special registers (paper §2): `s0` = label, `s1` = prediction,
//! `m0` = input feature matrix.

/// Scalar register holding the training label.
pub const LABEL: usize = 0;
/// Scalar register holding the prediction.
pub const PREDICTION: usize = 1;
/// Matrix register holding the input feature matrix `X ∈ R^{f×w}`.
pub const INPUT: usize = 0;

/// One stock's registers: `s` scalars, `v` vectors (length `dim`,
/// contiguous), `m` matrices (`dim × dim`, row-major, contiguous).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryBank {
    /// Scalar registers.
    pub s: Vec<f64>,
    /// Vector registers, flattened `[reg][element]`.
    pub v: Vec<f64>,
    /// Matrix registers, flattened `[reg][row][col]`.
    pub m: Vec<f64>,
    dim: usize,
}

impl MemoryBank {
    /// All-zero bank for the given configuration.
    pub fn new(n_scalars: usize, n_vectors: usize, n_matrices: usize, dim: usize) -> MemoryBank {
        MemoryBank {
            s: vec![0.0; n_scalars],
            v: vec![0.0; n_vectors * dim],
            m: vec![0.0; n_matrices * dim * dim],
            dim,
        }
    }

    /// Vector/matrix element count per register.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Zeroes every register.
    pub fn reset(&mut self) {
        self.s.fill(0.0);
        self.v.fill(0.0);
        self.m.fill(0.0);
    }

    /// Read-only view of vector register `i`.
    #[inline]
    pub fn vec(&self, i: usize) -> &[f64] {
        &self.v[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable view of vector register `i`.
    #[inline]
    pub fn vec_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.v[i * self.dim..(i + 1) * self.dim]
    }

    /// Read-only view of matrix register `i` (row-major).
    #[inline]
    pub fn mat(&self, i: usize) -> &[f64] {
        let n = self.dim * self.dim;
        &self.m[i * n..(i + 1) * n]
    }

    /// Mutable view of matrix register `i`.
    #[inline]
    pub fn mat_mut(&mut self, i: usize) -> &mut [f64] {
        let n = self.dim * self.dim;
        &mut self.m[i * n..(i + 1) * n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banks_start_zeroed() {
        let b = MemoryBank::new(10, 16, 4, 13);
        assert_eq!(b.s.len(), 10);
        assert_eq!(b.v.len(), 16 * 13);
        assert_eq!(b.m.len(), 4 * 13 * 13);
        assert!(b.s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn register_views_are_disjoint_slices() {
        let mut b = MemoryBank::new(2, 3, 2, 4);
        b.vec_mut(1).fill(7.0);
        assert!(b.vec(0).iter().all(|&x| x == 0.0));
        assert!(b.vec(1).iter().all(|&x| x == 7.0));
        assert!(b.vec(2).iter().all(|&x| x == 0.0));
        b.mat_mut(0)[5] = 3.0;
        assert_eq!(b.mat(0)[5], 3.0);
        assert_eq!(b.mat(1)[5], 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut b = MemoryBank::new(2, 2, 1, 3);
        b.s[1] = 1.0;
        b.vec_mut(0)[2] = 2.0;
        b.mat_mut(0)[8] = 3.0;
        b.reset();
        assert!(b
            .s
            .iter()
            .chain(b.v.iter())
            .chain(b.m.iter())
            .all(|&x| x == 0.0));
    }
}
