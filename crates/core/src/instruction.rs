//! One operation: an operator, input operand(s), and an output operand
//! (paper §2), plus literal/index slots for constants and ExtractionOps.

use std::fmt;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::config::AlphaConfig;
use crate::op::{IxUse, Kind, LitUse, Op};

/// A single straight-line operation.
///
/// Unused slots are kept at zero (enforced by the constructors and the
/// mutator) so that structurally identical instructions are bit-identical —
/// a prerequisite for the fingerprint cache.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The operator.
    pub op: Op,
    /// First input register (meaning depends on `op.input_kinds()[0]`).
    pub in1: u8,
    /// Second input register, when the op is binary.
    pub in2: u8,
    /// Output register.
    pub out: u8,
    /// Literal slots (constants / distribution parameters).
    pub lit: [f64; 2],
    /// Small-integer slots (element indices or axis selector).
    pub ix: [u8; 2],
}

impl Instruction {
    /// The no-op.
    pub fn nop() -> Instruction {
        Instruction {
            op: Op::NoOp,
            in1: 0,
            in2: 0,
            out: 0,
            lit: [0.0; 2],
            ix: [0; 2],
        }
    }

    /// Builds an instruction and zeroes unused slots.
    pub fn new(op: Op, in1: u8, in2: u8, out: u8, lit: [f64; 2], ix: [u8; 2]) -> Instruction {
        let mut i = Instruction {
            op,
            in1,
            in2,
            out,
            lit,
            ix,
        };
        i.normalize();
        i
    }

    /// Zeroes every slot the op does not use.
    pub fn normalize(&mut self) {
        let arity = self.op.input_kinds().len();
        if arity < 1 {
            self.in1 = 0;
        }
        if arity < 2 {
            self.in2 = 0;
        }
        if self.op == Op::NoOp {
            self.out = 0;
        }
        let nlit = self.op.lit_use().count();
        if nlit < 1 {
            self.lit[0] = 0.0;
        }
        if nlit < 2 {
            self.lit[1] = 0.0;
        }
        let nix = self.op.ix_use().count();
        if nix < 1 {
            self.ix[0] = 0;
        }
        if nix < 2 {
            self.ix[1] = 0;
        }
    }

    /// Samples a fully random instruction with the given op.
    pub fn random_with_op(rng: &mut SmallRng, op: Op, cfg: &AlphaConfig) -> Instruction {
        let mut instr = Instruction::nop();
        instr.op = op;
        let kinds = op.input_kinds();
        if !kinds.is_empty() {
            instr.in1 = rng.gen_range(0..cfg.bank_size(kinds[0])) as u8;
        }
        if kinds.len() > 1 {
            instr.in2 = rng.gen_range(0..cfg.bank_size(kinds[1])) as u8;
        }
        if op != Op::NoOp {
            instr.out = rng.gen_range(0..cfg.bank_size(op.output_kind())) as u8;
        }
        sample_literals(rng, op.lit_use(), &mut instr.lit);
        let ix_use = op.ix_use();
        for slot in 0..ix_use.count() {
            instr.ix[slot] = rng.gen_range(0..ix_use.domain(slot, cfg.dim)) as u8;
        }
        instr.normalize();
        instr
    }

    /// Samples a random instruction with an op drawn from `pool`.
    pub fn random(rng: &mut SmallRng, pool: &[Op], cfg: &AlphaConfig) -> Instruction {
        let op = pool[rng.gen_range(0..pool.len())];
        Instruction::random_with_op(rng, op, cfg)
    }

    /// All mutable "slots" of this instruction that a point mutation can
    /// target: inputs, output, literals, indices. Returns the slot count.
    pub fn n_mutable_slots(&self) -> usize {
        let arity = self.op.input_kinds().len();
        let out = usize::from(self.op != Op::NoOp);
        arity + out + self.op.lit_use().count() + self.op.ix_use().count()
    }

    /// Re-randomizes one slot (selected by `slot < n_mutable_slots()`).
    pub fn randomize_slot(&mut self, rng: &mut SmallRng, slot: usize, cfg: &AlphaConfig) {
        let kinds = self.op.input_kinds();
        let arity = kinds.len();
        let has_out = usize::from(self.op != Op::NoOp);
        if slot < arity {
            let k = kinds[slot];
            let reg = rng.gen_range(0..cfg.bank_size(k)) as u8;
            if slot == 0 {
                self.in1 = reg;
            } else {
                self.in2 = reg;
            }
            return;
        }
        let slot = slot - arity;
        if slot < has_out {
            self.out = rng.gen_range(0..cfg.bank_size(self.op.output_kind())) as u8;
            return;
        }
        let slot = slot - has_out;
        let nlit = self.op.lit_use().count();
        if slot < nlit {
            // Perturb rather than resample: multiply by U(0.5, 2.0) and
            // occasionally flip the sign, so constants can be fine-tuned.
            let x = self.lit[slot];
            let scaled = x * rng.gen_range(0.5..2.0);
            self.lit[slot] = if rng.gen::<f64>() < 0.1 {
                -scaled
            } else if x == 0.0 {
                rng.gen_range(-1.0..1.0)
            } else {
                scaled
            };
            return;
        }
        let slot = slot - nlit;
        let ix_use = self.op.ix_use();
        if slot < ix_use.count() {
            self.ix[slot] = rng.gen_range(0..ix_use.domain(slot, cfg.dim)) as u8;
        }
    }

    /// Checks register/index bounds against a configuration.
    pub fn validate(&self, cfg: &AlphaConfig) -> Result<(), String> {
        let kinds = self.op.input_kinds();
        if !kinds.is_empty() && (self.in1 as usize) >= cfg.bank_size(kinds[0]) {
            return Err(format!("{}: in1 out of range", self.op.name()));
        }
        if kinds.len() > 1 && (self.in2 as usize) >= cfg.bank_size(kinds[1]) {
            return Err(format!("{}: in2 out of range", self.op.name()));
        }
        if self.op != Op::NoOp && (self.out as usize) >= cfg.bank_size(self.op.output_kind()) {
            return Err(format!("{}: out out of range", self.op.name()));
        }
        let ix_use = self.op.ix_use();
        for slot in 0..ix_use.count() {
            if (self.ix[slot] as usize) >= ix_use.domain(slot, cfg.dim) {
                return Err(format!("{}: index {slot} out of range", self.op.name()));
            }
        }
        for slot in 0..self.op.lit_use().count() {
            if !self.lit[slot].is_finite() {
                return Err(format!("{}: non-finite literal", self.op.name()));
            }
        }
        Ok(())
    }

    fn reg_name(kind: Kind, idx: u8) -> String {
        format!("{}{}", kind.prefix(), idx)
    }
}

/// Samples literal values appropriate for the op's [`LitUse`].
pub fn sample_literals(rng: &mut SmallRng, lit_use: LitUse, out: &mut [f64; 2]) {
    match lit_use {
        LitUse::None => {
            out[0] = 0.0;
            out[1] = 0.0;
        }
        LitUse::Const => {
            out[0] = rng.gen_range(-1.0..1.0);
            out[1] = 0.0;
        }
        LitUse::Range => {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            out[0] = a.min(b);
            out[1] = a.max(b);
        }
        LitUse::MeanStd => {
            out[0] = rng.gen_range(-1.0..1.0);
            out[1] = rng.gen_range(0.0..1.0);
        }
    }
}

impl fmt::Display for Instruction {
    /// Renders as `out = op(args)`, e.g. `s3 = m_get(m0, 11, 12)` or
    /// `v1 = m_mean_axis(m2, axis=0)`. Literals print with round-trip
    /// precision. The bare no-op renders as `noop`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.op == Op::NoOp {
            return write!(f, "noop");
        }
        let mut args: Vec<String> = Vec::new();
        let kinds = self.op.input_kinds();
        if !kinds.is_empty() {
            args.push(Instruction::reg_name(kinds[0], self.in1));
        }
        if kinds.len() > 1 {
            args.push(Instruction::reg_name(kinds[1], self.in2));
        }
        match self.op.ix_use() {
            IxUse::None => {}
            IxUse::Axis => args.push(format!("axis={}", self.ix[0])),
            IxUse::RowCol => {
                args.push(self.ix[0].to_string());
                args.push(self.ix[1].to_string());
            }
            _ => args.push(self.ix[0].to_string()),
        }
        for slot in 0..self.op.lit_use().count() {
            args.push(format!("{:?}", self.lit[slot]));
        }
        write!(
            f,
            "{} = {}({})",
            Instruction::reg_name(self.op.output_kind(), self.out),
            self.op.name(),
            args.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn display_formats() {
        let i = Instruction::new(Op::SAdd, 2, 3, 4, [0.0; 2], [0; 2]);
        assert_eq!(i.to_string(), "s4 = s_add(s2, s3)");
        let c = Instruction::new(Op::SConst, 0, 0, 2, [0.001, 0.0], [0; 2]);
        assert_eq!(c.to_string(), "s2 = s_const(0.001)");
        let g = Instruction::new(Op::MGet, 0, 0, 3, [0.0; 2], [11, 12]);
        assert_eq!(g.to_string(), "s3 = m_get(m0, 11, 12)");
        let a = Instruction::new(Op::MMeanAxis, 1, 0, 2, [0.0; 2], [1, 0]);
        assert_eq!(a.to_string(), "v2 = m_mean_axis(m1, axis=1)");
        assert_eq!(Instruction::nop().to_string(), "noop");
    }

    #[test]
    fn normalize_zeroes_unused_slots() {
        let i = Instruction::new(Op::SAbs, 3, 9, 4, [7.0, 8.0], [5, 6]);
        assert_eq!(i.in2, 0);
        assert_eq!(i.lit, [0.0, 0.0]);
        assert_eq!(i.ix, [0, 0]);
        assert_eq!(i.in1, 3);
    }

    #[test]
    fn random_instructions_validate() {
        let cfg = AlphaConfig::default();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..2000 {
            let i = Instruction::random(&mut rng, Op::ALL, &cfg);
            i.validate(&cfg).expect("random instruction must validate");
        }
    }

    #[test]
    fn randomize_slot_stays_valid() {
        let cfg = AlphaConfig::default();
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..500 {
            let mut i = Instruction::random(&mut rng, Op::ALL, &cfg);
            let n = i.n_mutable_slots();
            if n == 0 {
                continue;
            }
            let slot = rng.gen_range(0..n);
            i.randomize_slot(&mut rng, slot, &cfg);
            i.validate(&cfg).expect("mutated instruction must validate");
        }
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let cfg = AlphaConfig::default();
        let mut i = Instruction::new(Op::SAdd, 2, 3, 4, [0.0; 2], [0; 2]);
        i.out = 99;
        assert!(i.validate(&cfg).is_err());
        let mut g = Instruction::new(Op::MGet, 0, 0, 3, [0.0; 2], [2, 2]);
        g.ix[0] = 13;
        assert!(g.validate(&cfg).is_err());
    }

    #[test]
    fn literal_display_round_trips() {
        let c = Instruction::new(Op::SConst, 0, 0, 2, [0.1 + 0.2, 0.0], [0; 2]);
        let s = c.to_string();
        let lit: f64 = s
            .trim_end_matches(')')
            .rsplit('(')
            .next()
            .unwrap()
            .parse()
            .expect("literal parses");
        assert_eq!(lit, 0.1 + 0.2);
    }
}
