//! Human-readable program serialization.
//!
//! The format is exactly what [`AlphaProgram`]'s `Display` prints:
//!
//! ```text
//! def setup():
//!   s2 = s_const(0.001)
//! def predict():
//!   s3 = m_get(m0, 11, 12)
//!   s1 = s_div(s3, s2)
//! def update():
//!   noop
//! ```
//!
//! Literals round-trip exactly (shortest-representation printing, bitwise
//! re-parse). This doubles as the on-disk format for mined alpha sets, in
//! place of a serde dependency.

use crate::instruction::Instruction;
use crate::op::{IxUse, Kind, Op};
use crate::program::{AlphaProgram, FunctionId};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending text.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Serializes a program (same as `Display`).
pub fn to_text(prog: &AlphaProgram) -> String {
    prog.to_string()
}

/// Serializes a named alpha *set* (e.g. the weakly correlated set `A`
/// mined across rounds) into one document: blocks introduced by
/// `## alpha <name>` headers.
pub fn set_to_text<'a>(alphas: impl IntoIterator<Item = (&'a str, &'a AlphaProgram)>) -> String {
    let mut out = String::new();
    for (name, prog) in alphas {
        out.push_str(&format!("## alpha {name}\n"));
        out.push_str(&prog.to_string());
    }
    out
}

/// Parses a document written by [`set_to_text`].
pub fn set_from_text(text: &str) -> Result<Vec<(String, AlphaProgram)>, ParseError> {
    let mut out = Vec::new();
    let mut name: Option<String> = None;
    let mut block = String::new();
    let mut block_start = 1usize;
    let flush = |name: &Option<String>,
                 block: &str,
                 start: usize,
                 out: &mut Vec<(String, AlphaProgram)>|
     -> Result<(), ParseError> {
        if let Some(n) = name {
            let prog = from_text(block).map_err(|e| ParseError {
                line: if e.line == 0 { start } else { start + e.line },
                msg: format!("in alpha `{n}`: {}", e.msg),
            })?;
            out.push((n.clone(), prog));
        } else if !block.trim().is_empty() {
            return Err(ParseError {
                line: start,
                msg: "content before any `## alpha` header".into(),
            });
        }
        Ok(())
    };
    for (lineno, line) in text.lines().enumerate() {
        if let Some(rest) = line.trim().strip_prefix("## alpha ") {
            flush(&name, &block, block_start, &mut out)?;
            name = Some(rest.trim().to_string());
            block.clear();
            block_start = lineno + 1;
        } else {
            block.push_str(line);
            block.push('\n');
        }
    }
    flush(&name, &block, block_start, &mut out)?;
    Ok(out)
}

/// Parses a program from its text form.
pub fn from_text(text: &str) -> Result<AlphaProgram, ParseError> {
    let mut prog = AlphaProgram::new();
    let mut current: Option<FunctionId> = None;
    let mut seen = [false; 3];

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("def ") {
            // The header must be complete — `def update` with the `():`
            // sheared off is how a truncated file looks, and accepting it
            // would silently turn a torn write into an empty function.
            let name = rest.trim().strip_suffix("():").ok_or_else(|| ParseError {
                line: lineno,
                msg: format!("function header `def {rest}` must end with `():`"),
            })?;
            let f = match name {
                "setup" => FunctionId::Setup,
                "predict" => FunctionId::Predict,
                "update" => FunctionId::Update,
                other => {
                    return Err(ParseError {
                        line: lineno,
                        msg: format!("unknown function `{other}`"),
                    })
                }
            };
            let idx = FunctionId::ALL.iter().position(|&x| x == f).unwrap();
            if seen[idx] {
                return Err(ParseError {
                    line: lineno,
                    msg: format!("duplicate `def {name}`"),
                });
            }
            seen[idx] = true;
            current = Some(f);
            continue;
        }
        let f = current.ok_or_else(|| ParseError {
            line: lineno,
            msg: "instruction before any `def`".into(),
        })?;
        let instr = parse_instruction(line).map_err(|msg| ParseError { line: lineno, msg })?;
        prog.function_mut(f).push(instr);
    }

    if !seen.iter().all(|&s| s) {
        return Err(ParseError {
            line: 0,
            msg: "missing one of setup/predict/update".into(),
        });
    }
    // Text is a trust boundary like any other deserialization path: a
    // document can be perfectly well-formed *as text* while its registers
    // or indices would corrupt an interpreter. The cfg-free envelope
    // rejects what no config could accept; [`from_text_checked`] layers
    // the config-aware verifier on top.
    if let Err(d) = crate::verify::check_envelope(&prog) {
        return Err(ParseError {
            line: 0,
            msg: d.to_string(),
        });
    }
    Ok(prog)
}

/// Parses a program and verifies it against a concrete config: register
/// indices within the configured bank sizes and extraction indices within
/// the feature matrix (an `m_get(m0, 200, 0)` row index beyond
/// `cfg.dim` used to parse silently and only blow up — or worse, read
/// garbage — once interpreted). Structural diagnostics come back as
/// [`ParseError`]s with the offending source line.
pub fn from_text_checked(
    text: &str,
    cfg: &crate::config::AlphaConfig,
) -> Result<AlphaProgram, ParseError> {
    let prog = from_text(text)?;
    if let Err(d) = crate::verify::ProgramVerifier::new(cfg).ensure_valid(&prog) {
        return Err(ParseError {
            line: diagnostic_line(text, &d),
            msg: d.to_string(),
        });
    }
    Ok(prog)
}

/// Best-effort mapping of a verifier diagnostic (function + instruction
/// index) back to a 1-based source line; 0 when the diagnostic carries no
/// position.
fn diagnostic_line(text: &str, d: &crate::verify::Diagnostic) -> usize {
    let (Some(f), Some(instr)) = (d.function, d.instr) else {
        return 0;
    };
    let header = format!("def {}():", f.name());
    let mut in_function = false;
    let mut index = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with("def ") {
            in_function = line == header;
            continue;
        }
        if !in_function || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if index == instr {
            return lineno + 1;
        }
        index += 1;
    }
    0
}

fn parse_register(token: &str, expect: Kind) -> Result<u8, String> {
    let mut chars = token.chars();
    let prefix = chars.next().ok_or("empty register token")?;
    if prefix != expect.prefix() {
        return Err(format!(
            "expected a {}-register, got `{token}`",
            expect.prefix()
        ));
    }
    chars
        .as_str()
        .parse::<u8>()
        .map_err(|_| format!("bad register index in `{token}`"))
}

fn parse_instruction(line: &str) -> Result<Instruction, String> {
    if line == "noop" {
        return Ok(Instruction::nop());
    }
    let (lhs, rhs) = line
        .split_once('=')
        .ok_or_else(|| format!("expected `out = op(...)`, got `{line}`"))?;
    let lhs = lhs.trim();
    let rhs = rhs.trim();
    let (name, args_str) = rhs
        .split_once('(')
        .ok_or_else(|| format!("expected `op(args)`, got `{rhs}`"))?;
    let args_str = args_str
        .strip_suffix(')')
        .ok_or_else(|| format!("missing closing paren in `{rhs}`"))?;
    let op = Op::from_name(name.trim()).ok_or_else(|| format!("unknown op `{}`", name.trim()))?;
    let args: Vec<&str> = if args_str.trim().is_empty() {
        Vec::new()
    } else {
        args_str.split(',').map(str::trim).collect()
    };

    let kinds = op.input_kinds();
    let expected = kinds.len() + op.ix_use().count() + op.lit_use().count();
    if args.len() != expected {
        return Err(format!(
            "`{}` takes {} args, got {}",
            op.name(),
            expected,
            args.len()
        ));
    }

    let mut instr = Instruction::nop();
    instr.op = op;
    instr.out = parse_register(lhs, op.output_kind())?;
    let mut pos = 0;
    if !kinds.is_empty() {
        instr.in1 = parse_register(args[pos], kinds[0])?;
        pos += 1;
    }
    if kinds.len() > 1 {
        instr.in2 = parse_register(args[pos], kinds[1])?;
        pos += 1;
    }
    for slot in 0..op.ix_use().count() {
        let tok = args[pos].strip_prefix("axis=").unwrap_or(args[pos]);
        if op.ix_use() == IxUse::Axis && !args[pos].starts_with("axis=") {
            return Err(format!(
                "axis argument must be written `axis=N`, got `{}`",
                args[pos]
            ));
        }
        instr.ix[slot] = tok
            .parse::<u8>()
            .map_err(|_| format!("bad index argument `{}`", args[pos]))?;
        pos += 1;
    }
    for slot in 0..op.lit_use().count() {
        instr.lit[slot] = args[pos]
            .parse::<f64>()
            .map_err(|_| format!("bad literal `{}`", args[pos]))?;
        pos += 1;
    }
    instr.normalize();
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlphaConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn round_trips_simple_program() {
        let text = "def setup():\n  s2 = s_const(0.001)\ndef predict():\n  s3 = m_get(m0, 11, 12)\n  s1 = s_div(s3, s2)\ndef update():\n  noop\n";
        let prog = from_text(text).unwrap();
        assert_eq!(to_text(&prog), text);
    }

    #[test]
    fn round_trips_random_programs() {
        let cfg = AlphaConfig::default();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..50 {
            let mut prog = AlphaProgram::new();
            for f in FunctionId::ALL {
                let pool: Vec<_> = crate::op::Op::ALL
                    .iter()
                    .copied()
                    .filter(|o| f != FunctionId::Setup || !o.is_relation())
                    .collect();
                for _ in 0..5 {
                    prog.function_mut(f)
                        .push(Instruction::random(&mut rng, &pool, &cfg));
                }
            }
            let text = to_text(&prog);
            let back = from_text(&text).expect("parse back");
            assert_eq!(back, prog, "text was:\n{text}");
        }
    }

    #[test]
    fn literals_round_trip_bitwise() {
        let text = format!(
            "def setup():\n  s2 = s_const({:?})\ndef predict():\n  noop\ndef update():\n  noop\n",
            0.1f64 + 0.2f64
        );
        let prog = from_text(&text).unwrap();
        assert_eq!(prog.setup[0].lit[0], 0.1 + 0.2);
    }

    #[test]
    fn rejects_unknown_op() {
        let text =
            "def setup():\n  s1 = s_frobnicate(s2)\ndef predict():\n  noop\ndef update():\n  noop";
        let err = from_text(text).unwrap_err();
        assert!(err.msg.contains("unknown op"));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_wrong_kind() {
        let text =
            "def setup():\n  s1 = s_add(v2, s3)\ndef predict():\n  noop\ndef update():\n  noop";
        assert!(from_text(text).is_err());
    }

    #[test]
    fn rejects_wrong_arity() {
        let text = "def setup():\n  s1 = s_add(s2)\ndef predict():\n  noop\ndef update():\n  noop";
        let err = from_text(text).unwrap_err();
        assert!(err.msg.contains("takes"));
    }

    #[test]
    fn rejects_missing_function() {
        let text = "def setup():\n  noop\ndef predict():\n  noop";
        assert!(from_text(text).is_err());
    }

    #[test]
    fn rejects_axis_without_keyword() {
        let text =
            "def setup():\n  v1 = m_mean_axis(m0, 0)\ndef predict():\n  noop\ndef update():\n  noop";
        assert!(from_text(text).is_err());
    }

    #[test]
    fn alpha_set_round_trips() {
        let cfg = AlphaConfig::default();
        let a = crate::init::domain_expert(&cfg);
        let b = crate::init::two_layer_nn(&cfg);
        let text = set_to_text([("alpha_AE_D_0", &a), ("alpha_AE_NN_1", &b)]);
        let set = set_from_text(&text).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set[0].0, "alpha_AE_D_0");
        assert_eq!(set[0].1, a);
        assert_eq!(set[1].1, b);
    }

    #[test]
    fn alpha_set_rejects_headerless_content() {
        let err = set_from_text("def setup():\n  noop\n").unwrap_err();
        assert!(err.msg.contains("before any"));
    }

    #[test]
    fn alpha_set_reports_errors_with_name() {
        let text = "## alpha broken\ndef setup():\n  s1 = s_frobnicate(s2)\ndef predict():\n  noop\ndef update():\n  noop\n";
        let err = set_from_text(text).unwrap_err();
        assert!(err.msg.contains("broken"));
        assert!(err.msg.contains("unknown op"));
    }

    #[test]
    fn empty_set_is_empty() {
        assert!(set_from_text("").unwrap().is_empty());
    }

    #[test]
    fn envelope_rejects_out_of_range_register_text() {
        // Well-formed text, poison register: no config has an s200.
        let text =
            "def setup():\n  s1 = s_abs(s200)\ndef predict():\n  noop\ndef update():\n  noop\n";
        let err = from_text(text).unwrap_err();
        assert!(err.msg.contains("register"), "msg: {}", err.msg);
    }

    #[test]
    fn envelope_rejects_non_finite_literal_text() {
        let text =
            "def setup():\n  s2 = s_const(NaN)\ndef predict():\n  noop\ndef update():\n  noop\n";
        let err = from_text(text).unwrap_err();
        assert!(err.msg.contains("literal"), "msg: {}", err.msg);
    }

    #[test]
    fn checked_parse_rejects_out_of_range_feature_row() {
        // `m_get(m0, 200, 0)` parses (200 fits a u8) but row 200 is far
        // outside the 13×13 feature matrix — the checked parse pins this
        // to the offending line.
        let cfg = AlphaConfig::default();
        let text =
            "def setup():\n  noop\ndef predict():\n  s1 = m_get(m0, 200, 0)\ndef update():\n  noop\n";
        assert!(
            from_text(text).is_ok(),
            "the cfg-free parse cannot know dim"
        );
        let err = from_text_checked(text, &cfg).unwrap_err();
        assert_eq!(err.line, 4, "err: {err}");
        assert!(err.msg.contains("index"), "msg: {}", err.msg);
    }

    #[test]
    fn checked_parse_rejects_register_beyond_config_bank() {
        // s12 clears the envelope (< 16) but not the default config's
        // scalar bank.
        let cfg = AlphaConfig::default();
        assert!(cfg.n_scalars <= 12);
        let text =
            "def setup():\n  s1 = s_abs(s12)\ndef predict():\n  noop\ndef update():\n  noop\n";
        assert!(from_text(text).is_ok());
        let err = from_text_checked(text, &cfg).unwrap_err();
        assert_eq!(err.line, 2, "err: {err}");
    }

    #[test]
    fn checked_parse_accepts_the_paper_seeds() {
        let cfg = AlphaConfig::default();
        for prog in [
            crate::init::domain_expert(&cfg),
            crate::init::two_layer_nn(&cfg),
            crate::init::industry_reversal(&cfg),
        ] {
            let text = to_text(&prog);
            assert_eq!(from_text_checked(&text, &cfg).unwrap(), prog);
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# mined by round 3\n\ndef setup():\n  noop\ndef predict():\n  s1 = m_mean(m0)\n\ndef update():\n  noop\n";
        let prog = from_text(text).unwrap();
        assert_eq!(prog.predict.len(), 1);
    }
}
