//! Configuration of the alpha search space (paper §5.2).
//!
//! *"We choose the size of the maximum allowed scalar, vector, and matrix
//! operands to be 10, 16, and 4, respectively. The minimum number of the
//! operations in each function is set to 1 and the maximum number to 21,
//! 21, and 45."*

/// Static shape of the search space: register-bank sizes, the input
/// dimension, and per-function instruction limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlphaConfig {
    /// Number of scalar registers (`s0` = label, `s1` = prediction).
    pub n_scalars: usize,
    /// Number of vector registers, each of length [`AlphaConfig::dim`].
    pub n_vectors: usize,
    /// Number of matrix registers, each `dim × dim` (`m0` = input features).
    pub n_matrices: usize,
    /// Input dimension: the paper uses a square feature matrix `f = w = 13`,
    /// and vectors share the same length.
    pub dim: usize,
    /// Minimum instructions per function.
    pub min_ops: usize,
    /// Maximum instructions in `Setup()`.
    pub max_setup_ops: usize,
    /// Maximum instructions in `Predict()`.
    pub max_predict_ops: usize,
    /// Maximum instructions in `Update()`.
    pub max_update_ops: usize,
}

impl Default for AlphaConfig {
    fn default() -> Self {
        AlphaConfig {
            n_scalars: 10,
            n_vectors: 16,
            n_matrices: 4,
            dim: 13,
            min_ops: 1,
            max_setup_ops: 21,
            max_predict_ops: 21,
            max_update_ops: 45,
        }
    }
}

impl AlphaConfig {
    /// Register-bank size for operands of the given kind.
    pub fn bank_size(&self, kind: crate::op::Kind) -> usize {
        match kind {
            crate::op::Kind::S => self.n_scalars,
            crate::op::Kind::V => self.n_vectors,
            crate::op::Kind::M => self.n_matrices,
        }
    }

    /// Panics if the configuration cannot host the special registers.
    pub fn validate(&self) {
        assert!(self.n_scalars >= 2, "need s0 (label) and s1 (prediction)");
        assert!(self.n_matrices >= 1, "need m0 (input features)");
        assert!(self.n_vectors >= 1, "need at least one vector register");
        assert!(self.dim >= 2, "dim must be at least 2");
        assert!(self.min_ops >= 1, "functions must have at least one op");
        assert!(
            self.max_setup_ops >= self.min_ops
                && self.max_predict_ops >= self.min_ops
                && self.max_update_ops >= self.min_ops,
            "max ops must be >= min ops"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = AlphaConfig::default();
        assert_eq!((c.n_scalars, c.n_vectors, c.n_matrices), (10, 16, 4));
        assert_eq!(c.dim, 13);
        assert_eq!(
            (c.max_setup_ops, c.max_predict_ops, c.max_update_ops),
            (21, 21, 45)
        );
        c.validate();
    }

    #[test]
    #[should_panic(expected = "need s0")]
    fn rejects_tiny_scalar_bank() {
        AlphaConfig {
            n_scalars: 1,
            ..Default::default()
        }
        .validate();
    }
}
