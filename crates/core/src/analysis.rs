//! Structural analysis of evolved alphas (paper §5.4.2).
//!
//! The paper studies each mined alpha by decomposing its equations into
//! three parts: **M** (the prediction computation used in both training and
//! inference), **P** (predict-side recursions that keep running at
//! inference), and **U** (the parameter-updating function that only runs in
//! training, whose written registers become the *parameters* passed to
//! inference). This module computes that decomposition plus the summary
//! facts the paper reads off it:
//!
//! * which registers are **parameters** (written by live `Update()` code
//!   and demanded by `Predict()` across days);
//! * whether the alpha is **formulaic** (no parameters, no recursions — the
//!   "special case of the new alpha with no parameters");
//! * how much **relational domain knowledge** evolution chose to keep
//!   (RelationOp counts — the paper's "selective injection");
//! * which of the input matrix's features the alpha actually reads
//!   (ExtractionOp addressing), e.g. "trades on the trend of high prices".

use std::collections::BTreeSet;

use crate::op::{Kind, Op};
use crate::program::{AlphaProgram, FunctionId};
use crate::prune::{prune, PruneResult};

/// A register named for humans, e.g. `s3` or `m1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RegName(pub Kind, pub u8);

impl std::fmt::Display for RegName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.0.prefix(), self.1)
    }
}

/// Summary of one alpha's structure.
#[derive(Debug, Clone)]
pub struct AlphaAnalysis {
    /// Live (effective) instruction counts per function after pruning.
    pub live_ops: [usize; 3],
    /// Instructions pruned as redundant.
    pub pruned_ops: usize,
    /// Registers written by live `Update()` instructions and read by
    /// `Predict()` across day boundaries — the paper's *parameters*.
    pub parameters: Vec<RegName>,
    /// Registers carried across days by `Predict()` itself (the paper's
    /// `S3_{t-1}`-style recursions, its **P** part).
    pub recurrences: Vec<RegName>,
    /// True when the alpha has neither parameters nor recursions: a pure
    /// formulaic alpha.
    pub is_formulaic: bool,
    /// Count of live RelationOps by group (all / sector / industry).
    pub relation_ops: (usize, usize, usize),
    /// Count of live ExtractionOps.
    pub extraction_ops: usize,
    /// Feature rows of `m0` read by scalar extraction (`m_get`), i.e. which
    /// of the paper's 13 features the alpha consumes directly.
    pub features_read: Vec<u8>,
}

impl AlphaAnalysis {
    /// Renders a short human-readable report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "live ops: setup {} / predict {} / update {} ({} pruned)\n",
            self.live_ops[0], self.live_ops[1], self.live_ops[2], self.pruned_ops
        ));
        let fmt_regs = |regs: &[RegName]| {
            if regs.is_empty() {
                "none".to_string()
            } else {
                regs.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        };
        out.push_str(&format!(
            "parameters (U -> inference): {}\n",
            fmt_regs(&self.parameters)
        ));
        out.push_str(&format!(
            "predict recursions (P): {}\n",
            fmt_regs(&self.recurrences)
        ));
        out.push_str(&format!(
            "class: {}\n",
            if self.is_formulaic {
                "formulaic (no parameters)"
            } else {
                "parameterized"
            }
        ));
        let (a, s, i) = self.relation_ops;
        out.push_str(&format!(
            "relation ops kept: {a} cross-market, {s} sector, {i} industry\n"
        ));
        out.push_str(&format!("extraction ops: {}\n", self.extraction_ops));
        if !self.features_read.is_empty() {
            let rows: Vec<String> = self
                .features_read
                .iter()
                .map(|r| feature_name(*r))
                .collect();
            out.push_str(&format!("input features read: {}\n", rows.join(", ")));
        }
        out
    }
}

/// Name of a paper feature row (13-feature layout).
pub fn feature_name(row: u8) -> String {
    match row {
        0 => "ma5".into(),
        1 => "ma10".into(),
        2 => "ma20".into(),
        3 => "ma30".into(),
        4 => "vol5".into(),
        5 => "vol10".into(),
        6 => "vol20".into(),
        7 => "vol30".into(),
        8 => "open".into(),
        9 => "high".into(),
        10 => "low".into(),
        11 => "close".into(),
        12 => "volume".into(),
        other => format!("x{other}"),
    }
}

/// Analyzes a program (pruning it first).
pub fn analyze(prog: &AlphaProgram) -> AlphaAnalysis {
    let pruned: PruneResult = prune(prog);
    let p = &pruned.program;

    let count_live = |f: FunctionId| p.function(f).iter().filter(|i| i.op != Op::NoOp).count();
    let live_ops = [
        count_live(FunctionId::Setup),
        count_live(FunctionId::Predict),
        count_live(FunctionId::Update),
    ];

    // Registers read by predict before being written within the same pass:
    // the cross-day live-ins.
    let mut written: BTreeSet<RegName> = BTreeSet::new();
    let mut live_in: BTreeSet<RegName> = BTreeSet::new();
    for instr in &p.predict {
        let kinds = instr.op.input_kinds();
        let ins: Vec<RegName> = match kinds.len() {
            0 => vec![],
            1 => vec![RegName(kinds[0], instr.in1)],
            _ => vec![RegName(kinds[0], instr.in1), RegName(kinds[1], instr.in2)],
        };
        for r in ins {
            if !written.contains(&r) {
                live_in.insert(r);
            }
        }
        if instr.op != Op::NoOp {
            written.insert(RegName(instr.op.output_kind(), instr.out));
        }
    }
    // m0 is framework-fed each day; it is not state.
    live_in.remove(&RegName(Kind::M, 0));

    let update_writes: BTreeSet<RegName> = p
        .update
        .iter()
        .filter(|i| i.op != Op::NoOp)
        .map(|i| RegName(i.op.output_kind(), i.out))
        .collect();
    let predict_writes: BTreeSet<RegName> = written;

    let parameters: Vec<RegName> = live_in
        .iter()
        .copied()
        .filter(|r| update_writes.contains(r))
        .collect();
    let recurrences: Vec<RegName> = live_in
        .iter()
        .copied()
        .filter(|r| predict_writes.contains(r) && !update_writes.contains(r))
        .collect();

    let mut relation_ops = (0usize, 0usize, 0usize);
    let mut extraction_ops = 0usize;
    let mut features_read: BTreeSet<u8> = BTreeSet::new();
    for f in FunctionId::ALL {
        for instr in p.function(f) {
            match instr.op.relation_group() {
                Some(crate::op::RelGroup::All) => relation_ops.0 += 1,
                Some(crate::op::RelGroup::Sector) => relation_ops.1 += 1,
                Some(crate::op::RelGroup::Industry) => relation_ops.2 += 1,
                None => {}
            }
            if instr.op.is_extraction() {
                extraction_ops += 1;
                // Scalar/row extraction addresses a feature row when it
                // reads the input matrix m0.
                if instr.in1 == 0 && matches!(instr.op, Op::MGet | Op::MGetRow) {
                    features_read.insert(instr.ix[0]);
                }
            }
        }
    }

    AlphaAnalysis {
        live_ops,
        pruned_ops: pruned.n_pruned,
        is_formulaic: !pruned.stateful,
        parameters,
        recurrences,
        relation_ops,
        extraction_ops,
        features_read: features_read.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use crate::instruction::Instruction;
    use crate::AlphaConfig;

    #[test]
    fn domain_expert_is_formulaic() {
        let cfg = AlphaConfig::default();
        let a = analyze(&init::domain_expert(&cfg));
        assert!(a.is_formulaic);
        assert!(a.parameters.is_empty());
        assert!(a.recurrences.is_empty());
        assert_eq!(a.extraction_ops, 4);
        // Reads open/high/low/close.
        assert_eq!(a.features_read, vec![8, 9, 10, 11]);
        assert_eq!(a.relation_ops, (0, 0, 0));
        let report = a.report();
        assert!(report.contains("formulaic"));
        assert!(report.contains("open, high, low, close"));
    }

    #[test]
    fn nn_alpha_has_parameters() {
        let cfg = AlphaConfig::default();
        let a = analyze(&init::two_layer_nn(&cfg));
        assert!(!a.is_formulaic);
        // W1 (m1) and w2 (v1) are the trained parameters.
        assert!(
            a.parameters.contains(&RegName(Kind::M, 1)),
            "params: {:?}",
            a.parameters
        );
        assert!(a.parameters.contains(&RegName(Kind::V, 1)));
        assert_eq!(a.live_ops[2], 8, "all update ops live");
        assert!(a.report().contains("parameterized"));
    }

    #[test]
    fn predict_recursion_detected() {
        let cfg = AlphaConfig::default();
        let mut prog = init::domain_expert(&cfg);
        // s2 accumulates across days inside predict (read before its only
        // predict-side write) and feeds s1 — a P-part recursion.
        prog.predict
            .push(Instruction::new(Op::SAdd, 2, 1, 2, [0.0; 2], [0; 2]));
        prog.predict
            .push(Instruction::new(Op::SAdd, 1, 2, 1, [0.0; 2], [0; 2]));
        let a = analyze(&prog);
        assert!(
            a.recurrences.contains(&RegName(Kind::S, 2)),
            "recs: {:?}",
            a.recurrences
        );
        assert!(!a.is_formulaic);
        assert!(a.parameters.is_empty());
    }

    #[test]
    fn relation_ops_counted_by_group() {
        let cfg = AlphaConfig::default();
        let mut prog = init::domain_expert(&cfg);
        prog.predict
            .push(Instruction::new(Op::RelRank, 1, 0, 1, [0.0; 2], [0; 2]));
        prog.predict.push(Instruction::new(
            Op::RelDemeanIndustry,
            1,
            0,
            1,
            [0.0; 2],
            [0; 2],
        ));
        let a = analyze(&prog);
        assert_eq!(a.relation_ops, (1, 0, 1));
    }

    #[test]
    fn dead_relation_ops_not_counted() {
        // A relation op whose output never reaches s1 is pruned away and
        // must not show up as "kept relational knowledge".
        let cfg = AlphaConfig::default();
        let mut prog = init::domain_expert(&cfg);
        prog.predict
            .insert(0, Instruction::new(Op::RelRank, 8, 0, 8, [0.0; 2], [0; 2]));
        let a = analyze(&prog);
        assert_eq!(a.relation_ops, (0, 0, 0));
    }
}
