//! Search/eval instrumentation facade, feature-gated to a true no-op.
//!
//! Everything the core records about itself — span timers around
//! compile / `load_day` / predict / update, rank-cache reuse counters,
//! and the live [`SearchTelemetry`] the evolution loop samples on its
//! checkpoint cadence — goes through this module. It has two builds:
//!
//! * **`obs` enabled (default):** [`Count`] is a plain `u64` cell,
//!   [`mark`] reads [`std::time::Instant`], and [`SearchTelemetry`] is a
//!   set of `alphaevolve_obs` atomic instruments that renders into a
//!   [`MetricsSnapshot`](alphaevolve_obs::MetricsSnapshot). Recording is
//!   allocation-free (plain adds and relaxed atomics), which is what
//!   lets the instrumented hot paths stay pinned at zero heap
//!   allocations by `tests/hot_path_alloc.rs`.
//! * **`obs` disabled:** every type here is a zero-sized struct with
//!   inlined empty methods, so all instrumentation compiles away
//!   entirely — not "cheap", *absent*.
//!
//! Telemetry is observation-only by construction: it draws no
//! randomness, never feeds back into evaluation or selection, and
//! timestamps live only in gauges — never in fingerprints, checkpoints,
//! or wire prediction payloads. The fixed-seed search fingerprint is
//! pinned bit-identical with `obs` on and off by `tests/determinism.rs`
//! (CI runs both configurations).

use crate::evolution::SearchStats;

/// Why a worker's evaluation tile was flushed (see
/// `crate::evolution`'s batched admission pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushCause {
    /// The init-phase settle before workers start drawing tournaments.
    Init,
    /// Every slot was occupied.
    TileFull,
    /// A tournament draw landed on a member whose fitness was still
    /// pending in the tile.
    PendingDraw,
    /// A checkpoint snapshot required settled state.
    Checkpoint,
    /// Loop exit (budget exhausted or empty population).
    Final,
}

impl FlushCause {
    /// Stable label value used in the metrics exposition.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FlushCause::Init => "init",
            FlushCause::TileFull => "tile_full",
            FlushCause::PendingDraw => "pending_draw",
            FlushCause::Checkpoint => "checkpoint",
            FlushCause::Final => "final",
        }
    }
}

/// Per-arena span accumulators, drained into [`SearchTelemetry`] (or
/// any other sink) at tile-flush granularity. All fields are [`Count`]s:
/// plain `u64` cells with `obs`, zero-sized no-ops without.
#[derive(Debug, Default, Clone, Copy)]
pub struct EvalSpans {
    /// Nanoseconds lowering candidates (`compile_into` + relocation).
    pub compile_ns: Count,
    /// Nanoseconds in whole sequential training passes (`Setup()` +
    /// epochs; the batched path decomposes this into the three fields
    /// below instead).
    pub train_ns: Count,
    /// Nanoseconds staging day feature panels (`load_day`).
    pub load_day_ns: Count,
    /// Nanoseconds executing `Predict()` bodies.
    pub predict_ns: Count,
    /// Nanoseconds loading labels and executing `Update()` bodies.
    pub update_ns: Count,
    /// Candidates evaluated through the owning arena.
    pub candidates: Count,
    /// Rank-cache segments served from a still-sorted cached
    /// permutation.
    pub rank_reused: Count,
    /// Rank-cache segments that fell back to a full argsort.
    pub rank_resorted: Count,
}

impl EvalSpans {
    /// Takes the accumulated spans, leaving zeros behind.
    pub fn drain(&mut self) -> EvalSpans {
        std::mem::take(self)
    }

    /// Folds rank-cache `(reused, resorted)` counts in.
    pub fn absorb_rank_stats(&mut self, stats: (u64, u64)) {
        self.rank_reused.add(stats.0);
        self.rank_resorted.add(stats.1);
    }
}

#[cfg(feature = "obs")]
mod real {
    use super::{EvalSpans, FlushCause, SearchStats};
    use alphaevolve_obs::{Counter, Gauge, Histogram, MetricsSnapshot};
    use std::time::Instant;

    /// A plain `u64` event/nanosecond accumulator for single-owner
    /// (`&mut`) structures — no atomics needed on the hot path.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct Count(u64);

    impl Count {
        /// Adds one.
        #[inline]
        pub fn inc(&mut self) {
            self.0 += 1;
        }

        /// Adds `n`.
        #[inline]
        pub fn add(&mut self, n: u64) {
            self.0 = self.0.saturating_add(n);
        }

        /// Current value.
        #[inline]
        #[must_use]
        pub fn get(self) -> u64 {
            self.0
        }
    }

    /// A span start mark. [`Mark::elapsed_ns`] closes the span.
    #[derive(Debug, Clone, Copy)]
    pub struct Mark(Instant);

    /// Opens a span (reads the monotonic clock; never allocates).
    #[inline]
    #[must_use]
    pub fn mark() -> Mark {
        Mark(Instant::now())
    }

    impl Mark {
        /// Nanoseconds since the mark (saturating).
        #[inline]
        #[must_use]
        pub fn elapsed_ns(self) -> u64 {
            u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }
    }

    /// Live search telemetry: atomic instruments updated by the worker
    /// loop (allocation-free) and readable from any thread while the
    /// search runs. Gauges are re-sampled at every tile flush and on
    /// the checkpoint cadence.
    #[derive(Debug, Default)]
    pub struct SearchTelemetry {
        candidates_per_sec: Gauge,
        cache_hit_rate: Gauge,
        static_reject_rate: Gauge,
        folded_rate: Gauge,
        tile_occupancy: Gauge,
        best_ic: Gauge,
        best_ic_at_secs: Gauge,
        flush_init: Counter,
        flush_tile_full: Counter,
        flush_pending_draw: Counter,
        flush_checkpoint: Counter,
        flush_final: Counter,
        flush_ns: Histogram,
        compile_ns: Counter,
        train_ns: Counter,
        load_day_ns: Counter,
        predict_ns: Counter,
        update_ns: Counter,
        candidates: Counter,
        rank_reused: Counter,
        rank_resorted: Counter,
    }

    impl SearchTelemetry {
        /// Fresh telemetry, all zeros.
        #[must_use]
        pub fn new() -> SearchTelemetry {
            SearchTelemetry::default()
        }

        /// Records one non-empty tile flush: its cause, occupancy
        /// (`filled` of `capacity` slots) and duration.
        pub fn record_flush(&self, cause: FlushCause, filled: usize, capacity: usize, ns: u64) {
            match cause {
                FlushCause::Init => self.flush_init.inc(),
                FlushCause::TileFull => self.flush_tile_full.inc(),
                FlushCause::PendingDraw => self.flush_pending_draw.inc(),
                FlushCause::Checkpoint => self.flush_checkpoint.inc(),
                FlushCause::Final => self.flush_final.inc(),
            }
            self.flush_ns.record(ns);
            if capacity > 0 {
                self.tile_occupancy.set(filled as f64 / capacity as f64);
            }
        }

        /// Re-derives the rate gauges from the authoritative search
        /// counters (called on every flush and on the checkpoint
        /// cadence).
        pub fn sample(&self, stats: &SearchStats, elapsed_secs: f64) {
            if elapsed_secs > 0.0 {
                self.candidates_per_sec
                    .set(stats.searched as f64 / elapsed_secs);
            }
            if stats.searched > 0 {
                let n = stats.searched as f64;
                self.cache_hit_rate.set(stats.cache_hits as f64 / n);
                self.static_reject_rate
                    .set(stats.static_rejected as f64 / n);
                self.folded_rate.set(stats.folded as f64 / n);
            }
        }

        /// Records a best-IC improvement and when (seconds since the
        /// run started) it landed. The timestamp lives only here — the
        /// trajectory recorded in checkpoints carries `searched`
        /// counts, never wall-clock.
        pub fn record_best(&self, ic: f64, at_secs: f64) {
            self.best_ic.set(ic);
            self.best_ic_at_secs.set(at_secs);
        }

        /// Folds one arena's drained span accumulators in.
        pub fn absorb_eval(&self, spans: &EvalSpans) {
            self.compile_ns.add(spans.compile_ns.get());
            self.train_ns.add(spans.train_ns.get());
            self.load_day_ns.add(spans.load_day_ns.get());
            self.predict_ns.add(spans.predict_ns.get());
            self.update_ns.add(spans.update_ns.get());
            self.candidates.add(spans.candidates.get());
            self.rank_reused.add(spans.rank_reused.get());
            self.rank_resorted.add(spans.rank_resorted.get());
        }

        /// Renders every instrument into `out` under the `search_*` /
        /// `eval_*` metric names documented in `results/README.md`.
        pub fn snapshot_into(&self, out: &mut MetricsSnapshot) {
            out.push_gauge(
                "search_candidates_per_sec",
                &[],
                self.candidates_per_sec.get(),
            );
            out.push_gauge("search_cache_hit_rate", &[], self.cache_hit_rate.get());
            out.push_gauge(
                "search_static_reject_rate",
                &[],
                self.static_reject_rate.get(),
            );
            out.push_gauge("search_folded_rate", &[], self.folded_rate.get());
            out.push_gauge("search_tile_occupancy", &[], self.tile_occupancy.get());
            out.push_gauge("search_best_ic", &[], self.best_ic.get());
            out.push_gauge("search_best_ic_at_secs", &[], self.best_ic_at_secs.get());
            for (cause, c) in [
                (FlushCause::Init, &self.flush_init),
                (FlushCause::TileFull, &self.flush_tile_full),
                (FlushCause::PendingDraw, &self.flush_pending_draw),
                (FlushCause::Checkpoint, &self.flush_checkpoint),
                (FlushCause::Final, &self.flush_final),
            ] {
                out.push_counter(
                    "search_flushes_total",
                    &[("cause", cause.as_str())],
                    c.get(),
                );
            }
            out.observe_histogram("search_flush_ns", &[], &self.flush_ns);
            out.push_counter("eval_compile_ns_total", &[], self.compile_ns.get());
            out.push_counter("eval_train_ns_total", &[], self.train_ns.get());
            out.push_counter("eval_load_day_ns_total", &[], self.load_day_ns.get());
            out.push_counter("eval_predict_ns_total", &[], self.predict_ns.get());
            out.push_counter("eval_update_ns_total", &[], self.update_ns.get());
            out.push_counter("eval_candidates_total", &[], self.candidates.get());
            out.push_counter("eval_rank_reused_total", &[], self.rank_reused.get());
            out.push_counter("eval_rank_resorted_total", &[], self.rank_resorted.get());
        }
    }
}

#[cfg(feature = "obs")]
pub use real::{mark, Count, Mark, SearchTelemetry};

#[cfg(not(feature = "obs"))]
mod noop {
    use super::{EvalSpans, FlushCause, SearchStats};

    /// No-op accumulator (the `obs` feature is disabled).
    #[derive(Debug, Default, Clone, Copy)]
    pub struct Count;

    impl Count {
        /// No-op.
        #[inline]
        pub fn inc(&mut self) {}

        /// No-op.
        #[inline]
        pub fn add(&mut self, _n: u64) {}

        /// Always zero.
        #[inline]
        #[must_use]
        pub fn get(self) -> u64 {
            0
        }
    }

    /// No-op span mark (the `obs` feature is disabled).
    #[derive(Debug, Clone, Copy)]
    pub struct Mark;

    /// No-op: never reads the clock.
    #[inline]
    #[must_use]
    pub fn mark() -> Mark {
        Mark
    }

    impl Mark {
        /// Always zero.
        #[inline]
        #[must_use]
        pub fn elapsed_ns(self) -> u64 {
            0
        }
    }

    /// Zero-sized stand-in: every recording method is an inlined no-op,
    /// so the instrumented call sites compile away entirely.
    #[derive(Debug, Default)]
    pub struct SearchTelemetry;

    impl SearchTelemetry {
        /// Fresh no-op telemetry.
        #[must_use]
        pub fn new() -> SearchTelemetry {
            SearchTelemetry
        }

        /// No-op.
        #[inline]
        pub fn record_flush(&self, _: FlushCause, _: usize, _: usize, _: u64) {}

        /// No-op.
        #[inline]
        pub fn sample(&self, _: &SearchStats, _: f64) {}

        /// No-op.
        #[inline]
        pub fn record_best(&self, _: f64, _: f64) {}

        /// No-op.
        #[inline]
        pub fn absorb_eval(&self, _: &EvalSpans) {}
    }
}

#[cfg(not(feature = "obs"))]
pub use noop::{mark, Count, Mark, SearchTelemetry};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_drain_and_absorb() {
        let mut spans = EvalSpans::default();
        spans.candidates.inc();
        spans.compile_ns.add(100);
        spans.absorb_rank_stats((3, 1));
        let drained = spans.drain();
        // After draining, the live accumulators are back to zero.
        assert_eq!(spans.candidates.get(), 0);
        let tel = SearchTelemetry::new();
        tel.absorb_eval(&drained);
        tel.record_flush(FlushCause::TileFull, 4, 8, 1_000);
        tel.sample(
            &SearchStats {
                searched: 10,
                cache_hits: 5,
                ..Default::default()
            },
            2.0,
        );
        tel.record_best(0.21, 1.5);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn snapshot_exposes_all_instruments() {
        let tel = SearchTelemetry::new();
        let mut spans = EvalSpans::default();
        spans.candidates.add(7);
        spans.predict_ns.add(1234);
        tel.absorb_eval(&spans);
        tel.record_flush(FlushCause::Checkpoint, 2, 4, 5_000);
        tel.sample(
            &SearchStats {
                searched: 100,
                cache_hits: 25,
                static_rejected: 10,
                folded: 40,
                ..Default::default()
            },
            4.0,
        );
        tel.record_best(0.5, 2.0);
        let mut snap = alphaevolve_obs::MetricsSnapshot::new();
        tel.snapshot_into(&mut snap);
        assert_eq!(snap.counter_value("eval_candidates_total", &[]), 7);
        assert_eq!(
            snap.counter_value("search_flushes_total", &[("cause", "checkpoint")]),
            1
        );
        let Some(&alphaevolve_obs::MetricValue::Gauge(rate)) =
            snap.get("search_cache_hit_rate", &[])
        else {
            panic!("missing cache hit rate");
        };
        assert_eq!(rate, 0.25);
        // The exposition round-trips.
        let text = snap.render();
        assert_eq!(
            alphaevolve_obs::MetricsSnapshot::parse(&text).unwrap(),
            snap
        );
    }

    #[test]
    fn flush_causes_have_stable_labels() {
        for (c, s) in [
            (FlushCause::Init, "init"),
            (FlushCause::TileFull, "tile_full"),
            (FlushCause::PendingDraw, "pending_draw"),
            (FlushCause::Checkpoint, "checkpoint"),
            (FlushCause::Final, "final"),
        ] {
            assert_eq!(c.as_str(), s);
        }
    }
}
