//! Program fingerprints (paper §4.2).
//!
//! AutoML-Zero fingerprints a candidate by its *predictions on a probe set*,
//! which requires evaluating it. The paper's optimization fingerprints
//! **without evaluation**: prune redundant operations, then transform "the
//! strings of the alpha's remaining operations into numbers" and hash them.
//! Two candidates with the same effective computation hit the same cache
//! slot and reuse the stored fitness.
//!
//! On top of the paper we canonicalize the program first: register
//! renaming ([`crate::prune::canonicalize`]) plus the algebraic passes of
//! [`crate::canon`] (constant folding, identity elimination, commutative
//! operand ordering, common-subexpression collapse), so alpha-renamed and
//! algebraically-equivalent duplicates — which mutation produces
//! constantly — collapse to one fingerprint.

use crate::absint::ProgramFacts;
use crate::canon;
use crate::config::AlphaConfig;
use crate::hashutil::Fingerprinter;
use crate::program::{AlphaProgram, FunctionId};
use crate::prune::{prune, PruneResult};

/// 64-bit structural fingerprint of a program, as-is (no pruning or
/// canonicalization). Bit-exact on literals.
pub fn fingerprint_raw(prog: &AlphaProgram) -> u64 {
    let mut fp = Fingerprinter::new();
    for f in FunctionId::ALL {
        fp.word(0xF00D ^ f as u64);
        for instr in prog.function(f) {
            fp.word(instr.op as u64);
            fp.word(instr.in1 as u64);
            fp.word(instr.in2 as u64);
            fp.word(instr.out as u64);
            fp.word(instr.ix[0] as u64);
            fp.word(instr.ix[1] as u64);
            fp.f64(instr.lit[0]);
            fp.f64(instr.lit[1]);
        }
    }
    fp.digest()
}

/// The paper's cache key: prune, canonicalize, hash. Also returns the
/// prune result so the caller can evaluate the effective program (and
/// reject redundant alphas) without re-analyzing.
pub fn fingerprint(prog: &AlphaProgram, cfg: &AlphaConfig) -> (u64, PruneResult) {
    let analyzed = fingerprint_analyzed(prog, cfg);
    (analyzed.fingerprint, analyzed.pruned)
}

/// Everything the full fingerprint pipeline learns about a candidate.
#[derive(Debug, Clone)]
pub struct Analyzed {
    /// Cache key of the canonical form.
    pub fingerprint: u64,
    /// Liveness-pruned effective program (evaluate this).
    pub pruned: PruneResult,
    /// Static facts about the prediction, from [`crate::absint`].
    pub facts: ProgramFacts,
    /// Algebraic simplifications applied while canonicalizing.
    pub folds: usize,
}

/// The full static pipeline: prune, abstract-interpret, algebraically
/// canonicalize, hash. One call per candidate in the search loop — the
/// facts drive pre-evaluation rejection and the fold count feeds
/// [`crate::evolution::SearchStats`].
pub fn fingerprint_analyzed(prog: &AlphaProgram, cfg: &AlphaConfig) -> Analyzed {
    let pruned = prune(prog);
    let outcome = canon::canonical_program(&pruned.program, cfg);
    Analyzed {
        fingerprint: fingerprint_raw(&outcome.program),
        pruned,
        facts: outcome.facts,
        folds: outcome.folds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::Instruction;
    use crate::op::Op;

    fn base_program() -> AlphaProgram {
        AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![
                Instruction::new(Op::MGet, 0, 0, 2, [0.0; 2], [1, 2]),
                Instruction::new(Op::SAbs, 2, 0, 1, [0.0; 2], [0; 2]),
            ],
            update: vec![Instruction::nop()],
        }
    }

    #[test]
    fn identical_programs_same_fingerprint() {
        let cfg = AlphaConfig::default();
        assert_eq!(
            fingerprint(&base_program(), &cfg).0,
            fingerprint(&base_program(), &cfg).0
        );
    }

    #[test]
    fn dead_code_does_not_change_fingerprint() {
        let cfg = AlphaConfig::default();
        let mut with_dead = base_program();
        with_dead
            .predict
            .insert(1, Instruction::new(Op::SSin, 3, 0, 8, [0.0; 2], [0; 2]));
        with_dead
            .update
            .push(Instruction::new(Op::SConst, 0, 0, 9, [0.7, 0.0], [0; 2]));
        assert_eq!(
            fingerprint(&base_program(), &cfg).0,
            fingerprint(&with_dead, &cfg).0
        );
    }

    #[test]
    fn register_renaming_does_not_change_fingerprint() {
        let cfg = AlphaConfig::default();
        let mut renamed = base_program();
        renamed.predict[0].out = 7;
        renamed.predict[1].in1 = 7;
        assert_eq!(
            fingerprint(&base_program(), &cfg).0,
            fingerprint(&renamed, &cfg).0
        );
    }

    #[test]
    fn different_ops_different_fingerprint() {
        let cfg = AlphaConfig::default();
        let mut other = base_program();
        other.predict[1].op = Op::SSin;
        assert_ne!(
            fingerprint(&base_program(), &cfg).0,
            fingerprint(&other, &cfg).0
        );
    }

    #[test]
    fn different_literals_different_fingerprint() {
        let cfg = AlphaConfig::default();
        let mk = |c: f64| AlphaProgram {
            setup: vec![Instruction::new(Op::SConst, 0, 0, 2, [c, 0.0], [0; 2])],
            predict: vec![
                Instruction::new(Op::MGet, 0, 0, 3, [0.0; 2], [0, 0]),
                Instruction::new(Op::SMul, 3, 2, 1, [0.0; 2], [0; 2]),
            ],
            update: vec![Instruction::nop()],
        };
        assert_ne!(
            fingerprint(&mk(0.5), &cfg).0,
            fingerprint(&mk(0.25), &cfg).0
        );
    }

    #[test]
    fn different_extraction_indices_different_fingerprint() {
        let cfg = AlphaConfig::default();
        let mut other = base_program();
        other.predict[0].ix = [3, 4];
        assert_ne!(
            fingerprint(&base_program(), &cfg).0,
            fingerprint(&other, &cfg).0
        );
    }

    #[test]
    fn function_placement_matters() {
        // The same instruction in predict vs update is a different program.
        let cfg = AlphaConfig::default();
        let a = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![
                Instruction::new(Op::MGet, 0, 0, 2, [0.0; 2], [0, 0]),
                Instruction::new(Op::SAdd, 2, 3, 1, [0.0; 2], [0; 2]),
                Instruction::new(Op::SAbs, 2, 0, 3, [0.0; 2], [0; 2]),
            ],
            update: vec![Instruction::nop()],
        };
        let mut b = a.clone();
        let moved = b.predict.pop().unwrap();
        b.update = vec![moved];
        assert_ne!(fingerprint(&a, &cfg).0, fingerprint(&b, &cfg).0);
    }
}
