//! Regularized evolution (paper §3).
//!
//! 1. Initialize a population by mutating the starting parent alpha.
//! 2. Evaluate each candidate on the task set; fitness = validation IC.
//! 3. Select the best alpha of a random tournament as the new parent.
//! 4. Add the mutated parent, evict the oldest member (aging evolution).
//! 5. On budget exhaustion return the best alpha found.
//!
//! Every candidate flows through the paper's §4.2 pipeline before any
//! evaluation: **prune → redundant-alpha rejection → canonical fingerprint
//! → cache lookup → static rejection** (the [`crate::absint`] interpreter
//! discards candidates whose prediction is provably cross-sectionally
//! constant or always NaN). Only accepted cache misses touch the
//! interpreter. Candidates
//! whose validation portfolio returns correlate above the cutoff with an
//! accepted alpha set ([`CorrelationGate`]) are discarded (fitness −∞),
//! which is how weakly correlated alpha *sets* are mined round by round.
//!
//! With `workers > 1` the same loop runs from several threads against a
//! shared population/cache (AutoML-Zero's parallelism model). Multi-worker
//! runs are not bit-reproducible; single-worker runs are.
//!
//! Scaling: each worker owns one [`BatchArena`] *tile* of
//! [`EvolutionConfig::batch`] slots (interpreter + scratch, allocated
//! once, reset per candidate), and the fingerprint cache is split into
//! hash-sharded locks so workers don't serialize on a single mutex —
//! candidates/sec scales with cores (see the `evolution` bench).
//!
//! # Batched candidate evaluation
//!
//! The worker loop accumulates accepted cache misses into its tile and
//! scores the whole tile in **one** day-major sweep
//! ([`Evaluator::evaluate_batch_in`]): each day's feature panel is loaded
//! once and dispatched across all pending candidates, amortizing the
//! panel copies that dominate short programs. Rejections and cache hits
//! resolve immediately and never occupy a slot. Bit-identity with
//! sequential (`batch = 1`) evaluation is preserved by construction:
//!
//! * every admitted candidate joins the population immediately (a
//!   placeholder patched at flush), so population length, eviction
//!   timing, and tournament index draws are unchanged;
//! * a tournament draws all its indices *before* comparing (comparisons
//!   consume no randomness), and if a drawn member's fitness is still
//!   pending the tile is flushed first, so selection always compares the
//!   scores sequential evaluation would have seen;
//! * the tile is flushed before every checkpoint snapshot and at every
//!   loop exit, so all observable state (counters, cache, best,
//!   trajectory, population) is settled at observation points;
//! * an in-tile fingerprint duplicate — which sequentially would be a
//!   cache hit on the earlier candidate's just-inserted entry — is
//!   counted as a cache hit and patched from its source slot at flush.
//!
//! With `workers > 1` (already non-bit-reproducible), another worker's
//! pending placeholder scores −∞ in tournaments until its tile flushes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use alphaevolve_backtest::correlation::CorrelationGate;

use crate::absint::StaticVerdict;
use crate::eval::{BatchArena, Evaluator};
use crate::fingerprint::fingerprint_analyzed;
use crate::hashutil::FxHashMap;
use crate::mutation::{MutationConfig, Mutator};
use crate::program::AlphaProgram;

/// Search budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Stop after this many candidates have been *searched*
    /// (pruned-away, cache-hit and evaluated candidates all count —
    /// the paper's "number of searched alphas", Table 6).
    Searched(usize),
    /// Stop after a wall-clock deadline (the paper's 60-hour rounds).
    WallTime(Duration),
}

/// Evolution parameters (§5.2 defaults).
#[derive(Debug, Clone)]
pub struct EvolutionConfig {
    /// Population size (paper: 100).
    pub population_size: usize,
    /// Tournament size (paper: 10).
    pub tournament_size: usize,
    /// Mutation policy (paper: mutation probability 0.9).
    pub mutation: MutationConfig,
    /// Search budget.
    pub budget: Budget,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads sharing the population.
    pub workers: usize,
    /// Candidates evaluated per batched training sweep (per worker).
    /// `1` reproduces the classic one-candidate-at-a-time sweep; any
    /// value yields bit-identical single-worker results — larger tiles
    /// only amortize the per-day feature-panel loads across more
    /// candidates.
    pub batch: usize,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        EvolutionConfig {
            population_size: 100,
            tournament_size: 10,
            mutation: MutationConfig::default(),
            budget: Budget::Searched(5_000),
            seed: 0,
            workers: 1,
            batch: 1,
        }
    }
}

/// A population member.
#[derive(Debug, Clone)]
pub struct Individual {
    /// The (unpruned) genome; redundant operations stay as genetic
    /// material for later mutations.
    pub program: AlphaProgram,
    /// Fitness: validation IC, or `None` for rejected/invalid candidates.
    pub fitness: Option<f64>,
}

impl Individual {
    fn score(&self) -> f64 {
        self.fitness.unwrap_or(f64::NEG_INFINITY)
    }
}

/// The best alpha found by a run.
#[derive(Debug, Clone)]
pub struct BestAlpha {
    /// The genome as it appeared in the population.
    pub program: AlphaProgram,
    /// Its pruned, canonical-register effective program.
    pub pruned: AlphaProgram,
    /// Validation IC (the fitness).
    pub ic: f64,
    /// Validation long-short portfolio returns (for correlation gating of
    /// future rounds).
    pub val_returns: Vec<f64>,
}

/// Counters over one evolution run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Candidates searched (pruned + cache hits + statically rejected
    /// + evaluated).
    pub searched: usize,
    /// Candidates fully evaluated on the task set.
    pub evaluated: usize,
    /// Candidates rejected as redundant alphas before evaluation.
    pub redundant: usize,
    /// Fingerprint-cache hits (fitness reused without evaluation).
    pub cache_hits: usize,
    /// Evaluated candidates with non-finite predictions.
    pub invalid: usize,
    /// Evaluated candidates rejected by the correlation gate.
    pub gate_rejected: usize,
    /// Candidates rejected before evaluation by static analysis (the
    /// abstract interpreter proved the prediction cross-sectionally
    /// constant or always NaN — see [`crate::absint`]).
    pub static_rejected: usize,
    /// Algebraic simplifications applied while canonicalizing candidates
    /// for fingerprinting (const folds, identity eliminations, CSE
    /// collapses — see [`crate::canon`]).
    pub folded: usize,
}

/// Archive feedback attached to a search: the migrant pool pulled from a
/// fleet coordinator's shared [`AlphaArchive`], plus the fraction of
/// steady-state mutants that derive from a migrant instead of a
/// tournament winner (the island-model migration operator).
///
/// With `fraction == 0.0` (or an empty pool) the steady-state loop draws
/// **no** extra randomness, so a solo run with migration attached stays
/// bit-identical to a plain [`Evolution::run`] — that is the contract
/// that lets a 1-island fleet reproduce the classic pinned run.
///
/// The state is captured in every [`EvolutionCheckpoint`] (a *migration
/// epoch*), so an interrupted fleet run resumes with exactly the pool its
/// islands were mutating from and reproduces the uninterrupted run bit
/// for bit.
///
/// [`AlphaArchive`]: https://docs.rs/alphaevolve_store
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationState {
    /// This island's id within its fleet (0 for solo runs).
    pub island: u64,
    /// The migration round the pool below was fetched at.
    pub round: u64,
    /// Probability that a steady-state mutant derives from a migrant
    /// parent instead of a tournament winner. Clamped to `[0, 1]` when
    /// drawn.
    pub fraction: f64,
    /// The migrant pool: elite programs pulled from the shared archive,
    /// in archive order.
    pub migrants: Vec<AlphaProgram>,
}

/// One point of the Figure-6 style search trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Total candidates searched when the record was taken.
    pub searched: usize,
    /// Best validation IC so far.
    pub best_ic: f64,
}

/// Result of one evolution run.
#[derive(Debug, Clone)]
pub struct EvolutionOutcome {
    /// Best valid, gate-passing alpha (None if every candidate died).
    pub best: Option<BestAlpha>,
    /// Search counters.
    pub stats: SearchStats,
    /// Best-IC-so-far trajectory, recorded at every improvement.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// A complete snapshot of a *single-worker* search at a loop boundary:
/// everything needed to resume the run — in another process — and
/// reproduce the uninterrupted run bit for bit.
///
/// Produced by [`Evolution::run_with_checkpoints`] every N searched
/// candidates and consumed by [`Evolution::resume`]. The evaluator (and
/// its dataset) is *not* part of the snapshot: the resuming process must
/// reconstruct an identical evaluator (same market, features, splits,
/// options) for the determinism guarantee to hold. Serialization lives in
/// the `alphaevolve_store` crate's versioned binary codec.
#[derive(Debug, Clone)]
pub struct EvolutionCheckpoint {
    /// The configuration of the checkpointed run (authoritative on
    /// resume — [`Evolution::resume`] ignores the driver's own config).
    pub config: EvolutionConfig,
    /// Search counters at the snapshot point.
    pub stats: SearchStats,
    /// Wall-clock time consumed so far (counts against
    /// [`Budget::WallTime`] across resumes).
    pub elapsed: Duration,
    /// The worker RNG's raw stream state.
    pub rng: [u64; 4],
    /// The population, oldest first.
    pub population: Vec<Individual>,
    /// Fingerprint-cache contents, sorted by fingerprint (a canonical
    /// order, so identical runs write identical checkpoints).
    pub cache: Vec<(u64, Option<f64>)>,
    /// Best alpha found so far.
    pub best: Option<BestAlpha>,
    /// Best-IC trajectory so far.
    pub trajectory: Vec<TrajectoryPoint>,
    /// The migration epoch in force at the snapshot (island id, round,
    /// migrant pool, migrant-parent fraction) — `None` for solo runs.
    /// Authoritative on resume, like the config.
    pub migration: Option<MigrationState>,
}

/// One lock-guarded shard: fingerprint → cached fitness (`None` for
/// candidates that evaluated invalid or were gate-rejected).
type CacheShard = Mutex<FxHashMap<u64, Option<f64>>>;

/// The fingerprint→fitness cache, hash-sharded so concurrent workers
/// rarely contend on the same lock. Shard selection uses the fingerprint's
/// low bits (fingerprints are already well-mixed 64-bit digests).
///
/// A hit hands back only the cached score/validity (one `Option<f64>`,
/// 16 bytes by value) — the cache stores nothing per entry that would
/// need cloning under the shard lock.
struct ShardedCache {
    shards: Box<[CacheShard]>,
}

impl ShardedCache {
    /// Sizes the shard count to the worker count (4× workers, rounded up
    /// to a power of two) so even adversarial schedules rarely collide.
    fn new(workers: usize) -> ShardedCache {
        let n = (workers.max(1) * 4).next_power_of_two();
        ShardedCache {
            shards: (0..n)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    #[inline]
    fn shard(&self, fp: u64) -> &CacheShard {
        &self.shards[(fp as usize) & (self.shards.len() - 1)]
    }

    /// `Some(fitness)` on a hit (where `fitness` is `None` for candidates
    /// that were invalid/gate-rejected), `None` on a miss.
    fn lookup(&self, fp: u64) -> Option<Option<f64>> {
        self.shard(fp).lock().get(&fp).copied()
    }

    fn insert(&self, fp: u64, fitness: Option<f64>) {
        self.shard(fp).lock().insert(fp, fitness);
    }

    /// All cached entries in canonical (fingerprint-sorted) order, for
    /// checkpointing.
    fn entries(&self) -> Vec<(u64, Option<f64>)> {
        let mut out: Vec<(u64, Option<f64>)> = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().iter().map(|(&k, &v)| (k, v)));
        }
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }
}

/// The population plus a monotone push counter, so tile bookkeeping can
/// name members by *push index* (stable across front evictions) instead of
/// by position.
struct Population {
    /// Members, oldest first.
    members: VecDeque<Individual>,
    /// Total members ever pushed; `pushed - members.len()` is the push
    /// index of the current front member.
    pushed: u64,
}

impl Population {
    fn with_capacity(cap: usize) -> Population {
        Population {
            members: VecDeque::with_capacity(cap),
            pushed: 0,
        }
    }

    /// Push index of the current front member.
    fn base(&self) -> u64 {
        self.pushed - self.members.len() as u64
    }

    /// Appends a member, returning its push index.
    fn push(&mut self, ind: Individual) -> u64 {
        self.members.push_back(ind);
        self.pushed += 1;
        self.pushed - 1
    }

    /// The member with push index `push_index`, unless it has been
    /// evicted.
    fn get_mut(&mut self, push_index: u64) -> Option<&mut Individual> {
        let pos = push_index.checked_sub(self.base())?;
        self.members.get_mut(pos as usize)
    }
}

/// One tile-buffered candidate awaiting its flush.
enum Pending {
    /// An accepted cache miss occupying arena slot `slot`: evaluated (and
    /// its population placeholder patched) when the tile flushes. Owns
    /// the genome/pruned program because the placeholder may be evicted
    /// before the flush.
    Eval {
        slot: usize,
        fp: u64,
        program: AlphaProgram,
        pruned: AlphaProgram,
        /// The searched counter when this candidate was admitted (for its
        /// trajectory point, exactly as sequential evaluation records it).
        searched: usize,
        push_index: u64,
    },
    /// An in-tile fingerprint duplicate of the `Eval` pending in
    /// `source_slot` — sequentially a cache hit on that candidate's
    /// freshly-inserted entry, so its fitness copies from the source slot
    /// at flush.
    Dup { source_slot: usize, push_index: u64 },
}

/// A worker's batch-evaluation tile: the [`BatchArena`] plus the pending
/// candidates and patch scratch that resolve when it flushes.
struct Tile<'e> {
    arena: BatchArena<'e>,
    pending: Vec<Pending>,
    /// Flushed fitness per arena slot (source for `Dup` patches).
    slot_fitness: Vec<Option<f64>>,
    /// Reused `(push_index, fitness)` patch list.
    patches: Vec<(u64, Option<f64>)>,
}

impl<'e> Tile<'e> {
    fn new(evaluator: &'e Evaluator, batch: usize) -> Tile<'e> {
        let arena = evaluator.batch_arena(batch);
        let cap = arena.capacity();
        Tile {
            arena,
            pending: Vec::with_capacity(2 * cap),
            slot_fitness: vec![None; cap],
            patches: Vec::with_capacity(2 * cap),
        }
    }

    fn is_full(&self) -> bool {
        self.arena.is_full()
    }

    /// The arena slot of the pending evaluation with fingerprint `fp`, if
    /// any.
    fn find_pending_fp(&self, fp: u64) -> Option<usize> {
        self.pending.iter().find_map(|p| match p {
            Pending::Eval { fp: pfp, slot, .. } if *pfp == fp => Some(*slot),
            _ => None,
        })
    }

    /// Whether the member with push index `push_index` still awaits its
    /// flushed fitness.
    fn is_pending_push(&self, push_index: u64) -> bool {
        self.pending.iter().any(|p| match p {
            Pending::Eval { push_index: pi, .. } | Pending::Dup { push_index: pi, .. } => {
                *pi == push_index
            }
        })
    }
}

struct Shared<'a> {
    evaluator: &'a Evaluator,
    mutator: Mutator,
    gate: Option<&'a CorrelationGate>,
    econfig: EvolutionConfig,
    population: Mutex<Population>,
    cache: ShardedCache,
    best: Mutex<Option<BestAlpha>>,
    trajectory: Mutex<Vec<TrajectoryPoint>>,
    searched: AtomicUsize,
    evaluated: AtomicUsize,
    redundant: AtomicUsize,
    cache_hits: AtomicUsize,
    invalid: AtomicUsize,
    gate_rejected: AtomicUsize,
    static_rejected: AtomicUsize,
    folded: AtomicUsize,
    stop: AtomicBool,
    /// Live telemetry instruments (no-op ZST without the `obs` feature).
    /// Observation-only: recording draws no randomness and never feeds
    /// back into selection, so fingerprints are bit-identical either way.
    telemetry: Arc<crate::telemetry::SearchTelemetry>,
    start: Instant,
    /// Wall-clock already consumed before this process took over (zero
    /// for fresh runs; the checkpoint's `elapsed` on resume), so
    /// [`Budget::WallTime`] spans resumes.
    base_elapsed: Duration,
    /// Disables the §4.2 pipeline for the Table-6 `_N` ablation: no
    /// pruning-based rejection, fingerprint = raw program text, and the
    /// *unpruned* program is evaluated.
    use_pruning: bool,
    /// Archive feedback (island-model migration). When the fraction is
    /// zero or the pool empty the steady loop draws no extra randomness.
    migration: Option<MigrationState>,
}

impl<'a> Shared<'a> {
    fn budget_exhausted(&self) -> bool {
        if self.stop.load(Ordering::Relaxed) {
            return true;
        }
        let done = match self.econfig.budget {
            Budget::Searched(n) => self.searched.load(Ordering::Relaxed) >= n,
            Budget::WallTime(d) => self.base_elapsed + self.start.elapsed() >= d,
        };
        if done {
            self.stop.store(true, Ordering::Relaxed);
        }
        done
    }

    /// The §4.2 candidate pipeline, tile-buffered. Rejections and cache
    /// hits resolve — and join the population — immediately, exactly as
    /// the sequential pipeline did; an accepted cache miss is compiled
    /// into the next tile slot with a fitness-`None` placeholder in the
    /// population, patched when the tile flushes. The caller must flush
    /// a full tile before admitting again.
    fn admit(&self, tile: &mut Tile<'_>, program: AlphaProgram, evict: bool) {
        debug_assert!(!tile.is_full(), "admit requires a free tile slot");
        let searched_now = self.searched.fetch_add(1, Ordering::Relaxed) + 1;

        let (fp, verdict, to_evaluate, skip_training) = if self.use_pruning {
            let analyzed = fingerprint_analyzed(&program, self.evaluator.config());
            if analyzed.folds > 0 {
                self.folded.fetch_add(analyzed.folds, Ordering::Relaxed);
            }
            if !analyzed.pruned.uses_input {
                self.redundant.fetch_add(1, Ordering::Relaxed);
                self.push_member(
                    Individual {
                        program,
                        fitness: None,
                    },
                    evict,
                );
                return;
            }
            // The pruning pass already computed statefulness; reuse it for
            // the stateless-skip decision instead of re-analyzing.
            let skip = !analyzed.pruned.stateful;
            (
                analyzed.fingerprint,
                analyzed.facts.verdict(),
                analyzed.pruned.program,
                skip,
            )
        } else {
            (
                crate::fingerprint::fingerprint_raw(&program),
                StaticVerdict::Accept,
                program.clone(),
                false,
            )
        };

        if let Some(fitness) = self.cache.lookup(fp) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.push_member(Individual { program, fitness }, evict);
            return;
        }

        // Static rejection (§4.2 extended): the abstract interpreter proved
        // the prediction can never carry cross-sectional signal — constant
        // across stocks (rank information zero) or always NaN (no valid
        // fitness). Skip the evaluator entirely and cache the rejection so
        // re-derived duplicates become plain cache hits.
        if verdict != StaticVerdict::Accept {
            self.static_rejected.fetch_add(1, Ordering::Relaxed);
            self.cache.insert(fp, None);
            self.push_member(
                Individual {
                    program,
                    fitness: None,
                },
                evict,
            );
            return;
        }

        // An earlier candidate in this very tile already owns this
        // fingerprint. Sequentially, that candidate's cache entry would
        // exist by now and this one would be a plain hit — count it as
        // one and copy its fitness from the source slot at flush.
        if let Some(source_slot) = tile.find_pending_fp(fp) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            let push_index = self.push_member(
                Individual {
                    program,
                    fitness: None,
                },
                evict,
            );
            tile.pending.push(Pending::Dup {
                source_slot,
                push_index,
            });
            return;
        }

        let slot = tile.arena.push(&to_evaluate, skip_training);
        let push_index = self.push_member(
            Individual {
                program: program.clone(),
                fitness: None,
            },
            evict,
        );
        tile.pending.push(Pending::Eval {
            slot,
            fp,
            program,
            pruned: to_evaluate,
            searched: searched_now,
            push_index,
        });
    }

    /// Appends to the population (evicting the oldest member when `evict`
    /// and over capacity — the steady-state aging rule; the init phase
    /// never evicts), returning the member's push index.
    fn push_member(&self, ind: Individual, evict: bool) -> u64 {
        let mut pop = self.population.lock();
        let push_index = pop.push(ind);
        if evict && pop.members.len() > self.econfig.population_size {
            pop.members.pop_front();
        }
        push_index
    }

    /// Scores the tile in one batched day-major sweep and resolves every
    /// pending candidate in admission order: counters, cache inserts,
    /// best/trajectory updates, and population fitness patches land
    /// exactly as sequential per-candidate evaluation would have produced
    /// them. A no-op on an empty tile.
    fn flush(&self, tile: &mut Tile<'_>, cause: crate::telemetry::FlushCause) {
        if tile.pending.is_empty() {
            debug_assert!(tile.arena.is_empty());
            return;
        }
        let t = crate::telemetry::mark();
        let (tile_filled, tile_capacity) = (tile.arena.len(), tile.arena.capacity());
        let Tile {
            arena,
            pending,
            slot_fitness,
            patches,
        } = tile;
        self.evaluator.evaluate_batch_in(arena);
        patches.clear();
        for p in pending.drain(..) {
            match p {
                Pending::Eval {
                    slot,
                    fp,
                    program,
                    pruned,
                    searched,
                    push_index,
                } => {
                    self.evaluated.fetch_add(1, Ordering::Relaxed);
                    let fitness = match arena.fitness(slot) {
                        None => {
                            self.invalid.fetch_add(1, Ordering::Relaxed);
                            None
                        }
                        Some(ic) => {
                            let passes =
                                self.gate.is_none_or(|g| g.passes(arena.val_returns(slot)));
                            if !passes {
                                self.gate_rejected.fetch_add(1, Ordering::Relaxed);
                                None
                            } else {
                                Some(ic)
                            }
                        }
                    };
                    self.cache.insert(fp, fitness);
                    if let Some(ic) = fitness {
                        let mut best = self.best.lock();
                        if best.as_ref().is_none_or(|b| ic > b.ic) {
                            *best = Some(BestAlpha {
                                program,
                                pruned,
                                ic,
                                val_returns: arena.val_returns(slot).to_vec(),
                            });
                            // Wall-clock lands only in the telemetry gauge;
                            // the checkpointed trajectory stays on searched
                            // counts so resumes remain bit-deterministic.
                            self.telemetry.record_best(
                                ic,
                                (self.base_elapsed + self.start.elapsed()).as_secs_f64(),
                            );
                            self.trajectory.lock().push(TrajectoryPoint {
                                searched,
                                best_ic: ic,
                            });
                        }
                    }
                    slot_fitness[slot] = fitness;
                    patches.push((push_index, fitness));
                }
                Pending::Dup {
                    source_slot,
                    push_index,
                } => {
                    patches.push((push_index, slot_fitness[source_slot]));
                }
            }
        }
        {
            let mut pop = self.population.lock();
            for &(push_index, fitness) in patches.iter() {
                // Placeholders evicted before the flush are simply gone.
                if let Some(ind) = pop.get_mut(push_index) {
                    ind.fitness = fitness;
                }
            }
        }
        let spans = arena.drain_telemetry();
        arena.clear();
        self.telemetry.absorb_eval(&spans);
        self.telemetry
            .record_flush(cause, tile_filled, tile_capacity, t.elapsed_ns());
        self.telemetry.sample(
            &self.snapshot_stats(),
            (self.base_elapsed + self.start.elapsed()).as_secs_f64(),
        );
    }

    fn worker_loop(&self, worker_id: u64) {
        let mut rng = SmallRng::seed_from_u64(
            self.econfig.seed ^ worker_id.wrapping_mul(0xA076_1D64_78BD_642F),
        );
        self.search_loop(&mut rng, None, &mut |_| {});
    }

    /// The single-worker loop with the same RNG stream as `worker_loop(1)`
    /// (so checkpointed runs reproduce plain runs bit for bit), plus an
    /// optional checkpoint sink.
    fn worker_loop_from_seed(
        &self,
        checkpoint_every: Option<usize>,
        sink: &mut dyn FnMut(EvolutionCheckpoint),
    ) {
        let mut rng =
            SmallRng::seed_from_u64(self.econfig.seed ^ 1u64.wrapping_mul(0xA076_1D64_78BD_642F));
        self.search_loop(&mut rng, checkpoint_every, sink);
    }

    /// The steady-state search loop, optionally emitting a checkpoint
    /// snapshot every `checkpoint_every` completed iterations. Snapshots
    /// are pure observations (no RNG draws, no extra mutations), so a
    /// checkpointed single-worker run is bit-identical to a plain one.
    fn search_loop(
        &self,
        rng: &mut SmallRng,
        checkpoint_every: Option<usize>,
        sink: &mut dyn FnMut(EvolutionCheckpoint),
    ) {
        // One tile per worker for the whole run: interpreter state and
        // scratch are reset between candidates, never reallocated.
        let mut tile = Tile::new(self.evaluator, self.econfig.batch.max(1));
        let mut draws: Vec<usize> = Vec::with_capacity(self.econfig.tournament_size.max(1));
        let mut since_checkpoint = 0usize;
        while !self.budget_exhausted() {
            // Archive-seeded mutation: a configurable fraction of mutants
            // derives from a migrant instead of a tournament winner. The
            // draw happens only when migration is active (non-empty pool,
            // positive fraction), so plain runs consume an identical RNG
            // stream.
            let migrant = self.draw_migrant(rng);
            // Tournament selection under the population lock; evaluation
            // outside it. All indices are drawn before any comparison
            // (comparisons consume no randomness, so the RNG stream is
            // identical to the draw-compare interleaving), which lets a
            // draw that lands on a still-pending member force a flush
            // before its score is read.
            let parent = if let Some(migrant) = migrant {
                migrant
            } else {
                let mut pop = self.population.lock();
                if pop.members.is_empty() {
                    drop(pop);
                    self.flush(&mut tile, crate::telemetry::FlushCause::Final);
                    return;
                }
                let t = self.econfig.tournament_size.min(pop.members.len()).max(1);
                draws.clear();
                for _ in 0..t {
                    draws.push(rng.gen_range(0..pop.members.len()));
                }
                let base = pop.base();
                if draws.iter().any(|&i| tile.is_pending_push(base + i as u64)) {
                    // A drawn member's fitness is still in the tile; it
                    // would score −∞ here but its real fitness under
                    // sequential evaluation. Flush, then compare.
                    drop(pop);
                    self.flush(&mut tile, crate::telemetry::FlushCause::PendingDraw);
                    pop = self.population.lock();
                }
                let mut best_idx = draws[0];
                for &idx in &draws[1..] {
                    if pop.members[idx].score() > pop.members[best_idx].score() {
                        best_idx = idx;
                    }
                }
                pop.members[best_idx].program.clone()
            };
            let child = self.mutator.mutate(rng, &parent);
            self.admit(&mut tile, child, true);
            if tile.is_full() {
                self.flush(&mut tile, crate::telemetry::FlushCause::TileFull);
            }
            if let Some(every) = checkpoint_every {
                since_checkpoint += 1;
                if since_checkpoint >= every {
                    since_checkpoint = 0;
                    // Settle all pending state first: a checkpoint is a
                    // total observation.
                    self.flush(&mut tile, crate::telemetry::FlushCause::Checkpoint);
                    sink(self.snapshot(rng));
                }
            }
        }
        self.flush(&mut tile, crate::telemetry::FlushCause::Final);
    }

    /// Draws a migrant parent with the configured probability. Inactive
    /// migration (no state, empty pool, or a non-positive fraction)
    /// returns `None` **without touching the RNG**, preserving bitwise
    /// compatibility with plain runs.
    fn draw_migrant(&self, rng: &mut SmallRng) -> Option<AlphaProgram> {
        let m = self.migration.as_ref()?;
        if m.migrants.is_empty() || m.fraction <= 0.0 {
            return None;
        }
        if !rng.gen_bool(m.fraction.min(1.0)) {
            return None;
        }
        Some(m.migrants[rng.gen_range(0..m.migrants.len())].clone())
    }

    /// A consistent snapshot of the whole search state (single-worker:
    /// nothing races while this worker observes).
    fn snapshot(&self, rng: &SmallRng) -> EvolutionCheckpoint {
        EvolutionCheckpoint {
            config: self.econfig.clone(),
            stats: self.snapshot_stats(),
            elapsed: self.base_elapsed + self.start.elapsed(),
            rng: rng.state(),
            population: self.population.lock().members.iter().cloned().collect(),
            cache: self.cache.entries(),
            best: self.best.lock().clone(),
            trajectory: self.trajectory.lock().clone(),
            migration: self.migration.clone(),
        }
    }

    fn snapshot_stats(&self) -> SearchStats {
        SearchStats {
            searched: self.searched.load(Ordering::Relaxed),
            evaluated: self.evaluated.load(Ordering::Relaxed),
            redundant: self.redundant.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            invalid: self.invalid.load(Ordering::Relaxed),
            gate_rejected: self.gate_rejected.load(Ordering::Relaxed),
            static_rejected: self.static_rejected.load(Ordering::Relaxed),
            folded: self.folded.load(Ordering::Relaxed),
        }
    }
}

/// The evolutionary search driver.
pub struct Evolution<'a> {
    evaluator: &'a Evaluator,
    econfig: EvolutionConfig,
    gate: Option<&'a CorrelationGate>,
    use_pruning: bool,
    telemetry: Arc<crate::telemetry::SearchTelemetry>,
    warm_start: Vec<AlphaProgram>,
    migration: Option<MigrationState>,
}

impl<'a> Evolution<'a> {
    /// New driver over an evaluator.
    pub fn new(evaluator: &'a Evaluator, econfig: EvolutionConfig) -> Evolution<'a> {
        Evolution {
            evaluator,
            econfig,
            gate: None,
            use_pruning: true,
            telemetry: Arc::new(crate::telemetry::SearchTelemetry::new()),
            warm_start: Vec::new(),
            migration: None,
        }
    }

    /// The driver's live telemetry: clone the `Arc` before `run` and read
    /// (or snapshot) it from another thread while the search executes.
    /// Instruments accumulate across `run`/`resume` calls on the same
    /// driver. A zero-sized no-op without the `obs` feature.
    pub fn telemetry(&self) -> &Arc<crate::telemetry::SearchTelemetry> {
        &self.telemetry
    }

    /// Attach a weak-correlation gate (candidates failing it die).
    pub fn with_gate(mut self, gate: &'a CorrelationGate) -> Evolution<'a> {
        self.gate = Some(gate);
        self
    }

    /// Disable the pruning/fingerprint optimization (Table 6 `_N`
    /// ablation): candidates are fingerprinted raw and evaluated unpruned.
    pub fn without_pruning(mut self) -> Evolution<'a> {
        self.use_pruning = false;
        self
    }

    /// Archive warm-start: seed the initial population from archived
    /// elites. The elites join the population right after the seed
    /// program (through the same §4.2 admission pipeline — pruning,
    /// fingerprinting, static rejection, gating all apply); the remaining
    /// slots are filled with seed mutants as usual. At most
    /// `population_size - 1` elites are used. An empty list leaves the
    /// run bit-identical to a plain [`Evolution::run`].
    pub fn with_warm_start(mut self, elites: Vec<AlphaProgram>) -> Evolution<'a> {
        self.warm_start = elites;
        self
    }

    /// Attach island-model migration (see [`MigrationState`]) to a run
    /// started from a seed program. Resumed runs take the state from
    /// their checkpoint instead — the checkpoint's migration epoch is as
    /// authoritative as its config.
    pub fn with_migration(mut self, migration: MigrationState) -> Evolution<'a> {
        self.migration = Some(migration);
        self
    }

    /// Runs the search from a seed program.
    pub fn run(&self, seed_program: &AlphaProgram) -> EvolutionOutcome {
        self.run_internal(Start::Seed(seed_program), None, &mut |_| {})
    }

    /// Runs the search, handing a complete [`EvolutionCheckpoint`] to
    /// `sink` every `every` searched candidates of the steady-state loop
    /// (the initialization phase is not checkpointed). Snapshots are pure
    /// observations: the outcome is bit-identical to [`Evolution::run`].
    ///
    /// # Panics
    /// If `every` is zero, or the configuration asks for more than one
    /// worker — a checkpoint is a *total* state capture, which only a
    /// single-worker (deterministic) run has.
    pub fn run_with_checkpoints(
        &self,
        seed_program: &AlphaProgram,
        every: usize,
        sink: &mut dyn FnMut(EvolutionCheckpoint),
    ) -> EvolutionOutcome {
        assert!(every > 0, "checkpoint cadence must be positive");
        assert_eq!(
            self.econfig.workers.max(1),
            1,
            "checkpointing requires a single-worker (deterministic) run"
        );
        self.run_internal(Start::Seed(seed_program), Some(every), sink)
    }

    /// Resumes a search from a checkpoint, continuing until the budget
    /// embedded in the checkpoint's config is exhausted. The checkpoint's
    /// config is authoritative (this driver's own config is ignored); the
    /// evaluator must be reconstructed identically to the original run for
    /// the bit-for-bit determinism guarantee to hold.
    pub fn resume(&self, checkpoint: &EvolutionCheckpoint) -> EvolutionOutcome {
        self.run_internal(Start::Checkpoint(checkpoint), None, &mut |_| {})
    }

    /// [`Evolution::resume`], itself emitting fresh checkpoints every
    /// `every` searched candidates (so long runs can chain indefinitely).
    pub fn resume_with_checkpoints(
        &self,
        checkpoint: &EvolutionCheckpoint,
        every: usize,
        sink: &mut dyn FnMut(EvolutionCheckpoint),
    ) -> EvolutionOutcome {
        assert!(every > 0, "checkpoint cadence must be positive");
        self.run_internal(Start::Checkpoint(checkpoint), Some(every), sink)
    }

    fn run_internal(
        &self,
        start: Start<'_>,
        checkpoint_every: Option<usize>,
        sink: &mut dyn FnMut(EvolutionCheckpoint),
    ) -> EvolutionOutcome {
        // On resume the checkpoint's config governs (budget, seed, sizes);
        // a resumed run is the same run, continued.
        let econfig = match start {
            Start::Seed(_) => self.econfig.clone(),
            Start::Checkpoint(c) => {
                assert_eq!(
                    c.config.workers.max(1),
                    1,
                    "checkpoints are only produced by single-worker runs"
                );
                c.config.clone()
            }
        };
        let shared = Shared {
            evaluator: self.evaluator,
            mutator: Mutator::new(*self.evaluator.config(), econfig.mutation),
            gate: self.gate,
            population: Mutex::new(Population::with_capacity(econfig.population_size + 1)),
            cache: ShardedCache::new(econfig.workers),
            best: Mutex::new(None),
            trajectory: Mutex::new(Vec::new()),
            searched: AtomicUsize::new(0),
            evaluated: AtomicUsize::new(0),
            redundant: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
            invalid: AtomicUsize::new(0),
            gate_rejected: AtomicUsize::new(0),
            static_rejected: AtomicUsize::new(0),
            folded: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            telemetry: Arc::clone(&self.telemetry),
            start: Instant::now(),
            base_elapsed: match start {
                Start::Seed(_) => Duration::ZERO,
                Start::Checkpoint(c) => c.elapsed,
            },
            use_pruning: self.use_pruning,
            // Like the config, a checkpoint's migration epoch governs its
            // resume: the pool the interrupted run was mutating from is
            // part of the captured state.
            migration: match start {
                Start::Seed(_) => self.migration.clone(),
                Start::Checkpoint(c) => c.migration.clone(),
            },
            econfig,
        };

        match start {
            Start::Seed(seed_program) => {
                // Initial population: the seed itself plus mutants of it
                // (paper §3 step 1). Processed under the same budget
                // accounting, through the same tile pipeline (the init
                // phase never evicts, so `evict = false`).
                let mut rng = SmallRng::seed_from_u64(shared.econfig.seed ^ 0x5EED);
                let mut tile = Tile::new(self.evaluator, shared.econfig.batch.max(1));
                let mut initial = Vec::with_capacity(shared.econfig.population_size);
                initial.push(seed_program.clone());
                // Archive warm-start: admitted elites come right after
                // the seed, before any mutant, so they neither consume
                // nor shift the mutation RNG stream — an empty list
                // reproduces the plain run bit for bit.
                for elite in self
                    .warm_start
                    .iter()
                    .take(shared.econfig.population_size.saturating_sub(1))
                {
                    initial.push(elite.clone());
                }
                for _ in initial.len()..shared.econfig.population_size {
                    initial.push(shared.mutator.mutate(&mut rng, seed_program));
                }
                for candidate in initial {
                    if shared.budget_exhausted() {
                        break;
                    }
                    shared.admit(&mut tile, candidate, false);
                    if tile.is_full() {
                        shared.flush(&mut tile, crate::telemetry::FlushCause::Init);
                    }
                }
                // Settle the init tile before any worker starts drawing
                // tournaments from the population.
                shared.flush(&mut tile, crate::telemetry::FlushCause::Init);

                let workers = shared.econfig.workers.max(1);
                if workers == 1 {
                    shared.worker_loop_from_seed(checkpoint_every, sink);
                } else {
                    std::thread::scope(|scope| {
                        for w in 0..workers {
                            let shared_ref = &shared;
                            scope.spawn(move || shared_ref.worker_loop(w as u64 + 1));
                        }
                    });
                }
            }
            Start::Checkpoint(c) => {
                // Restore the complete captured state, then continue the
                // loop exactly where the snapshot was taken. Members go
                // through `push` so the push counter stays consistent.
                {
                    let mut pop = shared.population.lock();
                    for ind in c.population.iter().cloned() {
                        pop.push(ind);
                    }
                }
                for &(fp, fitness) in &c.cache {
                    shared.cache.insert(fp, fitness);
                }
                *shared.best.lock() = c.best.clone();
                *shared.trajectory.lock() = c.trajectory.clone();
                shared.searched.store(c.stats.searched, Ordering::Relaxed);
                shared.evaluated.store(c.stats.evaluated, Ordering::Relaxed);
                shared.redundant.store(c.stats.redundant, Ordering::Relaxed);
                shared
                    .cache_hits
                    .store(c.stats.cache_hits, Ordering::Relaxed);
                shared.invalid.store(c.stats.invalid, Ordering::Relaxed);
                shared
                    .gate_rejected
                    .store(c.stats.gate_rejected, Ordering::Relaxed);
                shared
                    .static_rejected
                    .store(c.stats.static_rejected, Ordering::Relaxed);
                shared.folded.store(c.stats.folded, Ordering::Relaxed);
                let mut rng = SmallRng::from_state(c.rng);
                shared.search_loop(&mut rng, checkpoint_every, sink);
            }
        }

        let stats = shared.snapshot_stats();
        let mut trajectory = shared.trajectory.into_inner();
        // Close the trajectory at the final searched count.
        if let Some(last) = trajectory.last().copied() {
            if last.searched < stats.searched {
                trajectory.push(TrajectoryPoint {
                    searched: stats.searched,
                    best_ic: last.best_ic,
                });
            }
        }
        EvolutionOutcome {
            best: shared.best.into_inner(),
            stats,
            trajectory,
            elapsed: shared.base_elapsed + shared.start.elapsed(),
        }
    }
}

/// Where [`Evolution::run_internal`] starts from.
enum Start<'a> {
    Seed(&'a AlphaProgram),
    Checkpoint(&'a EvolutionCheckpoint),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlphaConfig;
    use crate::eval::{EvalOptions, Evaluator};
    use crate::init;
    use alphaevolve_backtest::portfolio::LongShortConfig;
    use alphaevolve_market::{features::FeatureSet, generator::MarketConfig, Dataset, SplitSpec};
    use std::sync::Arc;

    fn small_evaluator(seed: u64) -> Evaluator {
        let md = MarketConfig {
            n_stocks: 16,
            n_days: 140,
            seed,
            ..Default::default()
        }
        .generate();
        let ds = Dataset::build(&md, &FeatureSet::paper(), SplitSpec::paper_ratios()).unwrap();
        Evaluator::new(
            AlphaConfig::default(),
            EvalOptions {
                long_short: LongShortConfig::scaled(16),
                ..Default::default()
            },
            Arc::new(ds),
        )
    }

    fn small_config(budget: usize) -> EvolutionConfig {
        EvolutionConfig {
            population_size: 20,
            tournament_size: 5,
            budget: Budget::Searched(budget),
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn evolves_at_least_as_good_as_seed() {
        let ev = small_evaluator(21);
        let seed_prog = init::domain_expert(ev.config());
        let seed_ic = ev.evaluate(&crate::prune::prune(&seed_prog).program).ic;
        let outcome = Evolution::new(&ev, small_config(300)).run(&seed_prog);
        let best = outcome.best.expect("search must find something valid");
        assert!(
            best.ic >= seed_ic - 1e-12,
            "best {} < seed {}",
            best.ic,
            seed_ic
        );
        assert!(outcome.stats.searched >= 300);
        assert!(outcome.stats.evaluated > 0);
    }

    #[test]
    fn stats_add_up() {
        let ev = small_evaluator(22);
        let outcome = Evolution::new(&ev, small_config(250)).run(&init::noop(ev.config()));
        let s = outcome.stats;
        assert_eq!(
            s.searched,
            s.evaluated + s.redundant + s.cache_hits + s.static_rejected,
            "every searched candidate is pruned, cached, statically rejected, or evaluated: {s:?}"
        );
        assert!(
            s.redundant > 0,
            "noop-seeded search must hit redundant alphas"
        );
    }

    #[test]
    fn trajectory_is_monotone() {
        let ev = small_evaluator(23);
        let outcome = Evolution::new(&ev, small_config(300)).run(&init::domain_expert(ev.config()));
        let t = &outcome.trajectory;
        assert!(!t.is_empty());
        for w in t.windows(2) {
            assert!(w[1].best_ic >= w[0].best_ic);
            assert!(w[1].searched >= w[0].searched);
        }
    }

    #[test]
    fn single_worker_runs_are_reproducible() {
        let ev = small_evaluator(24);
        let seed_prog = init::domain_expert(ev.config());
        let a = Evolution::new(&ev, small_config(200)).run(&seed_prog);
        let b = Evolution::new(&ev, small_config(200)).run(&seed_prog);
        assert_eq!(a.best.as_ref().map(|x| x.ic), b.best.as_ref().map(|x| x.ic));
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn inactive_archive_hooks_stay_bitwise_plain() {
        // Empty warm-start and a zero-fraction migration state must not
        // consume a single extra RNG draw: the fleet's 1-island contract.
        let ev = small_evaluator(29);
        let seed_prog = init::domain_expert(ev.config());
        let plain = Evolution::new(&ev, small_config(200)).run(&seed_prog);
        let hooked = Evolution::new(&ev, small_config(200))
            .with_warm_start(Vec::new())
            .with_migration(MigrationState {
                island: 3,
                round: 9,
                fraction: 0.0,
                migrants: vec![init::noop(ev.config())],
            })
            .run(&seed_prog);
        assert_eq!(
            plain.best.as_ref().map(|b| b.ic.to_bits()),
            hooked.best.as_ref().map(|b| b.ic.to_bits())
        );
        assert_eq!(plain.stats, hooked.stats);
    }

    #[test]
    fn warm_start_elites_join_the_initial_population() {
        let ev = small_evaluator(30);
        let elite = init::domain_expert(ev.config());
        let elite_ic = ev.evaluate(&crate::prune::prune(&elite).program).ic;
        // Seeded from noop, the only strong genetic material is the
        // warm-started elite — the run must do at least as well as it.
        let outcome = Evolution::new(&ev, small_config(80))
            .with_warm_start(vec![elite])
            .run(&init::noop(ev.config()));
        let best = outcome
            .best
            .expect("warm-started search must keep the elite");
        assert!(
            best.ic >= elite_ic - 1e-12,
            "best {} < warm-started elite {}",
            best.ic,
            elite_ic
        );
    }

    #[test]
    fn migrant_fraction_draws_parents_from_the_pool() {
        // fraction 1.0: every steady-state mutant derives from the pool,
        // which must visibly alter the search versus a plain run.
        let ev = small_evaluator(31);
        let seed_prog = init::noop(ev.config());
        let with = Evolution::new(&ev, small_config(150))
            .with_migration(MigrationState {
                island: 0,
                round: 0,
                fraction: 1.0,
                migrants: vec![init::domain_expert(ev.config())],
            })
            .run(&seed_prog);
        let without = Evolution::new(&ev, small_config(150)).run(&seed_prog);
        assert_ne!(
            with.stats, without.stats,
            "migrant parenting must alter the search trajectory"
        );
        assert!(with.best.is_some(), "the strong pool must surface an alpha");
    }

    #[test]
    fn migration_epoch_rides_checkpoints_bit_for_bit() {
        let ev = small_evaluator(32);
        let seed_prog = init::domain_expert(ev.config());
        let state = MigrationState {
            island: 2,
            round: 1,
            fraction: 0.5,
            migrants: vec![init::domain_expert(ev.config()), init::noop(ev.config())],
        };
        let driver = Evolution::new(&ev, small_config(220)).with_migration(state.clone());
        let uninterrupted = driver.run(&seed_prog);
        let mut cps = Vec::new();
        let checkpointed = driver.run_with_checkpoints(&seed_prog, 60, &mut |c| cps.push(c));
        assert_eq!(
            uninterrupted.best.as_ref().map(|b| b.ic.to_bits()),
            checkpointed.best.as_ref().map(|b| b.ic.to_bits())
        );
        let mid = &cps[1];
        assert_eq!(mid.migration.as_ref(), Some(&state), "epoch captured");
        let resumed = Evolution::new(&ev, small_config(220)).resume(mid);
        assert_eq!(
            uninterrupted.best.as_ref().map(|b| b.ic.to_bits()),
            resumed.best.as_ref().map(|b| b.ic.to_bits()),
            "resume mid-migration must reproduce the uninterrupted run"
        );
        assert_eq!(uninterrupted.stats, resumed.stats);
    }

    #[test]
    fn gate_rejects_correlated_candidates() {
        let ev = small_evaluator(25);
        let seed_prog = init::domain_expert(ev.config());
        // First round: mine unconstrained, accept its returns into the gate.
        let first = Evolution::new(&ev, small_config(200)).run(&seed_prog);
        let best = first.best.unwrap();
        let mut gate = CorrelationGate::paper();
        gate.accept(best.val_returns.clone());
        // Second round seeded with the same alpha: the seed itself is now
        // gate-rejected, so gate_rejected must fire.
        let second = Evolution::new(&ev, small_config(200))
            .with_gate(&gate)
            .run(&seed_prog);
        assert!(second.stats.gate_rejected > 0, "stats: {:?}", second.stats);
        if let Some(b) = &second.best {
            let corr = alphaevolve_backtest::return_correlation(&b.val_returns, &best.val_returns);
            assert!(
                corr <= gate.cutoff() + 1e-9,
                "best alpha violates the gate: {corr}"
            );
        }
    }

    #[test]
    fn no_pruning_mode_still_works() {
        let ev = small_evaluator(26);
        let outcome = Evolution::new(&ev, small_config(150))
            .without_pruning()
            .run(&init::domain_expert(ev.config()));
        assert_eq!(
            outcome.stats.redundant, 0,
            "no-pruning mode rejects nothing structurally"
        );
        assert!(outcome.best.is_some());
    }

    #[test]
    fn parallel_workers_complete() {
        let ev = small_evaluator(27);
        let cfg = EvolutionConfig {
            workers: 4,
            ..small_config(400)
        };
        let outcome = Evolution::new(&ev, cfg).run(&init::domain_expert(ev.config()));
        assert!(outcome.stats.searched >= 400);
        assert!(outcome.best.is_some());
    }

    #[test]
    fn walltime_budget_terminates() {
        let ev = small_evaluator(28);
        let cfg = EvolutionConfig {
            budget: Budget::WallTime(Duration::from_millis(300)),
            ..small_config(0)
        };
        let start = Instant::now();
        let _ = Evolution::new(&ev, cfg).run(&init::domain_expert(ev.config()));
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "must stop soon after the deadline"
        );
    }
}
