//! Cross-sectional kernels for the RelationOps (paper §4.1).
//!
//! A RelationOp's output for stock `a` at one timestep depends on the input
//! operand computed *on other tasks at the same timestep*:
//!
//! * `RankOp` — rank among all stocks;
//! * `RelationRankOp` — rank among stocks of the same sector (industry);
//! * `RelationDemeanOp` — difference from the sector (industry) mean.
//!
//! Ranks are normalized to `[0, 1]` with ties sharing their average rank;
//! singleton groups rank at `0.5`. Non-finite inputs deterministically sort
//! last and produce non-finite demeans (which later kill the candidate, as
//! with any other non-finite computation).

use alphaevolve_market::Universe;

use crate::op::RelGroup;

/// Precomputed group memberships for a universe, consumed by the lockstep
/// interpreter's RelationOp execution.
#[derive(Debug, Clone)]
pub struct GroupIndex {
    n_stocks: usize,
    all: Vec<u32>,
    sectors: Vec<Vec<u32>>,
    industries: Vec<Vec<u32>>,
}

impl GroupIndex {
    /// Builds membership tables from a universe.
    pub fn from_universe(u: &Universe) -> GroupIndex {
        let sectors = (0..u.n_sectors())
            .map(|s| {
                u.sector_members(alphaevolve_market::SectorId(s as u16))
                    .to_vec()
            })
            .filter(|v| !v.is_empty())
            .collect();
        let industries = (0..u.n_industries())
            .map(|i| {
                u.industry_members(alphaevolve_market::IndustryId(i as u16))
                    .to_vec()
            })
            .filter(|v| !v.is_empty())
            .collect();
        GroupIndex {
            n_stocks: u.len(),
            all: (0..u.len() as u32).collect(),
            sectors,
            industries,
        }
    }

    /// A degenerate index treating every stock as one group (useful for
    /// tests and for running without relational knowledge).
    pub fn single_group(n_stocks: usize) -> GroupIndex {
        let all: Vec<u32> = (0..n_stocks as u32).collect();
        GroupIndex {
            n_stocks,
            all: all.clone(),
            sectors: vec![all.clone()],
            industries: vec![all],
        }
    }

    /// Number of stocks covered.
    pub fn n_stocks(&self) -> usize {
        self.n_stocks
    }

    /// The groups for a relation kind.
    pub fn groups(&self, rel: RelGroup) -> GroupSlices<'_> {
        match rel {
            RelGroup::All => GroupSlices::Single(&self.all),
            RelGroup::Sector => GroupSlices::Many(&self.sectors),
            RelGroup::Industry => GroupSlices::Many(&self.industries),
        }
    }
}

/// Either the single all-stocks group or a partition into groups.
pub enum GroupSlices<'a> {
    /// One group covering all stocks.
    Single(&'a [u32]),
    /// A partition (sector or industry membership lists).
    Many(&'a [Vec<u32>]),
}

impl<'a> GroupSlices<'a> {
    /// Iterates over the member lists. Returns a stack-allocated iterator
    /// — this runs once per relation instruction per day on the evaluation
    /// hot path, so it must not box.
    pub fn iter(&self) -> GroupSlicesIter<'a> {
        match self {
            GroupSlices::Single(g) => GroupSlicesIter::Single(std::iter::once(*g)),
            GroupSlices::Many(gs) => GroupSlicesIter::Many(gs.iter()),
        }
    }
}

/// Iterator over the member lists of a [`GroupSlices`].
pub enum GroupSlicesIter<'a> {
    /// The single all-stocks group.
    Single(std::iter::Once<&'a [u32]>),
    /// A sector/industry partition.
    Many(std::slice::Iter<'a, Vec<u32>>),
}

impl<'a> Iterator for GroupSlicesIter<'a> {
    type Item = &'a [u32];

    fn next(&mut self) -> Option<&'a [u32]> {
        match self {
            GroupSlicesIter::Single(it) => it.next(),
            GroupSlicesIter::Many(it) => it.next().map(Vec::as_slice),
        }
    }
}

/// Writes normalized average ranks of `values[member]` into `out[member]`
/// for each `member` of `group`. `scratch` is an index buffer reused across
/// calls.
pub fn rank_within(group: &[u32], values: &[f64], out: &mut [f64], scratch: &mut Vec<u32>) {
    let n = group.len();
    if n == 1 {
        out[group[0] as usize] = 0.5;
        return;
    }
    scratch.clear();
    scratch.extend_from_slice(group);
    // NaNs sort last, ties broken by index for determinism. The keyed
    // comparator is a strict total order (no `partial_cmp(..).unwrap()`
    // panic hazard) and orders values identically to the old
    // partial_cmp-based comparator except inside equal-value tie groups
    // (-0.0 vs +0.0), which rank averaging erases — output bits are
    // unchanged. Same order as the cached rank kernel in
    // `crate::kernels`.
    scratch.sort_unstable_by(|&a, &b| {
        let (ka, kb) = (
            crate::kernels::rank_key(values[a as usize]),
            crate::kernels::rank_key(values[b as usize]),
        );
        ka.cmp(&kb).then(a.cmp(&b))
    });
    let denom = (n - 1) as f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        let xi = values[scratch[i] as usize];
        while j + 1 < n && values[scratch[j + 1] as usize] == xi {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 / denom;
        for k in i..=j {
            out[scratch[k] as usize] = avg;
        }
        i = j + 1;
    }
}

/// Writes `values[member] - mean(group values)` into `out[member]`.
pub fn demean_within(group: &[u32], values: &[f64], out: &mut [f64]) {
    let mean = group.iter().map(|&i| values[i as usize]).sum::<f64>() / group.len() as f64;
    for &i in group {
        out[i as usize] = values[i as usize] - mean;
    }
}

/// [`demean_within`] specialized for the all-stocks group: the member list
/// is `0..n`, so the mean folds straight over the contiguous slice and the
/// write-back needs no index indirection (auto-vectorizable). Bitwise
/// identical to `demean_within(&[0, 1, .., n-1], ..)` — both fold the same
/// values in the same order.
pub fn demean_dense(values: &[f64], out: &mut [f64]) {
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    for (o, &x) in out.iter_mut().zip(values) {
        *o = x - mean;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_basic() {
        let group = [0u32, 1, 2, 3];
        let values = [3.0, 1.0, 4.0, 2.0];
        let mut out = [0.0; 4];
        rank_within(&group, &values, &mut out, &mut Vec::new());
        assert_eq!(out, [2.0 / 3.0, 0.0, 1.0, 1.0 / 3.0]);
    }

    #[test]
    fn rank_with_ties_averages() {
        let group = [0u32, 1, 2];
        let values = [5.0, 5.0, 1.0];
        let mut out = [0.0; 3];
        rank_within(&group, &values, &mut out, &mut Vec::new());
        assert_eq!(out[2], 0.0);
        assert!((out[0] - 0.75).abs() < 1e-12);
        assert!((out[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rank_singleton_is_half() {
        let group = [7u32];
        let values = [0.0; 8];
        let mut out = [0.0; 8];
        rank_within(&group, &values, &mut out, &mut Vec::new());
        assert_eq!(out[7], 0.5);
    }

    #[test]
    fn rank_nan_sorts_last_deterministically() {
        let group = [0u32, 1, 2];
        let values = [f64::NAN, 1.0, 2.0];
        let mut out = [0.0; 3];
        rank_within(&group, &values, &mut out, &mut Vec::new());
        assert_eq!(out[0], 1.0, "NaN ranks last");
        assert_eq!(out[1], 0.0);
        assert_eq!(out[2], 0.5);
    }

    /// The keyed comparator is a total order: a plane saturated with NaNs
    /// (mixed payloads and signs) must not panic — the old
    /// `partial_cmp(..).unwrap()` comparator's failure mode — and NaNs
    /// keep the sort-last, tie-averaged rank semantics. Exercises both the
    /// plain sort and the cached-permutation kernel.
    #[test]
    fn nan_laden_plane_ranks_without_panic() {
        let k = 12;
        let group: Vec<u32> = (0..k as u32).collect();
        // All-NaN plane with distinct payloads/signs.
        let all_nan: Vec<f64> = (0..k)
            .map(|i| {
                let quiet = f64::NAN.to_bits();
                f64::from_bits(quiet | i as u64 | ((i as u64 & 1) << 63))
            })
            .collect();
        let mut out = vec![0.0; k];
        rank_within(&group, &all_nan, &mut out, &mut Vec::new());
        // NaN != NaN, so each NaN is its own tie group: the ranks are the
        // full ladder, in stock-index order (deterministic sort-last).
        let denom = (k - 1) as f64;
        for (i, &r) in out.iter().enumerate() {
            assert_eq!(r, i as f64 / denom, "all-NaN plane: {out:?}");
        }

        // Half-NaN plane: finite values rank first, NaNs share the tail.
        let mut half: Vec<f64> = (0..k).map(|i| -(i as f64)).collect();
        for x in half.iter_mut().skip(k / 2) {
            *x = f64::NAN;
        }
        rank_within(&group, &half, &mut out, &mut Vec::new());
        for (i, &r) in out.iter().enumerate() {
            if i < k / 2 {
                // values are descending, so stock i has rank (k/2 - 1 - i).
                assert_eq!(r, (k / 2 - 1 - i) as f64 / denom, "stock {i}");
            } else {
                // NaN stocks fill the tail ranks individually, in index
                // order.
                assert_eq!(r, i as f64 / denom, "NaN stock {i} ranks last");
            }
        }

        // The cached kernel agrees bitwise on both planes.
        let mut cache = crate::kernels::RankCache::new(1, k);
        let mut cached = vec![0.0; k];
        for vals in [&all_nan, &half] {
            cache.rank_groups(0, 0, &GroupSlices::Single(&group), vals, &mut cached);
            rank_within(&group, vals, &mut out, &mut Vec::new());
            for (a, b) in cached.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn demean_sums_to_zero() {
        let group = [0u32, 1, 2, 3];
        let values = [1.0, 2.0, 3.0, 6.0];
        let mut out = [0.0; 4];
        demean_within(&group, &values, &mut out);
        assert!((out.iter().sum::<f64>()).abs() < 1e-12);
        assert_eq!(out[3], 3.0);
    }

    #[test]
    fn demean_dense_matches_demean_within_bitwise() {
        let values = [1.5, -2.25, 0.125, 7.75, f64::NAN, -0.5];
        let group: Vec<u32> = (0..values.len() as u32).collect();
        let mut by_group = [0.0; 6];
        let mut dense = [0.0; 6];
        demean_within(&group, &values, &mut by_group);
        demean_dense(&values, &mut dense);
        for (a, b) in by_group.iter().zip(&dense) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn group_index_partitions_cover_universe() {
        let u = Universe::synthetic(30, 3, 2);
        let g = GroupIndex::from_universe(&u);
        let total: usize = g
            .groups(crate::op::RelGroup::Sector)
            .iter()
            .map(<[u32]>::len)
            .sum();
        assert_eq!(total, 30);
        let total_ind: usize = g
            .groups(crate::op::RelGroup::Industry)
            .iter()
            .map(<[u32]>::len)
            .sum();
        assert_eq!(total_ind, 30);
        match g.groups(crate::op::RelGroup::All) {
            GroupSlices::Single(all) => assert_eq!(all.len(), 30),
            _ => panic!("All must be a single group"),
        }
    }
}
