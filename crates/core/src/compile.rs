//! The compile half of the columnar compile-then-execute pipeline.
//!
//! The columnar interpreter ([`crate::interp::ColumnarInterpreter`]) does
//! not walk raw [`AlphaProgram`]s. Each candidate is first lowered to a
//! [`CompiledProgram`] whose instructions have their work hoisted out of
//! the per-(instruction × stock) hot loop:
//!
//! * **dead-code stripping** — instructions whose output is never demanded
//!   (per the same backward-liveness fixpoint as [`crate::prune`](mod@crate::prune)) are
//!   dropped, as are no-ops. Stochastic dead instructions are *kept*: they
//!   advance the per-stock RNG streams, and dropping them would perturb
//!   every later stochastic draw — breaking bitwise equivalence with the
//!   lockstep reference interpreter on unpruned programs. (The evolution
//!   pipeline evaluates already-pruned programs, where this keeps exactly
//!   the pruned instruction sequence.)
//! * **register-offset resolution** — operand registers (plus extraction
//!   indices, where the op allows it) are resolved to flat element offsets
//!   into the [`RegisterFile`](crate::memory::RegisterFile) buffers, so
//!   kernels index planes directly instead of multiplying out
//!   `reg × plane_size` per instruction per day.
//!
//! Compilation is allocation-free once the caller-owned
//! [`CompiledProgram`] and [`CompileScratch`] buffers are warm, which is
//! what lets the evaluation hot path re-compile every candidate without
//! touching the heap (pinned by `tests/hot_path_alloc.rs`).

use crate::config::AlphaConfig;
use crate::instruction::Instruction;
use crate::op::{Kind, Op};
use crate::program::AlphaProgram;

/// One lowered instruction: the op, pre-resolved flat element offsets of
/// its operands into the columnar register buffers, and the literal /
/// index slots it still needs at execution time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompiledInstr {
    /// The operator (dispatched once per instruction, not per stock).
    pub op: Op,
    /// Flat element offset of input 1's register in its kind's buffer.
    pub a: usize,
    /// Flat element offset of input 2's register in its kind's buffer.
    pub b: usize,
    /// Flat element offset of the output register in its kind's buffer.
    pub o: usize,
    /// Literal slots (constants / distribution parameters).
    pub lit: [f64; 2],
    /// Small-integer slots (element indices or axis selector).
    pub ix: [u8; 2],
    /// Rank-cache row for `rel_rank*` ops, assigned sequentially at lower
    /// time across setup/predict/update; `u16::MAX` for every other op
    /// (and for rank instructions beyond the cache capacity, where the
    /// runtime falls back to the uncached sort).
    pub slot: u16,
}

/// A program lowered for columnar execution. Reusable: [`compile_into`]
/// clears and refills the instruction vectors, preserving capacity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompiledProgram {
    /// Lowered `Setup()` body.
    pub setup: Vec<CompiledInstr>,
    /// Lowered `Predict()` body.
    pub predict: Vec<CompiledInstr>,
    /// Lowered `Update()` body.
    pub update: Vec<CompiledInstr>,
}

impl CompiledProgram {
    /// An empty program with capacity for the configuration's maximum
    /// function sizes, so per-candidate compilation never reallocates.
    pub fn with_capacity(cfg: &AlphaConfig) -> CompiledProgram {
        CompiledProgram {
            setup: Vec::with_capacity(cfg.max_setup_ops),
            predict: Vec::with_capacity(cfg.max_predict_ops),
            update: Vec::with_capacity(cfg.max_update_ops),
        }
    }

    /// Total lowered instructions.
    pub fn n_ops(&self) -> usize {
        self.setup.len() + self.predict.len() + self.update.len()
    }
}

/// Reusable liveness-mark buffers for [`compile_into`].
#[derive(Debug, Default)]
pub struct CompileScratch {
    setup_marks: Vec<bool>,
    predict_marks: Vec<bool>,
    update_marks: Vec<bool>,
}

/// Element offset of a register's base within its kind's columnar buffer.
#[inline]
fn reg_offset(kind: Kind, reg: usize, dim: usize, n_stocks: usize) -> usize {
    match kind {
        Kind::S => reg * n_stocks,
        Kind::V => reg * dim * n_stocks,
        Kind::M => reg * dim * dim * n_stocks,
    }
}

/// Lowers a single instruction without any dead-code analysis: register
/// operands become flat element offsets for `n_stocks` stocks. This is the
/// offset math [`compile_into`] applies to every kept instruction, exposed
/// for callers (benches, tests) that execute hand-picked instructions
/// outside a full program.
pub fn lower_instr(instr: &Instruction, dim: usize, n_stocks: usize) -> CompiledInstr {
    // Standalone lowering assigns rank-cache row 0 so single-instruction
    // callers (benches) exercise the cached rank path.
    let mut slot = 0;
    lower(instr, dim, n_stocks, &mut slot)
}

fn lower(instr: &Instruction, dim: usize, n_stocks: usize, next_slot: &mut u16) -> CompiledInstr {
    let kinds = instr.op.input_kinds();
    let a = if kinds.is_empty() {
        0
    } else {
        reg_offset(kinds[0], instr.in1 as usize, dim, n_stocks)
    };
    let b = if kinds.len() < 2 {
        0
    } else {
        reg_offset(kinds[1], instr.in2 as usize, dim, n_stocks)
    };
    let o = if instr.op == Op::NoOp {
        0
    } else {
        reg_offset(instr.op.output_kind(), instr.out as usize, dim, n_stocks)
    };
    let slot = if instr.op.is_rank() && *next_slot != u16::MAX {
        let s = *next_slot;
        *next_slot += 1;
        s
    } else {
        u16::MAX
    };
    CompiledInstr {
        op: instr.op,
        a,
        b,
        o,
        lit: instr.lit,
        ix: instr.ix,
        slot,
    }
}

fn lower_function(
    instrs: &[Instruction],
    marks: &[bool],
    dim: usize,
    n_stocks: usize,
    next_slot: &mut u16,
    out: &mut Vec<CompiledInstr>,
) {
    out.clear();
    for (instr, &live) in instrs.iter().zip(marks) {
        if instr.op == Op::NoOp {
            continue;
        }
        // Dead deterministic instructions are stripped; dead *stochastic*
        // ones must still run so every later RNG draw keeps its position
        // in the per-stock streams.
        if !live && !instr.op.is_stochastic() {
            continue;
        }
        out.push(lower(instr, dim, n_stocks, next_slot));
    }
}

/// Lowers `prog` for columnar execution over `n_stocks` stocks into `out`
/// (cleared first). Allocation-free once `scratch` and `out` are warm.
pub fn compile_into(
    prog: &AlphaProgram,
    cfg: &AlphaConfig,
    n_stocks: usize,
    scratch: &mut CompileScratch,
    out: &mut CompiledProgram,
) {
    crate::prune::mark_live_into(
        prog,
        &mut scratch.setup_marks,
        &mut scratch.predict_marks,
        &mut scratch.update_marks,
    );
    let d = cfg.dim;
    // Rank-cache rows are numbered across the whole program so every
    // rank instruction keeps a stable row for the interpreter's lifetime.
    let mut next_slot: u16 = 0;
    lower_function(
        &prog.setup,
        &scratch.setup_marks,
        d,
        n_stocks,
        &mut next_slot,
        &mut out.setup,
    );
    lower_function(
        &prog.predict,
        &scratch.predict_marks,
        d,
        n_stocks,
        &mut next_slot,
        &mut out.predict,
    );
    lower_function(
        &prog.update,
        &scratch.update_marks,
        d,
        n_stocks,
        &mut next_slot,
        &mut out.update,
    );
}

/// Whether the lowered program ever writes the input matrix register `m0`.
///
/// The batched tile executor ([`crate::interp::BatchInterpreter`]) keeps
/// one *shared* `m0` plane per tile — loaded once per day and read by every
/// slot — so a slot may alias it only if nothing in the slot writes it.
/// The test must run on the **lowered** program: a dead stochastic
/// instruction targeting `m0` survives dead-code stripping (it advances
/// the RNG streams) and still clobbers the plane.
pub fn writes_m0(prog: &CompiledProgram) -> bool {
    prog.setup
        .iter()
        .chain(&prog.predict)
        .chain(&prog.update)
        .any(|i| i.op != Op::NoOp && i.op.output_kind() == Kind::M && i.o == 0)
}

/// Rebases a compiled program's operand offsets onto tile slot `slot` of a
/// batched register file (see [`crate::interp::BatchInterpreter`] for the
/// tile layout). Scalar and vector offsets shift into the slot's private
/// region; matrix offsets shift into the slot's private matrix region
/// *except* `m0`, which stays on the tile's shared plane when `share_m0`
/// (the program never writes it — see [`writes_m0`]). In-place and
/// allocation-free; `slot 0` with `share_m0 = false` still relocates (the
/// tile's matrix buffer reserves plane 0 for the shared `m0`).
pub fn relocate_for_slot(
    prog: &mut CompiledProgram,
    cfg: &AlphaConfig,
    n_stocks: usize,
    slot: usize,
    share_m0: bool,
) {
    let k = n_stocks;
    let d = cfg.dim;
    let s_base = slot * cfg.n_scalars * k;
    let v_base = slot * cfg.n_vectors * d * k;
    let m_base = (1 + slot * cfg.n_matrices) * d * d * k;
    let reloc = |kind: Kind, off: usize| match kind {
        Kind::S => s_base + off,
        Kind::V => v_base + off,
        Kind::M if off == 0 && share_m0 => 0,
        Kind::M => m_base + off,
    };
    for instr in prog
        .setup
        .iter_mut()
        .chain(prog.predict.iter_mut())
        .chain(prog.update.iter_mut())
    {
        let kinds = instr.op.input_kinds();
        if !kinds.is_empty() {
            instr.a = reloc(kinds[0], instr.a);
        }
        if kinds.len() >= 2 {
            instr.b = reloc(kinds[1], instr.b);
        }
        instr.o = reloc(instr.op.output_kind(), instr.o);
    }
}

/// Convenience wrapper allocating fresh buffers (tests / one-off use).
pub fn compile(prog: &AlphaProgram, cfg: &AlphaConfig, n_stocks: usize) -> CompiledProgram {
    let mut out = CompiledProgram::with_capacity(cfg);
    compile_into(
        prog,
        cfg,
        n_stocks,
        &mut CompileScratch::default(),
        &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{INPUT, PREDICTION};

    fn i(op: Op, in1: u8, in2: u8, out: u8) -> Instruction {
        Instruction::new(op, in1, in2, out, [0.0; 2], [0; 2])
    }

    #[test]
    fn strips_dead_deterministic_ops_and_noops() {
        let cfg = AlphaConfig::default();
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![
                Instruction::new(Op::MGet, INPUT as u8, 0, 2, [0.0; 2], [1, 2]),
                i(Op::SSin, 2, 0, 8), // dead: s8 never read
                i(Op::SCos, 2, 0, PREDICTION as u8),
            ],
            update: vec![Instruction::nop()],
        };
        let c = compile(&prog, &cfg, 7);
        assert!(c.setup.is_empty());
        assert!(c.update.is_empty());
        assert_eq!(c.predict.len(), 2);
        assert_eq!(c.predict[0].op, Op::MGet);
        assert_eq!(c.predict[1].op, Op::SCos);
    }

    #[test]
    fn keeps_dead_stochastic_ops_for_rng_stream_parity() {
        let cfg = AlphaConfig::default();
        let prog = AlphaProgram {
            setup: vec![Instruction::new(Op::SGauss, 0, 0, 9, [0.0, 1.0], [0; 2])],
            predict: vec![
                Instruction::new(Op::VUniform, 0, 0, 5, [-1.0, 1.0], [0; 2]), // dead but stochastic
                Instruction::new(Op::MGet, INPUT as u8, 0, 2, [0.0; 2], [0, 0]),
                i(Op::SAbs, 2, 0, PREDICTION as u8),
            ],
            update: vec![Instruction::nop()],
        };
        let c = compile(&prog, &cfg, 7);
        assert_eq!(c.setup.len(), 1, "dead SGauss must survive (RNG draw)");
        assert_eq!(c.predict.len(), 3, "dead VUniform must survive (RNG draws)");
        assert_eq!(c.predict[0].op, Op::VUniform);
    }

    #[test]
    fn offsets_are_plane_bases() {
        let cfg = AlphaConfig::default();
        let k = 11;
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![
                i(Op::MMean, 0, 0, 2),               // m0 -> s2
                i(Op::SAdd, 2, 3, PREDICTION as u8), // s1 = s2 + s3
                i(Op::VAdd, 4, 5, 6),                // dead, stripped
                i(Op::SVScale, 2, 7, 3),             // dead, stripped
            ],
            update: vec![Instruction::nop()],
        };
        let c = compile(&prog, &cfg, k);
        assert_eq!(c.predict.len(), 2);
        let mean = c.predict[0];
        assert_eq!(mean.a, 0, "m0 base");
        assert_eq!(mean.o, 2 * k, "s2 plane");
        let add = c.predict[1];
        assert_eq!((add.a, add.b, add.o), (2 * k, 3 * k, k));
    }

    #[test]
    fn writes_m0_detects_dead_stochastic_clobber() {
        let cfg = AlphaConfig::default();
        // MGauss -> m0 is dead (nothing reads it afterwards) but stochastic,
        // so it survives lowering — and it clobbers the shared input plane.
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![
                Instruction::new(Op::MGauss, 0, 0, INPUT as u8, [0.0, 1.0], [0; 2]),
                i(Op::MMean, INPUT as u8, 0, 2),
                i(Op::SAbs, 2, 0, PREDICTION as u8),
            ],
            update: vec![Instruction::nop()],
        };
        let c = compile(&prog, &cfg, 7);
        assert!(writes_m0(&c));

        // Reading m0 is fine; writing another matrix register is fine.
        let reader = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![
                i(Op::MMean, INPUT as u8, 0, 2),
                i(Op::SAbs, 2, 0, PREDICTION as u8),
            ],
            update: vec![i(Op::MTranspose, INPUT as u8, 0, 1)],
        };
        let c = compile(&reader, &cfg, 7);
        assert!(!writes_m0(&c));
    }

    #[test]
    fn relocation_rebases_offsets_per_slot() {
        let cfg = AlphaConfig::default();
        let (k, d) = (11, cfg.dim);
        // Every instruction feeds the next so nothing gets dead-stripped:
        // m0 -> m1 -> s2 -> v4 -> s3 -> s1(PREDICTION).
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![
                i(Op::MTranspose, INPUT as u8, 0, 1), // M in, M out
                i(Op::MMean, 1, 0, 2),                // M in, S out
                i(Op::SVScale, 2, 3, 4),              // S,V in, V out
                i(Op::VMean, 4, 0, 3),                // V in, S out
                i(Op::SAdd, 2, 3, PREDICTION as u8),  // S,S in, S out
            ],
            update: vec![Instruction::nop()],
        };
        let c0 = compile(&prog, &cfg, k);
        assert_eq!(c0.predict.len(), 5, "test chain must survive stripping");

        let mut c = c0.clone();
        let slot = 2;
        relocate_for_slot(&mut c, &cfg, k, slot, true);
        let s_base = slot * cfg.n_scalars * k;
        let v_base = slot * cfg.n_vectors * d * k;
        let m_base = (1 + slot * cfg.n_matrices) * d * d * k;

        let tr = c.predict[0];
        assert_eq!(tr.a, 0, "shared m0 stays at the tile-shared plane");
        assert_eq!(
            tr.o,
            m_base + d * d * k,
            "m1 lands in the slot's private region"
        );
        let mean = c.predict[1];
        assert_eq!(mean.a, m_base + d * d * k);
        assert_eq!(mean.o, s_base + 2 * k);
        let scale = c.predict[2];
        assert_eq!(scale.a, s_base + 2 * k);
        assert_eq!(scale.b, v_base + 3 * d * k);
        assert_eq!(scale.o, v_base + 4 * d * k);
        let vmean = c.predict[3];
        assert_eq!((vmean.a, vmean.o), (v_base + 4 * d * k, s_base + 3 * k));
        let add = c.predict[4];
        assert_eq!(
            (add.a, add.b, add.o),
            (s_base + 2 * k, s_base + 3 * k, s_base + k)
        );

        // Without sharing, m0 relocates to the slot's private m0 plane.
        let mut c2 = c0.clone();
        relocate_for_slot(&mut c2, &cfg, k, slot, false);
        assert_eq!(c2.predict[0].a, m_base);

        // Slot 0 without sharing still shifts past the shared plane.
        let mut c3 = c0;
        relocate_for_slot(&mut c3, &cfg, k, 0, false);
        assert_eq!(c3.predict[0].a, d * d * k);
        assert_eq!(c3.predict[0].o, d * d * k + d * d * k);
    }

    #[test]
    fn compiled_program_reuse_preserves_capacity() {
        let cfg = AlphaConfig::default();
        let mut out = CompiledProgram::with_capacity(&cfg);
        let cap = (
            out.setup.capacity(),
            out.predict.capacity(),
            out.update.capacity(),
        );
        let mut scratch = CompileScratch::default();
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![i(Op::MMean, 0, 0, 2), i(Op::SAbs, 2, 0, PREDICTION as u8)],
            update: vec![Instruction::nop()],
        };
        for _ in 0..3 {
            compile_into(&prog, &cfg, 5, &mut scratch, &mut out);
        }
        assert_eq!(out.predict.len(), 2);
        assert_eq!(
            (
                out.setup.capacity(),
                out.predict.capacity(),
                out.update.capacity()
            ),
            cap
        );
    }
}
