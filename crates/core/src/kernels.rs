//! Vectorization-friendly math kernels for the columnar hot path.
//!
//! Three families live here, all shared by **every** execution engine —
//! the columnar interpreter, the batched tile, the lockstep
//! `reference-oracle`, and the abstract interpreter's constant folder —
//! so that bitwise parity between engines is automatic:
//!
//! 1. **Polynomial transcendentals** ([`sin`], [`cos`], [`tan`], [`asin`],
//!    [`acos`], [`atan`], [`exp`], [`ln`]): classic
//!    fdlibm/musl-style range reduction + minimax polynomials, written as
//!    straight-line, branch-light scalar code that inlines into the plane
//!    loops. [`exp_plane`], [`sin_plane`], [`cos_plane`], and [`ln_plane`]
//!    are two-pass plane variants whose first pass is fully branch-free
//!    (selects only), so the autovectorizer can chew through the whole
//!    `[f64; n_stocks]` cross-section; a second pass patches the rare
//!    inputs the branch-free core does not cover (huge trig arguments,
//!    non-positive logs) with bit-identical scalar results.
//! 2. **Blocked `mat_mul`** ([`mat_mul_planes`]): register-blocked over
//!    the stock axis. Each output plane is produced strip-by-strip with
//!    the running sums held in a stack array (registers) instead of
//!    read-modify-writing the scratch plane once per inner-product term.
//! 3. **Reusable ranking** ([`RankCache`], [`rank_key`]): `rel_rank*`
//!    sorts are keyed by a monotone `u64` image of `f64` and seeded from
//!    the previous cross-section's permutation. When consecutive
//!    cross-sections are near-identical the O(K log K) argsort collapses
//!    to an O(K) sortedness check; otherwise the full sort runs as the
//!    correctness fallback.
//!
//! # Range-reduction strategy
//!
//! * `exp`: `k = round(x·log2 e)` via the 1.5·2^52 magic-number trick
//!   (round-to-nearest-even without `roundsd`, which baseline x86-64
//!   lacks), two-part Cody–Waite `ln 2`, fdlibm's rational kernel for
//!   `e^r`, then an exact two-step power-of-two scale that covers the
//!   whole binade range including subnormal results. Fully branch-free:
//!   inputs are pre-clamped to `[-746, 710]`, which only saturates inputs
//!   whose results are exactly `0`/`+∞` anyway, and NaN propagates.
//! * `ln`: decompose `x = 2^k·m` with `m ∈ [√2/2, √2)` by exponent-bit
//!   surgery (subnormals pre-scaled by `2^54`), then fdlibm's
//!   `s = f/(2+f)` polynomial with two-part Cody–Waite `ln 2`.
//! * `sin`/`cos`/`tan`: `n = round(x·2/π)` with a **three-part**
//!   Cody–Waite π/2 (run unconditionally — branch-free and exact while
//!   `n` fits 20 bits), then the musl `__sin`/`__cos`/`__tan` kernels on
//!   the reduced argument and its low word. Arguments with
//!   `|x| ≥ 2^20·π/2 ≈ 1.6e6` (where `n·π/2` splits stop being exact)
//!   fall back to the host libm; the plane variants patch those lanes in
//!   the second pass.
//! * `asin`/`acos`: fdlibm rational kernel for `|x| ≤ 0.5`, the
//!   `√((1−x)/2)` identity with a split-word correction beyond.
//! * `atan`: fdlibm four-interval reduction onto `[0, 7/16)` plus an
//!   11-term odd polynomial; total for every input (no fallback).
//!
//! # ULP bounds
//!
//! Every kernel is accurate to **≤ 2 ULP** of the correctly rounded
//! result (the fdlibm/musl kernels are proven < 1 ULP; our unconditional
//! reduction only tightens their error). The proptest battery
//! (`crates/core/tests/kernels_ulp.rs`) enforces **≤ 4 ULP against the
//! host libm** across the full domain, including NaN/±∞/subnormal edges
//! — two ≤ 2 ULP implementations can legitimately differ by 4.
//!
//! # Bit-pattern policy
//!
//! These kernels intentionally do **not** reproduce the host libm bit
//! patterns — they replace them. What is contractual:
//!
//! * columnar, batched, and lockstep `reference-oracle` execution call
//!   the *same* kernel functions in the same per-stock order, so the
//!   three engines stay bit-identical to each other;
//! * the abstract interpreter's constant folder
//!   ([`crate::absint`]) folds through the same kernels, so
//!   canonicalization-time arithmetic equals run-time arithmetic;
//! * ranking output bits are **unchanged**: the keyed order differs from
//!   the old comparator only inside equal-value tie groups, and ranks are
//!   averaged over tie groups.
//!
//! Swapping libm for these kernels may therefore change evaluation bit
//! patterns wherever a transcendental executes, which would require
//! re-pinning the fixed-seed fingerprint regression (the legitimacy
//! rules for such re-pins are documented in `results/README.md`). For
//! this swap no re-pin was needed: the pinned search's winning alpha has
//! no transcendental on its live path, and the rank and `mat_mul`
//! kernels are bit-identical to the loops they replaced by construction.

// The fdlibm/musl coefficients are written with every decimal digit of
// their source bit patterns; the extra digits are what makes the literal
// round to the exact intended f64. Constants resembling π/2, 2/π, … are
// *deliberately* not the std consts: they are Cody–Waite split parts
// whose exact bit patterns the reduction depends on. And the negated
// comparisons (`!(x < LIMIT)`) are load-bearing: unlike `x >= LIMIT`,
// they route NaN lanes into the patch pass.
#![allow(
    clippy::excessive_precision,
    clippy::approx_constant,
    clippy::neg_cmp_op_on_partial_ord
)]

use crate::relation::GroupSlices;

// ---------------------------------------------------------------------------
// exp
// ---------------------------------------------------------------------------

/// 1.5·2^52: adding then subtracting rounds to nearest-even and leaves the
/// integer in the low mantissa bits (SSE2 has no `roundsd`).
const MAGIC: f64 = 6_755_399_441_055_744.0;

const LOG2E: f64 = 1.442_695_040_888_963_87e0;
const EXP_LN2_HI: f64 = 6.931_471_803_691_238_164_90e-1;
const EXP_LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;
const EXP_P1: f64 = 1.666_666_666_666_660_190_37e-1;
const EXP_P2: f64 = -2.777_777_777_701_559_338_42e-3;
const EXP_P3: f64 = 6.613_756_321_437_934_361_17e-5;
const EXP_P4: f64 = -1.653_390_220_546_525_153_90e-6;
const EXP_P5: f64 = 4.138_136_797_057_238_460_39e-8;

/// `2^n` for `|n| ≤ 1023` by exponent construction (no `ldexp` call).
#[inline]
fn pow2i(n: i64) -> f64 {
    f64::from_bits(((1023 + n) as u64) << 52)
}

/// `e^x`, branch-free. ≤ 1 ULP; overflows to `+∞` above ~709.78,
/// underflows through the subnormals to `0` below ~−745.13; NaN
/// propagates.
#[inline]
pub fn exp(x: f64) -> f64 {
    // Saturating clamp: outside [-746, 710] the result is exactly 0/+inf,
    // which the scaled tail below produces from the clamped input too.
    let xc = if x > 710.0 { 710.0 } else { x };
    let xc = if xc < -746.0 { -746.0 } else { xc };
    let kd = xc * LOG2E + MAGIC;
    let k = kd.to_bits() as u32 as i32 as i64;
    let kf = kd - MAGIC;
    let hi = xc - kf * EXP_LN2_HI;
    let lo = kf * EXP_LN2_LO;
    let r = hi - lo;
    let t = r * r;
    let c = r - t * (EXP_P1 + t * (EXP_P2 + t * (EXP_P3 + t * (EXP_P4 + t * EXP_P5))));
    let y = 1.0 - ((lo - (r * c) / (2.0 - c)) - hi);
    // Exact two-step 2^k scale: k ∈ [-1076, 1025] splits into halves that
    // both stay inside the normal exponent range, so only the final
    // multiply can round (into the subnormals) or saturate (to +inf).
    let k1 = k >> 1;
    y * pow2i(k1) * pow2i(k - k1)
}

/// Plane `exp`: the branch-free scalar kernel is total, so this is one
/// autovectorizable pass. `dst` and `src` may fully alias.
#[inline]
pub fn exp_plane(src: &[f64], dst: &mut [f64]) {
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = exp(x);
    }
}

// ---------------------------------------------------------------------------
// ln
// ---------------------------------------------------------------------------

const LN2_HI: f64 = 6.931_471_803_691_238_164_90e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;
const LG1: f64 = 6.666_666_666_666_735_13e-1;
const LG2: f64 = 3.999_999_999_940_941_908e-1;
const LG3: f64 = 2.857_142_874_366_239_149e-1;
const LG4: f64 = 2.222_219_843_214_978_396e-1;
const LG5: f64 = 1.818_357_216_161_805_012e-1;
const LG6: f64 = 1.531_383_769_920_937_332e-1;
const LG7: f64 = 1.479_819_860_511_658_591e-1;

/// Branch-free log core for *normal* positive finite `x` (at least
/// [`f64::MIN_POSITIVE`]). Subnormal / non-positive / non-finite inputs
/// produce garbage without panicking; callers patch them via [`ln_core`]
/// and [`ln_special`]. For normal inputs this is bit-identical to
/// [`ln_core`] (whose subnormal pre-scale selects are no-ops there).
#[inline]
fn ln_norm(x: f64) -> f64 {
    ln_with_k0(x, 0)
}

/// Branch-free (selects only) log core, valid for positive finite `x`
/// including subnormals. Other inputs produce garbage without panicking;
/// callers patch them via [`ln_special`].
#[inline]
fn ln_core(x: f64) -> f64 {
    // Subnormal pre-scale by 2^54 (exact), folded in via selects.
    let sub = x < f64::MIN_POSITIVE;
    let x = if sub { x * 18_014_398_509_481_984.0 } else { x };
    let k0: i64 = if sub { -54 } else { 0 };
    ln_with_k0(x, k0)
}

/// Shared log tail: `x` must be normal positive finite; `k0` is the
/// caller's exponent adjustment from any exact pre-scale.
#[inline]
fn ln_with_k0(x: f64, k0: i64) -> f64 {
    let bits = x.to_bits();
    let mut k = k0 + ((bits >> 52) as i64) - 1023;
    let m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000);
    // Normalize the mantissa from [1, 2) to [√2/2, √2): halving is exact.
    let hi = m > std::f64::consts::SQRT_2;
    let m = if hi { m * 0.5 } else { m };
    k += hi as i64;
    let kf = k as f64;
    let f = m - 1.0;
    let s = f / (2.0 + f);
    let z = s * s;
    let w = z * z;
    let t1 = w * (LG2 + w * (LG4 + w * LG6));
    let t2 = z * (LG1 + w * (LG3 + w * (LG5 + w * LG7)));
    let r = t2 + t1;
    let hfsq = 0.5 * f * f;
    kf * LN2_HI - ((hfsq - (s * (hfsq + r) + kf * LN2_LO)) - f)
}

/// The non-positive / non-finite cases of `ln`.
#[inline]
fn ln_special(x: f64) -> f64 {
    if x == 0.0 {
        f64::NEG_INFINITY
    } else if x < 0.0 {
        f64::NAN
    } else {
        // +inf -> +inf, NaN -> NaN.
        x
    }
}

/// Natural log. ≤ 1 ULP; `ln(0) = −∞`, `ln(x<0) = NaN`, total otherwise.
#[inline]
pub fn ln(x: f64) -> f64 {
    if x > 0.0 && x < f64::INFINITY {
        ln_core(x)
    } else {
        ln_special(x)
    }
}

/// Plane `ln`: branch-free first pass over every lane, then a patch pass
/// for non-positive / non-finite lanes. `src` must not alias `dst` (the
/// interpreter stages the input through its lane scratch).
#[inline]
pub fn ln_plane(src: &[f64], dst: &mut [f64]) {
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = ln_norm(x);
    }
    // Non-short-circuiting OR fold: the scan vectorizes, and the branchy
    // per-lane patch loop (subnormal, non-positive, non-finite) only runs
    // on planes that contain such lanes. `ln` reproduces the exact bits of
    // the subnormal pre-scale path, so plane and scalar agree everywhere.
    let normal = f64::MIN_POSITIVE..f64::INFINITY;
    let any_special = src.iter().fold(false, |acc, x| acc | !normal.contains(x));
    if any_special {
        for (d, x) in dst.iter_mut().zip(src) {
            if !normal.contains(x) {
                *d = ln(*x);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// sin / cos / tan
// ---------------------------------------------------------------------------

/// Reduction validity limit: `n = round(x·2/π)` must stay below 2^20 so
/// the `n·π/2` Cody–Waite products are exact (20 + 33 mantissa bits).
const REDUCE_MAX: f64 = 1.0e6;

const INV_PIO2: f64 = 6.366_197_723_675_813_824_33e-1;
const PIO2_1: f64 = 1.570_796_326_734_125_614_17e0;
const PIO2_2: f64 = 6.077_100_506_303_965_976_60e-11;
const PIO2_3: f64 = 2.022_266_248_711_166_455_80e-21;
const PIO2_3T: f64 = 8.478_427_660_368_899_569_97e-32;

/// `x mod π/2` with a three-part Cody–Waite split, run unconditionally
/// (branch-free). Returns the quadrant `n` and the reduced argument as a
/// high/low pair. Exact only for `|x| < ` [`REDUCE_MAX`].
#[inline]
fn rem_pio2(x: f64) -> (i64, f64, f64) {
    let kd = x * INV_PIO2 + MAGIC;
    let n = kd.to_bits() as u32 as i32 as i64;
    let fnn = kd - MAGIC;
    // Three Cody–Waite rounds, run unconditionally. Round 1 is exact
    // (Sterbenz: x and fn·pio2_1 agree to within π/4; the product itself
    // is exact because fn has ≤ 20 and pio2_1 has 33 mantissa bits). Each
    // split's tail equals the next split pair (pio2_1t ≈ pio2_2 + pio2_2t,
    // pio2_2t ≈ pio2_3 + pio2_3t), so later rounds re-derive the
    // correction at higher precision; the subtraction rounding errors of
    // rounds 2 and 3 are carried into the final correction term.
    let r1 = x - fnn * PIO2_1;
    let w2 = fnn * PIO2_2;
    let r2 = r1 - w2;
    let e2 = (r1 - r2) - w2;
    let w3 = fnn * PIO2_3;
    let r = r2 - w3;
    let e3 = (r2 - r) - w3;
    let w = (fnn * PIO2_3T - e3) - e2;
    let y0 = r - w;
    let y1 = (r - y0) - w;
    (n, y0, y1)
}

const S1: f64 = -1.666_666_666_666_663_243_48e-1;
const S2: f64 = 8.333_333_333_322_489_461_24e-3;
const S3: f64 = -1.984_126_982_985_794_931_34e-4;
const S4: f64 = 2.755_731_370_707_006_767_89e-6;
const S5: f64 = -2.505_076_025_340_686_341_95e-8;
const S6: f64 = 1.589_690_995_211_550_102_21e-10;

/// musl `__sin` on a reduced argument pair, `|x| ≤ π/4`.
#[inline]
fn k_sin(x: f64, y: f64) -> f64 {
    let z = x * x;
    let w = z * z;
    let r = S2 + z * (S3 + z * S4) + z * w * (S5 + z * S6);
    let v = z * x;
    x - ((z * (0.5 * y - v * r) - y) - v * S1)
}

const C1: f64 = 4.166_666_666_666_660_190_37e-2;
const C2: f64 = -1.388_888_888_887_410_957_49e-3;
const C3: f64 = 2.480_158_728_947_672_941_78e-5;
const C4: f64 = -2.755_731_435_139_066_330_35e-7;
const C5: f64 = 2.087_572_321_298_174_827_90e-9;
const C6: f64 = -1.135_964_755_778_819_482_65e-11;

/// musl `__cos` on a reduced argument pair, `|x| ≤ π/4`.
#[inline]
fn k_cos(x: f64, y: f64) -> f64 {
    let z = x * x;
    let w = z * z;
    let r = z * (C1 + z * (C2 + z * C3)) + w * w * (C4 + z * (C5 + z * C6));
    let hz = 0.5 * z;
    let w = 1.0 - hz;
    w + (((1.0 - w) - hz) + (z * r - x * y))
}

/// Branch-free sine core: unconditional reduction, both kernels, quadrant
/// select. Valid for `|x| < ` [`REDUCE_MAX`]; garbage (but finite/NaN,
/// never a panic) outside.
#[inline]
fn sin_core(x: f64) -> f64 {
    let (n, y0, y1) = rem_pio2(x);
    let s = k_sin(y0, y1);
    let c = k_cos(y0, y1);
    let r = if n & 1 == 0 { s } else { c };
    let sign = if n & 2 != 0 { -1.0 } else { 1.0 };
    r * sign
}

/// Branch-free cosine core (see [`sin_core`]).
#[inline]
fn cos_core(x: f64) -> f64 {
    let (n, y0, y1) = rem_pio2(x);
    let s = k_sin(y0, y1);
    let c = k_cos(y0, y1);
    let r = if n & 1 == 0 { c } else { s };
    // cos quadrants: +c, -s, -c, +s — negate for n mod 4 in {1, 2}.
    let sign = if (n + 1) & 2 != 0 { -1.0 } else { 1.0 };
    r * sign
}

/// Sine. ≤ 1 ULP for `|x| < 1e6`; host-libm fallback beyond (and for
/// ±∞/NaN, which correctly yield NaN).
#[inline]
pub fn sin(x: f64) -> f64 {
    if x.abs() < REDUCE_MAX {
        sin_core(x)
    } else {
        host_sin(x)
    }
}

/// Cosine (see [`sin`]).
#[inline]
pub fn cos(x: f64) -> f64 {
    if x.abs() < REDUCE_MAX {
        cos_core(x)
    } else {
        host_cos(x)
    }
}

#[inline(never)]
fn host_sin(x: f64) -> f64 {
    x.sin()
}

#[inline(never)]
fn host_cos(x: f64) -> f64 {
    x.cos()
}

#[inline(never)]
fn host_tan(x: f64) -> f64 {
    x.tan()
}

/// Whether any lane falls outside the trig reduction range — a
/// non-short-circuiting OR fold, so the scan itself vectorizes and the
/// per-lane patch branch is only ever taken on planes that need it.
#[inline]
fn any_outside_reduce_range(src: &[f64]) -> bool {
    src.iter()
        .fold(false, |acc, &x| acc | !(x.abs() < REDUCE_MAX))
}

/// Plane sine: branch-free vectorizable pass, then a patch pass for the
/// rare huge/non-finite lanes. `src` must not alias `dst`.
#[inline]
pub fn sin_plane(src: &[f64], dst: &mut [f64]) {
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = sin_core(x);
    }
    if any_outside_reduce_range(src) {
        for (d, &x) in dst.iter_mut().zip(src) {
            if !(x.abs() < REDUCE_MAX) {
                *d = host_sin(x);
            }
        }
    }
}

/// Plane cosine (see [`sin_plane`]).
#[inline]
pub fn cos_plane(src: &[f64], dst: &mut [f64]) {
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = cos_core(x);
    }
    if any_outside_reduce_range(src) {
        for (d, &x) in dst.iter_mut().zip(src) {
            if !(x.abs() < REDUCE_MAX) {
                *d = host_cos(x);
            }
        }
    }
}

const T0: f64 = 3.333_333_333_333_340_919_86e-1;
const T1: f64 = 1.333_333_333_332_012_426_99e-1;
const T2: f64 = 5.396_825_397_622_605_213_77e-2;
const T3: f64 = 2.186_948_829_485_954_245_99e-2;
const T4: f64 = 8.863_239_823_599_300_057_37e-3;
const T5: f64 = 3.592_079_107_591_312_353_56e-3;
const T6: f64 = 1.456_209_454_325_290_255_16e-3;
const T7: f64 = 5.880_412_408_202_640_968_74e-4;
const T8: f64 = 2.464_631_348_184_699_068_12e-4;
const T9: f64 = 7.817_944_429_395_570_923_00e-5;
const T10: f64 = 7.140_724_913_826_081_903_05e-5;
const T11: f64 = -1.855_863_748_552_754_566_54e-5;
const T12: f64 = 2.590_730_518_636_337_128_84e-5;

const PIO4: f64 = 7.853_981_633_974_482_789_99e-1;
const PIO4_LO: f64 = 3.061_616_997_868_383_017_93e-17;

/// musl `__tan` on a reduced argument pair. `odd` selects `tan` (false)
/// or `-1/tan` (true) for odd quadrants.
#[inline]
fn k_tan(mut x: f64, mut y: f64, odd: bool) -> f64 {
    let big = x.abs() >= 0.674_509_803_921_568_6; // 0x3FE59428 high word
    let neg = x.is_sign_negative();
    if big {
        if neg {
            x = -x;
            y = -y;
        }
        x = (PIO4 - x) + (PIO4_LO - y);
        y = 0.0;
    }
    let z = x * x;
    let w = z * z;
    let r = T1 + w * (T3 + w * (T5 + w * (T7 + w * (T9 + w * T11))));
    let v = z * (T2 + w * (T4 + w * (T6 + w * (T8 + w * (T10 + w * T12)))));
    let s = z * x;
    let r = y + z * (s * (r + v) + y) + s * T0;
    let w = x + r;
    if big {
        let sgn = 1.0 - 2.0 * odd as i64 as f64;
        let v = sgn - 2.0 * (x + (r - w * w / (w + sgn)));
        return if neg { -v } else { v };
    }
    if !odd {
        return w;
    }
    // -1/(x+r) with a split-word correction (a plain divide is ~2 ULP).
    let w0 = f64::from_bits(w.to_bits() & 0xFFFF_FFFF_0000_0000);
    let v = r - (w0 - x);
    let a = -1.0 / w;
    let a0 = f64::from_bits(a.to_bits() & 0xFFFF_FFFF_0000_0000);
    a0 + a * (1.0 + a0 * w0 + a0 * v)
}

/// Tangent. ≤ 2 ULP for `|x| < 1e6`; host-libm fallback beyond.
#[inline]
pub fn tan(x: f64) -> f64 {
    if !(x.abs() < REDUCE_MAX) {
        return host_tan(x);
    }
    if x.abs() < std::f64::consts::FRAC_PI_4 {
        return k_tan(x, 0.0, false);
    }
    let (n, y0, y1) = rem_pio2(x);
    k_tan(y0, y1, n & 1 != 0)
}

// ---------------------------------------------------------------------------
// asin / acos / atan
// ---------------------------------------------------------------------------

const PIO2_HI: f64 = 1.570_796_326_794_896_558_00e0;
const PIO2_LO: f64 = 6.123_233_995_736_766_035_87e-17;
const PIO4_HI: f64 = 7.853_981_633_974_482_789_99e-1;
const PS0: f64 = 1.666_666_666_666_666_574_15e-1;
const PS1: f64 = -3.255_658_186_224_009_154_05e-1;
const PS2: f64 = 2.012_125_321_348_629_258_81e-1;
const PS3: f64 = -4.005_553_450_067_941_140_27e-2;
const PS4: f64 = 7.915_349_942_898_145_321_76e-4;
const PS5: f64 = 3.479_331_075_960_211_675_70e-5;
const QS1: f64 = -2.403_394_911_734_414_218_78e0;
const QS2: f64 = 2.020_945_760_233_505_694_71e0;
const QS3: f64 = -6.882_839_716_054_532_930_30e-1;
const QS4: f64 = 7.703_815_055_590_193_527_91e-2;

/// The shared asin/acos rational kernel `R(t) ≈ (asin(√t·…))`.
#[inline]
fn asin_r(t: f64) -> f64 {
    let p = t * (PS0 + t * (PS1 + t * (PS2 + t * (PS3 + t * (PS4 + t * PS5)))));
    let q = 1.0 + t * (QS1 + t * (QS2 + t * (QS3 + t * QS4)));
    p / q
}

/// Arcsine. ≤ 1 ULP; `NaN` outside `[-1, 1]`.
#[inline]
pub fn asin(x: f64) -> f64 {
    let ax = x.abs();
    if ax >= 1.0 {
        if ax == 1.0 {
            // asin(±1) = ±π/2 exactly (to double precision).
            return x * PIO2_HI + x * PIO2_LO;
        }
        return f64::NAN;
    }
    if ax < 0.5 {
        if ax < 7.450_580_596_923_828e-9 {
            // |x| < 2^-27: asin(x) rounds to x.
            return x;
        }
        let t = x * x;
        return x + x * asin_r(t);
    }
    // |x| in [0.5, 1): asin(x) = π/2 - 2·asin(√((1-|x|)/2)).
    let w = 1.0 - ax;
    let t = w * 0.5;
    let r = asin_r(t);
    let s = t.sqrt();
    let t = if ax >= 0.975 {
        PIO2_HI - (2.0 * (s + s * r) - PIO2_LO)
    } else {
        let f = f64::from_bits(s.to_bits() & 0xFFFF_FFFF_0000_0000);
        let c = (t - f * f) / (s + f);
        let p = 2.0 * s * r - (PIO2_LO - 2.0 * c);
        let q = PIO4_HI - 2.0 * f;
        PIO4_HI - (p - q)
    };
    if x.is_sign_negative() {
        -t
    } else {
        t
    }
}

const PI: f64 = 3.141_592_653_589_793_116_00e0;

/// Arccosine. ≤ 1 ULP; `NaN` outside `[-1, 1]`.
#[inline]
pub fn acos(x: f64) -> f64 {
    let ax = x.abs();
    if ax >= 1.0 {
        if x == 1.0 {
            return 0.0;
        }
        if x == -1.0 {
            return PI + 2.0 * PIO2_LO;
        }
        return f64::NAN;
    }
    if ax < 0.5 {
        if ax < 6.938_893_903_907_228e-18 {
            // |x| < 2^-57: acos(x) rounds to π/2.
            return PIO2_HI + PIO2_LO;
        }
        let z = x * x;
        let r = asin_r(z);
        return PIO2_HI - (x - (PIO2_LO - x * r));
    }
    if x <= -0.5 {
        let z = (1.0 + x) * 0.5;
        let r = asin_r(z);
        let s = z.sqrt();
        let w = r * s - PIO2_LO;
        return PI - 2.0 * (s + w);
    }
    // x > 0.5.
    let z = (1.0 - x) * 0.5;
    let s = z.sqrt();
    let df = f64::from_bits(s.to_bits() & 0xFFFF_FFFF_0000_0000);
    let c = (z - df * df) / (s + df);
    let r = asin_r(z);
    let w = r * s + c;
    2.0 * (df + w)
}

const ATAN_HI: [f64; 4] = [
    4.636_476_090_008_060_935_15e-1,
    7.853_981_633_974_482_789_99e-1,
    9.827_937_232_473_290_540_82e-1,
    1.570_796_326_794_896_558_00e0,
];
const ATAN_LO: [f64; 4] = [
    2.269_877_745_296_168_709_24e-17,
    3.061_616_997_868_383_017_93e-17,
    1.390_331_103_123_099_845_16e-17,
    6.123_233_995_736_766_035_87e-17,
];
const AT: [f64; 11] = [
    3.333_333_333_333_293_180_27e-1,
    -1.999_999_999_987_648_324_76e-1,
    1.428_571_427_250_346_637_11e-1,
    -1.111_111_040_546_235_578_80e-1,
    9.090_887_133_436_506_561_96e-2,
    -7.691_876_205_044_829_994_95e-2,
    6.661_073_137_387_531_206_69e-2,
    -5.833_570_133_790_573_486_45e-2,
    4.976_877_994_615_932_360_17e-2,
    -3.653_157_274_421_691_552_70e-2,
    1.628_582_011_536_578_236_23e-2,
];

/// Arctangent. ≤ 1 ULP; total (`atan(±∞) = ±π/2`).
#[inline]
pub fn atan(x: f64) -> f64 {
    let ax = x.abs();
    if ax >= 7.378_697_629_483_820_6e19 {
        // |x| >= 2^66 (or inf): π/2 to the last bit; NaN propagates.
        if x.is_nan() {
            return x;
        }
        let z = ATAN_HI[3] + ATAN_LO[3];
        return if x.is_sign_negative() { -z } else { z };
    }
    let (id, xr): (i64, f64) = if ax < 0.4375 {
        if ax < 1.862_645_149_230_957e-9 {
            // |x| < 2^-29: atan(x) rounds to x.
            return x;
        }
        (-1, x)
    } else if ax < 1.1875 {
        if ax < 0.6875 {
            (0, (2.0 * ax - 1.0) / (2.0 + ax))
        } else {
            (1, (ax - 1.0) / (ax + 1.0))
        }
    } else if ax < 2.4375 {
        (2, (ax - 1.5) / (1.0 + 1.5 * ax))
    } else {
        (3, -1.0 / ax)
    };
    let z = xr * xr;
    let w = z * z;
    let s1 = z * (AT[0] + w * (AT[2] + w * (AT[4] + w * (AT[6] + w * (AT[8] + w * AT[10])))));
    let s2 = w * (AT[1] + w * (AT[3] + w * (AT[5] + w * (AT[7] + w * AT[9]))));
    if id < 0 {
        return x - x * (s1 + s2);
    }
    let zz = ATAN_HI[id as usize] - ((xr * (s1 + s2) - ATAN_LO[id as usize]) - xr);
    if x.is_sign_negative() {
        -zz
    } else {
        zz
    }
}

// ---------------------------------------------------------------------------
// Blocked mat_mul
// ---------------------------------------------------------------------------

/// Stock-strip width: 8 f64 accumulators live in registers across the
/// whole inner-product loop.
const MM_STRIP: usize = 8;

/// `out = A · B` over `d×d` matrix planes of `k` stocks, accumulated into
/// `scratch` (so the output register may alias an input) and copied to
/// `m[o..]`. Register-blocked: each output plane is produced in strips of
/// `MM_STRIP` (8) stocks whose running sums stay in a stack array for the
/// entire `kk` loop, eliminating the per-term scratch read-modify-write of
/// the naive triple loop. Per (row, column, stock) the products are still
/// added in ascending `kk` order — bit-identical to the naive loop and to
/// the lockstep kernel.
#[inline]
pub fn mat_mul_planes(
    m: &mut [f64],
    scratch: &mut [f64],
    a: usize,
    b: usize,
    o: usize,
    d: usize,
    k: usize,
) {
    let d2k = d * d * k;
    let sm = &mut scratch[..d2k];
    for r in 0..d {
        for c in 0..d {
            let so = (r * d + c) * k;
            let mut i0 = 0;
            while i0 + MM_STRIP <= k {
                let mut acc = [0.0f64; MM_STRIP];
                for kk in 0..d {
                    let ma = a + (r * d + kk) * k + i0;
                    let mb = b + (kk * d + c) * k + i0;
                    let (xa, xb) = (&m[ma..ma + MM_STRIP], &m[mb..mb + MM_STRIP]);
                    for j in 0..MM_STRIP {
                        acc[j] += xa[j] * xb[j];
                    }
                }
                sm[so + i0..so + i0 + MM_STRIP].copy_from_slice(&acc);
                i0 += MM_STRIP;
            }
            if i0 < k {
                let w = k - i0;
                let mut acc = [0.0f64; MM_STRIP];
                for kk in 0..d {
                    let ma = a + (r * d + kk) * k + i0;
                    let mb = b + (kk * d + c) * k + i0;
                    for j in 0..w {
                        acc[j] += m[ma + j] * m[mb + j];
                    }
                }
                sm[so + i0..so + i0 + w].copy_from_slice(&acc[..w]);
            }
        }
    }
    m[o..o + d2k].copy_from_slice(sm);
}

// ---------------------------------------------------------------------------
// Reusable ranking
// ---------------------------------------------------------------------------

/// Monotone `u64` image of an `f64` for rank sorting: finite values map
/// order-preservingly (sign-magnitude flipped into unsigned order), every
/// NaN maps to `u64::MAX` so NaNs sort last deterministically. `-0.0`
/// keys strictly below `+0.0`, which is harmless for ranks: the two are
/// `==` and tie groups are averaged over equal *values*.
#[inline]
pub fn rank_key(x: f64) -> u64 {
    if x.is_nan() {
        return u64::MAX;
    }
    let b = x.to_bits();
    let m = ((b as i64) >> 63) as u64;
    b ^ (m | 0x8000_0000_0000_0000)
}

/// Per-instruction argsort permutation cache for the `rel_rank*` kernels.
///
/// Each rank instruction in a compiled program owns a *row* (assigned at
/// lower time, [`crate::compile::CompiledInstr::slot`]); a row stores the
/// concatenated per-group permutations from the instruction's previous
/// execution plus the group kind they were built for. Because the sort
/// order — `(rank_key(value), stock index)` — is a *strict total order*,
/// the sorted permutation is unique, so reusing (or discarding) a cached
/// permutation can never change the output bits: a still-sorted cache is
/// verified in O(group len) and reused, anything else falls back to the
/// full `sort_unstable`. Fixed-capacity: all storage is allocated at
/// construction (the evaluation hot path is pinned allocation-free).
#[derive(Debug)]
pub struct RankCache {
    k: usize,
    rows: usize,
    /// `rows × k` permutation storage (group-segment concatenation).
    perms: Vec<u32>,
    /// Group kind each row was last seeded for (`u8::MAX` = unseeded).
    kinds: Vec<u8>,
    /// `k` scratch plane of sort keys for the current instruction.
    keys: Vec<u64>,
    /// Group segments served from a still-sorted cached permutation
    /// (telemetry; no-op without the `obs` feature).
    reused: crate::telemetry::Count,
    /// Group segments that fell back to the full argsort.
    resorted: crate::telemetry::Count,
}

impl RankCache {
    /// A cache with `rows` permutation rows over `k` stocks.
    pub fn new(rows: usize, k: usize) -> RankCache {
        RankCache {
            k,
            rows,
            perms: vec![0; rows * k],
            kinds: vec![u8::MAX; rows],
            keys: vec![0; k],
            reused: crate::telemetry::Count::default(),
            resorted: crate::telemetry::Count::default(),
        }
    }

    /// Number of permutation rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Takes the `(reused, resorted)` group-segment counts accumulated
    /// since the last call (always `(0, 0)` without the `obs` feature).
    pub fn take_rank_stats(&mut self) -> (u64, u64) {
        let stats = (self.reused.get(), self.resorted.get());
        self.reused = crate::telemetry::Count::default();
        self.resorted = crate::telemetry::Count::default();
        stats
    }

    /// Writes normalized average ranks of `values[member]` into
    /// `out[member]` for every group, reusing row `row`'s cached
    /// permutations when they are still sorted for today's values.
    /// Output-bit-identical to [`crate::relation::rank_within`] over the
    /// same groups.
    pub fn rank_groups(
        &mut self,
        row: usize,
        kind: u8,
        groups: &GroupSlices<'_>,
        values: &[f64],
        out: &mut [f64],
    ) {
        debug_assert!(row < self.rows);
        debug_assert_eq!(values.len(), self.k);
        for (key, &x) in self.keys.iter_mut().zip(values) {
            *key = rank_key(x);
        }
        let keys = &self.keys[..];
        let row_buf = &mut self.perms[row * self.k..(row + 1) * self.k];
        if self.kinds[row] != kind {
            // (Re)seed the row with the group member lists — any valid
            // permutation works as a starting point.
            let mut off = 0;
            for members in groups.iter() {
                row_buf[off..off + members.len()].copy_from_slice(members);
                off += members.len();
            }
            self.kinds[row] = kind;
        }
        let mut off = 0;
        for members in groups.iter() {
            let n = members.len();
            let seg = &mut row_buf[off..off + n];
            off += n;
            if n == 1 {
                out[members[0] as usize] = 0.5;
                continue;
            }
            let sorted = seg.windows(2).all(|w| {
                let (p, q) = (w[0], w[1]);
                (keys[p as usize], p) <= (keys[q as usize], q)
            });
            if sorted {
                self.reused.inc();
            } else {
                // Correctness fallback: the full argsort. The comparator
                // is the same strict total order, so it lands on the same
                // unique permutation a fresh sort would.
                self.resorted.inc();
                seg.sort_unstable_by(|&p, &q| {
                    keys[p as usize].cmp(&keys[q as usize]).then(p.cmp(&q))
                });
            }
            let denom = (n - 1) as f64;
            let mut i = 0;
            while i < n {
                let mut j = i;
                let xi = values[seg[i] as usize];
                while j + 1 < n && values[seg[j + 1] as usize] == xi {
                    j += 1;
                }
                let avg = (i + j) as f64 / 2.0 / denom;
                for t in i..=j {
                    out[seg[t] as usize] = avg;
                }
                i = j + 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_edges() {
        assert_eq!(exp(0.0), 1.0);
        assert_eq!(exp(f64::NEG_INFINITY), 0.0);
        assert_eq!(exp(f64::INFINITY), f64::INFINITY);
        assert_eq!(exp(1000.0), f64::INFINITY);
        assert_eq!(exp(-1000.0), 0.0);
        assert!(exp(f64::NAN).is_nan());
        // exp(1) lands within the documented 1-ULP bound of E.
        let ulps = exp(1.0).to_bits().abs_diff(std::f64::consts::E.to_bits());
        assert!(ulps <= 1, "exp(1) is {ulps} ULP from E");
    }

    #[test]
    fn ln_edges() {
        assert_eq!(ln(1.0), 0.0);
        assert_eq!(ln(0.0), f64::NEG_INFINITY);
        assert_eq!(ln(-0.0), f64::NEG_INFINITY);
        assert!(ln(-1.0).is_nan());
        assert!(ln(f64::NEG_INFINITY).is_nan());
        assert_eq!(ln(f64::INFINITY), f64::INFINITY);
        assert!(ln(f64::NAN).is_nan());
        assert_eq!(ln(std::f64::consts::E), 1.0);
        // Subnormal pre-scale path.
        let sub = f64::from_bits(123);
        assert!((ln(sub) - sub.ln()).abs() < 1e-12);
    }

    #[test]
    fn trig_edges() {
        assert_eq!(sin(0.0), 0.0);
        assert_eq!(cos(0.0), 1.0);
        assert_eq!(tan(0.0), 0.0);
        assert!(sin(f64::INFINITY).is_nan());
        assert!(cos(f64::NEG_INFINITY).is_nan());
        assert!(tan(f64::NAN).is_nan());
        // Fallback region agrees with libm bitwise.
        for &x in &[1.0e7, -3.9e12, 1.0e300] {
            assert_eq!(sin(x).to_bits(), x.sin().to_bits());
            assert_eq!(cos(x).to_bits(), x.cos().to_bits());
            assert_eq!(tan(x).to_bits(), x.tan().to_bits());
        }
    }

    #[test]
    fn inverse_trig_edges() {
        assert_eq!(asin(1.0), std::f64::consts::FRAC_PI_2);
        assert_eq!(asin(-1.0), -std::f64::consts::FRAC_PI_2);
        assert!(asin(1.5).is_nan());
        assert!(asin(f64::NAN).is_nan());
        assert_eq!(acos(1.0), 0.0);
        assert!((acos(-1.0) - std::f64::consts::PI).abs() < 1e-15);
        assert!(acos(-1.0000000001).is_nan());
        assert_eq!(atan(f64::INFINITY), std::f64::consts::FRAC_PI_2);
        assert_eq!(atan(f64::NEG_INFINITY), -std::f64::consts::FRAC_PI_2);
        assert!(atan(f64::NAN).is_nan());
        assert_eq!(atan(0.0), 0.0);
    }

    #[test]
    fn rank_key_orders_like_total_order_with_nan_last() {
        let vals = [
            f64::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            1.0e-308,
            2.5,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(rank_key(w[0]) < rank_key(w[1]), "{} vs {}", w[0], w[1]);
        }
        assert_eq!(rank_key(f64::NAN), u64::MAX);
        assert_eq!(rank_key(-f64::NAN), u64::MAX);
        assert!(rank_key(f64::INFINITY) < u64::MAX);
    }

    #[test]
    fn mat_mul_planes_matches_naive() {
        let (d, k) = (5, 11); // k deliberately not a strip multiple
        let d2k = d * d * k;
        // m holds planes A (offset 0), B (offset d2k), out (offset 2·d2k).
        let mut m = vec![0.0; 3 * d2k];
        for (i, x) in m.iter_mut().take(2 * d2k).enumerate() {
            *x = ((i * 37 % 101) as f64 - 50.0) / 7.0;
        }
        let mut naive = vec![0.0; d2k];
        for r in 0..d {
            for c in 0..d {
                for kk in 0..d {
                    for i in 0..k {
                        naive[(r * d + c) * k + i] +=
                            m[(r * d + kk) * k + i] * m[d2k + (kk * d + c) * k + i];
                    }
                }
            }
        }
        let mut scratch = vec![0.0; d2k];
        mat_mul_planes(&mut m, &mut scratch, 0, d2k, 2 * d2k, d, k);
        for (a, b) in m[2 * d2k..].iter().zip(&naive) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn rank_cache_reuse_is_bit_identical_to_fresh_sort() {
        use crate::relation::rank_within;
        let k = 16;
        let group: Vec<u32> = (0..k as u32).collect();
        let mut cache = RankCache::new(2, k);
        let mut vals: Vec<f64> = (0..k).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        vals[3] = f64::NAN;
        vals[7] = vals[2]; // a tie
        let mut out_cached = vec![0.0; k];
        let mut out_fresh = vec![0.0; k];
        for round in 0..4 {
            // Perturb slightly without changing much order; round 2 shuffles hard.
            if round == 2 {
                vals.reverse();
            }
            let groups = GroupSlices::Single(&group);
            cache.rank_groups(0, 0, &groups, &vals, &mut out_cached);
            rank_within(&group, &vals, &mut out_fresh, &mut Vec::new());
            for (a, b) in out_cached.iter().zip(&out_fresh) {
                assert_eq!(a.to_bits(), b.to_bits(), "round {round}");
            }
        }
    }
}
