//! The lockstep cross-sectional interpreter.
//!
//! RelationOps make an alpha's computation for one stock depend on the
//! *same instruction's* intermediate value on every other stock at the same
//! timestep (paper Figure 4). The interpreter therefore executes
//! instruction-by-instruction across all stocks ("lockstep"): non-relation
//! instructions run per-stock against that stock's [`MemoryBank`];
//! RelationOps gather the input scalar from every bank, apply the group
//! kernel ([`crate::relation`]), and scatter the results back.
//!
//! Execution schedule over a dataset (paper §2/§3):
//!
//! ```text
//! Setup()                          once per stock (banks zeroed first)
//! per training day t:
//!     m0 <- X[stock, t];  Predict();  s0 <- y[stock, t];  Update()
//! per validation/test day t:
//!     m0 <- X[stock, t];  Predict();  collect s1
//! ```
//!
//! Registers persist across days, which is what gives evolved alphas their
//! `S3_{t-1}`-style recurrences and lets `Update()`-written registers act
//! as trained parameters during inference.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use alphaevolve_market::Dataset;

use crate::config::AlphaConfig;
use crate::instruction::Instruction;
use crate::memory::{MemoryBank, INPUT, LABEL, PREDICTION};
use crate::op::execute_local;
use crate::program::AlphaProgram;
use crate::relation::{demean_within, rank_within, GroupIndex};

/// Executes alpha programs over every stock of a dataset in lockstep.
pub struct Interpreter<'a> {
    dataset: &'a Dataset,
    groups: &'a GroupIndex,
    mems: Vec<MemoryBank>,
    rngs: Vec<SmallRng>,
    scratch_v: Vec<f64>,
    scratch_m: Vec<f64>,
    gather: Vec<f64>,
    scatter: Vec<f64>,
    rank_scratch: Vec<u32>,
    base_seed: u64,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter with zeroed banks.
    ///
    /// # Panics
    /// If the dataset's feature count or window disagrees with `cfg.dim`,
    /// or the group index covers a different stock count.
    pub fn new(
        cfg: &AlphaConfig,
        dataset: &'a Dataset,
        groups: &'a GroupIndex,
        seed: u64,
    ) -> Interpreter<'a> {
        assert_eq!(
            dataset.n_features(),
            cfg.dim,
            "dataset features must equal cfg.dim"
        );
        assert_eq!(
            dataset.window(),
            cfg.dim,
            "dataset window must equal cfg.dim"
        );
        assert_eq!(
            groups.n_stocks(),
            dataset.n_stocks(),
            "group index / dataset mismatch"
        );
        let k = dataset.n_stocks();
        let mems = (0..k)
            .map(|_| MemoryBank::new(cfg.n_scalars, cfg.n_vectors, cfg.n_matrices, cfg.dim))
            .collect();
        let rngs = (0..k).map(|i| stock_rng(seed, i)).collect();
        Interpreter {
            dataset,
            groups,
            mems,
            rngs,
            scratch_v: vec![0.0; cfg.dim],
            scratch_m: vec![0.0; cfg.dim * cfg.dim],
            gather: vec![0.0; k],
            scatter: vec![0.0; k],
            rank_scratch: Vec::with_capacity(k),
            base_seed: seed,
        }
    }

    /// Zeroes all banks and reseeds the per-stock RNG streams, returning
    /// the interpreter to its freshly-constructed state.
    pub fn reset(&mut self) {
        for (i, mem) in self.mems.iter_mut().enumerate() {
            mem.reset();
            self.rngs[i] = stock_rng(self.base_seed, i);
        }
    }

    /// Number of stocks executed in lockstep.
    pub fn n_stocks(&self) -> usize {
        self.mems.len()
    }

    /// Read access to one stock's bank (tests / diagnostics).
    pub fn bank(&self, stock: usize) -> &MemoryBank {
        &self.mems[stock]
    }

    fn load_input(&mut self, day: usize) {
        for (i, mem) in self.mems.iter_mut().enumerate() {
            self.dataset.fill_window(i, day, mem.mat_mut(INPUT));
        }
    }

    fn load_labels(&mut self, day: usize) {
        for (i, mem) in self.mems.iter_mut().enumerate() {
            mem.s[LABEL] = self.dataset.label(i, day);
        }
    }

    /// Runs one function body in lockstep across all stocks.
    pub fn run_function(&mut self, instrs: &[Instruction]) {
        for instr in instrs {
            if let Some(rel) = instr.op.relation_group() {
                let in_reg = instr.in1 as usize;
                let out_reg = instr.out as usize;
                for (k, mem) in self.mems.iter().enumerate() {
                    self.gather[k] = mem.s[in_reg];
                }
                let is_rank = instr.op.is_rank();
                for members in self.groups.groups(rel).iter() {
                    if is_rank {
                        rank_within(
                            members,
                            &self.gather,
                            &mut self.scatter,
                            &mut self.rank_scratch,
                        );
                    } else {
                        demean_within(members, &self.gather, &mut self.scatter);
                    }
                }
                for (k, mem) in self.mems.iter_mut().enumerate() {
                    mem.s[out_reg] = self.scatter[k];
                }
            } else {
                for (k, mem) in self.mems.iter_mut().enumerate() {
                    execute_local(
                        instr,
                        mem,
                        &mut self.rngs[k],
                        &mut self.scratch_v,
                        &mut self.scratch_m,
                    );
                }
            }
        }
    }

    /// Runs `Setup()` once for every stock.
    pub fn run_setup(&mut self, prog: &AlphaProgram) {
        self.run_function(&prog.setup);
    }

    /// One training step: load inputs, predict, load labels, update.
    /// `run_update = false` skips the parameter update (the paper's `_P`
    /// ablation of Table 4).
    pub fn train_day(&mut self, prog: &AlphaProgram, day: usize, run_update: bool) {
        self.load_input(day);
        self.run_function(&prog.predict);
        if run_update {
            self.load_labels(day);
            self.run_function(&prog.update);
        }
    }

    /// One inference step: load inputs, predict, and write each stock's
    /// `s1` into `out` (must have length `n_stocks`).
    pub fn predict_day(&mut self, prog: &AlphaProgram, day: usize, out: &mut [f64]) {
        self.load_input(day);
        self.run_function(&prog.predict);
        for (k, mem) in self.mems.iter().enumerate() {
            out[k] = mem.s[PREDICTION];
        }
    }
}

fn stock_rng(seed: u64, stock: usize) -> SmallRng {
    // Distinct, deterministic stream per stock (golden-ratio stride).
    SmallRng::seed_from_u64(seed ^ (stock as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use alphaevolve_market::{features::FeatureSet, generator::MarketConfig, SplitSpec};

    fn tiny_dataset() -> Dataset {
        let md = MarketConfig {
            n_stocks: 12,
            n_days: 120,
            seed: 11,
            n_sectors: 3,
            ..Default::default()
        }
        .generate();
        Dataset::build(&md, &FeatureSet::paper(), SplitSpec::paper_ratios()).unwrap()
    }

    fn cfg() -> AlphaConfig {
        AlphaConfig::default()
    }

    fn instr(op: Op, in1: u8, in2: u8, out: u8) -> Instruction {
        Instruction::new(op, in1, in2, out, [0.0; 2], [0; 2])
    }

    #[test]
    fn mean_alpha_predicts_finite_values() {
        let ds = tiny_dataset();
        let groups = GroupIndex::from_universe(ds.universe());
        let cfg = cfg();
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![instr(Op::MMean, 0, 0, 1)],
            update: vec![Instruction::nop()],
        };
        let mut interp = Interpreter::new(&cfg, &ds, &groups, 0);
        interp.run_setup(&prog);
        let mut out = vec![0.0; ds.n_stocks()];
        let day = ds.valid_days().start;
        interp.predict_day(&prog, day, &mut out);
        assert!(out.iter().all(|x| x.is_finite()));
        // Predictions differ across stocks (different feature windows).
        assert!(out.iter().any(|&x| (x - out[0]).abs() > 1e-12));
    }

    #[test]
    fn relation_rank_outputs_are_normalized_ranks() {
        let ds = tiny_dataset();
        let groups = GroupIndex::from_universe(ds.universe());
        let cfg = cfg();
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![instr(Op::MMean, 0, 0, 2), instr(Op::RelRank, 2, 0, 1)],
            update: vec![Instruction::nop()],
        };
        let mut interp = Interpreter::new(&cfg, &ds, &groups, 0);
        interp.run_setup(&prog);
        let mut out = vec![0.0; ds.n_stocks()];
        interp.predict_day(&prog, ds.valid_days().start, &mut out);
        assert!(out.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let mut sorted = out.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Without ties ranks are the full ladder 0, 1/(K-1), ..., 1.
        let k = ds.n_stocks();
        for (i, &r) in sorted.iter().enumerate() {
            assert!(
                (r - i as f64 / (k - 1) as f64).abs() < 1e-9,
                "rank ladder broken at {i}: {r}"
            );
        }
    }

    #[test]
    fn sector_demean_sums_to_zero_within_sector() {
        let ds = tiny_dataset();
        let groups = GroupIndex::from_universe(ds.universe());
        let cfg = cfg();
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![
                instr(Op::MMean, 0, 0, 2),
                instr(Op::RelDemeanSector, 2, 0, 1),
            ],
            update: vec![Instruction::nop()],
        };
        let mut interp = Interpreter::new(&cfg, &ds, &groups, 0);
        interp.run_setup(&prog);
        let mut out = vec![0.0; ds.n_stocks()];
        interp.predict_day(&prog, ds.valid_days().start, &mut out);
        for s in 0..ds.universe().n_sectors() {
            let members = ds
                .universe()
                .sector_members(alphaevolve_market::SectorId(s as u16));
            let sum: f64 = members.iter().map(|&m| out[m as usize]).sum();
            assert!(sum.abs() < 1e-9, "sector {s} demeaned sum {sum}");
        }
    }

    #[test]
    fn state_persists_across_days() {
        // Counter alpha: s1 = s1 + 1 each predict — after n days s1 = n.
        let ds = tiny_dataset();
        let groups = GroupIndex::from_universe(ds.universe());
        let cfg = cfg();
        let prog = AlphaProgram {
            setup: vec![Instruction::new(Op::SConst, 0, 0, 2, [1.0, 0.0], [0; 2])],
            predict: vec![instr(Op::SAdd, 1, 2, 1)],
            update: vec![Instruction::nop()],
        };
        let mut interp = Interpreter::new(&cfg, &ds, &groups, 0);
        interp.run_setup(&prog);
        let mut out = vec![0.0; ds.n_stocks()];
        let start = ds.train_days().start;
        for (n, day) in (start..start + 5).enumerate() {
            interp.predict_day(&prog, day, &mut out);
            assert_eq!(out[0], (n + 1) as f64);
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let ds = tiny_dataset();
        let groups = GroupIndex::from_universe(ds.universe());
        let cfg = cfg();
        let prog = AlphaProgram {
            setup: vec![Instruction::new(Op::SGauss, 0, 0, 2, [0.0, 1.0], [0; 2])],
            predict: vec![instr(Op::MMean, 0, 0, 3), instr(Op::SMul, 3, 2, 1)],
            update: vec![Instruction::nop()],
        };
        let mut interp = Interpreter::new(&cfg, &ds, &groups, 42);
        let day = ds.train_days().start;
        let mut a = vec![0.0; ds.n_stocks()];
        interp.run_setup(&prog);
        interp.predict_day(&prog, day, &mut a);
        interp.reset();
        let mut b = vec![0.0; ds.n_stocks()];
        interp.run_setup(&prog);
        interp.predict_day(&prog, day, &mut b);
        assert_eq!(a, b, "reset + rerun must reproduce the stochastic stream");
    }

    #[test]
    fn update_changes_inference_via_parameters() {
        // Update accumulates labels into s3; predict uses it. With updates
        // the prediction drifts; without (ablation) it stays fixed.
        let ds = tiny_dataset();
        let groups = GroupIndex::from_universe(ds.universe());
        let cfg = cfg();
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![instr(Op::MMean, 0, 0, 2), instr(Op::SAdd, 2, 3, 1)],
            update: vec![instr(Op::SAdd, 3, 0, 3)], // s3 += label
        };
        let run = |run_update: bool| {
            let mut interp = Interpreter::new(&cfg, &ds, &groups, 0);
            interp.run_setup(&prog);
            for day in ds.train_days() {
                interp.train_day(&prog, day, run_update);
            }
            let mut out = vec![0.0; ds.n_stocks()];
            interp.predict_day(&prog, ds.valid_days().start, &mut out);
            out
        };
        let with = run(true);
        let without = run(false);
        assert_ne!(with, without, "parameters must influence inference");
    }
}
