//! The cross-sectional interpreters: columnar (production) and lockstep
//! (bitwise reference).
//!
//! RelationOps make an alpha's computation for one stock depend on the
//! *same instruction's* intermediate value on every other stock at the same
//! timestep (paper Figure 4), so execution must proceed
//! instruction-by-instruction across all stocks. Two engines implement
//! that contract:
//!
//! * [`ColumnarInterpreter`] — the production engine. Registers live in a
//!   stock-major [`RegisterFile`] (every register element is one
//!   contiguous `[f64; n_stocks]` plane), and programs are first lowered
//!   to a [`CompiledProgram`]: dead code
//!   stripped, register offsets pre-resolved. The `Op` dispatch then runs
//!   **once per instruction** — each local op is a tight loop over the
//!   stock axis (auto-vectorizable), and RelationOps rank/demean the
//!   contiguous scalar plane directly, with zero gather/scatter. The day's
//!   input load is a handful of contiguous block copies from the shared
//!   [`DayMajorPanel`] instead of `n_stocks` strided window gathers.
//! * [`Interpreter`] — the lockstep reference. Non-relation instructions
//!   are re-dispatched per stock against that stock's [`MemoryBank`];
//!   RelationOps gather the input scalar from every bank, apply the group
//!   kernel ([`crate::relation`]), and scatter the results back. It is
//!   kept as the semantics oracle: the columnar engine must match it
//!   **bitwise** (same f64 operations in the same order per stock, same
//!   per-stock RNG streams) — property-tested across random programs in
//!   `crates/core/tests/properties.rs`.
//!
//! Execution schedule over a dataset (paper §2/§3), identical for both:
//!
//! ```text
//! Setup()                          once per stock (registers zeroed first)
//! per training day t:
//!     m0 <- X[stock, t];  Predict();  s0 <- y[stock, t];  Update()
//! per validation/test day t:
//!     m0 <- X[stock, t];  Predict();  collect s1
//! ```
//!
//! Registers persist across days, which is what gives evolved alphas their
//! `S3_{t-1}`-style recurrences and lets `Update()`-written registers act
//! as trained parameters during inference.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use alphaevolve_market::rngutil::normal;
use alphaevolve_market::{Dataset, DayMajorPanel};

use crate::compile::{CompiledInstr, CompiledProgram};
use crate::config::AlphaConfig;
#[cfg(any(test, feature = "reference-oracle"))]
use crate::instruction::Instruction;
use crate::kernels::RankCache;
#[cfg(any(test, feature = "reference-oracle"))]
use crate::memory::MemoryBank;
use crate::memory::{RegisterFile, INPUT, LABEL, PREDICTION};
#[cfg(any(test, feature = "reference-oracle"))]
use crate::op::execute_local;
use crate::op::{uniform_in, Op};
#[cfg(any(test, feature = "reference-oracle"))]
use crate::program::AlphaProgram;
use crate::relation::{demean_dense, demean_within, rank_within, GroupIndex, GroupSlices};

/// Executes alpha programs over every stock of a dataset in lockstep.
///
/// Reference/oracle only — gated behind the default-on `reference-oracle`
/// cargo feature so hot binaries can compile the lockstep engine (and its
/// per-stock [`MemoryBank`] layout) out entirely with
/// `--no-default-features`.
#[cfg(any(test, feature = "reference-oracle"))]
pub struct Interpreter<'a> {
    dataset: &'a Dataset,
    groups: &'a GroupIndex,
    mems: Vec<MemoryBank>,
    rngs: Vec<SmallRng>,
    scratch_v: Vec<f64>,
    scratch_m: Vec<f64>,
    gather: Vec<f64>,
    scatter: Vec<f64>,
    rank_scratch: Vec<u32>,
    base_seed: u64,
}

#[cfg(any(test, feature = "reference-oracle"))]
impl<'a> Interpreter<'a> {
    /// Creates an interpreter with zeroed banks.
    ///
    /// # Panics
    /// If the dataset's feature count or window disagrees with `cfg.dim`,
    /// or the group index covers a different stock count.
    pub fn new(
        cfg: &AlphaConfig,
        dataset: &'a Dataset,
        groups: &'a GroupIndex,
        seed: u64,
    ) -> Interpreter<'a> {
        assert_eq!(
            dataset.n_features(),
            cfg.dim,
            "dataset features must equal cfg.dim"
        );
        assert_eq!(
            dataset.window(),
            cfg.dim,
            "dataset window must equal cfg.dim"
        );
        assert_eq!(
            groups.n_stocks(),
            dataset.n_stocks(),
            "group index / dataset mismatch"
        );
        let k = dataset.n_stocks();
        let mems = (0..k)
            .map(|_| MemoryBank::new(cfg.n_scalars, cfg.n_vectors, cfg.n_matrices, cfg.dim))
            .collect();
        let rngs = (0..k).map(|i| stock_rng(seed, i)).collect();
        Interpreter {
            dataset,
            groups,
            mems,
            rngs,
            scratch_v: vec![0.0; cfg.dim],
            scratch_m: vec![0.0; cfg.dim * cfg.dim],
            gather: vec![0.0; k],
            scatter: vec![0.0; k],
            rank_scratch: Vec::with_capacity(k),
            base_seed: seed,
        }
    }

    /// Zeroes all banks and reseeds the per-stock RNG streams, returning
    /// the interpreter to its freshly-constructed state.
    pub fn reset(&mut self) {
        for (i, mem) in self.mems.iter_mut().enumerate() {
            mem.reset();
            self.rngs[i] = stock_rng(self.base_seed, i);
        }
    }

    /// Number of stocks executed in lockstep.
    pub fn n_stocks(&self) -> usize {
        self.mems.len()
    }

    /// Read access to one stock's bank (tests / diagnostics).
    pub fn bank(&self, stock: usize) -> &MemoryBank {
        &self.mems[stock]
    }

    fn load_input(&mut self, day: usize) {
        for (i, mem) in self.mems.iter_mut().enumerate() {
            self.dataset.fill_window(i, day, mem.mat_mut(INPUT));
        }
    }

    fn load_labels(&mut self, day: usize) {
        for (i, mem) in self.mems.iter_mut().enumerate() {
            mem.s[LABEL] = self.dataset.label(i, day);
        }
    }

    /// Runs one function body in lockstep across all stocks.
    pub fn run_function(&mut self, instrs: &[Instruction]) {
        for instr in instrs {
            if let Some(rel) = instr.op.relation_group() {
                let in_reg = instr.in1 as usize;
                let out_reg = instr.out as usize;
                for (k, mem) in self.mems.iter().enumerate() {
                    self.gather[k] = mem.s[in_reg];
                }
                let is_rank = instr.op.is_rank();
                for members in self.groups.groups(rel).iter() {
                    if is_rank {
                        rank_within(
                            members,
                            &self.gather,
                            &mut self.scatter,
                            &mut self.rank_scratch,
                        );
                    } else {
                        demean_within(members, &self.gather, &mut self.scatter);
                    }
                }
                for (k, mem) in self.mems.iter_mut().enumerate() {
                    mem.s[out_reg] = self.scatter[k];
                }
            } else {
                for (k, mem) in self.mems.iter_mut().enumerate() {
                    execute_local(
                        instr,
                        mem,
                        &mut self.rngs[k],
                        &mut self.scratch_v,
                        &mut self.scratch_m,
                    );
                }
            }
        }
    }

    /// Runs `Setup()` once for every stock.
    pub fn run_setup(&mut self, prog: &AlphaProgram) {
        self.run_function(&prog.setup);
    }

    /// One training step: load inputs, predict, load labels, update.
    /// `run_update = false` skips the parameter update (the paper's `_P`
    /// ablation of Table 4).
    pub fn train_day(&mut self, prog: &AlphaProgram, day: usize, run_update: bool) {
        self.load_input(day);
        self.run_function(&prog.predict);
        if run_update {
            self.load_labels(day);
            self.run_function(&prog.update);
        }
    }

    /// One inference step: load inputs, predict, and write each stock's
    /// `s1` into `out` (must have length `n_stocks`).
    pub fn predict_day(&mut self, prog: &AlphaProgram, day: usize, out: &mut [f64]) {
        self.load_input(day);
        self.run_function(&prog.predict);
        for (k, mem) in self.mems.iter().enumerate() {
            out[k] = mem.s[PREDICTION];
        }
    }
}

fn stock_rng(seed: u64, stock: usize) -> SmallRng {
    // Distinct, deterministic stream per stock (golden-ratio stride).
    // Shared by both engines: per-stock draws must be identical streams.
    SmallRng::seed_from_u64(seed ^ (stock as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Executes compiled alpha programs over every stock of a dataset with
/// stock-major (columnar) register planes. See the module docs for how it
/// relates to the lockstep reference [`Interpreter`].
pub struct ColumnarInterpreter<'a> {
    dataset: &'a Dataset,
    panel: &'a DayMajorPanel,
    groups: &'a GroupIndex,
    regs: RegisterFile,
    rngs: Vec<SmallRng>,
    /// `dim * n_stocks` temporary for kernels whose vector output may
    /// alias a vector input read at other element indices (`mat_vec`).
    scratch_v: Vec<f64>,
    /// `dim² * n_stocks` temporary for `mat_mul` / `m_transpose`.
    scratch_m: Vec<f64>,
    /// `n_stocks` accumulator plane for two-pass reductions (std kernels).
    lane: Vec<f64>,
    /// `n_stocks` RelationOp output plane. Persistent across instructions,
    /// mirroring the lockstep scatter buffer bit-for-bit even for group
    /// indices that do not cover every stock.
    rel_lane: Vec<f64>,
    rank_scratch: Vec<u32>,
    /// One permutation row per possible rank instruction
    /// (`max_setup_ops + max_predict_ops + max_update_ops`), addressed by
    /// [`CompiledInstr::slot`]. Preallocated so the hot path stays
    /// allocation-free.
    rank_cache: RankCache,
    base_seed: u64,
}

impl<'a> ColumnarInterpreter<'a> {
    /// Creates a columnar interpreter with zeroed register planes.
    ///
    /// `panel` must be the [`DayMajorPanel`] of `dataset` (the evaluator
    /// builds it once and shares it across workers).
    ///
    /// # Panics
    /// If the dataset's feature count or window disagrees with `cfg.dim`,
    /// the group index covers a different stock count, or `panel` does not
    /// match the dataset's shape.
    pub fn new(
        cfg: &AlphaConfig,
        dataset: &'a Dataset,
        panel: &'a DayMajorPanel,
        groups: &'a GroupIndex,
        seed: u64,
    ) -> ColumnarInterpreter<'a> {
        assert_eq!(
            dataset.n_features(),
            cfg.dim,
            "dataset features must equal cfg.dim"
        );
        assert_eq!(
            dataset.window(),
            cfg.dim,
            "dataset window must equal cfg.dim"
        );
        assert_eq!(
            groups.n_stocks(),
            dataset.n_stocks(),
            "group index / dataset mismatch"
        );
        assert!(
            panel.n_stocks() == dataset.n_stocks()
                && panel.n_features() == dataset.n_features()
                && panel.n_days() == dataset.panel().n_days(),
            "day-major panel / dataset mismatch"
        );
        let k = dataset.n_stocks();
        ColumnarInterpreter {
            dataset,
            panel,
            groups,
            regs: RegisterFile::new(cfg.n_scalars, cfg.n_vectors, cfg.n_matrices, cfg.dim, k),
            rngs: (0..k).map(|i| stock_rng(seed, i)).collect(),
            scratch_v: vec![0.0; cfg.dim * k],
            scratch_m: vec![0.0; cfg.dim * cfg.dim * k],
            lane: vec![0.0; k],
            rel_lane: vec![0.0; k],
            rank_scratch: Vec::with_capacity(k),
            rank_cache: RankCache::new(
                cfg.max_setup_ops + cfg.max_predict_ops + cfg.max_update_ops,
                k,
            ),
            base_seed: seed,
        }
    }

    /// Zeroes all register planes and reseeds the per-stock RNG streams,
    /// returning the interpreter to its freshly-constructed state.
    pub fn reset(&mut self) {
        self.regs.reset();
        self.rel_lane.fill(0.0);
        for (i, rng) in self.rngs.iter_mut().enumerate() {
            *rng = stock_rng(self.base_seed, i);
        }
    }

    /// Number of stocks executed per plane.
    pub fn n_stocks(&self) -> usize {
        self.regs.n_stocks()
    }

    /// Read access to the register planes (tests / diagnostics).
    pub fn registers(&self) -> &RegisterFile {
        &self.regs
    }

    /// Mutable access to the register planes. This exists for the serving
    /// layer, which restores a program's post-training plane snapshot into
    /// a shared interpreter before each batched predict; ordinary
    /// evaluation never needs it.
    pub fn registers_mut(&mut self) -> &mut RegisterFile {
        &mut self.regs
    }

    /// Captures the per-stock RNG stream states (one xoshiro state per
    /// stock), appending into `out` (cleared first). Pairs with
    /// [`ColumnarInterpreter::set_rng_states`] for serving-layer
    /// snapshot/restore of stochastic programs.
    pub fn rng_states_into(&self, out: &mut Vec<[u64; 4]>) {
        out.clear();
        out.extend(self.rngs.iter().map(SmallRng::state));
    }

    /// Restores per-stock RNG streams captured by
    /// [`ColumnarInterpreter::rng_states_into`]. Allocation-free.
    ///
    /// # Panics
    /// If `states.len()` differs from the stock count.
    pub fn set_rng_states(&mut self, states: &[[u64; 4]]) {
        assert_eq!(states.len(), self.rngs.len(), "rng state count mismatch");
        for (rng, &s) in self.rngs.iter_mut().zip(states) {
            *rng = SmallRng::from_state(s);
        }
    }

    /// Loads the day's input feature panel into the `m0` planes: one
    /// contiguous block copy per feature (the whole window × all stocks),
    /// instead of the lockstep path's per-stock strided window gather.
    fn load_input(&mut self, day: usize) {
        let k = self.regs.n_stocks();
        let w = self.dataset.window();
        let m0 = &mut self.regs.m[..self.dataset.n_features() * w * k];
        for f in 0..self.dataset.n_features() {
            // m0 element (row f, col c) is feature f at day `day - w + c`,
            // so elements f*w .. f*w+w map onto one contiguous source block.
            m0[f * w * k..(f + 1) * w * k].copy_from_slice(self.panel.window_block(f, day, w));
        }
        debug_assert_eq!(INPUT, 0, "m0 load assumes the input matrix is m0");
    }

    /// Loads the day's label cross-section into the `s0` plane: one copy.
    fn load_labels(&mut self, day: usize) {
        self.regs
            .s_plane_mut(LABEL)
            .copy_from_slice(self.panel.labels_row(day));
    }

    /// Runs one compiled function body across all stocks, dispatching each
    /// instruction exactly once.
    pub fn run_function(&mut self, instrs: &[CompiledInstr]) {
        run_instrs(
            instrs,
            &mut self.regs,
            self.groups,
            &mut self.rngs,
            &mut self.scratch_v,
            &mut self.scratch_m,
            &mut self.lane,
            &mut self.rel_lane,
            &mut self.rank_scratch,
            &mut self.rank_cache,
            0,
        );
    }

    /// Runs `Setup()` once for every stock.
    pub fn run_setup(&mut self, prog: &CompiledProgram) {
        self.run_function(&prog.setup);
    }

    /// Takes the rank cache's `(reused, resorted)` segment counts since
    /// the last call (telemetry; `(0, 0)` without the `obs` feature).
    pub fn take_rank_stats(&mut self) -> (u64, u64) {
        self.rank_cache.take_rank_stats()
    }

    /// One training step: load inputs, predict, load labels, update.
    /// `run_update = false` skips the parameter update (the paper's `_P`
    /// ablation of Table 4).
    pub fn train_day(&mut self, prog: &CompiledProgram, day: usize, run_update: bool) {
        self.load_input(day);
        self.run_function(&prog.predict);
        if run_update {
            self.load_labels(day);
            self.run_function(&prog.update);
        }
    }

    /// One inference step: load inputs, predict, and copy the prediction
    /// plane `s1` into `out` (must have length `n_stocks`).
    pub fn predict_day(&mut self, prog: &CompiledProgram, day: usize, out: &mut [f64]) {
        self.load_input(day);
        self.run_function(&prog.predict);
        out.copy_from_slice(self.regs.s_plane(PREDICTION));
    }

    /// Loads one day's input feature panel into `m0` without executing
    /// anything. The serving layer calls this once per day and then runs
    /// *several* compiled programs' predict bodies against the loaded
    /// panel ([`ColumnarInterpreter::run_predict`]), amortizing the
    /// feature-block copies across the batch.
    pub fn load_day(&mut self, day: usize) {
        self.load_input(day);
    }

    /// Runs the compiled predict body against the currently-loaded input
    /// (see [`ColumnarInterpreter::load_day`]).
    pub fn run_predict(&mut self, prog: &CompiledProgram) {
        self.run_function(&prog.predict);
    }

    /// Copies the prediction plane `s1` into `out` (length `n_stocks`).
    pub fn read_predictions(&self, out: &mut [f64]) {
        out.copy_from_slice(self.regs.s_plane(PREDICTION));
    }
}

/// Runs one compiled function body: the shared instruction walk behind
/// both [`ColumnarInterpreter::run_function`] and
/// [`BatchInterpreter::run_function_slot`]. `rngs` and `rel_lane` must be
/// exactly `n_stocks` long (the batched engine passes one slot's
/// sub-slices); the scratch buffers may be shared across slots because
/// every kernel fully overwrites what it reads within one instruction.
#[allow(clippy::too_many_arguments)]
fn run_instrs(
    instrs: &[CompiledInstr],
    regs: &mut RegisterFile,
    groups: &GroupIndex,
    rngs: &mut [SmallRng],
    scratch_v: &mut [f64],
    scratch_m: &mut [f64],
    lane: &mut [f64],
    rel_lane: &mut [f64],
    rank_scratch: &mut Vec<u32>,
    rank_cache: &mut RankCache,
    slot_base: usize,
) {
    let k = regs.n_stocks();
    debug_assert_eq!(rngs.len(), k);
    debug_assert_eq!(rel_lane.len(), k);
    for instr in instrs {
        if let Some(rel) = instr.op.relation_group() {
            // The scalar plane *is* the cross-section: rank/demean it
            // in place of the lockstep gather/scatter round trip.
            let is_rank = instr.op.is_rank();
            {
                let values = &regs.s[instr.a..instr.a + k];
                let row = slot_base + instr.slot as usize;
                if is_rank && row < rank_cache.rows() {
                    // Cached argsort: reuses this instruction's previous
                    // permutation when today's cross-section is still
                    // sorted under it; output-bit-identical to the
                    // uncached path below (the sort order is a strict
                    // total order, so the permutation is unique).
                    rank_cache.rank_groups(row, rel as u8, &groups.groups(rel), values, rel_lane);
                } else {
                    match groups.groups(rel) {
                        GroupSlices::Single(_) if !is_rank => {
                            demean_dense(values, rel_lane);
                        }
                        groups => {
                            for members in groups.iter() {
                                if is_rank {
                                    rank_within(members, values, rel_lane, rank_scratch);
                                } else {
                                    demean_within(members, values, rel_lane);
                                }
                            }
                        }
                    }
                }
            }
            regs.s[instr.o..instr.o + k].copy_from_slice(rel_lane);
        } else {
            execute_columnar(instr, regs, rngs, scratch_v, scratch_m, lane);
        }
    }
}

/// Executes a *tile* of up to `B` compiled candidates over one shared
/// day-major sweep: each day's feature block is loaded once, then every
/// slot's function bodies run against it before the sweep advances
/// (program-major inner walk over a stock-major plane).
///
/// # Tile memory layout
///
/// All `B` slots live in **one** [`RegisterFile`] whose planes keep the
/// production stock-major shape (`n_stocks = K`, `dim = d`), so the
/// columnar kernels run unchanged — slots are addressed purely through
/// compile-time offset relocation
/// ([`crate::compile::relocate_for_slot`]):
///
/// ```text
/// s buffer  [ slot0: n_scalars planes ][ slot1: … ] …      B·n_scalars·K
/// v buffer  [ slot0: n_vectors planes ][ slot1: … ] …      B·n_vectors·d·K
/// m buffer  [ SHARED m0 plane         ]                    d²·K
///           [ slot0: n_matrices planes (private m0 first) ]
///           [ slot1: … ] …                       (1 + B·n_matrices)·d²·K
/// ```
///
/// The shared `m0` plane at offset 0 is written only by
/// [`BatchInterpreter::load_day`] — one set of contiguous feature-block
/// copies amortized across the whole tile, which is the point of the
/// batch. A slot whose lowered program never writes `m0`
/// ([`crate::compile::writes_m0`]) reads the shared plane directly; a
/// clobbering slot is relocated onto its own private `m0` plane and the
/// caller stages a copy of the shared plane into it before each of that
/// slot's executions ([`BatchInterpreter::stage_private_m0`]). In debug
/// builds a shadow copy verifies no slot ever mutates the shared plane.
///
/// # RNG-stream contract
///
/// Slot `b` owns `K` private RNG streams seeded exactly like a dedicated
/// sequential interpreter's (`stock_rng(seed, stock)`) — slot index does
/// **not** enter the seed. Resetting a slot reseeds only that slot's
/// streams. This is what makes batched evaluation bit-identical to
/// sequential [`ColumnarInterpreter`] runs for stochastic programs: each
/// candidate sees the same per-stock draw sequence it would have seen
/// alone. The per-slot `rel_lane` planes are likewise private because the
/// lockstep scatter buffer they mirror persists *across* instructions.
///
/// Scratch buffers (`scratch_v`, `scratch_m`, `lane`, `rank_scratch`) are
/// shared across slots: every kernel overwrites them before reading
/// within a single instruction, so no state crosses a slot boundary.
pub struct BatchInterpreter<'a> {
    dataset: &'a Dataset,
    panel: &'a DayMajorPanel,
    groups: &'a GroupIndex,
    regs: RegisterFile,
    /// `batch · n_stocks` streams, slot-major: slot b's stock-i stream at
    /// `b·K + i`, seeded `stock_rng(seed, i)`.
    rngs: Vec<SmallRng>,
    scratch_v: Vec<f64>,
    scratch_m: Vec<f64>,
    lane: Vec<f64>,
    /// `batch · n_stocks` slot-major RelationOp output planes (persistent
    /// per slot across instructions, like the sequential `rel_lane`).
    rel_lanes: Vec<f64>,
    rank_scratch: Vec<u32>,
    /// `batch · max_slots` permutation rows: each tile slot owns a private
    /// row range (cross-sections differ per slot, so permutations must
    /// not be shared).
    rank_cache: RankCache,
    /// Rank-cache rows per tile slot
    /// (`max_setup_ops + max_predict_ops + max_update_ops`).
    max_slots: usize,
    base_seed: u64,
    batch: usize,
    n_scalars: usize,
    n_vectors: usize,
    n_matrices: usize,
    /// Debug shadow of the shared `m0` plane, asserted bitwise unchanged
    /// after every slot execution. Allocated once here so the release hot
    /// path stays allocation-free *and* debug runs stay allocation-free
    /// after warm-up (pinned by `tests/hot_path_alloc.rs`).
    #[cfg(debug_assertions)]
    m0_shadow: Vec<f64>,
}

impl<'a> BatchInterpreter<'a> {
    /// Creates a batched interpreter with `batch` zeroed register slots.
    ///
    /// # Panics
    /// Same shape checks as [`ColumnarInterpreter::new`], plus
    /// `batch >= 1`.
    pub fn new(
        cfg: &AlphaConfig,
        dataset: &'a Dataset,
        panel: &'a DayMajorPanel,
        groups: &'a GroupIndex,
        seed: u64,
        batch: usize,
    ) -> BatchInterpreter<'a> {
        assert!(batch >= 1, "batch must be at least 1");
        assert_eq!(
            dataset.n_features(),
            cfg.dim,
            "dataset features must equal cfg.dim"
        );
        assert_eq!(
            dataset.window(),
            cfg.dim,
            "dataset window must equal cfg.dim"
        );
        assert_eq!(
            groups.n_stocks(),
            dataset.n_stocks(),
            "group index / dataset mismatch"
        );
        assert!(
            panel.n_stocks() == dataset.n_stocks()
                && panel.n_features() == dataset.n_features()
                && panel.n_days() == dataset.panel().n_days(),
            "day-major panel / dataset mismatch"
        );
        let k = dataset.n_stocks();
        let d = cfg.dim;
        BatchInterpreter {
            dataset,
            panel,
            groups,
            regs: RegisterFile::new(
                batch * cfg.n_scalars,
                batch * cfg.n_vectors,
                1 + batch * cfg.n_matrices,
                d,
                k,
            ),
            rngs: (0..batch * k).map(|i| stock_rng(seed, i % k)).collect(),
            scratch_v: vec![0.0; d * k],
            scratch_m: vec![0.0; d * d * k],
            lane: vec![0.0; k],
            rel_lanes: vec![0.0; batch * k],
            rank_scratch: Vec::with_capacity(k),
            rank_cache: RankCache::new(
                batch * (cfg.max_setup_ops + cfg.max_predict_ops + cfg.max_update_ops),
                k,
            ),
            max_slots: cfg.max_setup_ops + cfg.max_predict_ops + cfg.max_update_ops,
            base_seed: seed,
            batch,
            n_scalars: cfg.n_scalars,
            n_vectors: cfg.n_vectors,
            n_matrices: cfg.n_matrices,
            #[cfg(debug_assertions)]
            m0_shadow: vec![0.0; d * d * k],
        }
    }

    /// Number of stocks executed per plane.
    pub fn n_stocks(&self) -> usize {
        self.regs.n_stocks()
    }

    /// Number of tile slots.
    pub fn batch(&self) -> usize {
        self.batch
    }

    #[inline]
    fn d2k(&self) -> usize {
        let d = self.regs.dim();
        d * d * self.regs.n_stocks()
    }

    /// Zeroes the shared `m0` input plane. Sequential evaluation starts
    /// from a fully-zeroed register file, so a `Setup()` body that *reads*
    /// `m0` must see zeros — without this, the previous tile's last-loaded
    /// day would leak into setup and break bit-identity.
    pub fn reset_shared_input(&mut self) {
        let d2k = self.d2k();
        self.regs.m[..d2k].fill(0.0);
        #[cfg(debug_assertions)]
        self.m0_shadow.copy_from_slice(&self.regs.m[..d2k]);
    }

    /// Returns slot `b` to its freshly-constructed state: zeroes the
    /// slot's scalar/vector/matrix regions and `rel_lane`, reseeds the
    /// slot's per-stock RNG streams. Other slots and the shared `m0`
    /// plane are untouched.
    pub fn reset_slot(&mut self, b: usize) {
        assert!(b < self.batch, "slot out of range");
        let k = self.regs.n_stocks();
        let d = self.regs.dim();
        let d2k = d * d * k;
        self.regs.s[b * self.n_scalars * k..(b + 1) * self.n_scalars * k].fill(0.0);
        self.regs.v[b * self.n_vectors * d * k..(b + 1) * self.n_vectors * d * k].fill(0.0);
        self.regs.m[(1 + b * self.n_matrices) * d2k..(1 + (b + 1) * self.n_matrices) * d2k]
            .fill(0.0);
        self.rel_lanes[b * k..(b + 1) * k].fill(0.0);
        for i in 0..k {
            self.rngs[b * k + i] = stock_rng(self.base_seed, i);
        }
    }

    /// Debug-only sweep guard: asserts slot `b`'s entire register region,
    /// `rel_lane`, and RNG streams match a freshly-reset slot. A stale
    /// `Update()`-written register leaking across tile slots is the most
    /// likely silent-corruption bug in batched evaluation, so the
    /// evaluator calls this after every [`BatchInterpreter::reset_slot`]
    /// in debug builds. Compiles to nothing in release builds.
    pub fn debug_assert_slot_clean(&self, b: usize) {
        #[cfg(debug_assertions)]
        {
            let k = self.regs.n_stocks();
            let d = self.regs.dim();
            let d2k = d * d * k;
            let clean = |buf: &[f64]| buf.iter().all(|x| x.to_bits() == 0);
            assert!(
                clean(&self.regs.s[b * self.n_scalars * k..(b + 1) * self.n_scalars * k]),
                "stale scalar state in tile slot {b}"
            );
            assert!(
                clean(&self.regs.v[b * self.n_vectors * d * k..(b + 1) * self.n_vectors * d * k]),
                "stale vector state in tile slot {b}"
            );
            assert!(
                clean(
                    &self.regs.m
                        [(1 + b * self.n_matrices) * d2k..(1 + (b + 1) * self.n_matrices) * d2k]
                ),
                "stale matrix state in tile slot {b}"
            );
            assert!(
                clean(&self.rel_lanes[b * k..(b + 1) * k]),
                "stale rel_lane state in tile slot {b}"
            );
            for i in 0..k {
                assert_eq!(
                    self.rngs[b * k + i].state(),
                    stock_rng(self.base_seed, i).state(),
                    "stale RNG stream for stock {i} in tile slot {b}"
                );
            }
        }
        #[cfg(not(debug_assertions))]
        let _ = b;
    }

    /// Loads one day's input feature panel into the **shared** `m0` plane
    /// — once per day for the whole tile.
    pub fn load_day(&mut self, day: usize) {
        let k = self.regs.n_stocks();
        let w = self.dataset.window();
        let m0 = &mut self.regs.m[..self.dataset.n_features() * w * k];
        for f in 0..self.dataset.n_features() {
            m0[f * w * k..(f + 1) * w * k].copy_from_slice(self.panel.window_block(f, day, w));
        }
        debug_assert_eq!(INPUT, 0, "m0 load assumes the input matrix is m0");
        #[cfg(debug_assertions)]
        {
            let d2k = self.d2k();
            self.m0_shadow.copy_from_slice(&self.regs.m[..d2k]);
        }
    }

    /// Copies the shared `m0` plane into slot `b`'s private `m0` plane.
    /// Required before each execution of a slot whose program writes `m0`
    /// (relocated with `share_m0 = false`); the feature plane fills the
    /// whole d²·K region, so this is one contiguous copy.
    pub fn stage_private_m0(&mut self, b: usize) {
        let d2k = self.d2k();
        let base = (1 + b * self.n_matrices) * d2k;
        let (shared, rest) = self.regs.m.split_at_mut(d2k);
        rest[base - d2k..base].copy_from_slice(shared);
    }

    /// Loads the day's label cross-section into slot `b`'s `s0` plane.
    pub fn load_labels_slot(&mut self, b: usize, day: usize) {
        let k = self.regs.n_stocks();
        let off = (b * self.n_scalars + LABEL) * k;
        self.regs.s[off..off + k].copy_from_slice(self.panel.labels_row(day));
    }

    /// Runs one compiled function body for tile slot `b`. The program
    /// must have been relocated onto slot `b`
    /// ([`crate::compile::relocate_for_slot`]).
    pub fn run_function_slot(&mut self, b: usize, instrs: &[CompiledInstr]) {
        let k = self.regs.n_stocks();
        run_instrs(
            instrs,
            &mut self.regs,
            self.groups,
            &mut self.rngs[b * k..(b + 1) * k],
            &mut self.scratch_v,
            &mut self.scratch_m,
            &mut self.lane,
            &mut self.rel_lanes[b * k..(b + 1) * k],
            &mut self.rank_scratch,
            &mut self.rank_cache,
            b * self.max_slots,
        );
        #[cfg(debug_assertions)]
        {
            let d2k = self.d2k();
            assert!(
                self.regs.m[..d2k]
                    .iter()
                    .zip(&self.m0_shadow)
                    .all(|(a, s)| a.to_bits() == s.to_bits()),
                "tile slot {b} clobbered the shared m0 plane"
            );
        }
    }

    /// Takes the rank cache's `(reused, resorted)` segment counts since
    /// the last call (telemetry; `(0, 0)` without the `obs` feature).
    pub fn take_rank_stats(&mut self) -> (u64, u64) {
        self.rank_cache.take_rank_stats()
    }

    /// Copies slot `b`'s prediction plane `s1` into `out` (length
    /// `n_stocks`).
    pub fn read_predictions_slot(&self, b: usize, out: &mut [f64]) {
        let k = self.regs.n_stocks();
        let off = (b * self.n_scalars + PREDICTION) * k;
        out.copy_from_slice(&self.regs.s[off..off + k]);
    }

    /// Captures slot `b`'s per-stock RNG stream states, appending into
    /// `out` (cleared first). Test hook for the RNG-stream contract.
    pub fn rng_states_into_slot(&self, b: usize, out: &mut Vec<[u64; 4]>) {
        let k = self.regs.n_stocks();
        out.clear();
        out.extend(self.rngs[b * k..(b + 1) * k].iter().map(SmallRng::state));
    }
}

/// Element-wise binary kernel within one register buffer: `n` is the whole
/// register size in elements (`n_stocks` for scalars, `dim · n_stocks` for
/// vectors, …). Alias-safe: `out[i]` depends only on index `i` of the
/// inputs, so overlapping registers behave like the lockstep scratch copy.
#[inline]
fn ew2(buf: &mut [f64], n: usize, a: usize, b: usize, o: usize, f: impl Fn(f64, f64) -> f64) {
    assert!(a + n <= buf.len() && b + n <= buf.len() && o + n <= buf.len());
    for i in 0..n {
        buf[o + i] = f(buf[a + i], buf[b + i]);
    }
}

/// Element-wise unary kernel within one register buffer (see [`ew2`]).
#[inline]
fn ew1(buf: &mut [f64], n: usize, a: usize, o: usize, f: impl Fn(f64) -> f64) {
    assert!(a + n <= buf.len() && o + n <= buf.len());
    for i in 0..n {
        buf[o + i] = f(buf[a + i]);
    }
}

/// Executes one non-relation compiled instruction against the columnar
/// register planes: a single dispatch, then tight loops over the stock
/// axis. Every kernel performs, per stock, exactly the same f64 operations
/// in the same order as [`execute_local`] on that stock's bank — that
/// invariant is what keeps the two engines bitwise interchangeable.
///
/// `scratch_v`/`scratch_m` must be at least `dim·K` / `dim²·K` long;
/// `lane` at least `K`.
fn execute_columnar(
    instr: &CompiledInstr,
    regs: &mut RegisterFile,
    rngs: &mut [SmallRng],
    scratch_v: &mut [f64],
    scratch_m: &mut [f64],
    lane: &mut [f64],
) {
    debug_assert!(
        !instr.op.is_relation(),
        "relation ops need cross-sectional execution"
    );
    let k = regs.n_stocks();
    let d = regs.dim();
    let dk = d * k;
    let d2k = d * d * k;
    let (a, b, o) = (instr.a, instr.b, instr.o);
    let [lit0, lit1] = instr.lit;
    let ix0 = instr.ix[0] as usize;
    let ix1 = instr.ix[1] as usize;
    let RegisterFile { s, v, m, .. } = regs;
    let (s, v, m) = (&mut s[..], &mut v[..], &mut m[..]);

    match instr.op {
        Op::NoOp => {}

        // -- scalar ----------------------------------------------------
        Op::SConst => s[o..o + k].fill(lit0),
        Op::SUniform => {
            for (i, rng) in rngs.iter_mut().enumerate() {
                s[o + i] = uniform_in(rng, lit0, lit1);
            }
        }
        Op::SGauss => {
            for (i, rng) in rngs.iter_mut().enumerate() {
                s[o + i] = normal(rng, lit0, lit1.abs());
            }
        }
        Op::SAdd => ew2(s, k, a, b, o, |x, y| x + y),
        Op::SSub => ew2(s, k, a, b, o, |x, y| x - y),
        Op::SMul => ew2(s, k, a, b, o, |x, y| x * y),
        Op::SDiv => ew2(s, k, a, b, o, |x, y| x / y),
        Op::SMin => ew2(s, k, a, b, o, f64::min),
        Op::SMax => ew2(s, k, a, b, o, f64::max),
        Op::SAbs => ew1(s, k, a, o, f64::abs),
        Op::SInv => ew1(s, k, a, o, |x| 1.0 / x),
        // Transcendentals run the shared polynomial kernels
        // ([`crate::kernels`]) over the whole plane. sin/cos/ln are
        // two-pass (branch-free core + rare-input patch pass), which needs
        // the original inputs after the first pass — and `o` may alias `a`
        // — so the source plane is staged through the `lane` scratch.
        Op::SSin => {
            lane[..k].copy_from_slice(&s[a..a + k]);
            crate::kernels::sin_plane(&lane[..k], &mut s[o..o + k]);
        }
        Op::SCos => {
            lane[..k].copy_from_slice(&s[a..a + k]);
            crate::kernels::cos_plane(&lane[..k], &mut s[o..o + k]);
        }
        Op::STan => ew1(s, k, a, o, crate::kernels::tan),
        Op::SArcSin => ew1(s, k, a, o, crate::kernels::asin),
        Op::SArcCos => ew1(s, k, a, o, crate::kernels::acos),
        Op::SArcTan => ew1(s, k, a, o, crate::kernels::atan),
        Op::SExp => ew1(s, k, a, o, crate::kernels::exp),
        Op::SLn => {
            lane[..k].copy_from_slice(&s[a..a + k]);
            crate::kernels::ln_plane(&lane[..k], &mut s[o..o + k]);
        }
        Op::SHeaviside => ew1(s, k, a, o, |x| if x > 0.0 { 1.0 } else { 0.0 }),

        // -- vector ----------------------------------------------------
        Op::VConst => v[o..o + dk].fill(lit0),
        Op::VUniform => {
            // Stock-outer so each stock draws its `dim` values in element
            // order, exactly like the lockstep fill of that stock's bank.
            for (i, rng) in rngs.iter_mut().enumerate() {
                for e in 0..d {
                    v[o + e * k + i] = uniform_in(rng, lit0, lit1);
                }
            }
        }
        Op::VGauss => {
            for (i, rng) in rngs.iter_mut().enumerate() {
                for e in 0..d {
                    v[o + e * k + i] = normal(rng, lit0, lit1.abs());
                }
            }
        }
        Op::VAdd => ew2(v, dk, a, b, o, |x, y| x + y),
        Op::VSub => ew2(v, dk, a, b, o, |x, y| x - y),
        Op::VMul => ew2(v, dk, a, b, o, |x, y| x * y),
        Op::VDiv => ew2(v, dk, a, b, o, |x, y| x / y),
        Op::VMin => ew2(v, dk, a, b, o, f64::min),
        Op::VMax => ew2(v, dk, a, b, o, f64::max),
        Op::VAbs => ew1(v, dk, a, o, f64::abs),
        Op::VHeaviside => ew1(v, dk, a, o, |x| if x > 0.0 { 1.0 } else { 0.0 }),
        Op::SVScale => {
            for e in 0..d {
                let (vo, vb) = (o + e * k, b + e * k);
                for i in 0..k {
                    v[vo + i] = s[a + i] * v[vb + i];
                }
            }
        }
        Op::VBroadcast => {
            for e in 0..d {
                v[o + e * k..o + (e + 1) * k].copy_from_slice(&s[a..a + k]);
            }
        }
        Op::VNorm => {
            s[o..o + k].fill(0.0);
            for e in 0..d {
                for i in 0..k {
                    let x = v[a + e * k + i];
                    s[o + i] += x * x;
                }
            }
            for x in &mut s[o..o + k] {
                *x = x.sqrt();
            }
        }
        Op::VMean => {
            reduce_sum(v, s, a, o, d, k);
            for x in &mut s[o..o + k] {
                *x /= d as f64;
            }
        }
        Op::VStd => population_std_planes(v, s, lane, a, o, d, k),
        Op::VSum => reduce_sum(v, s, a, o, d, k),
        Op::TsRank => {
            // Rank of the newest element (last slot) within the vector,
            // normalized to [0, 1]; ties count half.
            s[o..o + k].fill(0.0);
            let last = a + (d - 1) * k;
            for e in 0..d - 1 {
                for i in 0..k {
                    let x = v[a + e * k + i];
                    if x < v[last + i] {
                        s[o + i] += 1.0;
                    } else if x == v[last + i] {
                        s[o + i] += 0.5;
                    }
                }
            }
            for x in &mut s[o..o + k] {
                *x /= (d - 1) as f64;
            }
        }
        Op::VDot => {
            s[o..o + k].fill(0.0);
            for e in 0..d {
                for i in 0..k {
                    s[o + i] += v[a + e * k + i] * v[b + e * k + i];
                }
            }
        }
        Op::VGet => s[o..o + k].copy_from_slice(&v[a + ix0 * k..a + (ix0 + 1) * k]),
        Op::VOuter => {
            for r in 0..d {
                for c in 0..d {
                    let mo = o + (r * d + c) * k;
                    let (va, vb) = (a + r * k, b + c * k);
                    for i in 0..k {
                        m[mo + i] = v[va + i] * v[vb + i];
                    }
                }
            }
        }
        Op::MatVec => {
            // The vector output may alias the vector input, so accumulate
            // in scratch (same values as the lockstep scratch row sums).
            let sv = &mut scratch_v[..dk];
            sv.fill(0.0);
            for r in 0..d {
                for c in 0..d {
                    let (ma, vb, so) = (a + (r * d + c) * k, b + c * k, r * k);
                    for i in 0..k {
                        sv[so + i] += m[ma + i] * v[vb + i];
                    }
                }
            }
            v[o..o + dk].copy_from_slice(sv);
        }

        // -- matrix ----------------------------------------------------
        Op::MConst => m[o..o + d2k].fill(lit0),
        Op::MUniform => {
            for (i, rng) in rngs.iter_mut().enumerate() {
                for e in 0..d * d {
                    m[o + e * k + i] = uniform_in(rng, lit0, lit1);
                }
            }
        }
        Op::MGauss => {
            for (i, rng) in rngs.iter_mut().enumerate() {
                for e in 0..d * d {
                    m[o + e * k + i] = normal(rng, lit0, lit1.abs());
                }
            }
        }
        Op::MAdd => ew2(m, d2k, a, b, o, |x, y| x + y),
        Op::MSub => ew2(m, d2k, a, b, o, |x, y| x - y),
        Op::MMul => ew2(m, d2k, a, b, o, |x, y| x * y),
        Op::MDiv => ew2(m, d2k, a, b, o, |x, y| x / y),
        Op::MMin => ew2(m, d2k, a, b, o, f64::min),
        Op::MMax => ew2(m, d2k, a, b, o, f64::max),
        Op::MAbs => ew1(m, d2k, a, o, f64::abs),
        Op::MHeaviside => ew1(m, d2k, a, o, |x| if x > 0.0 { 1.0 } else { 0.0 }),
        Op::MTranspose => {
            let sm = &mut scratch_m[..d2k];
            for r in 0..d {
                for c in 0..d {
                    sm[(c * d + r) * k..(c * d + r + 1) * k]
                        .copy_from_slice(&m[a + (r * d + c) * k..a + (r * d + c + 1) * k]);
                }
            }
            m[o..o + d2k].copy_from_slice(sm);
        }
        // Register-blocked micro-kernel; accumulates in kk order per
        // (row, col, stock) — the lockstep kernel's exact summation order.
        Op::MatMul => crate::kernels::mat_mul_planes(m, scratch_m, a, b, o, d, k),
        Op::SMScale => {
            for e in 0..d * d {
                let (mo, mb) = (o + e * k, b + e * k);
                for i in 0..k {
                    m[mo + i] = s[a + i] * m[mb + i];
                }
            }
        }
        Op::MBroadcast => {
            for r in 0..d {
                for c in 0..d {
                    // axis 0: tile v across rows (row r is v);
                    // axis 1: tile v across columns (col c is v).
                    let src = a + if ix0 == 0 { c } else { r } * k;
                    m[o + (r * d + c) * k..o + (r * d + c + 1) * k]
                        .copy_from_slice(&v[src..src + k]);
                }
            }
        }
        Op::MNorm => {
            s[o..o + k].fill(0.0);
            for e in 0..d * d {
                for i in 0..k {
                    let x = m[a + e * k + i];
                    s[o + i] += x * x;
                }
            }
            for x in &mut s[o..o + k] {
                *x = x.sqrt();
            }
        }
        Op::MMean => {
            reduce_sum(m, s, a, o, d * d, k);
            for x in &mut s[o..o + k] {
                *x /= (d * d) as f64;
            }
        }
        Op::MStd => population_std_planes(m, s, lane, a, o, d * d, k),
        Op::MNormAxis | Op::MMeanAxis | Op::MStdAxis => {
            // axis 0 reduces over rows (output indexed by column), axis 1
            // over columns (output indexed by row) — NumPy convention.
            // Per output element, gather in the lockstep order.
            let stride = |e: usize, j: usize| a + if ix0 == 0 { j * d + e } else { e * d + j } * k;
            for e in 0..d {
                let vo = o + e * k;
                match instr.op {
                    Op::MNormAxis => {
                        v[vo..vo + k].fill(0.0);
                        for j in 0..d {
                            let src = stride(e, j);
                            for i in 0..k {
                                let x = m[src + i];
                                v[vo + i] += x * x;
                            }
                        }
                        for x in &mut v[vo..vo + k] {
                            *x = x.sqrt();
                        }
                    }
                    Op::MMeanAxis => {
                        v[vo..vo + k].fill(0.0);
                        for j in 0..d {
                            let src = stride(e, j);
                            for i in 0..k {
                                v[vo + i] += m[src + i];
                            }
                        }
                        for x in &mut v[vo..vo + k] {
                            *x /= d as f64;
                        }
                    }
                    _ => {
                        // Mean into `lane`, then squared deviations into
                        // the output plane — population_std's two passes.
                        lane[..k].fill(0.0);
                        for j in 0..d {
                            let src = stride(e, j);
                            for i in 0..k {
                                lane[i] += m[src + i];
                            }
                        }
                        for x in &mut lane[..k] {
                            *x /= d as f64;
                        }
                        v[vo..vo + k].fill(0.0);
                        for j in 0..d {
                            let src = stride(e, j);
                            for i in 0..k {
                                let dev = m[src + i] - lane[i];
                                v[vo + i] += dev * dev;
                            }
                        }
                        for x in &mut v[vo..vo + k] {
                            *x = (*x / d as f64).sqrt();
                        }
                    }
                }
            }
        }
        Op::MGet => {
            let src = a + (ix0 * d + ix1) * k;
            s[o..o + k].copy_from_slice(&m[src..src + k]);
        }
        Op::MGetRow => {
            for c in 0..d {
                let src = a + (ix0 * d + c) * k;
                v[o + c * k..o + (c + 1) * k].copy_from_slice(&m[src..src + k]);
            }
        }
        Op::MGetCol => {
            for r in 0..d {
                let src = a + (r * d + ix0) * k;
                v[o + r * k..o + (r + 1) * k].copy_from_slice(&m[src..src + k]);
            }
        }

        // -- relation ops: handled by the interpreter -------------------
        Op::RelRank
        | Op::RelRankSector
        | Op::RelRankIndustry
        | Op::RelDemean
        | Op::RelDemeanSector
        | Op::RelDemeanIndustry => {
            debug_assert!(false, "relation op reached execute_columnar");
        }
    }
}

/// Plane-wise sum reduction: `dst[o..o+k] = Σ_e src[a + e·k ..][..k]`,
/// accumulating elements in ascending order (the lockstep fold order).
#[inline]
fn reduce_sum(src: &[f64], dst: &mut [f64], a: usize, o: usize, n_elems: usize, k: usize) {
    dst[o..o + k].fill(0.0);
    for e in 0..n_elems {
        for i in 0..k {
            dst[o + i] += src[a + e * k + i];
        }
    }
}

/// Plane-wise population standard deviation over `n_elems` planes of
/// `src`, written to `dst[o..o+k]`; `lane` holds the per-stock mean.
/// Matches `population_std`'s two passes per stock exactly.
#[inline]
fn population_std_planes(
    src: &[f64],
    dst: &mut [f64],
    lane: &mut [f64],
    a: usize,
    o: usize,
    n_elems: usize,
    k: usize,
) {
    lane[..k].fill(0.0);
    for e in 0..n_elems {
        for i in 0..k {
            lane[i] += src[a + e * k + i];
        }
    }
    for x in &mut lane[..k] {
        *x /= n_elems as f64;
    }
    dst[o..o + k].fill(0.0);
    for e in 0..n_elems {
        for i in 0..k {
            let dev = src[a + e * k + i] - lane[i];
            dst[o + i] += dev * dev;
        }
    }
    for x in &mut dst[o..o + k] {
        *x = (*x / n_elems as f64).sqrt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use alphaevolve_market::{features::FeatureSet, generator::MarketConfig, SplitSpec};

    fn tiny_dataset() -> Dataset {
        let md = MarketConfig {
            n_stocks: 12,
            n_days: 120,
            seed: 11,
            n_sectors: 3,
            ..Default::default()
        }
        .generate();
        Dataset::build(&md, &FeatureSet::paper(), SplitSpec::paper_ratios()).unwrap()
    }

    fn cfg() -> AlphaConfig {
        AlphaConfig::default()
    }

    fn instr(op: Op, in1: u8, in2: u8, out: u8) -> Instruction {
        Instruction::new(op, in1, in2, out, [0.0; 2], [0; 2])
    }

    #[test]
    fn mean_alpha_predicts_finite_values() {
        let ds = tiny_dataset();
        let groups = GroupIndex::from_universe(ds.universe());
        let cfg = cfg();
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![instr(Op::MMean, 0, 0, 1)],
            update: vec![Instruction::nop()],
        };
        let mut interp = Interpreter::new(&cfg, &ds, &groups, 0);
        interp.run_setup(&prog);
        let mut out = vec![0.0; ds.n_stocks()];
        let day = ds.valid_days().start;
        interp.predict_day(&prog, day, &mut out);
        assert!(out.iter().all(|x| x.is_finite()));
        // Predictions differ across stocks (different feature windows).
        assert!(out.iter().any(|&x| (x - out[0]).abs() > 1e-12));
    }

    #[test]
    fn relation_rank_outputs_are_normalized_ranks() {
        let ds = tiny_dataset();
        let groups = GroupIndex::from_universe(ds.universe());
        let cfg = cfg();
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![instr(Op::MMean, 0, 0, 2), instr(Op::RelRank, 2, 0, 1)],
            update: vec![Instruction::nop()],
        };
        let mut interp = Interpreter::new(&cfg, &ds, &groups, 0);
        interp.run_setup(&prog);
        let mut out = vec![0.0; ds.n_stocks()];
        interp.predict_day(&prog, ds.valid_days().start, &mut out);
        assert!(out.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let mut sorted = out.clone();
        sorted.sort_by(f64::total_cmp);
        // Without ties ranks are the full ladder 0, 1/(K-1), ..., 1.
        let k = ds.n_stocks();
        for (i, &r) in sorted.iter().enumerate() {
            assert!(
                (r - i as f64 / (k - 1) as f64).abs() < 1e-9,
                "rank ladder broken at {i}: {r}"
            );
        }
    }

    #[test]
    fn sector_demean_sums_to_zero_within_sector() {
        let ds = tiny_dataset();
        let groups = GroupIndex::from_universe(ds.universe());
        let cfg = cfg();
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![
                instr(Op::MMean, 0, 0, 2),
                instr(Op::RelDemeanSector, 2, 0, 1),
            ],
            update: vec![Instruction::nop()],
        };
        let mut interp = Interpreter::new(&cfg, &ds, &groups, 0);
        interp.run_setup(&prog);
        let mut out = vec![0.0; ds.n_stocks()];
        interp.predict_day(&prog, ds.valid_days().start, &mut out);
        for s in 0..ds.universe().n_sectors() {
            let members = ds
                .universe()
                .sector_members(alphaevolve_market::SectorId(s as u16));
            let sum: f64 = members.iter().map(|&m| out[m as usize]).sum();
            assert!(sum.abs() < 1e-9, "sector {s} demeaned sum {sum}");
        }
    }

    #[test]
    fn state_persists_across_days() {
        // Counter alpha: s1 = s1 + 1 each predict — after n days s1 = n.
        let ds = tiny_dataset();
        let groups = GroupIndex::from_universe(ds.universe());
        let cfg = cfg();
        let prog = AlphaProgram {
            setup: vec![Instruction::new(Op::SConst, 0, 0, 2, [1.0, 0.0], [0; 2])],
            predict: vec![instr(Op::SAdd, 1, 2, 1)],
            update: vec![Instruction::nop()],
        };
        let mut interp = Interpreter::new(&cfg, &ds, &groups, 0);
        interp.run_setup(&prog);
        let mut out = vec![0.0; ds.n_stocks()];
        let start = ds.train_days().start;
        for (n, day) in (start..start + 5).enumerate() {
            interp.predict_day(&prog, day, &mut out);
            assert_eq!(out[0], (n + 1) as f64);
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let ds = tiny_dataset();
        let groups = GroupIndex::from_universe(ds.universe());
        let cfg = cfg();
        let prog = AlphaProgram {
            setup: vec![Instruction::new(Op::SGauss, 0, 0, 2, [0.0, 1.0], [0; 2])],
            predict: vec![instr(Op::MMean, 0, 0, 3), instr(Op::SMul, 3, 2, 1)],
            update: vec![Instruction::nop()],
        };
        let mut interp = Interpreter::new(&cfg, &ds, &groups, 42);
        let day = ds.train_days().start;
        let mut a = vec![0.0; ds.n_stocks()];
        interp.run_setup(&prog);
        interp.predict_day(&prog, day, &mut a);
        interp.reset();
        let mut b = vec![0.0; ds.n_stocks()];
        interp.run_setup(&prog);
        interp.predict_day(&prog, day, &mut b);
        assert_eq!(a, b, "reset + rerun must reproduce the stochastic stream");
    }

    /// Runs `prog` through both engines over `n_days` training days and
    /// `n_days` prediction days, asserting bitwise-equal predictions.
    fn assert_engines_match(prog: &AlphaProgram, seed: u64, n_days: usize) {
        let ds = tiny_dataset();
        let groups = GroupIndex::from_universe(ds.universe());
        let panel = DayMajorPanel::from_panel(ds.panel());
        let cfg = cfg();
        let compiled = crate::compile::compile(prog, &cfg, ds.n_stocks());
        let mut lock = Interpreter::new(&cfg, &ds, &groups, seed);
        let mut col = ColumnarInterpreter::new(&cfg, &ds, &panel, &groups, seed);
        lock.run_setup(prog);
        col.run_setup(&compiled);
        let k = ds.n_stocks();
        let (mut a, mut b) = (vec![0.0; k], vec![0.0; k]);
        for day in ds.train_days().take(n_days) {
            lock.train_day(prog, day, true);
            col.train_day(&compiled, day, true);
        }
        for day in ds.valid_days().take(n_days) {
            lock.predict_day(prog, day, &mut a);
            col.predict_day(&compiled, day, &mut b);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "engines diverged on day {day}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn columnar_matches_lockstep_on_relational_alpha() {
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![
                instr(Op::MMean, 0, 0, 2),
                instr(Op::RelRankSector, 2, 0, 3),
                instr(Op::RelDemeanIndustry, 3, 0, 4),
                instr(Op::RelRank, 4, 0, 1),
            ],
            update: vec![instr(Op::SAdd, 3, 0, 3)],
        };
        assert_engines_match(&prog, 5, 6);
    }

    #[test]
    fn columnar_matches_lockstep_on_stochastic_alpha() {
        // Stochastic draws in all three functions, including a *dead*
        // stochastic op (s9 unused) that must still advance the streams.
        let prog = AlphaProgram {
            setup: vec![
                Instruction::new(Op::MGauss, 0, 0, 1, [0.0, 0.5], [0; 2]),
                Instruction::new(Op::SUniform, 0, 0, 9, [-1.0, 1.0], [0; 2]),
            ],
            predict: vec![
                Instruction::new(Op::VUniform, 0, 0, 2, [-0.1, 0.1], [0; 2]),
                instr(Op::MatVec, 1, 2, 3),
                instr(Op::VMean, 3, 0, 2),
                instr(Op::MMean, 0, 0, 4),
                instr(Op::SAdd, 2, 4, 1),
            ],
            update: vec![
                Instruction::new(Op::SGauss, 0, 0, 5, [0.0, 1.0], [0; 2]),
                instr(Op::SMul, 5, 0, 6),
                instr(Op::SAdd, 1, 6, 1),
            ],
        };
        assert_engines_match(&prog, 99, 5);
    }

    #[test]
    fn columnar_matches_lockstep_on_nonfinite_intermediates() {
        // s2 = 0/0 = NaN feeds a relation rank and the prediction; the
        // NaN path (sort-last ranks, NaN demeans) must agree bitwise.
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![
                instr(Op::SDiv, 7, 7, 2), // 0/0 = NaN
                instr(Op::MMean, 0, 0, 3),
                instr(Op::SLn, 3, 0, 4), // ln of ±values -> NaN/-inf mix
                instr(Op::RelRank, 4, 0, 5),
                instr(Op::SAdd, 2, 5, 1),
            ],
            update: vec![Instruction::nop()],
        };
        assert_engines_match(&prog, 0, 4);
    }

    #[test]
    fn columnar_matrix_kernels_match_lockstep() {
        // Heavy matrix traffic: matmul, transpose, axis reductions, outer
        // products, extraction — the kernels with reordered loop nests.
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![
                instr(Op::MTranspose, 0, 0, 1),
                instr(Op::MatMul, 0, 1, 2),
                Instruction::new(Op::MStdAxis, 2, 0, 3, [0.0; 2], [1, 0]),
                Instruction::new(Op::MMeanAxis, 2, 0, 4, [0.0; 2], [0, 0]),
                instr(Op::VOuter, 3, 4, 1),
                Instruction::new(Op::MGetRow, 1, 0, 5, [0.0; 2], [2, 0]),
                instr(Op::TsRank, 5, 0, 2),
                instr(Op::MStd, 1, 0, 3),
                instr(Op::SAdd, 2, 3, 1),
            ],
            update: vec![Instruction::nop()],
        };
        assert_engines_match(&prog, 0, 4);
    }

    #[test]
    fn columnar_state_persists_across_days() {
        let ds = tiny_dataset();
        let groups = GroupIndex::from_universe(ds.universe());
        let panel = DayMajorPanel::from_panel(ds.panel());
        let cfg = cfg();
        let prog = AlphaProgram {
            setup: vec![Instruction::new(Op::SConst, 0, 0, 2, [1.0, 0.0], [0; 2])],
            predict: vec![instr(Op::SAdd, 1, 2, 1)],
            update: vec![Instruction::nop()],
        };
        let compiled = crate::compile::compile(&prog, &cfg, ds.n_stocks());
        let mut interp = ColumnarInterpreter::new(&cfg, &ds, &panel, &groups, 0);
        interp.run_setup(&compiled);
        let mut out = vec![0.0; ds.n_stocks()];
        let start = ds.train_days().start;
        for (n, day) in (start..start + 5).enumerate() {
            interp.predict_day(&compiled, day, &mut out);
            assert_eq!(out[0], (n + 1) as f64);
        }
    }

    #[test]
    fn columnar_reset_restores_initial_state() {
        let ds = tiny_dataset();
        let groups = GroupIndex::from_universe(ds.universe());
        let panel = DayMajorPanel::from_panel(ds.panel());
        let cfg = cfg();
        let prog = AlphaProgram {
            setup: vec![Instruction::new(Op::SGauss, 0, 0, 2, [0.0, 1.0], [0; 2])],
            predict: vec![instr(Op::MMean, 0, 0, 3), instr(Op::SMul, 3, 2, 1)],
            update: vec![Instruction::nop()],
        };
        let compiled = crate::compile::compile(&prog, &cfg, ds.n_stocks());
        let mut interp = ColumnarInterpreter::new(&cfg, &ds, &panel, &groups, 42);
        let day = ds.train_days().start;
        let mut a = vec![0.0; ds.n_stocks()];
        interp.run_setup(&compiled);
        interp.predict_day(&compiled, day, &mut a);
        interp.reset();
        let mut b = vec![0.0; ds.n_stocks()];
        interp.run_setup(&compiled);
        interp.predict_day(&compiled, day, &mut b);
        assert_eq!(a, b, "reset + rerun must reproduce the stochastic stream");
    }

    #[test]
    fn update_changes_inference_via_parameters() {
        // Update accumulates labels into s3; predict uses it. With updates
        // the prediction drifts; without (ablation) it stays fixed.
        let ds = tiny_dataset();
        let groups = GroupIndex::from_universe(ds.universe());
        let cfg = cfg();
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![instr(Op::MMean, 0, 0, 2), instr(Op::SAdd, 2, 3, 1)],
            update: vec![instr(Op::SAdd, 3, 0, 3)], // s3 += label
        };
        let run = |run_update: bool| {
            let mut interp = Interpreter::new(&cfg, &ds, &groups, 0);
            interp.run_setup(&prog);
            for day in ds.train_days() {
                interp.train_day(&prog, day, run_update);
            }
            let mut out = vec![0.0; ds.n_stocks()];
            interp.predict_day(&prog, ds.valid_days().start, &mut out);
            out
        };
        let with = run(true);
        let without = run(false);
        assert_ne!(with, without, "parameters must influence inference");
    }
}
