//! Mutations (paper §3, step 1).
//!
//! *"Two types of mutations are performed on the parent alpha to generate a
//! child alpha: (1) randomizing operands or OP(s) in all operations;
//! (2) inserting a random operation or removing an operation at a random
//! location of the alpha."* With probability `1 − mutation_prob` the child
//! is an unmutated copy (`mutation_prob = 0.9` in §5.2).
//!
//! Type (1) is implemented at three granularities, following AutoML-Zero:
//! re-randomize one whole instruction, re-randomize a single operand slot
//! (with constants perturbed multiplicatively rather than resampled), or
//! re-randomize an entire component function.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::config::AlphaConfig;
use crate::instruction::Instruction;
use crate::op::Op;
use crate::program::{AlphaProgram, FunctionId};

/// Relative weights of the five mutation actions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutationWeights {
    /// Re-sample one instruction wholesale.
    pub randomize_instruction: f64,
    /// Re-sample a single operand/literal/index slot.
    pub randomize_slot: f64,
    /// Re-sample every instruction of one function.
    pub randomize_function: f64,
    /// Insert a random instruction at a random location.
    pub insert: f64,
    /// Remove the instruction at a random location.
    pub remove: f64,
}

impl Default for MutationWeights {
    fn default() -> Self {
        MutationWeights {
            randomize_instruction: 0.25,
            randomize_slot: 0.25,
            randomize_function: 0.05,
            insert: 0.225,
            remove: 0.225,
        }
    }
}

/// Mutation policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutationConfig {
    /// Probability that any mutation happens at all (paper: 0.9).
    pub prob: f64,
    /// Action mix once a mutation happens.
    pub weights: MutationWeights,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig {
            prob: 0.9,
            weights: MutationWeights::default(),
        }
    }
}

/// Stateless mutator with per-function op pools (RelationOps are excluded
/// from `Setup()`, where no cross-section exists yet).
pub struct Mutator {
    cfg: AlphaConfig,
    mcfg: MutationConfig,
    setup_pool: Vec<Op>,
    full_pool: Vec<Op>,
}

impl Mutator {
    /// Builds a mutator for the given search space.
    pub fn new(cfg: AlphaConfig, mcfg: MutationConfig) -> Mutator {
        let full_pool: Vec<Op> = Op::ALL.to_vec();
        let setup_pool: Vec<Op> = Op::ALL
            .iter()
            .copied()
            .filter(|o| !o.is_relation())
            .collect();
        Mutator {
            cfg,
            mcfg,
            setup_pool,
            full_pool,
        }
    }

    /// The op pool legal in function `f`.
    pub fn pool(&self, f: FunctionId) -> &[Op] {
        match f {
            FunctionId::Setup => &self.setup_pool,
            _ => &self.full_pool,
        }
    }

    fn pick_function(&self, rng: &mut SmallRng) -> FunctionId {
        FunctionId::ALL[rng.gen_range(0..3)]
    }

    /// Produces a child program. The parent is never modified.
    pub fn mutate(&self, rng: &mut SmallRng, parent: &AlphaProgram) -> AlphaProgram {
        let mut child = parent.clone();
        if rng.gen::<f64>() >= self.mcfg.prob {
            return child;
        }
        let w = self.mcfg.weights;
        let table = [
            (w.randomize_instruction, Action::RandomizeInstruction),
            (w.randomize_slot, Action::RandomizeSlot),
            (w.randomize_function, Action::RandomizeFunction),
            (w.insert, Action::Insert),
            (w.remove, Action::Remove),
        ];
        let total: f64 = table.iter().map(|(p, _)| p).sum();
        // A handful of retries lets an inapplicable action (e.g. remove at
        // the minimum size) fall through to another draw.
        for _ in 0..16 {
            let mut x = rng.gen::<f64>() * total;
            let mut action = Action::Remove;
            for (prob, candidate) in table {
                if x < prob {
                    action = candidate;
                    break;
                }
                x -= prob;
            }
            if self.apply(rng, &mut child, action) {
                break;
            }
        }
        child
    }

    fn apply(&self, rng: &mut SmallRng, prog: &mut AlphaProgram, action: Action) -> bool {
        let f = self.pick_function(rng);
        let pool: &[Op] = self.pool(f);
        let cfg = &self.cfg;
        match action {
            Action::RandomizeInstruction => {
                let instrs = prog.function_mut(f);
                if instrs.is_empty() {
                    return false;
                }
                let i = rng.gen_range(0..instrs.len());
                instrs[i] = Instruction::random(rng, pool, cfg);
                true
            }
            Action::RandomizeSlot => {
                let instrs = prog.function_mut(f);
                if instrs.is_empty() {
                    return false;
                }
                let i = rng.gen_range(0..instrs.len());
                let n = instrs[i].n_mutable_slots();
                if n == 0 {
                    return false; // a bare noop has nothing to tweak
                }
                let slot = rng.gen_range(0..n);
                instrs[i].randomize_slot(rng, slot, cfg);
                true
            }
            Action::RandomizeFunction => {
                let instrs = prog.function_mut(f);
                if instrs.is_empty() {
                    return false;
                }
                for instr in instrs.iter_mut() {
                    *instr = Instruction::random(rng, pool, cfg);
                }
                true
            }
            Action::Insert => {
                let max = AlphaProgram::max_ops(cfg, f);
                let instrs = prog.function_mut(f);
                if instrs.len() >= max {
                    return false;
                }
                let at = rng.gen_range(0..=instrs.len());
                instrs.insert(at, Instruction::random(rng, pool, cfg));
                true
            }
            Action::Remove => {
                let instrs = prog.function_mut(f);
                if instrs.len() <= cfg.min_ops {
                    return false;
                }
                let at = rng.gen_range(0..instrs.len());
                instrs.remove(at);
                true
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Action {
    RandomizeInstruction,
    RandomizeSlot,
    RandomizeFunction,
    Insert,
    Remove,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::SeedableRng;

    fn mutator() -> Mutator {
        Mutator::new(AlphaConfig::default(), MutationConfig::default())
    }

    #[test]
    fn children_always_validate() {
        let m = mutator();
        let cfg = AlphaConfig::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut prog = init::domain_expert(&cfg);
        for _ in 0..3000 {
            prog = m.mutate(&mut rng, &prog);
            prog.validate(&cfg)
                .expect("mutated program must stay valid");
        }
    }

    #[test]
    fn respects_size_limits_under_insert_pressure() {
        let cfg = AlphaConfig::default();
        let mcfg = MutationConfig {
            prob: 1.0,
            weights: MutationWeights {
                randomize_instruction: 0.0,
                randomize_slot: 0.0,
                randomize_function: 0.0,
                insert: 1.0,
                remove: 0.0,
            },
        };
        let m = Mutator::new(cfg, mcfg);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut prog = init::noop(&cfg);
        for _ in 0..500 {
            prog = m.mutate(&mut rng, &prog);
        }
        assert!(prog.setup.len() <= cfg.max_setup_ops);
        assert!(prog.predict.len() <= cfg.max_predict_ops);
        assert!(prog.update.len() <= cfg.max_update_ops);
        // Insert pressure should actually fill the functions up.
        assert_eq!(
            prog.n_ops(),
            cfg.max_setup_ops + cfg.max_predict_ops + cfg.max_update_ops
        );
    }

    #[test]
    fn respects_min_size_under_remove_pressure() {
        let cfg = AlphaConfig::default();
        let mcfg = MutationConfig {
            prob: 1.0,
            weights: MutationWeights {
                randomize_instruction: 0.0,
                randomize_slot: 0.0,
                randomize_function: 0.0,
                insert: 0.0,
                remove: 1.0,
            },
        };
        let m = Mutator::new(cfg, mcfg);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut prog = init::domain_expert(&cfg);
        for _ in 0..200 {
            prog = m.mutate(&mut rng, &prog);
        }
        assert_eq!(prog.setup.len(), 1);
        assert_eq!(prog.predict.len(), 1);
        assert_eq!(prog.update.len(), 1);
    }

    #[test]
    fn zero_probability_yields_clones() {
        let cfg = AlphaConfig::default();
        let m = Mutator::new(
            cfg,
            MutationConfig {
                prob: 0.0,
                ..Default::default()
            },
        );
        let mut rng = SmallRng::seed_from_u64(4);
        let prog = init::domain_expert(&cfg);
        for _ in 0..50 {
            assert_eq!(m.mutate(&mut rng, &prog), prog);
        }
    }

    #[test]
    fn setup_never_gains_relation_ops() {
        let cfg = AlphaConfig::default();
        let m = mutator();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut prog = init::noop(&cfg);
        for _ in 0..5000 {
            prog = m.mutate(&mut rng, &prog);
        }
        assert!(
            prog.setup.iter().all(|i| !i.op.is_relation()),
            "relation op leaked into setup"
        );
        prog.validate(&cfg).unwrap();
    }

    #[test]
    fn mutations_eventually_change_the_program() {
        let cfg = AlphaConfig::default();
        let m = mutator();
        let mut rng = SmallRng::seed_from_u64(6);
        let prog = init::domain_expert(&cfg);
        let changed = (0..20).any(|_| m.mutate(&mut rng, &prog) != prog);
        assert!(changed);
    }
}
