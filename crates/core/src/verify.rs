//! Trust-boundary verification for [`AlphaProgram`]s: a typed
//! [`Diagnostic`] framework backing every deserialization path.
//!
//! The binary codec (`store::progio`) restores instruction fields
//! verbatim — *bitwise round trip is the contract* — so a hostile or
//! corrupt frame can carry an in-range op code with an out-of-range
//! register, a non-finite literal, or a relation op in `setup`. None of
//! those are caught by framing/CRC checks, and all of them reach
//! `compile`/`ColumnarInterpreter` as out-of-bounds slice math or
//! undefined scheduling. The verifier closes that hole with two layers:
//!
//! * **Errors** — structural violations against an [`AlphaConfig`]
//!   (register/index bounds, non-finite literals, relation ops in setup,
//!   per-function length limits). A program with errors must never be
//!   compiled or interpreted; every load boundary (archive, checkpoint,
//!   wire serving, text parse) rejects it with a typed error.
//! * **Warnings** — semantic degeneracies proven by [`crate::absint`]
//!   (constant / always-NaN / day-invariant prediction, no input use).
//!   These drive search-time rejection (paper Fig. 5b) but must *not*
//!   reject archived data: archives legitimately hold NaN-IC entries and
//!   checkpointed populations hold fitness-less members.
//!
//! Formats that carry no `AlphaConfig` (archives, checkpoints) use the
//! configuration-free [`check_envelope`]: registers below the 16-per-bank
//! liveness cap (`prune` packs each bank into 16 bits of a `u64`), finite
//! literals, no relation ops in setup, and a generous per-function length
//! cap. Boundaries that do know the config (serving, text parsing) run
//! the full [`ProgramVerifier`].

use std::fmt;

use crate::absint;
use crate::config::AlphaConfig;
use crate::instruction::Instruction;
use crate::op::Op;
use crate::program::{AlphaProgram, FunctionId};
use crate::prune;

/// Registers at or above this index cannot participate in liveness
/// tracking (`prune` packs each bank into 16 bits of a `u64`), so the
/// configuration-free envelope rejects them outright.
pub const ENVELOPE_MAX_REG: u8 = 16;

/// Configuration-free upper bound on instructions per function: far above
/// any real configuration (`max_update_ops` defaults to 45), low enough
/// to bound hostile payloads.
pub const ENVELOPE_MAX_OPS: usize = 256;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The program is structurally invalid and must not be executed.
    Error,
    /// The program is well-formed but semantically degenerate.
    Warning,
}

/// Machine-readable reason for a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagnosticCode {
    /// An input or output register index exceeds its bank size.
    RegisterOutOfRange,
    /// An element/axis index exceeds its domain (e.g. an `m_get` feature
    /// row at or beyond `dim`).
    IndexOutOfRange,
    /// A used literal slot holds NaN or ±inf.
    NonFiniteLiteral,
    /// A cross-sectional relation op appears in `setup()` (which runs
    /// before any cross-section exists).
    RelationInSetup,
    /// A function is shorter than `min_ops`.
    FunctionTooShort,
    /// A function exceeds its per-function instruction limit.
    FunctionTooLong,
    /// The prediction never reads the feature input `m0`.
    NoInput,
    /// The prediction is provably cross-sectionally constant.
    ConstantPrediction,
    /// The prediction is provably NaN on every stock and day.
    AlwaysNanPrediction,
    /// The prediction is provably identical on every day.
    DayInvariantPrediction,
}

/// One verification finding, with enough span information to point at
/// the offending instruction.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Machine-readable reason.
    pub code: DiagnosticCode,
    /// The function the finding is in, if instruction-specific.
    pub function: Option<FunctionId>,
    /// Instruction index within the function, if instruction-specific.
    pub instr: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    fn error(
        code: DiagnosticCode,
        function: FunctionId,
        instr: usize,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code,
            function: Some(function),
            instr: Some(instr),
            message,
        }
    }

    fn warning(code: DiagnosticCode, message: String) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            code,
            function: None,
            instr: None,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.function, self.instr) {
            (Some(func), Some(i)) => write!(f, "{}() op {}: {}", func.name(), i, self.message),
            _ => write!(f, "{}", self.message),
        }
    }
}

/// Everything the verifier found, errors first.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// All findings, errors ordered before warnings.
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// Whether the program is safe to compile and execute.
    pub fn is_valid(&self) -> bool {
        self.first_error().is_none()
    }

    /// The first error-severity finding, if any.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
    }

    /// Iterates the warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }
}

/// Static checker enforcing structural validity against one
/// [`AlphaConfig`] and reporting semantic degeneracy warnings.
#[derive(Debug, Clone)]
pub struct ProgramVerifier {
    cfg: AlphaConfig,
}

impl ProgramVerifier {
    /// Builds a verifier for programs meant to run under `cfg`.
    pub fn new(cfg: &AlphaConfig) -> ProgramVerifier {
        ProgramVerifier { cfg: *cfg }
    }

    /// Runs every check: structural errors plus (only when structurally
    /// valid — the analyses index registers by the config) semantic
    /// warnings from pruning and abstract interpretation.
    pub fn verify(&self, prog: &AlphaProgram) -> VerifyReport {
        let mut report = VerifyReport::default();
        self.structural(prog, &mut report);
        if report.is_valid() {
            self.semantic(prog, &mut report);
        }
        report
    }

    /// Structural validation only: the cheap, load-boundary layer.
    /// Returns the first error, if any.
    pub fn ensure_valid(&self, prog: &AlphaProgram) -> Result<(), Diagnostic> {
        let mut report = VerifyReport::default();
        self.structural(prog, &mut report);
        match report.diagnostics.into_iter().next() {
            Some(d) => Err(d),
            None => Ok(()),
        }
    }

    fn structural(&self, prog: &AlphaProgram, report: &mut VerifyReport) {
        let cfg = &self.cfg;
        for f in FunctionId::ALL {
            let instrs = prog.function(f);
            if instrs.len() < cfg.min_ops {
                report.diagnostics.push(Diagnostic {
                    severity: Severity::Error,
                    code: DiagnosticCode::FunctionTooShort,
                    function: Some(f),
                    instr: None,
                    message: format!("{}() has fewer than {} ops", f.name(), cfg.min_ops),
                });
            }
            let max = AlphaProgram::max_ops(cfg, f);
            if instrs.len() > max {
                report.diagnostics.push(Diagnostic {
                    severity: Severity::Error,
                    code: DiagnosticCode::FunctionTooLong,
                    function: Some(f),
                    instr: None,
                    message: format!("{}() exceeds {} ops", f.name(), max),
                });
            }
            for (i, instr) in instrs.iter().enumerate() {
                check_instruction(instr, f, i, cfg, report);
            }
        }
    }

    fn semantic(&self, prog: &AlphaProgram, report: &mut VerifyReport) {
        let pruned = prune::prune(prog);
        if !pruned.uses_input {
            report.diagnostics.push(Diagnostic::warning(
                DiagnosticCode::NoInput,
                "prediction never reads the feature input m0".to_string(),
            ));
        }
        let facts = absint::analyze(prog, &self.cfg).facts;
        if facts.always_nan {
            report.diagnostics.push(Diagnostic::warning(
                DiagnosticCode::AlwaysNanPrediction,
                "prediction is provably NaN on every stock and day".to_string(),
            ));
        } else if facts.uniform {
            report.diagnostics.push(Diagnostic::warning(
                DiagnosticCode::ConstantPrediction,
                "prediction is provably cross-sectionally constant".to_string(),
            ));
        }
        if facts.day_invariant && !facts.always_nan {
            report.diagnostics.push(Diagnostic::warning(
                DiagnosticCode::DayInvariantPrediction,
                "prediction is provably identical on every day".to_string(),
            ));
        }
    }
}

fn check_instruction(
    instr: &Instruction,
    f: FunctionId,
    i: usize,
    cfg: &AlphaConfig,
    report: &mut VerifyReport,
) {
    let op = instr.op;
    let kinds = op.input_kinds();
    let mut regs = Vec::with_capacity(3);
    if !kinds.is_empty() {
        regs.push(("in1", kinds[0], instr.in1));
    }
    if kinds.len() > 1 {
        regs.push(("in2", kinds[1], instr.in2));
    }
    if op != Op::NoOp {
        regs.push(("out", op.output_kind(), instr.out));
    }
    for (slot, kind, reg) in regs {
        if (reg as usize) >= cfg.bank_size(kind) {
            report.diagnostics.push(Diagnostic::error(
                DiagnosticCode::RegisterOutOfRange,
                f,
                i,
                format!(
                    "{}: {slot} register {}{reg} exceeds bank size {}",
                    op.name(),
                    kind.prefix(),
                    cfg.bank_size(kind)
                ),
            ));
        }
    }
    let ix_use = op.ix_use();
    for slot in 0..ix_use.count() {
        let domain = ix_use.domain(slot, cfg.dim);
        if (instr.ix[slot] as usize) >= domain {
            report.diagnostics.push(Diagnostic::error(
                DiagnosticCode::IndexOutOfRange,
                f,
                i,
                format!(
                    "{}: index {} = {} exceeds its domain {domain}",
                    op.name(),
                    slot,
                    instr.ix[slot]
                ),
            ));
        }
    }
    for slot in 0..op.lit_use().count() {
        if !instr.lit[slot].is_finite() {
            report.diagnostics.push(Diagnostic::error(
                DiagnosticCode::NonFiniteLiteral,
                f,
                i,
                format!("{}: literal {} is {}", op.name(), slot, instr.lit[slot]),
            ));
        }
    }
    if f == FunctionId::Setup && op.is_relation() {
        report.diagnostics.push(Diagnostic::error(
            DiagnosticCode::RelationInSetup,
            f,
            i,
            format!("{}: relation op not allowed in setup", op.name()),
        ));
    }
}

/// Configuration-free envelope check for formats that carry no
/// [`AlphaConfig`] (archives, checkpoints): rejects programs no
/// configuration could accept. See the module docs for the bounds.
pub fn check_envelope(prog: &AlphaProgram) -> Result<(), Diagnostic> {
    for f in FunctionId::ALL {
        let instrs = prog.function(f);
        if instrs.len() > ENVELOPE_MAX_OPS {
            return Err(Diagnostic {
                severity: Severity::Error,
                code: DiagnosticCode::FunctionTooLong,
                function: Some(f),
                instr: None,
                message: format!("{}() exceeds the {ENVELOPE_MAX_OPS}-op envelope", f.name()),
            });
        }
        for (i, instr) in instrs.iter().enumerate() {
            let op = instr.op;
            let kinds = op.input_kinds();
            let mut regs = Vec::with_capacity(3);
            if !kinds.is_empty() {
                regs.push(instr.in1);
            }
            if kinds.len() > 1 {
                regs.push(instr.in2);
            }
            if op != Op::NoOp {
                regs.push(instr.out);
            }
            if let Some(&reg) = regs.iter().find(|&&r| r >= ENVELOPE_MAX_REG) {
                return Err(Diagnostic::error(
                    DiagnosticCode::RegisterOutOfRange,
                    f,
                    i,
                    format!(
                        "{}: register {reg} exceeds the {ENVELOPE_MAX_REG}-per-bank cap",
                        op.name()
                    ),
                ));
            }
            for slot in 0..op.lit_use().count() {
                if !instr.lit[slot].is_finite() {
                    return Err(Diagnostic::error(
                        DiagnosticCode::NonFiniteLiteral,
                        f,
                        i,
                        format!("{}: literal {} is {}", op.name(), slot, instr.lit[slot]),
                    ));
                }
            }
            if f == FunctionId::Setup && op.is_relation() {
                return Err(Diagnostic::error(
                    DiagnosticCode::RelationInSetup,
                    f,
                    i,
                    format!("{}: relation op not allowed in setup", op.name()),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    fn cfg() -> AlphaConfig {
        AlphaConfig::default()
    }

    #[test]
    fn seed_programs_verify_clean() {
        let cfg = cfg();
        let verifier = ProgramVerifier::new(&cfg);
        for p in [
            init::domain_expert(&cfg),
            init::two_layer_nn(&cfg),
            init::industry_reversal(&cfg),
        ] {
            let report = verifier.verify(&p);
            assert!(report.is_valid(), "{:?}", report.first_error());
            assert_eq!(report.warnings().count(), 0, "{:?}", report.diagnostics);
        }
    }

    #[test]
    fn out_of_range_register_is_an_error() {
        let cfg = cfg();
        let mut p = init::domain_expert(&cfg);
        p.predict[0].in1 = 200;
        let d = ProgramVerifier::new(&cfg).ensure_valid(&p).unwrap_err();
        assert_eq!(d.code, DiagnosticCode::RegisterOutOfRange);
        assert_eq!(d.function, Some(FunctionId::Predict));
        assert_eq!(d.instr, Some(0));
        check_envelope(&p).unwrap_err();
    }

    #[test]
    fn out_of_range_feature_index_is_an_error() {
        let cfg = cfg();
        let mut p = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![Instruction::new(Op::MGet, 0, 0, 1, [0.0; 2], [0, 0])],
            update: vec![Instruction::nop()],
        };
        p.predict[0].ix = [cfg.dim as u8, 0];
        let d = ProgramVerifier::new(&cfg).ensure_valid(&p).unwrap_err();
        assert_eq!(d.code, DiagnosticCode::IndexOutOfRange);
        // The envelope has no dim, so it cannot catch this one.
        check_envelope(&p).unwrap();
    }

    #[test]
    fn non_finite_literal_is_an_error() {
        let cfg = cfg();
        let mut p = init::domain_expert(&cfg);
        p.setup.push(Instruction::new(
            Op::SConst,
            0,
            0,
            2,
            [f64::NAN, 0.0],
            [0; 2],
        ));
        let d = ProgramVerifier::new(&cfg).ensure_valid(&p).unwrap_err();
        assert_eq!(d.code, DiagnosticCode::NonFiniteLiteral);
        check_envelope(&p).unwrap_err();
    }

    #[test]
    fn relation_in_setup_is_an_error() {
        let cfg = cfg();
        let mut p = init::domain_expert(&cfg);
        p.setup
            .push(Instruction::new(Op::RelRank, 2, 0, 3, [0.0; 2], [0; 2]));
        let d = ProgramVerifier::new(&cfg).ensure_valid(&p).unwrap_err();
        assert_eq!(d.code, DiagnosticCode::RelationInSetup);
        check_envelope(&p).unwrap_err();
    }

    #[test]
    fn degenerate_programs_warn_but_stay_valid() {
        let cfg = cfg();
        let p = AlphaProgram {
            setup: vec![Instruction::new(Op::SConst, 0, 0, 2, [4.0, 0.0], [0; 2])],
            predict: vec![Instruction::new(Op::SMax, 2, 2, 1, [0.0; 2], [0; 2])],
            update: vec![Instruction::nop()],
        };
        let report = ProgramVerifier::new(&cfg).verify(&p);
        assert!(report.is_valid());
        let codes: Vec<_> = report.warnings().map(|d| d.code).collect();
        assert!(codes.contains(&DiagnosticCode::NoInput));
        assert!(codes.contains(&DiagnosticCode::ConstantPrediction));
        assert!(codes.contains(&DiagnosticCode::DayInvariantPrediction));
    }

    #[test]
    fn oversized_function_is_an_error() {
        let cfg = cfg();
        let mut p = init::domain_expert(&cfg);
        p.update = vec![Instruction::nop(); cfg.max_update_ops + 1];
        let d = ProgramVerifier::new(&cfg).ensure_valid(&p).unwrap_err();
        assert_eq!(d.code, DiagnosticCode::FunctionTooLong);
        // Under the generous envelope cap, though.
        check_envelope(&p).unwrap();
        p.update = vec![Instruction::nop(); ENVELOPE_MAX_OPS + 1];
        check_envelope(&p).unwrap_err();
    }
}
