//! Redundancy pruning (paper §4.2).
//!
//! *"The redundancy pruning process prunes the operations that do not
//! contribute to the calculation between the input feature matrix `m0` and
//! the prediction `s1`."*
//!
//! The paper sketches the analysis as a backward walk over an
//! operand-dependency graph rooted at `s1`. Implemented faithfully, this is
//! a backward **liveness fixpoint** over the alpha's execution cycle,
//! because registers persist across timesteps (that persistence is the
//! mechanism behind the paper's `S3_{t-1}`-style recursions and the
//! `Update()`-written parameters):
//!
//! ```text
//! per training day:  [framework writes m0] Predict() [observe s1]
//!                    [framework writes s0] Update()
//! per inference day: [framework writes m0] Predict() [observe s1]
//! ```
//!
//! A register demanded at the entry of `Predict()` may be produced by the
//! previous day's `Update()`, by the previous day's `Predict()`, or by
//! `Setup()`. Demands on `m0` (and `s0` before `Update()`) are satisfied by
//! the framework and do not propagate further back. The fixpoint iterates
//! until the predict-entry live set stabilizes, then one final pass marks
//! live instructions in each function.
//!
//! Two outputs drive the search (paper Figure 5):
//!
//! * the **effective program** — only live instructions, which is what gets
//!   fingerprinted *and evaluated*;
//! * **`uses_input`** — whether the observed prediction depends on the
//!   framework-written `m0` at all. If not, the whole alpha is *redundant*
//!   (Fig. 5b) and is rejected without evaluation.

use crate::config::AlphaConfig;
use crate::instruction::Instruction;
use crate::memory::{INPUT, LABEL, PREDICTION};
use crate::op::{Kind, Op};
use crate::program::{AlphaProgram, FunctionId};

/// Bit position of a register in the 64-bit live set. Banks are capped at
/// 16 registers each, which covers the paper's 10/16/4 configuration.
#[inline]
fn bit(kind: Kind, reg: usize) -> u64 {
    let offset = match kind {
        Kind::S => 0,
        Kind::V => 16,
        Kind::M => 32,
    };
    debug_assert!(
        reg < 16,
        "register index {reg} exceeds the 16-per-bank liveness cap"
    );
    1u64 << (offset + reg)
}

const S1_BIT: u64 = 1 << PREDICTION;
const S0_BIT: u64 = 1 << LABEL;
const M0_BIT: u64 = 1 << (32 + INPUT);

fn input_bits(instr: &Instruction) -> u64 {
    let kinds = instr.op.input_kinds();
    let mut bits = 0;
    if !kinds.is_empty() {
        bits |= bit(kinds[0], instr.in1 as usize);
    }
    if kinds.len() > 1 {
        bits |= bit(kinds[1], instr.in2 as usize);
    }
    bits
}

fn output_bit(instr: &Instruction) -> u64 {
    if instr.op == Op::NoOp {
        0
    } else {
        bit(instr.op.output_kind(), instr.out as usize)
    }
}

/// One backward pass over a function body. Marks (into `marks`, when
/// provided) the instructions whose output is demanded downstream, and
/// returns the live set at function entry.
fn backward_pass(instrs: &[Instruction], live_out: u64, mut marks: Option<&mut Vec<bool>>) -> u64 {
    if let Some(m) = marks.as_deref_mut() {
        m.clear();
        m.resize(instrs.len(), false);
    }
    let mut live = live_out;
    for (i, instr) in instrs.iter().enumerate().rev() {
        let out = output_bit(instr);
        if out != 0 && live & out != 0 {
            live &= !out;
            live |= input_bits(instr);
            if let Some(m) = marks.as_deref_mut() {
                m[i] = true;
            }
        }
    }
    live
}

/// Result of pruning one alpha.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneResult {
    /// The effective program: live instructions only, in original order.
    /// Functions pruned to emptiness keep a single `noop` so the program
    /// still satisfies the min-1-op constraint.
    pub program: AlphaProgram,
    /// Whether the observed prediction depends on the framework-written
    /// input matrix `m0`. `false` means the alpha is redundant (Fig. 5b).
    pub uses_input: bool,
    /// Whether any register demanded at `Predict()` entry is written by a
    /// live `Predict()`/`Update()` instruction — i.e. the alpha carries
    /// state across days (trained parameters or recurrences). A stateless
    /// alpha is "formulaic": its predictions are day-local, so the
    /// training sweep can be skipped entirely (the paper's "a formulaic
    /// alpha is a special case of the new alpha with no parameters").
    pub stateful: bool,
    /// Number of instructions removed.
    pub n_pruned: usize,
}

/// Converges the predict-entry live set (the fixpoint half of [`prune`]).
/// Allocation-free.
fn predict_entry_fixpoint(prog: &AlphaProgram) -> u64 {
    let mut live_pred_entry: u64 = 0;
    loop {
        // Backward through Update(); its live-out is the next day's
        // predict-entry demand minus m0 (framework-written before Predict).
        let live_update_entry = backward_pass(&prog.update, live_pred_entry & !M0_BIT, None);
        // Crossing the framework's s0 write kills the s0 demand; crossing
        // the observation point adds the s1 demand; merge the
        // inference-path demand (predict -> next-day predict directly).
        let live_pred_exit = (live_update_entry & !S0_BIT) | S1_BIT | (live_pred_entry & !M0_BIT);
        let next = backward_pass(&prog.predict, live_pred_exit, None) | live_pred_entry;
        if next == live_pred_entry {
            return live_pred_entry;
        }
        live_pred_entry = next;
    }
}

/// Like [`backward_pass`] without marks, but ORs the output bit of every
/// live instruction into `live_writes`. Allocation-free.
fn backward_pass_writes(instrs: &[Instruction], live_out: u64, live_writes: &mut u64) -> u64 {
    let mut live = live_out;
    for instr in instrs.iter().rev() {
        let out = output_bit(instr);
        if out != 0 && live & out != 0 {
            live &= !out;
            live |= input_bits(instr);
            *live_writes |= out;
        }
    }
    live
}

/// The analysis half of [`prune`]: redundancy and statefulness of an alpha
/// **without building the pruned program** — entirely allocation-free, so
/// the evaluation hot path can consult it per candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Liveness {
    /// Whether the observed prediction depends on the framework-written
    /// input matrix `m0` (see [`PruneResult::uses_input`]).
    pub uses_input: bool,
    /// Whether the alpha carries state across days (see
    /// [`PruneResult::stateful`]).
    pub stateful: bool,
}

/// Computes [`Liveness`] for an alpha. Agrees with [`prune`] on both flags
/// (property-tested) while performing no heap allocation.
pub fn liveness(prog: &AlphaProgram) -> Liveness {
    let live_pred_entry = predict_entry_fixpoint(prog);
    let mut live_writes: u64 = 0;
    let live_update_entry =
        backward_pass_writes(&prog.update, live_pred_entry & !M0_BIT, &mut live_writes);
    let live_pred_exit = (live_update_entry & !S0_BIT) | S1_BIT | (live_pred_entry & !M0_BIT);
    backward_pass_writes(&prog.predict, live_pred_exit, &mut live_writes);
    Liveness {
        uses_input: live_pred_entry & M0_BIT != 0,
        stateful: (live_pred_entry & !M0_BIT) & live_writes != 0,
    }
}

/// Per-instruction liveness marks for all three functions, written into
/// caller-owned buffers (cleared and refilled; capacity is reused, so this
/// is allocation-free once the buffers have grown to the program size).
/// The marks agree with [`prune`]'s kept set exactly — this is the
/// per-candidate entry point for the columnar compile pass, which must not
/// allocate on the evaluation hot path.
pub(crate) fn mark_live_into(
    prog: &AlphaProgram,
    setup_marks: &mut Vec<bool>,
    predict_marks: &mut Vec<bool>,
    update_marks: &mut Vec<bool>,
) {
    let live_pred_entry = predict_entry_fixpoint(prog);
    let live_update_entry =
        backward_pass(&prog.update, live_pred_entry & !M0_BIT, Some(update_marks));
    let live_pred_exit = (live_update_entry & !S0_BIT) | S1_BIT | (live_pred_entry & !M0_BIT);
    backward_pass(&prog.predict, live_pred_exit, Some(predict_marks));
    backward_pass(&prog.setup, live_pred_entry & !M0_BIT, Some(setup_marks));
}

/// Prunes redundant operations and detects redundant alphas.
pub fn prune(prog: &AlphaProgram) -> PruneResult {
    // Fixpoint on the predict-entry live set.
    let live_pred_entry = predict_entry_fixpoint(prog);

    // Final marking passes with the converged sets.
    let mut predict_marks = Vec::new();
    let mut update_marks = Vec::new();
    let mut setup_marks = Vec::new();
    let live_update_entry = backward_pass(
        &prog.update,
        live_pred_entry & !M0_BIT,
        Some(&mut update_marks),
    );
    let live_pred_exit = (live_update_entry & !S0_BIT) | S1_BIT | (live_pred_entry & !M0_BIT);
    let live_entry = backward_pass(&prog.predict, live_pred_exit, Some(&mut predict_marks));
    debug_assert_eq!(
        live_entry | live_pred_entry,
        live_pred_entry,
        "fixpoint must have converged"
    );
    // Setup() runs before the first day; m0 is framework-written before the
    // first Predict(), so demands on it don't reach Setup().
    backward_pass(
        &prog.setup,
        live_pred_entry & !M0_BIT,
        Some(&mut setup_marks),
    );

    let uses_input = live_pred_entry & M0_BIT != 0;

    // Cross-day state: some register demanded at predict entry (other than
    // the framework-fed m0) is written by a live predict/update
    // instruction, so day t's prediction depends on earlier days.
    let mut live_writes: u64 = 0;
    for (instr, &m) in prog.predict.iter().zip(&predict_marks) {
        if m {
            live_writes |= output_bit(instr);
        }
    }
    for (instr, &m) in prog.update.iter().zip(&update_marks) {
        if m {
            live_writes |= output_bit(instr);
        }
    }
    let stateful = (live_pred_entry & !M0_BIT) & live_writes != 0;

    let keep = |instrs: &[Instruction], marks: &[bool]| -> Vec<Instruction> {
        let kept: Vec<Instruction> = instrs
            .iter()
            .zip(marks)
            .filter(|(_, &m)| m)
            .map(|(i, _)| i.clone())
            .collect();
        if kept.is_empty() {
            vec![Instruction::nop()]
        } else {
            kept
        }
    };

    let pruned = AlphaProgram {
        setup: keep(&prog.setup, &setup_marks),
        predict: keep(&prog.predict, &predict_marks),
        update: keep(&prog.update, &update_marks),
    };
    let n_pruned = prog.n_ops()
        - (setup_marks.iter().filter(|&&m| m).count()
            + predict_marks.iter().filter(|&&m| m).count()
            + update_marks.iter().filter(|&&m| m).count());
    PruneResult {
        program: pruned,
        uses_input,
        stateful,
        n_pruned,
    }
}

/// Canonicalizes register names in a (pruned) program: non-special
/// registers are renumbered per bank in order of first appearance, so that
/// alpha-equivalent programs share one fingerprint. `s0`, `s1` and `m0`
/// keep their reserved indices.
pub fn canonicalize(prog: &AlphaProgram, cfg: &AlphaConfig) -> AlphaProgram {
    // rename[kind][old] = new
    let mut rename: [Vec<Option<u8>>; 3] = [
        vec![None; cfg.n_scalars],
        vec![None; cfg.n_vectors],
        vec![None; cfg.n_matrices],
    ];
    // Reserved registers map to themselves.
    rename[0][LABEL] = Some(LABEL as u8);
    rename[0][PREDICTION] = Some(PREDICTION as u8);
    rename[2][INPUT] = Some(INPUT as u8);
    let mut next: [u8; 3] = [2, 0, 1]; // first free index per bank

    let slot = |k: Kind| match k {
        Kind::S => 0usize,
        Kind::V => 1,
        Kind::M => 2,
    };
    let assign = |k: Kind, old: u8, rename: &mut [Vec<Option<u8>>; 3], next: &mut [u8; 3]| -> u8 {
        let s = slot(k);
        if let Some(new) = rename[s][old as usize] {
            return new;
        }
        let new = next[s];
        next[s] += 1;
        rename[s][old as usize] = Some(new);
        new
    };

    let mut out = prog.clone();
    for f in FunctionId::ALL {
        for instr in out.function_mut(f) {
            let kinds = instr.op.input_kinds();
            if !kinds.is_empty() {
                instr.in1 = assign(kinds[0], instr.in1, &mut rename, &mut next);
            }
            if kinds.len() > 1 {
                instr.in2 = assign(kinds[1], instr.in2, &mut rename, &mut next);
            }
            if instr.op != Op::NoOp {
                instr.out = assign(instr.op.output_kind(), instr.out, &mut rename, &mut next);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::Instruction;

    fn i(op: Op, in1: u8, in2: u8, out: u8) -> Instruction {
        Instruction::new(op, in1, in2, out, [0.0; 2], [0; 2])
    }

    fn get_m0(out: u8) -> Instruction {
        Instruction::new(Op::MGet, 0, 0, out, [0.0; 2], [1, 2])
    }

    /// The paper's Figure 5a scenario: an overwritten s1 and a dangling
    /// operand are both pruned.
    #[test]
    fn prunes_overwritten_prediction_and_dangling_ops() {
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![
                get_m0(2),            // s2 = m0[1,2]           (live)
                i(Op::SAbs, 2, 0, 1), // s1 = abs(s2)           (dead: s1 overwritten below)
                i(Op::SSin, 2, 0, 8), // s8 = sin(s2)           (dead: never used)
                i(Op::SCos, 2, 0, 1), // s1 = cos(s2)           (live, final prediction)
            ],
            update: vec![Instruction::nop()],
        };
        let r = prune(&prog);
        assert!(r.uses_input);
        assert!(!r.stateful, "a day-local formula carries no state");
        assert_eq!(r.program.predict.len(), 2);
        assert_eq!(r.program.predict[0].op, Op::MGet);
        assert_eq!(r.program.predict[1].op, Op::SCos);
        assert_eq!(
            r.n_pruned,
            2 + 2,
            "two dead predict ops and two noops pruned"
        );
    }

    /// Figure 5b: prediction not connected to m0 -> redundant alpha.
    #[test]
    fn detects_redundant_alpha() {
        let prog = AlphaProgram {
            setup: vec![i(Op::SConst, 0, 0, 2)],
            predict: vec![i(Op::SAbs, 2, 0, 1)], // s1 = abs(s2) — constant
            update: vec![Instruction::nop()],
        };
        let r = prune(&prog);
        assert!(
            !r.uses_input,
            "prediction is a constant, alpha is redundant"
        );
        // The computation itself is still live (it feeds s1)...
        assert_eq!(r.program.predict.len(), 1);
        assert_eq!(r.program.setup.len(), 1);
    }

    #[test]
    fn update_feeding_predict_is_live() {
        // Update writes s3 from m0; predict divides by it next day. The
        // update op must survive pruning (it is the "parameter").
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![get_m0(2), i(Op::SDiv, 2, 3, 1)],
            update: vec![
                Instruction::new(Op::MGet, 0, 0, 3, [0.0; 2], [0, 0]), // s3 = m0[0,0]
                i(Op::SSin, 4, 0, 5),                                  // dead
            ],
        };
        let r = prune(&prog);
        assert!(r.uses_input);
        assert!(r.stateful, "update-written parameters are cross-day state");
        assert_eq!(r.program.update.len(), 1);
        assert_eq!(r.program.update[0].op, Op::MGet);
        assert_eq!(r.program.predict.len(), 2);
    }

    #[test]
    fn setup_feeding_prediction_is_live() {
        let prog = AlphaProgram {
            setup: vec![
                Instruction::new(Op::SConst, 0, 0, 3, [0.5, 0.0], [0; 2]), // live: read by predict
                Instruction::new(Op::SConst, 0, 0, 4, [9.0, 0.0], [0; 2]), // dead
            ],
            predict: vec![get_m0(2), i(Op::SMul, 2, 3, 1)],
            update: vec![Instruction::nop()],
        };
        let r = prune(&prog);
        assert_eq!(r.program.setup.len(), 1);
        assert_eq!(r.program.setup[0].lit[0], 0.5);
    }

    #[test]
    fn predict_self_recurrence_is_live() {
        // s5 accumulates across days inside predict: s5 = s5 + m0[..];
        // s1 = sin(s5). The accumulator read crosses day boundaries.
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![get_m0(2), i(Op::SAdd, 5, 2, 5), i(Op::SSin, 5, 0, 1)],
            update: vec![Instruction::nop()],
        };
        let r = prune(&prog);
        assert!(r.uses_input);
        assert!(r.stateful, "a predict-local accumulator is cross-day state");
        assert_eq!(r.program.predict.len(), 3);
    }

    #[test]
    fn setup_constant_does_not_make_alpha_stateful() {
        // Predict divides by a setup constant: live-in registers exist but
        // none is written by predict/update, so the alpha is stateless.
        let prog = AlphaProgram {
            setup: vec![Instruction::new(Op::SConst, 0, 0, 3, [0.5, 0.0], [0; 2])],
            predict: vec![get_m0(2), i(Op::SDiv, 2, 3, 1)],
            update: vec![Instruction::nop()],
        };
        let r = prune(&prog);
        assert!(r.uses_input);
        assert!(!r.stateful);
    }

    #[test]
    fn label_only_alpha_is_redundant() {
        // Predicting from the label via update state without ever reading
        // m0: no connection to the input -> redundant.
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![i(Op::SAbs, 3, 0, 1)],
            update: vec![i(Op::SAdd, 0, 0, 3)], // s3 = s0 + s0
        };
        let r = prune(&prog);
        assert!(!r.uses_input);
        // The chain s0 -> s3 -> s1 is live (it does feed the prediction).
        assert_eq!(r.program.update.len(), 1);
    }

    #[test]
    fn noop_only_program() {
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![Instruction::nop()],
            update: vec![Instruction::nop()],
        };
        let r = prune(&prog);
        assert!(!r.uses_input);
        assert_eq!(r.program.predict, vec![Instruction::nop()]);
    }

    #[test]
    fn m0_overwritten_by_predict_blocks_input() {
        // Predict overwrites m0 with a constant before reading it: the
        // framework value never reaches the prediction.
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![
                Instruction::new(Op::MConst, 0, 0, 0, [1.0, 0.0], [0; 2]), // m0 = const
                i(Op::MNorm, 0, 0, 1),                                     // s1 = norm(m0)
            ],
            update: vec![Instruction::nop()],
        };
        let r = prune(&prog);
        assert!(
            !r.uses_input,
            "framework m0 is dead once predict overwrites it first"
        );
    }

    #[test]
    fn liveness_agrees_with_prune_on_fixtures() {
        let progs = [
            AlphaProgram {
                setup: vec![Instruction::nop()],
                predict: vec![get_m0(2), i(Op::SCos, 2, 0, 1)],
                update: vec![Instruction::nop()],
            },
            AlphaProgram {
                setup: vec![i(Op::SConst, 0, 0, 2)],
                predict: vec![i(Op::SAbs, 2, 0, 1)],
                update: vec![Instruction::nop()],
            },
            AlphaProgram {
                setup: vec![Instruction::nop()],
                predict: vec![get_m0(2), i(Op::SDiv, 2, 3, 1)],
                update: vec![Instruction::new(Op::MGet, 0, 0, 3, [0.0; 2], [0, 0])],
            },
            AlphaProgram {
                setup: vec![Instruction::nop()],
                predict: vec![get_m0(2), i(Op::SAdd, 5, 2, 5), i(Op::SSin, 5, 0, 1)],
                update: vec![Instruction::nop()],
            },
        ];
        for prog in &progs {
            let full = prune(prog);
            let light = liveness(prog);
            assert_eq!(light.uses_input, full.uses_input, "{prog:?}");
            assert_eq!(light.stateful, full.stateful, "{prog:?}");
        }
    }

    #[test]
    fn mark_live_into_agrees_with_prune() {
        let progs = [
            AlphaProgram {
                setup: vec![Instruction::nop()],
                predict: vec![
                    get_m0(2),
                    i(Op::SAbs, 2, 0, 1),
                    i(Op::SSin, 2, 0, 8),
                    i(Op::SCos, 2, 0, 1),
                ],
                update: vec![Instruction::nop()],
            },
            AlphaProgram {
                setup: vec![Instruction::nop()],
                predict: vec![get_m0(2), i(Op::SAdd, 5, 2, 5), i(Op::SSin, 5, 0, 1)],
                update: vec![Instruction::new(Op::MGet, 0, 0, 3, [0.0; 2], [0, 0])],
            },
        ];
        let (mut sm, mut pm, mut um) = (Vec::new(), Vec::new(), Vec::new());
        for prog in &progs {
            mark_live_into(prog, &mut sm, &mut pm, &mut um);
            let full = prune(prog);
            let kept = |instrs: &[Instruction], marks: &[bool]| -> Vec<Instruction> {
                instrs
                    .iter()
                    .zip(marks)
                    .filter(|(_, &m)| m)
                    .map(|(x, _)| x.clone())
                    .collect()
            };
            let check = |kept: Vec<Instruction>, pruned: &[Instruction]| {
                // prune() pads empty functions with one noop; marks don't.
                if kept.is_empty() {
                    assert_eq!(pruned, [Instruction::nop()]);
                } else {
                    assert_eq!(kept, pruned);
                }
            };
            check(kept(&prog.setup, &sm), &full.program.setup);
            check(kept(&prog.predict, &pm), &full.program.predict);
            check(kept(&prog.update, &um), &full.program.update);
        }
    }

    #[test]
    fn canonicalize_renames_consistently() {
        let cfg = AlphaConfig::default();
        let a = AlphaProgram {
            setup: vec![Instruction::new(Op::SConst, 0, 0, 7, [0.5, 0.0], [0; 2])],
            predict: vec![get_m0(9), i(Op::SMul, 9, 7, 1)],
            update: vec![Instruction::nop()],
        };
        let b = AlphaProgram {
            setup: vec![Instruction::new(Op::SConst, 0, 0, 4, [0.5, 0.0], [0; 2])],
            predict: vec![get_m0(3), i(Op::SMul, 3, 4, 1)],
            update: vec![Instruction::nop()],
        };
        assert_eq!(canonicalize(&a, &cfg), canonicalize(&b, &cfg));
        // Canonical form uses the first free scalar registers (2, 3).
        let c = canonicalize(&a, &cfg);
        assert_eq!(c.setup[0].out, 2);
        assert_eq!(c.predict[0].out, 3);
    }

    #[test]
    fn canonicalize_preserves_reserved_registers() {
        let cfg = AlphaConfig::default();
        let prog = AlphaProgram {
            setup: vec![Instruction::nop()],
            predict: vec![get_m0(5), i(Op::SAdd, 5, 0, 1)],
            update: vec![i(Op::SAbs, 0, 0, 5)],
        };
        let c = canonicalize(&prog, &cfg);
        assert_eq!(c.predict[0].in1, 0, "m0 stays register 0");
        assert_eq!(c.predict[1].in2, 0, "s0 stays register 0");
        assert_eq!(c.predict[1].out, 1, "s1 stays register 1");
    }
}
