//! Candidate evaluation: train one epoch, score the Information
//! Coefficient on the validation cross-sections (paper Eq. 1).
//!
//! Invalid-value policy follows AutoML-Zero: operations are unprotected, and
//! any candidate whose validation predictions contain a non-finite value is
//! killed (fitness `None`) — the evaluator aborts the validation sweep at
//! the first bad day instead of clamping.
//!
//! # The zero-allocation hot path
//!
//! Evaluation throughput bounds search quality (§4.2: one-epoch training,
//! pruning, fingerprint cache), so the hot path is built around reusable
//! state instead of per-candidate construction:
//!
//! * label cross-sections are precomputed once as flat
//!   [`CrossSections`] panels, and the stock-major input panel
//!   ([`DayMajorPanel`]) is transposed once — both shared behind `Arc`
//!   (cloning an [`Evaluator`] via [`Evaluator::with_options`] shares,
//!   not copies);
//! * each worker owns one [`EvalArena`] — a [`ColumnarInterpreter`] plus
//!   compile buffers and prediction/return/ranking scratch — reset via
//!   [`ColumnarInterpreter::reset`] between candidates rather than
//!   reconstructed;
//! * each candidate is lowered once per evaluation by
//!   [`compile_into`](crate::compile::compile_into()) (dead code stripped,
//!   register offsets resolved) and then executed columnar: the `Op`
//!   dispatch runs once per instruction, not once per instruction × stock;
//! * [`Evaluator::evaluate_in`] runs one candidate through an arena with
//!   **zero heap allocations** (asserted by the `hot_path_alloc`
//!   integration test): predictions land in the arena's flat panel, the IC
//!   streams without collecting, and portfolio returns fill a reused
//!   buffer.
//!
//! [`Evaluator::evaluate`] remains as a convenience wrapper that builds a
//! throwaway arena.
//!
//! # Batched evaluation
//!
//! [`Evaluator::evaluate_batch_in`] scores a *tile* of up to `B`
//! candidates per training sweep through a [`BatchArena`]: each day's
//! feature block is loaded into the tile's shared `m0` plane once and
//! every slot's function bodies run against it before the sweep advances,
//! amortizing the panel copies across the batch (the same shape the
//! serving layer proved with `AlphaServer`). The contract is strict
//! bit-identity with the sequential path: per-slot register planes, RNG
//! streams, and `rel_lane` state are fully private (see
//! [`BatchInterpreter`] for the tile layout), so every candidate's
//! fitness, validation returns, and RNG streams are bitwise equal to what
//! [`Evaluator::evaluate_prepared_in`] produces for it alone.

use std::sync::Arc;

use alphaevolve_backtest::metrics::{information_coefficient, sharpe_ratio};
use alphaevolve_backtest::portfolio::{
    long_short_returns, long_short_returns_into, LongShortConfig,
};
use alphaevolve_backtest::CrossSections;
use alphaevolve_market::{Dataset, DayMajorPanel};

use crate::compile::{compile_into, relocate_for_slot, writes_m0, CompileScratch, CompiledProgram};
use crate::config::AlphaConfig;
use crate::interp::{BatchInterpreter, ColumnarInterpreter};
use crate::program::AlphaProgram;
use crate::relation::GroupIndex;

/// Evaluation policy knobs.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Training epochs during search. The paper trains one epoch "for fast
    /// evaluation" (§5.2).
    pub train_epochs: usize,
    /// Run the parameter-updating function during training. `false` is the
    /// paper's `_P` ablation (Table 4).
    pub run_update: bool,
    /// Long-short books used for the validation portfolio returns (the
    /// correlation-cutoff signal) and test backtests.
    pub long_short: LongShortConfig,
    /// Seed of the per-stock RNG streams used by stochastic ops.
    pub seed: u64,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            train_epochs: 1,
            run_update: true,
            long_short: LongShortConfig {
                k_long: 10,
                k_short: 10,
            },
            seed: 0,
        }
    }
}

/// Result of scoring one candidate on the validation set.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Fitness: validation IC, or `None` when predictions went non-finite.
    pub fitness: Option<f64>,
    /// The IC value (0 when invalid).
    pub ic: f64,
    /// Daily long-short portfolio returns on the validation set (empty
    /// when invalid). Input to the weak-correlation gate.
    pub val_returns: Vec<f64>,
}

/// Metrics of one split in a full backtest.
#[derive(Debug, Clone)]
pub struct SplitMetrics {
    /// Mean daily cross-sectional Pearson IC.
    pub ic: f64,
    /// Annualized Sharpe ratio of the long-short portfolio.
    pub sharpe: f64,
    /// Daily long-short portfolio returns.
    pub returns: Vec<f64>,
}

/// Validation + test metrics for a finished alpha.
#[derive(Debug, Clone)]
pub struct BacktestReport {
    /// Metrics on the validation days.
    pub val: SplitMetrics,
    /// Metrics on the held-out test days.
    pub test: SplitMetrics,
}

/// Flat label cross-sections for a day range of a dataset. The GP baseline
/// keeps a private twin (`alphaevolve_gp::engine::labels` — gp does not
/// depend on this crate); keep the two constructions in sync.
pub fn labels_cross_sections(dataset: &Dataset, days: std::ops::Range<usize>) -> CrossSections {
    let start = days.start;
    CrossSections::from_fn(days.len(), dataset.n_stocks(), |d, s| {
        dataset.label(s, start + d)
    })
}

/// Per-worker evaluation state: one interpreter plus prediction, return
/// and ranking scratch. Create once per worker with [`Evaluator::arena`],
/// then feed every candidate through [`Evaluator::evaluate_in`] — after
/// the buffers reach their high-water mark (first candidate), evaluation
/// performs no heap allocation.
pub struct EvalArena<'a> {
    interp: ColumnarInterpreter<'a>,
    compiled: CompiledProgram,
    compile_scratch: CompileScratch,
    preds: CrossSections,
    returns: Vec<f64>,
    rank_scratch: Vec<usize>,
    spans: crate::telemetry::EvalSpans,
}

impl EvalArena<'_> {
    /// The validation long-short returns of the last candidate evaluated
    /// (empty when that candidate was invalid). Borrow this for the
    /// weak-correlation gate instead of cloning.
    pub fn val_returns(&self) -> &[f64] {
        &self.returns
    }

    /// Moves the last candidate's validation returns out (the buffer is
    /// replaced by an empty one — only do this off the hot path).
    pub fn take_val_returns(&mut self) -> Vec<f64> {
        std::mem::take(&mut self.returns)
    }

    /// Captures the interpreter's per-stock RNG stream states (test hook
    /// for the batched-evaluation RNG-stream contract).
    pub fn rng_states_into(&self, out: &mut Vec<[u64; 4]>) {
        self.interp.rng_states_into(out);
    }

    /// Takes the span timers and rank-cache counts accumulated since the
    /// last call (all zeros without the `obs` feature). Alloc-free.
    pub fn drain_telemetry(&mut self) -> crate::telemetry::EvalSpans {
        self.spans.absorb_rank_stats(self.interp.take_rank_stats());
        self.spans.drain()
    }
}

/// One candidate's slot in a [`BatchArena`]: its relocated compiled
/// program plus private prediction/return buffers and per-tile results.
struct BatchSlot {
    compiled: CompiledProgram,
    preds: CrossSections,
    returns: Vec<f64>,
    fitness: Option<f64>,
    skip_training: bool,
    /// Whether the slot reads the tile's shared `m0` plane directly
    /// (its program never writes `m0`) or owns a staged private copy.
    share_m0: bool,
    live: bool,
}

/// Per-worker *batched* evaluation state: one [`BatchInterpreter`] tile of
/// `B` slots plus per-slot compile/prediction/return buffers. Create once
/// per worker with [`Evaluator::batch_arena`], fill with
/// [`BatchArena::push`], score the whole tile with
/// [`Evaluator::evaluate_batch_in`], read results per slot, then
/// [`BatchArena::clear`] and refill — allocation-free once every buffer
/// has hit its high-water mark (partially-filled tiles included, pinned
/// by `tests/hot_path_alloc.rs`).
pub struct BatchArena<'a> {
    interp: BatchInterpreter<'a>,
    slots: Vec<BatchSlot>,
    compile_scratch: CompileScratch,
    rank_scratch: Vec<usize>,
    filled: usize,
    cfg: AlphaConfig,
    n_stocks: usize,
    spans: crate::telemetry::EvalSpans,
}

impl BatchArena<'_> {
    /// Compiles `prog` into the next free slot (lower + m0-clobber
    /// analysis + per-slot offset relocation) and returns its slot index.
    /// `skip_training` must only be `true` for stateless programs, exactly
    /// as for [`Evaluator::evaluate_prepared_in`].
    ///
    /// # Panics
    /// If the tile is already full ([`BatchArena::is_full`]).
    pub fn push(&mut self, prog: &AlphaProgram, skip_training: bool) -> usize {
        assert!(self.filled < self.slots.len(), "tile is full");
        let t = crate::telemetry::mark();
        let slot = self.filled;
        let s = &mut self.slots[slot];
        compile_into(
            prog,
            &self.cfg,
            self.n_stocks,
            &mut self.compile_scratch,
            &mut s.compiled,
        );
        s.share_m0 = !writes_m0(&s.compiled);
        relocate_for_slot(&mut s.compiled, &self.cfg, self.n_stocks, slot, s.share_m0);
        s.skip_training = skip_training;
        s.fitness = None;
        s.live = false;
        self.filled += 1;
        self.spans.compile_ns.add(t.elapsed_ns());
        self.spans.candidates.inc();
        slot
    }

    /// Empties the tile (slot buffers keep their capacity).
    pub fn clear(&mut self) {
        self.filled = 0;
    }

    /// Number of filled slots.
    pub fn len(&self) -> usize {
        self.filled
    }

    /// Whether no slot is filled.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// Tile capacity `B`.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Whether every slot is filled.
    pub fn is_full(&self) -> bool {
        self.filled == self.slots.len()
    }

    /// Slot `slot`'s fitness from the last [`Evaluator::evaluate_batch_in`]:
    /// `Some(validation IC)`, or `None` when its predictions went
    /// non-finite.
    pub fn fitness(&self, slot: usize) -> Option<f64> {
        self.slots[slot].fitness
    }

    /// Slot `slot`'s validation long-short returns from the last
    /// evaluation (empty when the candidate was invalid).
    pub fn val_returns(&self, slot: usize) -> &[f64] {
        &self.slots[slot].returns
    }

    /// Captures slot `slot`'s per-stock RNG stream states (test hook for
    /// the RNG-stream contract).
    pub fn rng_states_into(&self, slot: usize, out: &mut Vec<[u64; 4]>) {
        self.interp.rng_states_into_slot(slot, out);
    }

    /// Takes the span timers and rank-cache counts accumulated since the
    /// last call (all zeros without the `obs` feature). Alloc-free.
    pub fn drain_telemetry(&mut self) -> crate::telemetry::EvalSpans {
        self.spans.absorb_rank_stats(self.interp.take_rank_stats());
        self.spans.drain()
    }
}

/// Scores alpha programs against one dataset. Cheap to share across
/// threads (`&self` evaluation; the dataset lives behind an `Arc`, label
/// panels behind `Arc<CrossSections>`).
pub struct Evaluator {
    cfg: AlphaConfig,
    opts: EvalOptions,
    dataset: Arc<Dataset>,
    day_major: Arc<DayMajorPanel>,
    groups: GroupIndex,
    val_labels: Arc<CrossSections>,
    test_labels: Arc<CrossSections>,
}

impl Evaluator {
    /// Builds an evaluator; precomputes label cross-sections and the
    /// stock-major input panel consumed by the columnar interpreter.
    pub fn new(cfg: AlphaConfig, opts: EvalOptions, dataset: Arc<Dataset>) -> Evaluator {
        cfg.validate();
        let groups = GroupIndex::from_universe(dataset.universe());
        let day_major = Arc::new(DayMajorPanel::from_panel(dataset.panel()));
        let val_labels = Arc::new(labels_cross_sections(&dataset, dataset.valid_days()));
        let test_labels = Arc::new(labels_cross_sections(&dataset, dataset.test_days()));
        Evaluator {
            cfg,
            opts,
            dataset,
            day_major,
            groups,
            val_labels,
            test_labels,
        }
    }

    /// The search-space configuration in force.
    pub fn config(&self) -> &AlphaConfig {
        &self.cfg
    }

    /// The evaluation options in force.
    pub fn options(&self) -> &EvalOptions {
        &self.opts
    }

    /// The dataset being evaluated against.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The precomputed validation label panel.
    pub fn val_labels(&self) -> &CrossSections {
        &self.val_labels
    }

    /// Replaces the evaluation options (used by the `_P` ablation). Label
    /// and input panels are shared with the parent, not deep-cloned.
    pub fn with_options(&self, opts: EvalOptions) -> Evaluator {
        Evaluator {
            cfg: self.cfg,
            opts,
            dataset: Arc::clone(&self.dataset),
            day_major: Arc::clone(&self.day_major),
            groups: self.groups.clone(),
            val_labels: Arc::clone(&self.val_labels),
            test_labels: Arc::clone(&self.test_labels),
        }
    }

    /// Builds a reusable per-worker evaluation arena. This is the only
    /// place interpreter state is allocated; candidates then flow through
    /// [`Evaluator::evaluate_in`] allocation-free.
    pub fn arena(&self) -> EvalArena<'_> {
        let val = self.dataset.valid_days().len();
        let test = self.dataset.test_days().len();
        let days = val.max(test);
        let k = self.dataset.n_stocks();
        EvalArena {
            interp: ColumnarInterpreter::new(
                &self.cfg,
                &self.dataset,
                &self.day_major,
                &self.groups,
                self.opts.seed,
            ),
            compiled: CompiledProgram::with_capacity(&self.cfg),
            compile_scratch: CompileScratch::default(),
            preds: CrossSections::new(days, k),
            returns: Vec::with_capacity(days),
            rank_scratch: Vec::with_capacity(k),
            spans: crate::telemetry::EvalSpans::default(),
        }
    }

    /// `Setup()` plus the training epochs (skipped entirely when
    /// `skip_training` — the §4.2 stateless-alpha shortcut).
    fn train(
        &self,
        interp: &mut ColumnarInterpreter<'_>,
        prog: &CompiledProgram,
        skip_training: bool,
    ) {
        interp.run_setup(prog);
        if skip_training {
            return;
        }
        for _ in 0..self.opts.train_epochs {
            for day in self.dataset.train_days() {
                interp.train_day(prog, day, self.opts.run_update);
            }
        }
    }

    /// Predict-only sweep over `days` into the flat `preds` panel; returns
    /// whether every prediction stayed finite. When `abort_on_invalid`,
    /// the first bad day is marked invalid in the panel (nothing is copied
    /// or truncated) and the sweep stops there.
    fn sweep(
        &self,
        interp: &mut ColumnarInterpreter<'_>,
        prog: &CompiledProgram,
        days: std::ops::Range<usize>,
        abort_on_invalid: bool,
        preds: &mut CrossSections,
    ) -> bool {
        let k = self.dataset.n_stocks();
        preds.reset(days.len(), k);
        for (i, day) in days.enumerate() {
            let row = preds.row_mut(i);
            interp.predict_day(prog, day, row);
            if abort_on_invalid && !row.iter().all(|x| x.is_finite()) {
                preds.invalidate_day(i);
                return false;
            }
        }
        true
    }

    /// Scores a candidate (expected to be the *pruned* program, which is
    /// what the search evaluates): one training pass, then validation IC
    /// and portfolio returns.
    pub fn evaluate(&self, prog: &AlphaProgram) -> Evaluation {
        self.evaluate_opt(prog, true)
    }

    /// [`Evaluator::evaluate`] with the stateless-skip optimization made
    /// explicit (pass `false` from pipelines that must not use any
    /// pruning-derived analysis, such as the Table-6 `_N` baseline).
    pub fn evaluate_opt(&self, prog: &AlphaProgram, allow_stateless_skip: bool) -> Evaluation {
        let mut arena = self.arena();
        let fitness = self.evaluate_opt_in(&mut arena, prog, allow_stateless_skip);
        Evaluation {
            fitness,
            ic: fitness.unwrap_or(0.0),
            val_returns: arena.take_val_returns(),
        }
    }

    /// Scores a candidate in a reusable arena: fitness is `Some(validation
    /// IC)`, or `None` when predictions went non-finite. The validation
    /// portfolio returns stay in the arena ([`EvalArena::val_returns`]).
    /// Allocation-free once the arena is warm.
    pub fn evaluate_in(&self, arena: &mut EvalArena<'_>, prog: &AlphaProgram) -> Option<f64> {
        self.evaluate_opt_in(arena, prog, true)
    }

    /// [`Evaluator::evaluate_in`] with the stateless-skip optimization
    /// made explicit.
    pub fn evaluate_opt_in(
        &self,
        arena: &mut EvalArena<'_>,
        prog: &AlphaProgram,
        allow_stateless_skip: bool,
    ) -> Option<f64> {
        let skip = allow_stateless_skip && !crate::prune::liveness(prog).stateful;
        self.evaluate_prepared_in(arena, prog, skip)
    }

    /// The lowest-level entry: the caller has already decided whether the
    /// training sweep may be skipped (e.g. the evolution pipeline knows
    /// `stateful` from the fingerprint pruning pass and avoids
    /// re-analyzing). `skip_training` must only be `true` for stateless
    /// programs, whose predictions are provably identical either way.
    pub fn evaluate_prepared_in(
        &self,
        arena: &mut EvalArena<'_>,
        prog: &AlphaProgram,
        skip_training: bool,
    ) -> Option<f64> {
        let EvalArena {
            interp,
            compiled,
            compile_scratch,
            preds,
            returns,
            rank_scratch,
            spans,
        } = arena;
        let t = crate::telemetry::mark();
        compile_into(
            prog,
            &self.cfg,
            self.dataset.n_stocks(),
            compile_scratch,
            compiled,
        );
        spans.compile_ns.add(t.elapsed_ns());
        spans.candidates.inc();
        let prog = &*compiled;
        interp.reset();
        let t = crate::telemetry::mark();
        self.train(interp, prog, skip_training);
        spans.train_ns.add(t.elapsed_ns());
        let t = crate::telemetry::mark();
        let ok = self.sweep(interp, prog, self.dataset.valid_days(), true, preds);
        spans.predict_ns.add(t.elapsed_ns());
        if !ok {
            returns.clear();
            return None;
        }
        let ic = information_coefficient(preds, &self.val_labels);
        long_short_returns_into(
            preds,
            &self.val_labels,
            &self.opts.long_short,
            rank_scratch,
            returns,
        );
        Some(ic)
    }

    /// Builds a reusable batched evaluation arena with `batch` tile slots
    /// (clamped to at least 1). See [`BatchArena`].
    pub fn batch_arena(&self, batch: usize) -> BatchArena<'_> {
        let batch = batch.max(1);
        let k = self.dataset.n_stocks();
        let n_days = self.dataset.valid_days().len();
        BatchArena {
            interp: BatchInterpreter::new(
                &self.cfg,
                &self.dataset,
                &self.day_major,
                &self.groups,
                self.opts.seed,
                batch,
            ),
            slots: (0..batch)
                .map(|_| BatchSlot {
                    compiled: CompiledProgram::with_capacity(&self.cfg),
                    preds: CrossSections::new(n_days, k),
                    returns: Vec::with_capacity(n_days),
                    fitness: None,
                    skip_training: false,
                    share_m0: true,
                    live: false,
                })
                .collect(),
            compile_scratch: CompileScratch::default(),
            rank_scratch: Vec::with_capacity(k),
            filled: 0,
            cfg: self.cfg,
            n_stocks: k,
            spans: crate::telemetry::EvalSpans::default(),
        }
    }

    /// Scores every filled slot of the tile in **one** day-major sweep:
    /// each training/validation day's feature panel is loaded once and
    /// dispatched across all slots before the sweep advances. Results land
    /// per slot ([`BatchArena::fitness`], [`BatchArena::val_returns`]) and
    /// are bit-identical to running each candidate alone through
    /// [`Evaluator::evaluate_prepared_in`] — including RNG streams,
    /// invalid-day aborts (a dead slot stops executing at its first
    /// non-finite day, exactly like the sequential abort), and the
    /// stateless `skip_training` shortcut per slot. Allocation-free once
    /// the arena is warm. A no-op on an empty tile.
    pub fn evaluate_batch_in(&self, arena: &mut BatchArena<'_>) {
        let BatchArena {
            interp,
            slots,
            rank_scratch,
            filled,
            spans,
            ..
        } = arena;
        let filled = *filled;
        let k = self.dataset.n_stocks();

        // Sequential evaluation starts from a zeroed register file, so a
        // Setup() body reading m0 must see zeros, not a stale panel.
        interp.reset_shared_input();
        let t = crate::telemetry::mark();
        for (b, s) in slots[..filled].iter_mut().enumerate() {
            interp.reset_slot(b);
            interp.debug_assert_slot_clean(b);
            interp.run_function_slot(b, &s.compiled.setup);
            s.live = true;
        }
        spans.train_ns.add(t.elapsed_ns());

        // Training sweep: one shared panel load per day, program-major
        // inner walk across the training slots.
        if slots[..filled].iter().any(|s| !s.skip_training) {
            for _ in 0..self.opts.train_epochs {
                for day in self.dataset.train_days() {
                    let t = crate::telemetry::mark();
                    interp.load_day(day);
                    spans.load_day_ns.add(t.elapsed_ns());
                    for (b, s) in slots[..filled].iter().enumerate() {
                        if s.skip_training {
                            continue;
                        }
                        if !s.share_m0 {
                            interp.stage_private_m0(b);
                        }
                        let t = crate::telemetry::mark();
                        interp.run_function_slot(b, &s.compiled.predict);
                        spans.predict_ns.add(t.elapsed_ns());
                        if self.opts.run_update {
                            let t = crate::telemetry::mark();
                            interp.load_labels_slot(b, day);
                            interp.run_function_slot(b, &s.compiled.update);
                            spans.update_ns.add(t.elapsed_ns());
                        }
                    }
                }
            }
        }

        // Validation sweep, aborting dead slots at their first bad day.
        let days = self.dataset.valid_days();
        let n_days = days.len();
        for s in &mut slots[..filled] {
            s.preds.reset(n_days, k);
        }
        for (i, day) in days.enumerate() {
            if slots[..filled].iter().all(|s| !s.live) {
                break;
            }
            let t = crate::telemetry::mark();
            interp.load_day(day);
            spans.load_day_ns.add(t.elapsed_ns());
            for (b, s) in slots[..filled].iter_mut().enumerate() {
                if !s.live {
                    continue;
                }
                if !s.share_m0 {
                    interp.stage_private_m0(b);
                }
                let t = crate::telemetry::mark();
                interp.run_function_slot(b, &s.compiled.predict);
                let row = s.preds.row_mut(i);
                interp.read_predictions_slot(b, row);
                spans.predict_ns.add(t.elapsed_ns());
                if !row.iter().all(|x| x.is_finite()) {
                    s.preds.invalidate_day(i);
                    s.live = false;
                }
            }
        }

        for s in &mut slots[..filled] {
            if s.live {
                let ic = information_coefficient(&s.preds, &self.val_labels);
                long_short_returns_into(
                    &s.preds,
                    &self.val_labels,
                    &self.opts.long_short,
                    rank_scratch,
                    &mut s.returns,
                );
                s.fitness = Some(ic);
            } else {
                s.returns.clear();
                s.fitness = None;
            }
        }
    }

    /// Full backtest of a finished alpha: train, then predict-only through
    /// the validation days (keeping recurrent state contiguous) and the
    /// held-out test days. Non-finite predictions are tolerated here (the
    /// portfolio treats those stocks as untradeable) so even a degenerate
    /// alpha gets a report.
    pub fn backtest(&self, prog: &AlphaProgram) -> BacktestReport {
        let mut arena = self.arena();
        self.backtest_in(&mut arena, prog)
    }

    /// [`Evaluator::backtest`] against a reusable arena.
    pub fn backtest_in(&self, arena: &mut EvalArena<'_>, prog: &AlphaProgram) -> BacktestReport {
        let EvalArena {
            interp,
            compiled,
            compile_scratch,
            preds,
            ..
        } = arena;
        compile_into(
            prog,
            &self.cfg,
            self.dataset.n_stocks(),
            compile_scratch,
            compiled,
        );
        let skip = !crate::prune::liveness(prog).stateful;
        let prog = &*compiled;
        interp.reset();
        self.train(interp, prog, skip);
        let split = |preds: &CrossSections, labels: &CrossSections| {
            let returns = long_short_returns(preds, labels, &self.opts.long_short);
            SplitMetrics {
                ic: information_coefficient(preds, labels),
                sharpe: sharpe_ratio(&returns),
                returns,
            }
        };
        self.sweep(interp, prog, self.dataset.valid_days(), false, preds);
        let val = split(preds, &self.val_labels);
        self.sweep(interp, prog, self.dataset.test_days(), false, preds);
        let test = split(preds, &self.test_labels);
        BacktestReport { val, test }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use crate::instruction::Instruction;
    use crate::op::Op;
    use alphaevolve_market::{features::FeatureSet, generator::MarketConfig, SplitSpec};

    fn evaluator(seed: u64) -> Evaluator {
        let md = MarketConfig {
            n_stocks: 24,
            n_days: 200,
            seed,
            ..Default::default()
        }
        .generate();
        let ds = Dataset::build(&md, &FeatureSet::paper(), SplitSpec::paper_ratios()).unwrap();
        Evaluator::new(
            AlphaConfig::default(),
            EvalOptions {
                long_short: LongShortConfig::scaled(24),
                ..Default::default()
            },
            Arc::new(ds),
        )
    }

    #[test]
    fn domain_expert_alpha_scores_finite_ic() {
        let ev = evaluator(1);
        let prog = init::domain_expert(ev.config());
        let e = ev.evaluate(&prog);
        assert!(e.fitness.is_some(), "expert alpha must be valid");
        assert!(e.ic.abs() < 1.0);
        assert_eq!(e.val_returns.len(), ev.dataset().valid_days().len());
    }

    #[test]
    fn invalid_alpha_is_killed() {
        let ev = evaluator(2);
        // s1 = ln(-|m0 mean| - 1) -> NaN everywhere.
        let prog = AlphaProgram {
            setup: vec![Instruction::new(Op::SConst, 0, 0, 3, [-1.0, 0.0], [0; 2])],
            predict: vec![
                Instruction::new(Op::MMean, 0, 0, 2, [0.0; 2], [0; 2]),
                Instruction::new(Op::SAbs, 2, 0, 2, [0.0; 2], [0; 2]),
                Instruction::new(Op::SMul, 2, 3, 2, [0.0; 2], [0; 2]),
                Instruction::new(Op::SAdd, 2, 3, 2, [0.0; 2], [0; 2]),
                Instruction::new(Op::SLn, 2, 0, 1, [0.0; 2], [0; 2]),
            ],
            update: vec![Instruction::nop()],
        };
        let e = ev.evaluate(&prog);
        assert!(e.fitness.is_none());
        assert!(e.val_returns.is_empty());
    }

    #[test]
    fn evaluation_is_deterministic() {
        let ev = evaluator(3);
        let prog = init::two_layer_nn(ev.config());
        let a = ev.evaluate(&prog);
        let b = ev.evaluate(&prog);
        assert_eq!(a.ic, b.ic);
        assert_eq!(a.val_returns, b.val_returns);
    }

    #[test]
    fn arena_reuse_matches_fresh_arenas() {
        // One arena fed a mix of candidates scores each exactly like a
        // throwaway arena: reset() fully isolates candidates.
        let ev = evaluator(7);
        let progs = [
            init::domain_expert(ev.config()),
            init::two_layer_nn(ev.config()),
            init::industry_reversal(ev.config()),
            init::domain_expert(ev.config()),
        ];
        let mut arena = ev.arena();
        for prog in &progs {
            let shared = ev.evaluate_in(&mut arena, prog);
            let shared_returns = arena.val_returns().to_vec();
            let fresh = ev.evaluate(prog);
            assert_eq!(shared, fresh.fitness);
            assert_eq!(shared_returns, fresh.val_returns);
        }
    }

    #[test]
    fn arena_clears_returns_for_invalid_candidates() {
        let ev = evaluator(8);
        let good = init::domain_expert(ev.config());
        let bad = AlphaProgram {
            setup: vec![Instruction::new(Op::SConst, 0, 0, 3, [-1.0, 0.0], [0; 2])],
            predict: vec![
                Instruction::new(Op::MMean, 0, 0, 2, [0.0; 2], [0; 2]),
                Instruction::new(Op::SAbs, 2, 0, 2, [0.0; 2], [0; 2]),
                Instruction::new(Op::SMul, 2, 3, 2, [0.0; 2], [0; 2]),
                Instruction::new(Op::SAdd, 2, 3, 2, [0.0; 2], [0; 2]),
                Instruction::new(Op::SLn, 2, 0, 1, [0.0; 2], [0; 2]),
            ],
            update: vec![Instruction::nop()],
        };
        let mut arena = ev.arena();
        assert!(ev.evaluate_in(&mut arena, &good).is_some());
        assert!(!arena.val_returns().is_empty());
        assert!(ev.evaluate_in(&mut arena, &bad).is_none());
        assert!(
            arena.val_returns().is_empty(),
            "stale returns must not leak into the gate"
        );
    }

    #[test]
    fn with_options_shares_label_panels() {
        let ev = evaluator(9);
        let other = ev.with_options(EvalOptions {
            run_update: false,
            long_short: ev.options().long_short,
            ..Default::default()
        });
        assert!(
            std::ptr::eq(ev.val_labels(), other.val_labels()),
            "labels must be shared, not deep-cloned"
        );
    }

    #[test]
    fn backtest_reports_both_splits() {
        let ev = evaluator(4);
        let prog = init::domain_expert(ev.config());
        let r = ev.backtest(&prog);
        assert_eq!(r.val.returns.len(), ev.dataset().valid_days().len());
        assert_eq!(r.test.returns.len(), ev.dataset().test_days().len());
        assert!(r.val.ic.is_finite() && r.test.ic.is_finite());
        assert!(r.val.sharpe.is_finite() && r.test.sharpe.is_finite());
    }

    #[test]
    fn industry_reversal_seed_finds_the_planted_relational_signal() {
        // The generator plants an industry-relative 5-day reversal; the
        // RelationOp-based expert seed is built to harvest exactly that,
        // so its IC must be clearly positive — this is the end-to-end
        // proof that RelationOps expose cross-sectional structure.
        let md = MarketConfig {
            n_stocks: 60,
            n_days: 300,
            seed: 77,
            ..Default::default()
        }
        .generate();
        let ds = Dataset::build(&md, &FeatureSet::paper(), SplitSpec::paper_ratios()).unwrap();
        let ev = Evaluator::new(
            AlphaConfig::default(),
            EvalOptions {
                long_short: LongShortConfig::scaled(60),
                ..Default::default()
            },
            Arc::new(ds),
        );
        let e = ev.evaluate(&init::industry_reversal(ev.config()));
        assert!(e.ic > 0.05, "industry-reversal seed IC {} too low", e.ic);
    }

    #[test]
    fn ablation_changes_scores_for_parameterized_alpha() {
        let ev = evaluator(5);
        let prog = init::two_layer_nn(ev.config());
        let with = ev.evaluate(&prog);
        let without = ev.with_options(EvalOptions {
            run_update: false,
            long_short: ev.options().long_short,
            ..Default::default()
        });
        let ablated = without.evaluate(&prog);
        // The NN's whole signal comes from trained weights; ablating the
        // update function must change (typically destroy) its predictions.
        assert_ne!(with.ic, ablated.ic);
    }
}
