//! Candidate evaluation: train one epoch, score the Information
//! Coefficient on the validation cross-sections (paper Eq. 1).
//!
//! Invalid-value policy follows AutoML-Zero: operations are unprotected, and
//! any candidate whose validation predictions contain a non-finite value is
//! killed (fitness `None`) — the evaluator aborts the validation sweep at
//! the first bad day instead of clamping.

use std::sync::Arc;

use alphaevolve_backtest::metrics::{information_coefficient, sharpe_ratio};
use alphaevolve_backtest::portfolio::{long_short_returns, LongShortConfig};
use alphaevolve_market::Dataset;

use crate::config::AlphaConfig;
use crate::interp::Interpreter;
use crate::program::AlphaProgram;
use crate::relation::GroupIndex;

/// Evaluation policy knobs.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Training epochs during search. The paper trains one epoch "for fast
    /// evaluation" (§5.2).
    pub train_epochs: usize,
    /// Run the parameter-updating function during training. `false` is the
    /// paper's `_P` ablation (Table 4).
    pub run_update: bool,
    /// Long-short books used for the validation portfolio returns (the
    /// correlation-cutoff signal) and test backtests.
    pub long_short: LongShortConfig,
    /// Seed of the per-stock RNG streams used by stochastic ops.
    pub seed: u64,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            train_epochs: 1,
            run_update: true,
            long_short: LongShortConfig {
                k_long: 10,
                k_short: 10,
            },
            seed: 0,
        }
    }
}

/// Result of scoring one candidate on the validation set.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Fitness: validation IC, or `None` when predictions went non-finite.
    pub fitness: Option<f64>,
    /// The IC value (0 when invalid).
    pub ic: f64,
    /// Daily long-short portfolio returns on the validation set (empty
    /// when invalid). Input to the weak-correlation gate.
    pub val_returns: Vec<f64>,
}

/// Metrics of one split in a full backtest.
#[derive(Debug, Clone)]
pub struct SplitMetrics {
    /// Mean daily cross-sectional Pearson IC.
    pub ic: f64,
    /// Annualized Sharpe ratio of the long-short portfolio.
    pub sharpe: f64,
    /// Daily long-short portfolio returns.
    pub returns: Vec<f64>,
}

/// Validation + test metrics for a finished alpha.
#[derive(Debug, Clone)]
pub struct BacktestReport {
    /// Metrics on the validation days.
    pub val: SplitMetrics,
    /// Metrics on the held-out test days.
    pub test: SplitMetrics,
}

/// Scores alpha programs against one dataset. Cheap to share across
/// threads (`&self` evaluation; the dataset lives behind an `Arc`).
pub struct Evaluator {
    cfg: AlphaConfig,
    opts: EvalOptions,
    dataset: Arc<Dataset>,
    groups: GroupIndex,
    val_labels: Vec<Vec<f64>>,
    test_labels: Vec<Vec<f64>>,
}

impl Evaluator {
    /// Builds an evaluator; precomputes label cross-sections.
    pub fn new(cfg: AlphaConfig, opts: EvalOptions, dataset: Arc<Dataset>) -> Evaluator {
        cfg.validate();
        let groups = GroupIndex::from_universe(dataset.universe());
        let val_labels = dataset.valid_days().map(|d| dataset.labels_at(d)).collect();
        let test_labels = dataset.test_days().map(|d| dataset.labels_at(d)).collect();
        Evaluator {
            cfg,
            opts,
            dataset,
            groups,
            val_labels,
            test_labels,
        }
    }

    /// The search-space configuration in force.
    pub fn config(&self) -> &AlphaConfig {
        &self.cfg
    }

    /// The evaluation options in force.
    pub fn options(&self) -> &EvalOptions {
        &self.opts
    }

    /// The dataset being evaluated against.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Replaces the evaluation options (used by the `_P` ablation).
    pub fn with_options(&self, opts: EvalOptions) -> Evaluator {
        Evaluator {
            cfg: self.cfg,
            opts,
            dataset: Arc::clone(&self.dataset),
            groups: self.groups.clone(),
            val_labels: self.val_labels.clone(),
            test_labels: self.test_labels.clone(),
        }
    }

    /// Runs `Setup()` and the training epochs. `allow_stateless_skip`
    /// elides the training sweep for alphas that carry no cross-day state
    /// (formulaic alphas — "a special case of the new alpha with no
    /// parameters"), whose predictions are provably identical either way
    /// up to the RNG stream of stochastic predict ops. The Table-6 `_N`
    /// ablation disables the skip, since it derives from the §4.2 pruning
    /// analysis being ablated there.
    fn train(&self, interp: &mut Interpreter<'_>, prog: &AlphaProgram, allow_stateless_skip: bool) {
        interp.run_setup(prog);
        if allow_stateless_skip && !crate::prune::prune(prog).stateful {
            return;
        }
        for _ in 0..self.opts.train_epochs {
            for day in self.dataset.train_days() {
                interp.train_day(prog, day, self.opts.run_update);
            }
        }
    }

    /// Predict-only sweep over `days`; returns per-day cross-sections and
    /// whether every prediction stayed finite (aborts early when not).
    fn sweep(
        &self,
        interp: &mut Interpreter<'_>,
        prog: &AlphaProgram,
        days: std::ops::Range<usize>,
        abort_on_invalid: bool,
    ) -> (Vec<Vec<f64>>, bool) {
        let k = self.dataset.n_stocks();
        let mut preds = Vec::with_capacity(days.len());
        for day in days {
            let mut row = vec![0.0; k];
            interp.predict_day(prog, day, &mut row);
            let finite = row.iter().all(|x| x.is_finite());
            preds.push(row);
            if !finite && abort_on_invalid {
                return (preds, false);
            }
        }
        (preds, true)
    }

    /// Scores a candidate (expected to be the *pruned* program, which is
    /// what the search evaluates): one training pass, then validation IC
    /// and portfolio returns.
    pub fn evaluate(&self, prog: &AlphaProgram) -> Evaluation {
        self.evaluate_opt(prog, true)
    }

    /// [`Evaluator::evaluate`] with the stateless-skip optimization made
    /// explicit (pass `false` from pipelines that must not use any
    /// pruning-derived analysis, such as the Table-6 `_N` baseline).
    pub fn evaluate_opt(&self, prog: &AlphaProgram, allow_stateless_skip: bool) -> Evaluation {
        let mut interp = Interpreter::new(&self.cfg, &self.dataset, &self.groups, self.opts.seed);
        self.train(&mut interp, prog, allow_stateless_skip);
        let (preds, valid) = self.sweep(&mut interp, prog, self.dataset.valid_days(), true);
        if !valid {
            return Evaluation {
                fitness: None,
                ic: 0.0,
                val_returns: Vec::new(),
            };
        }
        let ic = information_coefficient(&preds, &self.val_labels);
        let val_returns = long_short_returns(&preds, &self.val_labels, &self.opts.long_short);
        Evaluation {
            fitness: Some(ic),
            ic,
            val_returns,
        }
    }

    /// Full backtest of a finished alpha: train, then predict-only through
    /// the validation days (keeping recurrent state contiguous) and the
    /// held-out test days. Non-finite predictions are tolerated here (the
    /// portfolio treats those stocks as untradeable) so even a degenerate
    /// alpha gets a report.
    pub fn backtest(&self, prog: &AlphaProgram) -> BacktestReport {
        let mut interp = Interpreter::new(&self.cfg, &self.dataset, &self.groups, self.opts.seed);
        self.train(&mut interp, prog, true);
        let (val_preds, _) = self.sweep(&mut interp, prog, self.dataset.valid_days(), false);
        let (test_preds, _) = self.sweep(&mut interp, prog, self.dataset.test_days(), false);
        let split = |preds: &[Vec<f64>], labels: &[Vec<f64>]| {
            let returns = long_short_returns(preds, labels, &self.opts.long_short);
            SplitMetrics {
                ic: information_coefficient(preds, labels),
                sharpe: sharpe_ratio(&returns),
                returns,
            }
        };
        BacktestReport {
            val: split(&val_preds, &self.val_labels),
            test: split(&test_preds, &self.test_labels),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use crate::instruction::Instruction;
    use crate::op::Op;
    use alphaevolve_market::{features::FeatureSet, generator::MarketConfig, SplitSpec};

    fn evaluator(seed: u64) -> Evaluator {
        let md = MarketConfig {
            n_stocks: 24,
            n_days: 200,
            seed,
            ..Default::default()
        }
        .generate();
        let ds = Dataset::build(&md, &FeatureSet::paper(), SplitSpec::paper_ratios()).unwrap();
        Evaluator::new(
            AlphaConfig::default(),
            EvalOptions {
                long_short: LongShortConfig::scaled(24),
                ..Default::default()
            },
            Arc::new(ds),
        )
    }

    #[test]
    fn domain_expert_alpha_scores_finite_ic() {
        let ev = evaluator(1);
        let prog = init::domain_expert(ev.config());
        let e = ev.evaluate(&prog);
        assert!(e.fitness.is_some(), "expert alpha must be valid");
        assert!(e.ic.abs() < 1.0);
        assert_eq!(e.val_returns.len(), ev.dataset().valid_days().len());
    }

    #[test]
    fn invalid_alpha_is_killed() {
        let ev = evaluator(2);
        // s1 = ln(-|m0 mean| - 1) -> NaN everywhere.
        let prog = AlphaProgram {
            setup: vec![Instruction::new(Op::SConst, 0, 0, 3, [-1.0, 0.0], [0; 2])],
            predict: vec![
                Instruction::new(Op::MMean, 0, 0, 2, [0.0; 2], [0; 2]),
                Instruction::new(Op::SAbs, 2, 0, 2, [0.0; 2], [0; 2]),
                Instruction::new(Op::SMul, 2, 3, 2, [0.0; 2], [0; 2]),
                Instruction::new(Op::SAdd, 2, 3, 2, [0.0; 2], [0; 2]),
                Instruction::new(Op::SLn, 2, 0, 1, [0.0; 2], [0; 2]),
            ],
            update: vec![Instruction::nop()],
        };
        let e = ev.evaluate(&prog);
        assert!(e.fitness.is_none());
        assert!(e.val_returns.is_empty());
    }

    #[test]
    fn evaluation_is_deterministic() {
        let ev = evaluator(3);
        let prog = init::two_layer_nn(ev.config());
        let a = ev.evaluate(&prog);
        let b = ev.evaluate(&prog);
        assert_eq!(a.ic, b.ic);
        assert_eq!(a.val_returns, b.val_returns);
    }

    #[test]
    fn backtest_reports_both_splits() {
        let ev = evaluator(4);
        let prog = init::domain_expert(ev.config());
        let r = ev.backtest(&prog);
        assert_eq!(r.val.returns.len(), ev.dataset().valid_days().len());
        assert_eq!(r.test.returns.len(), ev.dataset().test_days().len());
        assert!(r.val.ic.is_finite() && r.test.ic.is_finite());
        assert!(r.val.sharpe.is_finite() && r.test.sharpe.is_finite());
    }

    #[test]
    fn industry_reversal_seed_finds_the_planted_relational_signal() {
        // The generator plants an industry-relative 5-day reversal; the
        // RelationOp-based expert seed is built to harvest exactly that,
        // so its IC must be clearly positive — this is the end-to-end
        // proof that RelationOps expose cross-sectional structure.
        let md = MarketConfig {
            n_stocks: 60,
            n_days: 300,
            seed: 77,
            ..Default::default()
        }
        .generate();
        let ds = Dataset::build(&md, &FeatureSet::paper(), SplitSpec::paper_ratios()).unwrap();
        let ev = Evaluator::new(
            AlphaConfig::default(),
            EvalOptions {
                long_short: LongShortConfig::scaled(60),
                ..Default::default()
            },
            Arc::new(ds),
        );
        let e = ev.evaluate(&init::industry_reversal(ev.config()));
        assert!(e.ic > 0.05, "industry-reversal seed IC {} too low", e.ic);
    }

    #[test]
    fn ablation_changes_scores_for_parameterized_alpha() {
        let ev = evaluator(5);
        let prog = init::two_layer_nn(ev.config());
        let with = ev.evaluate(&prog);
        let without = ev.with_options(EvalOptions {
            run_update: false,
            long_short: ev.options().long_short,
            ..Default::default()
        });
        let ablated = without.evaluate(&prog);
        // The NN's whole signal comes from trained weights; ablating the
        // update function must change (typically destroy) its predictions.
        assert_ne!(with.ic, ablated.ic);
    }
}
