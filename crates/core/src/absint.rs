//! Abstract interpretation over [`AlphaProgram`]s: a constant / interval /
//! NaN lattice that proves semantic facts about the prediction register
//! *without evaluating the program* (paper §4.2, Fig. 5b — extended beyond
//! the `uses_input` check).
//!
//! # The lattice
//!
//! Each register (scalar, vector, or matrix) is summarized by one
//! [`AbsVal`] describing **every element** the register may hold:
//!
//! * [`Vals`] — the numeric component. `Const(c)` means every element is
//!   exactly the bit pattern `c` (never NaN); `Range(lo, hi)` means every
//!   *non-NaN* element lies in `[lo, hi]` numerically (endpoints may be
//!   `±inf`; `Range(-inf, +inf)` is the numeric top).
//! * [`NanState`] — whether elements can be NaN: `Never`, `Maybe`, or
//!   `Always` (every element of every stock's register is NaN).
//! * `uniform` — every stock holds the **identical bit pattern** in this
//!   register. Deterministic ops on bitwise-identical inputs produce
//!   bitwise-identical outputs, so the flag propagates through every
//!   non-stochastic op (and through `rel_demean` on the all-stocks group,
//!   where every stock sees the same group mean).
//! * `day_inv` — the register holds the same value at this program point
//!   on every day (execution cycle).
//!
//! The join is pointwise: interval hull on `Vals` (two distinct constants
//! widen to their hull), `Never ⊔ Always = Maybe` on [`NanState`], and
//! logical AND on the flags. A side that is `Always`-NaN contributes no
//! non-NaN elements, so its `Vals` component is ignored by the join.
//!
//! # The cycle model
//!
//! The interpreter's schedule (see `interp::Interpreter::train_day`) is
//! `Setup → (load input → Predict → [load label → Update])* → Predict`:
//! setup runs once, then each day loads the feature matrix into `m0`, runs
//! predict, and — on training days only — loads the label into `s0` and
//! runs update. Validation days run predict alone. The analysis mirrors
//! this exactly:
//!
//! 1. Run setup's transfer functions over the all-zero initial state.
//! 2. Iterate to a fixpoint on the *cycle entry* state: each iteration
//!    clobbers `m0` with the feature-panel summary, runs predict, then
//!    (with `s0` clobbered by the label summary) runs update, and joins
//!    both exit states back into the entry. Joining the predict exit
//!    covers validation days (no update) and the skip-update training
//!    mode; joining the update exit covers training days.
//! 3. After convergence, facts are read from `s1` at the predict exit.
//!
//! Ranges are widened to `(-inf, +inf)` once an entry register's numeric
//! component is still changing after `WIDEN_AFTER` iterations, so the
//! fixpoint terminates: after widening, each register can only step down
//! the finite flag lattices. `day_inv` needs one extra rule: a recurrence
//! such as `s2 = s2 + 1` in update is day-*variant* even though `+` on
//! day-invariant inputs looks day-invariant, so the cycle join drops
//! `day_inv` on any register whose joined value differs from the previous
//! entry (the value evolves across cycles). The drop is sticky because
//! the flag lattice only moves downward.
//!
//! Feature and label inputs are modeled as `Range(-f64::MAX, f64::MAX)`,
//! never NaN, non-uniform, day-varying — the dataset builder produces
//! finite features and labels (normalized panels / clamped returns).
//!
//! # Soundness notes
//!
//! * Interval endpoints are computed in `f64`. Rounding is monotone, so
//!   for monotone ops (`+`, `-` endpointwise, corner products for `*`)
//!   the computed endpoints bound every representable result.
//! * `f64::min`/`max` are **not** NaN-strict (`min(NaN, x) = x`): an
//!   `Always`-NaN operand makes the result exactly the other operand.
//! * `heaviside` maps NaN to `0.0` and never produces NaN.
//! * Reductions (`v_sum`, `v_mean`, `mat_*`, …) may overflow to `±inf`
//!   and then cancel to NaN downstream, so a sum of `n` elements bounded
//!   by `M` is only `Never`-NaN when the conservative bound `2·n·M` is
//!   finite (the true partial-sum bound is `n·M·(1+ε)ⁿ < 2·n·M` for any
//!   program-sized `n`).
//! * Squared-sum reductions (`v_norm`, `m_norm`) cannot cancel (squares
//!   are non-negative) and therefore never *create* NaN.
//! * `ts_rank` compares against NaN with `<` / `==` (both false), so its
//!   output is `below / (dim-1)`: never NaN for `dim ≥ 2`, and exactly
//!   `0.0` when the input is all-NaN.
//! * `rel_rank` outputs the average-rank formula `(i+j)/2/(n-1) ∈ [0,1]`
//!   and never NaN; a cross-sectionally uniform, never-NaN input makes
//!   every group a single tie run, which ranks exactly `0.5`.
//!
//! The proptest battery in `tests/static_analysis.rs` pins these claims
//! differentially: statically rejected programs, when actually evaluated,
//! must exhibit the predicted degeneracy.

use crate::config::AlphaConfig;
use crate::instruction::Instruction;
use crate::memory::{INPUT, LABEL, PREDICTION};
use crate::op::{Kind, Op, RelGroup};
use crate::program::{AlphaProgram, FunctionId};

/// Iterations of the cycle fixpoint before ranges are widened to top.
const WIDEN_AFTER: usize = 8;

/// Upper bound on the standard-normal magnitude produced by the
/// Box–Muller kernel in `market::rngutil` (`u1 ∈ [2⁻⁵³, 1]` gives
/// `|z| ≤ sqrt(2·53·ln 2) ≈ 8.58`); padded for rounding slack.
const GAUSS_Z_BOUND: f64 = 16.0;

/// Numeric component of an abstract register value.
#[derive(Debug, Clone, Copy)]
pub enum Vals {
    /// Every element holds exactly this bit pattern (never NaN).
    Const(f64),
    /// Every non-NaN element lies in `[lo, hi]` (endpoints may be `±inf`).
    Range(f64, f64),
}

impl Vals {
    /// The numeric top: any non-NaN value.
    pub const TOP: Vals = Vals::Range(f64::NEG_INFINITY, f64::INFINITY);

    fn hull(self) -> (f64, f64) {
        match self {
            Vals::Const(c) => (c, c),
            Vals::Range(lo, hi) => (lo, hi),
        }
    }

    fn identical(self, other: Vals) -> bool {
        match (self, other) {
            (Vals::Const(a), Vals::Const(b)) => a.to_bits() == b.to_bits(),
            (Vals::Range(a0, a1), Vals::Range(b0, b1)) => {
                a0.to_bits() == b0.to_bits() && a1.to_bits() == b1.to_bits()
            }
            _ => false,
        }
    }
}

/// Builds a range, normalizing NaN endpoints (possible when endpoint
/// arithmetic hits `inf - inf`) to the numeric top.
fn range(lo: f64, hi: f64) -> Vals {
    if lo.is_nan() || hi.is_nan() {
        Vals::TOP
    } else {
        Vals::Range(lo, hi)
    }
}

/// Whether register elements can be NaN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NanState {
    /// No element is ever NaN.
    Never,
    /// Elements may or may not be NaN.
    Maybe,
    /// Every element of every stock's register is NaN.
    Always,
}

impl NanState {
    fn join(self, other: NanState) -> NanState {
        if self == other {
            self
        } else {
            NanState::Maybe
        }
    }
}

/// Abstract value of one register: every element of every stock's copy of
/// the register satisfies this summary.
#[derive(Debug, Clone, Copy)]
pub struct AbsVal {
    /// Numeric component (describes the non-NaN elements).
    pub vals: Vals,
    /// NaN component.
    pub nan: NanState,
    /// Every stock holds the identical bit pattern.
    pub uniform: bool,
    /// Same value at this program point on every day.
    pub day_inv: bool,
}

impl AbsVal {
    /// The unconstrained value: anything, on any stock, any day.
    pub fn top() -> AbsVal {
        AbsVal {
            vals: Vals::TOP,
            nan: NanState::Maybe,
            uniform: false,
            day_inv: false,
        }
    }

    /// The abstraction of a concrete constant filling the register: every
    /// element, stock, and day holds exactly `c`. NaN constants become
    /// `Always`-NaN.
    pub fn constant(c: f64) -> AbsVal {
        if c.is_nan() {
            AbsVal {
                vals: Vals::TOP,
                nan: NanState::Always,
                uniform: true,
                day_inv: true,
            }
        } else {
            AbsVal {
                vals: Vals::Const(c),
                nan: NanState::Never,
                uniform: true,
                day_inv: true,
            }
        }
    }

    /// The feature/label input model: finite, per-stock, per-day data.
    fn input() -> AbsVal {
        AbsVal {
            vals: Vals::Range(-f64::MAX, f64::MAX),
            nan: NanState::Never,
            uniform: false,
            day_inv: false,
        }
    }

    /// The exact constant if this value is a known non-NaN constant.
    pub fn as_const(&self) -> Option<f64> {
        match (self.vals, self.nan) {
            (Vals::Const(c), NanState::Never) => Some(c),
            _ => None,
        }
    }

    /// Numeric hull `(lo, hi)` of the non-NaN elements.
    pub fn hull(&self) -> (f64, f64) {
        self.vals.hull()
    }

    /// Whether both hull endpoints are finite.
    pub fn bounded(&self) -> bool {
        let (lo, hi) = self.hull();
        lo.is_finite() && hi.is_finite()
    }

    fn may_pos_inf(&self) -> bool {
        self.hull().1 == f64::INFINITY
    }

    fn may_neg_inf(&self) -> bool {
        self.hull().0 == f64::NEG_INFINITY
    }

    fn may_inf(&self) -> bool {
        self.may_pos_inf() || self.may_neg_inf()
    }

    fn may_zero(&self) -> bool {
        let (lo, hi) = self.hull();
        lo <= 0.0 && hi >= 0.0
    }

    fn identical(&self, other: &AbsVal) -> bool {
        self.vals.identical(other.vals)
            && self.nan == other.nan
            && self.uniform == other.uniform
            && self.day_inv == other.day_inv
    }

    /// Pointwise lattice join. An `Always`-NaN side contributes no
    /// non-NaN elements, so its numeric component is ignored.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        let vals = if self.nan == NanState::Always {
            other.vals
        } else if other.nan == NanState::Always {
            self.vals
        } else {
            match (self.vals, other.vals) {
                (Vals::Const(a), Vals::Const(b)) if a.to_bits() == b.to_bits() => Vals::Const(a),
                (a, b) => {
                    let (al, ah) = a.hull();
                    let (bl, bh) = b.hull();
                    range(al.min(bl), ah.max(bh))
                }
            }
        };
        AbsVal {
            vals,
            nan: self.nan.join(other.nan),
            uniform: self.uniform && other.uniform,
            day_inv: self.day_inv && other.day_inv,
        }
    }
}

/// Abstract machine state: one [`AbsVal`] per register of each bank,
/// sized by the [`AlphaConfig`].
#[derive(Debug, Clone)]
pub struct AbsState {
    s: Vec<AbsVal>,
    v: Vec<AbsVal>,
    m: Vec<AbsVal>,
}

impl AbsState {
    /// The interpreter's initial state: every register zero-filled.
    pub fn zeroed(cfg: &AlphaConfig) -> AbsState {
        AbsState {
            s: vec![AbsVal::constant(0.0); cfg.n_scalars],
            v: vec![AbsVal::constant(0.0); cfg.n_vectors],
            m: vec![AbsVal::constant(0.0); cfg.n_matrices],
        }
    }

    fn bank(&self, kind: Kind) -> &[AbsVal] {
        match kind {
            Kind::S => &self.s,
            Kind::V => &self.v,
            Kind::M => &self.m,
        }
    }

    /// Reads a register; out-of-range indices (a structurally invalid
    /// program) read as top, keeping the analysis total.
    pub fn get(&self, kind: Kind, reg: u8) -> AbsVal {
        self.bank(kind)
            .get(reg as usize)
            .copied()
            .unwrap_or_else(AbsVal::top)
    }

    fn set(&mut self, kind: Kind, reg: u8, val: AbsVal) {
        let bank = match kind {
            Kind::S => &mut self.s,
            Kind::V => &mut self.v,
            Kind::M => &mut self.m,
        };
        if let Some(slot) = bank.get_mut(reg as usize) {
            *slot = val;
        }
    }

    /// Joins `exit` into this cycle-entry state. Returns whether anything
    /// changed. `widen` promotes still-changing numeric components to
    /// top. A register whose joined value differs from the previous entry
    /// evolves across cycles, so its `day_inv` is dropped (see module
    /// docs — this is what catches `s2 = s2 + 1` recurrences).
    fn cycle_join(&mut self, exit: &AbsState, widen: bool) -> bool {
        let mut changed = false;
        let banks = [Kind::S, Kind::V, Kind::M];
        for kind in banks {
            for reg in 0..self.bank(kind).len() {
                let entry = self.bank(kind)[reg];
                let other = exit.bank(kind)[reg];
                let mut j = entry.join(&other);
                if !j.vals.identical(entry.vals) {
                    if widen {
                        j.vals = Vals::TOP;
                    }
                    j.day_inv = false;
                }
                if j.nan != entry.nan {
                    j.day_inv = false;
                }
                if !j.identical(&entry) {
                    match kind {
                        Kind::S => self.s[reg] = j,
                        Kind::V => self.v[reg] = j,
                        Kind::M => self.m[reg] = j,
                    }
                    changed = true;
                }
            }
        }
        changed
    }
}

/// Facts proven about the prediction register `s1` at the predict exit.
#[derive(Debug, Clone, Copy)]
pub struct ProgramFacts {
    /// Abstract value of the prediction.
    pub prediction: AbsVal,
    /// The prediction is NaN on every stock, every day.
    pub always_nan: bool,
    /// The prediction is cross-sectionally uniform (identical bits on
    /// every stock) — zero variance, so the rank IC is undefined.
    pub uniform: bool,
    /// The prediction is additionally a known compile-time constant.
    pub constant: bool,
    /// The prediction is the same on every day (report-only: the
    /// cross-sectional IC can still be legitimate).
    pub day_invariant: bool,
}

/// Pre-evaluation verdict derived from [`ProgramFacts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticVerdict {
    /// No proven degeneracy; the program must be evaluated.
    Accept,
    /// The prediction is provably NaN every day: evaluation would abort
    /// every sweep and produce no fitness.
    RejectAlwaysNan,
    /// The prediction is provably cross-sectionally uniform: the IC is
    /// degenerate (zero cross-sectional variance) on every day.
    RejectConstant,
}

impl ProgramFacts {
    /// The pre-evaluation verdict (paper Fig. 5b, extended).
    pub fn verdict(&self) -> StaticVerdict {
        if self.always_nan {
            StaticVerdict::RejectAlwaysNan
        } else if self.uniform {
            StaticVerdict::RejectConstant
        } else {
            StaticVerdict::Accept
        }
    }
}

/// Result of analyzing a program: converged states at the interesting
/// program points, plus the prediction facts.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// State after setup (cycle entry before any day ran).
    pub setup_exit: AbsState,
    /// Converged state at the top of predict (with `m0` loaded).
    pub predict_entry: AbsState,
    /// Converged state at the top of update (with `s0` loaded).
    pub update_entry: AbsState,
    /// Facts about the prediction register.
    pub facts: ProgramFacts,
}

/// Runs the abstract interpretation over the full execution-cycle model
/// and returns the converged analysis. Total on any program, including
/// structurally invalid ones (out-of-range registers read as top).
pub fn analyze(prog: &AlphaProgram, cfg: &AlphaConfig) -> Analysis {
    let mut st = AbsState::zeroed(cfg);
    exec_body(&mut st, &prog.setup, FunctionId::Setup, cfg);
    let setup_exit = st.clone();

    let mut entry = st;
    let total_regs = cfg.n_scalars + cfg.n_vectors + cfg.n_matrices;
    // After widening each register steps down finite lattices only, so
    // the fixpoint converges well within this bound.
    let max_iters = WIDEN_AFTER + 4 * total_regs + 8;
    for iter in 0..max_iters {
        let (pred_exit, upd_exit) = run_cycle(&entry, prog, cfg);
        let widen = iter >= WIDEN_AFTER;
        let c1 = entry.cycle_join(&pred_exit, widen);
        let c2 = entry.cycle_join(&upd_exit, widen);
        if !c1 && !c2 {
            break;
        }
        debug_assert!(iter + 1 < max_iters, "absint cycle fixpoint diverged");
    }

    let mut predict_entry = entry.clone();
    predict_entry.set(Kind::M, INPUT as u8, AbsVal::input());
    let mut pred_exit = predict_entry.clone();
    exec_body(&mut pred_exit, &prog.predict, FunctionId::Predict, cfg);
    let mut update_entry = pred_exit.clone();
    update_entry.set(Kind::S, LABEL as u8, AbsVal::input());

    let prediction = pred_exit.get(Kind::S, PREDICTION as u8);
    let facts = ProgramFacts {
        prediction,
        always_nan: prediction.nan == NanState::Always,
        uniform: prediction.uniform,
        constant: prediction.uniform && prediction.as_const().is_some(),
        day_invariant: prediction.day_inv,
    };
    Analysis {
        setup_exit,
        predict_entry,
        update_entry,
        facts,
    }
}

fn run_cycle(entry: &AbsState, prog: &AlphaProgram, cfg: &AlphaConfig) -> (AbsState, AbsState) {
    let mut pred = entry.clone();
    pred.set(Kind::M, INPUT as u8, AbsVal::input());
    exec_body(&mut pred, &prog.predict, FunctionId::Predict, cfg);
    let mut upd = pred.clone();
    upd.set(Kind::S, LABEL as u8, AbsVal::input());
    exec_body(&mut upd, &prog.update, FunctionId::Update, cfg);
    (pred, upd)
}

/// Applies the transfer functions of a straight-line body in order.
pub(crate) fn exec_body(st: &mut AbsState, body: &[Instruction], f: FunctionId, cfg: &AlphaConfig) {
    for instr in body {
        transfer(st, instr, f, cfg);
    }
}

/// Applies one instruction's transfer function to the state.
pub(crate) fn transfer(st: &mut AbsState, instr: &Instruction, f: FunctionId, cfg: &AlphaConfig) {
    let op = instr.op;
    if op == Op::NoOp {
        return;
    }
    let kinds = op.input_kinds();
    let a = if kinds.is_empty() {
        AbsVal::top()
    } else {
        st.get(kinds[0], instr.in1)
    };
    let b = if kinds.len() > 1 {
        st.get(kinds[1], instr.in2)
    } else {
        AbsVal::top()
    };
    let out = transfer_val(op, a, b, instr, f, cfg);
    st.set(op.output_kind(), instr.out, out);
}

/// Computes the abstract output of one instruction given its abstract
/// inputs (`b` is ignored for unary/nullary ops).
fn transfer_val(
    op: Op,
    a: AbsVal,
    b: AbsVal,
    instr: &Instruction,
    f: FunctionId,
    cfg: &AlphaConfig,
) -> AbsVal {
    let arity = op.input_kinds().len();
    // Default flag propagation: deterministic ops on bitwise-identical /
    // day-invariant inputs produce bitwise-identical / day-invariant
    // outputs. Stochastic ops draw per-stock streams (never uniform) and
    // are day-invariant only in setup (which runs once).
    let mut uniform = (arity < 1 || a.uniform) && (arity < 2 || b.uniform);
    let mut day_inv = (arity < 1 || a.day_inv) && (arity < 2 || b.day_inv);
    if op.is_stochastic() {
        uniform = false;
        day_inv = f == FunctionId::Setup;
    }

    // Exact constant folding: when every input element is one known
    // constant, replicate the kernel arithmetic bit-for-bit.
    if !op.is_stochastic() && op.relation_group().is_none() {
        let ca = if arity >= 1 { a.as_const() } else { Some(0.0) };
        let cb = if arity >= 2 { b.as_const() } else { Some(0.0) };
        if let (Some(x), Some(y)) = (ca, cb) {
            if let Some(folded) = fold_op(op, x, y, &instr.lit, cfg.dim) {
                return AbsVal::constant(folded);
            }
        }
    }

    if let Some(group) = op.relation_group() {
        return transfer_relation(op, group, a);
    }

    let (al, ah) = a.hull();
    let (bl, bh) = b.hull();
    let a_always = a.nan == NanState::Always;
    let b_always = b.nan == NanState::Always;
    let both_never = a.nan == NanState::Never && b.nan == NanState::Never;

    // NaN-strict binary arithmetic: an Always-NaN operand poisons every
    // element.
    let strict_binary = matches!(
        op,
        Op::SAdd
            | Op::SSub
            | Op::SMul
            | Op::SDiv
            | Op::VAdd
            | Op::VSub
            | Op::VMul
            | Op::VDiv
            | Op::MAdd
            | Op::MSub
            | Op::MMul
            | Op::MDiv
            | Op::SVScale
            | Op::SMScale
            | Op::VOuter
            | Op::VDot
            | Op::MatVec
            | Op::MatMul
    );
    if strict_binary && (a_always || b_always) {
        return AbsVal::constant(f64::NAN);
    }

    match op {
        Op::NoOp | Op::SConst | Op::VConst | Op::MConst => {
            // NoOp never reaches here; the const ops always fold above.
            AbsVal::constant(instr.lit[0])
        }

        Op::SUniform | Op::VUniform | Op::MUniform => {
            let [l0, l1] = instr.lit;
            if !l0.is_finite() || !l1.is_finite() {
                return AbsVal::top();
            }
            // Kernel: bounds are reordered, and equal bounds return the
            // low bound without consuming a draw.
            let (lo, hi) = if l0 <= l1 { (l0, l1) } else { (l1, l0) };
            if lo == hi {
                AbsVal::constant(lo)
            } else {
                AbsVal {
                    vals: Vals::Range(lo, hi),
                    nan: NanState::Never,
                    uniform,
                    day_inv,
                }
            }
        }

        Op::SGauss | Op::VGauss | Op::MGauss => {
            let [mean, sd] = instr.lit;
            if !mean.is_finite() || !sd.is_finite() {
                return AbsVal::top();
            }
            let spread = sd.abs() * GAUSS_Z_BOUND;
            AbsVal {
                vals: range(mean - spread, mean + spread),
                nan: NanState::Never,
                uniform,
                day_inv,
            }
        }

        Op::SAdd | Op::VAdd | Op::MAdd => {
            let can_nan =
                (a.may_pos_inf() && b.may_neg_inf()) || (a.may_neg_inf() && b.may_pos_inf());
            AbsVal {
                vals: range(al + bl, ah + bh),
                nan: if both_never && !can_nan {
                    NanState::Never
                } else {
                    NanState::Maybe
                },
                uniform,
                day_inv,
            }
        }
        Op::SSub | Op::VSub | Op::MSub => {
            let can_nan =
                (a.may_pos_inf() && b.may_pos_inf()) || (a.may_neg_inf() && b.may_neg_inf());
            AbsVal {
                vals: range(al - bh, ah - bl),
                nan: if both_never && !can_nan {
                    NanState::Never
                } else {
                    NanState::Maybe
                },
                uniform,
                day_inv,
            }
        }
        Op::SMul | Op::VMul | Op::MMul | Op::SVScale | Op::SMScale | Op::VOuter => {
            let can_nan = (a.may_zero() && b.may_inf()) || (a.may_inf() && b.may_zero());
            let corners = [al * bl, al * bh, ah * bl, ah * bh];
            let lo = corners.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = corners.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let vals = if corners.iter().any(|c| c.is_nan()) {
                Vals::TOP
            } else {
                range(lo, hi)
            };
            AbsVal {
                vals,
                nan: if both_never && !can_nan {
                    NanState::Never
                } else {
                    NanState::Maybe
                },
                uniform,
                day_inv,
            }
        }
        Op::SDiv | Op::VDiv | Op::MDiv => {
            let can_nan = (a.may_zero() && b.may_zero()) || (a.may_inf() && b.may_inf());
            AbsVal {
                vals: Vals::TOP,
                nan: if both_never && !can_nan {
                    NanState::Never
                } else {
                    NanState::Maybe
                },
                uniform,
                day_inv,
            }
        }

        Op::SMin | Op::SMax | Op::VMin | Op::VMax | Op::MMin | Op::MMax => {
            // f64::min/max return the other operand when one is NaN.
            if a_always && b_always {
                return AbsVal::constant(f64::NAN);
            }
            // An Always-NaN operand makes the result bitwise the other
            // operand, so its whole summary (flags included) carries over.
            if a_always {
                return b;
            }
            if b_always {
                return a;
            }
            let is_min = matches!(op, Op::SMin | Op::VMin | Op::MMin);
            let (mut lo, mut hi) = if is_min {
                (al.min(bl), ah.min(bh))
            } else {
                (al.max(bl), ah.max(bh))
            };
            // A maybe-NaN operand passes the *other* operand through.
            if a.nan != NanState::Never {
                lo = lo.min(bl);
                hi = hi.max(bh);
            }
            if b.nan != NanState::Never {
                lo = lo.min(al);
                hi = hi.max(ah);
            }
            AbsVal {
                vals: range(lo, hi),
                nan: if a.nan == NanState::Never || b.nan == NanState::Never {
                    NanState::Never
                } else {
                    NanState::Maybe
                },
                uniform,
                day_inv,
            }
        }

        Op::SAbs | Op::VAbs | Op::MAbs => {
            let vals = if al >= 0.0 {
                range(al, ah)
            } else if ah <= 0.0 {
                range(ah.abs(), al.abs())
            } else {
                range(0.0, al.abs().max(ah.abs()))
            };
            AbsVal {
                vals,
                nan: a.nan,
                uniform,
                day_inv,
            }
        }
        Op::SInv => AbsVal {
            // 1/x never creates NaN: 1/0 = ±inf, 1/±inf = ±0.
            vals: Vals::TOP,
            nan: a.nan,
            uniform,
            day_inv,
        },
        Op::SSin | Op::SCos => AbsVal {
            vals: Vals::Range(-1.0, 1.0),
            nan: trig_nan(a),
            uniform,
            day_inv,
        },
        Op::STan => AbsVal {
            vals: Vals::TOP,
            nan: trig_nan(a),
            uniform,
            day_inv,
        },
        Op::SArcSin => AbsVal {
            vals: Vals::Range(-std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2),
            nan: domain_nan(a, -1.0, 1.0),
            uniform,
            day_inv,
        },
        Op::SArcCos => AbsVal {
            vals: Vals::Range(0.0, std::f64::consts::PI),
            nan: domain_nan(a, -1.0, 1.0),
            uniform,
            day_inv,
        },
        Op::SArcTan => AbsVal {
            // atan is total (atan(±inf) = ±π/2).
            vals: Vals::Range(-std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2),
            nan: a.nan,
            uniform,
            day_inv,
        },
        Op::SExp => AbsVal {
            // exp is total and non-negative (exp(-inf) = 0).
            vals: Vals::Range(0.0, f64::INFINITY),
            nan: a.nan,
            uniform,
            day_inv,
        },
        Op::SLn => AbsVal {
            vals: Vals::TOP,
            // ln(x) is NaN only for x < 0 (ln(-0.0) = -inf is fine).
            nan: match a.nan {
                NanState::Always => NanState::Always,
                NanState::Never if al >= 0.0 => NanState::Never,
                _ => NanState::Maybe,
            },
            uniform,
            day_inv,
        },

        Op::SHeaviside | Op::VHeaviside | Op::MHeaviside => {
            // `if x > 0.0 { 1.0 } else { 0.0 }`: NaN compares false, so
            // NaN maps to 0.0 like every non-positive value.
            if a_always || ah <= 0.0 {
                return AbsVal::constant(0.0);
            }
            if a.nan == NanState::Never && al > 0.0 {
                return AbsVal::constant(1.0);
            }
            AbsVal {
                vals: Vals::Range(0.0, 1.0),
                nan: NanState::Never,
                uniform,
                day_inv,
            }
        }

        Op::VNorm | Op::MNorm => AbsVal {
            // Squared sums cannot cancel: overflow saturates at +inf.
            vals: Vals::Range(0.0, f64::INFINITY),
            nan: a.nan,
            uniform,
            day_inv,
        },
        Op::MNormAxis => AbsVal {
            vals: Vals::Range(0.0, f64::INFINITY),
            nan: a.nan,
            uniform,
            day_inv,
        },

        Op::VMean | Op::VSum | Op::MMean | Op::MMeanAxis => {
            let n = if op == Op::MMean {
                cfg.dim * cfg.dim
            } else {
                cfg.dim
            };
            let (nan, vals) = sum_summary(&a, n);
            AbsVal {
                vals,
                nan,
                uniform,
                day_inv,
            }
        }
        Op::VStd | Op::MStd | Op::MStdAxis => {
            let n = if op == Op::MStd {
                cfg.dim * cfg.dim
            } else {
                cfg.dim
            };
            let (nan, _) = sum_summary(&a, n);
            AbsVal {
                vals: Vals::Range(0.0, f64::INFINITY),
                nan,
                uniform,
                day_inv,
            }
        }

        Op::TsRank => {
            if cfg.dim < 2 {
                // below / (dim - 1) is 0/0.
                return AbsVal::constant(f64::NAN);
            }
            if a_always {
                // NaN compares false everywhere: below stays 0.
                return AbsVal::constant(0.0);
            }
            AbsVal {
                vals: Vals::Range(0.0, 1.0),
                nan: NanState::Never,
                uniform,
                day_inv,
            }
        }

        Op::VDot | Op::MatVec | Op::MatMul => {
            let bound = if both_never && a.bounded() && b.bounded() {
                let m = al.abs().max(ah.abs()) * bl.abs().max(bh.abs());
                let bound = 2.0 * cfg.dim as f64 * m;
                bound.is_finite().then_some(bound)
            } else {
                None
            };
            match bound {
                Some(bnd) => AbsVal {
                    vals: Vals::Range(-bnd, bnd),
                    nan: NanState::Never,
                    uniform,
                    day_inv,
                },
                None => AbsVal {
                    vals: Vals::TOP,
                    nan: NanState::Maybe,
                    uniform,
                    day_inv,
                },
            }
        }

        // Pure element selection / rearrangement: the summary passes
        // through unchanged.
        Op::VGet
        | Op::MGet
        | Op::MGetRow
        | Op::MGetCol
        | Op::MTranspose
        | Op::MBroadcast
        | Op::VBroadcast => a,

        Op::RelRank
        | Op::RelRankSector
        | Op::RelRankIndustry
        | Op::RelDemean
        | Op::RelDemeanSector
        | Op::RelDemeanIndustry => unreachable!("relation ops handled above"),
    }
}

/// NaN rule for sin/cos/tan: NaN or ±inf inputs produce NaN.
fn trig_nan(a: AbsVal) -> NanState {
    match a.nan {
        NanState::Always => NanState::Always,
        NanState::Never if a.bounded() => NanState::Never,
        _ => NanState::Maybe,
    }
}

/// NaN rule for asin/acos: NaN inside `[lo, hi]`, NaN outside the domain.
fn domain_nan(a: AbsVal, lo: f64, hi: f64) -> NanState {
    let (al, ah) = a.hull();
    match a.nan {
        NanState::Always => NanState::Always,
        NanState::Never if al >= lo && ah <= hi => NanState::Never,
        _ => NanState::Maybe,
    }
}

/// Summary for an `n`-element sum/mean: NaN-strict, and `Never`-NaN only
/// when the conservative partial-sum bound `2·n·M` stays finite (no
/// `inf - inf` cancellation possible).
fn sum_summary(a: &AbsVal, n: usize) -> (NanState, Vals) {
    match a.nan {
        NanState::Always => (NanState::Always, Vals::TOP),
        NanState::Never if a.bounded() => {
            let (lo, hi) = a.hull();
            let bound = 2.0 * n as f64 * lo.abs().max(hi.abs());
            if bound.is_finite() {
                (NanState::Never, Vals::Range(-bound, bound))
            } else {
                (NanState::Maybe, Vals::TOP)
            }
        }
        _ => (NanState::Maybe, Vals::TOP),
    }
}

/// Transfer for cross-sectional relation ops (`rel_rank*`, `rel_demean*`).
fn transfer_relation(op: Op, group: RelGroup, a: AbsVal) -> AbsVal {
    let is_rank = matches!(op, Op::RelRank | Op::RelRankSector | Op::RelRankIndustry);
    if is_rank {
        // Average-rank formula (i+j)/2/(n-1) ∈ [0, 1], never NaN
        // (singleton groups rank 0.5). A uniform never-NaN input ties the
        // whole group, and a full tie run ranks exactly (n-1)/2/(n-1) =
        // 0.5 in every group regardless of its size.
        if a.uniform && a.nan == NanState::Never {
            return AbsVal {
                vals: Vals::Const(0.5),
                nan: NanState::Never,
                uniform: true,
                day_inv: a.day_inv,
            };
        }
        return AbsVal {
            vals: Vals::Range(0.0, 1.0),
            nan: NanState::Never,
            // All-NaN ties break by stock index (NaN == NaN is false), so
            // uniformity does not survive without a never-NaN proof.
            uniform: false,
            // Group assignments are static: same inputs, same ranks.
            day_inv: a.day_inv,
        };
    }
    // Demean: x - group_mean. The group sum of huge finite values can
    // overflow to ±inf (group sizes are a runtime property), so NaN can
    // appear unless the input is Always-NaN (then it always does).
    AbsVal {
        vals: Vals::TOP,
        nan: if a.nan == NanState::Always {
            NanState::Always
        } else {
            NanState::Maybe
        },
        // On the all-stocks group every stock sees the same mean, so a
        // bitwise-uniform input stays uniform; sector/industry groups
        // have differing means.
        uniform: a.uniform && group == RelGroup::All,
        day_inv: a.day_inv,
    }
}

/// Exact scalar fold of one deterministic, non-relation op whose input
/// elements all equal `a` (and `b` for binary ops): replicates the
/// reference kernel arithmetic bit-for-bit, including sequential
/// reduction order. Returns `None` for ops that cannot be folded.
/// The result may be NaN (e.g. `inf - inf`) — callers decide policy.
pub(crate) fn fold_op(op: Op, a: f64, b: f64, lit: &[f64; 2], dim: usize) -> Option<f64> {
    let seq_sum = |x: f64, n: usize| -> f64 {
        let mut s = 0.0;
        for _ in 0..n {
            s += x;
        }
        s
    };
    let pop_std = |x: f64, n: usize| -> f64 {
        let mean = seq_sum(x, n) / n as f64;
        let d = (x - mean) * (x - mean);
        (seq_sum(d, n) / n as f64).sqrt()
    };
    let n2 = dim * dim;
    Some(match op {
        Op::SConst | Op::VConst | Op::MConst => lit[0],
        Op::SAdd | Op::VAdd | Op::MAdd => a + b,
        Op::SSub | Op::VSub | Op::MSub => a - b,
        Op::SMul | Op::VMul | Op::MMul => a * b,
        Op::SDiv | Op::VDiv | Op::MDiv => a / b,
        Op::SMin | Op::VMin | Op::MMin => a.min(b),
        Op::SMax | Op::VMax | Op::MMax => a.max(b),
        Op::SAbs | Op::VAbs | Op::MAbs => a.abs(),
        Op::SInv => 1.0 / a,
        // Fold through the shared polynomial kernels so canonicalization
        // arithmetic equals run-time arithmetic bit-for-bit.
        Op::SSin => crate::kernels::sin(a),
        Op::SCos => crate::kernels::cos(a),
        Op::STan => crate::kernels::tan(a),
        Op::SArcSin => crate::kernels::asin(a),
        Op::SArcCos => crate::kernels::acos(a),
        Op::SArcTan => crate::kernels::atan(a),
        Op::SExp => crate::kernels::exp(a),
        Op::SLn => crate::kernels::ln(a),
        Op::SHeaviside | Op::VHeaviside | Op::MHeaviside => {
            if a > 0.0 {
                1.0
            } else {
                0.0
            }
        }
        Op::SVScale | Op::SMScale => a * b,
        Op::VBroadcast
        | Op::VGet
        | Op::MGet
        | Op::MGetRow
        | Op::MGetCol
        | Op::MTranspose
        | Op::MBroadcast => a,
        Op::VOuter => a * b,
        Op::VNorm => seq_sum(a * a, dim).sqrt(),
        Op::MNorm => seq_sum(a * a, n2).sqrt(),
        Op::MNormAxis => seq_sum(a * a, dim).sqrt(),
        Op::VMean | Op::MMeanAxis => seq_sum(a, dim) / dim as f64,
        Op::VSum => seq_sum(a, dim),
        Op::MMean => seq_sum(a, n2) / n2 as f64,
        Op::VStd | Op::MStdAxis => pop_std(a, dim),
        Op::MStd => pop_std(a, n2),
        Op::VDot | Op::MatVec | Op::MatMul => seq_sum(a * b, dim),
        Op::TsRank => {
            // All elements equal: every comparison ties (+0.5 each; a NaN
            // ties with nothing). Summing k halves is exact, so the closed
            // form is bit-identical to the kernel's accumulation loop.
            let below = if a.is_nan() {
                0.0
            } else {
                0.5 * dim.saturating_sub(1) as f64
            };
            below / (dim - 1) as f64
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::Instruction;

    fn cfg() -> AlphaConfig {
        AlphaConfig::default()
    }

    fn prog(setup: Vec<Instruction>, predict: Vec<Instruction>) -> AlphaProgram {
        AlphaProgram {
            setup,
            predict,
            update: vec![Instruction::nop()],
        }
    }

    #[test]
    fn empty_prediction_is_constant_zero() {
        let p = prog(vec![Instruction::nop()], vec![Instruction::nop()]);
        let an = analyze(&p, &cfg());
        assert_eq!(an.facts.prediction.as_const(), Some(0.0));
        assert!(an.facts.uniform && an.facts.constant && an.facts.day_invariant);
        assert_eq!(an.facts.verdict(), StaticVerdict::RejectConstant);
    }

    #[test]
    fn constant_arithmetic_folds_exactly() {
        // s1 = (0.1 + 0.2) * 3.0
        let p = prog(
            vec![
                Instruction::new(Op::SConst, 0, 0, 2, [0.1, 0.0], [0; 2]),
                Instruction::new(Op::SConst, 0, 0, 3, [0.2, 0.0], [0; 2]),
            ],
            vec![
                Instruction::new(Op::SAdd, 2, 3, 4, [0.0; 2], [0; 2]),
                Instruction::new(Op::SConst, 0, 0, 5, [3.0, 0.0], [0; 2]),
                Instruction::new(Op::SMul, 4, 5, 1, [0.0; 2], [0; 2]),
            ],
        );
        let an = analyze(&p, &cfg());
        assert_eq!(an.facts.prediction.as_const(), Some((0.1 + 0.2) * 3.0));
        assert_eq!(an.facts.verdict(), StaticVerdict::RejectConstant);
    }

    #[test]
    fn always_nan_prediction_is_rejected() {
        // s1 = ln(-1.0)
        let p = prog(
            vec![Instruction::new(Op::SConst, 0, 0, 2, [-1.0, 0.0], [0; 2])],
            vec![Instruction::new(Op::SLn, 2, 0, 1, [0.0; 2], [0; 2])],
        );
        let an = analyze(&p, &cfg());
        assert_eq!(an.facts.verdict(), StaticVerdict::RejectAlwaysNan);
    }

    #[test]
    fn input_reading_prediction_is_accepted() {
        // s1 = m0[2,3] — plain feature extraction.
        let p = prog(
            vec![Instruction::nop()],
            vec![Instruction::new(Op::MGet, 0, 0, 1, [0.0; 2], [2, 3])],
        );
        let an = analyze(&p, &cfg());
        assert_eq!(an.facts.verdict(), StaticVerdict::Accept);
        assert!(!an.facts.day_invariant);
        assert_eq!(an.facts.prediction.nan, NanState::Never);
    }

    #[test]
    fn rank_of_uniform_input_is_half() {
        // s2 = 7.0 (uniform across stocks); s1 = rel_rank(s2).
        let p = prog(
            vec![Instruction::new(Op::SConst, 0, 0, 2, [7.0, 0.0], [0; 2])],
            vec![Instruction::new(Op::RelRank, 2, 0, 1, [0.0; 2], [0; 2])],
        );
        let an = analyze(&p, &cfg());
        assert_eq!(an.facts.prediction.as_const(), Some(0.5));
        assert_eq!(an.facts.verdict(), StaticVerdict::RejectConstant);
    }

    #[test]
    fn rank_of_input_is_bounded_not_uniform() {
        let p = prog(
            vec![Instruction::nop()],
            vec![
                Instruction::new(Op::MGet, 0, 0, 2, [0.0; 2], [1, 1]),
                Instruction::new(Op::RelRank, 2, 0, 1, [0.0; 2], [0; 2]),
            ],
        );
        let an = analyze(&p, &cfg());
        assert_eq!(an.facts.verdict(), StaticVerdict::Accept);
        let (lo, hi) = an.facts.prediction.vals.hull();
        assert_eq!((lo, hi), (0.0, 1.0));
        assert_eq!(an.facts.prediction.nan, NanState::Never);
    }

    #[test]
    fn update_counter_drops_day_invariance() {
        // update: s2 = s2 + s3 with s3 = 1.0 — a day counter. The
        // prediction s1 = s2 must not be day-invariant (or uniform-safe
        // to accept: it *is* uniform, hence rejected, but the day_inv
        // fact specifically must be dropped by the cycle join).
        let p = AlphaProgram {
            setup: vec![Instruction::new(Op::SConst, 0, 0, 3, [1.0, 0.0], [0; 2])],
            predict: vec![Instruction::new(Op::SAdd, 2, 3, 1, [0.0; 2], [0; 2])],
            update: vec![Instruction::new(Op::SAdd, 2, 3, 2, [0.0; 2], [0; 2])],
        };
        let an = analyze(&p, &cfg());
        assert!(!an.facts.day_invariant, "counter must be day-variant");
        assert!(
            an.facts.uniform,
            "counter is still cross-sectionally uniform"
        );
        assert_eq!(an.facts.verdict(), StaticVerdict::RejectConstant);
    }

    #[test]
    fn setup_stochastic_draw_is_day_invariant_but_not_uniform() {
        let p = prog(
            vec![Instruction::new(Op::SGauss, 0, 0, 2, [0.0, 1.0], [0; 2])],
            vec![Instruction::new(Op::SMax, 2, 2, 1, [0.0; 2], [0; 2])],
        );
        let an = analyze(&p, &cfg());
        assert!(an.facts.day_invariant);
        assert!(!an.facts.uniform);
        // Day-invariance alone is report-only: the cross-section still
        // varies (per-stock draws), so the program must be evaluated.
        assert_eq!(an.facts.verdict(), StaticVerdict::Accept);
    }

    #[test]
    fn min_with_always_nan_passes_other_operand() {
        // s2 = ln(-1) (always NaN); s3 = m0[0,0]; s1 = min(s2, s3).
        let p = prog(
            vec![
                Instruction::new(Op::SConst, 0, 0, 4, [-1.0, 0.0], [0; 2]),
                Instruction::new(Op::SLn, 4, 0, 2, [0.0; 2], [0; 2]),
            ],
            vec![
                Instruction::new(Op::MGet, 0, 0, 3, [0.0; 2], [0, 0]),
                Instruction::new(Op::SMin, 2, 3, 1, [0.0; 2], [0; 2]),
            ],
        );
        let an = analyze(&p, &cfg());
        assert_eq!(an.facts.prediction.nan, NanState::Never);
        assert_eq!(an.facts.verdict(), StaticVerdict::Accept);
    }

    #[test]
    fn heaviside_erases_nan() {
        // s1 = heaviside(ln(-1)) = 0.0.
        let p = prog(
            vec![
                Instruction::new(Op::SConst, 0, 0, 2, [-1.0, 0.0], [0; 2]),
                Instruction::new(Op::SLn, 2, 0, 3, [0.0; 2], [0; 2]),
            ],
            vec![Instruction::new(Op::SHeaviside, 3, 0, 1, [0.0; 2], [0; 2])],
        );
        let an = analyze(&p, &cfg());
        assert_eq!(an.facts.prediction.as_const(), Some(0.0));
        assert_eq!(an.facts.verdict(), StaticVerdict::RejectConstant);
    }

    #[test]
    fn paper_seed_programs_are_accepted() {
        let cfg = cfg();
        for p in [
            crate::init::domain_expert(&cfg),
            crate::init::two_layer_nn(&cfg),
            crate::init::industry_reversal(&cfg),
        ] {
            let an = analyze(&p, &cfg);
            assert_eq!(
                an.facts.verdict(),
                StaticVerdict::Accept,
                "seed program wrongly rejected: {p}"
            );
        }
    }

    #[test]
    fn out_of_range_registers_do_not_panic() {
        let mut i = Instruction::new(Op::SAdd, 2, 3, 1, [0.0; 2], [0; 2]);
        i.in1 = 200;
        let p = prog(vec![Instruction::nop()], vec![i]);
        let an = analyze(&p, &cfg());
        // Unknown input: no degeneracy proof, so accept.
        assert_eq!(an.facts.verdict(), StaticVerdict::Accept);
    }

    #[test]
    fn fold_matches_kernel_reduction_order() {
        // 0.1 summed 10 times (0.9999999999999999) differs from 10 * 0.1
        // (1.0); the fold must take the kernel's sequential path.
        let mut s = 0.0;
        for _ in 0..10 {
            s += 0.1;
        }
        assert_eq!(fold_op(Op::VSum, 0.1, 0.0, &[0.0; 2], 10), Some(s));
        assert_ne!(s, 10.0 * 0.1);
    }
}
