//! AlphaEvolve core: the new alpha class and the mining framework.
//!
//! This crate implements the primary contribution of *AlphaEvolve: A
//! Learning Framework to Discover Novel Alphas in Quantitative Investment*
//! (Cui et al., SIGMOD 2021):
//!
//! * a **new class of alphas** — straight-line programs over scalar /
//!   vector / matrix registers with `Setup()` / `Predict()` / `Update()`
//!   components ([`program`], [`op`], [`instruction`], [`memory`]);
//! * two **cross-sectional interpreters** executing an alpha on all stocks
//!   simultaneously so RelationOps can rank/demean across tasks: the
//!   columnar stock-major production engine with its compile-then-execute
//!   pipeline, and the lockstep bitwise reference ([`interp`], [`compile`](mod@compile),
//!   [`memory`], [`relation`]);
//! * the paper's **search optimizations**: redundancy pruning, redundant-
//!   alpha rejection and evaluation-free fingerprinting with a fitness
//!   cache ([`prune`](mod@prune), [`fingerprint`](mod@fingerprint));
//! * **regularized evolution** with tournament selection, aging, the two
//!   paper mutation classes, and a weak-correlation gate for mining alpha
//!   *sets* ([`evolution`], [`mutation`]);
//! * the four **initializations** of §5.2 ([`init`]) and a round-tripping
//!   text format for mined alphas ([`textio`]).
//!
//! # Mining an alpha in five lines
//!
//! ```
//! use std::sync::Arc;
//! use alphaevolve_core::{AlphaConfig, EvalOptions, Evaluator, Evolution, EvolutionConfig, Budget, init};
//! use alphaevolve_market::{generator::MarketConfig, features::FeatureSet, Dataset, SplitSpec};
//!
//! let market = MarketConfig { n_stocks: 20, n_days: 150, seed: 1, ..Default::default() }.generate();
//! let dataset = Dataset::build(&market, &FeatureSet::paper(), SplitSpec::paper_ratios()).unwrap();
//! let evaluator = Evaluator::new(AlphaConfig::default(), EvalOptions::default(), Arc::new(dataset));
//! let config = EvolutionConfig { budget: Budget::Searched(200), ..Default::default() };
//! let outcome = Evolution::new(&evaluator, config).run(&init::domain_expert(evaluator.config()));
//! assert!(outcome.best.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod analysis;
pub mod canon;
pub mod compile;
pub mod config;
pub mod eval;
pub mod evolution;
pub mod fingerprint;
pub mod hashutil;
pub mod init;
pub mod instruction;
pub mod interp;
pub mod kernels;
pub mod memory;
pub mod mutation;
pub mod op;
pub mod paper_alphas;
pub mod program;
pub mod prune;
pub mod relation;
pub mod telemetry;
pub mod textio;
pub mod verify;

pub use absint::{ProgramFacts, StaticVerdict};
pub use analysis::{analyze, AlphaAnalysis};
pub use canon::{canonical_program, CanonOutcome};
pub use compile::{
    compile, compile_into, relocate_for_slot, writes_m0, CompileScratch, CompiledInstr,
    CompiledProgram,
};
pub use config::AlphaConfig;
pub use eval::{
    labels_cross_sections, BacktestReport, BatchArena, EvalArena, EvalOptions, Evaluation,
    Evaluator, SplitMetrics,
};
pub use evolution::{
    BestAlpha, Budget, Evolution, EvolutionCheckpoint, EvolutionConfig, EvolutionOutcome,
    Individual, MigrationState, SearchStats, TrajectoryPoint,
};
pub use fingerprint::{fingerprint, fingerprint_analyzed, Analyzed};
pub use instruction::Instruction;
#[cfg(any(test, feature = "reference-oracle"))]
pub use interp::Interpreter;
pub use interp::{BatchInterpreter, ColumnarInterpreter};
#[cfg(any(test, feature = "reference-oracle"))]
pub use memory::MemoryBank;
pub use memory::RegisterFile;
pub use mutation::{MutationConfig, Mutator};
pub use op::{Kind, Op};
pub use program::{AlphaProgram, FunctionId};
pub use prune::{canonicalize, liveness, prune, Liveness, PruneResult};
pub use relation::GroupIndex;
pub use telemetry::{EvalSpans, FlushCause, SearchTelemetry};
pub use verify::{check_envelope, Diagnostic, DiagnosticCode, ProgramVerifier, Severity};
