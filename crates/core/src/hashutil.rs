//! A small Fx-style hasher for fingerprint caches.
//!
//! The fingerprint cache is hit once per candidate alpha, with `u64` keys
//! that are already well mixed; SipHash's HashDoS resistance buys nothing
//! here. This is the FxHash multiplication-fold (as used in rustc), kept
//! local to avoid a dependency.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style 64-bit hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]-backed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Streaming fingerprint accumulator used by
/// [`fingerprint`](crate::fingerprint::fingerprint).
#[derive(Default, Clone)]
pub struct Fingerprinter {
    inner: FxHasher,
}

impl Fingerprinter {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mixes in one word.
    #[inline]
    pub fn word(&mut self, w: u64) {
        self.inner.write_u64(w);
    }

    /// Mixes in a float by bit pattern (NaN payloads included — two
    /// different NaN constants are different programs).
    #[inline]
    pub fn f64(&mut self, x: f64) {
        self.inner.write_u64(x.to_bits());
    }

    /// Final 64-bit digest.
    pub fn digest(&self) -> u64 {
        self.inner.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_inputs_distinct_hashes() {
        let mut a = Fingerprinter::new();
        a.word(1);
        a.word(2);
        let mut b = Fingerprinter::new();
        b.word(2);
        b.word(1);
        assert_ne!(a.digest(), b.digest(), "order must matter");
    }

    #[test]
    fn floats_hash_by_bits() {
        let mut a = Fingerprinter::new();
        a.f64(0.0);
        let mut b = Fingerprinter::new();
        b.f64(-0.0);
        assert_ne!(a.digest(), b.digest(), "-0.0 and 0.0 differ bitwise");
    }

    #[test]
    fn deterministic() {
        let digest = |vals: &[u64]| {
            let mut f = Fingerprinter::new();
            for &v in vals {
                f.word(v);
            }
            f.digest()
        };
        assert_eq!(digest(&[1, 2, 3]), digest(&[1, 2, 3]));
    }

    #[test]
    fn fxmap_works() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(42, "x");
        assert_eq!(m.get(&42), Some(&"x"));
    }
}
