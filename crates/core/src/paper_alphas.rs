//! Reconstructions of the paper's published evolved alphas (§5.4.2).
//!
//! The paper prints its five round winners as compacted equation systems
//! (Eqs. 2–22). This module rebuilds three of them as straight-line DSL
//! programs, demonstrating that every construct those alphas use — trig
//! chains, heaviside bounds, norm-of-norm reductions, broadcast-of-
//! broadcast, matmul recursions on parameter matrices, relation ranks —
//! is expressible in this implementation's operator set.
//!
//! These are *reconstructions*, not bit-exact transcripts: the paper's
//! `t−k` subscripts arise from register staleness across days (an operand
//! written later in the program is read one day stale at the top), and the
//! compacted equations do not pin down the original instruction order.
//! Each function documents which equation every instruction implements.
//! Expect these alphas to be mediocre on a synthetic market — they were
//! evolved against 2013–2017 NASDAQ — the point is expressibility and
//! that the analysis module classifies them the way §5.4.2 describes.

use crate::config::AlphaConfig;
use crate::init::feature_rows::HIGH;
use crate::instruction::Instruction;
use crate::op::Op;
use crate::program::AlphaProgram;

fn ins(op: Op, in1: u8, in2: u8, out: u8) -> Instruction {
    Instruction::new(op, in1, in2, out, [0.0; 2], [0; 2])
}

fn get(row: u8, col: u8, out: u8) -> Instruction {
    Instruction::new(Op::MGet, 0, 0, out, [0.0; 2], [row, col])
}

/// `alpha_AE_D_0` (Eqs. 2–9): trades the trend of high prices, bounded by
/// a historically updated `arcsin` bound; the parameters `S4`, `S2` are
/// maintained by `Update()` through a heaviside of the stale prediction
/// and an `arccos(norm(norm(M2, axis=0)))` of a matmul-recursed matrix.
///
/// Register map: `s6` = paper `S4`, `s8` = paper `S2`, `m1` = paper `M1`,
/// `m2` = paper `M2`.
pub fn alpha_ae_d_0(cfg: &AlphaConfig) -> AlphaProgram {
    let newest = (cfg.dim - 1) as u8;
    let prog = AlphaProgram {
        setup: vec![Instruction::nop()],
        predict: vec![
            // Eq. 3 inner term: S4_{t-2} − arcsin(high_{t-1}).
            get(HIGH, newest, 3),      // s3 = high_{t-1}
            ins(Op::SArcSin, 3, 0, 4), // s4 = arcsin(high)
            ins(Op::SSub, 6, 4, 5),    // s5 = S4 − arcsin(high)
            // Eq. 3: S3 = min(s5, arcsin(S2)).
            ins(Op::SArcSin, 8, 0, 7), // s7 = arcsin(S2)
            ins(Op::SMin, 5, 7, 9),    // s9 = S3
            // Eq. 2: S1 = tan(S3) / cos(s5).
            ins(Op::STan, 9, 0, 2),
            ins(Op::SCos, 5, 0, 3),
            ins(Op::SDiv, 2, 3, 1),
        ],
        update: vec![
            // Eq. 6: S4 = tan(heaviside(S1)) — S1 read stale (S1_{t-2} in
            // the paper's compacted subscripts).
            ins(Op::SHeaviside, 1, 0, 6),
            ins(Op::STan, 6, 0, 6),
            // Eq. 9: M1 = matmul(M2, M1) (reads the previous day's values).
            ins(Op::MatMul, 2, 1, 1),
            // Eq. 8: M2 = min(abs(abs(M1)), broadcast(broadcast(S0), axis=1)).
            ins(Op::MAbs, 1, 0, 3),
            ins(Op::MAbs, 3, 0, 3),
            ins(Op::VBroadcast, 0, 0, 1), // v1 = broadcast(S0)
            Instruction::new(Op::MBroadcast, 1, 0, 2, [0.0; 2], [1, 0]),
            ins(Op::MMin, 3, 2, 2),
            // Eq. 7: S2 = arccos(norm(norm(M2, axis=0))).
            Instruction::new(Op::MNormAxis, 2, 0, 2, [0.0; 2], [0, 0]), // v2 = col norms
            ins(Op::VNorm, 2, 0, 8),
            ins(Op::SArcCos, 8, 0, 8),
        ],
    };
    debug_assert!(prog.validate(cfg).is_ok());
    prog
}

/// `alpha_AE_NN_1` (Eq. 10): a deep unary chain over high prices with a
/// `relation_rank` and a `ts_rank` — the alpha the paper highlights as
/// using selectively injected relational knowledge.
///
/// The paper's `tsrank` ranks a scalar against its own history; the DSL
/// equivalent used here is `ts_rank` over the high-price row of the input
/// window (the newest element ranked within its own trailing window).
pub fn alpha_ae_nn_1(cfg: &AlphaConfig) -> AlphaProgram {
    let newest = (cfg.dim - 1) as u8;
    let prev = (cfg.dim - 2) as u8;
    let prog = AlphaProgram {
        setup: vec![Instruction::nop()],
        predict: vec![
            // Branch A: tsrank(abs(relation_rank(arctan(sin(sin(exp(high_{t-2})))))))
            get(HIGH, prev, 2),
            ins(Op::SExp, 2, 0, 2),
            ins(Op::SSin, 2, 0, 2),
            ins(Op::SSin, 2, 0, 2),
            ins(Op::SArcTan, 2, 0, 2),
            ins(Op::RelRankIndustry, 2, 0, 2),
            ins(Op::SAbs, 2, 0, 2),
            // ts_rank over the high-price history window.
            Instruction::new(Op::MGetRow, 0, 0, 1, [0.0; 2], [HIGH, 0]),
            ins(Op::TsRank, 1, 0, 3),
            ins(Op::SMul, 3, 2, 3), // combine the scalar chain with the rank
            // Branch B: log(sin(arctan(sin(sin(exp(high_{t-1}))))))
            get(HIGH, newest, 4),
            ins(Op::SExp, 4, 0, 4),
            ins(Op::SSin, 4, 0, 4),
            ins(Op::SSin, 4, 0, 4),
            ins(Op::SArcTan, 4, 0, 4),
            ins(Op::SSin, 4, 0, 4),
            ins(Op::SLn, 4, 0, 4),
            // S1 = log(cos(arcsin(min(A, B)))).
            ins(Op::SMin, 3, 4, 5),
            ins(Op::SArcSin, 5, 0, 5),
            ins(Op::SCos, 5, 0, 5),
            ins(Op::SLn, 5, 0, 1),
        ],
        update: vec![Instruction::nop()],
    };
    debug_assert!(prog.validate(cfg).is_ok());
    prog
}

/// `alpha_AE_R_2` (Eqs. 11–16): trades the volatility of a recursively
/// updated feature matrix `M2` times a bounded high-price trend feature.
///
/// Register map: `s5` = paper `S2`, `s6` = paper `S3`, `m2` = paper `M2`,
/// `m1` = paper `M1`.
pub fn alpha_ae_r_2(cfg: &AlphaConfig) -> AlphaProgram {
    let d4 = (cfg.dim - 4) as u8;
    let d5 = (cfg.dim - 5) as u8;
    let prog = AlphaProgram {
        setup: vec![Instruction::nop()],
        predict: vec![
            // Eq. 13: S3 = max(S3, max(sin(S3), high_{t-5})).
            get(HIGH, d5, 2),
            ins(Op::SSin, 6, 0, 3),
            ins(Op::SMax, 3, 2, 3),
            ins(Op::SMax, 6, 3, 6),
            // Eq. 12: S2 = max(sin(S3), high_{t-4}).
            get(HIGH, d4, 4),
            ins(Op::SSin, 6, 0, 5),
            ins(Op::SMax, 5, 4, 5),
            // Eq. 11: S1 = std(M2) · (arctan(S0) − S2) · S2.
            ins(Op::MStd, 2, 0, 7),
            ins(Op::SArcTan, 0, 0, 8), // stale label as "recent return"
            ins(Op::SSub, 8, 5, 8),
            ins(Op::SMul, 7, 8, 9),
            ins(Op::SMul, 9, 5, 1),
        ],
        update: vec![
            // Eq. 15: M1 = M2 + heaviside(min(M2, min(M2+M1, M2))) + M0.
            ins(Op::MAdd, 2, 1, 3),
            ins(Op::MMin, 3, 2, 3),
            ins(Op::MMin, 2, 3, 3),
            ins(Op::MHeaviside, 3, 0, 3),
            ins(Op::MAdd, 2, 3, 1),
            ins(Op::MAdd, 1, 0, 1),
            // Eq. 14: M2 = abs(M1).
            ins(Op::MAbs, 1, 0, 2),
        ],
    };
    debug_assert!(prog.validate(cfg).is_ok());
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::eval::{EvalOptions, Evaluator};
    use crate::prune::prune;
    use alphaevolve_market::{features::FeatureSet, generator::MarketConfig, Dataset, SplitSpec};
    use std::sync::Arc;

    fn all(cfg: &AlphaConfig) -> Vec<(&'static str, AlphaProgram)> {
        vec![
            ("alpha_AE_D_0", alpha_ae_d_0(cfg)),
            ("alpha_AE_NN_1", alpha_ae_nn_1(cfg)),
            ("alpha_AE_R_2", alpha_ae_r_2(cfg)),
        ]
    }

    #[test]
    fn reconstructions_validate_and_use_input() {
        let cfg = AlphaConfig::default();
        for (name, prog) in all(&cfg) {
            prog.validate(&cfg)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let r = prune(&prog);
            assert!(r.uses_input, "{name} must read m0");
        }
    }

    #[test]
    fn d0_and_r2_are_parameterized_nn1_is_formulaic() {
        let cfg = AlphaConfig::default();
        assert!(
            prune(&alpha_ae_d_0(&cfg)).stateful,
            "D_0 has U-maintained parameters"
        );
        assert!(prune(&alpha_ae_r_2(&cfg)).stateful, "R_2 recurses on M2");
        assert!(
            !prune(&alpha_ae_nn_1(&cfg)).stateful,
            "NN_1 is a pure formula"
        );
    }

    #[test]
    fn nn1_keeps_its_relation_rank() {
        let cfg = AlphaConfig::default();
        let a = analyze(&alpha_ae_nn_1(&cfg));
        assert_eq!(a.relation_ops.2, 1, "the relation_rank survives pruning");
        assert!(a.is_formulaic);
    }

    #[test]
    fn d0_analysis_matches_paper_description() {
        let cfg = AlphaConfig::default();
        let a = analyze(&alpha_ae_d_0(&cfg));
        // S4 (s6), S2 (s8) and the matrices are the trained parameters.
        assert!(
            !a.parameters.is_empty(),
            "D_0 passes parameters to inference"
        );
        assert!(!a.is_formulaic);
        assert!(a.features_read.contains(&HIGH), "trades on high prices");
    }

    #[test]
    fn reconstructions_execute_to_completion() {
        // The evaluator must process them without panicking; alphas whose
        // trig chains leave their domains are killed, not crashed on.
        let cfg = AlphaConfig::default();
        let md = MarketConfig {
            n_stocks: 12,
            n_days: 130,
            seed: 3,
            ..Default::default()
        }
        .generate();
        let ds = Dataset::build(&md, &FeatureSet::paper(), SplitSpec::paper_ratios()).unwrap();
        let ev = Evaluator::new(cfg, EvalOptions::default(), Arc::new(ds));
        for (name, prog) in all(&cfg) {
            let pruned = prune(&prog).program;
            let e = ev.evaluate(&pruned);
            if let Some(ic) = e.fitness {
                assert!(ic.is_finite(), "{name} produced non-finite IC");
            }
        }
    }

    #[test]
    fn reconstructions_round_trip_through_text() {
        let cfg = AlphaConfig::default();
        for (name, prog) in all(&cfg) {
            let text = crate::textio::to_text(&prog);
            let back = crate::textio::from_text(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back, prog, "{name}");
        }
    }
}
