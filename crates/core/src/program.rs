//! An alpha: three component functions of straight-line instructions.
//!
//! Paper §2: *"Each alpha consists of three components: a setup function to
//! initialize operands, a predict function to generate a prediction, and a
//! parameter-updating function to update parameters."* Registers written in
//! `Update()` during training persist into inference — they are the alpha's
//! parameters.

use std::fmt;

use crate::config::AlphaConfig;
use crate::instruction::Instruction;
use crate::op::Op;

/// Identifies one of the three component functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FunctionId {
    /// `def Setup()` — runs once per stock before any sample.
    Setup,
    /// `def Predict()` — runs on every sample; its last write to `s1` is
    /// the prediction.
    Predict,
    /// `def Update()` — runs after each *training* sample, with the label
    /// in `s0`.
    Update,
}

impl FunctionId {
    /// All three functions in execution order.
    pub const ALL: [FunctionId; 3] = [FunctionId::Setup, FunctionId::Predict, FunctionId::Update];

    /// Lower-case name used in the program text format.
    pub fn name(self) -> &'static str {
        match self {
            FunctionId::Setup => "setup",
            FunctionId::Predict => "predict",
            FunctionId::Update => "update",
        }
    }
}

/// A complete alpha program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AlphaProgram {
    /// Initialization instructions.
    pub setup: Vec<Instruction>,
    /// Prediction instructions.
    pub predict: Vec<Instruction>,
    /// Parameter-update instructions.
    pub update: Vec<Instruction>,
}

impl AlphaProgram {
    /// An empty program (invalid until functions are populated — see
    /// [`AlphaProgram::validate`]).
    pub fn new() -> AlphaProgram {
        AlphaProgram::default()
    }

    /// Instructions of `f`.
    pub fn function(&self, f: FunctionId) -> &Vec<Instruction> {
        match f {
            FunctionId::Setup => &self.setup,
            FunctionId::Predict => &self.predict,
            FunctionId::Update => &self.update,
        }
    }

    /// Mutable instructions of `f`.
    pub fn function_mut(&mut self, f: FunctionId) -> &mut Vec<Instruction> {
        match f {
            FunctionId::Setup => &mut self.setup,
            FunctionId::Predict => &mut self.predict,
            FunctionId::Update => &mut self.update,
        }
    }

    /// Maximum instruction count allowed for `f` under `cfg`.
    pub fn max_ops(cfg: &AlphaConfig, f: FunctionId) -> usize {
        match f {
            FunctionId::Setup => cfg.max_setup_ops,
            FunctionId::Predict => cfg.max_predict_ops,
            FunctionId::Update => cfg.max_update_ops,
        }
    }

    /// Total instruction count across the three functions.
    pub fn n_ops(&self) -> usize {
        self.setup.len() + self.predict.len() + self.update.len()
    }

    /// Counts instructions with a given property (e.g. relation ops).
    pub fn count_ops(&self, pred: impl Fn(Op) -> bool) -> usize {
        FunctionId::ALL
            .iter()
            .map(|&f| self.function(f).iter().filter(|i| pred(i.op)).count())
            .sum()
    }

    /// Validates instruction bounds and the paper's per-function size
    /// limits.
    pub fn validate(&self, cfg: &AlphaConfig) -> Result<(), String> {
        for f in FunctionId::ALL {
            let instrs = self.function(f);
            if instrs.len() < cfg.min_ops {
                return Err(format!("{}() has fewer than {} ops", f.name(), cfg.min_ops));
            }
            let max = AlphaProgram::max_ops(cfg, f);
            if instrs.len() > max {
                return Err(format!("{}() exceeds {} ops", f.name(), max));
            }
            for (i, instr) in instrs.iter().enumerate() {
                instr
                    .validate(cfg)
                    .map_err(|e| format!("{}() op {i}: {e}", f.name()))?;
                if f == FunctionId::Setup && instr.op.is_relation() {
                    return Err(format!(
                        "{}() op {i}: relation op not allowed in setup",
                        f.name()
                    ));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for AlphaProgram {
    /// The canonical text format parsed by [`crate::textio`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for func in FunctionId::ALL {
            writeln!(f, "def {}():", func.name())?;
            for instr in self.function(func) {
                writeln!(f, "  {instr}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::Instruction;
    use crate::op::Op;

    fn tiny_program() -> AlphaProgram {
        AlphaProgram {
            setup: vec![Instruction::new(Op::SConst, 0, 0, 2, [0.5, 0.0], [0; 2])],
            predict: vec![Instruction::new(Op::MGet, 0, 0, 1, [0.0; 2], [1, 2])],
            update: vec![Instruction::nop()],
        }
    }

    #[test]
    fn validates_paper_limits() {
        let cfg = AlphaConfig::default();
        tiny_program().validate(&cfg).unwrap();

        let mut big = tiny_program();
        big.predict = vec![Instruction::nop(); 22];
        assert!(big.validate(&cfg).is_err(), "predict over 21 ops must fail");

        let mut empty = tiny_program();
        empty.update.clear();
        assert!(empty.validate(&cfg).is_err(), "min 1 op per function");
    }

    #[test]
    fn setup_rejects_relation_ops() {
        let cfg = AlphaConfig::default();
        let mut p = tiny_program();
        p.setup
            .push(Instruction::new(Op::RelRank, 2, 0, 3, [0.0; 2], [0; 2]));
        assert!(p.validate(&cfg).is_err());
    }

    #[test]
    fn display_contains_all_functions() {
        let text = tiny_program().to_string();
        assert!(text.contains("def setup():"));
        assert!(text.contains("def predict():"));
        assert!(text.contains("def update():"));
        assert!(text.contains("s1 = m_get(m0, 1, 2)"));
    }

    #[test]
    fn count_ops_by_kind() {
        let mut p = tiny_program();
        p.predict
            .push(Instruction::new(Op::RelRank, 2, 0, 3, [0.0; 2], [0; 2]));
        assert_eq!(p.count_ops(super::super::op::Op::is_relation), 1);
        assert_eq!(p.count_ops(super::super::op::Op::is_extraction), 1);
        assert_eq!(p.n_ops(), 4);
    }
}
