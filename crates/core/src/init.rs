//! The paper's four starting alphas (§5.2).
//!
//! * [`domain_expert`] — `alpha_AE_D`'s seed: a hand-designed formulaic
//!   alpha. We use Kakushadze's Alpha#101,
//!   `(close − open) / ((high − low) + 0.001)`, expressed through
//!   ExtractionOps on the most recent window column — the same style of
//!   "alpha before evolving" as the paper's Figure 2.
//! * [`noop`] — `alpha_AE_NOOP`'s seed: no initialization, every function a
//!   bare no-op. Evolution must build everything from mutations.
//! * [`random_alpha`] — `alpha_AE_R`'s seed: random instructions.
//! * [`two_layer_nn`] — `alpha_AE_NN`'s seed: a two-layer neural network
//!   with SGD in `Update()`, the hand-crafted AutoML-Zero network adapted
//!   to the matrix input (feature vector = newest window column).

use rand::rngs::SmallRng;

use crate::config::AlphaConfig;
use crate::instruction::Instruction;
use crate::op::Op;
use crate::program::{AlphaProgram, FunctionId};

/// Feature-row indices of the paper's 13-feature layout.
pub mod feature_rows {
    /// Moving average of close over 5 days.
    pub const MA5: u8 = 0;
    /// Moving average of close over 30 days.
    pub const MA30: u8 = 3;
    /// Open price.
    pub const OPEN: u8 = 8;
    /// High price.
    pub const HIGH: u8 = 9;
    /// Low price.
    pub const LOW: u8 = 10;
    /// Close price.
    pub const CLOSE: u8 = 11;
    /// Volume.
    pub const VOLUME: u8 = 12;
}

fn ins(op: Op, in1: u8, in2: u8, out: u8) -> Instruction {
    Instruction::new(op, in1, in2, out, [0.0; 2], [0; 2])
}

fn get(row: u8, col: u8, out: u8) -> Instruction {
    Instruction::new(Op::MGet, 0, 0, out, [0.0; 2], [row, col])
}

/// The domain-expert formulaic alpha (Alpha#101):
/// `s1 = (close − open) / ((high − low) + 0.001)` on the most recent day.
///
/// # Panics
/// If `cfg.dim < 13` (the paper layout needs 13 feature rows).
pub fn domain_expert(cfg: &AlphaConfig) -> AlphaProgram {
    assert!(
        cfg.dim >= 13,
        "domain-expert alpha needs the 13-feature paper layout"
    );
    let newest = (cfg.dim - 1) as u8;
    let prog = AlphaProgram {
        setup: vec![Instruction::new(Op::SConst, 0, 0, 2, [0.001, 0.0], [0; 2])],
        predict: vec![
            get(feature_rows::CLOSE, newest, 3),
            get(feature_rows::OPEN, newest, 4),
            get(feature_rows::HIGH, newest, 5),
            get(feature_rows::LOW, newest, 6),
            ins(Op::SSub, 3, 4, 7), // close - open
            ins(Op::SSub, 5, 6, 8), // high - low
            ins(Op::SAdd, 8, 2, 9), // + 0.001
            ins(Op::SDiv, 7, 9, 1),
        ],
        update: vec![Instruction::nop()],
    };
    debug_assert!(prog.validate(cfg).is_ok());
    prog
}

/// The empty seed: every function is a single no-op.
pub fn noop(cfg: &AlphaConfig) -> AlphaProgram {
    let prog = AlphaProgram {
        setup: vec![Instruction::nop()],
        predict: vec![Instruction::nop()],
        update: vec![Instruction::nop()],
    };
    debug_assert!(prog.validate(cfg).is_ok());
    prog
}

/// A random seed with the given per-function instruction counts.
pub fn random_alpha(
    cfg: &AlphaConfig,
    rng: &mut SmallRng,
    n_setup: usize,
    n_predict: usize,
    n_update: usize,
) -> AlphaProgram {
    let setup_pool: Vec<Op> = Op::ALL
        .iter()
        .copied()
        .filter(|o| !o.is_relation())
        .collect();
    let full_pool: Vec<Op> = Op::ALL.to_vec();
    let mut prog = AlphaProgram::new();
    for (f, n) in [
        (FunctionId::Setup, n_setup),
        (FunctionId::Predict, n_predict),
        (FunctionId::Update, n_update),
    ] {
        let pool = if f == FunctionId::Setup {
            &setup_pool
        } else {
            &full_pool
        };
        let n = n.clamp(cfg.min_ops, AlphaProgram::max_ops(cfg, f));
        for _ in 0..n {
            prog.function_mut(f)
                .push(Instruction::random(rng, pool, cfg));
        }
    }
    debug_assert!(prog.validate(cfg).is_ok());
    prog
}

/// Classic 5-vs-30-day moving-average momentum:
/// `s1 = (ma5 − ma30) / (ma30 + 0.001)` on the most recent day. A second
/// well-known expert seed, useful for mining sets from diverse starting
/// points.
pub fn momentum(cfg: &AlphaConfig) -> AlphaProgram {
    assert!(
        cfg.dim >= 13,
        "momentum alpha needs the 13-feature paper layout"
    );
    let newest = (cfg.dim - 1) as u8;
    let prog = AlphaProgram {
        setup: vec![Instruction::new(Op::SConst, 0, 0, 2, [0.001, 0.0], [0; 2])],
        predict: vec![
            get(feature_rows::MA5, newest, 3),
            get(feature_rows::MA30, newest, 4),
            ins(Op::SSub, 3, 4, 5),
            ins(Op::SAdd, 4, 2, 6),
            ins(Op::SDiv, 5, 6, 1),
        ],
        update: vec![Instruction::nop()],
    };
    debug_assert!(prog.validate(cfg).is_ok());
    prog
}

/// Industry-relative reversal: the negated industry-demeaned close price,
/// i.e. short the names that ran ahead of their industry. Demonstrates the
/// RelationOps as an expert would use them.
pub fn industry_reversal(cfg: &AlphaConfig) -> AlphaProgram {
    assert!(
        cfg.dim >= 13,
        "reversal alpha needs the 13-feature paper layout"
    );
    let newest = (cfg.dim - 1) as u8;
    let back = (cfg.dim - 6) as u8; // five days earlier within the window
    let prog = AlphaProgram {
        setup: vec![Instruction::nop()],
        predict: vec![
            get(feature_rows::CLOSE, newest, 3),
            get(feature_rows::CLOSE, back, 4),
            ins(Op::SSub, 3, 4, 5), // 5-day price change
            Instruction::new(Op::RelDemeanIndustry, 5, 0, 6, [0.0; 2], [0; 2]),
            Instruction::new(Op::SConst, 0, 0, 7, [-1.0, 0.0], [0; 2]),
            ins(Op::SMul, 6, 7, 1), // fade the leaders
        ],
        update: vec![Instruction::nop()],
    };
    debug_assert!(prog.validate(cfg).is_ok());
    prog
}

/// A two-layer neural network alpha with SGD learning in `Update()`.
///
/// The feature vector is the newest column of `m0`; the hidden layer is a
/// full `dim × dim` weight matrix with a ReLU (built from heaviside masks,
/// which the backward pass reuses), and the output layer a weight vector.
pub fn two_layer_nn(cfg: &AlphaConfig) -> AlphaProgram {
    let newest = (cfg.dim - 1) as u8;
    let prog = AlphaProgram {
        setup: vec![
            Instruction::new(Op::MGauss, 0, 0, 1, [0.0, 0.1], [0; 2]), // m1 = W1
            Instruction::new(Op::VGauss, 0, 0, 1, [0.0, 0.1], [0; 2]), // v1 = w2
            Instruction::new(Op::SConst, 0, 0, 2, [0.01, 0.0], [0; 2]), // s2 = lr
        ],
        predict: vec![
            Instruction::new(Op::MGetCol, 0, 0, 2, [0.0; 2], [newest, 0]), // v2 = x
            ins(Op::MatVec, 1, 2, 3),                                      // v3 = W1·x
            ins(Op::VHeaviside, 3, 0, 4),                                  // v4 = relu mask
            ins(Op::VMul, 4, 3, 5),                                        // v5 = relu(v3)
            ins(Op::VDot, 1, 5, 1),                                        // s1 = w2·v5
        ],
        update: vec![
            ins(Op::SSub, 0, 1, 3),    // s3 = label - prediction
            ins(Op::SMul, 3, 2, 4),    // s4 = lr * error
            ins(Op::SVScale, 4, 5, 6), // v6 = s4 * hidden      (∂L/∂w2)
            ins(Op::SVScale, 4, 1, 7), // v7 = s4 * w2          (before w2 update)
            ins(Op::VAdd, 1, 6, 1),    // w2 += v6
            ins(Op::VMul, 7, 4, 8),    // v8 = v7 ⊙ relu mask   (∂L/∂v3)
            ins(Op::VOuter, 8, 2, 2),  // m2 = v8 ⊗ x           (∂L/∂W1)
            ins(Op::MAdd, 1, 2, 1),    // W1 += m2
        ],
    };
    debug_assert!(prog.validate(cfg).is_ok());
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::prune;
    use rand::SeedableRng;

    #[test]
    fn all_seeds_validate() {
        let cfg = AlphaConfig::default();
        domain_expert(&cfg).validate(&cfg).unwrap();
        noop(&cfg).validate(&cfg).unwrap();
        two_layer_nn(&cfg).validate(&cfg).unwrap();
        momentum(&cfg).validate(&cfg).unwrap();
        industry_reversal(&cfg).validate(&cfg).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        random_alpha(&cfg, &mut rng, 4, 8, 6)
            .validate(&cfg)
            .unwrap();
    }

    #[test]
    fn expert_seeds_are_fully_live_and_input_connected() {
        let cfg = AlphaConfig::default();
        for prog in [momentum(&cfg), industry_reversal(&cfg)] {
            let r = prune(&prog);
            assert!(r.uses_input);
            assert!(!r.stateful, "expert formulas carry no parameters");
        }
    }

    #[test]
    fn industry_reversal_keeps_its_relation_op() {
        let cfg = AlphaConfig::default();
        let r = prune(&industry_reversal(&cfg));
        assert_eq!(r.program.count_ops(super::super::op::Op::is_relation), 1);
    }

    #[test]
    fn domain_expert_survives_pruning_intact() {
        let cfg = AlphaConfig::default();
        let prog = domain_expert(&cfg);
        let r = prune(&prog);
        assert!(r.uses_input);
        // Only the update noop is redundant.
        assert_eq!(r.program.predict.len(), 8);
        assert_eq!(r.program.setup.len(), 1);
    }

    #[test]
    fn nn_alpha_fully_live() {
        let cfg = AlphaConfig::default();
        let r = prune(&two_layer_nn(&cfg));
        assert!(r.uses_input);
        assert_eq!(r.n_pruned, 0, "every NN instruction should be live");
    }

    #[test]
    fn noop_seed_is_redundant() {
        let cfg = AlphaConfig::default();
        assert!(!prune(&noop(&cfg)).uses_input);
    }

    #[test]
    fn random_seed_counts_clamped() {
        let cfg = AlphaConfig::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let p = random_alpha(&cfg, &mut rng, 100, 100, 100);
        assert_eq!(p.setup.len(), cfg.max_setup_ops);
        assert_eq!(p.predict.len(), cfg.max_predict_ops);
        assert_eq!(p.update.len(), cfg.max_update_ops);
    }
}
