//! Algebraic canonicalization: rewrites a (pruned) program into a normal
//! form so mutation-produced near-duplicates hash to the same fingerprint
//! (paper §4.2 — evaluation-free rejection via the fitness cache).
//!
//! Extends `prune::canonicalize` (register renaming) with:
//!
//! * **Constant folding** seeded by [`crate::absint`]: an op whose inputs
//!   are proven compile-time constants is replaced by a `*_const` of the
//!   exact kernel result (sequential reduction order and all). Only
//!   finite results fold — NaN-producing ops are left for the analyzer's
//!   always-NaN verdict.
//! * **Identity rewrites**: `x + (-0.0)`, `x - 0.0`, `x * 1.0`,
//!   `x / 1.0`, `min(x, x)`, `max(x, x)` become copies; `x - x` becomes
//!   `0.0` when the analysis proves `x` finite. Only *bitwise* identities
//!   are used: `x + 0.0` is **not** rewritten (it flips `-0.0` to
//!   `+0.0`), which is why the additive identity is `-0.0`.
//! * **Copy propagation and common-subexpression elimination**, per
//!   function body: a recomputation of an already-available pure
//!   expression is rewritten to the canonical copy form `max(src, src)`
//!   (bitwise identity for every input, NaN and `-0.0` included) and
//!   later reads are redirected to the original register. Availability
//!   is tracked per body execution, so cross-cycle state never leaks in.
//! * **Commutative operand ordering** for elementwise `add`/`mul`
//!   (`f64` `+`/`*` are bitwise commutative; `min`/`max` are *not* —
//!   they are order-sensitive for `±0.0` and NaN — and `mat_mul` is a
//!   true matrix product, so none of those reorder).
//!
//! The passes iterate with re-pruning and register renaming to a
//! fixpoint. Every rewrite preserves the evaluated bit pattern of every
//! live register, and stochastic ops are never folded, aliased, or
//! reordered (dead draws still advance the per-stock RNG streams, and
//! instruction positions never change within a pass), so two programs
//! with equal canonical forms evaluate bitwise-identically. NaN payloads
//! are the one nuance: all kernel-produced NaNs share the platform's
//! quiet-NaN pattern, and no op converts payload differences into
//! non-NaN differences, so copy rewrites remain observationally exact.
//!
//! The canonical program itself is only ever *hashed* (see
//! `fingerprint`), never executed, so its copy-form encoding does not
//! need to be cheap to run.

use crate::absint::{self, AbsState, NanState};
use crate::config::AlphaConfig;
use crate::instruction::Instruction;
use crate::op::{Kind, Op};
use crate::program::{AlphaProgram, FunctionId};
use crate::prune;

/// Fixpoint cap: each pass strictly shrinks or reorders, so real
/// programs converge in 2–3 passes.
const MAX_PASSES: usize = 8;

/// Result of canonicalizing a program.
#[derive(Debug, Clone)]
pub struct CanonOutcome {
    /// The canonical form (hash this, don't run it).
    pub program: AlphaProgram,
    /// Number of algebraic simplifications applied (const folds,
    /// identity eliminations, subexpression collapses).
    pub folds: usize,
    /// Facts proven about the *input* program's prediction.
    pub facts: absint::ProgramFacts,
}

/// Canonicalizes a structurally valid, pruned program. Callers at trust
/// boundaries must run the verifier first — `prune::canonicalize`
/// assumes in-range registers.
pub fn canonical_program(pruned: &AlphaProgram, cfg: &AlphaConfig) -> CanonOutcome {
    let mut analysis = absint::analyze(pruned, cfg);
    let facts = analysis.facts;
    let mut prog = pruned.clone();
    let mut folds = 0;
    for _ in 0..MAX_PASSES {
        let before = prog.clone();
        let zero = AbsState::zeroed(cfg);
        rewrite_body(&mut prog.setup, &zero, FunctionId::Setup, cfg, &mut folds);
        rewrite_body(
            &mut prog.predict,
            &analysis.predict_entry,
            FunctionId::Predict,
            cfg,
            &mut folds,
        );
        rewrite_body(
            &mut prog.update,
            &analysis.update_entry,
            FunctionId::Update,
            cfg,
            &mut folds,
        );
        let repruned = prune::prune(&prog);
        prog = prune::canonicalize(&repruned.program, cfg);
        // Sort AFTER renaming: canonical names are a property of the
        // program's structure (assignment order of first appearance), so
        // they are the same for alpha-equivalent programs — raw genome
        // register numbers are not, and sorting by them would freeze an
        // arbitrary operand order into the canonical form.
        sort_commutative(&mut prog);
        if prog == before {
            break;
        }
        analysis = absint::analyze(&prog, cfg);
    }
    CanonOutcome {
        program: prog,
        folds,
        facts,
    }
}

/// Expression key for CSE: one pure instruction minus its output.
#[derive(PartialEq)]
struct ExprKey {
    op: Op,
    in1: u8,
    in2: u8,
    lit: [u64; 2],
    ix: [u8; 2],
}

impl ExprKey {
    fn of(instr: &Instruction) -> ExprKey {
        ExprKey {
            op: instr.op,
            in1: instr.in1,
            in2: instr.in2,
            lit: [instr.lit[0].to_bits(), instr.lit[1].to_bits()],
            ix: instr.ix,
        }
    }

    fn reads(&self, kind: Kind, reg: u8) -> bool {
        let kinds = self.op.input_kinds();
        (!kinds.is_empty() && kinds[0] == kind && self.in1 == reg)
            || (kinds.len() > 1 && kinds[1] == kind && self.in2 == reg)
    }
}

fn const_op(kind: Kind) -> Op {
    match kind {
        Kind::S => Op::SConst,
        Kind::V => Op::VConst,
        Kind::M => Op::MConst,
    }
}

fn copy_op(kind: Kind) -> Op {
    // max(x, x) is a bitwise identity for every x (NaN and -0.0 too).
    match kind {
        Kind::S => Op::SMax,
        Kind::V => Op::VMax,
        Kind::M => Op::MMax,
    }
}

/// One forward pass over a body: alias-resolve reads, fold constants,
/// apply identity rewrites, collapse repeated pure subexpressions.
/// Returns whether anything changed.
fn rewrite_body(
    body: &mut [Instruction],
    entry: &AbsState,
    f: FunctionId,
    cfg: &AlphaConfig,
    folds: &mut usize,
) -> bool {
    let mut st = entry.clone();
    // (kind, written reg) -> (kind-equal source reg) copy aliases.
    let mut aliases: Vec<(Kind, u8, u8)> = Vec::new();
    // Available pure expressions and the register holding each.
    let mut exprs: Vec<(ExprKey, u8)> = Vec::new();
    let mut changed = false;

    for instr in body.iter_mut() {
        let op = instr.op;
        if op == Op::NoOp {
            continue;
        }
        let out_kind = op.output_kind();
        let kinds = op.input_kinds();

        // Resolve reads through copy aliases.
        let resolve = |kind: Kind, reg: u8, aliases: &[(Kind, u8, u8)]| -> u8 {
            aliases
                .iter()
                .find(|&&(k, o, _)| k == kind && o == reg)
                .map_or(reg, |&(_, _, s)| s)
        };
        if !kinds.is_empty() {
            let r = resolve(kinds[0], instr.in1, &aliases);
            if r != instr.in1 {
                instr.in1 = r;
                changed = true;
            }
        }
        if kinds.len() > 1 {
            let r = resolve(kinds[1], instr.in2, &aliases);
            if r != instr.in2 {
                instr.in2 = r;
                changed = true;
            }
        }

        let mut new_alias: Option<u8> = None;
        if !op.is_stochastic() {
            // Constant folding (deterministic non-relation ops whose
            // inputs the analysis pins to exact constants).
            let mut rewritten = false;
            if op.relation_group().is_none() {
                let ca = if kinds.is_empty() {
                    Some(0.0)
                } else {
                    st.get(kinds[0], instr.in1).as_const()
                };
                let cb = if kinds.len() > 1 {
                    st.get(kinds[1], instr.in2).as_const()
                } else {
                    Some(0.0)
                };
                if let (Some(x), Some(y)) = (ca, cb) {
                    if let Some(v) = absint::fold_op(op, x, y, &instr.lit, cfg.dim) {
                        if v.is_finite() {
                            let already = st
                                .get(out_kind, instr.out)
                                .as_const()
                                .is_some_and(|cur| cur.to_bits() == v.to_bits());
                            if already {
                                // Redundant store: the output register
                                // provably already holds exactly these bits
                                // (never NaN), so the write changes nothing
                                // — drop the instruction. This is what makes
                                // `s1 = s1 * 1.0` vanish even when `s1` is
                                // still at its zero-initialized value.
                                *instr = Instruction::nop();
                                *folds += 1;
                                changed = true;
                            } else {
                                let folded = Instruction::new(
                                    const_op(out_kind),
                                    0,
                                    0,
                                    instr.out,
                                    [v, 0.0],
                                    [0; 2],
                                );
                                if *instr != folded {
                                    *instr = folded;
                                    *folds += 1;
                                    changed = true;
                                }
                            }
                            rewritten = true;
                        }
                    }
                }
            }

            // Identity rewrites to a copy of `src`.
            if !rewritten {
                if let Some(src) = identity_source(instr, &st) {
                    apply_copy(instr, src, folds);
                    new_alias = Some(src);
                    rewritten = true;
                    changed = true;
                } else if let Some(zero_kind) = sub_self_zero(instr, &st) {
                    let folded =
                        Instruction::new(const_op(zero_kind), 0, 0, instr.out, [0.0, 0.0], [0; 2]);
                    if *instr != folded {
                        *instr = folded;
                        *folds += 1;
                        changed = true;
                    }
                    rewritten = true;
                }
            }

            // CSE: a pure recomputation of an available expression.
            if !rewritten {
                let key = ExprKey::of(instr);
                if let Some(&(_, src)) = exprs.iter().find(|(k, _)| *k == key) {
                    apply_copy(instr, src, folds);
                    new_alias = Some(src);
                    changed = true;
                }
            }
        }

        // A copy onto the source register itself rewrites to a no-op:
        // the register already holds the value, so nothing is killed,
        // recorded, or transferred.
        if instr.op == Op::NoOp {
            continue;
        }

        // The write to `out` invalidates aliases and expressions that
        // mention it.
        let out = instr.out;
        aliases.retain(|&(k, o, s)| !(k == out_kind && (o == out || s == out)));
        exprs.retain(|(k, r)| {
            (k.op.output_kind() != out_kind || *r != out) && !k.reads(out_kind, out)
        });

        // Record what the write makes available.
        if let Some(src) = new_alias {
            if src != out {
                aliases.push((out_kind, out, src));
            }
        } else if !op.is_stochastic() && op != Op::NoOp {
            let key = ExprKey::of(instr);
            // An expression reading its own output is not available
            // after the write (e.g. s2 = s2 + s3).
            if !key.reads(out_kind, out) {
                exprs.push((key, out));
            }
        }

        absint::transfer(&mut st, instr, f, cfg);
    }
    changed
}

/// A copy identity: returns the source register the instruction is a
/// bitwise copy of, if any.
fn identity_source(instr: &Instruction, st: &AbsState) -> Option<u8> {
    let op = instr.op;
    let kinds = op.input_kinds();
    let const_of = |slot: usize| -> Option<f64> {
        let (kind, reg) = if slot == 0 {
            (kinds[0], instr.in1)
        } else {
            (kinds[1], instr.in2)
        };
        st.get(kind, reg).as_const()
    };
    let is_neg_zero = |c: Option<f64>| c.is_some_and(|v| v.to_bits() == (-0.0f64).to_bits());
    let is_pos_zero = |c: Option<f64>| c.is_some_and(|v| v.to_bits() == 0.0f64.to_bits());
    let is_one = |c: Option<f64>| c == Some(1.0);
    match op {
        // x + (-0.0) = x for every x; +0.0 is NOT an identity (-0 + 0 = +0).
        Op::SAdd | Op::VAdd | Op::MAdd => {
            if is_neg_zero(const_of(1)) {
                Some(instr.in1)
            } else if is_neg_zero(const_of(0)) {
                Some(instr.in2)
            } else {
                None
            }
        }
        // x - 0.0 = x for every x (-0 - 0 = -0).
        Op::SSub | Op::VSub | Op::MSub => is_pos_zero(const_of(1)).then_some(instr.in1),
        Op::SMul | Op::VMul | Op::MMul => {
            if is_one(const_of(1)) {
                Some(instr.in1)
            } else if is_one(const_of(0)) {
                Some(instr.in2)
            } else {
                None
            }
        }
        // 1.0 * v and 1.0 * m scale to the operand itself.
        Op::SVScale | Op::SMScale => is_one(const_of(0)).then_some(instr.in2),
        Op::SDiv | Op::VDiv | Op::MDiv => is_one(const_of(1)).then_some(instr.in1),
        Op::SMin | Op::SMax | Op::VMin | Op::VMax | Op::MMin | Op::MMax => {
            (instr.in1 == instr.in2).then_some(instr.in1)
        }
        _ => None,
    }
}

/// `x - x` folds to `0.0` only when the analysis proves `x` is never NaN
/// and finite (`inf - inf` is NaN; `NaN - NaN` is NaN). Returns the
/// output kind to fold into.
fn sub_self_zero(instr: &Instruction, st: &AbsState) -> Option<Kind> {
    if !matches!(instr.op, Op::SSub | Op::VSub | Op::MSub) || instr.in1 != instr.in2 {
        return None;
    }
    let kind = instr.op.input_kinds()[0];
    let a = st.get(kind, instr.in1);
    (a.nan == NanState::Never && a.bounded()).then(|| instr.op.output_kind())
}

/// Rewrites `instr` into the canonical copy form `max(src, src)` (or a
/// no-op when it would copy a register onto itself).
fn apply_copy(instr: &mut Instruction, src: u8, folds: &mut usize) {
    let kind = instr.op.output_kind();
    let replacement = if src == instr.out {
        Instruction::nop()
    } else {
        Instruction::new(copy_op(kind), src, src, instr.out, [0.0; 2], [0; 2])
    };
    if *instr != replacement {
        *instr = replacement;
        *folds += 1;
    }
}

fn sort_commutative(prog: &mut AlphaProgram) -> bool {
    let mut changed = false;
    for f in FunctionId::ALL {
        for instr in prog.function_mut(f) {
            // Elementwise add/mul only: f64 + and * are bitwise
            // commutative; min/max are order-sensitive for ±0.0 and NaN,
            // and mat_mul is a true (non-commutative) matrix product.
            let commutative = matches!(
                instr.op,
                Op::SAdd | Op::SMul | Op::VAdd | Op::VMul | Op::MAdd | Op::MMul
            );
            if commutative && instr.in1 > instr.in2 {
                std::mem::swap(&mut instr.in1, &mut instr.in2);
                changed = true;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint;

    fn cfg() -> AlphaConfig {
        AlphaConfig::default()
    }

    fn input_plus(extra: Vec<Instruction>) -> AlphaProgram {
        let mut predict = vec![Instruction::new(Op::MGet, 0, 0, 2, [0.0; 2], [1, 2])];
        predict.extend(extra);
        AlphaProgram {
            setup: vec![Instruction::nop()],
            predict,
            update: vec![Instruction::nop()],
        }
    }

    #[test]
    fn mul_by_one_collapses_to_operand() {
        // s1 = s2 * 1.0 fingerprints the same as s1 = copy(s2).
        let cfg = cfg();
        let with_mul = input_plus(vec![
            Instruction::new(Op::SConst, 0, 0, 3, [1.0, 0.0], [0; 2]),
            Instruction::new(Op::SMul, 2, 3, 1, [0.0; 2], [0; 2]),
        ]);
        let plain = input_plus(vec![Instruction::new(Op::SMax, 2, 2, 1, [0.0; 2], [0; 2])]);
        assert_eq!(fingerprint(&with_mul, &cfg).0, fingerprint(&plain, &cfg).0);
    }

    #[test]
    fn add_negative_zero_collapses_to_operand() {
        let cfg = cfg();
        let with_add = input_plus(vec![
            Instruction::new(Op::SConst, 0, 0, 3, [-0.0, 0.0], [0; 2]),
            Instruction::new(Op::SAdd, 2, 3, 1, [0.0; 2], [0; 2]),
        ]);
        let plain = input_plus(vec![Instruction::new(Op::SMax, 2, 2, 1, [0.0; 2], [0; 2])]);
        assert_eq!(fingerprint(&with_add, &cfg).0, fingerprint(&plain, &cfg).0);
    }

    #[test]
    fn add_positive_zero_is_not_an_identity() {
        // x + 0.0 flips -0.0 to +0.0, so it must NOT collapse.
        let cfg = cfg();
        let with_add = input_plus(vec![
            Instruction::new(Op::SConst, 0, 0, 3, [0.0, 0.0], [0; 2]),
            Instruction::new(Op::SAdd, 2, 3, 1, [0.0; 2], [0; 2]),
        ]);
        let plain = input_plus(vec![Instruction::new(Op::SMax, 2, 2, 1, [0.0; 2], [0; 2])]);
        assert_ne!(fingerprint(&with_add, &cfg).0, fingerprint(&plain, &cfg).0);
    }

    #[test]
    fn commutative_operands_collapse() {
        let cfg = cfg();
        let mk = |swapped: bool| {
            let (a, b) = if swapped { (3, 2) } else { (2, 3) };
            AlphaProgram {
                setup: vec![Instruction::nop()],
                predict: vec![
                    Instruction::new(Op::MGet, 0, 0, 2, [0.0; 2], [1, 2]),
                    Instruction::new(Op::MGet, 0, 0, 3, [0.0; 2], [4, 5]),
                    Instruction::new(Op::SAdd, a, b, 1, [0.0; 2], [0; 2]),
                ],
                update: vec![Instruction::nop()],
            }
        };
        assert_eq!(
            fingerprint(&mk(false), &cfg).0,
            fingerprint(&mk(true), &cfg).0
        );
    }

    #[test]
    fn min_operands_do_not_commute() {
        // f64::min is order-sensitive (±0.0, NaN), so min(a, b) and
        // min(b, a) stay distinct.
        let cfg = cfg();
        let mk = |swapped: bool| {
            let (a, b) = if swapped { (3, 2) } else { (2, 3) };
            AlphaProgram {
                setup: vec![Instruction::nop()],
                predict: vec![
                    Instruction::new(Op::MGet, 0, 0, 2, [0.0; 2], [1, 2]),
                    Instruction::new(Op::MGet, 0, 0, 3, [0.0; 2], [4, 5]),
                    Instruction::new(Op::SMin, a, b, 1, [0.0; 2], [0; 2]),
                ],
                update: vec![Instruction::nop()],
            }
        };
        assert_ne!(
            fingerprint(&mk(false), &cfg).0,
            fingerprint(&mk(true), &cfg).0
        );
    }

    #[test]
    fn common_subexpression_collapses() {
        // Computing |m0[1,2]| twice into two registers and summing them
        // equals computing it once and doubling by self-add.
        let cfg = cfg();
        let twice = input_plus(vec![
            Instruction::new(Op::SAbs, 2, 0, 3, [0.0; 2], [0; 2]),
            Instruction::new(Op::SAbs, 2, 0, 4, [0.0; 2], [0; 2]),
            Instruction::new(Op::SAdd, 3, 4, 1, [0.0; 2], [0; 2]),
        ]);
        let once = input_plus(vec![
            Instruction::new(Op::SAbs, 2, 0, 3, [0.0; 2], [0; 2]),
            Instruction::new(Op::SAdd, 3, 3, 1, [0.0; 2], [0; 2]),
        ]);
        assert_eq!(fingerprint(&twice, &cfg).0, fingerprint(&once, &cfg).0);
    }

    #[test]
    fn constant_expressions_fold_to_const() {
        // s1 uses (0.5 + 0.25) * m0[1,2]; folding the constant side makes
        // it hash like s_const(0.75) scaled.
        let cfg = cfg();
        let unfolded = input_plus(vec![
            Instruction::new(Op::SConst, 0, 0, 3, [0.5, 0.0], [0; 2]),
            Instruction::new(Op::SConst, 0, 0, 4, [0.25, 0.0], [0; 2]),
            Instruction::new(Op::SAdd, 3, 4, 5, [0.0; 2], [0; 2]),
            Instruction::new(Op::SMul, 2, 5, 1, [0.0; 2], [0; 2]),
        ]);
        let folded = input_plus(vec![
            Instruction::new(Op::SConst, 0, 0, 3, [0.75, 0.0], [0; 2]),
            Instruction::new(Op::SMul, 2, 3, 1, [0.0; 2], [0; 2]),
        ]);
        assert_eq!(fingerprint(&unfolded, &cfg).0, fingerprint(&folded, &cfg).0);
        let out = canonical_program(&prune::prune(&unfolded).program, &cfg);
        assert!(
            out.folds >= 1,
            "expected at least one fold, got {}",
            out.folds
        );
    }

    #[test]
    fn stochastic_ops_are_never_folded() {
        // Two uniform draws with identical parameters are DIFFERENT
        // draws: they must not CSE-collapse.
        let cfg = cfg();
        let two_draws = input_plus(vec![
            Instruction::new(Op::SUniform, 0, 0, 3, [-1.0, 1.0], [0; 2]),
            Instruction::new(Op::SUniform, 0, 0, 4, [-1.0, 1.0], [0; 2]),
            Instruction::new(Op::SSub, 3, 4, 5, [0.0; 2], [0; 2]),
            Instruction::new(Op::SMul, 2, 5, 1, [0.0; 2], [0; 2]),
        ]);
        let one_draw = input_plus(vec![
            Instruction::new(Op::SUniform, 0, 0, 3, [-1.0, 1.0], [0; 2]),
            Instruction::new(Op::SConst, 0, 0, 5, [0.0, 0.0], [0; 2]),
            Instruction::new(Op::SMul, 2, 5, 1, [0.0; 2], [0; 2]),
        ]);
        assert_ne!(
            fingerprint(&two_draws, &cfg).0,
            fingerprint(&one_draw, &cfg).0
        );
        // And x - x over a stochastic register must not fold to zero
        // via the sub-self rule either (each read sees the same reg, so
        // it IS zero — but only because it's the same register, which
        // the bounded+never-NaN proof covers).
        let sub_self = input_plus(vec![
            Instruction::new(Op::SUniform, 0, 0, 3, [-1.0, 1.0], [0; 2]),
            Instruction::new(Op::SSub, 3, 3, 5, [0.0; 2], [0; 2]),
            Instruction::new(Op::SAdd, 2, 5, 1, [0.0; 2], [0; 2]),
        ]);
        let zeroed = input_plus(vec![
            Instruction::new(Op::SUniform, 0, 0, 3, [-1.0, 1.0], [0; 2]),
            Instruction::new(Op::SConst, 0, 0, 5, [0.0, 0.0], [0; 2]),
            Instruction::new(Op::SAdd, 2, 5, 1, [0.0; 2], [0; 2]),
        ]);
        // s3 is uniform in [-1, 1): never NaN, bounded, so s3 - s3 is
        // exactly +0.0 and the fold applies. The dead draw is kept by
        // the pruner for RNG-stream parity, so both forms carry it.
        assert_eq!(fingerprint(&sub_self, &cfg).0, fingerprint(&zeroed, &cfg).0);
    }

    #[test]
    fn copy_chains_collapse_through_aliasing() {
        // s3 = copy(s2); s1 = s3 + s3  ==  s1 = s2 + s2.
        let cfg = cfg();
        let chained = input_plus(vec![
            Instruction::new(Op::SMax, 2, 2, 3, [0.0; 2], [0; 2]),
            Instruction::new(Op::SAdd, 3, 3, 1, [0.0; 2], [0; 2]),
        ]);
        let direct = input_plus(vec![Instruction::new(Op::SAdd, 2, 2, 1, [0.0; 2], [0; 2])]);
        assert_eq!(fingerprint(&chained, &cfg).0, fingerprint(&direct, &cfg).0);
    }

    #[test]
    fn canonical_form_is_idempotent() {
        let cfg = cfg();
        let p = input_plus(vec![
            Instruction::new(Op::SConst, 0, 0, 3, [1.0, 0.0], [0; 2]),
            Instruction::new(Op::SMul, 2, 3, 4, [0.0; 2], [0; 2]),
            Instruction::new(Op::SAbs, 4, 0, 1, [0.0; 2], [0; 2]),
        ]);
        let once = canonical_program(&prune::prune(&p).program, &cfg);
        let twice = canonical_program(&once.program, &cfg);
        assert_eq!(once.program, twice.program);
    }
}
