//! Fully-connected layer with manual backprop.

use rand::rngs::SmallRng;

use crate::tensor::{matvec, matvec_t_acc, outer_acc, ParamId, ParamStore};

/// `y = W x + b`.
#[derive(Debug, Clone, Copy)]
pub struct Dense {
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
    /// Weight block (`out_dim × in_dim`, row-major).
    pub w: ParamId,
    /// Bias block (`out_dim`).
    pub b: ParamId,
}

impl Dense {
    /// Allocates a Xavier-initialized layer in `store`.
    pub fn new(store: &mut ParamStore, rng: &mut SmallRng, in_dim: usize, out_dim: usize) -> Dense {
        let w = store.alloc_xavier(out_dim * in_dim, in_dim, out_dim, rng);
        let b = store.alloc(out_dim);
        Dense {
            in_dim,
            out_dim,
            w,
            b,
        }
    }

    /// Forward pass.
    pub fn forward(&self, store: &ParamStore, x: &[f64], y: &mut [f64]) {
        matvec(store.value(self.w), x, y, self.out_dim, self.in_dim);
        for (yi, bi) in y.iter_mut().zip(store.value(self.b)) {
            *yi += bi;
        }
    }

    /// Backward pass: accumulates `dW`, `db` into the store and `dx` into
    /// the caller's buffer (which must be zeroed or pre-accumulated by the
    /// caller's design).
    pub fn backward(&self, store: &mut ParamStore, x: &[f64], dy: &[f64], dx: &mut [f64]) {
        outer_acc(store.grad_mut(self.w), dy, x);
        for (g, d) in store.grad_mut(self.b).iter_mut().zip(dy) {
            *g += d;
        }
        matvec_t_acc(store.value(self.w), dy, dx, self.out_dim, self.in_dim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Finite-difference check of dW, db, dx for a scalar loss L = sum(y).
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let layer = Dense::new(&mut store, &mut rng, 4, 3);
        let x = vec![0.3, -0.7, 1.2, 0.05];
        let loss = |store: &ParamStore, x: &[f64]| -> f64 {
            let mut y = vec![0.0; 3];
            layer.forward(store, x, &mut y);
            // Weighted sum keeps gradients distinct per output.
            y[0] + 2.0 * y[1] - 0.5 * y[2]
        };
        let dy = vec![1.0, 2.0, -0.5];
        store.zero_grads();
        let mut dx = vec![0.0; 4];
        layer.backward(&mut store, &x, &dy, &mut dx);

        let eps = 1e-6;
        // Check dW.
        for k in 0..layer.w.len() {
            let orig = store.value(layer.w)[k];
            store.value_mut(layer.w)[k] = orig + eps;
            let up = loss(&store, &x);
            store.value_mut(layer.w)[k] = orig - eps;
            let down = loss(&store, &x);
            store.value_mut(layer.w)[k] = orig;
            let fd = (up - down) / (2.0 * eps);
            assert!((store.grad(layer.w)[k] - fd).abs() < 1e-6, "dW[{k}]");
        }
        // Check db.
        for k in 0..3 {
            let orig = store.value(layer.b)[k];
            store.value_mut(layer.b)[k] = orig + eps;
            let up = loss(&store, &x);
            store.value_mut(layer.b)[k] = orig - eps;
            let down = loss(&store, &x);
            store.value_mut(layer.b)[k] = orig;
            let fd = (up - down) / (2.0 * eps);
            assert!((store.grad(layer.b)[k] - fd).abs() < 1e-6, "db[{k}]");
        }
        // Check dx.
        for k in 0..4 {
            let mut xp = x.clone();
            xp[k] += eps;
            let up = loss(&store, &xp);
            xp[k] -= 2.0 * eps;
            let down = loss(&store, &xp);
            let fd = (up - down) / (2.0 * eps);
            assert!((dx[k] - fd).abs() < 1e-6, "dx[{k}]");
        }
    }

    #[test]
    fn forward_is_affine() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let layer = Dense::new(&mut store, &mut rng, 2, 2);
        let mut y0 = vec![0.0; 2];
        layer.forward(&store, &[0.0, 0.0], &mut y0);
        assert_eq!(y0, store.value(layer.b).to_vec());
        let mut y1 = vec![0.0; 2];
        let mut y2 = vec![0.0; 2];
        layer.forward(&store, &[1.0, 2.0], &mut y1);
        layer.forward(&store, &[2.0, 4.0], &mut y2);
        // Affinity: y(2x) - b = 2 (y(x) - b)
        for k in 0..2 {
            assert!(((y2[k] - y0[k]) - 2.0 * (y1[k] - y0[k])).abs() < 1e-12);
        }
    }
}
