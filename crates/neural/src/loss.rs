//! The combined point-wise + pair-wise ranking loss of Feng et al.
//!
//! For one day's cross-section of predictions `ŷ` and ground truth `y`:
//!
//! ```text
//! L = (1/K) Σ_i (ŷ_i − y_i)²
//!   + (α/K²) Σ_{i,j} max(0, −(ŷ_i − ŷ_j)(y_i − y_j))
//! ```
//!
//! The second term penalizes *mis-ordered pairs* proportionally to how
//! badly they are mis-ordered — the "Rank" in Rank_LSTM. `α` is the
//! balance hyper-parameter the paper grid-searches over
//! `[0.01, 0.1, 1, 10]`.

/// Loss value and gradient w.r.t. the predictions for one day.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Total loss.
    pub loss: f64,
    /// `∂L/∂ŷ_i` for every stock.
    pub grad: Vec<f64>,
}

/// Computes the combined loss and its gradient.
pub fn rank_mse_loss(preds: &[f64], labels: &[f64], alpha: f64) -> LossOutput {
    assert_eq!(preds.len(), labels.len());
    let k = preds.len();
    let kf = k as f64;
    let mut loss = 0.0;
    let mut grad = vec![0.0; k];

    // Point-wise MSE.
    for i in 0..k {
        let e = preds[i] - labels[i];
        loss += e * e / kf;
        grad[i] += 2.0 * e / kf;
    }

    // Pair-wise hinge on ordering.
    if alpha != 0.0 {
        let k2 = kf * kf;
        for i in 0..k {
            for j in 0..k {
                if i == j {
                    continue;
                }
                let margin = -(preds[i] - preds[j]) * (labels[i] - labels[j]);
                if margin > 0.0 {
                    loss += alpha * margin / k2;
                    // d margin / d preds[i] = -(labels[i]-labels[j])
                    grad[i] += alpha * -(labels[i] - labels[j]) / k2;
                    grad[j] += alpha * (labels[i] - labels[j]) / k2;
                }
            }
        }
    }
    LossOutput { loss, grad }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ordering_has_no_rank_loss() {
        let labels = vec![-0.02, 0.0, 0.01, 0.05];
        let preds = vec![-0.5, 0.0, 0.2, 0.9]; // same order, wrong scale
        let with_rank = rank_mse_loss(&preds, &labels, 10.0);
        let without = rank_mse_loss(&preds, &labels, 0.0);
        assert!((with_rank.loss - without.loss).abs() < 1e-12);
    }

    #[test]
    fn inverted_ordering_is_penalized() {
        let labels = vec![-0.02, 0.0, 0.01, 0.05];
        let preds: Vec<f64> = labels.iter().map(|x| -x).collect();
        let l0 = rank_mse_loss(&preds, &labels, 0.0).loss;
        let l1 = rank_mse_loss(&preds, &labels, 1.0).loss;
        assert!(l1 > l0);
    }

    #[test]
    fn zero_loss_at_exact_predictions() {
        let labels = vec![0.01, -0.02, 0.03];
        let out = rank_mse_loss(&labels, &labels, 5.0);
        assert!(out.loss < 1e-15);
        assert!(out.grad.iter().all(|g| g.abs() < 1e-12));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let labels = vec![0.01, -0.02, 0.03, 0.0, -0.01];
        let preds = vec![0.5, 0.1, -0.3, 0.2, 0.05];
        let alpha = 0.7;
        let out = rank_mse_loss(&preds, &labels, alpha);
        let eps = 1e-7;
        for i in 0..preds.len() {
            let mut p = preds.clone();
            p[i] += eps;
            let up = rank_mse_loss(&p, &labels, alpha).loss;
            p[i] -= 2.0 * eps;
            let down = rank_mse_loss(&p, &labels, alpha).loss;
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (out.grad[i] - fd).abs() < 1e-5,
                "grad[{i}]: {} vs {fd}",
                out.grad[i]
            );
        }
    }

    #[test]
    fn mse_scale_invariance_of_shape() {
        // Doubling K with duplicated entries keeps the mean loss equal.
        let labels = vec![0.01, -0.02];
        let preds = vec![0.03, 0.01];
        let l1 = rank_mse_loss(&preds, &labels, 0.0).loss;
        let labels2 = vec![0.01, -0.02, 0.01, -0.02];
        let preds2 = vec![0.03, 0.01, 0.03, 0.01];
        let l2 = rank_mse_loss(&preds2, &labels2, 0.0).loss;
        assert!((l1 - l2).abs() < 1e-12);
    }
}
