//! Optimizers over a flat [`ParamStore`].

use crate::tensor::ParamStore;

/// Adam (Kingma & Ba) with the standard bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (paper: 0.001 for the LSTM baselines).
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// New optimizer for a store with `n_params` parameters.
    pub fn new(n_params: usize, lr: f64) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; n_params],
            v: vec![0.0; n_params],
            t: 0,
        }
    }

    /// One update step from the store's accumulated gradients. Does not
    /// zero gradients — call [`ParamStore::zero_grads`] before the next
    /// backward pass.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let (values, grads) = store.raw_mut();
        assert_eq!(
            values.len(),
            self.m.len(),
            "optimizer sized for a different store"
        );
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for k in 0..values.len() {
            let g = grads[k];
            self.m[k] = self.beta1 * self.m[k] + (1.0 - self.beta1) * g;
            self.v[k] = self.beta2 * self.v[k] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[k] / bc1;
            let vhat = self.v[k] / bc2;
            values[k] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

/// Plain SGD (used in tests as a sanity baseline).
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
}

impl Sgd {
    /// One update step.
    pub fn step(&self, store: &mut ParamStore) {
        let (values, grads) = store.raw_mut();
        for k in 0..values.len() {
            values[k] -= self.lr * grads[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizing f(x) = (x-3)^2 converges with both optimizers.
    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let id = store.alloc(1);
        store.value_mut(id)[0] = -5.0;
        let mut adam = Adam::new(1, 0.1);
        for _ in 0..500 {
            store.zero_grads();
            let x = store.value(id)[0];
            store.grad_mut(id)[0] = 2.0 * (x - 3.0);
            adam.step(&mut store);
        }
        assert!((store.value(id)[0] - 3.0).abs() < 0.01);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let id = store.alloc(1);
        store.value_mut(id)[0] = 10.0;
        let sgd = Sgd { lr: 0.1 };
        for _ in 0..200 {
            store.zero_grads();
            let x = store.value(id)[0];
            store.grad_mut(id)[0] = 2.0 * (x - 3.0);
            sgd.step(&mut store);
        }
        assert!((store.value(id)[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn adam_step_size_bounded_by_lr() {
        // Adam's per-step move is ~lr regardless of gradient scale.
        let mut store = ParamStore::new();
        let id = store.alloc(1);
        let mut adam = Adam::new(1, 0.01);
        store.zero_grads();
        store.grad_mut(id)[0] = 1e9;
        let before = store.value(id)[0];
        adam.step(&mut store);
        assert!((store.value(id)[0] - before).abs() < 0.011);
    }
}
