//! RSR: Relational Stock Ranking (Feng et al. 2019), the paper's second
//! Table-5 baseline.
//!
//! RSR augments Rank_LSTM with a **relational layer**: each stock's LSTM
//! embedding is combined with an aggregate of the embeddings of related
//! stocks (same sector/industry), and the prediction head reads the
//! concatenation `[e_i ; r_i]`. The AlphaEvolve paper's point (§5.4.3) is
//! that *imposing* this static relational structure hurts on a noisy
//! market — which is exactly what Table 5 shows and what this
//! implementation reproduces directionally.
//!
//! Following the original pipeline, the LSTM can be initialized from a
//! pre-trained Rank_LSTM ("getting the pre-trained embeddings for RSR
//! following the original implementation", §5.2) via [`Rsr::init_from`].

use rand::rngs::SmallRng;
use rand::SeedableRng;

use alphaevolve_backtest::CrossSections;
use alphaevolve_market::Dataset;

use crate::dense::Dense;
use crate::graph::{RelationLevel, StockGraph};
use crate::loss::rank_mse_loss;
use crate::lstm::{Lstm, LstmCache, LstmDims};
use crate::optim::Adam;
use crate::rank_lstm::{RankLstm, RankLstmConfig, TrainLog};
use crate::tensor::ParamStore;

/// RSR hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RsrConfig {
    /// The underlying sequential-model configuration.
    pub base: RankLstmConfig,
    /// Which classification level defines relations.
    pub level: RelationLevel,
}

impl Default for RsrConfig {
    fn default() -> Self {
        RsrConfig {
            base: RankLstmConfig::default(),
            level: RelationLevel::Industry,
        }
    }
}

/// The RSR model.
pub struct Rsr {
    /// All parameters.
    pub store: ParamStore,
    /// Sequential encoder (shared across stocks).
    pub lstm: Lstm,
    /// Prediction head over `[e_i ; r_i]` (`2·hidden → 1`).
    pub head: Dense,
    graph: StockGraph,
    cfg: RsrConfig,
}

impl Rsr {
    /// Fresh model over the dataset's universe.
    pub fn new(cfg: RsrConfig, dataset: &Dataset) -> Rsr {
        let mut rng = SmallRng::seed_from_u64(cfg.base.seed);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(
            &mut store,
            &mut rng,
            LstmDims {
                input: cfg.base.feature_rows.len(),
                hidden: cfg.base.hidden,
            },
        );
        let head = Dense::new(&mut store, &mut rng, 2 * cfg.base.hidden, 1);
        let graph = StockGraph::from_universe(dataset.universe(), cfg.level);
        Rsr {
            store,
            lstm,
            head,
            graph,
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &RsrConfig {
        &self.cfg
    }

    /// Copies a pre-trained Rank_LSTM's encoder weights into this model
    /// (shapes must match).
    pub fn init_from(&mut self, pretrained: &RankLstm) {
        assert_eq!(
            self.lstm.dims, pretrained.lstm.dims,
            "encoder shapes must match"
        );
        self.store
            .copy_values_from(&pretrained.store, self.lstm.w, pretrained.lstm.w);
        self.store
            .copy_values_from(&pretrained.store, self.lstm.b, pretrained.lstm.b);
    }

    fn sequence(&self, dataset: &Dataset, stock: usize, day: usize) -> Vec<Vec<f64>> {
        let panel = dataset.panel();
        (day - self.cfg.base.seq_len..day)
            .map(|t| {
                self.cfg
                    .base
                    .feature_rows
                    .iter()
                    .map(|&r| panel.feature(stock, r)[t])
                    .collect()
            })
            .collect()
    }

    /// One day's full forward pass. Returns (predictions, per-stock caches,
    /// flattened embeddings, flattened concat inputs).
    fn forward_day(
        &self,
        dataset: &Dataset,
        day: usize,
    ) -> (Vec<f64>, Vec<LstmCache>, Vec<f64>, Vec<f64>) {
        let k = dataset.n_stocks();
        let h = self.cfg.base.hidden;
        let mut caches = Vec::with_capacity(k);
        let mut emb = vec![0.0; k * h];
        for stock in 0..k {
            let xs = self.sequence(dataset, stock, day);
            let mut cache = LstmCache::default();
            self.lstm.forward(&self.store, &xs, &mut cache);
            emb[stock * h..(stock + 1) * h].copy_from_slice(&cache.h_final);
            caches.push(cache);
        }
        let mut rel = vec![0.0; k * h];
        self.graph.aggregate(&emb, h, &mut rel);
        let mut preds = vec![0.0; k];
        let mut cat = vec![0.0; k * 2 * h];
        for stock in 0..k {
            let c = &mut cat[stock * 2 * h..(stock + 1) * 2 * h];
            c[..h].copy_from_slice(&emb[stock * h..(stock + 1) * h]);
            c[h..].copy_from_slice(&rel[stock * h..(stock + 1) * h]);
            let mut y = [0.0];
            self.head.forward(&self.store, c, &mut y);
            preds[stock] = y[0];
        }
        (preds, caches, emb, cat)
    }

    /// Trains end-to-end (one mini-batch per training day).
    pub fn train(&mut self, dataset: &Dataset) -> TrainLog {
        let k = dataset.n_stocks();
        let h = self.cfg.base.hidden;
        let mut adam = Adam::new(self.store.n_params(), self.cfg.base.lr);
        let mut epoch_losses = Vec::with_capacity(self.cfg.base.epochs);
        for _ in 0..self.cfg.base.epochs {
            let mut total = 0.0;
            let mut days = 0usize;
            for day in dataset.train_days() {
                let (preds, caches, _emb, cat) = self.forward_day(dataset, day);
                let labels = dataset.labels_at(day);
                let out = rank_mse_loss(&preds, &labels, self.cfg.base.alpha);
                total += out.loss;
                days += 1;
                self.store.zero_grads();
                // Head backward per stock; split dcat into direct + relational.
                let mut d_emb = vec![0.0; k * h];
                let mut d_rel = vec![0.0; k * h];
                for stock in 0..k {
                    let c = &cat[stock * 2 * h..(stock + 1) * 2 * h];
                    let mut dcat = vec![0.0; 2 * h];
                    self.head
                        .backward(&mut self.store, c, &[out.grad[stock]], &mut dcat);
                    d_emb[stock * h..(stock + 1) * h].copy_from_slice(&dcat[..h]);
                    d_rel[stock * h..(stock + 1) * h].copy_from_slice(&dcat[h..]);
                }
                // Relational layer backward adds into the embedding grads.
                self.graph.aggregate_backward(&d_rel, h, &mut d_emb);
                for stock in 0..k {
                    self.lstm.backward(
                        &mut self.store,
                        &caches[stock],
                        &d_emb[stock * h..(stock + 1) * h],
                    );
                }
                adam.step(&mut self.store);
            }
            epoch_losses.push(if days > 0 { total / days as f64 } else { 0.0 });
        }
        TrainLog { epoch_losses }
    }

    /// Predictions for every stock on one day.
    pub fn predict_day(&self, dataset: &Dataset, day: usize) -> Vec<f64> {
        self.forward_day(dataset, day).0
    }

    /// Prediction cross-sections over a day range, as a flat day-major
    /// panel scored by the same backtest code path as every other method.
    pub fn predictions(&self, dataset: &Dataset, days: std::ops::Range<usize>) -> CrossSections {
        crate::prediction_panel(days, dataset.n_stocks(), |day, out| {
            out.copy_from_slice(&self.forward_day(dataset, day).0);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphaevolve_market::{features::FeatureSet, generator::MarketConfig, SplitSpec};

    fn tiny_dataset(seed: u64) -> Dataset {
        let md = MarketConfig {
            n_stocks: 8,
            n_days: 110,
            seed,
            n_sectors: 2,
            ..Default::default()
        }
        .generate();
        Dataset::build(&md, &FeatureSet::paper(), SplitSpec::paper_ratios()).unwrap()
    }

    fn tiny_config() -> RsrConfig {
        RsrConfig {
            base: RankLstmConfig {
                hidden: 8,
                seq_len: 4,
                epochs: 3,
                seed: 1,
                ..Default::default()
            },
            level: RelationLevel::Sector,
        }
    }

    #[test]
    fn training_reduces_loss() {
        let ds = tiny_dataset(51);
        let mut model = Rsr::new(tiny_config(), &ds);
        let log = model.train(&ds);
        assert!(
            log.epoch_losses.last().unwrap() < &log.epoch_losses[0],
            "loss should fall: {:?}",
            log.epoch_losses
        );
    }

    #[test]
    fn predictions_finite() {
        let ds = tiny_dataset(52);
        let mut model = Rsr::new(tiny_config(), &ds);
        model.train(&ds);
        let preds = model.predictions(&ds, ds.valid_days());
        assert!(preds.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn pretrained_init_copies_encoder() {
        let ds = tiny_dataset(53);
        let mut base = RankLstm::new(tiny_config().base);
        base.train(&ds);
        let mut rsr = Rsr::new(tiny_config(), &ds);
        rsr.init_from(&base);
        assert_eq!(rsr.store.value(rsr.lstm.w), base.store.value(base.lstm.w));
        assert_eq!(rsr.store.value(rsr.lstm.b), base.store.value(base.lstm.b));
    }

    #[test]
    fn relational_structure_changes_predictions() {
        // RSR with untrained head already mixes neighbor embeddings, so its
        // predictions differ from a Rank_LSTM with the same encoder.
        let ds = tiny_dataset(54);
        let mut base = RankLstm::new(tiny_config().base);
        base.train(&ds);
        let mut rsr = Rsr::new(tiny_config(), &ds);
        rsr.init_from(&base);
        let day = ds.valid_days().start;
        assert_ne!(base.predict_day(&ds, day), rsr.predict_day(&ds, day));
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = tiny_dataset(55);
        let mut a = Rsr::new(tiny_config(), &ds);
        let mut b = Rsr::new(tiny_config(), &ds);
        a.train(&ds);
        b.train(&ds);
        let day = ds.valid_days().start;
        assert_eq!(a.predict_day(&ds, day), b.predict_day(&ds, day));
    }
}
