//! The sector/industry relation graph used by RSR.
//!
//! Feng et al. connect stocks that share an industry (their NASDAQ
//! experiments use Wiki/industry relations); the AlphaEvolve paper
//! describes RSR as "designed with the injection of relational domain
//! knowledge by connecting stocks in the same sector (industry)". We build
//! the graph from the universe's classification and aggregate neighbor
//! embeddings with uniform weights — the static-relation RSR variant, with
//! exact gradients (`DESIGN.md` §3).

use alphaevolve_market::Universe;

/// Neighbor lists (including self) per stock.
#[derive(Debug, Clone)]
pub struct StockGraph {
    neighbors: Vec<Vec<u32>>,
}

/// Which classification level defines the edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelationLevel {
    /// Same sector.
    Sector,
    /// Same industry (finer).
    Industry,
}

impl StockGraph {
    /// Builds the relation graph from a universe.
    pub fn from_universe(u: &Universe, level: RelationLevel) -> StockGraph {
        let neighbors = (0..u.len())
            .map(|i| {
                let meta = u.stock(i);
                match level {
                    RelationLevel::Sector => u.sector_members(meta.sector).to_vec(),
                    RelationLevel::Industry => u.industry_members(meta.industry).to_vec(),
                }
            })
            .collect();
        StockGraph { neighbors }
    }

    /// Number of stocks.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// True when the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// Neighbors of stock `i` (self included).
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.neighbors[i]
    }

    /// Uniform neighbor aggregation: `r_i = mean_{j ∈ N(i)} e_j`.
    /// `emb` is `K × dim` flattened; writes into `out` (same shape).
    pub fn aggregate(&self, emb: &[f64], dim: usize, out: &mut [f64]) {
        let k = self.len();
        debug_assert_eq!(emb.len(), k * dim);
        debug_assert_eq!(out.len(), k * dim);
        for i in 0..k {
            let ns = &self.neighbors[i];
            let scale = 1.0 / ns.len() as f64;
            let ri = &mut out[i * dim..(i + 1) * dim];
            ri.fill(0.0);
            for &j in ns {
                let ej = &emb[j as usize * dim..(j as usize + 1) * dim];
                for (r, e) in ri.iter_mut().zip(ej) {
                    *r += e * scale;
                }
            }
        }
    }

    /// Backward of [`StockGraph::aggregate`]: given `d_out = ∂L/∂r`,
    /// accumulates `∂L/∂e` into `d_emb`.
    pub fn aggregate_backward(&self, d_out: &[f64], dim: usize, d_emb: &mut [f64]) {
        for i in 0..self.len() {
            let ns = &self.neighbors[i];
            let scale = 1.0 / ns.len() as f64;
            let dri = &d_out[i * dim..(i + 1) * dim];
            for &j in ns {
                let dej = &mut d_emb[j as usize * dim..(j as usize + 1) * dim];
                for (de, dr) in dej.iter_mut().zip(dri) {
                    *de += dr * scale;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> StockGraph {
        // 6 stocks, 2 sectors of 3, industries of size <= 2.
        let u = Universe::synthetic(6, 2, 2);
        StockGraph::from_universe(&u, RelationLevel::Sector)
    }

    #[test]
    fn neighbors_include_self() {
        let g = graph();
        for i in 0..g.len() {
            assert!(
                g.neighbors(i).contains(&(i as u32)),
                "stock {i} missing from its own group"
            );
        }
    }

    #[test]
    fn aggregate_of_constant_embeddings_is_identity() {
        let g = graph();
        let dim = 3;
        let emb: Vec<f64> = (0..g.len()).flat_map(|_| vec![1.0, 2.0, 3.0]).collect();
        let mut out = vec![0.0; emb.len()];
        g.aggregate(&emb, dim, &mut out);
        for i in 0..g.len() {
            assert_eq!(&out[i * dim..(i + 1) * dim], &[1.0, 2.0, 3.0]);
        }
    }

    #[test]
    fn aggregate_is_group_mean() {
        let u = Universe::synthetic(4, 2, 1); // sectors {0,2} and {1,3}
        let g = StockGraph::from_universe(&u, RelationLevel::Sector);
        let dim = 1;
        let emb = vec![1.0, 10.0, 3.0, 20.0];
        let mut out = vec![0.0; 4];
        g.aggregate(&emb, dim, &mut out);
        assert_eq!(out, vec![2.0, 15.0, 2.0, 15.0]);
    }

    #[test]
    fn backward_is_adjoint_of_forward() {
        // <aggregate(e), d> == <e, aggregate_backward(d)>
        let g = graph();
        let dim = 2;
        let k = g.len();
        let emb: Vec<f64> = (0..k * dim).map(|i| (i as f64 * 0.37).sin()).collect();
        let d: Vec<f64> = (0..k * dim).map(|i| (i as f64 * 0.71).cos()).collect();
        let mut fwd = vec![0.0; k * dim];
        g.aggregate(&emb, dim, &mut fwd);
        let lhs: f64 = fwd.iter().zip(&d).map(|(a, b)| a * b).sum();
        let mut bwd = vec![0.0; k * dim];
        g.aggregate_backward(&d, dim, &mut bwd);
        let rhs: f64 = bwd.iter().zip(&emb).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn industry_graph_is_finer_than_sector() {
        let u = Universe::synthetic(12, 2, 3);
        let sec = StockGraph::from_universe(&u, RelationLevel::Sector);
        let ind = StockGraph::from_universe(&u, RelationLevel::Industry);
        for i in 0..12 {
            assert!(ind.neighbors(i).len() <= sec.neighbors(i).len());
        }
    }
}
