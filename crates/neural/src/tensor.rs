//! Flat parameter store and small dense-math helpers.
//!
//! All trainable parameters of a model live in one contiguous `values`
//! buffer with a parallel `grads` buffer; layers hold [`ParamId`] handles
//! (offset + length). This keeps the optimizer a single loop over two
//! slices and sidesteps borrow-checker gymnastics between layers.

use rand::rngs::SmallRng;
use rand::Rng;

/// Handle to one parameter block inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamId {
    offset: usize,
    len: usize,
}

impl ParamId {
    /// Number of scalars in the block.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for an empty block.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Contiguous value/gradient storage for all parameters of a model.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    values: Vec<f64>,
    grads: Vec<f64>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> ParamStore {
        ParamStore::default()
    }

    /// Allocates a zero-initialized block.
    pub fn alloc(&mut self, len: usize) -> ParamId {
        let offset = self.values.len();
        self.values.resize(offset + len, 0.0);
        self.grads.resize(offset + len, 0.0);
        ParamId { offset, len }
    }

    /// Allocates a block with Xavier/Glorot-uniform init for a layer with
    /// the given fan-in/fan-out.
    pub fn alloc_xavier(
        &mut self,
        len: usize,
        fan_in: usize,
        fan_out: usize,
        rng: &mut SmallRng,
    ) -> ParamId {
        let id = self.alloc(len);
        let bound = (6.0 / (fan_in + fan_out) as f64).sqrt();
        for x in self.value_mut(id) {
            *x = rng.gen_range(-bound..bound);
        }
        id
    }

    /// Total number of parameters.
    pub fn n_params(&self) -> usize {
        self.values.len()
    }

    /// Read a block's values.
    pub fn value(&self, id: ParamId) -> &[f64] {
        &self.values[id.offset..id.offset + id.len]
    }

    /// Mutate a block's values.
    pub fn value_mut(&mut self, id: ParamId) -> &mut [f64] {
        &mut self.values[id.offset..id.offset + id.len]
    }

    /// Read a block's gradients.
    pub fn grad(&self, id: ParamId) -> &[f64] {
        &self.grads[id.offset..id.offset + id.len]
    }

    /// Mutate a block's gradients (accumulate with `+=`).
    pub fn grad_mut(&mut self, id: ParamId) -> &mut [f64] {
        &mut self.grads[id.offset..id.offset + id.len]
    }

    /// Zeroes every gradient.
    pub fn zero_grads(&mut self) {
        self.grads.fill(0.0);
    }

    /// Raw (values, grads) view for the optimizer.
    pub fn raw_mut(&mut self) -> (&mut [f64], &[f64]) {
        (&mut self.values, &self.grads)
    }

    /// Copies every value from another store (same allocation layout
    /// required) — used to seed RSR with pre-trained Rank_LSTM weights.
    pub fn copy_values_from(&mut self, other: &ParamStore, dst: ParamId, src: ParamId) {
        assert_eq!(dst.len, src.len, "parameter blocks must match");
        let from = &other.values[src.offset..src.offset + src.len];
        self.values[dst.offset..dst.offset + dst.len].copy_from_slice(from);
    }
}

/// `y = W x` for a row-major `rows × cols` matrix.
pub fn matvec(w: &[f64], x: &[f64], y: &mut [f64], rows: usize, cols: usize) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(x.len(), cols);
    debug_assert_eq!(y.len(), rows);
    for r in 0..rows {
        let row = &w[r * cols..(r + 1) * cols];
        y[r] = row.iter().zip(x).map(|(a, b)| a * b).sum();
    }
}

/// `dx += Wᵀ dy` for a row-major `rows × cols` matrix.
pub fn matvec_t_acc(w: &[f64], dy: &[f64], dx: &mut [f64], rows: usize, cols: usize) {
    for r in 0..rows {
        let row = &w[r * cols..(r + 1) * cols];
        let d = dy[r];
        for c in 0..cols {
            dx[c] += row[c] * d;
        }
    }
}

/// `dW += dy ⊗ x` (outer product accumulate).
pub fn outer_acc(dw: &mut [f64], dy: &[f64], x: &[f64]) {
    let cols = x.len();
    for (r, &d) in dy.iter().enumerate() {
        let row = &mut dw[r * cols..(r + 1) * cols];
        for c in 0..cols {
            row[c] += d * x[c];
        }
    }
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn alloc_and_views() {
        let mut s = ParamStore::new();
        let a = s.alloc(3);
        let b = s.alloc(2);
        s.value_mut(a).copy_from_slice(&[1.0, 2.0, 3.0]);
        s.value_mut(b).copy_from_slice(&[4.0, 5.0]);
        assert_eq!(s.value(a), &[1.0, 2.0, 3.0]);
        assert_eq!(s.value(b), &[4.0, 5.0]);
        assert_eq!(s.n_params(), 5);
        s.grad_mut(b)[1] = 9.0;
        assert_eq!(s.grad(b), &[0.0, 9.0]);
        s.zero_grads();
        assert_eq!(s.grad(b), &[0.0, 0.0]);
    }

    #[test]
    fn xavier_bounds() {
        let mut s = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let id = s.alloc_xavier(1000, 10, 10, &mut rng);
        let bound = (6.0 / 20.0f64).sqrt();
        assert!(s.value(id).iter().all(|x| x.abs() <= bound));
        assert!(
            s.value(id).iter().any(|x| x.abs() > bound * 0.5),
            "values should spread"
        );
    }

    #[test]
    fn matvec_and_transpose_agree() {
        // <W x, y> == <x, Wᵀ y> (adjoint identity).
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let x = [0.5, -1.0, 2.0];
        let y = [3.0, -2.0];
        let mut wx = [0.0; 2];
        matvec(&w, &x, &mut wx, 2, 3);
        let lhs: f64 = wx.iter().zip(&y).map(|(a, b)| a * b).sum();
        let mut wty = [0.0; 3];
        matvec_t_acc(&w, &y, &mut wty, 2, 3);
        let rhs: f64 = wty.iter().zip(&x).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn outer_accumulates() {
        let mut dw = vec![0.0; 6];
        outer_acc(&mut dw, &[1.0, 2.0], &[3.0, 4.0, 5.0]);
        outer_acc(&mut dw, &[1.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(dw, vec![4.0, 5.0, 6.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
    }
}
