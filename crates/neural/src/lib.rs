//! From-scratch neural baselines for the AlphaEvolve paper.
//!
//! Table 5 compares evolved alphas against two "complex machine learning
//! alphas" from Feng et al.'s *Temporal Relational Ranking for Stock
//! Prediction* (TOIS 2019):
//!
//! * **Rank_LSTM** — an LSTM over a sequence of moving-average features,
//!   with a fully-connected output head and a combined point-wise
//!   regression + pair-wise ranking loss ([`rank_lstm`]).
//! * **RSR** — Rank_LSTM plus a relational layer that aggregates the LSTM
//!   embeddings of stocks related through the sector/industry graph
//!   ([`rsr`], [`graph`]). We implement the static, uniformly-weighted
//!   relation variant with exact gradients (see `DESIGN.md` §3 for why
//!   this preserves the paper's directional claim).
//!
//! Everything is built on a tiny manual-backprop substrate: a flat
//! parameter store ([`tensor`]), a dense layer ([`dense`]), an LSTM cell
//! with truncated-at-sequence BPTT ([`lstm`]), the combined loss
//! ([`loss`]), and Adam ([`optim`]). Gradients are verified against finite
//! differences in the test suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod graph;
pub mod loss;
pub mod lstm;
pub mod optim;
pub mod rank_lstm;
pub mod rsr;
pub mod tensor;

pub use rank_lstm::{RankLstm, RankLstmConfig};
pub use rsr::{Rsr, RsrConfig};

/// Builds a flat `days × n_stocks` prediction panel by letting `fill`
/// write each day's cross-section directly into the panel row (no per-day
/// allocation). Shared by both baselines' `predictions` methods.
pub(crate) fn prediction_panel(
    days: std::ops::Range<usize>,
    n_stocks: usize,
    mut fill: impl FnMut(usize, &mut [f64]),
) -> alphaevolve_backtest::CrossSections {
    let start = days.start;
    let mut cs = alphaevolve_backtest::CrossSections::new(days.len(), n_stocks);
    for d in 0..cs.n_days() {
        fill(start + d, cs.row_mut(d));
    }
    cs
}
