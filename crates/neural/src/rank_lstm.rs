//! Rank_LSTM (Feng et al. 2019), the paper's Table-5 baseline.
//!
//! *"Each model's input is a vector of the close prices' moving averages
//! over 5, 10, 20, and 30 days for each of the input stocks, while the
//! output is the predicted return"* (§5.2). The LSTM consumes a `seq_len`
//! window of those 4-vectors; its final hidden state maps through a dense
//! head to a scalar predicted return, trained with the combined MSE +
//! pair-wise ranking loss and Adam (learning rate 0.001), one mini-batch
//! per trading day (the whole cross-section).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use alphaevolve_backtest::CrossSections;
use alphaevolve_market::Dataset;

use crate::dense::Dense;
use crate::loss::rank_mse_loss;
use crate::lstm::{Lstm, LstmCache, LstmDims};
use crate::optim::Adam;
use crate::tensor::ParamStore;

/// Hyper-parameters (§5.2 grid: seq_len ∈ {4, 8, 16, 32}, hidden ∈
/// {32, 64, 128, 256}, α ∈ {0.01, 0.1, 1, 10}, lr = 0.001).
#[derive(Debug, Clone, PartialEq)]
pub struct RankLstmConfig {
    /// LSTM hidden units.
    pub hidden: usize,
    /// Input sequence length in days.
    pub seq_len: usize,
    /// Ranking-loss weight α.
    pub alpha: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// Training epochs over the training days.
    pub epochs: usize,
    /// Parameter-init / shuffling seed.
    pub seed: u64,
    /// Panel feature rows fed per day (default: the four moving averages).
    pub feature_rows: Vec<usize>,
}

impl Default for RankLstmConfig {
    fn default() -> Self {
        RankLstmConfig {
            hidden: 32,
            seq_len: 8,
            alpha: 1.0,
            lr: 0.001,
            epochs: 3,
            seed: 0,
            feature_rows: vec![0, 1, 2, 3],
        }
    }
}

/// Per-epoch training diagnostics.
#[derive(Debug, Clone)]
pub struct TrainLog {
    /// Mean per-day training loss for each epoch.
    pub epoch_losses: Vec<f64>,
}

/// The trained (or in-training) model.
pub struct RankLstm {
    /// All parameters.
    pub store: ParamStore,
    /// Sequential encoder.
    pub lstm: Lstm,
    /// Output head `hidden → 1`.
    pub head: Dense,
    cfg: RankLstmConfig,
}

impl RankLstm {
    /// Fresh model with Xavier-initialized parameters.
    pub fn new(cfg: RankLstmConfig) -> RankLstm {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(
            &mut store,
            &mut rng,
            LstmDims {
                input: cfg.feature_rows.len(),
                hidden: cfg.hidden,
            },
        );
        let head = Dense::new(&mut store, &mut rng, cfg.hidden, 1);
        RankLstm {
            store,
            lstm,
            head,
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &RankLstmConfig {
        &self.cfg
    }

    /// Builds the input sequence for (`stock`, label `day`): the selected
    /// feature rows over days `[day-seq_len, day-1]`, oldest first.
    pub fn sequence(&self, dataset: &Dataset, stock: usize, day: usize) -> Vec<Vec<f64>> {
        let panel = dataset.panel();
        (day - self.cfg.seq_len..day)
            .map(|t| {
                self.cfg
                    .feature_rows
                    .iter()
                    .map(|&r| panel.feature(stock, r)[t])
                    .collect()
            })
            .collect()
    }

    /// Forward pass for one stock-day; returns (prediction, cache).
    fn forward_one(&self, dataset: &Dataset, stock: usize, day: usize) -> (f64, LstmCache) {
        let xs = self.sequence(dataset, stock, day);
        let mut cache = LstmCache::default();
        self.lstm.forward(&self.store, &xs, &mut cache);
        let mut y = [0.0];
        self.head.forward(&self.store, &cache.h_final, &mut y);
        (y[0], cache)
    }

    /// Trains on the dataset's training days (one mini-batch per day).
    pub fn train(&mut self, dataset: &Dataset) -> TrainLog {
        let k = dataset.n_stocks();
        let mut adam = Adam::new(self.store.n_params(), self.cfg.lr);
        let mut epoch_losses = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            let mut total = 0.0;
            let mut days = 0usize;
            for day in dataset.train_days() {
                let mut preds = vec![0.0; k];
                let mut caches = Vec::with_capacity(k);
                for (stock, pred) in preds.iter_mut().enumerate() {
                    let (p, cache) = self.forward_one(dataset, stock, day);
                    *pred = p;
                    caches.push(cache);
                }
                let labels = dataset.labels_at(day);
                let out = rank_mse_loss(&preds, &labels, self.cfg.alpha);
                total += out.loss;
                days += 1;
                self.store.zero_grads();
                for (cache, grad) in caches.iter().zip(&out.grad) {
                    let mut dh = vec![0.0; self.cfg.hidden];
                    self.head
                        .backward(&mut self.store, &cache.h_final, &[*grad], &mut dh);
                    self.lstm.backward(&mut self.store, cache, &dh);
                }
                adam.step(&mut self.store);
            }
            epoch_losses.push(if days > 0 { total / days as f64 } else { 0.0 });
        }
        TrainLog { epoch_losses }
    }

    /// Predictions for every stock on one day.
    pub fn predict_day(&self, dataset: &Dataset, day: usize) -> Vec<f64> {
        (0..dataset.n_stocks())
            .map(|s| self.forward_one(dataset, s, day).0)
            .collect()
    }

    /// Prediction cross-sections over a day range, as a flat day-major
    /// panel scored by the same backtest code path as every other method.
    pub fn predictions(&self, dataset: &Dataset, days: std::ops::Range<usize>) -> CrossSections {
        crate::prediction_panel(days, dataset.n_stocks(), |day, out| {
            for (stock, pred) in out.iter_mut().enumerate() {
                *pred = self.forward_one(dataset, stock, day).0;
            }
        })
    }

    /// The LSTM embeddings (final hidden states) for every stock on one
    /// day — the "sequential embeddings" RSR builds on.
    pub fn embeddings_day(&self, dataset: &Dataset, day: usize) -> Vec<Vec<f64>> {
        (0..dataset.n_stocks())
            .map(|s| self.forward_one(dataset, s, day).1.h_final)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphaevolve_market::{features::FeatureSet, generator::MarketConfig, SplitSpec};

    fn tiny_dataset(seed: u64) -> Dataset {
        let md = MarketConfig {
            n_stocks: 8,
            n_days: 110,
            seed,
            ..Default::default()
        }
        .generate();
        Dataset::build(&md, &FeatureSet::paper(), SplitSpec::paper_ratios()).unwrap()
    }

    fn tiny_config() -> RankLstmConfig {
        RankLstmConfig {
            hidden: 8,
            seq_len: 4,
            epochs: 3,
            seed: 1,
            ..Default::default()
        }
    }

    #[test]
    fn training_reduces_loss() {
        let ds = tiny_dataset(41);
        let mut model = RankLstm::new(tiny_config());
        let log = model.train(&ds);
        assert_eq!(log.epoch_losses.len(), 3);
        assert!(
            log.epoch_losses[2] < log.epoch_losses[0],
            "loss should fall: {:?}",
            log.epoch_losses
        );
        assert!(log.epoch_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn predictions_are_finite_and_vary() {
        let ds = tiny_dataset(42);
        let mut model = RankLstm::new(tiny_config());
        model.train(&ds);
        let preds = model.predictions(&ds, ds.valid_days());
        assert_eq!(preds.n_days(), ds.valid_days().len());
        assert_eq!(preds.n_stocks(), ds.n_stocks());
        assert!(preds.as_slice().iter().all(|x| x.is_finite()));
        let first = preds.row(0);
        assert!(
            first.iter().any(|&x| (x - first[0]).abs() > 1e-12),
            "predictions must differ"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = tiny_dataset(43);
        let mut a = RankLstm::new(tiny_config());
        let mut b = RankLstm::new(tiny_config());
        a.train(&ds);
        b.train(&ds);
        let day = ds.valid_days().start;
        assert_eq!(a.predict_day(&ds, day), b.predict_day(&ds, day));
    }

    #[test]
    fn different_seeds_differ() {
        let ds = tiny_dataset(44);
        let mut a = RankLstm::new(tiny_config());
        let mut b = RankLstm::new(RankLstmConfig {
            seed: 9,
            ..tiny_config()
        });
        a.train(&ds);
        b.train(&ds);
        let day = ds.valid_days().start;
        assert_ne!(a.predict_day(&ds, day), b.predict_day(&ds, day));
    }

    #[test]
    fn sequence_shape_and_content() {
        let ds = tiny_dataset(45);
        let model = RankLstm::new(tiny_config());
        let day = ds.train_days().start;
        let xs = model.sequence(&ds, 0, day);
        assert_eq!(xs.len(), 4);
        assert_eq!(xs[0].len(), 4);
        // Newest step is the MA features at day-1.
        let panel = ds.panel();
        assert_eq!(xs[3][0], panel.feature(0, 0)[day - 1]);
        assert_eq!(xs[0][3], panel.feature(0, 3)[day - 4]);
    }

    #[test]
    fn embeddings_have_hidden_width() {
        let ds = tiny_dataset(46);
        let model = RankLstm::new(tiny_config());
        let embs = model.embeddings_day(&ds, ds.valid_days().start);
        assert_eq!(embs.len(), ds.n_stocks());
        assert!(embs.iter().all(|e| e.len() == 8));
    }
}
