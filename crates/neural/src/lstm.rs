//! Single-layer LSTM with manual backpropagation through time.
//!
//! Gate layout follows the classic formulation: with `u = [x_t ; h_{t-1}]`,
//!
//! ```text
//! z = W u + b          (z split into 4 chunks of H)
//! i = σ(z_i)   f = σ(z_f)   g = tanh(z_g)   o = σ(z_o)
//! c_t = f ⊙ c_{t-1} + i ⊙ g
//! h_t = o ⊙ tanh(c_t)
//! ```
//!
//! Only the final hidden state is consumed by the models (it is the stock's
//! "sequential embedding" in Feng et al.), so [`Lstm::backward`] takes the
//! gradient w.r.t. the final `h` and runs full BPTT down the sequence.

use rand::rngs::SmallRng;

use crate::tensor::{matvec, matvec_t_acc, outer_acc, sigmoid, ParamId, ParamStore};

/// LSTM layer dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LstmDims {
    /// Input width per step.
    pub input: usize,
    /// Hidden width.
    pub hidden: usize,
}

/// The LSTM layer (parameters only; activations live in [`LstmCache`]).
#[derive(Debug, Clone, Copy)]
pub struct Lstm {
    /// Dimensions.
    pub dims: LstmDims,
    /// Gate weights: `4H × (I+H)`, row-major, gate order `[i, f, g, o]`.
    pub w: ParamId,
    /// Gate biases: `4H`. The forget-gate block is initialized to 1.
    pub b: ParamId,
}

/// Per-step activations saved for BPTT.
#[derive(Debug, Clone, Default)]
struct StepCache {
    u: Vec<f64>, // [x ; h_prev]
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    c: Vec<f64>,
    tanh_c: Vec<f64>,
}

/// Forward activations of one sequence.
#[derive(Debug, Clone, Default)]
pub struct LstmCache {
    steps: Vec<StepCache>,
    hidden: usize,
    input: usize,
    /// Final hidden state (the embedding).
    pub h_final: Vec<f64>,
}

impl Lstm {
    /// Allocates a Xavier-initialized LSTM with forget-gate bias 1.
    pub fn new(store: &mut ParamStore, rng: &mut SmallRng, dims: LstmDims) -> Lstm {
        let (i, h) = (dims.input, dims.hidden);
        let w = store.alloc_xavier(4 * h * (i + h), i + h, h, rng);
        let b = store.alloc(4 * h);
        // Forget-gate bias at 1.0 — the standard trick to let gradients flow
        // early in training.
        for x in &mut store.value_mut(b)[h..2 * h] {
            *x = 1.0;
        }
        Lstm { dims, w, b }
    }

    /// Runs the sequence forward; `xs[t]` is the step-`t` input. Returns
    /// the final hidden state via `cache.h_final`.
    pub fn forward(&self, store: &ParamStore, xs: &[Vec<f64>], cache: &mut LstmCache) {
        let h = self.dims.hidden;
        let iw = self.dims.input;
        cache.steps.clear();
        cache.hidden = h;
        cache.input = iw;
        let mut h_prev = vec![0.0; h];
        let mut c_prev = vec![0.0; h];
        let wv = store.value(self.w);
        let bv = store.value(self.b);
        let mut z = vec![0.0; 4 * h];
        for x in xs {
            debug_assert_eq!(x.len(), iw);
            let mut step = StepCache {
                u: Vec::with_capacity(iw + h),
                c_prev: c_prev.clone(),
                i: vec![0.0; h],
                f: vec![0.0; h],
                g: vec![0.0; h],
                o: vec![0.0; h],
                c: vec![0.0; h],
                tanh_c: vec![0.0; h],
            };
            step.u.extend_from_slice(x);
            step.u.extend_from_slice(&h_prev);
            matvec(wv, &step.u, &mut z, 4 * h, iw + h);
            for k in 0..h {
                step.i[k] = sigmoid(z[k] + bv[k]);
                step.f[k] = sigmoid(z[h + k] + bv[h + k]);
                step.g[k] = (z[2 * h + k] + bv[2 * h + k]).tanh();
                step.o[k] = sigmoid(z[3 * h + k] + bv[3 * h + k]);
                step.c[k] = step.f[k] * c_prev[k] + step.i[k] * step.g[k];
                step.tanh_c[k] = step.c[k].tanh();
                h_prev[k] = step.o[k] * step.tanh_c[k];
            }
            c_prev.copy_from_slice(&step.c);
            cache.steps.push(step);
        }
        cache.h_final = h_prev;
    }

    /// BPTT from the gradient w.r.t. the final hidden state. Accumulates
    /// parameter gradients into the store.
    pub fn backward(&self, store: &mut ParamStore, cache: &LstmCache, dh_final: &[f64]) {
        let h = self.dims.hidden;
        let iw = self.dims.input;
        let cols = iw + h;
        let mut dh = dh_final.to_vec();
        let mut dc = vec![0.0; h];
        let mut dz = vec![0.0; 4 * h];
        for step in cache.steps.iter().rev() {
            for k in 0..h {
                // h = o * tanh(c)
                let do_ = dh[k] * step.tanh_c[k];
                let dct = dh[k] * step.o[k] * (1.0 - step.tanh_c[k] * step.tanh_c[k]) + dc[k];
                let di = dct * step.g[k];
                let df = dct * step.c_prev[k];
                let dg = dct * step.i[k];
                dz[k] = di * step.i[k] * (1.0 - step.i[k]);
                dz[h + k] = df * step.f[k] * (1.0 - step.f[k]);
                dz[2 * h + k] = dg * (1.0 - step.g[k] * step.g[k]);
                dz[3 * h + k] = do_ * step.o[k] * (1.0 - step.o[k]);
                dc[k] = dct * step.f[k];
            }
            outer_acc(store.grad_mut(self.w), &dz, &step.u);
            for (gb, d) in store.grad_mut(self.b).iter_mut().zip(&dz) {
                *gb += d;
            }
            let mut du = vec![0.0; cols];
            matvec_t_acc(store.value(self.w), &dz, &mut du, 4 * h, cols);
            // dh for the previous step comes from the recurrent half of u.
            dh.copy_from_slice(&du[iw..]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn loss_of(store: &ParamStore, lstm: &Lstm, xs: &[Vec<f64>], weights: &[f64]) -> f64 {
        let mut cache = LstmCache::default();
        lstm.forward(store, xs, &mut cache);
        cache.h_final.iter().zip(weights).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn bptt_matches_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(
            &mut store,
            &mut rng,
            LstmDims {
                input: 3,
                hidden: 4,
            },
        );
        let xs: Vec<Vec<f64>> = vec![
            vec![0.1, -0.2, 0.5],
            vec![0.4, 0.0, -0.3],
            vec![-0.1, 0.2, 0.2],
            vec![0.3, -0.4, 0.1],
        ];
        let weights = [1.0, -2.0, 0.5, 1.5];

        let mut cache = LstmCache::default();
        lstm.forward(&store, &xs, &mut cache);
        store.zero_grads();
        lstm.backward(&mut store, &cache, &weights);

        let eps = 1e-6;
        let n = store.n_params();
        for k in (0..n).step_by(7) {
            // sample every 7th parameter to keep the test quick
            let id_all = if k < lstm.w.len() { lstm.w } else { lstm.b };
            let local = if k < lstm.w.len() {
                k
            } else {
                k - lstm.w.len()
            };
            let orig = store.value(id_all)[local];
            store.value_mut(id_all)[local] = orig + eps;
            let up = loss_of(&store, &lstm, &xs, &weights);
            store.value_mut(id_all)[local] = orig - eps;
            let down = loss_of(&store, &lstm, &xs, &weights);
            store.value_mut(id_all)[local] = orig;
            let fd = (up - down) / (2.0 * eps);
            let an = store.grad(id_all)[local];
            assert!(
                (an - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                "param {k}: analytic {an} vs fd {fd}"
            );
        }
    }

    #[test]
    fn forward_is_deterministic_and_bounded() {
        let mut rng = SmallRng::seed_from_u64(12);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(
            &mut store,
            &mut rng,
            LstmDims {
                input: 2,
                hidden: 8,
            },
        );
        let xs = vec![vec![100.0, -100.0]; 10]; // extreme inputs
        let mut c1 = LstmCache::default();
        let mut c2 = LstmCache::default();
        lstm.forward(&store, &xs, &mut c1);
        lstm.forward(&store, &xs, &mut c2);
        assert_eq!(c1.h_final, c2.h_final);
        // h = o * tanh(c): |h| <= 1 per element after one step is not
        // guaranteed in general, but o and tanh keep it within (-1, 1).
        assert!(c1.h_final.iter().all(|x| x.abs() <= 1.0));
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(
            &mut store,
            &mut rng,
            LstmDims {
                input: 2,
                hidden: 3,
            },
        );
        let b = store.value(lstm.b);
        assert_eq!(&b[3..6], &[1.0, 1.0, 1.0]);
        assert_eq!(&b[0..3], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn longer_history_changes_embedding() {
        let mut rng = SmallRng::seed_from_u64(14);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(
            &mut store,
            &mut rng,
            LstmDims {
                input: 1,
                hidden: 4,
            },
        );
        let short = vec![vec![0.5]; 2];
        let long = vec![vec![0.5]; 9];
        let mut a = LstmCache::default();
        let mut b = LstmCache::default();
        lstm.forward(&store, &short, &mut a);
        lstm.forward(&store, &long, &mut b);
        assert_ne!(a.h_final, b.h_final, "the LSTM must integrate over time");
    }
}
