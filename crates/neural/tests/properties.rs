//! Property-based tests of the neural substrate: gradient correctness on
//! random shapes/seeds and structural invariants.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use alphaevolve_neural::dense::Dense;
use alphaevolve_neural::graph::{RelationLevel, StockGraph};
use alphaevolve_neural::loss::rank_mse_loss;
use alphaevolve_neural::lstm::{Lstm, LstmCache, LstmDims};
use alphaevolve_neural::tensor::ParamStore;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// LSTM BPTT matches finite differences for random dims/seeds — a
    /// sampled parameter per case keeps it fast.
    #[test]
    fn lstm_gradient_correct_for_random_shapes(
        seed in any::<u64>(),
        input in 1usize..4,
        hidden in 1usize..5,
        steps in 1usize..5,
        param_pick in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, &mut rng, LstmDims { input, hidden });
        let xs: Vec<Vec<f64>> = (0..steps)
            .map(|t| (0..input).map(|i| ((t * 7 + i) as f64 * 0.37).sin() * 0.5).collect())
            .collect();
        let weights: Vec<f64> = (0..hidden).map(|i| 1.0 + i as f64 * 0.5).collect();
        let loss = |store: &ParamStore| -> f64 {
            let mut cache = LstmCache::default();
            lstm.forward(store, &xs, &mut cache);
            cache.h_final.iter().zip(&weights).map(|(a, b)| a * b).sum()
        };
        let mut cache = LstmCache::default();
        lstm.forward(&store, &xs, &mut cache);
        store.zero_grads();
        lstm.backward(&mut store, &cache, &weights);

        let k = (param_pick % store.n_params() as u64) as usize;
        let (id, local) = if k < lstm.w.len() { (lstm.w, k) } else { (lstm.b, k - lstm.w.len()) };
        let eps = 1e-6;
        let orig = store.value(id)[local];
        store.value_mut(id)[local] = orig + eps;
        let up = loss(&store);
        store.value_mut(id)[local] = orig - eps;
        let down = loss(&store);
        store.value_mut(id)[local] = orig;
        let fd = (up - down) / (2.0 * eps);
        let an = store.grad(id)[local];
        prop_assert!((an - fd).abs() < 1e-5 * (1.0 + fd.abs()), "param {}: {} vs {}", k, an, fd);
    }

    /// Dense backward matches finite differences on a random input entry.
    #[test]
    fn dense_input_gradient_correct(
        seed in any::<u64>(),
        in_dim in 1usize..6,
        out_dim in 1usize..5,
        pick in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let layer = Dense::new(&mut store, &mut rng, in_dim, out_dim);
        let x: Vec<f64> = (0..in_dim).map(|i| (i as f64 * 0.61).cos()).collect();
        let dy: Vec<f64> = (0..out_dim).map(|i| 1.0 - i as f64 * 0.3).collect();
        store.zero_grads();
        let mut dx = vec![0.0; in_dim];
        layer.backward(&mut store, &x, &dy, &mut dx);

        let loss = |x: &[f64]| -> f64 {
            let mut y = vec![0.0; out_dim];
            layer.forward(&store, x, &mut y);
            y.iter().zip(&dy).map(|(a, b)| a * b).sum()
        };
        let k = (pick % in_dim as u64) as usize;
        let eps = 1e-6;
        let mut xp = x.clone();
        xp[k] += eps;
        let up = loss(&xp);
        xp[k] -= 2.0 * eps;
        let down = loss(&xp);
        let fd = (up - down) / (2.0 * eps);
        prop_assert!((dx[k] - fd).abs() < 1e-6, "dx[{}]: {} vs {}", k, dx[k], fd);
    }
}

proptest! {
    /// The combined loss gradient matches finite differences for arbitrary
    /// cross-sections and alpha weights.
    #[test]
    fn loss_gradient_correct(
        preds in prop::collection::vec(-0.5f64..0.5, 2..8),
        alpha in 0.0f64..5.0,
        pick in any::<u64>(),
    ) {
        let labels: Vec<f64> = preds.iter().map(|p| p * 0.3 - 0.01).collect();
        let out = rank_mse_loss(&preds, &labels, alpha);
        let i = (pick % preds.len() as u64) as usize;
        let eps = 1e-7;
        let mut p = preds.clone();
        p[i] += eps;
        let up = rank_mse_loss(&p, &labels, alpha).loss;
        p[i] -= 2.0 * eps;
        let down = rank_mse_loss(&p, &labels, alpha).loss;
        let fd = (up - down) / (2.0 * eps);
        prop_assert!((out.grad[i] - fd).abs() < 1e-4 * (1.0 + fd.abs()), "{} vs {}", out.grad[i], fd);
    }

    /// Loss is non-negative and zero exactly at perfect predictions.
    #[test]
    fn loss_nonnegative(preds in prop::collection::vec(-0.5f64..0.5, 2..10), alpha in 0.0f64..5.0) {
        let labels: Vec<f64> = preds.iter().rev().copied().collect();
        prop_assert!(rank_mse_loss(&preds, &labels, alpha).loss >= 0.0);
        prop_assert!(rank_mse_loss(&preds, &preds, alpha).loss < 1e-18);
    }

    /// Graph aggregation: adjoint identity holds for arbitrary universes.
    #[test]
    fn graph_aggregate_adjoint(n in 2usize..20, sectors in 1usize..4, dim in 1usize..5, seed in any::<u64>()) {
        use alphaevolve_market::Universe;
        let u = Universe::synthetic(n, sectors, 2);
        let g = StockGraph::from_universe(&u, RelationLevel::Sector);
        let mut rng = SmallRng::seed_from_u64(seed);
        use rand::Rng;
        let emb: Vec<f64> = (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let d: Vec<f64> = (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut fwd = vec![0.0; n * dim];
        g.aggregate(&emb, dim, &mut fwd);
        let lhs: f64 = fwd.iter().zip(&d).map(|(a, b)| a * b).sum();
        let mut bwd = vec![0.0; n * dim];
        g.aggregate_backward(&d, dim, &mut bwd);
        let rhs: f64 = bwd.iter().zip(&emb).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }
}
