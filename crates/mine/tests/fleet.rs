//! The fleet determinism contract, end to end:
//!
//! 1. a **1-island fleet** with migration disabled reproduces the classic
//!    single-process fixed-seed run bitwise (same pins as
//!    `tests/determinism.rs`);
//! 2. a **fixed fleet seed and island count** reproduce the final shared
//!    archive byte-identically across runs — and across thread, loopback,
//!    and Unix-domain-socket transports;
//! 3. an **interrupted fleet** resumed from its checkpoint directory
//!    reproduces the uninterrupted run bit for bit;
//!
//! plus the fleet's trust boundary (hostile elites die at the verifier,
//! counted) and wire discipline (typed protocol errors on both sides,
//! metrics scrapeable through the standard kind-9/10 pair).

use std::sync::Arc;
use std::time::Duration;

use alphaevolve_core::{
    fingerprint, init, AlphaConfig, Budget, EvalOptions, Evaluator, Evolution, EvolutionConfig,
};
use alphaevolve_market::{features::FeatureSet, generator::MarketConfig, Dataset, SplitSpec};
use alphaevolve_mine::{island_seed, Coordinator, Fleet, FleetClient, FleetConfig, MigrationLink};
use alphaevolve_store::fleetwire::EliteSubmit;
use alphaevolve_store::transport::loopback;
use alphaevolve_store::{ServiceErrorCode, StoreError};

/// The pinned-run dataset: identical to `tests/determinism.rs`'s
/// `fixed_seed_run_reproduces_prerefactor_best_alpha`.
fn pinned_evaluator() -> Arc<Evaluator> {
    let market = MarketConfig {
        n_stocks: 16,
        n_days: 140,
        seed: 21,
        ..Default::default()
    }
    .generate();
    let ds =
        Arc::new(Dataset::build(&market, &FeatureSet::paper(), SplitSpec::paper_ratios()).unwrap());
    Arc::new(Evaluator::new(
        AlphaConfig::default(),
        EvalOptions::default(),
        ds,
    ))
}

fn fleet_config(islands: usize, rounds: u64, round_searches: usize) -> FleetConfig {
    FleetConfig {
        islands,
        fleet_seed: 7,
        rounds,
        round_searches,
        migrant_fraction: 0.25,
        elites_per_round: 3,
        econfig: EvolutionConfig {
            population_size: 20,
            tournament_size: 5,
            budget: Budget::Searched(0), // overwritten per round
            seed: 0,                     // overwritten per island
            workers: 1,
            ..Default::default()
        },
        archive_capacity: 8,
        feature_set_id: 11,
        round_deadline: Duration::from_secs(60),
        stop_after: None,
        checkpoint_dir: None,
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("aevs_fleet_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Contract 1: a 1-island fleet with `migrant_fraction = 0` is the
/// classic single-process run chopped into budget chunks — same best
/// alpha, same counters, bit for bit. Rounds 4 × 70 searches on top of
/// the 20-candidate initial population = the pinned 300-search budget.
#[test]
fn one_island_fleet_reproduces_the_classic_pinned_run() {
    let ev = pinned_evaluator();

    let classic = Evolution::new(
        &ev,
        EvolutionConfig {
            population_size: 20,
            tournament_size: 5,
            budget: Budget::Searched(300),
            seed: 7,
            workers: 1,
            ..Default::default()
        },
    )
    .run(&init::domain_expert(ev.config()));
    let classic_best = classic.best.expect("the pinned run finds an alpha");

    let mut config = fleet_config(1, 4, 70);
    config.migrant_fraction = 0.0;
    assert_eq!(
        island_seed(config.fleet_seed, 0),
        7,
        "island 0 is the fleet seed"
    );
    let fleet = Fleet::new(Arc::clone(&ev), config);
    let outcome = fleet.run(&init::domain_expert(ev.config())).unwrap();
    let best = outcome.outcomes[0]
        .best
        .as_ref()
        .expect("fleet finds the same alpha");

    assert_eq!(
        outcome.outcomes[0].stats, classic.stats,
        "search counters diverged"
    );
    assert_eq!(best.program, classic_best.program);
    assert_eq!(best.ic.to_bits(), classic_best.ic.to_bits());
    let (fp, _) = fingerprint(&best.program, ev.config());
    let (classic_fp, _) = fingerprint(&classic_best.program, ev.config());
    assert_eq!(fp, classic_fp);

    // The absolute pins, where the platform reproduces libm bit patterns
    // (the same gate `tests/determinism.rs` uses).
    if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
        assert_eq!(
            fp, 0x60f0a96b0af11c64,
            "fingerprint diverged from the pinned run"
        );
        assert_eq!(
            best.ic, 0.21213852898918362,
            "best IC diverged from the pinned run"
        );
        assert_eq!(outcome.outcomes[0].stats.evaluated, 70);
        assert_eq!(outcome.outcomes[0].stats.static_rejected, 1);
    }

    // And the round structure did run: one island, four rounds.
    assert_eq!(outcome.metrics.counter_value("mine_rounds_total", &[]), 4);
}

/// Contract 2a: a fixed fleet seed and island count reproduce the final
/// archive — and every island's outcome — byte-identically across runs.
#[test]
fn fixed_fleet_seed_and_island_count_reproduce_the_archive() {
    let ev = pinned_evaluator();
    let seed = init::domain_expert(ev.config());
    let run = || {
        Fleet::new(Arc::clone(&ev), fleet_config(3, 2, 30))
            .run(&seed)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert!(!a.archive.entries().is_empty(), "the fleet mined something");
    assert_eq!(
        a.archive.to_bytes(),
        b.archive.to_bytes(),
        "archive bytes diverged"
    );
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.stats, y.stats);
        assert_eq!(
            x.best.as_ref().map(|b| (b.program.clone(), b.ic.to_bits())),
            y.best.as_ref().map(|b| (b.program.clone(), b.ic.to_bits()))
        );
    }
}

/// Contract 2b: the archive is transport-independent — thread islands
/// (`LocalLink`), wire islands over loopback pipes, and wire islands
/// over a Unix domain socket land on byte-identical archives, because
/// the coordinator's barrier (not the transport) orders admissions.
#[test]
fn thread_loopback_and_uds_links_produce_identical_archives() {
    let ev = pinned_evaluator();
    let seed = init::domain_expert(ev.config());
    let config = fleet_config(2, 2, 30);

    // Thread islands.
    let fleet = Fleet::new(Arc::clone(&ev), config.clone());
    let threads = fleet.run(&seed).unwrap();

    // Loopback-pipe islands: one served connection per island.
    let fleet = Fleet::new(Arc::clone(&ev), config.clone());
    let coordinator = fleet.coordinator();
    let links: Vec<Box<dyn MigrationLink + Send>> = (0..2)
        .map(|_| {
            let (client_end, mut server_end) = loopback();
            let served = Arc::clone(&coordinator);
            std::thread::spawn(move || {
                let _ = alphaevolve_mine::serve_fleet_connection(&served, &mut server_end);
            });
            Box::new(FleetClient::new(client_end)) as _
        })
        .collect();
    let pipes = fleet.run_with_links(&seed, &coordinator, links).unwrap();

    // Unix-domain-socket islands: a served listener, one connection each.
    let dir = temp_dir("uds");
    let sock = dir.join("fleet.sock");
    let fleet = Fleet::new(Arc::clone(&ev), config);
    let coordinator = fleet.coordinator();
    let listener = std::os::unix::net::UnixListener::bind(&sock).unwrap();
    let served = Arc::clone(&coordinator);
    std::thread::spawn(move || {
        let _ = alphaevolve_mine::serve_fleet_uds(listener, served);
    });
    let links: Vec<Box<dyn MigrationLink + Send>> = (0..2)
        .map(|_| Box::new(FleetClient::connect(&sock).unwrap()) as _)
        .collect();
    let uds = fleet.run_with_links(&seed, &coordinator, links).unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    assert!(!threads.archive.entries().is_empty());
    assert_eq!(
        threads.archive.to_bytes(),
        pipes.archive.to_bytes(),
        "loopback diverged"
    );
    assert_eq!(
        threads.archive.to_bytes(),
        uds.archive.to_bytes(),
        "UDS diverged"
    );
}

/// Contract 3: interrupt a fleet after its first round (`stop_after`),
/// resume it from the checkpoint directory, and land on the same archive
/// and outcomes as the run that never stopped — bit for bit.
#[test]
fn interrupted_fleet_resumes_bit_for_bit() {
    let ev = pinned_evaluator();
    let seed = init::domain_expert(ev.config());

    let mut reference = fleet_config(2, 3, 30);
    reference.checkpoint_dir = Some(temp_dir("ref"));
    let uninterrupted = Fleet::new(Arc::clone(&ev), reference.clone())
        .run(&seed)
        .unwrap();

    let mut interrupted = fleet_config(2, 3, 30);
    interrupted.checkpoint_dir = Some(temp_dir("resume"));
    interrupted.stop_after = Some(1);
    let partial = Fleet::new(Arc::clone(&ev), interrupted.clone())
        .run(&seed)
        .unwrap();
    assert_eq!(
        partial.metrics.counter_value("mine_rounds_total", &[]),
        1,
        "the interrupted fleet stopped after one round"
    );

    interrupted.stop_after = None;
    let resumed = Fleet::new(Arc::clone(&ev), interrupted.clone())
        .resume()
        .unwrap();

    assert_eq!(
        uninterrupted.archive.to_bytes(),
        resumed.archive.to_bytes(),
        "resumed archive diverged from the uninterrupted run"
    );
    for (x, y) in uninterrupted.outcomes.iter().zip(&resumed.outcomes) {
        assert_eq!(x.stats, y.stats, "resumed search counters diverged");
        assert_eq!(
            x.best.as_ref().map(|b| (b.program.clone(), b.ic.to_bits())),
            y.best.as_ref().map(|b| (b.program.clone(), b.ic.to_bits())),
            "resumed best alpha diverged"
        );
    }

    for cfg in [&reference, &interrupted] {
        let _ = std::fs::remove_dir_all(cfg.checkpoint_dir.as_ref().unwrap());
    }
}

/// A coordinator alone, for protocol-discipline tests: 1 island, so a
/// single submission completes a round synchronously.
fn lone_coordinator(ev: &Arc<Evaluator>) -> Arc<Coordinator> {
    Fleet::new(Arc::clone(ev), fleet_config(1, 1, 10)).coordinator()
}

fn submit(round: u64, programs: Vec<alphaevolve_core::AlphaProgram>) -> EliteSubmit {
    EliteSubmit {
        island: 0,
        round,
        searched: 10,
        elapsed_ns: 1_000_000,
        programs,
    }
}

/// Refused requests are typed `Protocol` errors: wrong round, unknown
/// island, double submission.
#[test]
fn wrong_round_and_unknown_island_are_typed_protocol_errors() {
    let ev = pinned_evaluator();
    let coordinator = lone_coordinator(&ev);

    let err = coordinator.handle_submit(submit(5, vec![]));
    assert!(matches!(
        err,
        Err(StoreError::Service {
            code: ServiceErrorCode::Protocol,
            ..
        })
    ));

    let mut wrong_island = submit(0, vec![]);
    wrong_island.island = 9;
    assert!(matches!(
        coordinator.handle_submit(wrong_island),
        Err(StoreError::Service {
            code: ServiceErrorCode::Protocol,
            ..
        })
    ));
    assert!(matches!(
        coordinator.handle_fetch(9, 0),
        Err(StoreError::Service {
            code: ServiceErrorCode::Protocol,
            ..
        })
    ));
    assert!(matches!(
        coordinator.handle_sync(9),
        Err(StoreError::Service {
            code: ServiceErrorCode::Protocol,
            ..
        })
    ));

    // A completed round cannot be submitted again.
    coordinator
        .handle_submit(submit(0, vec![init::domain_expert(ev.config())]))
        .unwrap();
    assert!(matches!(
        coordinator.handle_submit(submit(0, vec![])),
        Err(StoreError::Service {
            code: ServiceErrorCode::Protocol,
            ..
        })
    ));
}

/// The trust boundary (the five hostile shapes of
/// `crates/store/tests/corruption.rs`, arriving through the front door):
/// every submitted elite runs the `ProgramVerifier` before it can touch
/// the gate, rejections are counted, and the archive stays clean.
#[test]
fn hostile_elites_die_at_the_verifier_and_are_counted() {
    use alphaevolve_core::{Instruction, Op};

    let cfg = AlphaConfig::default();
    let poison = |patch: &dyn Fn(&mut Instruction)| {
        let mut prog = init::domain_expert(&cfg);
        patch(&mut prog.predict[0]);
        prog
    };
    let hostile = vec![
        poison(&|i| {
            i.op = Op::SAbs;
            i.in1 = 200; // out-of-range input register
        }),
        poison(&|i| {
            i.op = Op::SAbs;
            i.out = 0xFF; // out-of-range output register
        }),
        poison(&|i| {
            i.op = Op::SConst;
            i.lit[0] = f64::NAN; // non-finite literal
        }),
        {
            let mut prog = init::domain_expert(&cfg);
            let mut i = Instruction::nop();
            i.op = Op::RelRank;
            prog.setup.push(i); // relation op in setup
            prog
        },
        {
            let mut prog = init::domain_expert(&cfg);
            let mut i = Instruction::nop();
            i.op = Op::SAbs;
            i.in1 = 1;
            i.out = 1;
            prog.update = vec![i; 300]; // body beyond any config's cap
            prog
        },
    ];
    let n_hostile = hostile.len() as u64;

    let ev = pinned_evaluator();
    let coordinator = lone_coordinator(&ev);
    let mut programs = hostile;
    programs.push(init::domain_expert(ev.config())); // one honest elite
    let ack = coordinator.handle_submit(submit(0, programs)).unwrap();

    assert_eq!(
        ack.rejected_invalid, n_hostile,
        "every hostile shape was rejected"
    );
    assert_eq!(
        ack.admitted + ack.rejected_gate,
        1,
        "the honest elite reached the gate"
    );
    let metrics = coordinator.metrics().island(0);
    assert_eq!(metrics.rejected_invalid.get(), n_hostile);
    assert_eq!(metrics.submitted.get(), n_hostile + 1);

    // Nothing hostile reached the archive.
    let archive =
        alphaevolve_store::archive::AlphaArchive::from_bytes(&coordinator.archive_bytes()).unwrap();
    assert!(archive.len() <= 1);
    for entry in archive.entries() {
        assert_eq!(&entry.program, &init::domain_expert(ev.config()));
    }
}

/// Wrong-kind-where-X-expected over a live connection, both directions:
/// a client answered with the wrong response kind surfaces a typed
/// `Protocol` error; a server handed a response frame answers typed and
/// closes; a refused-but-well-framed request leaves the connection open.
#[test]
fn wire_wrong_kind_is_a_typed_protocol_error_on_both_sides() {
    use alphaevolve_store::fleetwire::{encode_migrant_set, MigrantSet};
    use alphaevolve_store::wire::{decode_error, frame_payload, read_message, write_message};

    // Client side: rogue server answers a submit with a MigrantSet.
    let (client_end, mut rogue_end) = loopback();
    let mut client = FleetClient::new(client_end);
    let rogue = std::thread::spawn(move || {
        let mut buf = Vec::new();
        read_message(&mut rogue_end, &mut buf).unwrap().unwrap();
        let mut reply = Vec::new();
        encode_migrant_set(
            &MigrantSet {
                round: 0,
                migrants: vec![],
            },
            &mut reply,
        );
        write_message(&mut rogue_end, &reply).unwrap();
    });
    match client.submit(&submit(0, vec![])) {
        Err(StoreError::Service {
            code: ServiceErrorCode::Protocol,
            message,
        }) => {
            assert!(message.contains("kind"), "message: {message}");
        }
        other => panic!("expected a typed protocol error, got {other:?}"),
    }
    rogue.join().unwrap();

    // Server side: a response frame where a request belongs gets a typed
    // error back, then the connection closes.
    let ev = pinned_evaluator();
    let coordinator = lone_coordinator(&ev);
    let (mut fake_client, mut server_end) = loopback();
    let served = Arc::clone(&coordinator);
    let server = std::thread::spawn(move || {
        alphaevolve_mine::serve_fleet_connection(&served, &mut server_end)
    });
    let mut frame = Vec::new();
    encode_migrant_set(
        &MigrantSet {
            round: 0,
            migrants: vec![],
        },
        &mut frame,
    );
    write_message(&mut fake_client, &frame).unwrap();
    let mut buf = Vec::new();
    let kind = read_message(&mut fake_client, &mut buf).unwrap().unwrap();
    assert_eq!(kind, alphaevolve_store::frame::KIND_ERROR_RESPONSE);
    assert!(matches!(
        decode_error(frame_payload(&buf)),
        StoreError::Service {
            code: ServiceErrorCode::Protocol,
            ..
        }
    ));
    assert!(
        server.join().unwrap().is_err(),
        "the coordinator closes a connection that broke the protocol"
    );

    // A refused-but-well-framed request (unknown island) answers typed
    // and keeps the connection serving.
    let (client_end, mut server_end) = loopback();
    let served = Arc::clone(&coordinator);
    std::thread::spawn(move || {
        let _ = alphaevolve_mine::serve_fleet_connection(&served, &mut server_end);
    });
    let mut client = FleetClient::new(client_end);
    assert!(matches!(
        client.fetch(9, 0),
        Err(StoreError::Service {
            code: ServiceErrorCode::Protocol,
            ..
        })
    ));
    let set = client.fetch(0, 0).expect("the connection is still serving");
    assert_eq!(set.round, 0);
}

/// Fleet metrics ride the standard kind-9/10 scrape pair: a wire island
/// can pull `mine_*` counters off the very connection it mines through.
#[test]
fn fleet_metrics_are_scrapeable_over_the_wire() {
    let ev = pinned_evaluator();
    let coordinator = lone_coordinator(&ev);
    let (client_end, mut server_end) = loopback();
    let served = Arc::clone(&coordinator);
    std::thread::spawn(move || {
        let _ = alphaevolve_mine::serve_fleet_connection(&served, &mut server_end);
    });
    let mut client = FleetClient::new(client_end);
    let ack = client
        .submit(&submit(0, vec![init::domain_expert(ev.config())]))
        .unwrap();
    assert_eq!(ack.round, 0);

    let mut snap = alphaevolve_obs::MetricsSnapshot::new();
    client.scrape_metrics(&mut snap).unwrap();
    assert_eq!(snap.counter_value("mine_rounds_total", &[]), 1);
    assert_eq!(snap.counter_value("mine_migrants_submitted_total", &[]), 1);
    assert_eq!(
        snap.counter_value("mine_migrants_submitted_total", &[("island", "0")]),
        1
    );
    assert_eq!(
        snap.counter_value("mine_migrants_admitted_total", &[])
            + snap.counter_value("mine_migrants_rejected_gate_total", &[]),
        1
    );

    // The archive syncs over the same connection.
    let archive = client.sync_archive(0).unwrap();
    assert_eq!(archive.len() as u64, ack.admitted);
}
