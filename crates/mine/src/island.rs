//! The island side of a fleet: the migration link abstraction and the
//! budget-chunked round loop that drives one `Evolution` between
//! barriers.
//!
//! An island never talks to a coordinator directly — it talks through a
//! [`MigrationLink`], which is either a [`LocalLink`] (a method call on
//! an in-process coordinator) or a [`FleetClient`] speaking the AEVS
//! fleet wire kinds over any [`Transport`] (loopback pipes, Unix domain
//! sockets). Because the coordinator's round barrier serializes
//! admissions in island-id order, the two link flavors produce
//! byte-identical archives.
//!
//! ## The round loop, and why it is bitwise-exact
//!
//! A migration round is a budget chunk: round `r` runs the island's
//! `Evolution` to budget `population + (r + 1) × round_searches` with a
//! checkpoint cadence of `round_searches`, so the sink's last checkpoint
//! *is* the round-boundary state — population, RNG, cache, counters,
//! everything. The next round resumes from that checkpoint with only the
//! budget and the migration epoch advanced. Checkpoint/resume is proven
//! bit-for-bit (`tests/checkpoint_resume.rs`), migration epochs with an
//! empty pool or zero fraction draw no RNG (see
//! [`MigrationState`]), and warm-start
//! with no elites inserts nothing — so a 1-island fleet with migration
//! disabled reproduces the classic single-process run bitwise, and an
//! interrupted fleet resumed from its checkpoints reproduces the
//! uninterrupted one.

use std::sync::Arc;

use alphaevolve_core::{
    prune, AlphaProgram, Budget, Evaluator, Evolution, EvolutionCheckpoint, EvolutionConfig,
    EvolutionOutcome, MigrationState,
};
use alphaevolve_obs::MetricsSnapshot;
use alphaevolve_store::archive::AlphaArchive;
use alphaevolve_store::fleetwire::{
    decode_archive_snapshot, decode_elite_ack, decode_migrant_set, encode_fleet_request, EliteAck,
    EliteSubmit, FleetRequest, MigrantSet,
};
use alphaevolve_store::frame::{
    KIND_ARCHIVE_SNAPSHOT_RESPONSE, KIND_ELITE_ACK_RESPONSE, KIND_ERROR_RESPONSE,
    KIND_METRICS_RESPONSE, KIND_MIGRANT_SET_RESPONSE,
};
use alphaevolve_store::wire::{
    decode_error, decode_metrics_response, encode_request, frame_payload, read_message,
    write_message, Request,
};
use alphaevolve_store::{Result, ServiceErrorCode, StoreError, Transport};

use crate::coordinator::Coordinator;

/// An island's channel to its coordinator, transport-agnostic.
pub trait MigrationLink {
    /// Publish a round's elites; blocks until the fleet barrier releases.
    fn submit(&mut self, submit: &EliteSubmit) -> Result<EliteAck>;
    /// The current migrant pool without submitting.
    fn fetch(&mut self, island: u64, round: u64) -> Result<MigrantSet>;
    /// A full snapshot of the shared archive.
    fn sync_archive(&mut self, island: u64) -> Result<AlphaArchive>;
}

/// The in-process link: method calls on a shared coordinator. Thread
/// islands in the same process use this; it is semantically identical
/// to the wire links because the coordinator's barrier, not the
/// transport, defines round processing order.
pub struct LocalLink {
    coordinator: Arc<Coordinator>,
}

impl LocalLink {
    /// A link onto an in-process coordinator.
    pub fn new(coordinator: Arc<Coordinator>) -> LocalLink {
        LocalLink { coordinator }
    }
}

impl MigrationLink for LocalLink {
    fn submit(&mut self, submit: &EliteSubmit) -> Result<EliteAck> {
        self.coordinator.handle_submit(submit.clone())
    }

    fn fetch(&mut self, island: u64, round: u64) -> Result<MigrantSet> {
        self.coordinator.handle_fetch(island, round)
    }

    fn sync_archive(&mut self, island: u64) -> Result<AlphaArchive> {
        AlphaArchive::from_bytes(&self.coordinator.handle_sync(island)?)
    }
}

/// A wire link: the fleet protocol over any [`Transport`]. Typed error
/// responses surface as [`StoreError::Service`]; an unexpected response
/// kind is a typed `Protocol` error (the wrong-kind-where-X-expected
/// contract, both sides of which the corruption battery exercises).
pub struct FleetClient<T: Transport> {
    conn: T,
    send_buf: Vec<u8>,
    recv_buf: Vec<u8>,
}

impl<T: Transport> FleetClient<T> {
    /// Wraps a connected transport.
    pub fn new(conn: T) -> FleetClient<T> {
        FleetClient {
            conn,
            send_buf: Vec::new(),
            recv_buf: Vec::new(),
        }
    }

    fn round_trip(&mut self, req: &FleetRequest) -> Result<u16> {
        encode_fleet_request(req, &mut self.send_buf);
        write_message(&mut self.conn, &self.send_buf)?;
        match read_message(&mut self.conn, &mut self.recv_buf)? {
            Some(kind) => Ok(kind),
            None => Err(StoreError::service(
                ServiceErrorCode::Protocol,
                "coordinator hung up before answering".to_string(),
            )),
        }
    }

    fn expect(&mut self, kind: u16, got: u16, what: &str) -> Result<()> {
        if got == kind {
            return Ok(());
        }
        if got == KIND_ERROR_RESPONSE {
            return Err(decode_error(frame_payload(&self.recv_buf)));
        }
        Err(StoreError::service(
            ServiceErrorCode::Protocol,
            format!("expected {what}, got kind {got}"),
        ))
    }

    /// Scrapes the coordinator's fleet metrics over the kind-9/10 wire
    /// pair and merges the parsed snapshot into `out`.
    pub fn scrape_metrics(&mut self, out: &mut MetricsSnapshot) -> Result<()> {
        encode_request(Request::Metrics, &mut self.send_buf);
        write_message(&mut self.conn, &self.send_buf)?;
        let Some(got) = read_message(&mut self.conn, &mut self.recv_buf)? else {
            return Err(StoreError::service(
                ServiceErrorCode::Protocol,
                "coordinator hung up before answering".to_string(),
            ));
        };
        self.expect(KIND_METRICS_RESPONSE, got, "a metrics response")?;
        let text = decode_metrics_response(frame_payload(&self.recv_buf))?;
        let parsed = MetricsSnapshot::parse(&text).map_err(|e| {
            StoreError::service(
                ServiceErrorCode::Protocol,
                format!("unparseable metrics exposition: {e}"),
            )
        })?;
        out.merge_from(&parsed);
        Ok(())
    }
}

impl FleetClient<std::os::unix::net::UnixStream> {
    /// Connects to a Unix-domain-socket coordinator (see
    /// [`serve_fleet_uds`](crate::coordinator::serve_fleet_uds)).
    pub fn connect(
        path: impl AsRef<std::path::Path>,
    ) -> Result<FleetClient<std::os::unix::net::UnixStream>> {
        Ok(FleetClient::new(std::os::unix::net::UnixStream::connect(
            path,
        )?))
    }
}

impl<T: Transport> MigrationLink for FleetClient<T> {
    fn submit(&mut self, submit: &EliteSubmit) -> Result<EliteAck> {
        let got = self.round_trip(&FleetRequest::EliteSubmit(submit.clone()))?;
        self.expect(KIND_ELITE_ACK_RESPONSE, got, "an elite ack")?;
        decode_elite_ack(frame_payload(&self.recv_buf))
    }

    fn fetch(&mut self, island: u64, round: u64) -> Result<MigrantSet> {
        let got = self.round_trip(&FleetRequest::MigrantFetch { island, round })?;
        self.expect(KIND_MIGRANT_SET_RESPONSE, got, "a migrant set")?;
        decode_migrant_set(frame_payload(&self.recv_buf))
    }

    fn sync_archive(&mut self, island: u64) -> Result<AlphaArchive> {
        let got = self.round_trip(&FleetRequest::ArchiveSync { island })?;
        self.expect(KIND_ARCHIVE_SNAPSHOT_RESPONSE, got, "an archive snapshot")?;
        AlphaArchive::from_bytes(&decode_archive_snapshot(frame_payload(&self.recv_buf))?)
    }
}

/// How one island behaves inside its fleet.
#[derive(Debug, Clone)]
pub struct IslandConfig {
    /// This island's dense id (`0..islands`).
    pub id: u64,
    /// The evolution configuration — seed already derived per island
    /// ([`island_seed`](crate::fleet::island_seed)), workers must be 1
    /// (rounds are checkpoint captures), budget is overwritten per round.
    pub econfig: EvolutionConfig,
    /// Total migration rounds the fleet runs.
    pub rounds: u64,
    /// Candidates searched per round (steady-state; the initial
    /// population additionally counts toward round 0's budget).
    pub round_searches: usize,
    /// Probability that a mutant derives from a migrant instead of a
    /// tournament parent. `0.0` disables migration influence entirely
    /// (no RNG draws — the bitwise 1-island contract relies on this).
    pub migrant_fraction: f64,
    /// Elites published per round: the best alpha plus the top of the
    /// population, pruned and fingerprint-deduplicated.
    pub elites_per_round: usize,
    /// Stop after this many rounds *of this invocation* (checkpointing
    /// the ready-to-resume state first) — the interruption half of the
    /// fleet checkpoint/resume contract. `None` runs to `rounds`.
    pub stop_after: Option<u64>,
    /// When set, the ready-to-resume checkpoint is saved here after
    /// every round.
    pub checkpoint_path: Option<std::path::PathBuf>,
}

/// The pruned, deduplicated elite set of a round-boundary checkpoint:
/// the best alpha first, then the population by fitness (descending,
/// stable — insertion order breaks ties so the set is deterministic).
fn elites_of(cp: &EvolutionCheckpoint, evaluator: &Evaluator, take: usize) -> Vec<AlphaProgram> {
    let mut candidates: Vec<AlphaProgram> = Vec::new();
    if let Some(best) = &cp.best {
        candidates.push(best.pruned.clone());
    }
    let mut ranked: Vec<&alphaevolve_core::Individual> = cp
        .population
        .iter()
        .filter(|i| i.fitness.is_some())
        .collect();
    ranked.sort_by(|a, b| {
        b.fitness
            .unwrap_or(f64::NEG_INFINITY)
            .total_cmp(&a.fitness.unwrap_or(f64::NEG_INFINITY))
    });
    for individual in ranked {
        candidates.push(prune(&individual.program).program);
    }
    let mut seen = std::collections::HashSet::new();
    let mut elites = Vec::new();
    for program in candidates {
        let fp = alphaevolve_core::fingerprint(&program, evaluator.config()).0;
        if seen.insert(fp) {
            elites.push(program);
            if elites.len() == take {
                break;
            }
        }
    }
    elites
}

/// Budget of round `round` (0-based): the initial population plus
/// `round + 1` chunks of steady-state search.
fn round_budget(population: usize, round: u64, round_searches: usize) -> Budget {
    Budget::Searched(population + (round as usize + 1) * round_searches)
}

/// The shared round tail: submit the round's elites, and if more rounds
/// remain, advance the checkpoint's budget and migration epoch (and
/// persist it when configured). Returns `None` when the island is done
/// (all rounds run, or `stop_after` reached).
fn after_round(
    cfg: &IslandConfig,
    evaluator: &Evaluator,
    link: &mut dyn MigrationLink,
    mut cp: EvolutionCheckpoint,
    round: u64,
    ran_including_this: u64,
) -> Result<Option<EvolutionCheckpoint>> {
    let ack = link.submit(&EliteSubmit {
        island: cfg.id,
        round,
        searched: cp.stats.searched as u64,
        elapsed_ns: u64::try_from(cp.elapsed.as_nanos()).unwrap_or(u64::MAX),
        programs: elites_of(&cp, evaluator, cfg.elites_per_round),
    })?;
    if round + 1 >= cfg.rounds {
        return Ok(None);
    }
    cp.config.budget = round_budget(cp.config.population_size, round + 1, cfg.round_searches);
    cp.migration = Some(MigrationState {
        island: cfg.id,
        round: round + 1,
        fraction: cfg.migrant_fraction,
        migrants: ack.migrants,
    });
    if let Some(path) = &cfg.checkpoint_path {
        alphaevolve_store::save_checkpoint(path, &cp)?;
    }
    if cfg.stop_after == Some(ran_including_this) {
        return Ok(None);
    }
    Ok(Some(cp))
}

/// Runs one island from a fresh seed program for `cfg.rounds` rounds
/// (or until `cfg.stop_after`), returning the outcome of the last round
/// run. `warm_start` seeds the initial population (archive elites);
/// `initial_migrants` seeds round 0's migrant pool — both empty for a
/// fresh fleet, both RNG-neutral when empty.
pub fn mine_island(
    evaluator: &Evaluator,
    cfg: &IslandConfig,
    seed_program: &AlphaProgram,
    warm_start: Vec<AlphaProgram>,
    initial_migrants: Vec<AlphaProgram>,
    link: &mut dyn MigrationLink,
) -> Result<EvolutionOutcome> {
    assert!(cfg.rounds > 0, "a fleet needs at least one round");
    assert_eq!(
        cfg.econfig.workers.max(1),
        1,
        "island rounds are checkpoint captures, which require workers = 1"
    );
    let mut econfig = cfg.econfig.clone();
    econfig.budget = round_budget(econfig.population_size, 0, cfg.round_searches);
    let mut slot: Option<EvolutionCheckpoint> = None;
    let outcome = Evolution::new(evaluator, econfig)
        .with_warm_start(warm_start)
        .with_migration(MigrationState {
            island: cfg.id,
            round: 0,
            fraction: cfg.migrant_fraction,
            migrants: initial_migrants,
        })
        .run_with_checkpoints(seed_program, cfg.round_searches, &mut |c| slot = Some(c));
    let cp = slot
        .take()
        .expect("round budget fires the checkpoint cadence");
    match after_round(cfg, evaluator, link, cp, 0, 1)? {
        None => Ok(outcome),
        Some(cp) => resume_rounds(evaluator, cfg, cp, 1, 1, link),
    }
}

/// Resumes one island from a ready-to-resume checkpoint (as saved by
/// [`mine_island`] via `checkpoint_path`): the checkpoint's embedded
/// migration epoch names the round it is about to run.
pub fn resume_island(
    evaluator: &Evaluator,
    cfg: &IslandConfig,
    checkpoint: EvolutionCheckpoint,
    link: &mut dyn MigrationLink,
) -> Result<EvolutionOutcome> {
    let round = checkpoint.migration.as_ref().map_or(0, |m| m.round);
    resume_rounds(evaluator, cfg, checkpoint, round, 0, link)
}

fn resume_rounds(
    evaluator: &Evaluator,
    cfg: &IslandConfig,
    mut cp: EvolutionCheckpoint,
    first_round: u64,
    already_ran: u64,
    link: &mut dyn MigrationLink,
) -> Result<EvolutionOutcome> {
    let mut ran = already_ran;
    let mut round = first_round;
    loop {
        let mut slot: Option<EvolutionCheckpoint> = None;
        let outcome = Evolution::new(evaluator, cp.config.clone()).resume_with_checkpoints(
            &cp,
            cfg.round_searches,
            &mut |c| slot = Some(c),
        );
        let boundary = slot
            .take()
            .expect("round budget fires the checkpoint cadence");
        ran += 1;
        match after_round(cfg, evaluator, link, boundary, round, ran)? {
            None => return Ok(outcome),
            Some(next) => {
                cp = next;
                round += 1;
            }
        }
    }
}
