//! The fleet coordinator: the single admission point of an island fleet.
//!
//! Islands publish elites at the end of each migration round; the
//! coordinator collects one submission per island, then processes the
//! round **in island-id order** — verify, re-evaluate, admit through the
//! archive's correlation gate — and releases every island with the same
//! acknowledgement. That barrier is what makes a fleet transport-agnostic
//! *and* deterministic: whatever order submissions arrive in (thread
//! scheduling, loopback pipes, Unix sockets), the archive mutates in the
//! same order with the same inputs, so a fixed fleet seed and island
//! count reproduce the final archive byte-identically.
//!
//! ## The trust boundary
//!
//! A submitted elite crosses three independent checks before it can
//! touch the shared archive:
//!
//! 1. the wire decode runs the envelope checks of
//!    [`progio`](alphaevolve_store::progio) (instruction counts, operand
//!    indices, literal encodings) — a malformed program never parses;
//! 2. the coordinator runs the config-aware
//!    [`ProgramVerifier`], so a
//!    program that is well-formed in general but invalid under *this*
//!    fleet's configuration is rejected and counted
//!    (`mine_migrants_rejected_invalid_total`);
//! 3. the coordinator **re-evaluates** the program itself — an island's
//!    claimed IC is never trusted — and only the locally measured
//!    evaluation enters the gate.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use alphaevolve_core::{fingerprint, AlphaProgram, Evaluator, ProgramVerifier};
use alphaevolve_obs::MetricsSnapshot;
use alphaevolve_store::archive::{AlphaArchive, ArchivedAlpha};
use alphaevolve_store::fleetwire::{
    decode_fleet_request, encode_archive_snapshot, encode_elite_ack, encode_migrant_set, EliteAck,
    EliteSubmit, FleetRequest, MigrantSet,
};
use alphaevolve_store::frame::KIND_METRICS_REQUEST;
use alphaevolve_store::wire::{
    encode_metrics_response, encode_store_error, frame_payload, read_message, write_message,
};
use alphaevolve_store::{Result, ServiceErrorCode, StoreError, Transport};

use crate::metrics::FleetMetrics;

/// Static shape of a coordinator: how many islands it barriers on and
/// how admitted alphas are stamped.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Number of islands the round barrier waits for.
    pub islands: usize,
    /// The feature-set id stamped on every admitted archive entry.
    pub feature_set_id: u64,
    /// How long a blocked island waits for the rest of the fleet before
    /// the round is declared failed (a crashed island must not hang its
    /// peers forever).
    pub round_deadline: Duration,
    /// The first round this coordinator collects (0 for a fresh fleet;
    /// the next unfinished round when resuming from a fleet checkpoint).
    pub start_round: u64,
    /// When set, the archive is saved here after every completed round,
    /// so an interrupted fleet resumes from the last round boundary.
    pub archive_path: Option<std::path::PathBuf>,
}

/// The outcome of one completed migration round, broadcast to every
/// island through its [`EliteAck`].
#[derive(Debug, Clone)]
struct RoundResult {
    round: u64,
    admitted: u64,
    rejected_gate: u64,
    rejected_invalid: u64,
    migrants: Vec<AlphaProgram>,
}

struct RoundState {
    /// The round currently being collected.
    round: u64,
    /// One slot per island for the current round.
    pending: Vec<Option<EliteSubmit>>,
    received: usize,
    /// When the first submission of the current round arrived.
    opened: Option<Instant>,
    /// The last completed round, for waiters and late fetchers.
    last: Option<RoundResult>,
    /// Set when a round blew its deadline: every current and future
    /// waiter fails instead of hanging.
    failed: Option<String>,
}

/// The shared admission point of an island fleet (see the module docs).
pub struct Coordinator {
    evaluator: Arc<Evaluator>,
    verifier: ProgramVerifier,
    config: CoordinatorConfig,
    state: Mutex<RoundState>,
    released: Condvar,
    archive: Mutex<AlphaArchive>,
    metrics: FleetMetrics,
}

impl Coordinator {
    /// A coordinator admitting into `archive` (fresh, or reloaded from a
    /// fleet checkpoint). The evaluator re-measures every submission; it
    /// must be built over the same dataset and config as the islands'
    /// for the determinism contract to hold.
    pub fn new(
        evaluator: Arc<Evaluator>,
        archive: AlphaArchive,
        config: CoordinatorConfig,
    ) -> Coordinator {
        let verifier = ProgramVerifier::new(evaluator.config());
        Coordinator {
            verifier,
            state: Mutex::new(RoundState {
                round: config.start_round,
                pending: (0..config.islands).map(|_| None).collect(),
                received: 0,
                opened: None,
                last: None,
                failed: None,
            }),
            released: Condvar::new(),
            archive: Mutex::new(archive),
            metrics: FleetMetrics::new(config.islands),
            evaluator,
            config,
        }
    }

    /// The coordinator's instrument panel.
    pub fn metrics(&self) -> &FleetMetrics {
        &self.metrics
    }

    /// Renders the fleet metrics as a text exposition (the kind-10
    /// payload).
    pub fn render_metrics(&self) -> String {
        let mut snap = MetricsSnapshot::new();
        self.metrics.snapshot_into(&mut snap);
        snap.render()
    }

    /// The serialized shared archive (a complete kind-1 file frame).
    pub fn archive_bytes(&self) -> Vec<u8> {
        self.archive.lock().unwrap().to_bytes()
    }

    fn check_island(&self, island: u64) -> Result<usize> {
        let i = usize::try_from(island)
            .ok()
            .filter(|&i| i < self.config.islands);
        i.ok_or_else(|| {
            StoreError::service(
                ServiceErrorCode::Protocol,
                format!(
                    "island {island} is not part of this {}-island fleet",
                    self.config.islands
                ),
            )
        })
    }

    /// An island's end-of-round submission. Blocks until every island
    /// has submitted the same round (or the deadline passes), processes
    /// the round in island-id order, and returns the shared verdict.
    pub fn handle_submit(&self, submit: EliteSubmit) -> Result<EliteAck> {
        let island = self.check_island(submit.island)?;
        let round = submit.round;
        let mut state = self.state.lock().unwrap();
        if let Some(why) = &state.failed {
            return Err(StoreError::service(ServiceErrorCode::Internal, why.clone()));
        }
        if round != state.round {
            return Err(StoreError::service(
                ServiceErrorCode::Protocol,
                format!(
                    "island {island} submitted round {round}, expected {}",
                    state.round
                ),
            ));
        }
        if state.pending[island].is_some() {
            return Err(StoreError::service(
                ServiceErrorCode::Protocol,
                format!("island {island} already submitted round {round}"),
            ));
        }
        let im = self.metrics.island(island);
        im.submitted.add(submit.programs.len() as u64);
        im.rounds.inc();
        if submit.elapsed_ns > 0 {
            im.candidates_per_sec
                .set(submit.searched as f64 / (submit.elapsed_ns as f64 / 1e9));
        }
        state.opened.get_or_insert_with(Instant::now);
        state.pending[island] = Some(submit);
        state.received += 1;
        if state.received == self.config.islands {
            self.process_round(&mut state)?;
            self.released.notify_all();
        } else {
            let deadline = Instant::now() + self.config.round_deadline;
            loop {
                match &state.last {
                    Some(r) if r.round == round => break,
                    _ => {}
                }
                if let Some(why) = &state.failed {
                    return Err(StoreError::service(ServiceErrorCode::Internal, why.clone()));
                }
                let now = Instant::now();
                if now >= deadline {
                    let why = format!(
                        "migration round {round} missed its {:?} deadline \
                         ({} of {} islands submitted)",
                        self.config.round_deadline, state.received, self.config.islands
                    );
                    state.failed = Some(why.clone());
                    self.released.notify_all();
                    return Err(StoreError::service(ServiceErrorCode::Internal, why));
                }
                let (next, _timed_out) = self.released.wait_timeout(state, deadline - now).unwrap();
                state = next;
            }
        }
        let result = state.last.as_ref().expect("round result just produced");
        Ok(EliteAck {
            round: result.round,
            admitted: result.admitted,
            rejected_gate: result.rejected_gate,
            rejected_invalid: result.rejected_invalid,
            migrants: result.migrants.clone(),
        })
    }

    /// Processes the collected round in island-id order while holding
    /// the state lock — the serialization point that makes admissions
    /// independent of submission arrival order.
    fn process_round(&self, state: &mut RoundState) -> Result<()> {
        let ds = self.evaluator.dataset();
        let train_days = (ds.train_days().start as u64, ds.train_days().end as u64);
        let mut result = RoundResult {
            round: state.round,
            admitted: 0,
            rejected_gate: 0,
            rejected_invalid: 0,
            migrants: Vec::new(),
        };
        let mut archive = self.archive.lock().unwrap();
        for island in 0..self.config.islands {
            let submit = state.pending[island]
                .take()
                .expect("barrier counted all islands");
            let im = self.metrics.island(island);
            for program in submit.programs {
                if self.verifier.ensure_valid(&program).is_err() {
                    result.rejected_invalid += 1;
                    im.rejected_invalid.inc();
                    continue;
                }
                let evaluation = self.evaluator.evaluate(&program);
                if evaluation.fitness.is_none() {
                    // Well-formed but produces non-finite/degenerate
                    // predictions on this dataset: unusable as an alpha.
                    result.rejected_invalid += 1;
                    im.rejected_invalid.inc();
                    continue;
                }
                let fp = fingerprint(&program, self.evaluator.config()).0;
                let outcome = archive.admit(ArchivedAlpha {
                    name: format!("alpha_{fp:016x}"),
                    program,
                    fingerprint: fp,
                    ic: evaluation.ic,
                    val_returns: evaluation.val_returns,
                    train_days,
                    feature_set_id: self.config.feature_set_id,
                });
                if outcome.admitted() {
                    result.admitted += 1;
                    im.admitted.inc();
                } else {
                    result.rejected_gate += 1;
                    im.rejected_gate.inc();
                }
            }
        }
        result.migrants = archive
            .entries()
            .iter()
            .map(|e| e.program.clone())
            .collect();
        if let Some(path) = &self.config.archive_path {
            archive.save(path)?;
        }
        drop(archive);
        self.metrics.rounds_total.inc();
        if let Some(opened) = state.opened.take() {
            self.metrics.round_latency.record_duration(opened.elapsed());
        }
        state.round += 1;
        state.received = 0;
        state.last = Some(result);
        Ok(())
    }

    /// The current migrant pool without submitting — for late joiners
    /// and out-of-band inspection.
    pub fn handle_fetch(&self, island: u64, _round: u64) -> Result<MigrantSet> {
        self.check_island(island)?;
        let state = self.state.lock().unwrap();
        let round = state
            .last
            .as_ref()
            .map_or(self.config.start_round, |r| r.round);
        drop(state);
        let archive = self.archive.lock().unwrap();
        Ok(MigrantSet {
            round,
            migrants: archive
                .entries()
                .iter()
                .map(|e| e.program.clone())
                .collect(),
        })
    }

    /// A full archive snapshot as serialized file bytes.
    pub fn handle_sync(&self, island: u64) -> Result<Vec<u8>> {
        self.check_island(island)?;
        Ok(self.archive_bytes())
    }
}

/// Drives one fleet connection: reads request frames, dispatches to the
/// coordinator, writes exactly one response frame each — until the peer
/// hangs up. Mirrors the serving loop's error policy: a request the
/// coordinator refuses (wrong round, unknown island, blown deadline) is
/// answered with a typed kind-8 error and the connection stays open; an
/// unintelligible or non-request frame is answered typed and then the
/// connection closes.
pub fn serve_fleet_connection<T: Transport>(coordinator: &Coordinator, conn: &mut T) -> Result<()> {
    let mut recv_buf = Vec::new();
    let mut send_buf = Vec::new();
    loop {
        let kind = match read_message(conn, &mut recv_buf) {
            Ok(Some(kind)) => kind,
            Ok(None) => return Ok(()),
            Err(err) => {
                encode_store_error(
                    &StoreError::service(ServiceErrorCode::Protocol, err.to_string()),
                    &mut send_buf,
                );
                let _ = write_message(conn, &send_buf);
                return Err(err);
            }
        };
        if kind == KIND_METRICS_REQUEST {
            match alphaevolve_store::wire::decode_request(kind, frame_payload(&recv_buf)) {
                Ok(_) => encode_metrics_response(&coordinator.render_metrics(), &mut send_buf),
                Err(e) => encode_store_error(&e, &mut send_buf),
            }
            write_message(conn, &send_buf)?;
            continue;
        }
        match decode_fleet_request(kind, frame_payload(&recv_buf)) {
            Ok(FleetRequest::EliteSubmit(submit)) => match coordinator.handle_submit(submit) {
                Ok(ack) => encode_elite_ack(&ack, &mut send_buf),
                Err(e) => encode_store_error(&e, &mut send_buf),
            },
            Ok(FleetRequest::MigrantFetch { island, round }) => {
                match coordinator.handle_fetch(island, round) {
                    Ok(set) => encode_migrant_set(&set, &mut send_buf),
                    Err(e) => encode_store_error(&e, &mut send_buf),
                }
            }
            Ok(FleetRequest::ArchiveSync { island }) => match coordinator.handle_sync(island) {
                Ok(bytes) => encode_archive_snapshot(&bytes, &mut send_buf),
                Err(e) => encode_store_error(&e, &mut send_buf),
            },
            Err(e) => {
                // A response frame (or unknown kind) where a request
                // belongs, or a payload the decoder rejects: answer
                // typed, then drop the connection if it was a framing-
                // level confusion (unknown kind) rather than a refused
                // but well-framed request.
                let close = !matches!(
                    kind,
                    alphaevolve_store::frame::KIND_ELITE_SUBMIT_REQUEST
                        | alphaevolve_store::frame::KIND_MIGRANT_FETCH_REQUEST
                        | alphaevolve_store::frame::KIND_ARCHIVE_SYNC_REQUEST
                );
                encode_store_error(&e, &mut send_buf);
                write_message(conn, &send_buf)?;
                if close {
                    return Err(StoreError::service(
                        ServiceErrorCode::Protocol,
                        format!("peer sent non-request kind {kind}"),
                    ));
                }
                continue;
            }
        }
        write_message(conn, &send_buf)?;
    }
}

/// Serves a coordinator on a Unix-domain-socket listener: accepts
/// forever, one thread per island connection — the process-separated
/// analogue of handing each island thread a
/// [`LocalLink`](crate::island::LocalLink). Runs until the listener
/// fails; spawn it on a dedicated thread like
/// [`serve_uds`](alphaevolve_store::transport::serve_uds).
pub fn serve_fleet_uds(
    listener: std::os::unix::net::UnixListener,
    coordinator: Arc<Coordinator>,
) -> Result<()> {
    loop {
        let (mut conn, _addr) = listener.accept()?;
        let coordinator = Arc::clone(&coordinator);
        std::thread::spawn(move || {
            // Peer hangups and protocol errors end this connection only.
            let _ = serve_fleet_connection(&coordinator, &mut conn);
        });
    }
}
