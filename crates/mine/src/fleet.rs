//! The fleet driver: N islands, one coordinator, one determinism
//! contract.
//!
//! A fleet is parameterized by **one seed**: each island derives its own
//! evolution seed via [`island_seed`], so a fixed fleet seed and island
//! count reproduce every island's trajectory — and, because the
//! coordinator admits in island-id order at a round barrier, the final
//! archive — byte-identically across runs and across transports. Island
//! 0's seed *is* the fleet seed, which is what makes a 1-island fleet
//! with migration disabled reproduce the classic single-process run
//! bitwise.
//!
//! Checkpointing: with a checkpoint directory configured, every island
//! saves its ready-to-resume checkpoint (budget and migration epoch
//! already advanced) after every round, and the coordinator saves the
//! archive at each round boundary — so [`Fleet::resume`] continues an
//! interrupted run through the identical code path an uninterrupted run
//! takes, bit for bit.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use alphaevolve_core::{AlphaProgram, Evaluator, EvolutionConfig, EvolutionOutcome};
use alphaevolve_obs::MetricsSnapshot;
use alphaevolve_store::archive::AlphaArchive;
use alphaevolve_store::{load_checkpoint, Result, ServiceErrorCode, StoreError};

use crate::coordinator::{Coordinator, CoordinatorConfig};
use crate::island::{mine_island, resume_island, IslandConfig, LocalLink, MigrationLink};

/// Derives island `island`'s evolution seed from the fleet seed. Island
/// 0 maps to the fleet seed itself (the 1-island bitwise contract); the
/// others decorrelate through a golden-ratio multiply.
pub fn island_seed(fleet_seed: u64, island: u64) -> u64 {
    fleet_seed ^ island.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Everything that shapes a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of islands.
    pub islands: usize,
    /// The one seed every island seed derives from.
    pub fleet_seed: u64,
    /// Migration rounds to run.
    pub rounds: u64,
    /// Candidates searched per island per round.
    pub round_searches: usize,
    /// Per-island probability that a mutant derives from a migrant.
    pub migrant_fraction: f64,
    /// Elites each island publishes per round.
    pub elites_per_round: usize,
    /// The per-island evolution template; `seed` and `budget` are
    /// overwritten per island/round, `workers` must be 1.
    pub econfig: EvolutionConfig,
    /// Shared archive capacity (the paper's hall-of-fame bound).
    pub archive_capacity: usize,
    /// Feature-set id stamped on admitted entries.
    pub feature_set_id: u64,
    /// Barrier deadline per migration round.
    pub round_deadline: Duration,
    /// Stop every island after this many rounds of this invocation
    /// (checkpoint first) — for interruption tests and staged runs.
    pub stop_after: Option<u64>,
    /// Directory for fleet checkpoints (`island_<i>.ckpt` +
    /// `archive.aev`); `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
}

impl FleetConfig {
    fn island_config(&self, island: u64) -> IslandConfig {
        let mut econfig = self.econfig.clone();
        econfig.seed = island_seed(self.fleet_seed, island);
        IslandConfig {
            id: island,
            econfig,
            rounds: self.rounds,
            round_searches: self.round_searches,
            migrant_fraction: self.migrant_fraction,
            elites_per_round: self.elites_per_round,
            stop_after: self.stop_after,
            checkpoint_path: self
                .checkpoint_dir
                .as_deref()
                .map(|d| island_checkpoint_path(d, island)),
        }
    }

    fn coordinator_config(&self, start_round: u64) -> CoordinatorConfig {
        CoordinatorConfig {
            islands: self.islands,
            feature_set_id: self.feature_set_id,
            round_deadline: self.round_deadline,
            start_round,
            archive_path: self.checkpoint_dir.as_ref().map(|d| d.join("archive.aev")),
        }
    }
}

/// What a fleet run leaves behind.
pub struct FleetOutcome {
    /// Per-island outcomes of the last round run, in island order.
    pub outcomes: Vec<EvolutionOutcome>,
    /// The shared archive at the end of the run.
    pub archive: AlphaArchive,
    /// The coordinator's fleet metrics snapshot.
    pub metrics: MetricsSnapshot,
}

/// The fleet driver: owns the configuration, builds coordinators, runs
/// islands on scoped threads.
pub struct Fleet {
    evaluator: Arc<Evaluator>,
    config: FleetConfig,
}

impl Fleet {
    /// A fleet mining with `evaluator` (shared by every in-process
    /// island and by the coordinator's re-evaluation).
    pub fn new(evaluator: Arc<Evaluator>, config: FleetConfig) -> Fleet {
        assert!(config.islands > 0, "a fleet needs at least one island");
        Fleet { evaluator, config }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// A fresh coordinator for this fleet (empty archive, round 0).
    /// Serve it over a socket for wire islands, or hand it to
    /// [`Fleet::run_with_links`] directly.
    pub fn coordinator(&self) -> Arc<Coordinator> {
        Arc::new(Coordinator::new(
            Arc::clone(&self.evaluator),
            AlphaArchive::new(self.config.archive_capacity),
            self.config.coordinator_config(0),
        ))
    }

    /// Runs the whole fleet in-process: every island is a thread with a
    /// [`LocalLink`] onto a fresh coordinator.
    pub fn run(&self, seed_program: &AlphaProgram) -> Result<FleetOutcome> {
        let coordinator = self.coordinator();
        let links: Vec<Box<dyn MigrationLink + Send>> = (0..self.config.islands)
            .map(|_| Box::new(LocalLink::new(Arc::clone(&coordinator))) as _)
            .collect();
        self.run_with_links(seed_program, &coordinator, links)
    }

    /// Runs the fleet with caller-supplied links — one per island, any
    /// mix of [`LocalLink`] and [`FleetClient`](crate::island::FleetClient)
    /// transports, all pointing at (a serving of) `coordinator`.
    pub fn run_with_links(
        &self,
        seed_program: &AlphaProgram,
        coordinator: &Arc<Coordinator>,
        links: Vec<Box<dyn MigrationLink + Send>>,
    ) -> Result<FleetOutcome> {
        assert_eq!(
            links.len(),
            self.config.islands,
            "one migration link per island"
        );
        let outcomes = std::thread::scope(|scope| {
            // Spawn every island before joining any: the coordinator's
            // round barrier needs all of them in flight at once.
            let mut handles = Vec::with_capacity(self.config.islands);
            for (i, mut link) in links.into_iter().enumerate() {
                let cfg = self.config.island_config(i as u64);
                let evaluator = Arc::clone(&self.evaluator);
                handles.push(scope.spawn(move || {
                    mine_island(
                        &evaluator,
                        &cfg,
                        seed_program,
                        Vec::new(),
                        Vec::new(),
                        &mut *link,
                    )
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("island thread must not panic"))
                .collect::<Result<Vec<_>>>()
        })?;
        self.outcome(coordinator, outcomes)
    }

    /// Resumes an interrupted fleet from its checkpoint directory:
    /// reloads the shared archive and every island's ready-to-resume
    /// checkpoint, then continues rounds in-process until `rounds` (or
    /// `stop_after`) — the same code path an uninterrupted run takes.
    pub fn resume(&self) -> Result<FleetOutcome> {
        let dir = self.config.checkpoint_dir.as_deref().ok_or_else(|| {
            StoreError::service(
                ServiceErrorCode::Internal,
                "fleet resume requires a checkpoint directory".to_string(),
            )
        })?;
        let checkpoints = (0..self.config.islands)
            .map(|i| load_checkpoint(island_checkpoint_path(dir, i as u64)))
            .collect::<Result<Vec<_>>>()?;
        let start_round = checkpoints[0].migration.as_ref().map_or(0, |m| m.round);
        let archive = AlphaArchive::load(dir.join("archive.aev"))?;
        let coordinator = Arc::new(Coordinator::new(
            Arc::clone(&self.evaluator),
            archive,
            self.config.coordinator_config(start_round),
        ));
        let outcomes = std::thread::scope(|scope| {
            // Same spawn-all-then-join shape as `run_with_links` — the
            // barrier requires every island in flight.
            let mut handles = Vec::with_capacity(self.config.islands);
            for (i, checkpoint) in checkpoints.into_iter().enumerate() {
                let cfg = self.config.island_config(i as u64);
                let evaluator = Arc::clone(&self.evaluator);
                let mut link = LocalLink::new(Arc::clone(&coordinator));
                handles.push(
                    scope.spawn(move || resume_island(&evaluator, &cfg, checkpoint, &mut link)),
                );
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("island thread must not panic"))
                .collect::<Result<Vec<_>>>()
        })?;
        self.outcome(&coordinator, outcomes)
    }

    fn outcome(
        &self,
        coordinator: &Arc<Coordinator>,
        outcomes: Vec<EvolutionOutcome>,
    ) -> Result<FleetOutcome> {
        let archive = AlphaArchive::from_bytes(&coordinator.archive_bytes())?;
        let mut metrics = MetricsSnapshot::new();
        coordinator.metrics().snapshot_into(&mut metrics);
        Ok(FleetOutcome {
            outcomes,
            archive,
            metrics,
        })
    }
}

/// Where island `island`'s fleet checkpoint lives under `dir`.
pub fn island_checkpoint_path(dir: &Path, island: u64) -> PathBuf {
    dir.join(format!("island_{island}.ckpt"))
}
