//! Fleet observability: `mine_*` counters, histograms, and gauges.
//!
//! One [`IslandMetrics`] block per island plus fleet-wide instruments,
//! all lock-free atomics from `alphaevolve_obs`. Snapshots follow the
//! `ShardedRouter::metrics` convention: every per-island value is pushed
//! twice — once unlabeled (so same-named entries sum into fleet totals
//! when snapshots merge) and once with an `island` label (so a scrape
//! can still attribute work to the island that did it). The snapshot is
//! scraped over the ordinary kind-9/10 metrics wire pair by
//! [`serve_fleet_connection`](crate::coordinator::serve_fleet_connection).

use alphaevolve_obs::{Counter, Gauge, Histogram, MetricsSnapshot};

/// Per-island migration instruments, recorded by the coordinator as it
/// processes that island's submissions.
#[derive(Debug, Default)]
pub struct IslandMetrics {
    /// Elite programs this island has submitted.
    pub submitted: Counter,
    /// Submissions admitted into the shared archive.
    pub admitted: Counter,
    /// Submissions rejected by the correlation gate (duplicates, too
    /// correlated, or weaker than the eviction floor).
    pub rejected_gate: Counter,
    /// Submissions rejected by the trust-boundary verifier or failing
    /// re-evaluation — nonzero means a hostile or corrupt island.
    pub rejected_invalid: Counter,
    /// Migration rounds this island has completed.
    pub rounds: Counter,
    /// The island's self-reported mining throughput, candidates/second.
    pub candidates_per_sec: Gauge,
}

/// The coordinator's instrument panel: per-island blocks plus fleet-wide
/// round counters and latency.
#[derive(Debug)]
pub struct FleetMetrics {
    islands: Vec<IslandMetrics>,
    /// Migration rounds completed fleet-wide.
    pub rounds_total: Counter,
    /// Wall-clock nanoseconds from a round's first submission to its
    /// barrier release.
    pub round_latency: Histogram,
}

impl FleetMetrics {
    /// A fresh panel for `islands` islands.
    pub fn new(islands: usize) -> FleetMetrics {
        FleetMetrics {
            islands: (0..islands).map(|_| IslandMetrics::default()).collect(),
            rounds_total: Counter::new(),
            round_latency: Histogram::new(),
        }
    }

    /// The instrument block of island `i`.
    ///
    /// # Panics
    /// If `i` is out of range — callers validate island ids first.
    pub fn island(&self, i: usize) -> &IslandMetrics {
        &self.islands[i]
    }

    /// Number of islands this panel instruments.
    pub fn islands(&self) -> usize {
        self.islands.len()
    }

    /// Renders the panel into `out`: fleet totals unlabeled, per-island
    /// values under an `island` label (mirroring how the sharded router
    /// merges per-shard serving metrics).
    pub fn snapshot_into(&self, out: &mut MetricsSnapshot) {
        let mut throughput = 0.0;
        for (sum, name) in [
            (
                sum_of(&self.islands, |m| &m.submitted),
                "mine_migrants_submitted_total",
            ),
            (
                sum_of(&self.islands, |m| &m.admitted),
                "mine_migrants_admitted_total",
            ),
            (
                sum_of(&self.islands, |m| &m.rejected_gate),
                "mine_migrants_rejected_gate_total",
            ),
            (
                sum_of(&self.islands, |m| &m.rejected_invalid),
                "mine_migrants_rejected_invalid_total",
            ),
        ] {
            out.push_counter(name, &[], sum);
        }
        for (i, m) in self.islands.iter().enumerate() {
            let island = i.to_string();
            let labels = [("island", island.as_str())];
            out.push_counter("mine_migrants_submitted_total", &labels, m.submitted.get());
            out.push_counter("mine_migrants_admitted_total", &labels, m.admitted.get());
            out.push_counter(
                "mine_migrants_rejected_gate_total",
                &labels,
                m.rejected_gate.get(),
            );
            out.push_counter(
                "mine_migrants_rejected_invalid_total",
                &labels,
                m.rejected_invalid.get(),
            );
            out.push_counter("mine_rounds_total", &labels, m.rounds.get());
            out.push_gauge(
                "mine_island_candidates_per_sec",
                &labels,
                m.candidates_per_sec.get(),
            );
            throughput += m.candidates_per_sec.get();
        }
        out.push_counter("mine_rounds_total", &[], self.rounds_total.get());
        out.push_gauge("mine_island_candidates_per_sec", &[], throughput);
        out.observe_histogram("mine_round_latency_ns", &[], &self.round_latency);
    }
}

fn sum_of(islands: &[IslandMetrics], pick: impl Fn(&IslandMetrics) -> &Counter) -> u64 {
    islands.iter().map(|m| pick(m).get()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_and_islands_stay_attributable() {
        let m = FleetMetrics::new(2);
        m.island(0).submitted.add(3);
        m.island(1).submitted.add(4);
        m.island(1).admitted.inc();
        m.island(0).candidates_per_sec.set(10.0);
        m.island(1).candidates_per_sec.set(5.0);
        m.rounds_total.inc();
        let mut snap = MetricsSnapshot::new();
        m.snapshot_into(&mut snap);
        assert_eq!(snap.counter_value("mine_migrants_submitted_total", &[]), 7);
        assert_eq!(
            snap.counter_value("mine_migrants_submitted_total", &[("island", "1")]),
            4
        );
        assert_eq!(snap.counter_value("mine_migrants_admitted_total", &[]), 1);
        assert_eq!(snap.counter_value("mine_rounds_total", &[]), 1);
        // The exposition round-trips through parse (the wire scrape path).
        let parsed = MetricsSnapshot::parse(&snap.render()).unwrap();
        assert_eq!(
            parsed.counter_value("mine_migrants_submitted_total", &[]),
            7
        );
    }
}
