//! Island-model distributed mining for the AlphaEvolve reproduction.
//!
//! The paper's search is one evolutionary loop; this crate scales it
//! out without giving up reproducibility. N **islands** run independent
//! [`Evolution`](alphaevolve_core::Evolution) loops with per-island
//! seeds derived from one fleet seed; at the end of every **migration
//! round** each island publishes its elite programs to a
//! **coordinator**, which verifies, re-evaluates, and admits them
//! through the existing correlation gate into one shared
//! [`AlphaArchive`](alphaevolve_store::archive::AlphaArchive), then
//! releases the round barrier with the updated migrant pool. Islands
//! feed that pool back into their search two ways: **warm-start** (the
//! initial population seeds from archived elites) and **archive-seeded
//! mutation** (a configurable fraction of mutants derive from migrants
//! instead of tournament parents).
//!
//! Islands talk to the coordinator through a [`MigrationLink`]: either
//! in-process method calls ([`LocalLink`]) or the AEVS fleet wire kinds
//! 11–16 over any [`Transport`](alphaevolve_store::Transport)
//! ([`FleetClient`] over loopback pipes or Unix domain sockets) — a
//! fleet is transport-agnostic exactly like serving is.
//!
//! # The determinism contract
//!
//! * A **1-island fleet** with migration disabled reproduces the classic
//!   single-process fixed-seed run **bitwise** — rounds are checkpoint
//!   chunks of the same run.
//! * A **fixed fleet seed and island count** reproduce the final archive
//!   **byte-identically** across runs and across thread-vs-UDS
//!   transports — the coordinator's barrier admits in island-id order,
//!   so scheduling and transport cannot reorder archive mutations.
//! * An **interrupted fleet** resumed from its checkpoint directory
//!   reproduces the uninterrupted run bit for bit — migration epochs
//!   ride inside evolution checkpoints.
//!
//! Changing the island *count* legitimately changes the trajectory (the
//! work is partitioned differently); the contract pins each
//! configuration's reproducibility, not equivalence across
//! configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod fleet;
pub mod island;
pub mod metrics;

pub use coordinator::{serve_fleet_connection, serve_fleet_uds, Coordinator, CoordinatorConfig};
pub use fleet::{island_checkpoint_path, island_seed, Fleet, FleetConfig, FleetOutcome};
pub use island::{mine_island, resume_island, FleetClient, IslandConfig, LocalLink, MigrationLink};
pub use metrics::{FleetMetrics, IslandMetrics};
