//! Fixed-width table formatting for experiment output.
//!
//! The experiment harness prints tables in the visual style of the paper
//! (six-decimal metrics, `NA` for absent entries). Kept here so every crate
//! reports through one code path.

/// A cell value: text, a six-decimal metric, or `NA`.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Verbatim text.
    Text(String),
    /// A metric formatted to six decimals, as in the paper's tables.
    Num(f64),
    /// A `mean ± std` pair.
    NumStd(f64, f64),
    /// Not applicable (paper prints "NA").
    Na,
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Num(x) => format!("{x:.6}"),
            Cell::NumStd(m, s) => format!("{m:.6}+/-{s:.6}"),
            Cell::Na => "NA".to_string(),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<f64> for Cell {
    fn from(x: f64) -> Self {
        Cell::Num(x)
    }
}

impl From<Option<f64>> for Cell {
    fn from(x: Option<f64>) -> Self {
        x.map_or(Cell::Na, Cell::Num)
    }
}

/// A simple fixed-width table with a title, headers and rows.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// New table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; its length must match the header count.
    pub fn row(&mut self, cells: Vec<Cell>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    #[allow(clippy::needless_range_loop)]
    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut cols: Vec<Vec<String>> = vec![Vec::new(); self.headers.len()];
        for (c, h) in self.headers.iter().enumerate() {
            cols[c].push(h.clone());
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                cols[c].push(cell.render());
            }
        }
        let widths: Vec<usize> = cols
            .iter()
            .map(|c| c.iter().map(String::len).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        for r in 0..=self.rows.len() {
            let line: Vec<String> = (0..self.headers.len())
                .map(|c| format!("{:<w$}", cols[c][r], w = widths[c]))
                .collect();
            out.push_str(line.join("  ").trim_end());
            out.push('\n');
            if r == 0 {
                let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
                out.push_str(&"-".repeat(total));
                out.push('\n');
            }
        }
        out
    }

    /// Renders as CSV (title omitted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Cell::render).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["Alpha", "Sharpe", "IC"]);
        t.row(vec![
            "alpha_AE_D_0".into(),
            21.323797.into(),
            0.067358.into(),
        ]);
        t.row(vec!["alpha_G_0".into(), Cell::Na, Cell::Num(0.048853)]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("21.323797"));
        assert!(s.contains("NA"));
        // Columns aligned: all lines equal width up to trailing trim.
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn csv_round_numbers() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec![Cell::NumStd(5.385036, 1.608296), Cell::Num(1.0)]);
        let csv = t.to_csv();
        assert!(csv.contains("5.385036+/-1.608296"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec![Cell::Na]);
    }
}
