//! The paper's long-short trading strategy (§5.3).
//!
//! At each day `t` the strategy ranks all stocks by predicted return, buys
//! the top `k_long` (long position `V_l`), borrows and sells the bottom
//! `k_short` (short position `V_s`), and balances both books against a cash
//! position so the ratio between the books stays fixed ("we want to stick
//! to a fixed investment plan"). Books are equal-weighted within.
//!
//! With equal books rebalanced daily, the daily portfolio return is
//!
//! ```text
//! R_p[t] = (mean return of longs − mean return of shorts) / 2
//! ```
//!
//! i.e. each side commits half the capital. `NAV_t = V_l + V_s − C_t`
//! compounds these returns (see [`crate::equity`]).
//!
//! Panel inputs are flat [`CrossSections`]; the `_with`/`_into` variants
//! take caller-owned scratch so the evaluation hot path performs no
//! per-candidate allocations.

use crate::cross_sections::CrossSections;

/// Long/short book sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LongShortConfig {
    /// Number of stocks bought (top of the prediction ranking).
    pub k_long: usize,
    /// Number of stocks shorted (bottom of the ranking).
    pub k_short: usize,
}

impl LongShortConfig {
    /// The paper's 50/50 books.
    pub fn paper() -> Self {
        LongShortConfig {
            k_long: 50,
            k_short: 50,
        }
    }

    /// Books scaled to a universe of `n` stocks: `max(1, n/10)` per side,
    /// capped at the paper's 50. Matches the paper proportionally when the
    /// synthetic universe is smaller than NASDAQ's 1026 names.
    pub fn scaled(n: usize) -> Self {
        let k = (n / 10).clamp(1, 50);
        LongShortConfig {
            k_long: k,
            k_short: k,
        }
    }
}

/// Fills `order` with the stock indices sorted by prediction, best first.
/// Non-finite predictions are excluded (those stocks are untradeable that
/// day). Ties break by stock index for determinism. Reuses `order`'s
/// allocation.
fn ranking_into(preds: &[f64], order: &mut Vec<usize>) {
    order.clear();
    order.extend((0..preds.len()).filter(|&i| preds[i].is_finite()));
    // Ties break by index — a total order, so the unstable sort is
    // deterministic and, unlike the stable sort, never allocates.
    order.sort_unstable_by(|&a, &b| {
        preds[b]
            .partial_cmp(&preds[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
}

/// [`single_day_return`] with a caller-provided ranking scratch buffer —
/// allocation-free once the scratch has grown to the universe size.
pub fn single_day_return_with(
    preds: &[f64],
    rets: &[f64],
    cfg: &LongShortConfig,
    order: &mut Vec<usize>,
) -> f64 {
    assert_eq!(
        preds.len(),
        rets.len(),
        "prediction/return cross-sections must align"
    );
    ranking_into(preds, order);
    if order.is_empty() {
        return 0.0;
    }
    let kl = cfg.k_long.min(order.len());
    let ks = cfg.k_short.min(order.len());
    if kl == 0 && ks == 0 {
        return 0.0;
    }
    let long: f64 = order[..kl].iter().map(|&i| rets[i]).sum::<f64>() / kl.max(1) as f64;
    let short: f64 = order[order.len() - ks..]
        .iter()
        .map(|&i| rets[i])
        .sum::<f64>()
        / ks.max(1) as f64;
    (long - short) / 2.0
}

/// Portfolio return realized on one day given that day's predictions and
/// realized stock returns.
pub fn single_day_return(preds: &[f64], rets: &[f64], cfg: &LongShortConfig) -> f64 {
    let mut order = Vec::new();
    single_day_return_with(preds, rets, cfg, &mut order)
}

/// Daily portfolio-return series over aligned prediction/return panels:
/// one entry per day valid in both, in day order.
pub fn long_short_returns(
    preds: &CrossSections,
    rets: &CrossSections,
    cfg: &LongShortConfig,
) -> Vec<f64> {
    let mut out = Vec::new();
    let mut order = Vec::new();
    long_short_returns_into(preds, rets, cfg, &mut order, &mut out);
    out
}

/// [`long_short_returns`] writing into caller-owned buffers: `out` is
/// cleared and refilled, `order` is the ranking scratch. Allocation-free
/// once both buffers reach their high-water mark — this is the evaluation
/// hot path.
pub fn long_short_returns_into(
    preds: &CrossSections,
    rets: &CrossSections,
    cfg: &LongShortConfig,
    order: &mut Vec<usize>,
    out: &mut Vec<f64>,
) {
    out.clear();
    for d in crate::cross_sections::joint_valid_days(preds, rets) {
        out.push(single_day_return_with(
            preds.row(d),
            rets.row(d),
            cfg,
            order,
        ));
    }
}

/// The stocks held long and short on one day (for inspection/examples).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Positions {
    /// Indices of long holdings, best-ranked first.
    pub long: Vec<usize>,
    /// Indices of short holdings, worst-ranked first.
    pub short: Vec<usize>,
}

/// Computes the books for one day without scoring them.
pub fn positions(preds: &[f64], cfg: &LongShortConfig) -> Positions {
    let mut order = Vec::new();
    ranking_into(preds, &mut order);
    let kl = cfg.k_long.min(order.len());
    let ks = cfg.k_short.min(order.len());
    let long = order[..kl].to_vec();
    let mut short = order[order.len() - ks..].to_vec();
    short.reverse();
    Positions { long, short }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_foresight_earns_spread() {
        let rets = vec![-0.04, -0.01, 0.0, 0.01, 0.05];
        let preds = rets.clone(); // oracle
        let cfg = LongShortConfig {
            k_long: 1,
            k_short: 1,
        };
        let r = single_day_return(&preds, &rets, &cfg);
        assert!((r - (0.05 - (-0.04)) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_predictions_lose() {
        let rets = vec![-0.04, -0.01, 0.0, 0.01, 0.05];
        let preds: Vec<f64> = rets.iter().map(|r| -r).collect();
        let cfg = LongShortConfig {
            k_long: 2,
            k_short: 2,
        };
        assert!(single_day_return(&preds, &rets, &cfg) < 0.0);
    }

    #[test]
    fn equal_books_make_market_neutral() {
        // Add a constant to every stock return: a dollar-neutral portfolio
        // must be unaffected.
        let preds = vec![0.4, -0.2, 0.1, 0.3, -0.5, 0.0];
        let rets = vec![0.01, -0.02, 0.005, 0.02, -0.03, 0.0];
        let shifted: Vec<f64> = rets.iter().map(|r| r + 0.05).collect();
        let cfg = LongShortConfig {
            k_long: 2,
            k_short: 2,
        };
        let a = single_day_return(&preds, &rets, &cfg);
        let b = single_day_return(&preds, &shifted, &cfg);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn non_finite_predictions_are_untradeable() {
        let preds = vec![f64::NAN, 1.0, -1.0, f64::INFINITY];
        let rets = vec![100.0, 0.01, -0.01, 100.0];
        let cfg = LongShortConfig {
            k_long: 1,
            k_short: 1,
        };
        // INFINITY is non-finite -> excluded; NAN excluded. Books: long 1, short 2.
        let r = single_day_return(&preds, &rets, &cfg);
        assert!((r - (0.01 - (-0.01)) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn small_universe_clamps_books() {
        let preds = vec![1.0, -1.0];
        let rets = vec![0.02, -0.02];
        let cfg = LongShortConfig {
            k_long: 50,
            k_short: 50,
        };
        // Both books take the whole universe: long and short overlap fully,
        // return = (mean - mean)/2 = 0.
        let r = single_day_return(&preds, &rets, &cfg);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn positions_ordering() {
        let preds = vec![0.3, -0.7, 0.9, 0.0];
        let p = positions(
            &preds,
            &LongShortConfig {
                k_long: 2,
                k_short: 1,
            },
        );
        assert_eq!(p.long, vec![2, 0]);
        assert_eq!(p.short, vec![1]);
    }

    #[test]
    fn scaled_config() {
        assert_eq!(
            LongShortConfig::scaled(1026),
            LongShortConfig {
                k_long: 50,
                k_short: 50
            }
        );
        assert_eq!(
            LongShortConfig::scaled(100),
            LongShortConfig {
                k_long: 10,
                k_short: 10
            }
        );
        assert_eq!(
            LongShortConfig::scaled(5),
            LongShortConfig {
                k_long: 1,
                k_short: 1
            }
        );
    }

    #[test]
    fn series_length_matches_days() {
        let preds = CrossSections::from_rows(&vec![vec![1.0, -1.0, 0.0]; 7]);
        let rets = CrossSections::from_rows(&vec![vec![0.01, -0.01, 0.0]; 7]);
        let cfg = LongShortConfig {
            k_long: 1,
            k_short: 1,
        };
        assert_eq!(long_short_returns(&preds, &rets, &cfg).len(), 7);
    }

    #[test]
    fn invalid_days_are_skipped() {
        let mut preds = CrossSections::from_rows(&vec![vec![1.0, -1.0]; 4]);
        let rets = CrossSections::from_rows(&vec![vec![0.02, -0.02]; 4]);
        preds.invalidate_day(2);
        let cfg = LongShortConfig {
            k_long: 1,
            k_short: 1,
        };
        let series = long_short_returns(&preds, &rets, &cfg);
        assert_eq!(series.len(), 3);
        assert!(series.iter().all(|&r| (r - 0.02).abs() < 1e-12));
    }

    #[test]
    fn ties_break_deterministically() {
        let preds = vec![0.5, 0.5, 0.5, 0.5];
        let a = positions(
            &preds,
            &LongShortConfig {
                k_long: 2,
                k_short: 2,
            },
        );
        let b = positions(
            &preds,
            &LongShortConfig {
                k_long: 2,
                k_short: 2,
            },
        );
        assert_eq!(a, b);
        assert_eq!(a.long, vec![0, 1]);
    }
}
