//! Portfolio-return correlations — the paper's weak-correlation machinery.
//!
//! Hedge funds want a *set* of alphas whose portfolio returns correlate
//! below 15% (paper footnote 3, citing Kakushadze's "101 Formulaic
//! Alphas"). During mining, AlphaEvolve discards candidates whose
//! validation portfolio returns correlate with any already-accepted alpha
//! above the cutoff. The paper's tables keep alphas with strongly
//! *negative* correlations (e.g. −0.30), so the cutoff is one-sided.

use crate::metrics::pearson;

/// The paper's weak-correlation standard.
pub const PAPER_CUTOFF: f64 = 0.15;

/// Sample Pearson correlation between two portfolio-return series.
pub fn return_correlation(a: &[f64], b: &[f64]) -> f64 {
    pearson(a, b)
}

/// Symmetric correlation matrix over a family of return series.
pub fn correlation_matrix(series: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = series.len();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        m[i][i] = 1.0;
        for j in (i + 1)..n {
            let c = pearson(&series[i], &series[j]);
            m[i][j] = c;
            m[j][i] = c;
        }
    }
    m
}

/// A set of accepted alphas' validation return series, with the cutoff test
/// applied to candidates.
#[derive(Debug, Clone)]
pub struct CorrelationGate {
    cutoff: f64,
    accepted: Vec<Vec<f64>>,
}

impl CorrelationGate {
    /// Gate with the paper's 15% cutoff.
    pub fn paper() -> Self {
        Self::new(PAPER_CUTOFF)
    }

    /// Gate with a custom cutoff.
    pub fn new(cutoff: f64) -> Self {
        CorrelationGate {
            cutoff,
            accepted: Vec::new(),
        }
    }

    /// The cutoff in force.
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// Number of accepted return series.
    pub fn len(&self) -> usize {
        self.accepted.len()
    }

    /// True when no series has been accepted yet (every candidate passes).
    pub fn is_empty(&self) -> bool {
        self.accepted.is_empty()
    }

    /// Maximum correlation of `candidate` against the accepted set
    /// (−∞ when the set is empty).
    pub fn max_correlation(&self, candidate: &[f64]) -> f64 {
        self.accepted
            .iter()
            .map(|a| return_correlation(a, candidate))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// One-sided test: a candidate passes unless its correlation with some
    /// accepted series *exceeds* the cutoff. (Strongly negative
    /// correlations pass — they diversify.)
    pub fn passes(&self, candidate: &[f64]) -> bool {
        self.accepted
            .iter()
            .all(|a| return_correlation(a, candidate) <= self.cutoff)
    }

    /// Adds a return series to the accepted set.
    pub fn accept(&mut self, series: Vec<f64>) {
        self.accepted.push(series);
    }

    /// The accepted return series.
    pub fn accepted(&self) -> &[Vec<f64>] {
        &self.accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_gate_accepts_anything() {
        let gate = CorrelationGate::paper();
        assert!(gate.passes(&[0.1, -0.2, 0.3]));
        assert_eq!(gate.max_correlation(&[1.0, 2.0]), f64::NEG_INFINITY);
    }

    #[test]
    fn rejects_positively_correlated() {
        let mut gate = CorrelationGate::paper();
        let base = vec![0.01, -0.02, 0.03, -0.01, 0.02, 0.0, 0.01];
        gate.accept(base.clone());
        assert!(!gate.passes(&base), "identical series must fail");
        let scaled: Vec<f64> = base.iter().map(|x| x * 3.0).collect();
        assert!(!gate.passes(&scaled), "scaled copy is perfectly correlated");
    }

    #[test]
    fn accepts_negatively_correlated() {
        let mut gate = CorrelationGate::paper();
        let base = vec![0.01, -0.02, 0.03, -0.01, 0.02, 0.0, 0.01];
        gate.accept(base.clone());
        let inverse: Vec<f64> = base.iter().map(|x| -x).collect();
        assert!(
            gate.passes(&inverse),
            "paper keeps strongly negative correlations"
        );
    }

    #[test]
    fn accepts_orthogonal() {
        let mut gate = CorrelationGate::new(0.15);
        gate.accept(vec![1.0, -1.0, 1.0, -1.0, 1.0, -1.0]);
        // Orthogonal square wave at half frequency.
        let cand = vec![1.0, 1.0, -1.0, -1.0, 1.0, 1.0];
        assert!(gate.max_correlation(&cand).abs() < 0.5);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn correlation_matrix_is_symmetric_with_unit_diagonal() {
        let series = vec![
            vec![0.1, 0.2, -0.1, 0.05],
            vec![-0.1, 0.0, 0.2, 0.1],
            vec![0.05, 0.05, 0.05, 0.1],
        ];
        let m = correlation_matrix(&series);
        for i in 0..3 {
            assert!((m[i][i] - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert_eq!(m[i][j], m[j][i]);
                assert!(m[i][j].abs() <= 1.0 + 1e-12);
            }
        }
    }
}
