//! Statistical metrics: Pearson/Spearman correlation, IC, Sharpe ratio.
//!
//! The panel metrics (IC family) consume flat [`CrossSections`] panels and
//! are allocation-free on the hot path: [`information_coefficient`] streams
//! the per-day correlations instead of collecting them, and the non-finite
//! masking runs in place rather than building filtered copies.

use crate::cross_sections::{joint_valid_days, CrossSections};

/// Trading days per year used for annualization (paper §5.3).
pub const TRADING_DAYS_PER_YEAR: f64 = 252.0;

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (ddof = 1); 0 when fewer than two points.
pub fn sample_std(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Sample Pearson correlation. Returns 0 when either side has zero
/// variance, is empty, or lengths mismatch — degenerate cross-sections
/// contribute nothing to the IC rather than poisoning it with NaN.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    if x.len() != y.len() || x.is_empty() {
        return 0.0;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..x.len() {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 || !(vx.is_finite() && vy.is_finite()) {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Pearson correlation of the entries where `x` is finite, computed in
/// place (no filtered copies). Equals [`pearson`] exactly — same
/// accumulation order — when every `x` entry is finite.
pub fn pearson_finite_masked(x: &[f64], y: &[f64]) -> f64 {
    if x.len() != y.len() || x.is_empty() {
        return 0.0;
    }
    let mut n = 0usize;
    let mut sx = 0.0;
    let mut sy = 0.0;
    for i in 0..x.len() {
        if x[i].is_finite() {
            n += 1;
            sx += x[i];
            sy += y[i];
        }
    }
    if n == 0 {
        return 0.0;
    }
    let mx = sx / n as f64;
    let my = sy / n as f64;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..x.len() {
        if x[i].is_finite() {
            let dx = x[i] - mx;
            let dy = y[i] - my;
            cov += dx * dy;
            vx += dx * dx;
            vy += dy * dy;
        }
    }
    if vx <= 0.0 || vy <= 0.0 || !(vx.is_finite() && vy.is_finite()) {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Fractional ranks in `[0, n-1]` with ties sharing their average rank.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0;
        for k in i..=j {
            out[idx[k]] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson on fractional ranks).
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    if x.len() != y.len() || x.len() < 2 {
        return 0.0;
    }
    pearson(&ranks(x), &ranks(y))
}

/// Daily cross-sectional Pearson correlations between predictions and
/// realized returns — the per-day terms of the paper's Eq. 1.
///
/// One entry per day valid in *both* panels, in day order. Days where a
/// prediction is non-finite for some stock are scored with those stocks
/// excluded.
pub fn daily_ic_series(preds: &CrossSections, rets: &CrossSections) -> Vec<f64> {
    joint_valid_days(preds, rets)
        .map(|d| pearson_finite_masked(preds.row(d), rets.row(d)))
        .collect()
}

/// Information Coefficient (paper Eq. 1): the mean over valid days of the
/// daily cross-sectional correlation. Streams the per-day terms —
/// allocation-free.
pub fn information_coefficient(preds: &CrossSections, rets: &CrossSections) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for d in joint_valid_days(preds, rets) {
        sum += pearson_finite_masked(preds.row(d), rets.row(d));
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Rank IC: mean daily Spearman correlation over valid days.
pub fn rank_information_coefficient(preds: &CrossSections, rets: &CrossSections) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for d in joint_valid_days(preds, rets) {
        sum += spearman(preds.row(d), rets.row(d));
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// IC information ratio: mean(daily IC) / std(daily IC). A stability
/// measure often reported alongside IC.
pub fn icir(preds: &CrossSections, rets: &CrossSections) -> f64 {
    let daily = daily_ic_series(preds, rets);
    let s = sample_std(&daily);
    if s == 0.0 {
        0.0
    } else {
        mean(&daily) / s
    }
}

/// Annualized Sharpe ratio with zero risk-free rate (paper §5.3):
/// `mean(Rp)/std(Rp) · sqrt(252)`. Returns 0 for constant or empty series.
pub fn sharpe_ratio(portfolio_returns: &[f64]) -> f64 {
    let m = mean(portfolio_returns);
    let s = sample_std(portfolio_returns);
    // Relative epsilon: a numerically-constant series has no real risk or
    // edge, so its Sharpe is reported as 0 rather than an fp artifact.
    if s <= 1e-12 * m.abs().max(1.0) {
        return 0.0;
    }
    m / s * TRADING_DAYS_PER_YEAR.sqrt()
}

/// Annualized mean return (arithmetic).
pub fn annualized_return(portfolio_returns: &[f64]) -> f64 {
    mean(portfolio_returns) * TRADING_DAYS_PER_YEAR
}

/// Annualized volatility.
pub fn annualized_vol(portfolio_returns: &[f64]) -> f64 {
    sample_std(portfolio_returns) * TRADING_DAYS_PER_YEAR.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 5.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 0.0]);
    }

    #[test]
    fn spearman_monotone_is_one() {
        let x = [1.0, 5.0, 2.0, 9.0];
        let y = [10.0, 500.0, 20.0, 900.0]; // same ordering, nonlinear
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ic_mixes_days() {
        let preds = CrossSections::from_rows(&[vec![1.0, 2.0, 3.0], vec![3.0, 2.0, 1.0]]);
        let rets = CrossSections::from_rows(&[vec![0.1, 0.2, 0.3], vec![0.1, 0.2, 0.3]]);
        // Day 0 corr = +1, day 1 corr = -1 -> IC = 0.
        assert!(information_coefficient(&preds, &rets).abs() < 1e-12);
    }

    #[test]
    fn ic_skips_non_finite_predictions() {
        let preds = CrossSections::from_rows(&[vec![1.0, f64::NAN, 3.0, 4.0]]);
        let rets = CrossSections::from_rows(&[vec![0.1, 9.0, 0.3, 0.4]]);
        let ic = information_coefficient(&preds, &rets);
        assert!(
            (ic - 1.0).abs() < 1e-9,
            "finite subset is perfectly correlated, got {ic}"
        );
    }

    #[test]
    fn ic_skips_invalid_days() {
        let mut preds = CrossSections::from_rows(&[vec![1.0, 2.0, 3.0], vec![3.0, 2.0, 1.0]]);
        let rets = CrossSections::from_rows(&[vec![0.1, 0.2, 0.3], vec![0.1, 0.2, 0.3]]);
        preds.invalidate_day(1); // drop the anti-correlated day
        assert!((information_coefficient(&preds, &rets) - 1.0).abs() < 1e-12);
        assert_eq!(daily_ic_series(&preds, &rets).len(), 1);
    }

    #[test]
    fn masked_pearson_matches_plain_when_finite() {
        let x = [0.3, -0.1, 0.7, 0.2, -0.5];
        let y = [0.1, 0.0, 0.4, 0.2, -0.2];
        assert_eq!(pearson(&x, &y), pearson_finite_masked(&x, &y));
    }

    #[test]
    fn sharpe_scales_with_sqrt_252() {
        let rets = [0.01, 0.02, 0.00, 0.015, 0.005];
        let daily = mean(&rets) / sample_std(&rets);
        assert!((sharpe_ratio(&rets) - daily * 252f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sharpe_invariant_to_scaling() {
        let rets = [0.01, -0.02, 0.03, 0.01, -0.005];
        let scaled: Vec<f64> = rets.iter().map(|r| r * 7.0).collect();
        assert!((sharpe_ratio(&rets) - sharpe_ratio(&scaled)).abs() < 1e-12);
    }

    #[test]
    fn sharpe_of_constant_series_is_zero() {
        assert_eq!(sharpe_ratio(&[0.01; 10]), 0.0);
        assert_eq!(sharpe_ratio(&[]), 0.0);
    }

    #[test]
    fn icir_positive_for_stable_signal() {
        let preds = CrossSections::from_rows(&vec![vec![1.0, 2.0, 3.0]; 5]);
        let rets = CrossSections::from_fn(5, 3, |d, s| 0.01 * (s + 1) as f64 + 0.01 * d as f64);
        assert!(icir(&preds, &rets) > 0.0 || sample_std(&daily_ic_series(&preds, &rets)) == 0.0);
    }
}
