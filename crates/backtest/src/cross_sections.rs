//! Flat day-major cross-section matrices.
//!
//! Prediction and label panels used to flow through the crates as
//! `Vec<Vec<f64>>` — one heap allocation per day, re-allocated for every
//! candidate alpha. [`CrossSections`] stores the same `n_days × n_stocks`
//! panel in **one contiguous buffer** with per-day row views, so
//!
//! * the evaluation hot path can reuse a single buffer across candidates
//!   (zero per-candidate allocations),
//! * day rows are cache-contiguous for the metric and portfolio kernels,
//! * a per-day **validity mask** lets an evaluator mark a day as "not
//!   computed" (e.g. the sweep aborted on a non-finite prediction) without
//!   copying or truncating — consumers simply skip invalid days.
//!
//! A day marked invalid is excluded from every metric; per-stock non-finite
//! values within a *valid* day are still handled value-wise by the
//! consumers (the portfolio treats those stocks as untradeable, the IC
//! masks them out), exactly as the nested-`Vec` code paths did.

/// A dense `n_days × n_stocks` panel in one contiguous day-major buffer,
/// with a per-day validity mask.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossSections {
    data: Vec<f64>,
    valid: Vec<bool>,
    n_days: usize,
    n_stocks: usize,
}

impl CrossSections {
    /// All-zero panel with every day valid.
    pub fn new(n_days: usize, n_stocks: usize) -> CrossSections {
        CrossSections {
            data: vec![0.0; n_days * n_stocks],
            valid: vec![true; n_days],
            n_days,
            n_stocks,
        }
    }

    /// Builds a panel by evaluating `f(day, stock)` for every cell.
    pub fn from_fn(
        n_days: usize,
        n_stocks: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> CrossSections {
        let mut cs = CrossSections::new(n_days, n_stocks);
        for d in 0..n_days {
            for s in 0..n_stocks {
                cs.data[d * n_stocks + s] = f(d, s);
            }
        }
        cs
    }

    /// Builds a panel from nested per-day rows (all rows must have equal
    /// length). Mostly useful for tests and non-hot-path callers.
    ///
    /// # Panics
    /// If the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> CrossSections {
        let n_days = rows.len();
        let n_stocks = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_days * n_stocks);
        for row in rows {
            assert_eq!(row.len(), n_stocks, "ragged cross-section rows");
            data.extend_from_slice(row);
        }
        CrossSections {
            data,
            valid: vec![true; n_days],
            n_days,
            n_stocks,
        }
    }

    /// Resizes to `n_days × n_stocks`, zeroes the contents, and marks every
    /// day valid — reusing the existing allocations (no heap traffic once
    /// the buffers have grown to their high-water mark).
    pub fn reset(&mut self, n_days: usize, n_stocks: usize) {
        self.data.clear();
        self.data.resize(n_days * n_stocks, 0.0);
        self.valid.clear();
        self.valid.resize(n_days, true);
        self.n_days = n_days;
        self.n_stocks = n_stocks;
    }

    /// Number of days (rows).
    pub fn n_days(&self) -> usize {
        self.n_days
    }

    /// Number of stocks (columns).
    pub fn n_stocks(&self) -> usize {
        self.n_stocks
    }

    /// True when the panel holds no days.
    pub fn is_empty(&self) -> bool {
        self.n_days == 0
    }

    /// One day's cross-section.
    #[inline]
    pub fn row(&self, day: usize) -> &[f64] {
        &self.data[day * self.n_stocks..(day + 1) * self.n_stocks]
    }

    /// Mutable view of one day's cross-section.
    #[inline]
    pub fn row_mut(&mut self, day: usize) -> &mut [f64] {
        &mut self.data[day * self.n_stocks..(day + 1) * self.n_stocks]
    }

    /// Whether `day` holds computed data.
    #[inline]
    pub fn day_valid(&self, day: usize) -> bool {
        self.valid[day]
    }

    /// Marks `day` as not computed; metrics skip it.
    pub fn invalidate_day(&mut self, day: usize) {
        self.valid[day] = false;
    }

    /// Sets one day's validity flag explicitly (the wire decoder restores
    /// masks carried in a predictions frame with this).
    pub fn set_day_validity(&mut self, day: usize, valid: bool) {
        self.valid[day] = valid;
    }

    /// The per-day validity mask, day-major — the export side of the wire
    /// protocol's predictions frame.
    pub fn validity(&self) -> &[bool] {
        &self.valid
    }

    /// Copies every row (and its validity flag) of `src` into `self`
    /// starting at row `first_row`. This is the serving router's merge
    /// primitive: per-shard prediction blocks concatenate into one panel
    /// without intermediate allocations.
    ///
    /// # Panics
    /// If the stock counts differ or `src` does not fit at `first_row`.
    pub fn copy_rows_from(&mut self, first_row: usize, src: &CrossSections) {
        assert_eq!(
            self.n_stocks, src.n_stocks,
            "row widths must match to merge blocks"
        );
        assert!(
            first_row + src.n_days <= self.n_days,
            "block of {} rows does not fit at row {first_row} of {}",
            src.n_days,
            self.n_days
        );
        let k = self.n_stocks;
        self.data[first_row * k..(first_row + src.n_days) * k].copy_from_slice(&src.data);
        self.valid[first_row..first_row + src.n_days].copy_from_slice(&src.valid);
    }

    /// Number of valid days.
    pub fn n_valid_days(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }

    /// True when every day is valid.
    pub fn all_days_valid(&self) -> bool {
        self.valid.iter().all(|&v| v)
    }

    /// Iterates `(day, row)` over the valid days.
    pub fn valid_rows(&self) -> impl Iterator<Item = (usize, &[f64])> {
        self.valid
            .iter()
            .enumerate()
            .filter(|(_, &v)| v)
            .map(|(d, _)| (d, self.row(d)))
    }

    /// The whole day-major buffer (valid and invalid days alike).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat day-major storage (`n_days × n_stocks`), for writers
    /// that fill whole panels row-block-wise (e.g. the serving layer).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Copies the panel back out as nested per-day rows (diagnostics).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.n_days).map(|d| self.row(d).to_vec()).collect()
    }
}

/// Days usable for a pairwise metric over two aligned panels: valid in
/// both. Panics on shape mismatch — the two panels must describe the same
/// days and stocks.
pub(crate) fn joint_valid_days<'a>(
    a: &'a CrossSections,
    b: &'a CrossSections,
) -> impl Iterator<Item = usize> + 'a {
    assert_eq!(a.n_days, b.n_days, "panel day counts must align");
    assert_eq!(a.n_stocks, b.n_stocks, "panel stock counts must align");
    (0..a.n_days).filter(move |&d| a.valid[d] && b.valid[d])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_contiguous_and_disjoint() {
        let mut cs = CrossSections::new(3, 4);
        cs.row_mut(1).fill(7.0);
        assert!(cs.row(0).iter().all(|&x| x == 0.0));
        assert!(cs.row(1).iter().all(|&x| x == 7.0));
        assert!(cs.row(2).iter().all(|&x| x == 0.0));
        assert_eq!(cs.as_slice().len(), 12);
    }

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let cs = CrossSections::from_rows(&rows);
        assert_eq!(cs.n_days(), 3);
        assert_eq!(cs.n_stocks(), 2);
        assert_eq!(cs.to_rows(), rows);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        CrossSections::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn from_fn_fills_cells() {
        let cs = CrossSections::from_fn(2, 3, |d, s| (d * 10 + s) as f64);
        assert_eq!(cs.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(cs.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn validity_mask() {
        let mut cs = CrossSections::new(4, 2);
        assert!(cs.all_days_valid());
        cs.invalidate_day(2);
        assert!(!cs.day_valid(2));
        assert_eq!(cs.n_valid_days(), 3);
        let days: Vec<usize> = cs.valid_rows().map(|(d, _)| d).collect();
        assert_eq!(days, vec![0, 1, 3]);
    }

    #[test]
    fn reset_reuses_capacity_and_revalidates() {
        let mut cs = CrossSections::new(5, 6);
        cs.row_mut(4).fill(9.0);
        cs.invalidate_day(3);
        let cap = cs.data.capacity();
        cs.reset(3, 6);
        assert_eq!(cs.n_days(), 3);
        assert!(cs.all_days_valid());
        assert!(cs.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(cs.data.capacity(), cap, "shrinking must not reallocate");
        cs.reset(5, 6);
        assert_eq!(cs.data.capacity(), cap, "regrowing within capacity");
        assert!(cs.row(4).iter().all(|&x| x == 0.0), "stale data cleared");
    }

    #[test]
    fn copy_rows_from_merges_blocks_and_masks() {
        let mut dst = CrossSections::new(5, 3);
        let mut a = CrossSections::from_fn(2, 3, |d, s| (10 * d + s) as f64);
        a.invalidate_day(1);
        let b = CrossSections::from_fn(3, 3, |d, s| (100 * d + s) as f64);
        dst.copy_rows_from(0, &a);
        dst.copy_rows_from(2, &b);
        assert_eq!(dst.row(0), a.row(0));
        assert_eq!(dst.row(1), a.row(1));
        assert_eq!(dst.row(4), b.row(2));
        assert_eq!(dst.validity(), &[true, false, true, true, true]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn copy_rows_from_rejects_overflow() {
        let mut dst = CrossSections::new(2, 3);
        let src = CrossSections::new(2, 3);
        dst.copy_rows_from(1, &src);
    }

    #[test]
    fn set_day_validity_round_trips() {
        let mut cs = CrossSections::new(3, 1);
        cs.set_day_validity(1, false);
        assert_eq!(cs.validity(), &[true, false, true]);
        cs.set_day_validity(1, true);
        assert!(cs.all_days_valid());
    }

    #[test]
    fn joint_valid_days_intersects_masks() {
        let mut a = CrossSections::new(4, 1);
        let mut b = CrossSections::new(4, 1);
        a.invalidate_day(0);
        b.invalidate_day(3);
        let days: Vec<usize> = joint_valid_days(&a, &b).collect();
        assert_eq!(days, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "day counts")]
    fn joint_valid_days_checks_shape() {
        let a = CrossSections::new(2, 1);
        let b = CrossSections::new(3, 1);
        let _ = joint_valid_days(&a, &b).count();
    }
}
