//! NAV curves and equity statistics.
//!
//! The paper defines `NAV_t = V_l + V_s − C_t` and
//! `R_p = (NAV_t − NAV_{t−1}) / NAV_{t−1}`; compounding the daily
//! portfolio returns reproduces the NAV path up to the initial scale.

use crate::metrics::{annualized_return, annualized_vol, sharpe_ratio};

/// NAV curve from daily returns, starting at 1.0. `nav[0]` is the initial
/// NAV; `nav[t]` reflects the return of day `t-1`.
pub fn nav_curve(returns: &[f64]) -> Vec<f64> {
    let mut nav = Vec::with_capacity(returns.len() + 1);
    let mut x = 1.0;
    nav.push(x);
    for r in returns {
        x *= 1.0 + r;
        nav.push(x);
    }
    nav
}

/// Per-day drawdown (fraction below the running peak, ≥ 0).
pub fn drawdown_series(nav: &[f64]) -> Vec<f64> {
    let mut peak = f64::NEG_INFINITY;
    nav.iter()
        .map(|&x| {
            peak = peak.max(x);
            if peak > 0.0 {
                (peak - x) / peak
            } else {
                0.0
            }
        })
        .collect()
}

/// Maximum drawdown of a NAV curve.
pub fn max_drawdown(nav: &[f64]) -> f64 {
    drawdown_series(nav).into_iter().fold(0.0, f64::max)
}

/// Summary statistics of a daily portfolio-return series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquityStats {
    /// Total compounded return over the period.
    pub total_return: f64,
    /// Annualized arithmetic mean return.
    pub annualized_return: f64,
    /// Annualized volatility.
    pub annualized_vol: f64,
    /// Annualized Sharpe ratio (Rf = 0).
    pub sharpe: f64,
    /// Maximum drawdown of the NAV curve.
    pub max_drawdown: f64,
    /// Number of days.
    pub days: usize,
}

impl EquityStats {
    /// Computes all statistics from a daily return series.
    pub fn from_returns(returns: &[f64]) -> EquityStats {
        let nav = nav_curve(returns);
        EquityStats {
            total_return: nav.last().copied().unwrap_or(1.0) - 1.0,
            annualized_return: annualized_return(returns),
            annualized_vol: annualized_vol(returns),
            sharpe: sharpe_ratio(returns),
            max_drawdown: max_drawdown(&nav),
            days: returns.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nav_compounds() {
        let nav = nav_curve(&[0.1, -0.5, 1.0]);
        assert_eq!(nav.len(), 4);
        assert!((nav[1] - 1.1).abs() < 1e-12);
        assert!((nav[2] - 0.55).abs() < 1e-12);
        assert!((nav[3] - 1.1).abs() < 1e-12);
    }

    #[test]
    fn drawdown_of_monotone_curve_is_zero() {
        let nav = nav_curve(&[0.01; 20]);
        assert_eq!(max_drawdown(&nav), 0.0);
    }

    #[test]
    fn drawdown_catches_crash() {
        let nav = vec![1.0, 2.0, 1.0, 3.0];
        assert!((max_drawdown(&nav) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_wire_through() {
        let rets = [0.01, -0.02, 0.03, 0.0, 0.01];
        let s = EquityStats::from_returns(&rets);
        assert_eq!(s.days, 5);
        assert!((s.sharpe - sharpe_ratio(&rets)).abs() < 1e-12);
        let nav = nav_curve(&rets);
        assert!((s.total_return - (nav[5] - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_returns() {
        let s = EquityStats::from_returns(&[]);
        assert_eq!(s.total_return, 0.0);
        assert_eq!(s.days, 0);
        assert_eq!(s.sharpe, 0.0);
    }
}
