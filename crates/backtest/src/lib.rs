//! Long-short portfolio backtesting and evaluation metrics for AlphaEvolve.
//!
//! Implements §5.3 of the paper:
//!
//! * the **long-short trading strategy** — long the stocks with the top-k
//!   predicted returns, short the bottom-k, balanced against a cash
//!   position ([`portfolio`]);
//! * the **Sharpe ratio** of the resulting portfolio-return series,
//!   annualized over 252 trading days with a zero risk-free rate
//!   ([`metrics::sharpe_ratio`]);
//! * the **Information Coefficient** (Eq. 1) — the mean over days of the
//!   cross-sectional Pearson correlation between predictions and realized
//!   returns ([`metrics::information_coefficient`]);
//! * the **portfolio-return correlation** used for the 15% weak-correlation
//!   cutoff between alphas ([`correlation`]).
//!
//! The crate is deliberately free of any dependency on the alpha DSL: it
//! consumes plain prediction/return panels ([`CrossSections`] — flat
//! day-major matrices with a per-day validity mask) so the GP and neural
//! baselines are scored by exactly the same code path, and the evaluation
//! hot path runs allocation-free against reusable buffers.
//!
//! ```
//! use alphaevolve_backtest::{
//!     portfolio::{LongShortConfig, long_short_returns}, metrics, CrossSections,
//! };
//!
//! // Two days, four stocks. Predictions rank stock 3 highest, stock 0 lowest.
//! let preds = CrossSections::from_rows(&[
//!     vec![-0.9, 0.1, 0.2, 0.8],
//!     vec![-0.5, 0.0, 0.1, 0.6],
//! ]);
//! let rets = CrossSections::from_rows(&[
//!     vec![-0.02, 0.00, 0.01, 0.03],
//!     vec![-0.01, 0.00, 0.00, 0.02],
//! ]);
//! let cfg = LongShortConfig { k_long: 1, k_short: 1 };
//! let rp = long_short_returns(&preds, &rets, &cfg);
//! assert!(rp.iter().all(|r| *r > 0.0)); // long winners, short losers
//! let ic = metrics::information_coefficient(&preds, &rets);
//! assert!(ic > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation;
pub mod cross_sections;
pub mod equity;
pub mod metrics;
pub mod portfolio;
pub mod report;

pub use correlation::return_correlation;
pub use cross_sections::CrossSections;
pub use equity::EquityStats;
pub use metrics::{information_coefficient, sharpe_ratio};
pub use portfolio::{long_short_returns, long_short_returns_into, LongShortConfig};
