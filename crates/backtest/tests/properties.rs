//! Property-based tests of the metric and portfolio invariants.

use proptest::prelude::*;

use alphaevolve_backtest::correlation::{correlation_matrix, CorrelationGate};
use alphaevolve_backtest::equity::{max_drawdown, nav_curve};
use alphaevolve_backtest::metrics::{pearson, ranks, sharpe_ratio, spearman};
use alphaevolve_backtest::portfolio::{positions, single_day_return, LongShortConfig};

fn vecs(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-0.2f64..0.2, len)
}

proptest! {
    /// Pearson correlation is bounded, symmetric, and scale-invariant.
    #[test]
    fn pearson_properties(x in vecs(2..40), scale in 0.1f64..10.0) {
        let y: Vec<f64> = x.iter().rev().copied().collect();
        let r = pearson(&x, &y);
        prop_assert!(r.abs() <= 1.0 + 1e-9);
        prop_assert!((r - pearson(&y, &x)).abs() < 1e-12, "symmetry");
        let xs: Vec<f64> = x.iter().map(|v| v * scale).collect();
        prop_assert!((pearson(&xs, &y) - r).abs() < 1e-9, "scale invariance");
    }

    /// Spearman only depends on ranks: any strictly monotone transform of
    /// the inputs leaves it unchanged.
    #[test]
    fn spearman_monotone_invariance(x in vecs(3..30)) {
        let y: Vec<f64> = x.iter().map(|v| v + 0.01).collect();
        let a = spearman(&x, &y);
        let fx: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        let b = spearman(&fx, &y);
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// Fractional ranks are a permutation-equivariant map into [0, n-1].
    #[test]
    fn ranks_bounds_and_sum(x in vecs(1..30)) {
        let r = ranks(&x);
        let n = x.len() as f64;
        for &v in &r {
            prop_assert!((0.0..=n - 1.0).contains(&v));
        }
        // Ranks (with average ties) always sum to n(n-1)/2.
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - n * (n - 1.0) / 2.0).abs() < 1e-9);
    }

    /// Sharpe is invariant under positive scaling of the return series.
    #[test]
    fn sharpe_scale_invariance(x in vecs(3..50), scale in 0.01f64..100.0) {
        let scaled: Vec<f64> = x.iter().map(|v| v * scale).collect();
        let a = sharpe_ratio(&x);
        let b = sharpe_ratio(&scaled);
        prop_assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
    }

    /// A dollar-neutral equal-book portfolio is immune to market-wide
    /// shifts in returns.
    #[test]
    fn long_short_market_neutrality(
        preds in vecs(6..30),
        rets_seed in vecs(6..30),
        shift in -0.1f64..0.1,
        k in 1usize..4,
    ) {
        let n = preds.len().min(rets_seed.len());
        let preds = &preds[..n];
        let rets = &rets_seed[..n];
        let cfg = LongShortConfig { k_long: k, k_short: k };
        let base = single_day_return(preds, rets, &cfg);
        let shifted: Vec<f64> = rets.iter().map(|r| r + shift).collect();
        let moved = single_day_return(preds, &shifted, &cfg);
        prop_assert!((base - moved).abs() < 1e-12);
    }

    /// Books never overlap in size beyond the universe and never contain
    /// non-finite-prediction stocks.
    #[test]
    fn positions_well_formed(preds in vecs(1..40), k in 1usize..60) {
        let cfg = LongShortConfig { k_long: k, k_short: k };
        let p = positions(&preds, &cfg);
        prop_assert!(p.long.len() <= preds.len());
        prop_assert!(p.short.len() <= preds.len());
        for &i in p.long.iter().chain(&p.short) {
            prop_assert!(preds[i].is_finite());
        }
    }

    /// NAV compounding: nav[t+1]/nav[t] - 1 recovers the return series.
    #[test]
    fn nav_recovers_returns(rets in vecs(1..50)) {
        let nav = nav_curve(&rets);
        for (t, &r) in rets.iter().enumerate() {
            prop_assert!((nav[t + 1] / nav[t] - 1.0 - r).abs() < 1e-9);
        }
        prop_assert!(max_drawdown(&nav) >= 0.0);
    }

    /// Correlation matrices are symmetric with a unit diagonal, and the
    /// gate accepts exactly the series whose max correlation is below the
    /// cutoff.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn gate_consistent_with_matrix(series in prop::collection::vec(vecs(8..9), 2..5)) {
        let m = correlation_matrix(&series);
        for i in 0..m.len() {
            prop_assert!((m[i][i] - 1.0).abs() < 1e-9);
            for j in 0..m.len() {
                prop_assert!((m[i][j] - m[j][i]).abs() < 1e-12);
            }
        }
        let mut gate = CorrelationGate::new(0.15);
        for s in &series[..series.len() - 1] {
            gate.accept(s.clone());
        }
        let candidate = &series[series.len() - 1];
        let max_corr = gate.max_correlation(candidate);
        prop_assert_eq!(gate.passes(candidate), max_corr <= 0.15);
    }
}

// ---------------------------------------------------------------------------
// Flat CrossSections vs the nested-Vec reference implementations.
//
// The library's panel metrics run on flat `CrossSections`; these reference
// functions are the original nested-`Vec<Vec<f64>>` implementations, kept
// here to pin the refactor: on any input (including non-finite predictions)
// the flat and nested paths must agree bitwise.

mod nested_reference {
    use alphaevolve_backtest::metrics::{mean, pearson};
    use alphaevolve_backtest::portfolio::{single_day_return, LongShortConfig};

    pub(crate) fn daily_ic_series(preds: &[Vec<f64>], rets: &[Vec<f64>]) -> Vec<f64> {
        preds
            .iter()
            .zip(rets.iter())
            .map(|(p, r)| {
                if p.iter().all(|x| x.is_finite()) {
                    pearson(p, r)
                } else {
                    let (fp, fr): (Vec<f64>, Vec<f64>) = p
                        .iter()
                        .zip(r.iter())
                        .filter(|(x, _)| x.is_finite())
                        .map(|(&x, &y)| (x, y))
                        .unzip();
                    pearson(&fp, &fr)
                }
            })
            .collect()
    }

    pub(crate) fn information_coefficient(preds: &[Vec<f64>], rets: &[Vec<f64>]) -> f64 {
        mean(&daily_ic_series(preds, rets))
    }

    pub(crate) fn long_short_returns(
        preds: &[Vec<f64>],
        rets: &[Vec<f64>],
        cfg: &LongShortConfig,
    ) -> Vec<f64> {
        preds
            .iter()
            .zip(rets.iter())
            .map(|(p, r)| single_day_return(p, r, cfg))
            .collect()
    }
}

/// Chops flat generated data into a `days × stocks` nested panel,
/// replacing entries with NaN where `nan_mask` says so (the shim has no
/// union strategies, so non-finite injection is mask-driven).
fn nested_panel(data: &[f64], nan_mask: &[u8], days: usize, stocks: usize) -> Vec<Vec<f64>> {
    (0..days)
        .map(|d| {
            (0..stocks)
                .map(|s| {
                    let i = d * stocks + s;
                    if nan_mask[i] == 0 {
                        f64::NAN
                    } else {
                        data[i]
                    }
                })
                .collect()
        })
        .collect()
}

proptest! {
    /// Flat IC / daily IC series / long-short returns all equal the nested
    /// reference bitwise, even with NaN predictions sprinkled in.
    #[test]
    fn flat_panel_metrics_match_nested_reference(
        days in 1usize..8,
        stocks in 2usize..12,
        pred_data in prop::collection::vec(-0.5f64..0.5, 96),
        ret_data in prop::collection::vec(-0.1f64..0.1, 96),
        nan_mask in prop::collection::vec(0u8..10, 96),
        k in 1usize..6,
    ) {
        use alphaevolve_backtest::{
            long_short_returns, long_short_returns_into, metrics, CrossSections,
        };
        let preds = nested_panel(&pred_data, &nan_mask, days, stocks);
        let rets = nested_panel(&ret_data, &[1; 96], days, stocks);
        let fp = CrossSections::from_rows(&preds);
        let fr = CrossSections::from_rows(&rets);

        let flat_ic = metrics::information_coefficient(&fp, &fr);
        let nested_ic = nested_reference::information_coefficient(&preds, &rets);
        prop_assert_eq!(flat_ic, nested_ic, "IC diverged from the nested reference");
        prop_assert_eq!(
            metrics::daily_ic_series(&fp, &fr),
            nested_reference::daily_ic_series(&preds, &rets)
        );

        let cfg = LongShortConfig { k_long: k, k_short: k };
        let flat_ls = long_short_returns(&fp, &fr, &cfg);
        let nested_ls = nested_reference::long_short_returns(&preds, &rets, &cfg);
        prop_assert_eq!(&flat_ls, &nested_ls);
        // The into-variant with reused scratch gives the same series.
        let mut order = Vec::new();
        let mut out = vec![99.0; 3]; // stale contents must be cleared
        long_short_returns_into(&fp, &fr, &cfg, &mut order, &mut out);
        prop_assert_eq!(&out, &nested_ls);
    }

    /// Return-series correlation (the gate's metric) is unchanged whether
    /// the series are read out of a flat panel's rows or nested Vecs.
    #[test]
    fn flat_correlation_matches_nested_reference(
        a in vecs(6..7),
        b in vecs(6..7),
    ) {
        use alphaevolve_backtest::{return_correlation, CrossSections};
        let flat = CrossSections::from_rows(&[a.clone(), b.clone()]);
        prop_assert_eq!(
            return_correlation(flat.row(0), flat.row(1)),
            return_correlation(&a, &b)
        );
        prop_assert_eq!(return_correlation(flat.row(0), flat.row(0)), return_correlation(&a, &a));
    }
}
