//! The serving contract: a warm [`AlphaServer`] request returns, per
//! program, exactly the bits a fresh compile → train → predict evaluation
//! of that day would produce — while doing one input load per batch
//! instead of one per program.

use std::sync::Arc;

use alphaevolve_backtest::CrossSections;
use alphaevolve_core::{
    compile, init, AlphaConfig, AlphaProgram, ColumnarInterpreter, EvalOptions, GroupIndex,
    Instruction, Op,
};
use alphaevolve_market::{
    features::FeatureSet, generator::MarketConfig, Dataset, DayMajorPanel, SplitSpec,
};
use alphaevolve_store::archive::{AlphaArchive, ArchivedAlpha};
use alphaevolve_store::server::AlphaServer;

fn dataset(seed: u64, n_stocks: usize) -> Arc<Dataset> {
    let md = MarketConfig {
        n_stocks,
        n_days: 130,
        seed,
        ..Default::default()
    }
    .generate();
    Arc::new(Dataset::build(&md, &FeatureSet::paper(), SplitSpec::paper_ratios()).unwrap())
}

/// A stochastic alpha (predict-time RNG draws) for the RNG-restore path.
fn stochastic_alpha() -> AlphaProgram {
    AlphaProgram {
        setup: vec![Instruction::new(Op::MGauss, 0, 0, 1, [0.0, 0.5], [0; 2])],
        predict: vec![
            Instruction::new(Op::VUniform, 0, 0, 2, [-0.1, 0.1], [0; 2]),
            Instruction::new(Op::MatVec, 1, 2, 3, [0.0; 2], [0; 2]),
            Instruction::new(Op::VMean, 3, 0, 2, [0.0; 2], [0; 2]),
            Instruction::new(Op::MMean, 0, 0, 4, [0.0; 2], [0; 2]),
            Instruction::new(Op::SAdd, 2, 4, 1, [0.0; 2], [0; 2]),
        ],
        update: vec![Instruction::new(Op::SGauss, 0, 0, 5, [0.0, 1.0], [0; 2])],
    }
}

/// An alpha whose predict clobbers the input matrix — the server must
/// reload `m0` for whoever follows it in the batch.
fn input_clobbering_alpha() -> AlphaProgram {
    AlphaProgram {
        setup: vec![Instruction::nop()],
        predict: vec![
            Instruction::new(Op::MAbs, 0, 0, 0, [0.0; 2], [0; 2]),
            Instruction::new(Op::MMean, 0, 0, 1, [0.0; 2], [0; 2]),
        ],
        update: vec![Instruction::nop()],
    }
}

fn batch(cfg: &AlphaConfig) -> Vec<(String, AlphaProgram)> {
    vec![
        ("expert".into(), init::domain_expert(cfg)),
        ("clobber".into(), input_clobbering_alpha()),
        ("nn".into(), init::two_layer_nn(cfg)),
        ("reversal".into(), init::industry_reversal(cfg)),
        ("stochastic".into(), stochastic_alpha()),
        ("momentum".into(), init::momentum(cfg)),
    ]
}

/// The reference: a fresh interpreter per (program, day) — reset, setup,
/// full training sweep (when stateful), then predict exactly that day.
fn reference_prediction(
    cfg: &AlphaConfig,
    ds: &Dataset,
    panel: &DayMajorPanel,
    groups: &GroupIndex,
    opts: &EvalOptions,
    prog: &AlphaProgram,
    day: usize,
) -> Vec<f64> {
    let compiled = compile(prog, cfg, ds.n_stocks());
    let mut interp = ColumnarInterpreter::new(cfg, ds, panel, groups, opts.seed);
    interp.run_setup(&compiled);
    if alphaevolve_core::liveness(prog).stateful {
        for _ in 0..opts.train_epochs {
            for d in ds.train_days() {
                interp.train_day(&compiled, d, opts.run_update);
            }
        }
    }
    let mut out = vec![0.0; ds.n_stocks()];
    interp.predict_day(&compiled, day, &mut out);
    out
}

#[test]
fn served_bits_equal_fresh_evaluation_bits() {
    let cfg = AlphaConfig::default();
    let opts = EvalOptions::default();
    let ds = dataset(42, 14);
    let panel = DayMajorPanel::from_panel(ds.panel());
    let groups = GroupIndex::from_universe(ds.universe());
    let programs = batch(&cfg);
    let server = AlphaServer::new(cfg, &opts, Arc::clone(&ds), programs.clone());

    let mut arena = server.arena();
    let mut plane = CrossSections::new(0, 0);
    let days: Vec<usize> = ds.valid_days().chain(ds.test_days()).step_by(5).collect();
    for &day in &days {
        server.serve_day_into(&mut arena, day, &mut plane);
        assert_eq!(plane.n_days(), programs.len());
        for (row, (name, prog)) in programs.iter().enumerate() {
            let reference = reference_prediction(&cfg, &ds, &panel, &groups, &opts, prog, day);
            for (s, (a, b)) in plane.row(row).iter().zip(&reference).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "alpha `{name}` day {day} stock {s}: served {a} != reference {b}"
                );
            }
        }
    }
}

#[test]
fn repeated_requests_are_deterministic() {
    // Stateless-per-request serving: the same day twice (with a recurrent
    // and a stochastic alpha in the batch) yields identical bits.
    let cfg = AlphaConfig::default();
    let ds = dataset(7, 10);
    let server = AlphaServer::new(cfg, &EvalOptions::default(), Arc::clone(&ds), batch(&cfg));
    let day = ds.valid_days().start + 3;
    let mut arena = server.arena();
    let (mut a, mut b) = (CrossSections::new(0, 0), CrossSections::new(0, 0));
    server.serve_day_into(&mut arena, day, &mut a);
    // Serve other days in between to dirty the arena.
    let mut scratch = CrossSections::new(0, 0);
    for d in ds.test_days().take(4) {
        server.serve_day_into(&mut arena, d, &mut scratch);
    }
    server.serve_day_into(&mut arena, day, &mut b);
    assert_eq!(a.as_slice(), b.as_slice());
}

#[test]
fn parallel_serving_matches_sequential() {
    let cfg = AlphaConfig::default();
    let ds = dataset(9, 12);
    let server = AlphaServer::new(cfg, &EvalOptions::default(), Arc::clone(&ds), batch(&cfg));
    let day = ds.test_days().start;
    let sequential = server.serve_day(day);
    for workers in [1, 2, 3, 8] {
        let parallel = server.serve_day_parallel(day, workers);
        assert_eq!(
            sequential.as_slice(),
            parallel.as_slice(),
            "{workers}-worker serve diverged"
        );
    }
}

#[test]
fn from_archive_rejects_foreign_feature_sets() {
    let cfg = AlphaConfig::default();
    let ds = dataset(11, 10);
    let features = FeatureSet::paper();
    let mut archive = AlphaArchive::new(4);
    let outcome = archive.admit(ArchivedAlpha {
        name: "alien".into(),
        program: init::domain_expert(&cfg),
        fingerprint: 1,
        ic: 0.1,
        val_returns: vec![0.01, -0.02, 0.03, 0.0, 0.01],
        train_days: (30, 90),
        feature_set_id: 0xDEAD_BEEF, // not the dataset's recipe
    });
    assert!(outcome.admitted());
    let err = AlphaServer::from_archive(&archive, cfg, &EvalOptions::default(), ds, &features);
    assert!(err.is_err(), "foreign feature-set id must be refused");
    let msg = err.err().unwrap().to_string();
    assert!(msg.contains("alien"), "error names the offender: {msg}");
}
