//! Property tests of the codec's exactness guarantee: random archives and
//! checkpoints survive save → load **bitwise** — every program
//! instruction, fingerprint, fitness bit, and RNG state word.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use alphaevolve_core::evolution::{Budget, EvolutionCheckpoint, EvolutionConfig};
use alphaevolve_core::{init, AlphaConfig, AlphaProgram, BestAlpha, Individual, SearchStats};
use alphaevolve_store::archive::{AlphaArchive, ArchivedAlpha};
use alphaevolve_store::checkpoint::{checkpoint_from_bytes, checkpoint_to_bytes};

fn random_program(seed: u64) -> AlphaProgram {
    let cfg = AlphaConfig::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    let sizes = [
        1 + (seed % 5) as usize,
        2 + (seed % 7) as usize,
        1 + (seed % 4) as usize,
    ];
    init::random_alpha(&cfg, &mut rng, sizes[0], sizes[1], sizes[2])
}

/// Orthogonal sinusoid return series (distinct frequencies), so random
/// entries actually pass the correlation gate and archives grow.
fn returns(freq: u64, n: usize, amp: f64) -> Vec<f64> {
    (0..n)
        .map(|i| (std::f64::consts::TAU * (freq % 23 + 1) as f64 * i as f64 / n as f64).sin() * amp)
        .collect()
}

/// An f64 from raw bits, steering clear of nothing: NaNs with payloads,
/// infinities, subnormals — the codec must carry them all.
fn weird_f64(bits: u64) -> f64 {
    f64::from_bits(bits)
}

fn assert_archives_bitwise_equal(a: &AlphaArchive, b: &AlphaArchive) {
    assert_eq!(a.capacity(), b.capacity());
    assert_eq!(a.cutoff().to_bits(), b.cutoff().to_bits());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.entries().iter().zip(b.entries()) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.program, y.program, "program of `{}` changed", x.name);
        assert_eq!(x.fingerprint, y.fingerprint);
        assert_eq!(x.ic.to_bits(), y.ic.to_bits(), "IC bits of `{}`", x.name);
        assert_eq!(x.val_returns.len(), y.val_returns.len());
        for (p, q) in x.val_returns.iter().zip(&y.val_returns) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        assert_eq!(x.train_days, y.train_days);
        assert_eq!(x.feature_set_id, y.feature_set_id);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random archives — random programs, fingerprints, weird IC bit
    /// patterns, varying return-series lengths — round-trip bitwise
    /// through the framed codec.
    #[test]
    fn archives_round_trip_bitwise(
        seed in any::<u64>(),
        n_candidates in 1usize..8,
        capacity in 1usize..6,
        ic_bits in any::<u64>(),
    ) {
        let mut archive = AlphaArchive::with_cutoff(capacity, 0.5);
        for i in 0..n_candidates {
            let s = seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let _ = archive.admit(ArchivedAlpha {
                name: format!("alpha_{i}"),
                program: random_program(s),
                fingerprint: s,
                ic: if i == 0 { weird_f64(ic_bits) } else { (s % 1000) as f64 / 1e4 },
                val_returns: returns(s, 40 + (s % 30) as usize, 0.01),
                train_days: (s % 100, s % 100 + 60),
                feature_set_id: s.rotate_left(17),
            });
        }
        let reloaded = AlphaArchive::from_bytes(&archive.to_bytes()).unwrap();
        assert_archives_bitwise_equal(&archive, &reloaded);

        // A second round trip is a fixed point (save → load → save is
        // byte-identical): the canonical-bytes property.
        prop_assert_eq!(archive.to_bytes(), reloaded.to_bytes());
    }

    /// `mine → archive → reload → extend`: admission behaves identically
    /// on the reloaded archive (the gate is rebuilt from the stored
    /// return series, not lost).
    #[test]
    fn reloaded_archives_extend_like_originals(seed in any::<u64>()) {
        let mut original = AlphaArchive::new(8);
        for i in 0..3u64 {
            let s = seed ^ i;
            original.admit(ArchivedAlpha {
                name: format!("round_{i}"),
                program: random_program(s),
                fingerprint: s | 1 << 63,
                ic: 0.1 + i as f64 / 100.0,
                val_returns: returns(i * 3 + 1, 50, 0.01),
                train_days: (30, 90),
                feature_set_id: 7,
            });
        }
        let mut reloaded = AlphaArchive::from_bytes(&original.to_bytes()).unwrap();
        // The same new candidate must get the same verdict from both.
        let candidate = || ArchivedAlpha {
            name: "next".into(),
            program: random_program(seed ^ 0xABCD),
            fingerprint: seed ^ 0xABCD,
            ic: 0.2,
            val_returns: returns(11, 50, 0.02),
            train_days: (30, 90),
            feature_set_id: 7,
        };
        let a = original.admit(candidate());
        let b = reloaded.admit(candidate());
        prop_assert_eq!(a, b);
        assert_archives_bitwise_equal(&original, &reloaded);
    }

    /// Random checkpoints round-trip bitwise through the framed codec.
    #[test]
    fn checkpoints_round_trip_bitwise(
        seed in any::<u64>(),
        n_pop in 0usize..6,
        n_cache in 0usize..10,
        ic_bits in any::<u64>(),
        rng_word in 1u64..u64::MAX,
    ) {
        let ckpt = EvolutionCheckpoint {
            config: EvolutionConfig {
                population_size: 1 + (seed % 50) as usize,
                tournament_size: 1 + (seed % 10) as usize,
                budget: if seed.is_multiple_of(2) {
                    Budget::Searched((seed % 10_000) as usize)
                } else {
                    Budget::WallTime(std::time::Duration::new(seed % 4000, (seed % 1_000_000) as u32))
                },
                seed,
                workers: 1,
                ..Default::default()
            },
            stats: SearchStats {
                searched: (seed % 999) as usize,
                evaluated: (seed % 500) as usize,
                redundant: (seed % 300) as usize,
                cache_hits: (seed % 100) as usize,
                invalid: (seed % 10) as usize,
                gate_rejected: (seed % 7) as usize,
                static_rejected: (seed % 13) as usize,
                folded: (seed % 41) as usize,
            },
            elapsed: std::time::Duration::new(seed % 100_000, (seed % 999_999_999) as u32),
            rng: [rng_word, seed | 1, seed.rotate_left(7) | 2, !seed | 4],
            population: (0..n_pop)
                .map(|i| Individual {
                    program: random_program(seed ^ i as u64),
                    fitness: if i.is_multiple_of(3) { None } else { Some(weird_f64(ic_bits ^ i as u64)) },
                })
                .collect(),
            cache: (0..n_cache)
                .map(|i| (seed.wrapping_mul(i as u64 + 1), if i.is_multiple_of(2) { Some(i as f64 / 7.0) } else { None }))
                .collect(),
            best: (!seed.is_multiple_of(3)).then(|| BestAlpha {
                program: random_program(seed ^ 0xBE57),
                pruned: random_program(seed ^ 0xBE58),
                ic: weird_f64(ic_bits),
                val_returns: returns(seed, 30, 0.005),
            }),
            trajectory: (0..(seed % 5) as usize)
                .map(|i| alphaevolve_core::TrajectoryPoint {
                    searched: i * 10,
                    best_ic: i as f64 / 50.0,
                })
                .collect(),
            migration: (!seed.is_multiple_of(4)).then(|| alphaevolve_core::MigrationState {
                island: seed % 16,
                round: seed % 100,
                fraction: (seed % 101) as f64 / 100.0,
                migrants: (0..(seed % 3) as u64).map(|i| random_program(seed ^ (0xA110 + i))).collect(),
            }),
        };
        let bytes = checkpoint_to_bytes(&ckpt);
        let back = checkpoint_from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.config.population_size, ckpt.config.population_size);
        prop_assert_eq!(back.config.budget, ckpt.config.budget);
        prop_assert_eq!(back.config.seed, ckpt.config.seed);
        prop_assert_eq!(back.stats, ckpt.stats);
        prop_assert_eq!(back.elapsed, ckpt.elapsed);
        prop_assert_eq!(back.rng, ckpt.rng);
        prop_assert_eq!(back.population.len(), ckpt.population.len());
        for (x, y) in back.population.iter().zip(&ckpt.population) {
            prop_assert_eq!(&x.program, &y.program);
            prop_assert_eq!(x.fitness.map(f64::to_bits), y.fitness.map(f64::to_bits));
        }
        prop_assert_eq!(
            back.cache.iter().map(|&(k, v)| (k, v.map(f64::to_bits))).collect::<Vec<_>>(),
            ckpt.cache.iter().map(|&(k, v)| (k, v.map(f64::to_bits))).collect::<Vec<_>>()
        );
        match (&back.best, &ckpt.best) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert_eq!(&a.program, &b.program);
                prop_assert_eq!(&a.pruned, &b.pruned);
                prop_assert_eq!(a.ic.to_bits(), b.ic.to_bits());
                prop_assert_eq!(
                    a.val_returns.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    b.val_returns.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                );
            }
            other => panic!("best mismatch: {other:?}"),
        }
        prop_assert_eq!(back.trajectory.len(), ckpt.trajectory.len());
        match (&back.migration, &ckpt.migration) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.island, b.island);
                prop_assert_eq!(a.round, b.round);
                prop_assert_eq!(a.fraction.to_bits(), b.fraction.to_bits());
                prop_assert_eq!(&a.migrants, &b.migrants);
            }
            other => panic!("migration mismatch: {other:?}"),
        }
        // Canonical bytes: re-encode is byte-identical.
        prop_assert_eq!(checkpoint_to_bytes(&back), bytes);
    }
}
