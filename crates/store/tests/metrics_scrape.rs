//! The metrics-scrape contract: any [`AlphaService`] can be scraped over
//! the AEVS wire (kinds 9/10), and a [`ShardedRouter`] scrape merges
//! per-shard snapshots such that every **unlabeled total equals the sum of
//! the `shard`-labeled per-shard values** — over in-process loopback pipes
//! and over Unix domain sockets alike.
//!
//! The request accounting asserted here is deliberately exact, not `>=`:
//! a routed day request crosses each shard's wire exactly once (the
//! router's fan-out prefetch *is* the request; the later serve consumes
//! the pending response), and a scrape counts itself before snapshotting.

use std::sync::Arc;

use alphaevolve_backtest::CrossSections;
use alphaevolve_core::{fingerprint, init, AlphaConfig, EvalOptions};
use alphaevolve_market::{features::FeatureSet, generator::MarketConfig, Dataset, SplitSpec};
use alphaevolve_obs::{MetricValue, MetricsSnapshot};
use alphaevolve_store::archive::{feature_set_id, AlphaArchive, ArchivedAlpha};
use alphaevolve_store::metrics::RequestKind;
use alphaevolve_store::server::AlphaServer;
use alphaevolve_store::service::AlphaService;
use alphaevolve_store::transport::{loopback, serve_connection, serve_uds, ServiceClient};
use alphaevolve_store::{partition_archive, ShardedRouter};

/// A small archive of paper initializations — enough rows to partition
/// across shards, cheap enough to build per test.
fn fixture() -> (Arc<Dataset>, FeatureSet, AlphaArchive) {
    let market = MarketConfig {
        n_stocks: 10,
        n_days: 120,
        seed: 33,
        ..Default::default()
    }
    .generate();
    let features = FeatureSet::paper();
    let ds = Arc::new(Dataset::build(&market, &features, SplitSpec::paper_ratios()).unwrap());
    let cfg = AlphaConfig::default();
    let fsid = feature_set_id(&features);
    // Cutoff 1.0: admission must not depend on how correlated these
    // particular programs are — the archive is a program carrier here.
    let mut archive = AlphaArchive::with_cutoff(8, 1.0);
    let programs = [
        ("expert", init::domain_expert(&cfg)),
        ("momentum", init::momentum(&cfg)),
        ("nn", init::two_layer_nn(&cfg)),
    ];
    for (name, program) in programs {
        let fp = fingerprint(&program, &cfg).0;
        let outcome = archive.admit(ArchivedAlpha {
            name: name.into(),
            fingerprint: fp,
            program,
            ic: 0.1,
            val_returns: (0..40).map(|t| (t as f64).sin() * 0.01).collect(),
            train_days: (0, 1),
            feature_set_id: fsid,
        });
        assert!(outcome.admitted(), "fixture alpha `{name}`: {outcome:?}");
    }
    (ds, features, archive)
}

/// For each request kind, the unlabeled fleet total must equal the sum of
/// the `shard`-labeled per-shard values — at both the wire layer and the
/// serve layer.
fn assert_totals_are_shard_sums(what: &str, snap: &MetricsSnapshot, n_shards: usize) {
    for prefix in ["wire", "serve"] {
        let name = format!("{prefix}_requests_total");
        for kind in RequestKind::ALL {
            let total = snap.counter_value(&name, &[("kind", kind.as_str())]);
            let sum: u64 = (0..n_shards)
                .map(|i| {
                    snap.counter_value(&name, &[("kind", kind.as_str()), ("shard", &i.to_string())])
                })
                .sum();
            assert_eq!(
                total,
                sum,
                "{what}: {name}{{kind={}}} total {total} != per-shard sum {sum}",
                kind.as_str()
            );
        }
    }
}

#[test]
fn router_scrape_totals_equal_per_shard_sums_over_loopback() {
    let (ds, features, archive) = fixture();
    let cfg = AlphaConfig::default();
    let opts = EvalOptions::default();
    let n_shards = 2;
    let mut router =
        ShardedRouter::over_threads(&archive, n_shards, cfg, &opts, &ds, &features).unwrap();

    let mut block = CrossSections::new(0, 0);
    let days: Vec<usize> = ds.valid_days().take(3).collect();
    for &day in &days {
        router.serve_day(day, &mut block).unwrap();
    }
    router
        .serve_range(days[0]..days[0] + 2, &mut block)
        .unwrap();
    router.metadata().unwrap();

    let mut snap = MetricsSnapshot::new();
    router.metrics(&mut snap).unwrap();
    assert_totals_are_shard_sums("loopback fleet", &snap, n_shards);

    // A routed day request crosses each shard's wire exactly once.
    let wire_days = snap.counter_value("wire_requests_total", &[("kind", "day")]);
    assert_eq!(
        wire_days,
        (days.len() * n_shards) as u64,
        "each routed day request must hit each shard exactly once"
    );
    // ...and the server session behind each connection serves it once.
    let serve_days = snap.counter_value("serve_requests_total", &[("kind", "day")]);
    assert_eq!(serve_days, (days.len() * n_shards) as u64);
    // Range requests fan out once per shard too.
    assert_eq!(
        snap.counter_value("wire_requests_total", &[("kind", "range")]),
        n_shards as u64
    );
    // The scrape observes itself: one metrics request per shard, counted
    // before the snapshot was taken.
    assert_eq!(
        snap.counter_value("wire_requests_total", &[("kind", "metrics")]),
        n_shards as u64
    );
    // Latency histograms merged across shards cover every *completed*
    // wire request: the scrape in flight on each shard has counted its
    // request but cannot have timed itself yet.
    let latency_count = match snap.get("wire_latency_ns", &[]) {
        Some(MetricValue::Histogram(h)) => h.count,
        other => panic!("wire_latency_ns must be a merged histogram, got {other:?}"),
    };
    let all_requests: u64 = RequestKind::ALL
        .iter()
        .map(|k| snap.counter_value("wire_requests_total", &[("kind", k.as_str())]))
        .sum();
    assert_eq!(
        latency_count,
        all_requests - n_shards as u64,
        "every completed wire request must contribute one latency observation"
    );
    // Nothing failed, so every error counter (zero-valued series are
    // still rendered) stays at zero.
    assert!(
        snap.entries()
            .iter()
            .filter(|e| e.name == "wire_errors_total" || e.name == "serve_errors_total")
            .all(|e| matches!(e.value, MetricValue::Counter(0))),
        "clean run must keep every error counter at zero"
    );

    // A second scrape strictly grows the scrape counter (monotonic) and
    // still balances.
    let mut again = MetricsSnapshot::new();
    router.metrics(&mut again).unwrap();
    assert_totals_are_shard_sums("loopback fleet, rescrape", &again, n_shards);
    assert_eq!(
        again.counter_value("wire_requests_total", &[("kind", "metrics")]),
        2 * n_shards as u64
    );
}

#[test]
fn router_scrape_totals_equal_per_shard_sums_over_uds() {
    let (ds, features, archive) = fixture();
    let cfg = AlphaConfig::default();
    let opts = EvalOptions::default();
    let dir = std::env::temp_dir().join(format!("aevs_metrics_uds_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let n_shards = 2;
    let mut clients = Vec::new();
    for (i, part) in partition_archive(&archive, n_shards)
        .into_iter()
        .enumerate()
    {
        let path = dir.join(format!("shard_{i}.sock"));
        let server =
            AlphaServer::from_archive(&part, cfg, &opts, Arc::clone(&ds), &features).unwrap();
        let listener = std::os::unix::net::UnixListener::bind(&path).unwrap();
        std::thread::spawn(move || {
            let _ = serve_uds(listener, Arc::new(server));
        });
        clients.push(ServiceClient::connect(&path).unwrap());
    }
    let mut router = ShardedRouter::new(clients).unwrap();

    let mut block = CrossSections::new(0, 0);
    let days: Vec<usize> = ds.valid_days().take(2).collect();
    for &day in &days {
        router.serve_day(day, &mut block).unwrap();
    }
    // One refused request: out-of-window day. The typed error must show
    // up in the scraped error counters.
    assert!(router.serve_day(2, &mut block).is_err());

    let mut snap = MetricsSnapshot::new();
    router.metrics(&mut snap).unwrap();
    assert_totals_are_shard_sums("uds fleet", &snap, n_shards);
    assert_eq!(
        snap.counter_value("wire_requests_total", &[("kind", "metrics")]),
        n_shards as u64
    );
    // The refusal was served by (at least) the first shard the router
    // asked; the fleet total reflects it with the right code label.
    let refused = snap.counter_value("wire_errors_total", &[("code", "day_out_of_range")]);
    assert!(
        refused >= 1,
        "the out-of-window refusal must surface as a typed error counter"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn single_connection_scrape_round_trips_and_counts_client_side() {
    let (ds, features, archive) = fixture();
    let cfg = AlphaConfig::default();
    let opts = EvalOptions::default();
    let server =
        AlphaServer::from_archive(&archive, cfg, &opts, Arc::clone(&ds), &features).unwrap();

    let (mut a, b) = loopback();
    let handle = std::thread::spawn(move || {
        let mut session = server.session();
        serve_connection(&mut session, &mut a)
    });
    let mut client = ServiceClient::new(b);

    let mut block = CrossSections::new(0, 0);
    let day = ds.valid_days().start;
    client.serve_day(day, &mut block).unwrap();
    client.metadata().unwrap();

    let mut snap = MetricsSnapshot::new();
    client.metrics(&mut snap).unwrap();
    // The remote snapshot carries both the wire layer and the serve layer.
    assert_eq!(
        snap.counter_value("wire_requests_total", &[("kind", "day")]),
        1
    );
    assert_eq!(
        snap.counter_value("serve_requests_total", &[("kind", "day")]),
        1
    );
    assert_eq!(
        snap.counter_value("wire_requests_total", &[("kind", "metadata")]),
        1
    );
    assert_eq!(
        snap.counter_value("wire_requests_total", &[("kind", "metrics")]),
        1,
        "a scrape counts itself before snapshotting"
    );

    // The client's own instruments live locally, not in the remote scrape.
    let mut local = MetricsSnapshot::new();
    client.local_metrics_into(&mut local);
    assert_eq!(
        local.counter_value("client_requests_total", &[("kind", "day")]),
        1
    );
    assert_eq!(
        local.counter_value("client_requests_total", &[("kind", "metrics")]),
        1
    );
    match local.get("client_latency_ns", &[]) {
        Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 3),
        other => panic!("client_latency_ns must be a histogram, got {other:?}"),
    }

    drop(client);
    handle.join().unwrap().unwrap();
}
