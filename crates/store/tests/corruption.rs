//! Hostile-input fixtures: real archive and checkpoint files — and every
//! wire request/response frame of the serving protocol — with every
//! single bit flipped and every prefix truncation must fail with a typed
//! [`StoreError`] — never a panic, never a silent partial load. A second
//! battery re-seals corrupted payloads under a *valid* CRC to exercise
//! the decoder's own bounds checks past the checksum.

use std::io::Cursor;
use std::path::PathBuf;
use std::time::Duration;

use alphaevolve_backtest::CrossSections;
use alphaevolve_core::evolution::{Budget, EvolutionCheckpoint, EvolutionConfig};
use alphaevolve_core::{init, AlphaConfig, AlphaProgram, Individual, SearchStats};
use alphaevolve_store::archive::{AlphaArchive, ArchivedAlpha};
use alphaevolve_store::checkpoint::{
    checkpoint_from_bytes, checkpoint_to_bytes, load_checkpoint, save_checkpoint,
};
use alphaevolve_store::codec::crc32;
use alphaevolve_store::fleetwire::{
    decode_archive_snapshot, decode_elite_ack, decode_fleet_request, decode_migrant_set,
    encode_archive_snapshot, encode_elite_ack, encode_fleet_request, encode_migrant_set, EliteAck,
    EliteSubmit, FleetRequest, MigrantSet,
};
use alphaevolve_store::service::ServiceMetadata;
use alphaevolve_store::wire::{
    decode_error, decode_metadata, decode_metrics_response, decode_predictions_into,
    decode_request, encode_error, encode_metadata, encode_metrics_response, encode_predictions,
    encode_request, frame_payload, read_message, Request,
};
use alphaevolve_store::{ServiceErrorCode, StoreError};

fn fixture_archive() -> AlphaArchive {
    let cfg = AlphaConfig::default();
    let mut ar = AlphaArchive::new(4);
    let series: Vec<f64> = (0..40)
        .map(|i| (std::f64::consts::TAU * i as f64 / 40.0).sin() * 0.01)
        .collect();
    ar.admit(ArchivedAlpha {
        name: "fixture".into(),
        program: init::two_layer_nn(&cfg),
        fingerprint: 0x60f0_a96b_0af1_1c64,
        ic: 0.21213852898918362,
        val_returns: series,
        train_days: (30, 90),
        feature_set_id: 11,
    });
    ar
}

fn fixture_checkpoint() -> EvolutionCheckpoint {
    let cfg = AlphaConfig::default();
    EvolutionCheckpoint {
        config: EvolutionConfig {
            population_size: 5,
            tournament_size: 2,
            budget: Budget::Searched(100),
            seed: 7,
            workers: 1,
            ..Default::default()
        },
        stats: SearchStats {
            searched: 50,
            evaluated: 20,
            redundant: 23,
            cache_hits: 5,
            invalid: 0,
            gate_rejected: 0,
            static_rejected: 2,
            folded: 4,
        },
        elapsed: Duration::from_millis(1234),
        rng: [9, 8, 7, 6],
        population: vec![
            Individual {
                program: init::domain_expert(&cfg),
                fitness: Some(0.1),
            },
            Individual {
                program: init::industry_reversal(&cfg),
                fitness: None,
            },
        ],
        cache: vec![(3, Some(0.1)), (99, None)],
        best: None,
        trajectory: vec![],
        migration: Some(alphaevolve_core::MigrationState {
            island: 2,
            round: 5,
            fraction: 0.25,
            migrants: vec![init::two_layer_nn(&cfg)],
        }),
    }
}

#[test]
fn every_bit_flip_in_a_checkpoint_fails_typed() {
    let bytes = checkpoint_to_bytes(&fixture_checkpoint());
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupted = bytes.clone();
            corrupted[byte] ^= 1 << bit;
            match checkpoint_from_bytes(&corrupted) {
                Err(_) => {}
                Ok(_) => panic!("flip of byte {byte} bit {bit} loaded successfully"),
            }
        }
    }
}

#[test]
fn every_truncation_of_a_checkpoint_fails_typed() {
    let bytes = checkpoint_to_bytes(&fixture_checkpoint());
    for cut in 0..bytes.len() {
        match checkpoint_from_bytes(&bytes[..cut]) {
            Err(StoreError::Truncated { .. } | StoreError::BadMagic { .. }) => {}
            Err(other) => panic!("cut at {cut}: unexpected error class {other:?}"),
            Ok(_) => panic!("truncation to {cut} bytes loaded successfully"),
        }
    }
}

#[test]
fn every_bit_flip_in_an_archive_fails_typed() {
    let bytes = fixture_archive().to_bytes();
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupted = bytes.clone();
            corrupted[byte] ^= 1 << bit;
            assert!(
                AlphaArchive::from_bytes(&corrupted).is_err(),
                "flip of byte {byte} bit {bit} loaded successfully"
            );
        }
    }
}

#[test]
fn every_truncation_of_an_archive_fails_typed() {
    let bytes = fixture_archive().to_bytes();
    for cut in 0..bytes.len() {
        assert!(
            AlphaArchive::from_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes loaded successfully"
        );
    }
}

/// Re-seals a corrupted frame under a fresh, *valid* CRC so the payload
/// decoder itself (not just the checksum) faces the damage.
fn reseal(mut bytes: Vec<u8>) -> Vec<u8> {
    let n = bytes.len();
    let crc = crc32(&bytes[..n - 4]);
    bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
    bytes
}

#[test]
fn decoder_survives_resealed_payload_corruption() {
    // Flip each payload byte (with the CRC fixed up): the decoder must
    // return — Ok with different data or a typed error — never panic,
    // never attempt a monster allocation.
    let bytes = checkpoint_to_bytes(&fixture_checkpoint());
    for byte in 16..bytes.len() - 4 {
        let mut corrupted = bytes.clone();
        corrupted[byte] ^= 0xFF;
        let _ = checkpoint_from_bytes(&reseal(corrupted));
    }
    let bytes = fixture_archive().to_bytes();
    for byte in 16..bytes.len() - 4 {
        let mut corrupted = bytes.clone();
        corrupted[byte] ^= 0x55;
        let _ = AlphaArchive::from_bytes(&reseal(corrupted));
    }
}

#[test]
fn on_disk_corruption_and_short_writes_fail_typed() {
    let dir = std::env::temp_dir().join(format!("aevs_corruption_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join("search.ckpt");
    let ckpt = fixture_checkpoint();
    save_checkpoint(&path, &ckpt).unwrap();
    assert_eq!(load_checkpoint(&path).unwrap().stats, ckpt.stats);

    // Bit rot on disk.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        load_checkpoint(&path),
        Err(StoreError::Corrupt { .. })
    ));

    // A torn write: only the first half made it to disk.
    bytes[mid] ^= 0x40; // undo the flip
    std::fs::write(&path, &bytes[..mid]).unwrap();
    assert!(matches!(
        load_checkpoint(&path),
        Err(StoreError::Truncated { .. })
    ));

    // Missing file is a typed I/O error, not a panic.
    assert!(matches!(
        load_checkpoint(dir.join("never_written.ckpt")),
        Err(StoreError::Io(_))
    ));

    let _ = std::fs::remove_dir_all(&dir);
}

/// Every wire message shape the protocol can put on a stream, encoded
/// from realistic fixtures (NaN payloads, invalid rows, empty and
/// non-trivial names).
fn wire_fixtures() -> Vec<(&'static str, Vec<u8>)> {
    let mut fixtures = Vec::new();
    let mut buf = Vec::new();
    encode_request(Request::ServeDay { day: 37 }, &mut buf);
    fixtures.push(("ServeDayRequest", buf.clone()));
    encode_request(Request::ServeRange { start: 30, end: 61 }, &mut buf);
    fixtures.push(("ServeRangeRequest", buf.clone()));
    encode_request(Request::Metadata, &mut buf);
    fixtures.push(("MetadataRequest", buf.clone()));
    let mut block = CrossSections::from_fn(3, 5, |d, s| {
        if (d, s) == (0, 1) {
            f64::from_bits(0x7FF8_0000_0000_0123)
        } else {
            (d as f64).mul_add(0.125, s as f64)
        }
    });
    block.invalidate_day(1);
    encode_predictions(&block, &mut buf);
    fixtures.push(("PredictionsResponse", buf.clone()));
    encode_metadata(
        &ServiceMetadata {
            n_alphas: 2,
            n_stocks: 5,
            n_days: 130,
            min_day: 13,
            feature_set_id: 0xFEED_0001,
            names: vec!["mined_pinned".into(), "nn".into()],
        },
        &mut buf,
    );
    fixtures.push(("MetadataResponse", buf.clone()));
    encode_error(ServiceErrorCode::DayOutOfRange, "day 999 of 130", &mut buf);
    fixtures.push(("ErrorResponse", buf.clone()));
    encode_request(Request::Metrics, &mut buf);
    fixtures.push(("MetricsRequest", buf.clone()));
    // A realistic multi-line exposition body, label quoting included.
    encode_metrics_response(
        "# TYPE wire_requests_total counter\n\
         wire_requests_total{kind=\"day\"} 12\n\
         wire_requests_total{kind=\"metrics\"} 1\n\
         # TYPE serve_latency_ns histogram\n\
         serve_latency_ns_bucket{le=\"+Inf\"} 13\n\
         serve_latency_ns_sum 41984\n\
         serve_latency_ns_count 13\n",
        &mut buf,
    );
    fixtures.push(("MetricsResponse", buf.clone()));

    // The fleet wire (kinds 11–16): every message of a mining fleet's
    // migration protocol joins the same battery as the serving kinds.
    let cfg = AlphaConfig::default();
    encode_fleet_request(
        &FleetRequest::EliteSubmit(EliteSubmit {
            island: 2,
            round: 5,
            searched: 340,
            elapsed_ns: 1_234_567,
            programs: vec![init::domain_expert(&cfg), init::industry_reversal(&cfg)],
        }),
        &mut buf,
    );
    fixtures.push(("EliteSubmitRequest", buf.clone()));
    encode_fleet_request(
        &FleetRequest::MigrantFetch {
            island: 1,
            round: 3,
        },
        &mut buf,
    );
    fixtures.push(("MigrantFetchRequest", buf.clone()));
    encode_fleet_request(&FleetRequest::ArchiveSync { island: 0 }, &mut buf);
    fixtures.push(("ArchiveSyncRequest", buf.clone()));
    encode_elite_ack(
        &EliteAck {
            round: 5,
            admitted: 1,
            rejected_gate: 2,
            rejected_invalid: 0,
            migrants: vec![init::two_layer_nn(&cfg)],
        },
        &mut buf,
    );
    fixtures.push(("EliteAckResponse", buf.clone()));
    encode_migrant_set(
        &MigrantSet {
            round: 4,
            migrants: vec![init::domain_expert(&cfg)],
        },
        &mut buf,
    );
    fixtures.push(("MigrantSetResponse", buf.clone()));
    encode_archive_snapshot(&fixture_archive().to_bytes(), &mut buf);
    fixtures.push(("ArchiveSnapshotResponse", buf));
    fixtures
}

/// Fully decodes whatever arrived: the stream framing, then the
/// kind-specific payload decoder — mirroring exactly what a serving peer
/// does with an incoming frame.
fn decode_wire(bytes: &[u8]) -> Result<(), StoreError> {
    let mut cursor = Cursor::new(bytes);
    let mut buf = Vec::new();
    let Some(kind) = read_message(&mut cursor, &mut buf)? else {
        return Ok(());
    };
    // A frame glued to trailing garbage is a stream-sync bug.
    if cursor.position() as usize != bytes.len() {
        return Err(StoreError::Malformed {
            what: "trailing bytes after the frame".into(),
        });
    }
    let payload = frame_payload(&buf);
    match kind {
        alphaevolve_store::frame::KIND_SERVE_DAY_REQUEST
        | alphaevolve_store::frame::KIND_SERVE_RANGE_REQUEST
        | alphaevolve_store::frame::KIND_METADATA_REQUEST
        | alphaevolve_store::frame::KIND_METRICS_REQUEST => {
            decode_request(kind, payload).map(|_| ())
        }
        alphaevolve_store::frame::KIND_METRICS_RESPONSE => {
            decode_metrics_response(payload).map(|_| ())
        }
        alphaevolve_store::frame::KIND_PREDICTIONS_RESPONSE => {
            decode_predictions_into(payload, &mut CrossSections::new(0, 0))
        }
        alphaevolve_store::frame::KIND_METADATA_RESPONSE => decode_metadata(payload).map(|_| ()),
        alphaevolve_store::frame::KIND_ELITE_SUBMIT_REQUEST
        | alphaevolve_store::frame::KIND_MIGRANT_FETCH_REQUEST
        | alphaevolve_store::frame::KIND_ARCHIVE_SYNC_REQUEST => {
            decode_fleet_request(kind, payload).map(|_| ())
        }
        alphaevolve_store::frame::KIND_ELITE_ACK_RESPONSE => decode_elite_ack(payload).map(|_| ()),
        alphaevolve_store::frame::KIND_MIGRANT_SET_RESPONSE => {
            decode_migrant_set(payload).map(|_| ())
        }
        alphaevolve_store::frame::KIND_ARCHIVE_SNAPSHOT_RESPONSE => {
            // Fully validate the nested archive file frame, exactly as a
            // syncing island does.
            AlphaArchive::from_bytes(&decode_archive_snapshot(payload)?).map(|_| ())
        }
        alphaevolve_store::frame::KIND_ERROR_RESPONSE => {
            // decode_error is total; receiving an error response is not
            // itself a decode failure.
            let _ = decode_error(payload);
            Ok(())
        }
        other => Err(StoreError::service(
            ServiceErrorCode::Protocol,
            format!("unknown kind {other}"),
        )),
    }
}

#[test]
fn every_bit_flip_in_every_wire_frame_fails_typed() {
    for (name, bytes) in wire_fixtures() {
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupted = bytes.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(
                    decode_wire(&corrupted).is_err(),
                    "{name}: flip of byte {byte} bit {bit} decoded successfully"
                );
            }
        }
    }
}

#[test]
fn every_truncation_of_every_wire_frame_fails_typed() {
    for (name, bytes) in wire_fixtures() {
        // cut = 0 is a clean EOF (Ok(None)), not a torn frame — start at 1.
        for cut in 1..bytes.len() {
            match decode_wire(&bytes[..cut]) {
                Err(_) => {}
                Ok(()) => panic!("{name}: truncation to {cut} bytes decoded successfully"),
            }
        }
        assert!(
            decode_wire(&bytes).is_ok(),
            "{name}: pristine frame decodes"
        );
    }
}

#[test]
fn resealed_wire_payload_corruption_never_panics() {
    // Flip each payload byte under a re-sealed valid CRC: the payload
    // decoders face the damage directly and must return, not panic.
    for (_, bytes) in wire_fixtures() {
        for byte in 16..bytes.len().saturating_sub(4) {
            let mut corrupted = bytes.clone();
            corrupted[byte] ^= 0xA5;
            let _ = decode_wire(&reseal(corrupted));
        }
    }
}

#[test]
fn request_frame_where_a_response_is_expected_fails_typed() {
    // A client that sent `ServeDay` and gets back a *request* frame (a
    // confused peer echoing, or crossed streams) must surface a typed
    // protocol error — exercised through a real client over a loopback
    // transport, not just the decoder.
    use alphaevolve_store::service::AlphaService;
    use alphaevolve_store::transport::{loopback, ServiceClient};
    use alphaevolve_store::wire::write_message;

    let (client_end, mut rogue_end) = loopback();
    let mut client = ServiceClient::new(client_end);
    let rogue = std::thread::spawn(move || {
        // Consume the request, then echo back a request frame.
        let mut buf = Vec::new();
        read_message(&mut rogue_end, &mut buf).unwrap().unwrap();
        let mut reply = Vec::new();
        encode_request(Request::ServeDay { day: 1 }, &mut reply);
        write_message(&mut rogue_end, &reply).unwrap();
        rogue_end
    });
    let mut out = CrossSections::new(0, 0);
    let err = client.serve_day(40, &mut out);
    match err {
        Err(StoreError::Service {
            code: ServiceErrorCode::Protocol,
            message,
        }) => assert!(message.contains("kind"), "message: {message}"),
        other => panic!("expected a typed protocol error, got {other:?}"),
    }
    drop(rogue.join().unwrap());

    // And the mirror image: a server handed a *response* frame answers
    // with a typed ErrorResponse before hanging up.
    let (mut fake_client, mut server_end) = loopback();
    let served = std::thread::spawn(move || {
        struct Never;
        impl AlphaService for Never {
            fn metadata(&mut self) -> alphaevolve_store::Result<ServiceMetadata> {
                unreachable!("no valid request ever arrives")
            }
            fn serve_day(
                &mut self,
                _: usize,
                _: &mut CrossSections,
            ) -> alphaevolve_store::Result<()> {
                unreachable!()
            }
            fn serve_range(
                &mut self,
                _: std::ops::Range<usize>,
                _: &mut CrossSections,
            ) -> alphaevolve_store::Result<()> {
                unreachable!()
            }
        }
        alphaevolve_store::serve_connection(&mut Never, &mut server_end)
    });
    let mut frame = Vec::new();
    encode_error(ServiceErrorCode::Internal, "i am a response", &mut frame);
    write_message(&mut fake_client, &frame).unwrap();
    let mut buf = Vec::new();
    let kind = read_message(&mut fake_client, &mut buf).unwrap().unwrap();
    assert_eq!(kind, alphaevolve_store::frame::KIND_ERROR_RESPONSE);
    match decode_error(frame_payload(&buf)) {
        StoreError::Service {
            code: ServiceErrorCode::Protocol,
            ..
        } => {}
        other => panic!("expected a Protocol error response, got {other:?}"),
    }
    assert!(
        served.join().unwrap().is_err(),
        "the server closes a connection that broke the protocol"
    );
}

#[test]
fn metrics_frames_in_the_wrong_slot_fail_typed() {
    // A metrics response where a predictions response belongs (a confused
    // or malicious peer answering the wrong request) must surface a typed
    // protocol error, not be misread as prediction data.
    use alphaevolve_store::service::AlphaService;
    use alphaevolve_store::transport::{loopback, ServiceClient};
    use alphaevolve_store::wire::write_message;

    let (client_end, mut rogue_end) = loopback();
    let mut client = ServiceClient::new(client_end);
    let rogue = std::thread::spawn(move || {
        let mut buf = Vec::new();
        read_message(&mut rogue_end, &mut buf).unwrap().unwrap();
        let mut reply = Vec::new();
        encode_metrics_response("up 1\n", &mut reply);
        write_message(&mut rogue_end, &reply).unwrap();
        rogue_end
    });
    let mut out = CrossSections::new(0, 0);
    match client.serve_day(40, &mut out) {
        Err(StoreError::Service {
            code: ServiceErrorCode::Protocol,
            message,
        }) => assert!(message.contains("kind"), "message: {message}"),
        other => panic!("expected a typed protocol error, got {other:?}"),
    }
    let mut rogue_end = rogue.join().unwrap();

    // The mirror image: a predictions frame where a metrics response
    // belongs fails the scrape the same way.
    let rogue = std::thread::spawn(move || {
        let mut buf = Vec::new();
        read_message(&mut rogue_end, &mut buf).unwrap().unwrap();
        let mut reply = Vec::new();
        encode_predictions(&CrossSections::from_fn(1, 2, |_, _| 0.0), &mut reply);
        write_message(&mut rogue_end, &reply).unwrap();
    });
    let mut snap = alphaevolve_obs::MetricsSnapshot::new();
    match client.metrics(&mut snap) {
        Err(StoreError::Service {
            code: ServiceErrorCode::Protocol,
            message,
        }) => assert!(message.contains("kind"), "message: {message}"),
        other => panic!("expected a typed protocol error, got {other:?}"),
    }
    rogue.join().unwrap();

    // An unparseable-but-well-framed exposition body is also a typed
    // refusal: the frame decoded, the *content* did not.
    let (client_end, mut rogue_end) = loopback();
    let mut client = ServiceClient::new(client_end);
    let rogue = std::thread::spawn(move || {
        let mut buf = Vec::new();
        read_message(&mut rogue_end, &mut buf).unwrap().unwrap();
        let mut reply = Vec::new();
        encode_metrics_response("this is not an exposition line\n", &mut reply);
        write_message(&mut rogue_end, &reply).unwrap();
    });
    match client.metrics(&mut snap) {
        Err(StoreError::Service {
            code: ServiceErrorCode::Protocol,
            message,
        }) => assert!(
            message.contains("exposition"),
            "message names the layer that failed: {message}"
        ),
        other => panic!("expected a typed protocol error, got {other:?}"),
    }
    rogue.join().unwrap();

    // A nonzero flags word in a metrics *request* is refused by the
    // decoder (reserved for future options).
    let err = decode_request(
        alphaevolve_store::frame::KIND_METRICS_REQUEST,
        &0xFFu64.to_le_bytes(),
    );
    match err {
        Err(StoreError::Service {
            code: ServiceErrorCode::Protocol,
            message,
        }) => assert!(message.contains("flags"), "message: {message}"),
        other => panic!("expected a typed flags refusal, got {other:?}"),
    }
}

/// A structurally hostile instruction: byte-level decoding accepts it (the
/// op code is real), but its registers/indices/literals are poison for an
/// interpreter. Built field-by-field so no constructor can sanitize it.
fn poison_instruction(patch: impl FnOnce(&mut alphaevolve_core::Instruction)) -> AlphaProgram {
    let cfg = AlphaConfig::default();
    let mut prog = init::domain_expert(&cfg);
    patch(&mut prog.predict[0]);
    prog
}

/// Valid frame, invalid program: the envelope verifier — not the CRC, not
/// the byte decoder — must be what rejects these, with the typed
/// [`StoreError::InvalidProgram`].
#[test]
fn valid_frames_carrying_invalid_programs_fail_typed() {
    use alphaevolve_core::Op;

    let hostile: Vec<(&str, AlphaProgram)> = vec![
        (
            "out-of-range input register",
            poison_instruction(|i| {
                i.op = Op::SAbs;
                i.in1 = 200;
            }),
        ),
        (
            "out-of-range output register",
            poison_instruction(|i| {
                i.op = Op::SAbs;
                i.out = 0xFF;
            }),
        ),
        (
            "non-finite literal",
            poison_instruction(|i| {
                i.op = Op::SConst;
                i.lit[0] = f64::NAN;
            }),
        ),
        ("relation op in setup", {
            let cfg = AlphaConfig::default();
            let mut prog = init::domain_expert(&cfg);
            let mut i = alphaevolve_core::Instruction::nop();
            i.op = Op::RelRank;
            prog.setup.push(i);
            prog
        }),
        ("function body beyond any config's cap", {
            let cfg = AlphaConfig::default();
            let mut prog = init::domain_expert(&cfg);
            let mut i = alphaevolve_core::Instruction::nop();
            i.op = Op::SAbs;
            i.in1 = 1;
            i.out = 1;
            prog.update = vec![i; 300];
            prog
        }),
    ];

    for (what, prog) in hostile {
        // Checkpoint path: hostile genome inside the population.
        let mut ckpt = fixture_checkpoint();
        ckpt.population[0].program = prog.clone();
        let bytes = checkpoint_to_bytes(&ckpt);
        match checkpoint_from_bytes(&bytes) {
            Err(StoreError::InvalidProgram { .. }) => {}
            other => panic!("checkpoint with {what}: expected InvalidProgram, got {other:?}"),
        }

        // Checkpoint path: hostile program as the best alpha.
        let mut ckpt = fixture_checkpoint();
        ckpt.best = Some(alphaevolve_core::BestAlpha {
            program: init::domain_expert(&AlphaConfig::default()),
            pruned: prog.clone(),
            ic: 0.1,
            val_returns: vec![0.01, 0.02],
        });
        match checkpoint_from_bytes(&checkpoint_to_bytes(&ckpt)) {
            Err(StoreError::InvalidProgram { .. }) => {}
            other => panic!("best alpha with {what}: expected InvalidProgram, got {other:?}"),
        }

        // Fleet wire path: a hostile elite inside a perfectly sealed
        // EliteSubmit frame — the envelope verifier inside the payload
        // decoder, not the CRC, is what must reject it.
        let mut frame = Vec::new();
        encode_fleet_request(
            &FleetRequest::EliteSubmit(EliteSubmit {
                island: 0,
                round: 0,
                searched: 1,
                elapsed_ns: 1,
                programs: vec![prog.clone()],
            }),
            &mut frame,
        );
        let mut cursor = Cursor::new(frame.as_slice());
        let mut buf = Vec::new();
        let kind = read_message(&mut cursor, &mut buf).unwrap().unwrap();
        match decode_fleet_request(kind, frame_payload(&buf)) {
            Err(StoreError::InvalidProgram { .. }) => {}
            other => panic!("elite submit with {what}: expected InvalidProgram, got {other:?}"),
        }

        // And the response direction: a hostile migrant in a MigrantSet.
        encode_migrant_set(
            &MigrantSet {
                round: 0,
                migrants: vec![prog.clone()],
            },
            &mut frame,
        );
        let mut cursor = Cursor::new(frame.as_slice());
        read_message(&mut cursor, &mut buf).unwrap().unwrap();
        match decode_migrant_set(frame_payload(&buf)) {
            Err(StoreError::InvalidProgram { .. }) => {}
            other => panic!("migrant set with {what}: expected InvalidProgram, got {other:?}"),
        }

        // Archive path: hostile program behind a perfectly sealed frame.
        let mut ar = fixture_archive();
        ar.admit(ArchivedAlpha {
            name: "hostile".into(),
            program: prog,
            fingerprint: 0xDEAD_BEEF,
            ic: 0.5,
            val_returns: (0..40).map(|i| (i as f64).cos() * 0.01).collect(),
            train_days: (30, 90),
            feature_set_id: 11,
        });
        match AlphaArchive::from_bytes(&ar.to_bytes()) {
            Err(StoreError::InvalidProgram { .. }) => {}
            other => panic!("archive with {what}: expected InvalidProgram, got {other:?}"),
        }
    }
}

/// The same boundary exercised the hostile way: flip a register byte
/// *inside* an already-sealed frame and re-seal the CRC, so the only
/// remaining defense is the program verifier.
#[test]
fn resealed_register_patch_fails_as_invalid_program() {
    let ckpt = fixture_checkpoint();
    let pristine = checkpoint_to_bytes(&ckpt);
    let mut hit = false;
    for byte in 16..pristine.len() - 4 {
        let mut patched = pristine.clone();
        patched[byte] = 0xC8; // register 200 — outside any bank
                              // Other bytes land in counts, literals, CRCs, fitnesses — any
                              // typed error or a benign decode is fine; a panic is not.
        if let Err(StoreError::InvalidProgram { .. }) = checkpoint_from_bytes(&reseal(patched)) {
            hit = true;
        }
    }
    assert!(
        hit,
        "no single-byte register patch ever reached the program verifier"
    );
}

#[test]
fn wrong_kind_cross_loading_fails_typed() {
    let dir = std::env::temp_dir().join(format!("aevs_kinds_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("archive.aev");
    fixture_archive().save(&path).unwrap();
    // An archive fed to the checkpoint loader: typed kind mismatch.
    assert!(matches!(
        load_checkpoint(&path),
        Err(StoreError::WrongKind { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
