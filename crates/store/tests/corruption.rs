//! Hostile-input fixtures: real archive and checkpoint files with every
//! single bit flipped and every prefix truncation must fail with a typed
//! [`StoreError`] — never a panic, never a silent partial load. A second
//! battery re-seals corrupted payloads under a *valid* CRC to exercise
//! the decoder's own bounds checks past the checksum.

use std::path::PathBuf;
use std::time::Duration;

use alphaevolve_core::evolution::{Budget, EvolutionCheckpoint, EvolutionConfig};
use alphaevolve_core::{init, AlphaConfig, Individual, SearchStats};
use alphaevolve_store::archive::{AlphaArchive, ArchivedAlpha};
use alphaevolve_store::checkpoint::{
    checkpoint_from_bytes, checkpoint_to_bytes, load_checkpoint, save_checkpoint,
};
use alphaevolve_store::codec::crc32;
use alphaevolve_store::StoreError;

fn fixture_archive() -> AlphaArchive {
    let cfg = AlphaConfig::default();
    let mut ar = AlphaArchive::new(4);
    let series: Vec<f64> = (0..40)
        .map(|i| (std::f64::consts::TAU * i as f64 / 40.0).sin() * 0.01)
        .collect();
    ar.admit(ArchivedAlpha {
        name: "fixture".into(),
        program: init::two_layer_nn(&cfg),
        fingerprint: 0xe867_dc16_95a8_ffb5,
        ic: 0.21213852898918362,
        val_returns: series,
        train_days: (30, 90),
        feature_set_id: 11,
    });
    ar
}

fn fixture_checkpoint() -> EvolutionCheckpoint {
    let cfg = AlphaConfig::default();
    EvolutionCheckpoint {
        config: EvolutionConfig {
            population_size: 5,
            tournament_size: 2,
            budget: Budget::Searched(100),
            seed: 7,
            workers: 1,
            ..Default::default()
        },
        stats: SearchStats {
            searched: 50,
            evaluated: 20,
            redundant: 25,
            cache_hits: 5,
            invalid: 0,
            gate_rejected: 0,
        },
        elapsed: Duration::from_millis(1234),
        rng: [9, 8, 7, 6],
        population: vec![
            Individual {
                program: init::domain_expert(&cfg),
                fitness: Some(0.1),
            },
            Individual {
                program: init::industry_reversal(&cfg),
                fitness: None,
            },
        ],
        cache: vec![(3, Some(0.1)), (99, None)],
        best: None,
        trajectory: vec![],
    }
}

#[test]
fn every_bit_flip_in_a_checkpoint_fails_typed() {
    let bytes = checkpoint_to_bytes(&fixture_checkpoint());
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupted = bytes.clone();
            corrupted[byte] ^= 1 << bit;
            match checkpoint_from_bytes(&corrupted) {
                Err(_) => {}
                Ok(_) => panic!("flip of byte {byte} bit {bit} loaded successfully"),
            }
        }
    }
}

#[test]
fn every_truncation_of_a_checkpoint_fails_typed() {
    let bytes = checkpoint_to_bytes(&fixture_checkpoint());
    for cut in 0..bytes.len() {
        match checkpoint_from_bytes(&bytes[..cut]) {
            Err(StoreError::Truncated { .. }) | Err(StoreError::BadMagic { .. }) => {}
            Err(other) => panic!("cut at {cut}: unexpected error class {other:?}"),
            Ok(_) => panic!("truncation to {cut} bytes loaded successfully"),
        }
    }
}

#[test]
fn every_bit_flip_in_an_archive_fails_typed() {
    let bytes = fixture_archive().to_bytes();
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupted = bytes.clone();
            corrupted[byte] ^= 1 << bit;
            assert!(
                AlphaArchive::from_bytes(&corrupted).is_err(),
                "flip of byte {byte} bit {bit} loaded successfully"
            );
        }
    }
}

#[test]
fn every_truncation_of_an_archive_fails_typed() {
    let bytes = fixture_archive().to_bytes();
    for cut in 0..bytes.len() {
        assert!(
            AlphaArchive::from_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes loaded successfully"
        );
    }
}

/// Re-seals a corrupted frame under a fresh, *valid* CRC so the payload
/// decoder itself (not just the checksum) faces the damage.
fn reseal(mut bytes: Vec<u8>) -> Vec<u8> {
    let n = bytes.len();
    let crc = crc32(&bytes[..n - 4]);
    bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
    bytes
}

#[test]
fn decoder_survives_resealed_payload_corruption() {
    // Flip each payload byte (with the CRC fixed up): the decoder must
    // return — Ok with different data or a typed error — never panic,
    // never attempt a monster allocation.
    let bytes = checkpoint_to_bytes(&fixture_checkpoint());
    for byte in 16..bytes.len() - 4 {
        let mut corrupted = bytes.clone();
        corrupted[byte] ^= 0xFF;
        let _ = checkpoint_from_bytes(&reseal(corrupted));
    }
    let bytes = fixture_archive().to_bytes();
    for byte in 16..bytes.len() - 4 {
        let mut corrupted = bytes.clone();
        corrupted[byte] ^= 0x55;
        let _ = AlphaArchive::from_bytes(&reseal(corrupted));
    }
}

#[test]
fn on_disk_corruption_and_short_writes_fail_typed() {
    let dir = std::env::temp_dir().join(format!("aevs_corruption_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join("search.ckpt");
    let ckpt = fixture_checkpoint();
    save_checkpoint(&path, &ckpt).unwrap();
    assert_eq!(load_checkpoint(&path).unwrap().stats, ckpt.stats);

    // Bit rot on disk.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        load_checkpoint(&path),
        Err(StoreError::Corrupt { .. })
    ));

    // A torn write: only the first half made it to disk.
    bytes[mid] ^= 0x40; // undo the flip
    std::fs::write(&path, &bytes[..mid]).unwrap();
    assert!(matches!(
        load_checkpoint(&path),
        Err(StoreError::Truncated { .. })
    ));

    // Missing file is a typed I/O error, not a panic.
    assert!(matches!(
        load_checkpoint(dir.join("never_written.ckpt")),
        Err(StoreError::Io(_))
    ));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_kind_cross_loading_fails_typed() {
    let dir = std::env::temp_dir().join(format!("aevs_kinds_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("archive.aev");
    fixture_archive().save(&path).unwrap();
    // An archive fed to the checkpoint loader: typed kind mismatch.
    assert!(matches!(
        load_checkpoint(&path),
        Err(StoreError::WrongKind { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
