//! The serving-API contract: any [`AlphaService`] implementation — a warm
//! in-process session, a wire client over loopback pipes or Unix domain
//! sockets, a sharded router over either, or a router of routers — must
//! return predictions **bit-identical** to a direct
//! [`AlphaServer::serve_day`] on the same archive and day, including for
//! the fixed-seed mined alpha pinned since PR 2
//! (fingerprint `0x60f0a96b0af11c64` on x86-64 Linux).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use alphaevolve_backtest::CrossSections;
use alphaevolve_core::{
    fingerprint, init, AlphaConfig, Budget, EvalOptions, Evaluator, Evolution, EvolutionConfig,
};
use alphaevolve_market::{features::FeatureSet, generator::MarketConfig, Dataset, SplitSpec};
use alphaevolve_store::archive::{feature_set_id, AlphaArchive, ArchivedAlpha};
use alphaevolve_store::router::{spawn_thread_shards, ShardedRouter};
use alphaevolve_store::server::AlphaServer;
use alphaevolve_store::service::AlphaService;
use alphaevolve_store::transport::{serve_uds, ServiceClient};
use alphaevolve_store::{ServiceErrorCode, StoreError};

/// Aborts the whole test process if the guarded section outlives the
/// budget — a hung Unix-socket accept loop must fail the suite fast, not
/// wedge CI until the job-level timeout.
struct Watchdog {
    done: Arc<AtomicBool>,
}

impl Watchdog {
    fn arm(budget: Duration, what: &'static str) -> Watchdog {
        let done = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&done);
        std::thread::spawn(move || {
            let step = Duration::from_millis(200);
            let mut waited = Duration::ZERO;
            while waited < budget {
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(step);
                waited += step;
            }
            eprintln!("watchdog: `{what}` exceeded {budget:?}; aborting");
            std::process::abort();
        });
        Watchdog { done }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Relaxed);
    }
}

/// The pinned-fingerprint fixture: the same fixed-seed evolution run as
/// `tests/determinism.rs`, whose best alpha has reproduced bit-for-bit
/// through every engine refactor since PR 2 — archived here alongside the
/// paper initializations so the serving equivalence covers a genuinely
/// *mined* program, not just hand-written ones.
fn mined_archive() -> (Arc<Dataset>, FeatureSet, AlphaArchive) {
    let market = MarketConfig {
        n_stocks: 16,
        n_days: 140,
        seed: 21,
        ..Default::default()
    }
    .generate();
    let features = FeatureSet::paper();
    let ds = Arc::new(Dataset::build(&market, &features, SplitSpec::paper_ratios()).unwrap());
    let ev = Evaluator::new(AlphaConfig::default(), EvalOptions::default(), ds.clone());
    let outcome = Evolution::new(
        &ev,
        EvolutionConfig {
            population_size: 20,
            tournament_size: 5,
            budget: Budget::Searched(300),
            seed: 7,
            workers: 1,
            ..Default::default()
        },
    )
    .run(&init::domain_expert(ev.config()));
    let best = outcome.best.expect("fixed-seed run finds an alpha");
    let (fp, _) = fingerprint(&best.program, ev.config());
    if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
        assert_eq!(
            fp, 0x60f0a96b0af11c64,
            "the pinned mined alpha diverged before serving was even tested"
        );
    }

    let cfg = AlphaConfig::default();
    let fsid = feature_set_id(&features);
    // Cutoff 1.0: admission order (and thus row order) must be a property
    // of this fixture, not of how correlated these particular programs
    // happen to be.
    let mut archive = AlphaArchive::with_cutoff(16, 1.0);
    let mut admit = |name: &str, program: alphaevolve_core::AlphaProgram| {
        let eval = ev.evaluate(&program);
        let outcome = archive.admit(ArchivedAlpha {
            name: name.into(),
            fingerprint: fingerprint(&program, &cfg).0,
            program,
            ic: eval.ic,
            val_returns: eval.val_returns,
            train_days: (ds.train_days().start as u64, ds.train_days().end as u64),
            feature_set_id: fsid,
        });
        assert!(outcome.admitted(), "fixture alpha `{name}`: {outcome:?}");
    };
    admit("mined_pinned", best.program);
    admit("expert", init::domain_expert(&cfg));
    admit("momentum", init::momentum(&cfg));
    admit("reversal", init::industry_reversal(&cfg));
    admit("nn", init::two_layer_nn(&cfg));
    (ds, features, archive)
}

fn assert_blocks_bit_identical(what: &str, a: &CrossSections, b: &CrossSections) {
    assert_eq!(
        (a.n_days(), a.n_stocks()),
        (b.n_days(), b.n_stocks()),
        "{what}: shape"
    );
    assert_eq!(a.validity(), b.validity(), "{what}: validity masks");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: cell {i} diverged ({x} vs {y})"
        );
    }
}

#[test]
fn routed_predictions_equal_direct_serving_bitwise() {
    let _watchdog = Watchdog::arm(Duration::from_secs(240), "loopback router equivalence");
    let (ds, features, archive) = mined_archive();
    let cfg = AlphaConfig::default();
    let opts = EvalOptions::default();
    let direct =
        AlphaServer::from_archive(&archive, cfg, &opts, Arc::clone(&ds), &features).unwrap();

    let days: Vec<usize> = ds.valid_days().chain(ds.test_days()).step_by(7).collect();
    let mut reference = CrossSections::new(0, 0);
    let mut session = direct.session();
    let mut routed = CrossSections::new(0, 0);

    for n_shards in 1..=4 {
        let mut router =
            ShardedRouter::over_threads(&archive, n_shards, cfg, &opts, &ds, &features).unwrap();
        let meta = router.metadata().unwrap();
        assert_eq!(meta.n_alphas, archive.len());
        assert_eq!(
            meta.names,
            archive
                .entries()
                .iter()
                .map(|e| e.name.clone())
                .collect::<Vec<_>>(),
            "merged row order must equal archive order"
        );
        assert_eq!(meta.feature_set_id, feature_set_id(&features));
        for &day in &days {
            session.serve_day(day, &mut reference).unwrap();
            router.serve_day(day, &mut routed).unwrap();
            assert_blocks_bit_identical(
                &format!("{n_shards}-shard loopback day {day}"),
                &reference,
                &routed,
            );
        }
        // Range requests merge day-major across shards.
        let lo = days[0];
        session.serve_range(lo..lo + 3, &mut reference).unwrap();
        router.serve_range(lo..lo + 3, &mut routed).unwrap();
        assert_blocks_bit_identical(&format!("{n_shards}-shard range"), &reference, &routed);
    }
}

#[test]
fn uds_daemon_round_trip_equals_direct_serving_bitwise() {
    // Hard cap: a hung accept loop or a lost response must abort fast.
    let _watchdog = Watchdog::arm(Duration::from_secs(240), "uds daemon round trip");
    let (ds, features, archive) = mined_archive();
    let cfg = AlphaConfig::default();
    let opts = EvalOptions::default();
    let direct =
        AlphaServer::from_archive(&archive, cfg, &opts, Arc::clone(&ds), &features).unwrap();

    let dir = std::env::temp_dir().join(format!("aevs_uds_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    for n_shards in [1usize, 3] {
        // One daemon (listener + accept thread) per shard partition.
        let mut clients = Vec::new();
        for (i, part) in alphaevolve_store::partition_archive(&archive, n_shards)
            .into_iter()
            .enumerate()
        {
            let path = dir.join(format!("shard_{n_shards}_{i}.sock"));
            let server =
                AlphaServer::from_archive(&part, cfg, &opts, Arc::clone(&ds), &features).unwrap();
            let listener = std::os::unix::net::UnixListener::bind(&path).unwrap();
            std::thread::spawn(move || {
                let _ = serve_uds(listener, Arc::new(server));
            });
            clients.push(ServiceClient::connect(&path).unwrap());
        }
        let mut router = ShardedRouter::new(clients).unwrap();

        let mut reference = CrossSections::new(0, 0);
        let mut routed = CrossSections::new(0, 0);
        let mut session = direct.session();
        let days: Vec<usize> = ds.valid_days().chain(ds.test_days()).step_by(11).collect();
        for &day in &days {
            session.serve_day(day, &mut reference).unwrap();
            router.serve_day(day, &mut routed).unwrap();
            assert_blocks_bit_identical(
                &format!("{n_shards}-daemon UDS day {day}"),
                &reference,
                &routed,
            );
        }

        // Typed refusal crosses the socket: out-of-window day.
        let err = router.serve_day(2, &mut routed);
        assert!(
            matches!(
                err,
                Err(StoreError::Service {
                    code: ServiceErrorCode::DayOutOfRange,
                    ..
                })
            ),
            "expected a typed day refusal over UDS, got {err:?}"
        );
        // The connection survives a refused request.
        router.serve_day(days[0], &mut routed).unwrap();
        assert_blocks_bit_identical(
            "post-error request",
            &reference_for(&direct, days[0]),
            &routed,
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn reference_for(server: &AlphaServer, day: usize) -> CrossSections {
    server.serve_day(day)
}

#[test]
fn routers_compose_and_hide_behind_the_trait() {
    let _watchdog = Watchdog::arm(Duration::from_secs(240), "router composition");
    let (ds, features, archive) = mined_archive();
    let cfg = AlphaConfig::default();
    let opts = EvalOptions::default();
    let direct =
        AlphaServer::from_archive(&archive, cfg, &opts, Arc::clone(&ds), &features).unwrap();

    // Split the archive in two; serve each half behind its own 2-shard
    // router; then put a router over the two routers. Callers see one
    // AlphaService either way.
    let halves = alphaevolve_store::partition_archive(&archive, 2);
    let mut sub_routers = Vec::new();
    for half in &halves {
        sub_routers.push(ShardedRouter::over_threads(half, 2, cfg, &opts, &ds, &features).unwrap());
    }
    let mut root = ShardedRouter::new(sub_routers).unwrap();
    assert_eq!(root.n_shards(), 2);
    let meta = root.metadata().unwrap();
    assert_eq!(meta.n_alphas, archive.len());

    let day = ds.test_days().start;
    let mut out = CrossSections::new(0, 0);
    root.serve_day(day, &mut out).unwrap();
    assert_blocks_bit_identical("router-of-routers", &direct.serve_day(day), &out);
}

#[test]
fn mismatched_shards_are_refused_at_handshake() {
    let _watchdog = Watchdog::arm(Duration::from_secs(240), "shard mismatch handshake");
    let cfg = AlphaConfig::default();
    let opts = EvalOptions::default();
    let features = FeatureSet::paper();
    let build = |seed: u64, n_stocks: usize| -> AlphaServer {
        let md = MarketConfig {
            n_stocks,
            n_days: 120,
            seed,
            ..Default::default()
        }
        .generate();
        let ds = Arc::new(Dataset::build(&md, &features, SplitSpec::paper_ratios()).unwrap());
        AlphaServer::new(
            cfg,
            &opts,
            ds,
            vec![("expert".into(), init::domain_expert(&cfg))],
        )
    };
    let a = build(1, 10);
    let b = build(1, 12); // different universe width
    let err = ShardedRouter::new(vec![a.session(), b.session()]);
    assert!(
        matches!(
            err,
            Err(StoreError::Service {
                code: ServiceErrorCode::ShardMismatch,
                ..
            })
        ),
        "a 10-stock and a 12-stock shard must not merge"
    );
}

#[test]
fn prefetch_then_serve_is_transparent() {
    let _watchdog = Watchdog::arm(Duration::from_secs(240), "prefetch transparency");
    let (ds, features, archive) = mined_archive();
    let cfg = AlphaConfig::default();
    let opts = EvalOptions::default();
    let clients = spawn_thread_shards(&archive, 2, cfg, &opts, &ds, &features).unwrap();
    let mut client = clients.into_iter().next().unwrap();
    let day = ds.test_days().start;

    // Plain request.
    let mut plain = CrossSections::new(0, 0);
    client.serve_day(day, &mut plain).unwrap();
    // Prefetched request: same bits.
    let mut fetched = CrossSections::new(0, 0);
    client.prefetch_day(day).unwrap();
    client.serve_day(day, &mut fetched).unwrap();
    assert_blocks_bit_identical("prefetch", &plain, &fetched);
    // Abandoned prefetch followed by a different request: the client
    // drains the stale response and stays in lockstep.
    client.prefetch_day(day).unwrap();
    let meta = client.metadata().unwrap();
    assert!(meta.n_alphas > 0);
    client.serve_day(day + 1, &mut fetched).unwrap();
    client.serve_day(day, &mut fetched).unwrap();
    assert_blocks_bit_identical("post-abandoned-prefetch", &plain, &fetched);
}
