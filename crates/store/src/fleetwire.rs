//! The AEVS fleet wire protocol: island-model mining messages as framed
//! stream messages.
//!
//! A mining fleet reuses the serving transport seam verbatim — the same
//! magic/version/kind/CRC framing ([`frame`](crate::frame)), the same
//! [`read_message`](crate::wire::read_message)/[`write_message`](crate::wire::write_message)
//! stream discipline, the same typed kind-8 error responses — so an
//! island talks to its coordinator over a loopback pipe or a Unix socket
//! exactly like a serving client talks to an alpha server. A connection
//! is strictly request/response: kinds 11/13/15 (and the kind-9 metrics
//! scrape) are each answered by exactly one of 12/14/16/10, or a typed
//! kind-8 error.
//!
//! ## Payload layouts (all integers little-endian, floats as raw bits)
//!
//! ```text
//! EliteSubmitRequest      (kind 11): u64 island, u64 round, u64 searched,
//!                                    u64 elapsed ns, u64 program count,
//!                                    programs (progio encoding)
//! EliteAckResponse        (kind 12): u64 round, u64 admitted,
//!                                    u64 rejected by gate,
//!                                    u64 rejected as invalid,
//!                                    u64 migrant count, migrant programs
//! MigrantFetchRequest     (kind 13): u64 island, u64 round
//! MigrantSetResponse      (kind 14): u64 round, u64 migrant count,
//!                                    migrant programs
//! ArchiveSyncRequest      (kind 15): u64 island
//! ArchiveSnapshotResponse (kind 16): u64 len + serialized archive file
//!                                    bytes (a complete kind-1 frame;
//!                                    validate with AlphaArchive::from_bytes)
//! ```
//!
//! Programs cross the wire through [`progio`](crate::progio), and every
//! decode path runs [`read_verified_program`] — the envelope checks (caps
//! on instruction counts, operand indices, window lengths) are the first
//! trust layer against a hostile or corrupt island. The coordinator then
//! re-verifies each submission with the config-aware
//! [`ProgramVerifier`](alphaevolve_core::ProgramVerifier) and re-evaluates
//! it before gate admission; mining is a control plane, so these paths
//! favor validation rigor over the serving loop's zero-allocation budget.

use alphaevolve_core::AlphaProgram;

use crate::codec::{Reader, Writer};
use crate::error::{Result, ServiceErrorCode, StoreError};
use crate::frame::{
    frame_streaming_into as frame_stream, KIND_ARCHIVE_SNAPSHOT_RESPONSE,
    KIND_ARCHIVE_SYNC_REQUEST, KIND_ELITE_ACK_RESPONSE, KIND_ELITE_SUBMIT_REQUEST,
    KIND_MIGRANT_FETCH_REQUEST, KIND_MIGRANT_SET_RESPONSE,
};
use crate::progio::{read_verified_program, write_program};

/// An island's end-of-round publication: its elite programs plus the
/// round telemetry the coordinator turns into per-island gauges.
#[derive(Debug, Clone, PartialEq)]
pub struct EliteSubmit {
    /// The submitting island's id (dense, `0..islands`).
    pub island: u64,
    /// The migration round this submission closes.
    pub round: u64,
    /// Candidates searched by this island so far (cumulative).
    pub searched: u64,
    /// Wall-clock nanoseconds this island has spent mining so far.
    pub elapsed_ns: u64,
    /// The island's current elites, pruned, best first.
    pub programs: Vec<AlphaProgram>,
}

/// A decoded fleet request (kinds 11, 13, 15).
#[derive(Debug, Clone, PartialEq)]
pub enum FleetRequest {
    /// An island publishing its round's elites (kind 11).
    EliteSubmit(EliteSubmit),
    /// An island asking for the current migrant pool without submitting
    /// (kind 13) — used by late joiners and the archive-sync fallback.
    MigrantFetch {
        /// The requesting island's id.
        island: u64,
        /// The round whose migrant set is wanted.
        round: u64,
    },
    /// An island asking for a full archive snapshot (kind 15).
    ArchiveSync {
        /// The requesting island's id.
        island: u64,
    },
}

/// The coordinator's admission verdict answering an [`EliteSubmit`],
/// returned once the migration-round barrier releases.
#[derive(Debug, Clone, PartialEq)]
pub struct EliteAck {
    /// The round this acknowledgement closes.
    pub round: u64,
    /// Programs admitted into the shared archive this round (fleet-wide).
    pub admitted: u64,
    /// Programs rejected by the correlation gate / duplicate / weaker
    /// checks this round (fleet-wide).
    pub rejected_gate: u64,
    /// Programs rejected by the trust-boundary verifier this round
    /// (fleet-wide) — nonzero means a hostile or corrupt island.
    pub rejected_invalid: u64,
    /// The post-round migrant pool, in archive entry order.
    pub migrants: Vec<AlphaProgram>,
}

/// The coordinator's current migrant pool, answering a migrant fetch.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrantSet {
    /// The latest completed round.
    pub round: u64,
    /// The migrant pool, in archive entry order.
    pub migrants: Vec<AlphaProgram>,
}

fn programs_payload_len(programs: &[AlphaProgram]) -> usize {
    let mut w = Writer::new();
    for p in programs {
        write_program(&mut w, p);
    }
    w.len()
}

fn write_programs(b: &mut Vec<u8>, programs: &[AlphaProgram]) {
    b.extend_from_slice(&(programs.len() as u64).to_le_bytes());
    let mut w = Writer::new();
    for p in programs {
        write_program(&mut w, p);
    }
    b.extend_from_slice(&w.into_bytes());
}

fn read_programs(r: &mut Reader<'_>) -> Result<Vec<AlphaProgram>> {
    // A program encodes as at least three u64 section counts, so a count
    // claiming more than remaining/24 entries is rejected up front.
    let n = r.len_prefix(24)?;
    let mut programs = Vec::with_capacity(n);
    for _ in 0..n {
        programs.push(read_verified_program(r)?);
    }
    Ok(programs)
}

/// Encodes a fleet request frame into `out` (cleared first).
pub fn encode_fleet_request(req: &FleetRequest, out: &mut Vec<u8>) {
    match req {
        FleetRequest::EliteSubmit(s) => {
            let payload_len = 5 * 8 + programs_payload_len(&s.programs);
            frame_stream(out, KIND_ELITE_SUBMIT_REQUEST, payload_len, |b| {
                for x in [s.island, s.round, s.searched, s.elapsed_ns] {
                    b.extend_from_slice(&x.to_le_bytes());
                }
                write_programs(b, &s.programs);
            });
        }
        FleetRequest::MigrantFetch { island, round } => {
            frame_stream(out, KIND_MIGRANT_FETCH_REQUEST, 16, |b| {
                b.extend_from_slice(&island.to_le_bytes());
                b.extend_from_slice(&round.to_le_bytes());
            });
        }
        FleetRequest::ArchiveSync { island } => {
            frame_stream(out, KIND_ARCHIVE_SYNC_REQUEST, 8, |b| {
                b.extend_from_slice(&island.to_le_bytes());
            });
        }
    }
}

/// Decodes a fleet request payload for `kind` (one of 11, 13, 15).
/// Any other kind is a typed [`ServiceErrorCode::Protocol`] refusal.
pub fn decode_fleet_request(kind: u16, payload: &[u8]) -> Result<FleetRequest> {
    let mut r = Reader::new(payload);
    let req = match kind {
        KIND_ELITE_SUBMIT_REQUEST => FleetRequest::EliteSubmit(EliteSubmit {
            island: r.u64()?,
            round: r.u64()?,
            searched: r.u64()?,
            elapsed_ns: r.u64()?,
            programs: read_programs(&mut r)?,
        }),
        KIND_MIGRANT_FETCH_REQUEST => FleetRequest::MigrantFetch {
            island: r.u64()?,
            round: r.u64()?,
        },
        KIND_ARCHIVE_SYNC_REQUEST => FleetRequest::ArchiveSync { island: r.u64()? },
        other => {
            return Err(StoreError::service(
                ServiceErrorCode::Protocol,
                format!("kind {other} is not a fleet request"),
            ))
        }
    };
    r.finish()?;
    Ok(req)
}

/// Encodes an elite acknowledgement frame into `out` (cleared first).
pub fn encode_elite_ack(ack: &EliteAck, out: &mut Vec<u8>) {
    let payload_len = 5 * 8 + programs_payload_len(&ack.migrants);
    frame_stream(out, KIND_ELITE_ACK_RESPONSE, payload_len, |b| {
        for x in [
            ack.round,
            ack.admitted,
            ack.rejected_gate,
            ack.rejected_invalid,
        ] {
            b.extend_from_slice(&x.to_le_bytes());
        }
        write_programs(b, &ack.migrants);
    });
}

/// Decodes an elite acknowledgement payload.
pub fn decode_elite_ack(payload: &[u8]) -> Result<EliteAck> {
    let mut r = Reader::new(payload);
    let ack = EliteAck {
        round: r.u64()?,
        admitted: r.u64()?,
        rejected_gate: r.u64()?,
        rejected_invalid: r.u64()?,
        migrants: read_programs(&mut r)?,
    };
    r.finish()?;
    Ok(ack)
}

/// Encodes a migrant set frame into `out` (cleared first).
pub fn encode_migrant_set(set: &MigrantSet, out: &mut Vec<u8>) {
    let payload_len = 2 * 8 + programs_payload_len(&set.migrants);
    frame_stream(out, KIND_MIGRANT_SET_RESPONSE, payload_len, |b| {
        b.extend_from_slice(&set.round.to_le_bytes());
        write_programs(b, &set.migrants);
    });
}

/// Decodes a migrant set payload.
pub fn decode_migrant_set(payload: &[u8]) -> Result<MigrantSet> {
    let mut r = Reader::new(payload);
    let set = MigrantSet {
        round: r.u64()?,
        migrants: read_programs(&mut r)?,
    };
    r.finish()?;
    Ok(set)
}

/// Encodes an archive snapshot frame into `out` (cleared first).
/// `archive_bytes` is a complete serialized archive file — the kind-1
/// frame produced by `AlphaArchive::to_bytes` — nested whole inside this
/// kind-16 wire frame so the receiver validates it with the ordinary
/// file decoder (its own magic, CRC, and per-program envelope checks).
pub fn encode_archive_snapshot(archive_bytes: &[u8], out: &mut Vec<u8>) {
    frame_stream(
        out,
        KIND_ARCHIVE_SNAPSHOT_RESPONSE,
        8 + archive_bytes.len(),
        |b| {
            b.extend_from_slice(&(archive_bytes.len() as u64).to_le_bytes());
            b.extend_from_slice(archive_bytes);
        },
    );
}

/// Decodes an archive snapshot payload back into the serialized archive
/// file bytes. Validate them with `AlphaArchive::from_bytes`, which runs
/// the full file-format checks including per-program verification.
pub fn decode_archive_snapshot(payload: &[u8]) -> Result<Vec<u8>> {
    let mut r = Reader::new(payload);
    let n = r.len_prefix(1)?;
    let mut bytes = vec![0u8; n];
    for byte in &mut bytes {
        *byte = r.u8()?;
    }
    r.finish()?;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphaevolve_core::{init, AlphaConfig};

    fn sample_programs() -> Vec<AlphaProgram> {
        let cfg = AlphaConfig::default();
        vec![init::domain_expert(&cfg), init::two_layer_nn(&cfg)]
    }

    #[test]
    fn fleet_requests_round_trip() {
        let mut buf = Vec::new();
        for req in [
            FleetRequest::EliteSubmit(EliteSubmit {
                island: 3,
                round: 7,
                searched: 420,
                elapsed_ns: 1_234_567,
                programs: sample_programs(),
            }),
            FleetRequest::MigrantFetch {
                island: 1,
                round: 2,
            },
            FleetRequest::ArchiveSync { island: 0 },
        ] {
            encode_fleet_request(&req, &mut buf);
            let (kind, payload) = crate::frame::unframe_any(&buf).unwrap();
            assert_eq!(decode_fleet_request(kind, payload).unwrap(), req);
        }
    }

    #[test]
    fn elite_ack_round_trips() {
        let ack = EliteAck {
            round: 5,
            admitted: 2,
            rejected_gate: 1,
            rejected_invalid: 0,
            migrants: sample_programs(),
        };
        let mut buf = Vec::new();
        encode_elite_ack(&ack, &mut buf);
        let (kind, payload) = crate::frame::unframe_any(&buf).unwrap();
        assert_eq!(kind, KIND_ELITE_ACK_RESPONSE);
        assert_eq!(decode_elite_ack(payload).unwrap(), ack);
    }

    #[test]
    fn migrant_set_round_trips_empty_and_full() {
        let mut buf = Vec::new();
        for migrants in [Vec::new(), sample_programs()] {
            let set = MigrantSet { round: 9, migrants };
            encode_migrant_set(&set, &mut buf);
            let (kind, payload) = crate::frame::unframe_any(&buf).unwrap();
            assert_eq!(kind, KIND_MIGRANT_SET_RESPONSE);
            assert_eq!(decode_migrant_set(payload).unwrap(), set);
        }
    }

    #[test]
    fn archive_snapshot_round_trips() {
        let inner = crate::frame::frame(crate::frame::KIND_ARCHIVE, b"archive body");
        let mut buf = Vec::new();
        encode_archive_snapshot(&inner, &mut buf);
        let (kind, payload) = crate::frame::unframe_any(&buf).unwrap();
        assert_eq!(kind, KIND_ARCHIVE_SNAPSHOT_RESPONSE);
        assert_eq!(decode_archive_snapshot(payload).unwrap(), inner);
    }

    #[test]
    fn serving_kinds_are_not_fleet_requests() {
        for kind in [3u16, 4, 5, 6, 7, 8, 9, 10, 12, 14, 16, 0, 999] {
            match decode_fleet_request(kind, &[]) {
                Err(StoreError::Service { code, .. }) => {
                    assert_eq!(code, ServiceErrorCode::Protocol, "kind {kind}");
                }
                other => panic!("kind {kind}: expected Protocol refusal, got {other:?}"),
            }
        }
    }

    #[test]
    fn absurd_program_count_is_rejected_up_front() {
        // A migrant-fetch-sized payload claiming 2^60 programs must fail
        // on the length prefix, not attempt to allocate.
        let mut w = Writer::new();
        w.u64(1); // round
        w.u64(1u64 << 60); // claimed migrant count
        let payload = w.into_bytes();
        assert!(matches!(
            decode_migrant_set(&payload),
            Err(StoreError::Malformed { .. } | StoreError::Truncated { .. })
        ));
    }
}
