//! The day-request router: one [`AlphaService`] face over N shard
//! replicas, each serving a partition of the alpha pool.
//!
//! The archive codec makes programs cheap to ship, so the natural
//! scale-out is to split an archive's programs across replicas
//! ([`partition_archive`]) and put a router in front: a day request fans
//! out to every shard (via [`AlphaService::prefetch_day`], so remote
//! shards compute concurrently), and the per-shard prediction blocks
//! merge back into one [`CrossSections`] panel in archive order —
//! **bit-identical** to what a single un-sharded
//! [`AlphaServer`] returns for the same
//! request (pinned by `crates/store/tests/service.rs`).
//!
//! [`ShardedRouter`] itself implements [`AlphaService`], so:
//!
//! * callers cannot tell a shard fleet from a single server,
//! * routers compose — a router of routers (or a router whose shards sit
//!   behind Unix sockets on other machines) is just another service,
//! * a router can be re-exported over any transport by handing it to
//!   [`serve_connection`].
//!
//! Shards are wherever a service can be: same-thread
//! ([`ServerSession`](crate::service::ServerSession)), worker threads
//! behind in-process pipes ([`spawn_thread_shards`]), or daemon
//! processes behind Unix sockets
//! ([`ServiceClient::connect`](crate::transport::ServiceClient::connect)).

use std::ops::Range;
use std::sync::Arc;

use alphaevolve_backtest::CrossSections;
use alphaevolve_core::{AlphaConfig, EvalOptions};
use alphaevolve_market::features::FeatureSet;
use alphaevolve_market::Dataset;
use alphaevolve_obs::MetricsSnapshot;

use crate::archive::AlphaArchive;
use crate::error::{Result, ServiceErrorCode, StoreError};
use crate::server::AlphaServer;
use crate::service::{AlphaService, ServiceMetadata};
use crate::transport::{loopback, serve_connection, Loopback, ServiceClient};

/// Fans day requests out to shard services and merges their prediction
/// blocks; see the [module docs](self).
pub struct ShardedRouter<S: AlphaService> {
    shards: Vec<S>,
    /// Alphas per shard, in shard order (row offsets of the merge).
    shard_alphas: Vec<usize>,
    meta: ServiceMetadata,
    /// Reused decode target for per-shard blocks.
    scratch: CrossSections,
}

impl<S: AlphaService> ShardedRouter<S> {
    /// Builds a router over connected shard services. Performs the
    /// metadata handshake with every shard and refuses fleets whose
    /// replicas disagree on stock count, day window, or feature recipe —
    /// merging predictions across mismatched panels would silently serve
    /// garbage.
    pub fn new(mut shards: Vec<S>) -> Result<ShardedRouter<S>> {
        if shards.is_empty() {
            return Err(StoreError::service(
                ServiceErrorCode::ShardMismatch,
                "a router needs at least one shard",
            ));
        }
        let mut metas = Vec::with_capacity(shards.len());
        for shard in &mut shards {
            metas.push(shard.metadata()?);
        }
        let first = &metas[0];
        for (i, m) in metas.iter().enumerate().skip(1) {
            if (m.n_stocks, m.n_days, m.min_day, m.feature_set_id)
                != (
                    first.n_stocks,
                    first.n_days,
                    first.min_day,
                    first.feature_set_id,
                )
            {
                return Err(StoreError::service(
                    ServiceErrorCode::ShardMismatch,
                    format!(
                        "shard {i} serves {}×{}..{} (recipe {:#018x}), shard 0 serves {}×{}..{} \
                         (recipe {:#018x})",
                        m.n_stocks,
                        m.min_day,
                        m.n_days,
                        m.feature_set_id,
                        first.n_stocks,
                        first.min_day,
                        first.n_days,
                        first.feature_set_id,
                    ),
                ));
            }
        }
        let shard_alphas: Vec<usize> = metas.iter().map(|m| m.n_alphas).collect();
        let meta = ServiceMetadata {
            n_alphas: shard_alphas.iter().sum(),
            n_stocks: first.n_stocks,
            n_days: first.n_days,
            min_day: first.min_day,
            feature_set_id: first.feature_set_id,
            names: metas.iter().flat_map(|m| m.names.iter().cloned()).collect(),
        };
        Ok(ShardedRouter {
            shards,
            shard_alphas,
            meta,
            scratch: CrossSections::new(0, 0),
        })
    }

    /// Number of shard replicas behind this router.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }
}

impl<S: AlphaService> AlphaService for ShardedRouter<S> {
    fn metadata(&mut self) -> Result<ServiceMetadata> {
        Ok(self.meta.clone())
    }

    fn prefetch_day(&mut self, day: usize) -> Result<()> {
        for shard in &mut self.shards {
            shard.prefetch_day(day)?;
        }
        Ok(())
    }

    fn serve_day(&mut self, day: usize, out: &mut CrossSections) -> Result<()> {
        out.reset(self.meta.n_alphas, self.meta.n_stocks);
        // Fan out first: every remote shard starts computing before the
        // router blocks on the first response.
        for shard in &mut self.shards {
            shard.prefetch_day(day)?;
        }
        let mut row = 0;
        for (i, shard) in self.shards.iter_mut().enumerate() {
            shard.serve_day(day, &mut self.scratch)?;
            if self.scratch.n_days() != self.shard_alphas[i]
                || self.scratch.n_stocks() != self.meta.n_stocks
            {
                return Err(shard_shape_error(i, &self.scratch, self.shard_alphas[i]));
            }
            out.copy_rows_from(row, &self.scratch);
            row += self.shard_alphas[i];
        }
        Ok(())
    }

    fn serve_range(&mut self, days: Range<usize>, out: &mut CrossSections) -> Result<()> {
        let n_days = days.len();
        let b = self.meta.n_alphas;
        let k = self.meta.n_stocks;
        out.reset(n_days * b, k);
        let mut offset = 0;
        for (i, shard) in self.shards.iter_mut().enumerate() {
            shard.serve_range(days.clone(), &mut self.scratch)?;
            let sb = self.shard_alphas[i];
            if self.scratch.n_days() != n_days * sb || self.scratch.n_stocks() != k {
                return Err(shard_shape_error(i, &self.scratch, n_days * sb));
            }
            // Interleave: shard rows are day-major over sb alphas; the
            // merged panel is day-major over all b alphas.
            for d in 0..n_days {
                for r in 0..sb {
                    let dst = d * b + offset + r;
                    out.row_mut(dst)
                        .copy_from_slice(self.scratch.row(d * sb + r));
                    out.set_day_validity(dst, self.scratch.day_valid(d * sb + r));
                }
            }
            offset += sb;
        }
        Ok(())
    }

    /// Scrapes every shard and merges the snapshots twice: once unlabeled
    /// (fleet-wide totals: a merged `wire_requests_total{kind="day"}`
    /// equals the sum over shards) and once with a `shard` label appended,
    /// so the per-shard breakdown survives the merge.
    fn metrics(&mut self, out: &mut MetricsSnapshot) -> Result<()> {
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let mut snap = MetricsSnapshot::new();
            shard.metrics(&mut snap)?;
            out.merge_from(&snap);
            snap.add_label("shard", &i.to_string());
            out.merge_from(&snap);
        }
        Ok(())
    }
}

fn shard_shape_error(shard: usize, got: &CrossSections, want_rows: usize) -> StoreError {
    StoreError::service(
        ServiceErrorCode::ShardMismatch,
        format!(
            "shard {shard} returned a {}×{} block, expected {}-row",
            got.n_days(),
            got.n_stocks(),
            want_rows
        ),
    )
}

/// Splits an archive's entries into `n_shards` contiguous partitions,
/// preserving entry order — the order concatenated shard blocks merge
/// back in. Every partition keeps the parent's capacity and correlation
/// cutoff (entries that co-existed in the parent always co-exist in a
/// subset). Trailing shards are empty when there are fewer entries than
/// shards.
///
/// # Panics
/// If `n_shards` is zero.
pub fn partition_archive(archive: &AlphaArchive, n_shards: usize) -> Vec<AlphaArchive> {
    assert!(n_shards > 0, "cannot partition into zero shards");
    let entries = archive.entries();
    let per = entries.len().div_ceil(n_shards.max(1)).max(1);
    let mut parts = Vec::with_capacity(n_shards);
    for shard in 0..n_shards {
        let mut part = AlphaArchive::with_cutoff(archive.capacity(), archive.cutoff());
        let lo = (shard * per).min(entries.len());
        let hi = ((shard + 1) * per).min(entries.len());
        for entry in &entries[lo..hi] {
            let admitted = part.admit(entry.clone()).admitted();
            debug_assert!(admitted, "a gated subset re-admits in order");
        }
        parts.push(part);
    }
    parts
}

/// Boots an in-process shard fleet: partitions `archive` into
/// `n_shards`, builds one [`AlphaServer`] per partition, serves each
/// from its own thread over a [`Loopback`] pipe, and returns the
/// connected clients (hand them to [`ShardedRouter::new`]). Threads
/// exit when their client half drops.
pub fn spawn_thread_shards(
    archive: &AlphaArchive,
    n_shards: usize,
    cfg: AlphaConfig,
    opts: &EvalOptions,
    dataset: &Arc<Dataset>,
    features: &FeatureSet,
) -> Result<Vec<ServiceClient<Loopback>>> {
    let mut clients = Vec::with_capacity(n_shards);
    for part in partition_archive(archive, n_shards) {
        let server = AlphaServer::from_archive(&part, cfg, opts, Arc::clone(dataset), features)?;
        let (client_end, mut server_end) = loopback();
        std::thread::spawn(move || {
            let mut session = server.session();
            // EOF (client dropped) is the normal shutdown path.
            let _ = serve_connection(&mut session, &mut server_end);
        });
        clients.push(ServiceClient::new(client_end));
    }
    Ok(clients)
}

impl ShardedRouter<ServiceClient<Loopback>> {
    /// One-call in-process scale-out: [`spawn_thread_shards`] +
    /// [`ShardedRouter::new`].
    pub fn over_threads(
        archive: &AlphaArchive,
        n_shards: usize,
        cfg: AlphaConfig,
        opts: &EvalOptions,
        dataset: &Arc<Dataset>,
        features: &FeatureSet,
    ) -> Result<ShardedRouter<ServiceClient<Loopback>>> {
        ShardedRouter::new(spawn_thread_shards(
            archive, n_shards, cfg, opts, dataset, features,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphaevolve_core::init;

    fn alpha(name: &str, fp: u64, ic: f64, freq: u64) -> crate::archive::ArchivedAlpha {
        let cfg = AlphaConfig::default();
        crate::archive::ArchivedAlpha {
            name: name.into(),
            program: init::domain_expert(&cfg),
            fingerprint: fp,
            ic,
            val_returns: (0..60)
                .map(|i| (std::f64::consts::TAU * freq as f64 * i as f64 / 60.0).sin() * 0.01)
                .collect(),
            train_days: (30, 90),
            feature_set_id: 7,
        }
    }

    #[test]
    fn partitions_are_contiguous_and_order_preserving() {
        let mut ar = AlphaArchive::new(16);
        for (i, freq) in [1u64, 2, 3, 4, 5].iter().enumerate() {
            assert!(ar
                .admit(alpha(&format!("a{i}"), i as u64 + 1, 0.1, *freq))
                .admitted());
        }
        for n in 1..=4 {
            let parts = partition_archive(&ar, n);
            assert_eq!(parts.len(), n);
            let names: Vec<String> = parts
                .iter()
                .flat_map(|p| p.entries().iter().map(|e| e.name.clone()))
                .collect();
            assert_eq!(names, vec!["a0", "a1", "a2", "a3", "a4"], "{n} shards");
        }
        // More shards than entries: trailing shards are empty, nothing lost.
        let parts = partition_archive(&ar, 8);
        assert_eq!(parts.iter().map(AlphaArchive::len).sum::<usize>(), 5);
    }

    #[test]
    fn router_refuses_an_empty_fleet() {
        let shards: Vec<ServiceClient<Loopback>> = Vec::new();
        assert!(matches!(
            ShardedRouter::new(shards),
            Err(StoreError::Service {
                code: ServiceErrorCode::ShardMismatch,
                ..
            })
        ));
    }
}
