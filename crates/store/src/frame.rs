//! The container framing shared by every store file **and** every wire
//! message of the AEVS serving protocol.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = b"AEVS"
//! 4       2     format version (currently 1)
//! 6       2     record kind (see the table below)
//! 8       8     payload length in bytes
//! 16      n     payload (kind-specific)
//! 16+n    4     CRC-32 (IEEE) over bytes [0, 16+n) — header AND payload
//! ```
//!
//! Record kinds:
//!
//! | kind | record | direction | payload spec |
//! |------|--------|-----------|--------------|
//! | 1 | alpha archive | file | [`archive`](crate::archive) module docs |
//! | 2 | evolution checkpoint | file | [`checkpoint`](crate::checkpoint) module docs |
//! | 3 | `ServeDayRequest` | wire, client → server | [`wire`](crate::wire) module docs |
//! | 4 | `ServeRangeRequest` | wire, client → server | [`wire`](crate::wire) module docs |
//! | 5 | `MetadataRequest` | wire, client → server | [`wire`](crate::wire) module docs |
//! | 6 | `PredictionsResponse` | wire, server → client | [`wire`](crate::wire) module docs |
//! | 7 | `MetadataResponse` | wire, server → client | [`wire`](crate::wire) module docs |
//! | 8 | `ErrorResponse` | wire, server → client | [`wire`](crate::wire) module docs |
//! | 9 | `MetricsRequest` | wire, client → server | [`wire`](crate::wire) module docs |
//! | 10 | `MetricsResponse` | wire, server → client | [`wire`](crate::wire) module docs |
//! | 11 | `EliteSubmitRequest` | wire, island → coordinator | [`fleetwire`](crate::fleetwire) module docs |
//! | 12 | `EliteAckResponse` | wire, coordinator → island | [`fleetwire`](crate::fleetwire) module docs |
//! | 13 | `MigrantFetchRequest` | wire, island → coordinator | [`fleetwire`](crate::fleetwire) module docs |
//! | 14 | `MigrantSetResponse` | wire, coordinator → island | [`fleetwire`](crate::fleetwire) module docs |
//! | 15 | `ArchiveSyncRequest` | wire, island → coordinator | [`fleetwire`](crate::fleetwire) module docs |
//! | 16 | `ArchiveSnapshotResponse` | wire, coordinator → island | [`fleetwire`](crate::fleetwire) module docs |
//!
//! Kinds 1–2 are whole files (one frame per file, trailing bytes
//! rejected); kinds 3–16 are messages on a byte stream — the identical
//! framing, sent back to back. A serving connection is strictly
//! request/response: the client writes one request frame (kind 3–5, 9),
//! the server answers with exactly one response frame (kind 6–8, 10).
//! A mining-fleet connection follows the same discipline with the fleet
//! kinds: requests 11/13/15 (and the metrics scrape, kind 9) are each
//! answered by exactly one of 12/14/16/10 — or a kind-8 typed error.
//!
//! ## The wire handshake
//!
//! There is no separate hello message: **the handshake is
//! `MetadataRequest` → `MetadataResponse`**. Every frame already carries
//! the magic, the protocol version, and a CRC, so the first exchange
//! proves (a) both ends speak AEVS, (b) the version matches (a newer
//! peer's frame fails with [`StoreError::UnsupportedVersion`]), and (c)
//! the link is intact. Clients (and the sharded router, once per shard)
//! issue it on connect and cache the returned capabilities — alpha count
//! and names, stock count, day count, feature-set id — before the first
//! prediction request.
//!
//! Readers verify magic → declared length → CRC before touching the
//! payload, so a flipped bit anywhere in the frame (header included)
//! surfaces as a typed [`StoreError`] and a partially-written file as
//! [`StoreError::Truncated`] — never a panic, never a silent partial load.
//! The corruption battery in `crates/store/tests/corruption.rs` covers
//! wire frames with the same every-bit-flip / every-truncation rigor as
//! the file records.

use std::path::Path;

use crate::codec::crc32;
use crate::error::{Result, StoreError};

/// File magic: "AlphaEVolve Store".
pub const MAGIC: [u8; 4] = *b"AEVS";

/// Current (and only) format version.
pub const VERSION: u16 = 1;

/// Record kind of an alpha archive file.
pub const KIND_ARCHIVE: u16 = 1;

/// Record kind of an evolution checkpoint file.
pub const KIND_CHECKPOINT: u16 = 2;

/// Wire kind: request one day's predictions across all served alphas.
pub const KIND_SERVE_DAY_REQUEST: u16 = 3;

/// Wire kind: request a contiguous day range's predictions.
pub const KIND_SERVE_RANGE_REQUEST: u16 = 4;

/// Wire kind: request the service's capabilities (the handshake).
pub const KIND_METADATA_REQUEST: u16 = 5;

/// Wire kind: a block of predictions answering kinds 3–4.
pub const KIND_PREDICTIONS_RESPONSE: u16 = 6;

/// Wire kind: the service's capabilities, answering kind 5.
pub const KIND_METADATA_RESPONSE: u16 = 7;

/// Wire kind: a typed refusal/failure answering any request.
pub const KIND_ERROR_RESPONSE: u16 = 8;

/// Wire kind: request a metrics snapshot scrape.
pub const KIND_METRICS_REQUEST: u16 = 9;

/// Wire kind: a text-exposition metrics snapshot, answering kind 9.
pub const KIND_METRICS_RESPONSE: u16 = 10;

/// Wire kind: an island publishing its round's elite programs.
pub const KIND_ELITE_SUBMIT_REQUEST: u16 = 11;

/// Wire kind: the coordinator's admission verdict + migrant set,
/// answering kind 11 once the migration-round barrier releases.
pub const KIND_ELITE_ACK_RESPONSE: u16 = 12;

/// Wire kind: request the current migrant pool without submitting.
pub const KIND_MIGRANT_FETCH_REQUEST: u16 = 13;

/// Wire kind: the coordinator's current migrant pool, answering kind 13.
pub const KIND_MIGRANT_SET_RESPONSE: u16 = 14;

/// Wire kind: request a full snapshot of the shared alpha archive.
pub const KIND_ARCHIVE_SYNC_REQUEST: u16 = 15;

/// Wire kind: the serialized archive file bytes, answering kind 15.
pub const KIND_ARCHIVE_SNAPSHOT_RESPONSE: u16 = 16;

/// Header length in bytes (magic + version + kind + payload length).
pub const HEADER_LEN: usize = 16;

/// Frame trailer length in bytes (the CRC-32).
pub const TRAILER_LEN: usize = 4;

/// Wraps `payload` in the magic/version/kind/CRC frame.
pub fn frame(kind: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    frame_into(kind, payload, &mut out);
    out
}

/// [`frame`] into a caller-owned buffer (cleared first) — the wire path
/// reuses one buffer per connection so warm messages allocate nothing.
pub fn frame_into(kind: u16, payload: &[u8], out: &mut Vec<u8>) {
    frame_streaming_into(out, kind, payload.len(), |b| b.extend_from_slice(payload));
}

/// The one place the frame layout is written: header, then `payload_len`
/// payload bytes produced by `fill` directly into `out` (no intermediate
/// payload buffer — large prediction blocks frame without a copy), then
/// the CRC over header + payload. `out` is cleared first.
pub(crate) fn frame_streaming_into(
    out: &mut Vec<u8>,
    kind: u16,
    payload_len: usize,
    fill: impl FnOnce(&mut Vec<u8>),
) {
    out.clear();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(payload_len as u64).to_le_bytes());
    let before = out.len();
    fill(out);
    debug_assert_eq!(out.len() - before, payload_len, "payload length mismatch");
    let crc = crc32(out);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Validates the frame and returns the payload slice.
pub fn unframe(expected_kind: u16, bytes: &[u8]) -> Result<&[u8]> {
    let (kind, payload) = unframe_any(bytes)?;
    if kind != expected_kind {
        return Err(StoreError::WrongKind {
            expected: expected_kind,
            found: kind,
        });
    }
    Ok(payload)
}

/// Validates the frame and returns its kind alongside the payload slice —
/// for stream readers that dispatch on the kind (a response may be
/// predictions, metadata, or a typed error).
pub fn unframe_any(bytes: &[u8]) -> Result<(u16, &[u8])> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(StoreError::Truncated {
            needed: HEADER_LEN + TRAILER_LEN,
            available: bytes.len(),
        });
    }
    if bytes[..4] != MAGIC {
        return Err(StoreError::BadMagic {
            found: bytes[..4].try_into().unwrap(),
        });
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let payload_len = usize::try_from(payload_len).map_err(|_| StoreError::Malformed {
        what: format!("payload length {payload_len} exceeds the address space"),
    })?;
    let total = HEADER_LEN
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(TRAILER_LEN))
        .ok_or_else(|| StoreError::Malformed {
            what: format!("payload length {payload_len} overflows"),
        })?;
    if bytes.len() < total {
        return Err(StoreError::Truncated {
            needed: total,
            available: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(StoreError::Malformed {
            what: format!("{} trailing byte(s) after the frame", bytes.len() - total),
        });
    }
    let stored_crc = u32::from_le_bytes(bytes[total - 4..total].try_into().unwrap());
    let computed = crc32(&bytes[..total - 4]);
    if stored_crc != computed {
        return Err(StoreError::Corrupt {
            expected: stored_crc,
            found: computed,
        });
    }
    // Version/kind only after the CRC: a flipped header bit reports as
    // corruption, not as a phantom "future version".
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let kind = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    Ok((kind, &bytes[HEADER_LEN..HEADER_LEN + payload_len]))
}

/// Frames `payload` and writes it to `path` (via a unique temporary file
/// renamed into place, so a crash mid-write leaves no half-frame at the
/// final path).
pub fn write_file(path: &Path, kind: u16, payload: &[u8]) -> Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    // Process id alone is not unique enough: two threads saving the same
    // path (or `foo.aev` next to `foo.ckpt`, since `with_extension` would
    // strip the real extension) must not share a temp file.
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let framed = frame(kind, payload);
    let file_name = path
        .file_name()
        .ok_or_else(|| StoreError::Malformed {
            what: format!("path `{}` has no file name", path.display()),
        })?
        .to_os_string();
    let mut tmp_name = file_name;
    tmp_name.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, &framed)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e.into())
        }
    }
}

/// Reads `path` and returns its validated payload.
pub fn read_file(path: &Path, expected_kind: u16) -> Result<Vec<u8>> {
    let bytes = std::fs::read(path)?;
    let payload = unframe(expected_kind, &bytes)?;
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let payload = b"hello alpha".to_vec();
        let framed = frame(KIND_ARCHIVE, &payload);
        assert_eq!(unframe(KIND_ARCHIVE, &framed).unwrap(), &payload[..]);
    }

    #[test]
    fn unframe_any_reports_the_kind() {
        let framed = frame(KIND_SERVE_DAY_REQUEST, b"payload");
        let (kind, payload) = unframe_any(&framed).unwrap();
        assert_eq!(kind, KIND_SERVE_DAY_REQUEST);
        assert_eq!(payload, b"payload");
    }

    #[test]
    fn frame_into_reuses_the_buffer() {
        let mut buf = Vec::new();
        frame_into(KIND_METADATA_REQUEST, b"", &mut buf);
        assert_eq!(buf, frame(KIND_METADATA_REQUEST, b""));
        let cap = buf.capacity();
        frame_into(KIND_METADATA_REQUEST, b"", &mut buf);
        assert_eq!(buf.capacity(), cap, "re-framing must not reallocate");
    }

    #[test]
    fn wrong_kind_is_typed() {
        let framed = frame(KIND_ARCHIVE, b"x");
        match unframe(KIND_CHECKPOINT, &framed) {
            Err(StoreError::WrongKind { expected, found }) => {
                assert_eq!((expected, found), (KIND_CHECKPOINT, KIND_ARCHIVE));
            }
            other => panic!("expected WrongKind, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut framed = frame(KIND_ARCHIVE, b"x");
        framed[0] = b'X';
        assert!(matches!(
            unframe(KIND_ARCHIVE, &framed),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let framed = frame(KIND_ARCHIVE, b"some payload worth protecting");
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut corrupted = framed.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(
                    unframe(KIND_ARCHIVE, &corrupted).is_err(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let framed = frame(KIND_CHECKPOINT, b"payload");
        for cut in 0..framed.len() {
            assert!(
                unframe(KIND_CHECKPOINT, &framed[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn future_version_is_rejected() {
        let mut framed = frame(KIND_ARCHIVE, b"x");
        // Bump the version and fix up the CRC so only the version differs.
        framed[4] = 2;
        let total = framed.len();
        let crc = crc32(&framed[..total - 4]);
        framed[total - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            unframe(KIND_ARCHIVE, &framed),
            Err(StoreError::UnsupportedVersion { found: 2 })
        ));
    }
}
