//! The container framing shared by every store file.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = b"AEVS"
//! 4       2     format version (currently 1)
//! 6       2     record kind (1 = alpha archive, 2 = evolution checkpoint)
//! 8       8     payload length in bytes
//! 16      n     payload (kind-specific, see `archive` / `checkpoint`)
//! 16+n    4     CRC-32 (IEEE) over bytes [0, 16+n) — header AND payload
//! ```
//!
//! Readers verify magic → declared length → CRC before touching the
//! payload, so a flipped bit anywhere in the file (header included)
//! surfaces as a typed [`StoreError`] and a partially-written file as
//! [`StoreError::Truncated`] — never a panic, never a silent partial load.

use std::path::Path;

use crate::codec::crc32;
use crate::error::{Result, StoreError};

/// File magic: "AlphaEVolve Store".
pub const MAGIC: [u8; 4] = *b"AEVS";

/// Current (and only) format version.
pub const VERSION: u16 = 1;

/// Record kind of an alpha archive file.
pub const KIND_ARCHIVE: u16 = 1;

/// Record kind of an evolution checkpoint file.
pub const KIND_CHECKPOINT: u16 = 2;

/// Header length in bytes (magic + version + kind + payload length).
const HEADER_LEN: usize = 16;

/// Wraps `payload` in the magic/version/kind/CRC frame.
pub fn frame(kind: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validates the frame and returns the payload slice.
pub fn unframe(expected_kind: u16, bytes: &[u8]) -> Result<&[u8]> {
    if bytes.len() < HEADER_LEN + 4 {
        return Err(StoreError::Truncated {
            needed: HEADER_LEN + 4,
            available: bytes.len(),
        });
    }
    if bytes[..4] != MAGIC {
        return Err(StoreError::BadMagic {
            found: bytes[..4].try_into().unwrap(),
        });
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let payload_len = usize::try_from(payload_len).map_err(|_| StoreError::Malformed {
        what: format!("payload length {payload_len} exceeds the address space"),
    })?;
    let total = HEADER_LEN
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(4))
        .ok_or_else(|| StoreError::Malformed {
            what: format!("payload length {payload_len} overflows"),
        })?;
    if bytes.len() < total {
        return Err(StoreError::Truncated {
            needed: total,
            available: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(StoreError::Malformed {
            what: format!("{} trailing byte(s) after the frame", bytes.len() - total),
        });
    }
    let stored_crc = u32::from_le_bytes(bytes[total - 4..total].try_into().unwrap());
    let computed = crc32(&bytes[..total - 4]);
    if stored_crc != computed {
        return Err(StoreError::Corrupt {
            expected: stored_crc,
            found: computed,
        });
    }
    // Version/kind only after the CRC: a flipped header bit reports as
    // corruption, not as a phantom "future version".
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let kind = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    if kind != expected_kind {
        return Err(StoreError::WrongKind {
            expected: expected_kind,
            found: kind,
        });
    }
    Ok(&bytes[HEADER_LEN..HEADER_LEN + payload_len])
}

/// Frames `payload` and writes it to `path` (via a unique temporary file
/// renamed into place, so a crash mid-write leaves no half-frame at the
/// final path).
pub fn write_file(path: &Path, kind: u16, payload: &[u8]) -> Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    // Process id alone is not unique enough: two threads saving the same
    // path (or `foo.aev` next to `foo.ckpt`, since `with_extension` would
    // strip the real extension) must not share a temp file.
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let framed = frame(kind, payload);
    let file_name = path
        .file_name()
        .ok_or_else(|| StoreError::Malformed {
            what: format!("path `{}` has no file name", path.display()),
        })?
        .to_os_string();
    let mut tmp_name = file_name;
    tmp_name.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, &framed)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e.into())
        }
    }
}

/// Reads `path` and returns its validated payload.
pub fn read_file(path: &Path, expected_kind: u16) -> Result<Vec<u8>> {
    let bytes = std::fs::read(path)?;
    let payload = unframe(expected_kind, &bytes)?;
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let payload = b"hello alpha".to_vec();
        let framed = frame(KIND_ARCHIVE, &payload);
        assert_eq!(unframe(KIND_ARCHIVE, &framed).unwrap(), &payload[..]);
    }

    #[test]
    fn wrong_kind_is_typed() {
        let framed = frame(KIND_ARCHIVE, b"x");
        match unframe(KIND_CHECKPOINT, &framed) {
            Err(StoreError::WrongKind { expected, found }) => {
                assert_eq!((expected, found), (KIND_CHECKPOINT, KIND_ARCHIVE));
            }
            other => panic!("expected WrongKind, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut framed = frame(KIND_ARCHIVE, b"x");
        framed[0] = b'X';
        assert!(matches!(
            unframe(KIND_ARCHIVE, &framed),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let framed = frame(KIND_ARCHIVE, b"some payload worth protecting");
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut corrupted = framed.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(
                    unframe(KIND_ARCHIVE, &corrupted).is_err(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let framed = frame(KIND_CHECKPOINT, b"payload");
        for cut in 0..framed.len() {
            assert!(
                unframe(KIND_CHECKPOINT, &framed[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn future_version_is_rejected() {
        let mut framed = frame(KIND_ARCHIVE, b"x");
        // Bump the version and fix up the CRC so only the version differs.
        framed[4] = 2;
        let total = framed.len();
        let crc = crc32(&framed[..total - 4]);
        framed[total - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            unframe(KIND_ARCHIVE, &framed),
            Err(StoreError::UnsupportedVersion { found: 2 })
        ));
    }
}
