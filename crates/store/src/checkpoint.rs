//! Serialization of [`EvolutionCheckpoint`]s — the durable form of a
//! paused search.
//!
//! A checkpoint captures the *complete* single-worker search state
//! (population genomes, worker RNG stream, sharded fingerprint-cache
//! contents, best alpha, trajectory, counters, config), so a search
//! checkpointed at generation N, reloaded in a fresh process against an
//! identically-reconstructed evaluator, and resumed produces the same
//! best alpha — fingerprint and IC bit for bit — as the uninterrupted
//! run (pinned by `tests/checkpoint_resume.rs`).
//!
//! ## File payload layout (record kind 2, inside the `AEVS` frame)
//!
//! ```text
//! config:
//!   u64 × 2          population size, tournament size
//!   u64 × 6          mutation prob + five action weights (f64 bits)
//!   u8 + u64 [+u32]  budget: 0 = Searched(count) | 1 = WallTime(secs, nanos)
//!   u64 × 3          seed, workers, batch
//! u64 × 8            counters: searched, evaluated, redundant,
//!                    cache hits, invalid, gate-rejected,
//!                    static-rejected, folded
//! u64 + u32          elapsed wall-clock (secs, subsec nanos)
//! u64 × 4            worker RNG stream state (xoshiro256++)
//! u64 + entries      population: count, then per member a program
//!                    (see `progio`) + Option<f64> fitness (tag + bits)
//! u64 + entries      fingerprint cache: count, then per entry the u64
//!                    fingerprint + Option<f64> fitness — sorted by
//!                    fingerprint (canonical order)
//! u8 [+best]         best alpha: 0 = none | 1 = genome program + pruned
//!                    program + f64 IC + f64 return series
//! u64 + entries      trajectory: count, then (u64 searched, f64 best IC)
//! u8 [+epoch]        migration epoch: 0 = solo run | 1 = u64 island id,
//!                    u64 round, f64 migrant fraction (finite, in [0,1]),
//!                    then u64 migrant count + migrant programs
//! ```

use std::path::Path;
use std::time::Duration;

use alphaevolve_core::evolution::{Budget, EvolutionCheckpoint, EvolutionConfig, MigrationState};
use alphaevolve_core::mutation::{MutationConfig, MutationWeights};
use alphaevolve_core::{BestAlpha, Individual, SearchStats, TrajectoryPoint};

use crate::codec::{Reader, Writer};
use crate::error::{Result, StoreError};
use crate::frame::{read_file, write_file, KIND_CHECKPOINT};
use crate::progio::{read_verified_program, write_program};

/// Serializes a checkpoint into a framed byte buffer.
pub fn checkpoint_to_bytes(c: &EvolutionCheckpoint) -> Vec<u8> {
    crate::frame::frame(KIND_CHECKPOINT, &encode_payload(c))
}

/// Deserializes a checkpoint written by [`checkpoint_to_bytes`].
pub fn checkpoint_from_bytes(bytes: &[u8]) -> Result<EvolutionCheckpoint> {
    let payload = crate::frame::unframe(KIND_CHECKPOINT, bytes)?;
    decode_payload(payload)
}

/// Writes a checkpoint to `path` (atomically: temp file + rename, so a
/// crash mid-save cannot leave a torn checkpoint at the final path).
pub fn save_checkpoint(path: impl AsRef<Path>, c: &EvolutionCheckpoint) -> Result<()> {
    write_file(path.as_ref(), KIND_CHECKPOINT, &encode_payload(c))
}

/// Loads a checkpoint saved by [`save_checkpoint`]. Corrupted or
/// truncated files fail with a typed [`StoreError`], never a panic or a
/// silent partial state.
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<EvolutionCheckpoint> {
    let payload = read_file(path.as_ref(), KIND_CHECKPOINT)?;
    decode_payload(&payload)
}

fn encode_payload(c: &EvolutionCheckpoint) -> Vec<u8> {
    let mut w = Writer::new();
    // Config.
    w.usize(c.config.population_size);
    w.usize(c.config.tournament_size);
    w.f64(c.config.mutation.prob);
    w.f64(c.config.mutation.weights.randomize_instruction);
    w.f64(c.config.mutation.weights.randomize_slot);
    w.f64(c.config.mutation.weights.randomize_function);
    w.f64(c.config.mutation.weights.insert);
    w.f64(c.config.mutation.weights.remove);
    match c.config.budget {
        Budget::Searched(n) => {
            w.u8(0);
            w.usize(n);
        }
        Budget::WallTime(d) => {
            w.u8(1);
            w.u64(d.as_secs());
            w.u32(d.subsec_nanos());
        }
    }
    w.u64(c.config.seed);
    w.usize(c.config.workers);
    w.usize(c.config.batch);
    // Counters.
    w.usize(c.stats.searched);
    w.usize(c.stats.evaluated);
    w.usize(c.stats.redundant);
    w.usize(c.stats.cache_hits);
    w.usize(c.stats.invalid);
    w.usize(c.stats.gate_rejected);
    w.usize(c.stats.static_rejected);
    w.usize(c.stats.folded);
    // Elapsed.
    w.u64(c.elapsed.as_secs());
    w.u32(c.elapsed.subsec_nanos());
    // RNG stream.
    for word in c.rng {
        w.u64(word);
    }
    // Population.
    w.usize(c.population.len());
    for ind in &c.population {
        write_program(&mut w, &ind.program);
        w.opt_f64(ind.fitness);
    }
    // Fingerprint cache.
    w.usize(c.cache.len());
    for &(fp, fitness) in &c.cache {
        w.u64(fp);
        w.opt_f64(fitness);
    }
    // Best alpha.
    match &c.best {
        None => w.u8(0),
        Some(b) => {
            w.u8(1);
            write_program(&mut w, &b.program);
            write_program(&mut w, &b.pruned);
            w.f64(b.ic);
            w.f64_slice(&b.val_returns);
        }
    }
    // Trajectory.
    w.usize(c.trajectory.len());
    for p in &c.trajectory {
        w.usize(p.searched);
        w.f64(p.best_ic);
    }
    // Migration epoch.
    match &c.migration {
        None => w.u8(0),
        Some(m) => {
            w.u8(1);
            w.u64(m.island);
            w.u64(m.round);
            w.f64(m.fraction);
            w.usize(m.migrants.len());
            for p in &m.migrants {
                write_program(&mut w, p);
            }
        }
    }
    w.into_bytes()
}

fn decode_payload(payload: &[u8]) -> Result<EvolutionCheckpoint> {
    let mut r = Reader::new(payload);
    let population_size = r.usize()?;
    let tournament_size = r.usize()?;
    let mutation = MutationConfig {
        prob: r.f64()?,
        weights: MutationWeights {
            randomize_instruction: r.f64()?,
            randomize_slot: r.f64()?,
            randomize_function: r.f64()?,
            insert: r.f64()?,
            remove: r.f64()?,
        },
    };
    let budget = match r.u8()? {
        0 => Budget::Searched(r.usize()?),
        1 => {
            let secs = r.u64()?;
            let nanos = r.u32()?;
            if nanos >= 1_000_000_000 {
                return Err(StoreError::Malformed {
                    what: format!("subsecond nanos {nanos} out of range"),
                });
            }
            Budget::WallTime(Duration::new(secs, nanos))
        }
        t => {
            return Err(StoreError::Malformed {
                what: format!("budget tag {t} (want 0 or 1)"),
            })
        }
    };
    let seed = r.u64()?;
    let workers = r.usize()?;
    let batch = r.usize()?;
    let config = EvolutionConfig {
        population_size,
        tournament_size,
        mutation,
        budget,
        seed,
        workers,
        batch,
    };
    let stats = SearchStats {
        searched: r.usize()?,
        evaluated: r.usize()?,
        redundant: r.usize()?,
        cache_hits: r.usize()?,
        invalid: r.usize()?,
        gate_rejected: r.usize()?,
        static_rejected: r.usize()?,
        folded: r.usize()?,
    };
    let elapsed = {
        let secs = r.u64()?;
        let nanos = r.u32()?;
        if nanos >= 1_000_000_000 {
            return Err(StoreError::Malformed {
                what: format!("subsecond nanos {nanos} out of range"),
            });
        }
        Duration::new(secs, nanos)
    };
    let mut rng = [0u64; 4];
    for word in &mut rng {
        *word = r.u64()?;
    }
    if rng == [0; 4] {
        return Err(StoreError::Malformed {
            what: "all-zero RNG state (unreachable from any seed)".into(),
        });
    }
    let n_pop = r.len_prefix(1)?;
    let mut population = Vec::with_capacity(n_pop.min(4096));
    for _ in 0..n_pop {
        let program = read_verified_program(&mut r)?;
        let fitness = r.opt_f64()?;
        population.push(Individual { program, fitness });
    }
    let n_cache = r.len_prefix(9)?;
    let mut cache = Vec::with_capacity(n_cache);
    for _ in 0..n_cache {
        let fp = r.u64()?;
        let fitness = r.opt_f64()?;
        cache.push((fp, fitness));
    }
    let best = match r.u8()? {
        0 => None,
        1 => {
            let program = read_verified_program(&mut r)?;
            let pruned = read_verified_program(&mut r)?;
            let ic = r.f64()?;
            let val_returns = r.f64_vec()?;
            Some(BestAlpha {
                program,
                pruned,
                ic,
                val_returns,
            })
        }
        t => {
            return Err(StoreError::Malformed {
                what: format!("best-alpha tag {t} (want 0 or 1)"),
            })
        }
    };
    let n_traj = r.len_prefix(16)?;
    let mut trajectory = Vec::with_capacity(n_traj);
    for _ in 0..n_traj {
        let searched = r.usize()?;
        let best_ic = r.f64()?;
        trajectory.push(TrajectoryPoint { searched, best_ic });
    }
    let migration = match r.u8()? {
        0 => None,
        1 => {
            let island = r.u64()?;
            let round = r.u64()?;
            let fraction = r.f64()?;
            // A hostile fraction (NaN, negative, above 1) could bias or
            // stall a resumed search; reject it at the trust boundary.
            if !(0.0..=1.0).contains(&fraction) {
                return Err(StoreError::Malformed {
                    what: format!("migrant fraction {fraction} outside [0, 1]"),
                });
            }
            let n_migrants = r.len_prefix(24)?;
            let mut migrants = Vec::with_capacity(n_migrants.min(4096));
            for _ in 0..n_migrants {
                migrants.push(read_verified_program(&mut r)?);
            }
            Some(MigrationState {
                island,
                round,
                fraction,
                migrants,
            })
        }
        t => {
            return Err(StoreError::Malformed {
                what: format!("migration tag {t} (want 0 or 1)"),
            })
        }
    };
    r.finish()?;
    Ok(EvolutionCheckpoint {
        config,
        stats,
        elapsed,
        rng,
        population,
        cache,
        best,
        trajectory,
        migration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphaevolve_core::{init, AlphaConfig};

    fn sample_checkpoint() -> EvolutionCheckpoint {
        let cfg = AlphaConfig::default();
        EvolutionCheckpoint {
            config: EvolutionConfig {
                population_size: 20,
                tournament_size: 5,
                mutation: MutationConfig::default(),
                budget: Budget::Searched(300),
                seed: 7,
                workers: 1,
                batch: 4,
            },
            stats: SearchStats {
                searched: 156,
                evaluated: 40,
                redundant: 90,
                cache_hits: 20,
                invalid: 3,
                gate_rejected: 1,
                static_rejected: 6,
                folded: 17,
            },
            elapsed: Duration::new(12, 345_678_901),
            rng: [1, 2, 3, 4],
            population: vec![
                Individual {
                    program: init::domain_expert(&cfg),
                    fitness: Some(0.123456789),
                },
                Individual {
                    program: init::two_layer_nn(&cfg),
                    fitness: None,
                },
            ],
            cache: vec![(5, Some(0.1)), (9, None), (11, Some(-0.0))],
            best: Some(BestAlpha {
                program: init::domain_expert(&cfg),
                pruned: init::domain_expert(&cfg),
                ic: 0.21213852898918362,
                val_returns: vec![0.01, -0.02, 0.003],
            }),
            trajectory: vec![
                TrajectoryPoint {
                    searched: 10,
                    best_ic: 0.05,
                },
                TrajectoryPoint {
                    searched: 80,
                    best_ic: 0.2121,
                },
            ],
            migration: None,
        }
    }

    #[test]
    fn checkpoint_round_trips_bitwise() {
        let c = sample_checkpoint();
        let bytes = checkpoint_to_bytes(&c);
        let back = checkpoint_from_bytes(&bytes).unwrap();
        assert_eq!(back.config.population_size, 20);
        assert_eq!(back.config.budget, Budget::Searched(300));
        assert_eq!(back.stats, c.stats);
        assert_eq!(back.elapsed, c.elapsed);
        assert_eq!(back.rng, c.rng);
        assert_eq!(back.population.len(), 2);
        assert_eq!(back.population[0].program, c.population[0].program);
        assert_eq!(
            back.population[0].fitness.unwrap().to_bits(),
            c.population[0].fitness.unwrap().to_bits()
        );
        assert_eq!(back.population[1].fitness, None);
        assert_eq!(back.cache.len(), 3);
        assert_eq!(back.cache[2].1.unwrap().to_bits(), (-0.0f64).to_bits());
        let best = back.best.unwrap();
        assert_eq!(best.ic.to_bits(), 0.21213852898918362f64.to_bits());
        assert_eq!(best.val_returns, vec![0.01, -0.02, 0.003]);
        assert_eq!(back.trajectory.len(), 2);
    }

    #[test]
    fn walltime_budget_round_trips() {
        let mut c = sample_checkpoint();
        c.config.budget = Budget::WallTime(Duration::new(3600, 42));
        let back = checkpoint_from_bytes(&checkpoint_to_bytes(&c)).unwrap();
        assert_eq!(
            back.config.budget,
            Budget::WallTime(Duration::new(3600, 42))
        );
    }

    #[test]
    fn zero_rng_state_is_rejected() {
        let mut c = sample_checkpoint();
        c.rng = [0; 4];
        let bytes = checkpoint_to_bytes(&c);
        assert!(matches!(
            checkpoint_from_bytes(&bytes),
            Err(StoreError::Malformed { .. })
        ));
    }

    #[test]
    fn migration_epoch_round_trips_bitwise() {
        let cfg = AlphaConfig::default();
        let mut c = sample_checkpoint();
        c.migration = Some(MigrationState {
            island: 2,
            round: 3,
            fraction: 0.25,
            migrants: vec![init::domain_expert(&cfg), init::two_layer_nn(&cfg)],
        });
        let bytes = checkpoint_to_bytes(&c);
        let back = checkpoint_from_bytes(&bytes).unwrap();
        // The encoding is stable: re-encoding the decoded checkpoint
        // reproduces the original bytes.
        assert_eq!(checkpoint_to_bytes(&back), bytes);
        let m = back.migration.expect("migration epoch survives");
        let orig = c.migration.as_ref().unwrap();
        assert_eq!(m.island, 2);
        assert_eq!(m.round, 3);
        assert_eq!(m.fraction.to_bits(), 0.25f64.to_bits());
        assert_eq!(m.migrants, orig.migrants);
    }

    #[test]
    fn hostile_migrant_fraction_is_rejected() {
        let cfg = AlphaConfig::default();
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let mut c = sample_checkpoint();
            c.migration = Some(MigrationState {
                island: 0,
                round: 0,
                fraction: bad,
                migrants: vec![init::domain_expert(&cfg)],
            });
            let bytes = checkpoint_to_bytes(&c);
            assert!(
                matches!(
                    checkpoint_from_bytes(&bytes),
                    Err(StoreError::Malformed { .. })
                ),
                "fraction {bad} must be rejected"
            );
        }
    }

    #[test]
    fn bad_migration_tag_is_rejected() {
        let c = sample_checkpoint();
        let mut bytes = checkpoint_to_bytes(&c);
        // The migration tag is the last payload byte before the CRC trailer.
        let at = bytes.len() - 5;
        assert_eq!(bytes[at], 0, "expected solo-run migration tag");
        bytes[at] = 2;
        let total = bytes.len();
        let crc = crate::codec::crc32(&bytes[..total - 4]);
        bytes[total - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            checkpoint_from_bytes(&bytes),
            Err(StoreError::Malformed { .. })
        ));
    }
}
