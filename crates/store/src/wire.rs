//! The AEVS wire protocol: serving requests and responses as framed
//! stream messages.
//!
//! Every message reuses the store's file framing verbatim — magic `AEVS`,
//! u16 version, u16 record kind, u64 payload length, payload, CRC-32 over
//! header+payload (see [`frame`](crate::frame)) — so a wire peer gets the
//! same corruption guarantees as a file reader: a flipped bit or a torn
//! stream surfaces as a typed [`StoreError`], never a panic or a silent
//! partial decode. A connection is strictly request/response; the
//! handshake is `MetadataRequest` → `MetadataResponse` (documented in the
//! [`frame`](crate::frame) module).
//!
//! ## Payload layouts (all integers little-endian, floats as raw bits)
//!
//! ```text
//! ServeDayRequest      (kind 3): u64 day
//! ServeRangeRequest    (kind 4): u64 start, u64 end            — [start, end)
//! MetadataRequest      (kind 5): empty
//! PredictionsResponse  (kind 6): u64 n_rows, u64 n_stocks,
//!                                n_rows × u8 row validity (0|1),
//!                                n_rows·n_stocks × u64 f64 bits
//!                                (row-major over a CrossSections slice)
//! MetadataResponse     (kind 7): u64 n_alphas, u64 n_stocks, u64 n_days,
//!                                u64 min_day, u64 feature_set_id,
//!                                u64 name count, names (u64 len + UTF-8)
//! ErrorResponse        (kind 8): u16 code (see ServiceErrorCode),
//!                                u64 len + UTF-8 message
//! MetricsRequest       (kind 9): u64 flags — must be 0 (reserved; any
//!                                other value is refused typed)
//! MetricsResponse      (kind 10): u64 len + UTF-8 text exposition
//!                                (parse with MetricsSnapshot::parse)
//! ```
//!
//! The encode half writes into caller-owned buffers and the decode half
//! reads into caller-owned panels, so a warm serving connection touches
//! the allocator zero times per request (pinned by
//! `tests/hot_path_alloc.rs`).

use std::io::{ErrorKind, Read, Write};

use alphaevolve_backtest::CrossSections;

use crate::codec::Reader;
use crate::error::{Result, ServiceErrorCode, StoreError};
use crate::frame::{
    HEADER_LEN, KIND_METADATA_REQUEST, KIND_METRICS_REQUEST, KIND_METRICS_RESPONSE,
    KIND_SERVE_DAY_REQUEST, KIND_SERVE_RANGE_REQUEST, MAGIC, TRAILER_LEN,
};
use crate::service::ServiceMetadata;

/// Upper bound on a single wire frame's payload. A corrupted length field
/// must never make a reader buffer gigabytes before the CRC check can
/// reject the frame. 1 GiB comfortably covers any real prediction block
/// (a 4096-alpha × 4096-stock day is 128 MiB).
pub const MAX_WIRE_PAYLOAD: u64 = 1 << 30;

/// A decoded client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// One day across all served alphas (kind 3).
    ServeDay {
        /// Panel day index.
        day: u64,
    },
    /// A contiguous `[start, end)` day range (kind 4).
    ServeRange {
        /// First day (inclusive).
        start: u64,
        /// One past the last day.
        end: u64,
    },
    /// Capabilities handshake (kind 5).
    Metadata,
    /// Metrics snapshot scrape (kind 9).
    Metrics,
}

use crate::frame::frame_streaming_into as frame_stream;

/// Encodes a request frame into `out` (cleared first).
pub fn encode_request(req: Request, out: &mut Vec<u8>) {
    match req {
        Request::ServeDay { day } => frame_stream(out, KIND_SERVE_DAY_REQUEST, 8, |b| {
            b.extend_from_slice(&day.to_le_bytes());
        }),
        Request::ServeRange { start, end } => {
            frame_stream(out, KIND_SERVE_RANGE_REQUEST, 16, |b| {
                b.extend_from_slice(&start.to_le_bytes());
                b.extend_from_slice(&end.to_le_bytes());
            });
        }
        Request::Metadata => frame_stream(out, KIND_METADATA_REQUEST, 0, |_| {}),
        // The flags word is reserved (always 0 today): it gives decoders
        // a validated field, and future scrape options a place to live
        // without a new kind.
        Request::Metrics => frame_stream(out, KIND_METRICS_REQUEST, 8, |b| {
            b.extend_from_slice(&0u64.to_le_bytes());
        }),
    }
}

/// Decodes a request payload for `kind` (one of the request kinds 3–5).
pub fn decode_request(kind: u16, payload: &[u8]) -> Result<Request> {
    let mut r = Reader::new(payload);
    let req = match kind {
        KIND_SERVE_DAY_REQUEST => Request::ServeDay { day: r.u64()? },
        KIND_SERVE_RANGE_REQUEST => Request::ServeRange {
            start: r.u64()?,
            end: r.u64()?,
        },
        KIND_METADATA_REQUEST => Request::Metadata,
        KIND_METRICS_REQUEST => {
            let flags = r.u64()?;
            if flags != 0 {
                return Err(StoreError::service(
                    ServiceErrorCode::Protocol,
                    format!("metrics request flags {flags:#x} are not supported (want 0)"),
                ));
            }
            Request::Metrics
        }
        other => {
            return Err(StoreError::service(
                ServiceErrorCode::Protocol,
                format!("kind {other} is not a request"),
            ))
        }
    };
    r.finish()?;
    Ok(req)
}

/// Payload size of a predictions frame for a `rows × n_stocks` block —
/// `None` when it would exceed [`MAX_WIRE_PAYLOAD`] (the server then
/// answers with a typed [`ServiceErrorCode::ResponseTooLarge`] instead
/// of emitting a frame its own client must reject).
pub fn predictions_payload_len(rows: usize, n_stocks: usize) -> Option<u64> {
    let bytes = (rows as u64)
        .checked_mul(n_stocks as u64)?
        .checked_mul(8)?
        .checked_add(rows as u64)?
        .checked_add(16)?;
    (bytes <= MAX_WIRE_PAYLOAD).then_some(bytes)
}

/// Encodes a predictions response frame from a [`CrossSections`] block
/// into `out` (cleared first). Allocation-free once `out` has grown to
/// its high-water mark.
pub fn encode_predictions(block: &CrossSections, out: &mut Vec<u8>) {
    let (rows, k) = (block.n_days(), block.n_stocks());
    let payload_len = 16 + rows + 8 * rows * k;
    frame_stream(
        out,
        crate::frame::KIND_PREDICTIONS_RESPONSE,
        payload_len,
        |b| {
            b.extend_from_slice(&(rows as u64).to_le_bytes());
            b.extend_from_slice(&(k as u64).to_le_bytes());
            for &valid in block.validity() {
                b.push(u8::from(valid));
            }
            for &x in block.as_slice() {
                b.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        },
    );
}

/// Decodes a predictions payload into a caller-owned panel (reusing its
/// buffers — allocation-free once `out` is at its high-water mark).
/// Prediction bits round-trip exactly; row validity masks are restored.
pub fn decode_predictions_into(payload: &[u8], out: &mut CrossSections) -> Result<()> {
    let mut r = Reader::new(payload);
    let rows = r.usize()?;
    let k = r.usize()?;
    let cells = rows.checked_mul(k).ok_or_else(|| StoreError::Malformed {
        what: format!("{rows} × {k} prediction cells overflow"),
    })?;
    let needed = rows
        .checked_add(cells.checked_mul(8).ok_or_else(|| StoreError::Malformed {
            what: format!("{cells} prediction cells overflow"),
        })?)
        .ok_or_else(|| StoreError::Malformed {
            what: format!("{rows}-row prediction block overflows"),
        })?;
    if needed > r.remaining() {
        return Err(StoreError::Truncated {
            needed,
            available: r.remaining(),
        });
    }
    out.reset(rows, k);
    for row in 0..rows {
        match r.u8()? {
            0 => out.set_day_validity(row, false),
            1 => {}
            t => {
                return Err(StoreError::Malformed {
                    what: format!("validity flag {t} (want 0 or 1)"),
                })
            }
        }
    }
    let flat = out.as_mut_slice();
    for cell in flat.iter_mut() {
        *cell = r.f64()?;
    }
    r.finish()
}

/// Encodes a metadata response frame into `out` (cleared first).
pub fn encode_metadata(meta: &ServiceMetadata, out: &mut Vec<u8>) {
    let names_len: usize = meta.names.iter().map(|n| 8 + n.len()).sum();
    let payload_len = 5 * 8 + 8 + names_len;
    frame_stream(
        out,
        crate::frame::KIND_METADATA_RESPONSE,
        payload_len,
        |b| {
            for x in [
                meta.n_alphas as u64,
                meta.n_stocks as u64,
                meta.n_days as u64,
                meta.min_day as u64,
                meta.feature_set_id,
                meta.names.len() as u64,
            ] {
                b.extend_from_slice(&x.to_le_bytes());
            }
            for name in &meta.names {
                b.extend_from_slice(&(name.len() as u64).to_le_bytes());
                b.extend_from_slice(name.as_bytes());
            }
        },
    );
}

/// Decodes a metadata response payload.
pub fn decode_metadata(payload: &[u8]) -> Result<ServiceMetadata> {
    let mut r = Reader::new(payload);
    let n_alphas = r.usize()?;
    let n_stocks = r.usize()?;
    let n_days = r.usize()?;
    let min_day = r.usize()?;
    let feature_set_id = r.u64()?;
    let n_names = r.len_prefix(8)?;
    let mut names = Vec::with_capacity(n_names);
    for _ in 0..n_names {
        names.push(r.str()?);
    }
    r.finish()?;
    if names.len() != n_alphas {
        return Err(StoreError::Malformed {
            what: format!("{} names for {n_alphas} alphas", names.len()),
        });
    }
    Ok(ServiceMetadata {
        n_alphas,
        n_stocks,
        n_days,
        min_day,
        feature_set_id,
        names,
    })
}

/// Encodes a metrics response frame — the text exposition of a
/// [`MetricsSnapshot`](alphaevolve_obs::MetricsSnapshot) — into `out`
/// (cleared first).
pub fn encode_metrics_response(text: &str, out: &mut Vec<u8>) {
    frame_stream(out, KIND_METRICS_RESPONSE, 8 + text.len(), |b| {
        b.extend_from_slice(&(text.len() as u64).to_le_bytes());
        b.extend_from_slice(text.as_bytes());
    });
}

/// Decodes a metrics response payload back into the exposition text.
/// Parse it with [`MetricsSnapshot::parse`](alphaevolve_obs::MetricsSnapshot::parse).
pub fn decode_metrics_response(payload: &[u8]) -> Result<String> {
    let mut r = Reader::new(payload);
    let text = r.str()?;
    r.finish()?;
    Ok(text)
}

/// Encodes a typed error response frame into `out` (cleared first).
pub fn encode_error(code: ServiceErrorCode, message: &str, out: &mut Vec<u8>) {
    frame_stream(
        out,
        crate::frame::KIND_ERROR_RESPONSE,
        2 + 8 + message.len(),
        |b| {
            b.extend_from_slice(&code.as_u16().to_le_bytes());
            b.extend_from_slice(&(message.len() as u64).to_le_bytes());
            b.extend_from_slice(message.as_bytes());
        },
    );
}

/// Encodes any [`StoreError`] as an error response: service errors keep
/// their code, everything else crosses as [`ServiceErrorCode::Internal`].
pub fn encode_store_error(err: &StoreError, out: &mut Vec<u8>) {
    match err {
        StoreError::Service { code, message } => encode_error(*code, message, out),
        other => encode_error(ServiceErrorCode::Internal, &other.to_string(), out),
    }
}

/// Decodes an error response payload into the [`StoreError::Service`] it
/// carries (or the malformed-payload error hit while decoding it).
pub fn decode_error(payload: &[u8]) -> StoreError {
    let mut r = Reader::new(payload);
    let parsed = (|| -> Result<StoreError> {
        let code = ServiceErrorCode::from_u16(r.u16()?);
        let message = r.str()?;
        r.finish()?;
        Ok(StoreError::Service { code, message })
    })();
    match parsed {
        Ok(e) | Err(e) => e,
    }
}

/// Writes one encoded frame to a stream and flushes it.
pub fn write_message(w: &mut impl Write, frame: &[u8]) -> Result<()> {
    w.write_all(frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one complete frame from a stream into `buf` (reused across
/// calls), validates it (magic, bounded length, CRC, version), and
/// returns its kind — or `None` on a clean end-of-stream *before* the
/// first header byte. Use [`frame_payload`] to view the payload.
///
/// A declared payload length above [`MAX_WIRE_PAYLOAD`] is rejected
/// before any buffering, so a corrupt length cannot stall the reader on
/// gigabytes of input the CRC would reject anyway.
pub fn read_message(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<Option<u16>> {
    buf.clear();
    buf.resize(HEADER_LEN, 0);
    let mut filled = 0;
    while filled < HEADER_LEN {
        match r.read(&mut buf[filled..HEADER_LEN]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(StoreError::Truncated {
                    needed: HEADER_LEN,
                    available: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    if buf[..4] != MAGIC {
        return Err(StoreError::BadMagic {
            found: buf[..4].try_into().unwrap(),
        });
    }
    let payload_len = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    if payload_len > MAX_WIRE_PAYLOAD {
        return Err(StoreError::Malformed {
            what: format!("wire payload of {payload_len} bytes exceeds the frame bound"),
        });
    }
    let total = HEADER_LEN + payload_len as usize + TRAILER_LEN;
    buf.resize(total, 0);
    // Manual read loop so a torn frame reports how many bytes actually
    // arrived (read_exact would discard the count).
    let mut filled = HEADER_LEN;
    while filled < total {
        match r.read(&mut buf[filled..total]) {
            Ok(0) => {
                return Err(StoreError::Truncated {
                    needed: total,
                    available: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let (kind, _) = crate::frame::unframe_any(buf)?;
    Ok(Some(kind))
}

/// The payload view of a frame read by [`read_message`].
pub fn frame_payload(buf: &[u8]) -> &[u8] {
    &buf[HEADER_LEN..buf.len() - TRAILER_LEN]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn requests_round_trip() {
        let mut buf = Vec::new();
        for req in [
            Request::ServeDay { day: 77 },
            Request::ServeRange { start: 5, end: 42 },
            Request::Metadata,
        ] {
            encode_request(req, &mut buf);
            let mut cursor = Cursor::new(buf.clone());
            let kind = read_message(&mut cursor, &mut Vec::new()).unwrap().unwrap();
            let (k2, payload) = crate::frame::unframe_any(&buf).unwrap();
            assert_eq!(kind, k2);
            assert_eq!(decode_request(kind, payload).unwrap(), req);
        }
    }

    #[test]
    fn predictions_round_trip_bitwise_with_masks() {
        let mut block = CrossSections::from_fn(3, 4, |d, s| {
            if (d, s) == (1, 2) {
                f64::from_bits(0x7FF8_0000_0000_0ABC) // NaN payload survives
            } else {
                d as f64 - 0.25 * s as f64
            }
        });
        block.invalidate_day(2);
        let mut buf = Vec::new();
        encode_predictions(&block, &mut buf);
        let (kind, payload) = crate::frame::unframe_any(&buf).unwrap();
        assert_eq!(kind, crate::frame::KIND_PREDICTIONS_RESPONSE);
        let mut back = CrossSections::new(0, 0);
        decode_predictions_into(payload, &mut back).unwrap();
        assert_eq!(back.n_days(), 3);
        assert_eq!(back.n_stocks(), 4);
        assert_eq!(back.validity(), block.validity());
        for (a, b) in block.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn metadata_round_trips() {
        let meta = ServiceMetadata {
            n_alphas: 2,
            n_stocks: 30,
            n_days: 240,
            min_day: 13,
            feature_set_id: 0xFEED_BEEF_CAFE_0001,
            names: vec!["alpha_AE_D_0".into(), "momentum".into()],
        };
        let mut buf = Vec::new();
        encode_metadata(&meta, &mut buf);
        let (kind, payload) = crate::frame::unframe_any(&buf).unwrap();
        assert_eq!(kind, crate::frame::KIND_METADATA_RESPONSE);
        assert_eq!(decode_metadata(payload).unwrap(), meta);
    }

    #[test]
    fn errors_round_trip_typed() {
        let mut buf = Vec::new();
        encode_error(ServiceErrorCode::DayOutOfRange, "day 999", &mut buf);
        let (kind, payload) = crate::frame::unframe_any(&buf).unwrap();
        assert_eq!(kind, crate::frame::KIND_ERROR_RESPONSE);
        match decode_error(payload) {
            StoreError::Service { code, message } => {
                assert_eq!(code, ServiceErrorCode::DayOutOfRange);
                assert_eq!(message, "day 999");
            }
            other => panic!("expected Service, got {other:?}"),
        }
    }

    #[test]
    fn stream_reader_handles_back_to_back_frames_and_eof() {
        let mut stream = Vec::new();
        let mut buf = Vec::new();
        encode_request(Request::ServeDay { day: 1 }, &mut buf);
        stream.extend_from_slice(&buf);
        encode_request(Request::Metadata, &mut buf);
        stream.extend_from_slice(&buf);
        let mut cursor = Cursor::new(stream);
        let mut read_buf = Vec::new();
        assert_eq!(
            read_message(&mut cursor, &mut read_buf).unwrap(),
            Some(KIND_SERVE_DAY_REQUEST)
        );
        assert_eq!(
            decode_request(KIND_SERVE_DAY_REQUEST, frame_payload(&read_buf)).unwrap(),
            Request::ServeDay { day: 1 }
        );
        assert_eq!(
            read_message(&mut cursor, &mut read_buf).unwrap(),
            Some(KIND_METADATA_REQUEST)
        );
        assert_eq!(read_message(&mut cursor, &mut read_buf).unwrap(), None);
    }

    #[test]
    fn absurd_wire_length_is_rejected_before_buffering() {
        let mut evil = Vec::new();
        evil.extend_from_slice(&MAGIC);
        evil.extend_from_slice(&crate::frame::VERSION.to_le_bytes());
        evil.extend_from_slice(&KIND_SERVE_DAY_REQUEST.to_le_bytes());
        evil.extend_from_slice(&(u64::MAX / 2).to_le_bytes());
        let mut cursor = Cursor::new(evil);
        match read_message(&mut cursor, &mut Vec::new()) {
            Err(StoreError::Malformed { what }) => assert!(what.contains("bound")),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn oversized_blocks_are_detected_before_encoding() {
        assert_eq!(predictions_payload_len(3, 5), Some(16 + 3 + 8 * 15));
        // 8 days × 4096 alphas × 4096 stocks crosses the 1 GiB bound.
        assert!(predictions_payload_len(8 * 4096, 4096).is_none());
        assert!(
            predictions_payload_len(usize::MAX, 2).is_none(),
            "cell-count overflow must read as too large, not wrap"
        );
    }

    #[test]
    fn torn_payload_reports_the_bytes_that_arrived() {
        let mut buf = Vec::new();
        encode_request(Request::ServeRange { start: 5, end: 9 }, &mut buf);
        let cut = buf.len() - 6;
        let mut cursor = Cursor::new(buf[..cut].to_vec());
        match read_message(&mut cursor, &mut Vec::new()) {
            Err(StoreError::Truncated { needed, available }) => {
                assert_eq!(needed, buf.len());
                assert_eq!(available, cut, "diagnostic must count arrived bytes");
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn mid_header_eof_is_truncated() {
        let mut buf = Vec::new();
        encode_request(Request::Metadata, &mut buf);
        let mut cursor = Cursor::new(buf[..7].to_vec());
        assert!(matches!(
            read_message(&mut cursor, &mut Vec::new()),
            Err(StoreError::Truncated { .. })
        ));
    }
}
