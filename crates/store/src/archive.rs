//! The hall of fame: a capacity-bounded, correlation-gated pool of mined
//! alphas that survives the mining process.
//!
//! Admission reuses the paper's weak-correlation machinery
//! ([`CorrelationGate`]): a candidate whose validation portfolio returns
//! correlate with any incumbent above the cutoff is rejected (strongly
//! *negative* correlations pass — they diversify, exactly as in mining).
//! On capacity the weakest incumbent (lowest IC) is evicted, but only for
//! a stronger candidate. The archive round-trips through the store codec
//! **bitwise**: `mine → save → load → extend` preserves every program
//! instruction, fingerprint bit, and fitness bit.
//!
//! ## File payload layout (record kind 1, inside the `AEVS` frame)
//!
//! ```text
//! f64  correlation cutoff
//! u64  capacity
//! u64  entry count
//! per entry:
//!   str              name (u64 length + UTF-8 bytes)
//!   program          see `progio` (3 × [u64 count + 23-byte instructions])
//!   u64              fingerprint
//!   u64              ic (f64 bit pattern)
//!   u64 + n × u64    validation return series (f64 bit patterns)
//!   u64 × 2          train-window day range [start, end)
//!   u64              feature-set id
//! ```

use std::path::Path;

use alphaevolve_backtest::correlation::CorrelationGate;
use alphaevolve_core::hashutil::Fingerprinter;
use alphaevolve_core::AlphaProgram;
use alphaevolve_market::features::{FeatureSet, Normalization};

use crate::codec::{Reader, Writer};
use crate::error::Result;
use crate::frame::{read_file, write_file, KIND_ARCHIVE};
use crate::progio::{read_verified_program, write_program};

/// A stable 64-bit identity for a feature-set recipe (kinds in order plus
/// normalization mode), stored with each archived alpha so a serving
/// process can refuse to run an alpha against features it was not mined
/// on.
pub fn feature_set_id(fs: &FeatureSet) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.word(0xFEA7_u64);
    for kind in fs.kinds() {
        let name = kind.name();
        fp.word(name.len() as u64);
        for b in name.bytes() {
            fp.word(b as u64);
        }
    }
    match fs.normalization {
        Normalization::MaxAbsTrain => fp.word(0),
        Normalization::MaxAbsAllDays => fp.word(1),
        Normalization::MaxAbsUpTo(cutoff) => {
            fp.word(2);
            fp.word(cutoff as u64);
        }
        Normalization::None => fp.word(3),
    }
    fp.digest()
}

/// One archived alpha: the effective (pruned) program plus the metadata
/// needed to gate, rank, and serve it.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchivedAlpha {
    /// Human-readable name (unique within an archive by convention).
    pub name: String,
    /// The effective program (what the interpreter executes).
    pub program: AlphaProgram,
    /// Canonical structural fingerprint (duplicate detection).
    pub fingerprint: u64,
    /// Validation IC (the admission fitness).
    pub ic: f64,
    /// Daily validation long-short returns — the correlation-gate signal.
    pub val_returns: Vec<f64>,
    /// Training day range `[start, end)` the alpha was fitted on.
    pub train_days: (u64, u64),
    /// Identity of the feature recipe it consumes ([`feature_set_id`]).
    pub feature_set_id: u64,
}

/// Why [`AlphaArchive::admit`] turned a candidate away, or what admission
/// displaced.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitOutcome {
    /// Candidate joined the archive; `evicted` names the incumbent that
    /// made room, if the archive was full.
    Admitted {
        /// Name of the evicted weakest incumbent, when capacity forced one out.
        evicted: Option<String>,
    },
    /// An incumbent already carries this structural fingerprint.
    RejectedDuplicate {
        /// Name of the incumbent with the same fingerprint.
        of: String,
    },
    /// Validation returns correlate above the cutoff with an incumbent.
    RejectedCorrelated {
        /// The most-correlated incumbent.
        with: String,
        /// The offending correlation.
        corr: f64,
    },
    /// Archive is full and the candidate is no better than the weakest
    /// incumbent.
    RejectedWeaker {
        /// IC of the current weakest incumbent (the bar to clear).
        floor: f64,
    },
}

impl AdmitOutcome {
    /// True when the candidate entered the archive.
    pub fn admitted(&self) -> bool {
        matches!(self, AdmitOutcome::Admitted { .. })
    }
}

/// IC as an admission/eviction key: NaN ranks *below* every real IC (a
/// fitness that failed to compute must never squat in the hall of fame —
/// `total_cmp` alone would rank positive NaN above everything).
fn admission_rank(ic: f64) -> f64 {
    if ic.is_nan() {
        f64::NEG_INFINITY
    } else {
        ic
    }
}

/// A correlation-gated, capacity-bounded hall of fame.
#[derive(Debug, Clone)]
pub struct AlphaArchive {
    capacity: usize,
    gate: CorrelationGate,
    entries: Vec<ArchivedAlpha>,
}

impl AlphaArchive {
    /// Empty archive with the paper's 15% correlation cutoff.
    pub fn new(capacity: usize) -> AlphaArchive {
        Self::with_cutoff(capacity, CorrelationGate::paper().cutoff())
    }

    /// Empty archive with a custom correlation cutoff.
    pub fn with_cutoff(capacity: usize, cutoff: f64) -> AlphaArchive {
        assert!(capacity > 0, "archive capacity must be positive");
        AlphaArchive {
            capacity,
            gate: CorrelationGate::new(cutoff),
            entries: Vec::new(),
        }
    }

    /// Maximum number of alphas held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The correlation cutoff in force.
    pub fn cutoff(&self) -> f64 {
        self.gate.cutoff()
    }

    /// Number of archived alphas.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The archived alphas, in admission order.
    pub fn entries(&self) -> &[ArchivedAlpha] {
        &self.entries
    }

    /// The live correlation gate over the incumbents' return series —
    /// hand this to [`Evolution::with_gate`] so the *search itself* only
    /// surfaces candidates the archive could accept.
    ///
    /// [`Evolution::with_gate`]: alphaevolve_core::Evolution::with_gate
    pub fn gate(&self) -> &CorrelationGate {
        &self.gate
    }

    /// Runs a candidate through the admission pipeline: duplicate
    /// fingerprint → correlation gate → capacity (evict the weakest for a
    /// stronger candidate).
    pub fn admit(&mut self, candidate: ArchivedAlpha) -> AdmitOutcome {
        if let Some(dup) = self
            .entries
            .iter()
            .find(|e| e.fingerprint == candidate.fingerprint)
        {
            return AdmitOutcome::RejectedDuplicate {
                of: dup.name.clone(),
            };
        }
        if !self.gate.passes(&candidate.val_returns) {
            // Find the worst offender for the report.
            let (with, corr) = self
                .entries
                .iter()
                .map(|e| {
                    (
                        e.name.clone(),
                        alphaevolve_backtest::return_correlation(
                            &e.val_returns,
                            &candidate.val_returns,
                        ),
                    )
                })
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("gate can only fail against a non-empty set");
            return AdmitOutcome::RejectedCorrelated { with, corr };
        }
        let evicted = if self.entries.len() >= self.capacity {
            let weakest = self
                .entries
                .iter()
                .enumerate()
                .min_by(|a, b| admission_rank(a.1.ic).total_cmp(&admission_rank(b.1.ic)))
                .map(|(i, _)| i)
                .expect("full archive is non-empty");
            if admission_rank(candidate.ic) <= admission_rank(self.entries[weakest].ic) {
                return AdmitOutcome::RejectedWeaker {
                    floor: self.entries[weakest].ic,
                };
            }
            Some(self.entries.remove(weakest).name)
        } else {
            None
        };
        self.entries.push(candidate);
        self.rebuild_gate();
        AdmitOutcome::Admitted { evicted }
    }

    fn rebuild_gate(&mut self) {
        let mut gate = CorrelationGate::new(self.gate.cutoff());
        for e in &self.entries {
            gate.accept(e.val_returns.clone());
        }
        self.gate = gate;
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.f64(self.gate.cutoff());
        w.usize(self.capacity);
        w.usize(self.entries.len());
        for e in &self.entries {
            w.str(&e.name);
            write_program(&mut w, &e.program);
            w.u64(e.fingerprint);
            w.f64(e.ic);
            w.f64_slice(&e.val_returns);
            w.u64(e.train_days.0);
            w.u64(e.train_days.1);
            w.u64(e.feature_set_id);
        }
        w.into_bytes()
    }

    /// Serializes the archive into a framed byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        crate::frame::frame(KIND_ARCHIVE, &self.encode_payload())
    }

    /// Deserializes an archive written by [`AlphaArchive::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<AlphaArchive> {
        let payload = crate::frame::unframe(KIND_ARCHIVE, bytes)?;
        Self::decode(payload)
    }

    /// Writes the archive to `path` (atomically: temp file + rename).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        write_file(path.as_ref(), KIND_ARCHIVE, &self.encode_payload())
    }

    /// Loads an archive saved by [`AlphaArchive::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<AlphaArchive> {
        let payload = read_file(path.as_ref(), KIND_ARCHIVE)?;
        Self::decode(&payload)
    }

    fn decode(payload: &[u8]) -> Result<AlphaArchive> {
        let mut r = Reader::new(payload);
        let cutoff = r.f64()?;
        let capacity = r.usize()?;
        if capacity == 0 {
            return Err(crate::error::StoreError::Malformed {
                what: "archive capacity is zero".into(),
            });
        }
        let n = r.len_prefix(1)?;
        if n > capacity {
            // A file we wrote can never exceed its own capacity; loading
            // one would leave `admit`'s eviction check unsatisfiable and
            // the capacity bound broken forever.
            return Err(crate::error::StoreError::Malformed {
                what: format!("{n} entries exceed the declared capacity {capacity}"),
            });
        }
        let mut entries = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = r.str()?;
            let program = read_verified_program(&mut r)?;
            let fingerprint = r.u64()?;
            let ic = r.f64()?;
            let val_returns = r.f64_vec()?;
            let train_days = (r.u64()?, r.u64()?);
            let feature_set_id = r.u64()?;
            entries.push(ArchivedAlpha {
                name,
                program,
                fingerprint,
                ic,
                val_returns,
                train_days,
                feature_set_id,
            });
        }
        r.finish()?;
        let mut archive = AlphaArchive {
            capacity,
            gate: CorrelationGate::new(cutoff),
            entries,
        };
        archive.rebuild_gate();
        Ok(archive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphaevolve_core::{init, AlphaConfig};

    fn alpha(name: &str, fp: u64, ic: f64, returns: Vec<f64>) -> ArchivedAlpha {
        let cfg = AlphaConfig::default();
        ArchivedAlpha {
            name: name.into(),
            program: init::domain_expert(&cfg),
            fingerprint: fp,
            ic,
            val_returns: returns,
            train_days: (30, 90),
            feature_set_id: feature_set_id(&FeatureSet::paper()),
        }
    }

    fn noise(seed: u64, n: usize) -> Vec<f64> {
        // Sinusoids at distinct integer frequencies over whole periods:
        // pairwise correlations are ~0, well under any sane cutoff.
        let f = (seed % 29 + 1) as f64;
        (0..n)
            .map(|i| (std::f64::consts::TAU * f * i as f64 / n as f64).sin() * 0.01)
            .collect()
    }

    #[test]
    fn admits_weakly_correlated_rejects_duplicates_and_clones() {
        let mut ar = AlphaArchive::new(8);
        assert!(ar.admit(alpha("a0", 1, 0.10, noise(1, 60))).admitted());
        assert!(ar.admit(alpha("a1", 2, 0.12, noise(2, 60))).admitted());

        // Same fingerprint → duplicate.
        let dup = ar.admit(alpha("a2", 1, 0.5, noise(3, 60)));
        assert!(matches!(dup, AdmitOutcome::RejectedDuplicate { ref of } if of == "a0"));

        // A scaled copy of a0's returns → correlated above any cutoff.
        let copy: Vec<f64> = noise(1, 60).iter().map(|x| x * 2.0).collect();
        let rej = ar.admit(alpha("a3", 3, 0.5, copy));
        match rej {
            AdmitOutcome::RejectedCorrelated { with, corr } => {
                assert_eq!(with, "a0");
                assert!(corr > 0.99);
            }
            other => panic!("expected RejectedCorrelated, got {other:?}"),
        }

        // A strongly anti-correlated series passes (one-sided gate).
        let inverse: Vec<f64> = noise(2, 60).iter().map(|x| -x).collect();
        assert!(ar.admit(alpha("a4", 4, 0.05, inverse)).admitted());
        assert_eq!(ar.len(), 3);
    }

    #[test]
    fn capacity_evicts_weakest_only_for_stronger() {
        let mut ar = AlphaArchive::new(2);
        assert!(ar.admit(alpha("weak", 1, 0.05, noise(10, 60))).admitted());
        assert!(ar.admit(alpha("mid", 2, 0.10, noise(20, 60))).admitted());

        // Weaker than the floor: rejected.
        let out = ar.admit(alpha("weaker", 3, 0.01, noise(30, 60)));
        assert!(matches!(out, AdmitOutcome::RejectedWeaker { floor } if floor == 0.05));

        // Stronger: evicts "weak".
        let out = ar.admit(alpha("strong", 4, 0.20, noise(40, 60)));
        assert!(matches!(out, AdmitOutcome::Admitted { evicted: Some(ref n) } if n == "weak"));
        assert_eq!(ar.len(), 2);
        assert!(ar.entries().iter().all(|e| e.name != "weak"));
    }

    #[test]
    fn nan_ic_ranks_below_every_real_alpha() {
        // A NaN-fitness candidate must not clear the eviction floor of a
        // full archive, and a NaN incumbent must be first out the door.
        let mut ar = AlphaArchive::new(2);
        assert!(ar.admit(alpha("nan", 1, f64::NAN, noise(1, 60))).admitted());
        assert!(ar.admit(alpha("real", 2, 0.05, noise(2, 60))).admitted());
        let out = ar.admit(alpha("nan2", 3, f64::NAN, noise(3, 60)));
        assert!(
            matches!(out, AdmitOutcome::RejectedWeaker { .. }),
            "NaN must not evict anything: {out:?}"
        );
        let out = ar.admit(alpha("better", 4, 0.01, noise(4, 60)));
        assert!(
            matches!(out, AdmitOutcome::Admitted { evicted: Some(ref n) } if n == "nan"),
            "the NaN incumbent goes first: {out:?}"
        );
    }

    #[test]
    fn over_capacity_file_is_rejected() {
        // A CRC-valid payload claiming more entries than its capacity
        // would permanently disable eviction — it must fail typed.
        let mut ar = AlphaArchive::new(8);
        ar.admit(alpha("a", 1, 0.1, noise(1, 60)));
        ar.admit(alpha("b", 2, 0.2, noise(2, 60)));
        let mut payload = ar.encode_payload();
        // Patch the capacity field (bytes 8..16, after the f64 cutoff)
        // down to 1 while two entries follow.
        payload[8..16].copy_from_slice(&1u64.to_le_bytes());
        let framed = crate::frame::frame(KIND_ARCHIVE, &payload);
        match AlphaArchive::from_bytes(&framed) {
            Err(crate::error::StoreError::Malformed { what }) => {
                assert!(what.contains("capacity"), "message: {what}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn gate_tracks_eviction() {
        let mut ar = AlphaArchive::new(1);
        assert!(ar.admit(alpha("first", 1, 0.05, noise(10, 60))).admitted());
        assert!(ar.admit(alpha("second", 2, 0.50, noise(20, 60))).admitted());
        // "first" is gone, so a clone of its returns now passes the gate.
        let clone_of_first = noise(10, 60);
        assert!(ar.gate().passes(&clone_of_first));
    }

    #[test]
    fn bytes_round_trip_preserves_everything() {
        let mut ar = AlphaArchive::with_cutoff(4, 0.2);
        let mut weird = alpha("nan_ic", 7, f64::NAN, noise(5, 40));
        weird.ic = f64::from_bits(0x7FF8_0000_0000_00AB); // NaN with payload
        ar.admit(alpha("plain", 1, 0.1, noise(1, 40)));
        // NaN IC: admit would compare NaN; push directly through admit —
        // total_cmp handles NaN, and the gate sees finite noise.
        ar.admit(weird);
        let bytes = ar.to_bytes();
        let back = AlphaArchive::from_bytes(&bytes).unwrap();
        assert_eq!(back.capacity(), 4);
        assert_eq!(back.cutoff(), 0.2);
        assert_eq!(back.len(), ar.len());
        for (a, b) in ar.entries().iter().zip(back.entries()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.program, b.program);
            assert_eq!(a.fingerprint, b.fingerprint);
            assert_eq!(a.ic.to_bits(), b.ic.to_bits());
            assert_eq!(a.val_returns.len(), b.val_returns.len());
            for (x, y) in a.val_returns.iter().zip(&b.val_returns) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(a.train_days, b.train_days);
            assert_eq!(a.feature_set_id, b.feature_set_id);
        }
        // And the reloaded gate still gates.
        assert!(!back.gate().passes(&noise(1, 40)));
    }

    #[test]
    fn feature_set_ids_distinguish_recipes() {
        let paper = feature_set_id(&FeatureSet::paper());
        let strict = feature_set_id(&FeatureSet::paper_strict());
        assert_ne!(paper, strict);
        assert_eq!(paper, feature_set_id(&FeatureSet::paper()));
    }
}
