//! Binary encoding of [`AlphaProgram`]s and instructions.
//!
//! Per function (`setup`, `predict`, `update`, in that order):
//!
//! ```text
//! u64  instruction count
//! per instruction:
//!   u16      op code  — index into `Op::ALL` (the fixed, documented
//!            operator order; new ops append, so codes are stable)
//!   u8 × 3   in1, in2, out register indices
//!   u8 × 2   ix[0], ix[1] small-integer slots
//!   u64 × 2  lit[0], lit[1] as raw f64 bit patterns
//! ```
//!
//! Literals travel as bit patterns, so programs round-trip **bitwise** —
//! a prerequisite for the fingerprint cache and the archive's exactness
//! guarantee. Decoding validates every op code; junk surfaces as
//! [`StoreError::Malformed`].
//!
//! Byte-level validity is *not* semantic validity: a frame can check out
//! (magic, CRC, op codes) while its registers, indices, or literals would
//! still crash or corrupt an interpreter. Every trust boundary therefore
//! decodes through [`read_verified_program`], which runs the cfg-free
//! [`check_envelope`] pass of `alphaevolve_core::verify` and rejects with
//! a typed [`StoreError::InvalidProgram`]; serving additionally runs the
//! full config-aware verifier before compiling (see `archive`).

use alphaevolve_core::{check_envelope, AlphaProgram, FunctionId, Instruction, Op};

use crate::codec::{Reader, Writer};
use crate::error::{Result, StoreError};

/// Encodes a program into `w`.
pub fn write_program(w: &mut Writer, prog: &AlphaProgram) {
    for f in FunctionId::ALL {
        let instrs = prog.function(f);
        w.usize(instrs.len());
        for i in instrs {
            write_instruction(w, i);
        }
    }
}

/// Decodes a program written by [`write_program`].
pub fn read_program(r: &mut Reader<'_>) -> Result<AlphaProgram> {
    let mut prog = AlphaProgram::new();
    for f in FunctionId::ALL {
        // 23 bytes per encoded instruction.
        let n = r.len_prefix(23)?;
        let out = prog.function_mut(f);
        out.reserve(n);
        for _ in 0..n {
            out.push(read_instruction(r)?);
        }
    }
    Ok(prog)
}

/// Decodes a program and rejects anything outside the static envelope
/// (register indices ≥ 16, bodies longer than any config allows,
/// non-finite literals, relation ops in `Setup()`). This is the decoder
/// trust boundaries use: untrusted bytes whose frame checks out must
/// still never reach `compile` or an interpreter.
pub fn read_verified_program(r: &mut Reader<'_>) -> Result<AlphaProgram> {
    let prog = read_program(r)?;
    check_envelope(&prog).map_err(|d| StoreError::InvalidProgram {
        diagnostic: d.to_string(),
    })?;
    Ok(prog)
}

fn write_instruction(w: &mut Writer, i: &Instruction) {
    let code = Op::ALL
        .iter()
        .position(|&o| o == i.op)
        .expect("every op appears in Op::ALL") as u16;
    w.u16(code);
    w.u8(i.in1);
    w.u8(i.in2);
    w.u8(i.out);
    w.u8(i.ix[0]);
    w.u8(i.ix[1]);
    w.f64(i.lit[0]);
    w.f64(i.lit[1]);
}

fn read_instruction(r: &mut Reader<'_>) -> Result<Instruction> {
    let code = r.u16()? as usize;
    let op = *Op::ALL.get(code).ok_or_else(|| StoreError::Malformed {
        what: format!("op code {code} out of range ({} ops)", Op::ALL.len()),
    })?;
    // Fields are restored verbatim (no re-normalization): the writer only
    // ever sees normalized instructions, and a bitwise round trip is the
    // contract the fingerprint cache depends on.
    let mut i = Instruction::nop();
    i.op = op;
    i.in1 = r.u8()?;
    i.in2 = r.u8()?;
    i.out = r.u8()?;
    i.ix[0] = r.u8()?;
    i.ix[1] = r.u8()?;
    i.lit[0] = r.f64()?;
    i.lit[1] = r.f64()?;
    Ok(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphaevolve_core::{init, AlphaConfig};

    #[test]
    fn programs_round_trip_bitwise() {
        let cfg = AlphaConfig::default();
        for prog in [
            init::domain_expert(&cfg),
            init::two_layer_nn(&cfg),
            init::industry_reversal(&cfg),
            init::momentum(&cfg),
            init::noop(&cfg),
        ] {
            let mut w = Writer::new();
            write_program(&mut w, &prog);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let back = read_program(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back, prog);
        }
    }

    #[test]
    fn unknown_op_code_is_malformed() {
        let cfg = AlphaConfig::default();
        let mut w = Writer::new();
        write_program(&mut w, &init::domain_expert(&cfg));
        let mut bytes = w.into_bytes();
        // First instruction's op code sits right after the setup count.
        bytes[8] = 0xFF;
        bytes[9] = 0xFF;
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            read_program(&mut r),
            Err(StoreError::Malformed { .. })
        ));
    }

    #[test]
    fn truncated_program_is_an_error() {
        let cfg = AlphaConfig::default();
        let mut w = Writer::new();
        write_program(&mut w, &init::two_layer_nn(&cfg));
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(read_program(&mut r).is_err(), "cut at {cut} parsed");
        }
    }
}
