//! Alpha archive & serving: the persistence and inference layer of the
//! AlphaEvolve reproduction.
//!
//! Mining produces a growing pool of weakly-correlated alphas; this crate
//! is where that pool stops dying with the process. Three pillars:
//!
//! * **A versioned binary codec** ([`codec`], [`frame`], [`progio`]) —
//!   hand-rolled (no serde; the build container is offline), endian-stable
//!   (everything little-endian, floats as raw IEEE-754 bit patterns), with
//!   magic/version/CRC framing. Corrupted, truncated, or mismatched files
//!   fail with a typed [`StoreError`] — never a panic, never a silent
//!   partial load.
//! * **A hall of fame** ([`archive::AlphaArchive`]) — a capacity-bounded
//!   alpha pool admitting candidates through the paper's weak-correlation
//!   gate and evicting the weakest on overflow. `mine → save → load →
//!   extend` round-trips bit for bit.
//! * **A batch prediction server** ([`server::AlphaServer`]) — compiles
//!   every archived program once, trains it once, then sweeps one
//!   [`DayMajorPanel`](alphaevolve_market::DayMajorPanel) day across the
//!   whole batch per panel load, multi-threadable over programs with
//!   per-worker arenas. Warm requests allocate nothing.
//! * **A transport-agnostic serving API** — the [`service::AlphaService`]
//!   trait (serve a day, serve a range, report capabilities) implemented
//!   by the server directly, by [`transport::ServiceClient`] over any
//!   byte stream (in-process [`transport::Loopback`] pipes or Unix
//!   domain sockets speaking the [`wire`] protocol: the same AEVS
//!   magic/version/CRC frames as the files, as stream messages), and by
//!   the [`router::ShardedRouter`], which fans a day request out to N
//!   shard replicas and merges the blocks bit-identically to a single
//!   server — routers are services, so fleets nest and hide behind the
//!   same trait.
//!
//! Evolution checkpoints ([`checkpoint`]) make long searches durable: a
//! run checkpointed every N generations, reloaded in a fresh process, and
//! resumed reproduces the uninterrupted run's best alpha bit for bit
//! (fingerprint and IC — see `tests/checkpoint_resume.rs` at the
//! workspace root).
//!
//! # The file format
//!
//! Every store file is one framed record:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = b"AEVS"
//! 4       2     format version, little-endian (currently 1)
//! 6       2     record kind: 1 = alpha archive, 2 = evolution checkpoint,
//!               3–16 = wire protocol messages (see the frame module docs)
//! 8       8     payload length n, little-endian
//! 16      n     payload
//! 16+n    4     CRC-32 (IEEE) over bytes [0, 16+n) — header and payload
//! ```
//!
//! Integers are little-endian; counts are u64; floats are `f64::to_bits`
//! bit patterns (NaN payloads and signed zeros survive); strings are
//! u64-length-prefixed UTF-8. Programs serialize as three u64-counted
//! instruction lists (setup/predict/update), each instruction 23 bytes:
//! a u16 op code (index into the fixed [`Op::ALL`] order), five u8 slots
//! (in1, in2, out, ix0, ix1), and two u64 literal bit patterns. The
//! record layouts are specified field-by-field in the [`archive`] and
//! [`checkpoint`] module docs.
//!
//! Readers validate magic → declared length → CRC before decoding, and
//! every decode is bounds-checked, so a bit flip or short write anywhere
//! in the file is caught (`crates/store/tests/corruption.rs` flips every
//! bit and cuts every prefix of real fixtures to prove it).
//!
//! [`Op::ALL`]: alphaevolve_core::Op::ALL
//!
//! # Mining to serving in one breath
//!
//! ```
//! use std::sync::Arc;
//! use alphaevolve_core::{fingerprint, init, AlphaConfig, EvalOptions, Evaluator};
//! use alphaevolve_market::{features::FeatureSet, generator::MarketConfig, Dataset, SplitSpec};
//! use alphaevolve_store::archive::{feature_set_id, AlphaArchive, ArchivedAlpha};
//! use alphaevolve_store::server::AlphaServer;
//!
//! let market = MarketConfig { n_stocks: 12, n_days: 120, seed: 5, ..Default::default() }.generate();
//! let features = FeatureSet::paper();
//! let dataset = Arc::new(Dataset::build(&market, &features, SplitSpec::paper_ratios()).unwrap());
//! let evaluator = Evaluator::new(AlphaConfig::default(), EvalOptions::default(), Arc::clone(&dataset));
//!
//! // Archive a mined (here: hand-written) alpha with its metadata.
//! let program = init::domain_expert(evaluator.config());
//! let evaluation = evaluator.evaluate(&program);
//! let mut archive = AlphaArchive::new(16);
//! archive.admit(ArchivedAlpha {
//!     name: "alpha_AE_D_0".into(),
//!     program,
//!     fingerprint: fingerprint(&init::domain_expert(evaluator.config()), evaluator.config()).0,
//!     ic: evaluation.ic,
//!     val_returns: evaluation.val_returns,
//!     train_days: (dataset.train_days().start as u64, dataset.train_days().end as u64),
//!     feature_set_id: feature_set_id(&features),
//! });
//!
//! // Round-trip through the codec, then serve a day across the batch.
//! let reloaded = AlphaArchive::from_bytes(&archive.to_bytes()).unwrap();
//! let server = AlphaServer::from_archive(
//!     &reloaded, AlphaConfig::default(), &EvalOptions::default(), dataset.clone(), &features,
//! ).unwrap();
//! let plane = server.serve_day(dataset.valid_days().start);
//! assert_eq!((plane.n_days(), plane.n_stocks()), (1, 12));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod checkpoint;
pub mod codec;
pub mod error;
pub mod fleetwire;
pub mod frame;
pub mod metrics;
pub mod progio;
pub mod router;
pub mod server;
pub mod service;
pub mod transport;
pub mod wire;

pub use archive::{feature_set_id, AdmitOutcome, AlphaArchive, ArchivedAlpha};
pub use checkpoint::{
    checkpoint_from_bytes, checkpoint_to_bytes, load_checkpoint, save_checkpoint,
};
pub use error::{Result, ServiceErrorCode, StoreError};
pub use fleetwire::{EliteAck, EliteSubmit, FleetRequest, MigrantSet};
pub use metrics::{error_code_label, error_code_of, RequestKind, ServeMetrics};
pub use router::{partition_archive, spawn_thread_shards, ShardedRouter};
pub use server::{AlphaServer, ServeArena};
pub use service::{AlphaService, ServerSession, ServiceMetadata};
pub use transport::{loopback, serve_connection, serve_uds, Loopback, ServiceClient, Transport};
