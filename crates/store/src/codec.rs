//! Primitive binary encoding: a byte writer and a bounds-checked reader.
//!
//! Everything is **little-endian**, and floats travel as raw IEEE-754 bit
//! patterns (`f64::to_bits`), so values — including NaN payloads and
//! signed zeros — round-trip bit for bit on every platform. The reader
//! never indexes past its slice: every take is bounds-checked and a short
//! buffer surfaces as [`StoreError::Truncated`], not a panic.

use crate::error::{Result, StoreError};

/// Append-only byte sink for payload encoding.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One byte.
    pub fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Little-endian u16.
    pub fn u16(&mut self, x: u16) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Little-endian u32.
    pub fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Little-endian u64.
    pub fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// A `usize` as u64 (the format is 64-bit regardless of platform).
    pub fn usize(&mut self, x: usize) {
        self.u64(x as u64);
    }

    /// An `f64` as its raw bit pattern.
    pub fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }

    /// `Option<f64>`: presence tag byte, then the bits when present.
    pub fn opt_f64(&mut self, x: Option<f64>) {
        match x {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.f64(v);
            }
        }
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed `f64` slice (bit patterns).
    pub fn f64_slice(&mut self, xs: &[f64]) {
        self.usize(xs.len());
        for &x in xs {
            self.f64(x);
        }
    }
}

/// Bounds-checked cursor over an encoded payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed (a longer-than-declared
    /// payload is as suspicious as a shorter one).
    pub fn finish(self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(StoreError::Malformed {
                what: format!(
                    "{} trailing byte(s) after the last record",
                    self.remaining()
                ),
            });
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian u16.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Little-endian u32.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Little-endian u64.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A u64 narrowed to `usize`, rejecting values that cannot fit.
    pub fn usize(&mut self) -> Result<usize> {
        let x = self.u64()?;
        usize::try_from(x).map_err(|_| StoreError::Malformed {
            what: format!("count {x} exceeds the address space"),
        })
    }

    /// A length prefix for records of `elem_size` bytes each, validated
    /// against the remaining bytes **before** any allocation — a corrupted
    /// length can therefore never trigger an absurd `Vec` reservation.
    pub fn len_prefix(&mut self, elem_size: usize) -> Result<usize> {
        let n = self.usize()?;
        let needed = n
            .checked_mul(elem_size)
            .ok_or_else(|| StoreError::Malformed {
                what: format!("count {n} overflows"),
            })?;
        if needed > self.remaining() {
            return Err(StoreError::Truncated {
                needed,
                available: self.remaining(),
            });
        }
        Ok(n)
    }

    /// An `f64` from its raw bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// `Option<f64>` written by [`Writer::opt_f64`].
    pub fn opt_f64(&mut self) -> Result<Option<f64>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            t => Err(StoreError::Malformed {
                what: format!("option tag {t} (want 0 or 1)"),
            }),
        }
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let n = self.len_prefix(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Malformed {
            what: "string is not valid UTF-8".into(),
        })
    }

    /// Length-prefixed `f64` vector (bit patterns).
    pub fn f64_vec(&mut self) -> Result<Vec<f64>> {
        let n = self.len_prefix(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the ubiquitous
/// zlib/PNG checksum, hand-rolled table-driven since the container is
/// offline. Catches all single-bit flips and all burst errors up to 32
/// bits anywhere in header or payload.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.f64(-0.0);
        w.f64(f64::from_bits(0x7FF8_0000_0000_1234)); // NaN with payload
        w.opt_f64(None);
        w.opt_f64(Some(1.5));
        w.str("alpha_AE_D_0");
        w.f64_slice(&[0.1, -0.2, f64::INFINITY]);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), 0x7FF8_0000_0000_1234);
        assert_eq!(r.opt_f64().unwrap(), None);
        assert_eq!(r.opt_f64().unwrap(), Some(1.5));
        assert_eq!(r.str().unwrap(), "alpha_AE_D_0");
        let v = r.f64_vec().unwrap();
        assert_eq!(v.len(), 3);
        assert!(v[2].is_infinite());
        r.finish().unwrap();
    }

    #[test]
    fn short_reads_are_truncated_errors() {
        let mut w = Writer::new();
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        match r.u64() {
            Err(StoreError::Truncated { needed, available }) => {
                assert_eq!((needed, available), (8, 5));
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn absurd_length_prefix_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.u64(u64::MAX / 2); // a vector "length" of 9 quintillion
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.f64_vec().is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = Writer::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.u8().unwrap();
        assert!(r.finish().is_err());
    }
}
